// Command prost-shard hosts one shard of a scale-out PRoST deployment.
// It loads the same N-Triples dataset as the coordinator (loading is
// deterministic, so dictionary IDs and partition placement agree
// across processes), then serves scan and exchange kernels over TCP
// for the partitions it owns (p % shards == shard).
//
// A two-shard deployment on one host:
//
//	prost-shard -in dataset.nt -listen :9101 -shard 0 -shards 2 &
//	prost-shard -in dataset.nt -listen :9102 -shard 1 -shards 2 &
//	prost-serve -in dataset.nt -addr :8080 -shard-addrs localhost:9101,localhost:9102
//
// The -workers and -stats-sketches flags (and -ipt when the
// coordinator serves the mixed+ipt strategy) must match the
// coordinator's: the handshake verifies topology, partition count,
// simulated worker count and the statistics fingerprint, and refuses
// mismatched coordinators rather than silently corrupting results.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/shard"
)

func main() {
	var (
		in       = flag.String("in", "", "input N-Triples file (required, same file the coordinator loads)")
		listen   = flag.String("listen", ":9101", "listen address for coordinator connections")
		shardNo  = flag.Int("shard", 0, "this shard's position in the topology")
		shards   = flag.Int("shards", 1, "total shard count")
		workers  = flag.Int("workers", 9, "simulated worker machines (must match the coordinator)")
		ipt      = flag.Bool("ipt", false, "build the inverse property table (required when the coordinator serves strategy mixed+ipt)")
		sketches = flag.Int("stats-sketches", 0, "top-K two-predicate join sketches, matching the coordinator's -stats-sketches (0 = default 512, negative = disabled); join statistics are part of the handshake fingerprint")
	)
	flag.Parse()
	if err := run(*in, *listen, *shardNo, *shards, *workers, *ipt, *sketches); err != nil {
		fmt.Fprintln(os.Stderr, "prost-shard:", err)
		os.Exit(1)
	}
}

func run(in, listen string, shardNo, shards, workers int, ipt bool, sketches int) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := cluster.DefaultConfig()
	cfg.Workers = workers
	cfg.DefaultPartitions = 2 * workers
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loading %s…\n", in)
	// Kernels never plan, but the join statistics still have to be
	// collected with the coordinator's bounds: they are mixed into the
	// statistics fingerprint the handshake verifies.
	store, err := core.LoadNTriples(f, core.Options{
		Cluster:          c,
		BuildInversePT:   ipt,
		SketchTopK:       max(sketches, 0),
		DisableJoinStats: sketches < 0,
	})
	if err != nil {
		return err
	}
	rep := store.LoadReport()
	fmt.Fprintf(os.Stderr, "loaded %d triples (%d VP tables, %d PT columns) in %v wall\n",
		rep.Triples, rep.VPTables, rep.PTColumns, rep.WallTime)

	srv, err := shard.NewServer(store, shardNo, shards)
	if err != nil {
		return err
	}
	owned := 0
	for p := 0; p < store.Partitions(); p++ {
		if p%shards == shardNo {
			owned++
		}
	}
	fmt.Fprintf(os.Stderr, "shard %d of %d serving %d of %d partitions on %s (fingerprint %x)\n",
		shardNo, shards, owned, store.Partitions(), listen, store.Stats().Fingerprint())
	return srv.ListenAndServe(listen)
}
