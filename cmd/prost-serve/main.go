// Command prost-serve loads an N-Triples dataset into PRoST and serves
// SPARQL queries over HTTP, exercising the concurrent execution path:
// plans are cached and shared read-only across requests, every query
// schedules its plan DAG on a bounded worker pool, and an in-flight
// semaphore caps concurrently executing queries.
//
// Usage:
//
//	prost-serve -in dataset.nt -addr :8080
//	curl 'localhost:8080/sparql?query=SELECT+?s+WHERE+{...}'
//	curl 'localhost:8080/sparql?format=tsv' --data-binary @query.sparql
//	curl 'localhost:8080/explain?query=...'
//	curl 'localhost:8080/stats'
//
// Endpoints:
//
//	/sparql   execute a query (?query=… or POST body); JSON results by
//	          default, TSV with ?format=tsv; per-request ?planner=,
//	          ?strategy=, ?streaming= and ?chunk= overrides. Streaming
//	          queries write results incrementally (chunked transfer
//	          with periodic flushes) and report first-row latency and
//	          peak intermediate memory in the response stats
//	/explain  physical plan with estimated vs actual cardinalities,
//	          estimation-error summary, Join Tree and stage trace
//	          (?analyze=0 plans without executing)
//	/stats    plan-cache hit rate, query counters, estimation-error
//	          aggregates and fault-recovery / degradation counters as
//	          JSON
//	/healthz  liveness probe
//	/readyz   readiness probe (503 while draining or breaker-open)
//
// The server degrades gracefully: requests over -max-inflight are shed
// with 503 + Retry-After instead of queueing, a circuit breaker trips
// /sparql to fast 503s when the execution-failure rate crosses its
// threshold, and SIGTERM drains in-flight queries (up to
// -drain-timeout) before exiting 0. The -fault-* flags inject a
// deterministic fault schedule into the simulated cluster to exercise
// recovery end to end.
//
// With -shard-addrs the server runs as a scale-out coordinator:
// planning, shuffle routing and stage pricing stay local, while scan
// and exchange kernels execute on prost-shard worker processes over
// TCP. Results and simulated times match single-process execution
// exactly; /stats gains a network block with per-shard traffic, RTT
// quantiles and the cost model's network-price calibration error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/shard"
)

// options carries the parsed command line.
type options struct {
	in, addr          string
	shardAddrs        string
	strategy, planner string
	workers           int
	streaming         bool
	chunkSize         int
	inflight          int
	parallelism       int
	cacheSize         int
	maxRows           int
	queryTimeout      time.Duration
	replan            float64
	sketches          int
	extvpBudget       int64
	extvpBuildAfter   int
	drainTimeout      time.Duration

	breakerThreshold float64
	breakerWindow    time.Duration
	breakerCooldown  time.Duration

	faultSeed            uint64
	faultFailRate        float64
	faultStragglerRate   float64
	faultStragglerFactor float64
	faultCorruptRate     float64
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input N-Triples file (required)")
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.shardAddrs, "shard-addrs", "", "comma-separated prost-shard addresses; set, the server runs as a scale-out coordinator delegating scan and exchange kernels to the shards (addresses in shard order: the i-th address must be the shard started with -shard i)")
	flag.StringVar(&o.strategy, "strategy", "mixed", "default query strategy: "+strings.Join(core.StrategyNames(), ", "))
	flag.StringVar(&o.planner, "planner", "cost", "default planner mode: "+strings.Join(core.PlannerModeNames(), ", "))
	flag.IntVar(&o.workers, "workers", 9, "simulated worker machines")
	flag.BoolVar(&o.streaming, "streaming", false, "default to morsel-driven streaming execution (per-request ?streaming= overrides)")
	flag.IntVar(&o.chunkSize, "chunk-size", 0, "streaming rows-per-chunk granularity (0 = default; per-request ?chunk= overrides)")
	flag.IntVar(&o.inflight, "max-inflight", serve.DefaultMaxInflight, "maximum concurrently executing queries; overflow is shed with 503 + Retry-After")
	flag.IntVar(&o.parallelism, "parallelism", 0, "per-query scheduler pool width (0 = GOMAXPROCS)")
	flag.IntVar(&o.cacheSize, "plan-cache", 0, "plan cache entries (0 = default, negative = disabled)")
	flag.IntVar(&o.maxRows, "max-rows", 0, "cap result rows per response (0 = unlimited)")
	flag.DurationVar(&o.queryTimeout, "query-timeout", 0, "per-query execution deadline; past it the query stops and the request returns 504 (0 = none)")
	flag.Float64Var(&o.replan, "replan-threshold", 0, "adaptive re-planning trigger: estimation-error factor that pauses and re-plans the remainder (0 = default 8, negative = disabled)")
	flag.IntVar(&o.sketches, "stats-sketches", 0, "top-K two-predicate join sketches collected at load time (0 = default 512, negative = disable join-graph statistics entirely)")
	flag.Int64Var(&o.extvpBudget, "extvp-budget", 0, "byte budget for workload-driven ExtVP semi-join tables; hot join pairs are materialized in the background and queries rewritten onto them (0 = subsystem off)")
	flag.IntVar(&o.extvpBuildAfter, "extvp-build-after", 0, "feedback observations of a join pair before its reduction is built (0 = default)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 15*time.Second, "on SIGTERM, how long to wait for in-flight queries before exiting")
	flag.Float64Var(&o.breakerThreshold, "breaker-threshold", 0, "execution-failure rate that trips the /sparql circuit breaker (0 = default)")
	flag.DurationVar(&o.breakerWindow, "breaker-window", 0, "sliding window for the breaker's failure rate (0 = default)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "how long a tripped breaker sheds load before probing (0 = default)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 0, "seed for the deterministic fault schedule (fault injection is off unless a -fault-* rate is set)")
	flag.Float64Var(&o.faultFailRate, "fault-fail-rate", 0, "probability a task attempt fails outright")
	flag.Float64Var(&o.faultStragglerRate, "fault-straggler-rate", 0, "probability a task attempt straggles")
	flag.Float64Var(&o.faultStragglerFactor, "fault-straggler-factor", 0, "slowdown multiple for straggling attempts (0 = default)")
	flag.Float64Var(&o.faultCorruptRate, "fault-corrupt-rate", 0, "probability an exchange delivery is corrupted (detected by checksum, repaired from lineage)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "prost-serve:", err)
		os.Exit(1)
	}
}

// faultPlan assembles the injected fault schedule, nil when every rate
// is zero.
func (o options) faultPlan() *cluster.FaultPlan {
	fp := &cluster.FaultPlan{
		Seed:            o.faultSeed,
		FailRate:        o.faultFailRate,
		StragglerRate:   o.faultStragglerRate,
		StragglerFactor: o.faultStragglerFactor,
		CorruptRate:     o.faultCorruptRate,
	}
	if !fp.Active() {
		return nil
	}
	return fp
}

func run(o options) error {
	if o.in == "" {
		return fmt.Errorf("-in is required")
	}
	strat, err := core.ParseStrategy(o.strategy)
	if err != nil {
		return err
	}
	mode, err := core.ParsePlannerMode(o.planner)
	if err != nil {
		return err
	}

	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := cluster.DefaultConfig()
	cfg.Workers = o.workers
	cfg.DefaultPartitions = 2 * o.workers
	cfg.Faults = o.faultPlan()
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loading %s…\n", o.in)
	store, err := core.LoadNTriples(f, core.Options{
		Cluster:          c,
		BuildInversePT:   strat == core.StrategyMixedIPT,
		PlanCacheSize:    o.cacheSize,
		SketchTopK:       max(o.sketches, 0),
		DisableJoinStats: o.sketches < 0,
		ExtVPBudget:      o.extvpBudget,
		ExtVPBuildAfter:  o.extvpBuildAfter,
	})
	if err != nil {
		return err
	}
	rep := store.LoadReport()
	fmt.Fprintf(os.Stderr, "loaded %d triples (%d VP tables, %d PT columns) in %v wall\n",
		rep.Triples, rep.VPTables, rep.PTColumns, rep.WallTime)
	if js, ok := store.Stats().JoinStatsSummary(); ok {
		fmt.Fprintf(os.Stderr, "join statistics: %d csets, %d/%d pair sketches (top-%d, %.1f%% volume coverage)\n",
			js.CSets, js.SketchPairs, js.CandidatePairs, js.TopK, 100*js.VolumeCoverage)
	}
	if o.extvpBudget > 0 {
		fmt.Fprintf(os.Stderr, "ExtVP enabled: %.2f MiB budget for workload-driven semi-join tables\n",
			float64(o.extvpBudget)/(1<<20))
	}
	if fp := c.Config().Faults; fp != nil {
		fmt.Fprintf(os.Stderr, "fault injection active: seed %d, fail %.2f, straggle %.2f, corrupt %.2f\n",
			fp.Seed, fp.FailRate, fp.StragglerRate, fp.CorruptRate)
	}

	// Coordinator mode: dial the shards after loading (they verify the
	// topology and statistics fingerprint during the handshake) and
	// route every query's kernels through them.
	var dist core.DistRunner
	if o.shardAddrs != "" {
		addrs := strings.Split(o.shardAddrs, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		coord, err := shard.Dial(store, addrs)
		if err != nil {
			return fmt.Errorf("dialing shards: %w", err)
		}
		defer coord.Close()
		dist = coord
		fmt.Fprintf(os.Stderr, "coordinating %d shards: %s\n", len(addrs), strings.Join(addrs, ", "))
	}

	srv, err := serve.New(serve.Config{
		Store: store,
		Options: core.QueryOptions{
			Strategy:        strat,
			Planner:         mode,
			Parallelism:     o.parallelism,
			ReplanThreshold: o.replan,
			Streaming:       o.streaming,
			ChunkSize:       o.chunkSize,
			Dist:            dist,
		},
		MaxInflight:      o.inflight,
		MaxRows:          o.maxRows,
		QueryTimeout:     o.queryTimeout,
		BreakerThreshold: o.breakerThreshold,
		BreakerWindow:    o.breakerWindow,
		BreakerCooldown:  o.breakerCooldown,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving on %s (strategy %s, planner %s, max in-flight %d)\n",
		o.addr, strat, mode, o.inflight)

	// Graceful shutdown: SIGTERM/interrupt stops admitting queries,
	// drains in-flight ones for up to -drain-timeout, then exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: o.addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "signal received, draining in-flight queries (up to %v)…\n", o.drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "prost-serve:", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Fprintln(os.Stderr, "drained; bye")
		return nil
	}
}
