// Command prost-serve loads an N-Triples dataset into PRoST and serves
// SPARQL queries over HTTP, exercising the concurrent execution path:
// plans are cached and shared read-only across requests, every query
// schedules its plan DAG on a bounded worker pool, and an in-flight
// semaphore caps concurrently executing queries.
//
// Usage:
//
//	prost-serve -in dataset.nt -addr :8080
//	curl 'localhost:8080/sparql?query=SELECT+?s+WHERE+{...}'
//	curl 'localhost:8080/sparql?format=tsv' --data-binary @query.sparql
//	curl 'localhost:8080/explain?query=...'
//	curl 'localhost:8080/stats'
//
// Endpoints:
//
//	/sparql   execute a query (?query=… or POST body); JSON results by
//	          default, TSV with ?format=tsv; per-request ?planner= and
//	          ?strategy= overrides
//	/explain  physical plan with estimated vs actual cardinalities,
//	          estimation-error summary, Join Tree and stage trace
//	          (?analyze=0 plans without executing)
//	/stats    plan-cache hit rate, query counters and estimation-error
//	          aggregates as JSON
//	/healthz  liveness probe
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	in := flag.String("in", "", "input N-Triples file (required)")
	addr := flag.String("addr", ":8080", "listen address")
	strategy := flag.String("strategy", "mixed", "default query strategy: "+strings.Join(core.StrategyNames(), ", "))
	planner := flag.String("planner", "cost", "default planner mode: "+strings.Join(core.PlannerModeNames(), ", "))
	workers := flag.Int("workers", 9, "simulated worker machines")
	inflight := flag.Int("max-inflight", serve.DefaultMaxInflight, "maximum concurrently executing queries")
	parallelism := flag.Int("parallelism", 0, "per-query scheduler pool width (0 = GOMAXPROCS)")
	cacheSize := flag.Int("plan-cache", 0, "plan cache entries (0 = default, negative = disabled)")
	maxRows := flag.Int("max-rows", 0, "cap result rows per response (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query execution deadline; past it the query stops and the request returns 504 (0 = none)")
	replan := flag.Float64("replan-threshold", 0, "adaptive re-planning trigger: estimation-error factor that pauses and re-plans the remainder (0 = default 8, negative = disabled)")
	sketches := flag.Int("stats-sketches", 0, "top-K two-predicate join sketches collected at load time (0 = default 512, negative = disable join-graph statistics entirely)")
	flag.Parse()

	if err := run(*in, *addr, *strategy, *planner, *workers, *inflight, *parallelism, *cacheSize, *maxRows, *queryTimeout, *replan, *sketches); err != nil {
		fmt.Fprintln(os.Stderr, "prost-serve:", err)
		os.Exit(1)
	}
}

func run(in, addr, strategy, planner string, workers, inflight, parallelism, cacheSize, maxRows int, queryTimeout time.Duration, replan float64, sketches int) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	strat, err := core.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	mode, err := core.ParsePlannerMode(planner)
	if err != nil {
		return err
	}

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := cluster.DefaultConfig()
	cfg.Workers = workers
	cfg.DefaultPartitions = 2 * workers
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loading %s…\n", in)
	store, err := core.LoadNTriples(f, core.Options{
		Cluster:          c,
		BuildInversePT:   strat == core.StrategyMixedIPT,
		PlanCacheSize:    cacheSize,
		SketchTopK:       max(sketches, 0),
		DisableJoinStats: sketches < 0,
	})
	if err != nil {
		return err
	}
	rep := store.LoadReport()
	fmt.Fprintf(os.Stderr, "loaded %d triples (%d VP tables, %d PT columns) in %v wall\n",
		rep.Triples, rep.VPTables, rep.PTColumns, rep.WallTime)
	if js, ok := store.Stats().JoinStatsSummary(); ok {
		fmt.Fprintf(os.Stderr, "join statistics: %d csets, %d/%d pair sketches (top-%d, %.1f%% volume coverage)\n",
			js.CSets, js.SketchPairs, js.CandidatePairs, js.TopK, 100*js.VolumeCoverage)
	}

	srv, err := serve.New(serve.Config{
		Store: store,
		Options: core.QueryOptions{
			Strategy:        strat,
			Planner:         mode,
			Parallelism:     parallelism,
			ReplanThreshold: replan,
		},
		MaxInflight:  inflight,
		MaxRows:      maxRows,
		QueryTimeout: queryTimeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving on %s (strategy %s, planner %s, max in-flight %d)\n",
		addr, strat, mode, inflight)
	return http.ListenAndServe(addr, srv)
}
