// Command prost-load loads an N-Triples dataset into a PRoST store on
// the simulated cluster and prints the loading report: table counts,
// on-HDFS sizes and the simulated loading time (the quantities of the
// paper's Table 1), plus the collected per-predicate statistics.
//
// Usage:
//
//	prost-load -in dataset.nt [-workers 9] [-partitions 18] [-inverse-pt] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	in := flag.String("in", "", "input N-Triples file (required)")
	workers := flag.Int("workers", 9, "simulated worker machines")
	partitions := flag.Int("partitions", 0, "table partitions (0 = 2x workers)")
	inversePT := flag.Bool("inverse-pt", false, "also build the object-keyed inverse Property Table")
	showStats := flag.Bool("stats", false, "print per-predicate statistics")
	extvpBudget := flag.Int64("extvp-budget", 0, "byte budget for workload-driven ExtVP semi-join tables (0 = subsystem off)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "prost-load: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *workers, *partitions, *inversePT, *showStats, *extvpBudget); err != nil {
		fmt.Fprintln(os.Stderr, "prost-load:", err)
		os.Exit(1)
	}
}

func run(in string, workers, partitions int, inversePT, showStats bool, extvpBudget int64) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()

	cfg := cluster.DefaultConfig()
	cfg.Workers = workers
	cfg.DefaultPartitions = 2 * workers
	if partitions > 0 {
		cfg.DefaultPartitions = partitions
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	store, err := core.LoadNTriples(f, core.Options{Cluster: c, BuildInversePT: inversePT, ExtVPBudget: extvpBudget})
	if err != nil {
		return err
	}
	rep := store.LoadReport()
	fmt.Printf("triples:        %d\n", rep.Triples)
	fmt.Printf("input size:     %.2f MiB\n", float64(rep.InputBytes)/(1<<20))
	fmt.Printf("store size:     %.2f MiB (VP + PT on simulated HDFS)\n", float64(rep.SizeBytes)/(1<<20))
	fmt.Printf("VP tables:      %d\n", rep.VPTables)
	fmt.Printf("PT columns:     %d over %d rows\n", rep.PTColumns, store.PropertyTable().Rows())
	if ipt := store.InversePropertyTable(); ipt != nil {
		fmt.Printf("inverse PT:     %d columns over %d rows\n", ipt.Columns(), ipt.Rows())
	}
	if extvpBudget > 0 {
		fmt.Printf("ExtVP budget:   %.2f MiB (workload-driven semi-join tables, built at query time)\n", float64(extvpBudget)/(1<<20))
	}
	fmt.Printf("simulated load: %v\n", rep.LoadTime)
	fmt.Printf("wall time:      %v\n", rep.WallTime)
	if showStats {
		fmt.Println()
		fmt.Print(store.Stats().Summary(store.Dictionary()))
	}
	return nil
}
