// Command prost-query loads an N-Triples dataset into PRoST and runs a
// SPARQL query against it, printing the result rows and, with -explain,
// the physical plan (per-node estimated vs actual cardinalities plus a
// one-line estimation-error summary), the Join Tree the translator
// produced, and the per-stage execution trace with simulated cluster
// times.
//
// Usage:
//
//	prost-query -in dataset.nt -q 'SELECT ?s WHERE { ?s <http://…> ?o . }'
//	prost-query -in dataset.nt -f query.sparql -strategy vp-only -explain
//	prost-query -in dataset.nt -f query.sparql -planner heuristic -explain
//	prost-query -in dataset.nt -f query.sparql -streaming -chunk-size 1024
//
// With -streaming the query executes through the morsel-driven
// pipelines over columnar chunks and the summary additionally reports
// first-row latency and the peak intermediate-memory footprint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

func main() {
	in := flag.String("in", "", "input N-Triples file (required)")
	queryText := flag.String("q", "", "SPARQL query text")
	queryFile := flag.String("f", "", "file containing the SPARQL query")
	strategy := flag.String("strategy", "mixed", "query strategy: "+strings.Join(core.StrategyNames(), ", "))
	planner := flag.String("planner", "cost", "planner mode: "+strings.Join(core.PlannerModeNames(), ", "))
	workers := flag.Int("workers", 9, "simulated worker machines")
	streaming := flag.Bool("streaming", false, "execute through the morsel-driven streaming pipelines instead of materialized stages")
	chunkSize := flag.Int("chunk-size", 0, "streaming rows-per-chunk granularity (0 = default)")
	explain := flag.Bool("explain", false, "print the physical plan (with estimated vs actual cardinalities), re-plan events, the Join Tree and the stage trace")
	maxRows := flag.Int("max-rows", 20, "result rows to print (0 = all)")
	replan := flag.Float64("replan-threshold", 0, "adaptive re-planning trigger: estimation-error factor that pauses and re-plans the remainder (0 = default 8, negative = disabled)")
	sketches := flag.Int("stats-sketches", 0, "top-K two-predicate join sketches collected at load time (0 = default 512, negative = disable join-graph statistics entirely)")
	extvpBudget := flag.Int64("extvp-budget", 0, "byte budget for workload-driven ExtVP semi-join tables; the query runs once to mine and build them, then the measured run may rewrite onto them (0 = subsystem off)")
	faultSeed := flag.Uint64("fault-seed", 0, "seed for the deterministic fault schedule (fault injection is off unless a -fault-* rate is set)")
	faultFail := flag.Float64("fault-fail-rate", 0, "probability a task attempt fails outright")
	faultStraggle := flag.Float64("fault-straggler-rate", 0, "probability a task attempt straggles")
	faultFactor := flag.Float64("fault-straggler-factor", 0, "slowdown multiple for straggling attempts (0 = default)")
	faultCorrupt := flag.Float64("fault-corrupt-rate", 0, "probability an exchange delivery is corrupted (detected by checksum, repaired from lineage)")
	flag.Parse()

	faults := &cluster.FaultPlan{
		Seed:            *faultSeed,
		FailRate:        *faultFail,
		StragglerRate:   *faultStraggle,
		StragglerFactor: *faultFactor,
		CorruptRate:     *faultCorrupt,
	}
	if !faults.Active() {
		faults = nil
	}
	if err := run(*in, *queryText, *queryFile, *strategy, *planner, *workers, *streaming, *chunkSize, *explain, *maxRows, *replan, *sketches, *extvpBudget, faults); err != nil {
		fmt.Fprintln(os.Stderr, "prost-query:", err)
		os.Exit(1)
	}
}

func run(in, queryText, queryFile, strategy, planner string, workers int, streaming bool, chunkSize int, explain bool, maxRows int, replan float64, sketches int, extvpBudget int64, faults *cluster.FaultPlan) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	if queryText == "" && queryFile == "" {
		return fmt.Errorf("one of -q or -f is required")
	}
	if queryText == "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryText = string(b)
	}
	strat, err := core.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	mode, err := core.ParsePlannerMode(planner)
	if err != nil {
		return err
	}

	q, err := sparql.Parse(queryText)
	if err != nil {
		return err
	}

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := cluster.DefaultConfig()
	cfg.Workers = workers
	cfg.DefaultPartitions = 2 * workers
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	store, err := core.LoadNTriples(f, core.Options{
		Cluster:          c,
		BuildInversePT:   strat == core.StrategyMixedIPT,
		SketchTopK:       max(sketches, 0),
		DisableJoinStats: sketches < 0,
		ExtVPBudget:      extvpBudget,
		ExtVPBuildAfter:  1,
	})
	if err != nil {
		return err
	}

	opts := core.QueryOptions{Strategy: strat, Planner: mode, ReplanThreshold: replan,
		Faults: faults, Streaming: streaming, ChunkSize: chunkSize}
	if extvpBudget > 0 {
		// Priming run: mine the query's join pairs, then wait for the
		// background builds so the measured run can rewrite onto the
		// materialized reductions.
		if _, err := store.Query(q, opts); err != nil {
			return err
		}
		store.Workload().Wait()
	}
	res, err := store.Query(q, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s\n", strings.Join(res.Vars, "\t"))
	rows := res.Rows // ORDER BY order; re-sorting would undo DESC keys
	if !res.Ordered {
		rows = res.SortedRows()
	}
	for i, row := range rows {
		if maxRows > 0 && i >= maxRows {
			fmt.Printf("… (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		cells := make([]string, len(row))
		for j, t := range row {
			if t == (rdf.Term{}) {
				continue // unbound OPTIONAL cell: empty, not "<>"
			}
			cells[j] = t.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("\n%d rows; simulated cluster time %v (wall %v, strategy %s)\n",
		len(res.Rows), res.SimTime, res.WallTime, strat)
	if res.Streamed {
		fmt.Printf("streamed over morsel pipelines: first row at %v; peak intermediate footprint %d B\n",
			res.FirstRow, res.PeakMemBytes)
	} else if res.StreamingDowngraded {
		fmt.Println("streaming requested but downgraded to materialized execution (no morsel path for this configuration)")
	}
	if explain {
		fmt.Println()
		fmt.Print(res.Plan.String())
		fmt.Println(res.Plan.ErrorSummary())
		if adaptive := res.ReplanSummary(); adaptive != "" {
			fmt.Print(adaptive)
		}
		if rs := res.Resilience.String(); rs != "" {
			fmt.Print(rs)
		}
		// Estimator provenance: why a node's est-source says what it
		// says. Coverage below 100% means some predicate pairs were
		// trimmed by the top-K bound and price as est-source=indep.
		if js, ok := store.Stats().JoinStatsSummary(); ok {
			fmt.Printf("join statistics: %d characteristic sets, %d/%d pair sketches kept (top-%d, %.1f%% of join volume, ~%d bytes)\n",
				js.CSets, js.SketchPairs, js.CandidatePairs, js.TopK, 100*js.VolumeCoverage, js.MemoryBytes)
			if js.VolumeCoverage < 1 {
				fmt.Println("  (est-source=indep on a sketchable pair means it fell outside the kept top-K; raise -stats-sketches to cover it)")
			}
		} else {
			fmt.Println("join statistics: disabled (independence estimator everywhere)")
		}
		if wl := store.Workload(); wl != nil {
			met := store.WorkloadMetrics()
			fmt.Printf("\nworkload model: %d pairs tracked; %d reductions live of %d built (%d B of %d B budget, %d evicted, %d scan hits)\n",
				met.PairsTracked, met.TablesLive, met.TablesBuilt, met.TableBytes, met.BudgetBytes, met.TablesEvicted, met.HitCount)
			dict := store.Dictionary()
			name := func(id uint64) string {
				v := dict.Term(rdf.ID(id)).Value
				if i := strings.LastIndexAny(v, "/#"); i >= 0 && i+1 < len(v) {
					return v[i+1:]
				}
				return v
			}
			pairs := wl.Pairs()
			const maxPairs = 8
			for i, p := range pairs {
				if i >= maxPairs {
					fmt.Printf("  … (%d more pairs)\n", len(pairs)-maxPairs)
					break
				}
				state := "pending"
				if p.Built {
					state = "built"
				}
				fmt.Printf("  candidate %s joined with %s at %s: %d hits, %d rows executed join volume (%s)\n",
					name(p.P1), name(p.P2), p.Pos, p.Hits, p.Volume, state)
			}
			if rw := res.Plan.RewriteSummary(); rw != "" {
				fmt.Print(rw)
			}
		}
		fmt.Println("\nJoin Tree:")
		fmt.Print(res.Tree.String())
		fmt.Println("\nStage trace:")
		fmt.Print(res.Clock.Trace())
	}
	return nil
}
