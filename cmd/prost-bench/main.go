// Command prost-bench regenerates the paper's evaluation artifacts on a
// freshly generated WatDiv dataset: Table 1 (loading size and time),
// Figure 2 (VP-only vs mixed strategy), Figure 3 (per-query comparison
// of PRoST, S2RDF, Rya and SPARQLGX) and Table 2 (group averages), plus
// the ablations and the inverse-Property-Table extension experiment
// from DESIGN.md.
//
// Usage:
//
//	prost-bench -scale 1000 -extrapolate 100000000 -exp all
//
// The -extrapolate flag prices all data-proportional costs as if the
// dataset had that many triples (default: the paper's 100M), so the
// printed simulated times are comparable in shape to the paper's
// numbers while the real computation stays laptop-sized.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/watdiv"
)

func main() {
	scale := flag.Int("scale", 1000, "WatDiv scale (number of users)")
	seed := flag.Int64("seed", 42, "generator seed")
	extrapolate := flag.Int64("extrapolate", 100_000_000, "price costs as if the dataset had this many triples (0 = off)")
	exp := flag.String("exp", "all", "experiment: table1, figure2, figure3, table2, ablations, extension or all")
	verify := flag.Bool("verify", true, "cross-check that all four systems return identical row counts")
	flag.Parse()

	if err := run(*scale, *seed, *extrapolate, *exp, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "prost-bench:", err)
		os.Exit(1)
	}
}

func run(scale int, seed, extrapolate int64, exp string, verify bool) error {
	fmt.Fprintf(os.Stderr, "generating WatDiv dataset (scale %d, seed %d)…\n", scale, seed)
	g, err := watdiv.Generate(watdiv.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loading %d triples into PRoST, S2RDF, SPARQLGX and Rya…\n", g.Len())
	sys, err := bench.LoadAll(g, bench.LoadOptions{
		InversePT:          exp == "extension" || exp == "all",
		ExtrapolateTriples: extrapolate,
	})
	if err != nil {
		return err
	}
	queries := watdiv.BasicQuerySet()
	if verify {
		fmt.Fprintln(os.Stderr, "verifying cross-system agreement on all 20 queries…")
		if err := sys.VerifyAgreement(queries); err != nil {
			return err
		}
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	if want("table1") {
		fmt.Println(sys.Table1())
	}
	if want("figure2") {
		fig, err := sys.Figure2(queries)
		if err != nil {
			return err
		}
		fmt.Println(fig)
	}
	var fig3 bench.Figure
	if want("figure3") || want("table2") {
		fig3, err = sys.Figure3(queries)
		if err != nil {
			return err
		}
	}
	if want("figure3") {
		fmt.Println(fig3)
	}
	if want("table2") {
		fmt.Println(bench.Table2(fig3, queries))
	}
	if want("ablations") {
		a1, err := sys.AblationJoinOrder(queries)
		if err != nil {
			return err
		}
		fmt.Println(a1.Table())
		a2, err := sys.AblationBroadcast(queries)
		if err != nil {
			return err
		}
		fmt.Println(a2.Table())
		a3, err := sys.AblationPlanner(queries)
		if err != nil {
			return err
		}
		fmt.Println(a3.Table())
		a4, err := sys.AblationBushy(queries)
		if err != nil {
			return err
		}
		fmt.Println(a4.Table())
		a5, err := sys.AblationAdaptive(queries)
		if err != nil {
			return err
		}
		fmt.Println(a5.Table())
		a6, err := sys.AblationSketches(queries)
		if err != nil {
			return err
		}
		fmt.Println(a6.Table())
		a7, err := sys.AblationExtVP(queries)
		if err != nil {
			return err
		}
		fmt.Println(a7.Table())
	}
	if want("extension") {
		fig, err := sys.ExtensionInversePT(bench.ObjectStarQueries())
		if err != nil {
			return err
		}
		fmt.Println(fig.Table())
	}
	if !strings.Contains("table1 figure2 figure3 table2 ablations extension all", exp) {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
