// Command watdiv-gen generates a WatDiv-like N-Triples dataset.
//
// Usage:
//
//	watdiv-gen -scale 1000 -seed 1 -o dataset.nt
//
// Scale is the number of users; the dataset holds roughly 21×scale
// triples. With -o omitted the triples stream to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/rdf"
	"repro/internal/watdiv"
)

func main() {
	scale := flag.Int("scale", 1000, "number of users (dataset has ~21x this many triples)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "watdiv-gen:", err)
		os.Exit(1)
	}
}

func run(scale int, seed int64, out string) error {
	g, err := watdiv.Generate(watdiv.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples (scale %d, seed %d)\n", g.Len(), scale, seed)
	return nil
}
