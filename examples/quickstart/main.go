// Quickstart: load a small RDF graph into PRoST and run a SPARQL query.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// A small social graph in N-Triples syntax.
const data = `
<http://ex/alice> <http://ex/follows> <http://ex/bob> .
<http://ex/alice> <http://ex/likes> <http://ex/go> .
<http://ex/alice> <http://ex/age> "31"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/bob> <http://ex/follows> <http://ex/carol> .
<http://ex/bob> <http://ex/likes> <http://ex/go> .
<http://ex/bob> <http://ex/likes> <http://ex/rust> .
<http://ex/bob> <http://ex/age> "27"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/carol> <http://ex/likes> <http://ex/go> .
<http://ex/carol> <http://ex/age> "45"^^<http://www.w3.org/2001/XMLSchema#integer> .
`

const query = `
PREFIX ex: <http://ex/>
SELECT ?person ?lang ?age WHERE {
	?person ex:likes ?lang .
	?person ex:age ?age .
	FILTER(?age < 40)
}`

func main() {
	// 1. A simulated 3-worker cluster stands in for the paper's Spark
	//    deployment.
	c, err := cluster.New(cluster.Config{Workers: 3, DefaultPartitions: 6})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load the graph: PRoST stores it twice — as per-predicate VP
	//    tables and as a subject-wide Property Table.
	store, err := core.LoadNTriples(strings.NewReader(data), core.Options{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	rep := store.LoadReport()
	fmt.Printf("loaded %d triples into %d VP tables + a %d-column Property Table\n\n",
		rep.Triples, rep.VPTables, rep.PTColumns)

	// 3. Parse and run a SPARQL query. The two same-subject patterns
	//    collapse into one Property Table node — no join needed.
	q, err := sparql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	res, err := store.Query(q, core.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("join tree:")
	fmt.Print(res.Tree.String())
	fmt.Println("\nresults:")
	for _, row := range res.SortedRows() {
		cells := make([]string, len(row))
		for i, t := range row {
			cells[i] = shorten(t)
		}
		fmt.Println("  " + strings.Join(cells, "\t"))
	}
	fmt.Printf("\n%d rows in %v simulated cluster time\n", len(res.Rows), res.SimTime)
}

func shorten(t rdf.Term) string {
	if t.IsIRI() {
		return strings.TrimPrefix(t.Value, "http://ex/")
	}
	return t.Value
}
