// Mixedstrategy reproduces the paper's Figure 2 in miniature: the same
// WatDiv queries run on PRoST with Vertical Partitioning only and with
// the mixed VP + Property Table strategy, showing where the Property
// Table pays off (star and snowflake queries) and where the two tie
// (linear queries).
//
// Run with:
//
//	go run ./examples/mixedstrategy
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/watdiv"
)

func main() {
	g, err := watdiv.Generate(watdiv.Config{Scale: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(cluster.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	store, err := core.Load(g, core.Options{Cluster: c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WatDiv dataset: %d triples\n\n", store.LoadReport().Triples)
	fmt.Printf("%-4s %-10s %14s %14s %9s\n", "qry", "shape", "VP-only", "mixed", "speedup")

	for _, name := range []string{"S2", "S6", "F3", "F5", "L2", "L4", "C2"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			log.Fatal(err)
		}
		vp, err := store.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyVPOnly})
		if err != nil {
			log.Fatal(err)
		}
		mixed, err := store.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed})
		if err != nil {
			log.Fatal(err)
		}
		if len(vp.Rows) != len(mixed.Rows) {
			log.Fatalf("%s: strategies disagree (%d vs %d rows)", name, len(vp.Rows), len(mixed.Rows))
		}
		fmt.Printf("%-4s %-10s %14v %14v %8.2fx\n",
			name, q.Parsed.Shape().Label(), vp.SimTime, mixed.SimTime,
			float64(vp.SimTime)/float64(mixed.SimTime))
	}
	fmt.Println("\nStar and snowflake queries collapse into Property Table nodes and avoid")
	fmt.Println("joins; linear queries translate to VP either way, so the times converge.")
}
