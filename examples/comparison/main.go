// Comparison reproduces the paper's Figure 3 in miniature: one WatDiv
// workload loaded into all four systems (PRoST, S2RDF, Rya, SPARQLGX),
// a few representative queries run on each, and the simulated times
// printed side by side — with costs extrapolated to the paper's
// 100M-triple dataset so the crossovers appear.
//
// Run with:
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/watdiv"
)

func main() {
	g, err := watdiv.Generate(watdiv.Config{Scale: 400, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d WatDiv triples into all four systems…\n\n", g.Len())
	sys, err := bench.LoadAll(g, bench.LoadOptions{ExtrapolateTriples: 100_000_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sys.Table1())

	fmt.Printf("%-4s %-10s %12s %12s %14s %12s\n", "qry", "shape", "PRoST", "S2RDF", "Rya", "SPARQLGX")
	for _, name := range []string{"C2", "F2", "L3", "S2", "S6"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			log.Fatal(err)
		}
		times := map[string]time.Duration{}
		rows := -1
		for _, system := range bench.SystemNames() {
			out, err := sys.RunOn(system, q.Parsed)
			if err != nil {
				log.Fatal(err)
			}
			times[system] = out.SimTime
			if rows >= 0 && out.Rows != rows {
				log.Fatalf("%s: %s returned %d rows, others %d", name, system, out.Rows, rows)
			}
			rows = out.Rows
		}
		fmt.Printf("%-4s %-10s %12v %12v %14v %12v\n",
			name, q.Parsed.Shape().Label(),
			times[bench.SysPRoST].Round(time.Millisecond),
			times[bench.SysS2RDF].Round(time.Millisecond),
			times[bench.SysRya].Round(time.Millisecond),
			times[bench.SysSPARQLGX].Round(time.Millisecond))
	}
	fmt.Println("\nAll four systems returned identical row counts for every query.")
	fmt.Println("SPARQLGX pays a spark-submit per query; Rya explodes on join-heavy")
	fmt.Println("queries; S2RDF's ExtVP reductions pay off on the complex family on")
	fmt.Println("average; PRoST's mixed strategy stays consistently fast on all shapes.")
}
