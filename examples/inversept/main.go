// Inversept demonstrates the paper's future-work extension (§5): a
// second Property Table keyed on objects instead of subjects. Queries
// whose patterns share an object variable — pairs of reviews by the
// same reviewer, pairs of users in the same city — collapse into one
// inverse-PT node instead of paying a join between two VP tables.
//
// Run with:
//
//	go run ./examples/inversept
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/watdiv"
)

func main() {
	g, err := watdiv.Generate(watdiv.Config{Scale: 400, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	c, err := cluster.New(cluster.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	store, err := core.Load(g, core.Options{Cluster: c, BuildInversePT: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples; inverse PT has %d rows × %d columns\n\n",
		store.LoadReport().Triples,
		store.InversePropertyTable().Rows(),
		store.InversePropertyTable().Columns())

	fmt.Printf("%-4s %-34s %14s %14s\n", "qry", "first node (mixed+ipt)", "mixed", "mixed+ipt")
	for _, q := range bench.ObjectStarQueries() {
		mixed, err := store.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed})
		if err != nil {
			log.Fatal(err)
		}
		ipt, err := store.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixedIPT})
		if err != nil {
			log.Fatal(err)
		}
		if len(mixed.Rows) != len(ipt.Rows) {
			log.Fatalf("%s: strategies disagree (%d vs %d rows)", q.Name, len(mixed.Rows), len(ipt.Rows))
		}
		fmt.Printf("%-4s %-34s %14v %14v\n", q.Name, ipt.Tree.Nodes[0].Label(), mixed.SimTime, ipt.SimTime)
	}
	fmt.Println("\nObject stars become single IPT scans instead of self-joins. The win")
	fmt.Println("depends on object-value skew: heavily skewed keys (popular products)")
	fmt.Println("can straggle one partition — the caveat the paper's future work hides.")
}
