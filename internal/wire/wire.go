// Package wire is the shard exchange codec: length-prefixed,
// checksummed frames carrying packed dictionary-ID row payloads
// between the coordinator and prost-shard worker processes.
//
// Frame layout (all integers little-endian):
//
//	magic   4 bytes  "PRW1"
//	type    1 byte   message discriminator (opaque to this package)
//	length  4 bytes  payload length
//	payload length bytes
//	check   8 bytes  FNV-1a over type ++ length ++ payload
//
// The checksum is the same FNV-1a the engine uses for relation
// checksums (PR 6), so a corrupted exchange is detected the same way a
// corrupted simulated delivery is. Row payloads use PR 1's packed
// layout: each value is one uint32 dictionary ID, rows are
// fixed-width, so a partition serializes as width ++ count ++ count*width
// IDs with no per-row framing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a PRoST wire frame, version 1.
const Magic = "PRW1"

// MaxFrameBytes bounds a single frame's payload so a corrupted or
// hostile length prefix cannot force an arbitrary allocation.
const MaxFrameBytes = 1 << 30

// FNV-1a constants, matching internal/engine's relation checksums.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ErrChecksum is returned when a frame's checksum does not match its
// contents.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// ErrMagic is returned when a frame does not start with Magic.
var ErrMagic = errors.New("wire: bad frame magic")

// ShardError is the typed failure a coordinator surfaces when a shard
// process dies or misbehaves mid-query. The scheduler unwraps it into
// the task-attempt machinery so a dead shard reports like a permanent
// worker outage rather than an anonymous I/O error.
type ShardError struct {
	// Addr is the shard's listen address.
	Addr string
	// Shard is the shard index, -1 when unknown.
	Shard int
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("wire: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Checksum is the FNV-1a 64-bit hash over b, the frame and payload
// checksum primitive.
func Checksum(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// WriteFrame writes one frame of the given type and payload to w,
// returning the total bytes written on the wire.
func WriteFrame(w io.Writer, typ byte, payload []byte) (int64, error) {
	if len(payload) > MaxFrameBytes {
		return 0, fmt.Errorf("wire: frame payload %d bytes exceeds limit", len(payload))
	}
	head := make([]byte, 0, len(Magic)+1+4)
	head = append(head, Magic...)
	head = append(head, typ)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(payload)))
	h := uint64(fnvOffset)
	h = fnvBytes(h, head[len(Magic):])
	h = fnvBytes(h, payload)
	var total int64
	n, err := w.Write(head)
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(payload)
	total += int64(n)
	if err != nil {
		return total, err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], h)
	n, err = w.Write(tail[:])
	total += int64(n)
	return total, err
}

// ReadFrame reads one frame from r, verifying magic and checksum. It
// returns the type, payload and total bytes consumed. A frame that
// fails validation returns ErrMagic or ErrChecksum; the payload is
// never handed to the caller unverified.
func ReadFrame(r io.Reader) (typ byte, payload []byte, n int64, err error) {
	head := make([]byte, len(Magic)+1+4)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, 0, err
	}
	n = int64(len(head))
	if string(head[:len(Magic)]) != Magic {
		return 0, nil, n, ErrMagic
	}
	typ = head[len(Magic)]
	size := binary.LittleEndian.Uint32(head[len(Magic)+1:])
	if size > MaxFrameBytes {
		return 0, nil, n, fmt.Errorf("wire: frame payload %d bytes exceeds limit", size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, n, err
	}
	n += int64(size)
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, n, err
	}
	n += 8
	h := uint64(fnvOffset)
	h = fnvBytes(h, head[len(Magic):])
	h = fnvBytes(h, payload)
	if binary.LittleEndian.Uint64(tail[:]) != h {
		return 0, nil, n, ErrChecksum
	}
	return typ, payload, n, nil
}

// fnvBytes folds b into a running FNV-1a hash.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// AppendRows serializes fixed-width uint32 rows onto buf in the packed
// PR 1 layout: width, row count, then the IDs row-major, all uint32
// little-endian. Width 0 rows (existence relations) are legal: only
// the count carries information.
func AppendRows(buf []byte, width int, rows [][]uint32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(width))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		for _, v := range r {
			buf = binary.LittleEndian.AppendUint32(buf, v)
		}
	}
	return buf
}

// DecodeRows decodes a packed rows section from buf, returning the
// rows and the remaining bytes. Every row slice is freshly allocated;
// nothing aliases buf.
func DecodeRows(buf []byte) (rows [][]uint32, rest []byte, err error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("wire: rows section truncated header")
	}
	width := int(binary.LittleEndian.Uint32(buf))
	count := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if width != 0 && count > len(buf)/(width*4) {
		return nil, nil, fmt.Errorf("wire: rows section truncated body (%d×%d rows, %d bytes left)", count, width, len(buf))
	}
	// Width-0 rows carry no body, so the count is the only bound; an
	// existence relation never has more than one row, so a huge count
	// is corruption, not data.
	if width == 0 && count > 1<<20 {
		return nil, nil, fmt.Errorf("wire: implausible width-0 row count %d", count)
	}
	need := width * count * 4
	rows = make([][]uint32, count)
	if width == 0 {
		for i := range rows {
			rows[i] = []uint32{}
		}
		return rows, buf, nil
	}
	flat := make([]uint32, width*count)
	for i := range flat {
		flat[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	for i := range rows {
		rows[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	return rows, buf[need:], nil
}

// RowsSize returns the encoded size in bytes of a packed rows section.
func RowsSize(width, count int) int64 {
	return 8 + int64(width)*int64(count)*4
}
