package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		var buf bytes.Buffer
		wrote, err := WriteFrame(&buf, 7, p)
		if err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		if wrote != int64(buf.Len()) {
			t.Fatalf("WriteFrame reported %d bytes, wrote %d", wrote, buf.Len())
		}
		typ, got, n, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != 7 || !bytes.Equal(got, p) || n != wrote {
			t.Fatalf("round trip mismatch: typ=%d len=%d n=%d want typ=7 len=%d n=%d", typ, len(got), n, len(p), wrote)
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := WriteFrame(&buf, 3, payload); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flipping any single bit past the magic must fail the checksum
	// (or the magic check, for early bytes); nothing may decode clean.
	for i := 0; i < len(clean); i++ {
		for bit := 0; bit < 8; bit++ {
			dirty := bytes.Clone(clean)
			dirty[i] ^= 1 << bit
			_, got, _, err := ReadFrame(bytes.NewReader(dirty))
			if err == nil {
				t.Fatalf("corrupt byte %d bit %d decoded cleanly (payload %q)", i, bit, got)
			}
		}
	}
	// Truncations at every length must error, never hang or panic.
	for i := 0; i < len(clean); i++ {
		if _, _, _, err := ReadFrame(bytes.NewReader(clean[:i])); err == nil {
			t.Fatalf("truncated frame (%d bytes) decoded cleanly", i)
		}
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := []byte("NOPE\x00\x00\x00\x00\x00")
	if _, _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrMagic) {
		t.Fatalf("got %v, want ErrMagic", err)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// A length prefix beyond MaxFrameBytes must be rejected before any
	// allocation of that size is attempted.
	head := []byte(Magic)
	head = append(head, 1)
	head = append(head, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, _, _, err := ReadFrame(bytes.NewReader(head)); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
}

func TestRowsRoundTrip(t *testing.T) {
	cases := []struct {
		width int
		rows  [][]uint32
	}{
		{0, nil},
		{0, [][]uint32{{}, {}}},
		{1, [][]uint32{{42}}},
		{3, [][]uint32{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}},
	}
	for _, c := range cases {
		buf := AppendRows(nil, c.width, c.rows)
		if int64(len(buf)) != RowsSize(c.width, len(c.rows)) {
			t.Fatalf("RowsSize(%d,%d)=%d, encoded %d", c.width, len(c.rows), RowsSize(c.width, len(c.rows)), len(buf))
		}
		got, rest, err := DecodeRows(buf)
		if err != nil {
			t.Fatalf("DecodeRows: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeRows left %d bytes", len(rest))
		}
		if len(got) != len(c.rows) {
			t.Fatalf("row count %d, want %d", len(got), len(c.rows))
		}
		for i := range got {
			if len(got[i]) != c.width {
				t.Fatalf("row %d width %d, want %d", i, len(got[i]), c.width)
			}
			for j := range got[i] {
				if got[i][j] != c.rows[i][j] {
					t.Fatalf("row %d col %d: %d != %d", i, j, got[i][j], c.rows[i][j])
				}
			}
		}
	}
}

func TestRowsTruncated(t *testing.T) {
	buf := AppendRows(nil, 2, [][]uint32{{1, 2}, {3, 4}})
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeRows(buf[:i]); err == nil {
			t.Fatalf("truncated rows section (%d bytes) decoded cleanly", i)
		}
	}
}

func TestShardErrorUnwrap(t *testing.T) {
	inner := errors.New("connection refused")
	err := error(&ShardError{Addr: "127.0.0.1:9", Shard: 1, Err: inner})
	if !errors.Is(err, inner) {
		t.Fatal("ShardError does not unwrap to its cause")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 1 {
		t.Fatal("errors.As failed to recover ShardError")
	}
}
