package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, and whenever it does decode successfully, re-encoding
// the result must reproduce an equivalent frame (no silent
// mis-decode). Seeds include a valid frame so mutation explores the
// near-valid space where checksum detection matters.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if _, err := WriteFrame(&valid, 5, []byte("seed payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte(Magic))
	var empty bytes.Buffer
	if _, err := WriteFrame(&empty, 0, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > int64(len(data)) {
			t.Fatalf("ReadFrame consumed %d of %d bytes", n, len(data))
		}
		var re bytes.Buffer
		if _, err := WriteFrame(&re, typ, payload); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:n]) {
			t.Fatalf("decode/encode not involutive: %x vs %x", re.Bytes(), data[:n])
		}
	})
}

// FuzzDecodeRows asserts the packed rows decoder never panics and any
// successful decode round-trips through AppendRows.
func FuzzDecodeRows(f *testing.F) {
	f.Add(AppendRows(nil, 3, [][]uint32{{1, 2, 3}, {4, 5, 6}}))
	f.Add(AppendRows(nil, 0, [][]uint32{{}}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, rest, err := DecodeRows(data)
		if err != nil {
			return
		}
		width := 0
		if len(rows) > 0 {
			width = len(rows[0])
		}
		re := AppendRows(nil, width, rows)
		used := data[:len(data)-len(rest)]
		if len(rows) > 0 && !bytes.Equal(re, used) {
			t.Fatalf("rows decode/encode not involutive")
		}
	})
}
