// Package sparql implements the subset of SPARQL 1.1 exercised by the
// PRoST paper: SELECT queries over a single Basic Graph Pattern, with
// PREFIX declarations, DISTINCT, simple FILTER comparisons, LIMIT and
// OFFSET. The package provides a lexer, a recursive-descent parser, the
// query algebra consumed by all four engines in this repository, and a
// structural classifier that buckets queries into the WatDiv shapes
// (star / linear / snowflake / complex).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// PatternTerm is one position of a triple pattern: either a variable or a
// concrete RDF term.
type PatternTerm struct {
	// Var is the variable name (without '?') when the position is a
	// variable; empty otherwise.
	Var string
	// Term is the concrete term when the position is bound; ignored when
	// Var is non-empty.
	Term rdf.Term
}

// IsVar reports whether the position is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

// String renders the position in SPARQL surface syntax.
func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	return p.Term.String()
}

// Variable returns a PatternTerm for variable name (no '?').
func Variable(name string) PatternTerm { return PatternTerm{Var: name} }

// Bound returns a PatternTerm for a concrete term.
func Bound(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// TriplePattern is one pattern of a Basic Graph Pattern.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the pattern in SPARQL surface syntax.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s", tp.S, tp.P, tp.O)
}

// Vars returns the distinct variable names used by the pattern, in S,P,O
// order.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// HasLiteral reports whether any position of the pattern is bound to a
// literal term. Patterns with literals receive the highest join priority
// in PRoST's statistics-based optimizer (paper §3.3).
func (tp TriplePattern) HasLiteral() bool {
	return (!tp.S.IsVar() && tp.S.Term.IsLiteral()) ||
		(!tp.O.IsVar() && tp.O.Term.IsLiteral())
}

// HasBoundObject reports whether the object position is a concrete term
// (IRI or literal). Bound objects are strong selectivity signals.
func (tp TriplePattern) HasBoundObject() bool { return !tp.O.IsVar() }

// CompareOp enumerates the comparison operators allowed in FILTER.
type CompareOp uint8

// Comparison operators.
const (
	OpEQ CompareOp = iota // =
	OpNE                  // !=
	OpLT                  // <
	OpLE                  // <=
	OpGT                  // >
	OpGE                  // >=
)

// String renders the operator in SPARQL surface syntax.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Filter is a simple comparison constraint "?var OP value". Conjunctions
// (FILTER(a && b)) are flattened into multiple Filter entries at parse
// time.
type Filter struct {
	Var   string
	Op    CompareOp
	Value rdf.Term
}

// String renders the filter in SPARQL surface syntax.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER(?%s %s %s)", f.Var, f.Op, f.Value)
}

// Query is a parsed SPARQL SELECT query over a single BGP.
type Query struct {
	// Name is an optional label (e.g. "S1") attached by the workload
	// generator; the parser leaves it empty.
	Name string
	// Vars is the projection list (variable names without '?'). Empty
	// means SELECT * (project every variable in the BGP).
	Vars []string
	// Distinct reports whether SELECT DISTINCT was used.
	Distinct bool
	// Patterns is the Basic Graph Pattern.
	Patterns []TriplePattern
	// Filters holds the flattened FILTER constraints.
	Filters []Filter
	// Limit caps the number of result rows; <0 means no limit.
	Limit int
	// Offset skips the first rows; 0 means none.
	Offset int
}

// AllVars returns every variable mentioned in the BGP, sorted.
func (q *Query) AllVars() []string {
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Projection returns the effective projection: Vars if present, otherwise
// all variables of the BGP.
func (q *Query) Projection() []string {
	if len(q.Vars) > 0 {
		return q.Vars
	}
	return q.AllVars()
}

// String renders the query in SPARQL surface syntax (without prefixes;
// all IRIs are absolute).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if len(q.Vars) == 0 {
		sb.WriteString("*")
	} else {
		for i, v := range q.Vars {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("?" + v)
		}
	}
	sb.WriteString(" WHERE {\n")
	for _, tp := range q.Patterns {
		sb.WriteString("  " + tp.String() + " .\n")
	}
	for _, f := range q.Filters {
		sb.WriteString("  " + f.String() + "\n")
	}
	sb.WriteString("}")
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, "\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, "\nOFFSET %d", q.Offset)
	}
	return sb.String()
}

// Validate checks structural well-formedness: at least one pattern, every
// projected variable and every filtered variable appears in the BGP, and
// predicate positions are IRIs or variables (no literals).
func (q *Query) Validate() error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("sparql: query has no triple patterns")
	}
	inBGP := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			inBGP[v] = true
		}
		if !tp.P.IsVar() && !tp.P.Term.IsIRI() {
			return fmt.Errorf("sparql: predicate %s is not an IRI", tp.P)
		}
		if !tp.S.IsVar() && tp.S.Term.IsLiteral() {
			return fmt.Errorf("sparql: subject %s is a literal", tp.S)
		}
	}
	for _, v := range q.Vars {
		if !inBGP[v] {
			return fmt.Errorf("sparql: projected variable ?%s not in BGP", v)
		}
	}
	for _, f := range q.Filters {
		if !inBGP[f.Var] {
			return fmt.Errorf("sparql: filtered variable ?%s not in BGP", f.Var)
		}
	}
	return nil
}
