// Package sparql implements the subset of SPARQL 1.1 exercised by the
// PRoST paper and its production extensions: SELECT queries over Basic
// Graph Patterns with PREFIX declarations, DISTINCT, simple FILTER
// comparisons, OPTIONAL groups, UNION branches, ORDER BY, GROUP BY with
// COUNT aggregates, LIMIT and OFFSET. The package provides a lexer, a
// recursive-descent parser, the query algebra consumed by all engines
// in this repository, and a structural classifier that buckets queries
// into the WatDiv shapes (star / linear / snowflake / complex).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// PatternTerm is one position of a triple pattern: either a variable or a
// concrete RDF term.
type PatternTerm struct {
	// Var is the variable name (without '?') when the position is a
	// variable; empty otherwise.
	Var string
	// Term is the concrete term when the position is bound; ignored when
	// Var is non-empty.
	Term rdf.Term
}

// IsVar reports whether the position is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

// String renders the position in SPARQL surface syntax.
func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	return p.Term.String()
}

// Variable returns a PatternTerm for variable name (no '?').
func Variable(name string) PatternTerm { return PatternTerm{Var: name} }

// Bound returns a PatternTerm for a concrete term.
func Bound(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// TriplePattern is one pattern of a Basic Graph Pattern.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the pattern in SPARQL surface syntax.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s", tp.S, tp.P, tp.O)
}

// Vars returns the distinct variable names used by the pattern, in S,P,O
// order.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// HasLiteral reports whether any position of the pattern is bound to a
// literal term. Patterns with literals receive the highest join priority
// in PRoST's statistics-based optimizer (paper §3.3).
func (tp TriplePattern) HasLiteral() bool {
	return (!tp.S.IsVar() && tp.S.Term.IsLiteral()) ||
		(!tp.O.IsVar() && tp.O.Term.IsLiteral())
}

// HasBoundObject reports whether the object position is a concrete term
// (IRI or literal). Bound objects are strong selectivity signals.
func (tp TriplePattern) HasBoundObject() bool { return !tp.O.IsVar() }

// CompareOp enumerates the comparison operators allowed in FILTER.
type CompareOp uint8

// Comparison operators.
const (
	OpEQ CompareOp = iota // =
	OpNE                  // !=
	OpLT                  // <
	OpLE                  // <=
	OpGT                  // >
	OpGE                  // >=
)

// String renders the operator in SPARQL surface syntax.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Filter is a simple comparison constraint "?var OP value". Conjunctions
// (FILTER(a && b)) are flattened into multiple Filter entries at parse
// time.
type Filter struct {
	Var   string
	Op    CompareOp
	Value rdf.Term
}

// String renders the filter in SPARQL surface syntax.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER(?%s %s %s)", f.Var, f.Op, f.Value)
}

// GroupPattern is one UNION branch of a WHERE clause: a Basic Graph
// Pattern with its FILTERs plus any OPTIONAL sub-groups. The parser
// never nests OPTIONAL groups inside each other.
type GroupPattern struct {
	// Patterns is the required Basic Graph Pattern of the group.
	Patterns []TriplePattern
	// Filters holds the flattened FILTER constraints of the group.
	Filters []Filter
	// Optionals holds the OPTIONAL sub-groups, in source order. Each
	// becomes a left-outer join against the required part.
	Optionals []GroupPattern
}

// Vars returns the distinct variables bound by the group, including its
// OPTIONAL sub-groups, sorted.
func (g *GroupPattern) Vars() []string {
	seen := map[string]bool{}
	g.collectVars(seen)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (g *GroupPattern) collectVars(seen map[string]bool) {
	for _, tp := range g.Patterns {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	}
	for i := range g.Optionals {
		g.Optionals[i].collectVars(seen)
	}
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	// Var is the sorted variable (without '?').
	Var string
	// Desc reports DESC(...) ordering; false means ASC.
	Desc bool
}

// CountSpec is one COUNT aggregate from the projection:
// (COUNT(?v) AS ?alias) or (COUNT(*) AS ?alias).
type CountSpec struct {
	// Var is the counted variable; empty means COUNT(*).
	Var string
	// Alias is the projected name of the count column.
	Alias string
}

// Query is a parsed SPARQL SELECT query.
type Query struct {
	// Name is an optional label (e.g. "S1") attached by the workload
	// generator; the parser leaves it empty.
	Name string
	// Vars is the projection list (variable names without '?'),
	// including COUNT aliases in SELECT order. Empty means SELECT *
	// (project every variable in the BGP).
	Vars []string
	// Distinct reports whether SELECT DISTINCT was used.
	Distinct bool
	// Patterns is the Basic Graph Pattern of the first UNION branch.
	// It always mirrors Branches[0].Patterns when Branches is set, so
	// single-BGP consumers keep working unchanged.
	Patterns []TriplePattern
	// Filters holds the flattened FILTER constraints of the first
	// branch (mirror of Branches[0].Filters when Branches is set).
	Filters []Filter
	// Branches holds the UNION branches of the WHERE clause. The
	// parser always fills it; programmatically built queries may leave
	// it empty, in which case Patterns/Filters form the single branch.
	Branches []GroupPattern
	// Order holds the ORDER BY keys, outermost first.
	Order []OrderKey
	// GroupBy holds the GROUP BY variables.
	GroupBy []string
	// Counts holds the COUNT aggregates of the projection.
	Counts []CountSpec
	// Limit caps the number of result rows; <0 means no limit.
	Limit int
	// Offset skips the first rows; 0 means none.
	Offset int
}

// BranchGroups returns the UNION branches of the query, synthesizing a
// single branch from Patterns/Filters for programmatically built
// queries that never populated Branches.
func (q *Query) BranchGroups() []GroupPattern {
	if len(q.Branches) > 0 {
		return q.Branches
	}
	return []GroupPattern{{Patterns: q.Patterns, Filters: q.Filters}}
}

// Extended reports whether the query uses any construct beyond a single
// conjunctive BGP with FILTERs: OPTIONAL, UNION, ORDER BY, GROUP BY,
// COUNT, or LIMIT/OFFSET (which executes as an explicit top-K operator
// with a deterministic total order).
func (q *Query) Extended() bool {
	if len(q.Branches) > 1 || len(q.Order) > 0 || len(q.GroupBy) > 0 || len(q.Counts) > 0 {
		return true
	}
	for i := range q.Branches {
		if len(q.Branches[i].Optionals) > 0 {
			return true
		}
	}
	return q.Limit >= 0 || q.Offset > 0
}

// CountAliases returns the set of projection names produced by COUNT
// aggregates rather than bound by the graph pattern.
func (q *Query) CountAliases() map[string]bool {
	if len(q.Counts) == 0 {
		return nil
	}
	m := make(map[string]bool, len(q.Counts))
	for _, c := range q.Counts {
		m[c.Alias] = true
	}
	return m
}

// AllVars returns every variable bound by the graph pattern (across all
// UNION branches and OPTIONAL groups), sorted. COUNT aliases are not
// included: they are projection names, not pattern bindings.
func (q *Query) AllVars() []string {
	seen := map[string]bool{}
	branches := q.BranchGroups()
	for i := range branches {
		branches[i].collectVars(seen)
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Projection returns the effective projection: Vars if present, otherwise
// all variables of the BGP.
func (q *Query) Projection() []string {
	if len(q.Vars) > 0 {
		return q.Vars
	}
	return q.AllVars()
}

// String renders the query in SPARQL surface syntax (without prefixes;
// all IRIs are absolute).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	aliases := map[string]string{} // alias -> rendered COUNT expression
	for _, c := range q.Counts {
		arg := "*"
		if c.Var != "" {
			arg = "?" + c.Var
		}
		aliases[c.Alias] = fmt.Sprintf("(COUNT(%s) AS ?%s)", arg, c.Alias)
	}
	if len(q.Vars) == 0 {
		sb.WriteString("*")
	} else {
		for i, v := range q.Vars {
			if i > 0 {
				sb.WriteByte(' ')
			}
			if expr, ok := aliases[v]; ok {
				sb.WriteString(expr)
			} else {
				sb.WriteString("?" + v)
			}
		}
	}
	sb.WriteString(" WHERE {\n")
	branches := q.BranchGroups()
	if len(branches) == 1 {
		writeGroupBody(&sb, &branches[0], "  ")
	} else {
		for i := range branches {
			if i > 0 {
				sb.WriteString("  UNION\n")
			}
			sb.WriteString("  {\n")
			writeGroupBody(&sb, &branches[i], "    ")
			sb.WriteString("  }\n")
		}
	}
	sb.WriteString("}")
	if len(q.GroupBy) > 0 {
		sb.WriteString("\nGROUP BY")
		for _, v := range q.GroupBy {
			sb.WriteString(" ?" + v)
		}
	}
	if len(q.Order) > 0 {
		sb.WriteString("\nORDER BY")
		for _, k := range q.Order {
			if k.Desc {
				sb.WriteString(" DESC(?" + k.Var + ")")
			} else {
				sb.WriteString(" ASC(?" + k.Var + ")")
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, "\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&sb, "\nOFFSET %d", q.Offset)
	}
	return sb.String()
}

// writeGroupBody renders a group's patterns, filters, and OPTIONAL
// sub-groups with the given indentation.
func writeGroupBody(sb *strings.Builder, g *GroupPattern, indent string) {
	for _, tp := range g.Patterns {
		sb.WriteString(indent + tp.String() + " .\n")
	}
	for _, f := range g.Filters {
		sb.WriteString(indent + f.String() + "\n")
	}
	for i := range g.Optionals {
		sb.WriteString(indent + "OPTIONAL {\n")
		writeGroupBody(sb, &g.Optionals[i], indent+"  ")
		sb.WriteString(indent + "}\n")
	}
}

// Validate checks structural well-formedness: every branch has at least
// one pattern, predicates are IRIs or variables, subjects are not
// literals, filters reference variables bound by their own group, UNION
// branches bind identical variable sets, OPTIONAL groups share at least
// one variable with their required part, projected variables are bound
// (or COUNT aliases), ORDER BY keys are projected, and COUNT aggregates
// come with a GROUP BY.
func (q *Query) Validate() error {
	branches := q.BranchGroups()
	var branchVars []string
	for i := range branches {
		b := &branches[i]
		if len(b.Patterns) == 0 {
			return fmt.Errorf("sparql: query has no triple patterns")
		}
		baseVars, err := validateGroup(b)
		if err != nil {
			return err
		}
		for j := range b.Optionals {
			o := &b.Optionals[j]
			if len(o.Patterns) == 0 {
				return fmt.Errorf("sparql: OPTIONAL group has no triple patterns")
			}
			optVars, err := validateGroup(o)
			if err != nil {
				return err
			}
			shared := false
			for v := range optVars {
				if baseVars[v] {
					shared = true
					break
				}
			}
			if !shared {
				return fmt.Errorf("sparql: OPTIONAL group shares no variable with the required pattern")
			}
		}
		vars := b.Vars()
		if i == 0 {
			branchVars = vars
		} else if !equalStrings(branchVars, vars) {
			return fmt.Errorf("sparql: UNION branches bind different variables (%v vs %v)", branchVars, vars)
		}
	}
	bound := map[string]bool{}
	for _, v := range branchVars {
		bound[v] = true
	}
	aliases := map[string]bool{}
	for _, c := range q.Counts {
		if c.Alias == "" {
			return fmt.Errorf("sparql: COUNT aggregate missing alias")
		}
		if aliases[c.Alias] {
			return fmt.Errorf("sparql: duplicate COUNT alias ?%s", c.Alias)
		}
		if bound[c.Alias] {
			return fmt.Errorf("sparql: COUNT alias ?%s clashes with a pattern variable", c.Alias)
		}
		aliases[c.Alias] = true
		if c.Var != "" && !bound[c.Var] {
			return fmt.Errorf("sparql: counted variable ?%s not in BGP", c.Var)
		}
	}
	if len(q.Counts) > 0 && len(q.GroupBy) == 0 {
		return fmt.Errorf("sparql: COUNT aggregate requires GROUP BY")
	}
	grouped := map[string]bool{}
	for _, v := range q.GroupBy {
		if !bound[v] {
			return fmt.Errorf("sparql: GROUP BY variable ?%s not in BGP", v)
		}
		grouped[v] = true
	}
	for _, v := range q.Vars {
		if aliases[v] {
			continue
		}
		if !bound[v] {
			return fmt.Errorf("sparql: projected variable ?%s not in BGP", v)
		}
		if len(q.GroupBy) > 0 && !grouped[v] {
			return fmt.Errorf("sparql: projected variable ?%s is neither grouped nor aggregated", v)
		}
	}
	if len(q.GroupBy) > 0 && len(q.Vars) == 0 {
		return fmt.Errorf("sparql: SELECT * cannot be combined with GROUP BY")
	}
	proj := map[string]bool{}
	for _, v := range q.Projection() {
		proj[v] = true
	}
	for _, k := range q.Order {
		if !proj[k.Var] {
			return fmt.Errorf("sparql: ORDER BY key ?%s is not projected", k.Var)
		}
	}
	return nil
}

// validateGroup checks one group's term rules and filter scoping and
// returns the variables bound by its own patterns.
func validateGroup(g *GroupPattern) (map[string]bool, error) {
	vars := map[string]bool{}
	for _, tp := range g.Patterns {
		for _, v := range tp.Vars() {
			vars[v] = true
		}
		if !tp.P.IsVar() && !tp.P.Term.IsIRI() {
			return nil, fmt.Errorf("sparql: predicate %s is not an IRI", tp.P)
		}
		if !tp.S.IsVar() && tp.S.Term.IsLiteral() {
			return nil, fmt.Errorf("sparql: subject %s is a literal", tp.S)
		}
	}
	for _, f := range g.Filters {
		if !vars[f.Var] {
			return nil, fmt.Errorf("sparql: filtered variable ?%s not in BGP", f.Var)
		}
	}
	return vars, nil
}

// equalStrings reports element-wise equality of two sorted slices.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
