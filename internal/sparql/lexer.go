package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token categories.
type tokenKind uint8

const (
	tokEOF       tokenKind = iota
	tokKeyword             // SELECT, WHERE, PREFIX, DISTINCT, FILTER, LIMIT, OFFSET
	tokVar                 // ?name or $name
	tokIRI                 // <http://…>
	tokPName               // prefix:local or prefix:
	tokString              // "…" with optional @lang / ^^<dt> handled by parser
	tokNumber              // integer or decimal
	tokA                   // the keyword 'a' (rdf:type)
	tokLBrace              // {
	tokRBrace              // }
	tokDot                 // .
	tokSemicolon           // ;
	tokComma               // ,
	tokLParen              // (
	tokRParen              // )
	tokOp                  // = != < <= > >= && *
	tokLangTag             // @en
	tokDTMarker            // ^^
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokKeyword: "keyword", tokVar: "variable", tokIRI: "IRI",
		tokPName: "prefixed name", tokString: "string", tokNumber: "number",
		tokA: "'a'", tokLBrace: "'{'", tokRBrace: "'}'", tokDot: "'.'",
		tokSemicolon: "';'", tokComma: "','", tokLParen: "'('", tokRParen: "')'",
		tokOp: "operator", tokLangTag: "language tag", tokDTMarker: "'^^'",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string // keyword upper-cased; IRI without <>; string unescaped
	line int
	col  int
}

// lexer turns SPARQL text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// SyntaxError reports a lexical or grammatical error with position info.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "PREFIX": true, "DISTINCT": true,
	"FILTER": true, "LIMIT": true, "OFFSET": true, "BASE": true,
	"OPTIONAL": true, "UNION": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "GROUP": true, "COUNT": true, "AS": true,
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: startLine, col: startCol}
	}
	if l.pos >= len(l.src) {
		return mk(tokEOF, ""), nil
	}
	c := l.peekByte()
	switch {
	case c == '{':
		l.advance()
		return mk(tokLBrace, "{"), nil
	case c == '}':
		l.advance()
		return mk(tokRBrace, "}"), nil
	case c == '.':
		l.advance()
		return mk(tokDot, "."), nil
	case c == ';':
		l.advance()
		return mk(tokSemicolon, ";"), nil
	case c == ',':
		l.advance()
		return mk(tokComma, ","), nil
	case c == '(':
		l.advance()
		return mk(tokLParen, "("), nil
	case c == ')':
		l.advance()
		return mk(tokRParen, ")"), nil
	case c == '*':
		l.advance()
		return mk(tokOp, "*"), nil
	case c == '?' || c == '$':
		l.advance()
		name := l.takeWhile(isVarNameChar)
		if name == "" {
			return token{}, l.errf("empty variable name")
		}
		return mk(tokVar, name), nil
	case c == '<':
		// Either an IRI (<…>) or a comparison operator (< / <=).
		if iri, ok := l.tryIRI(); ok {
			return mk(tokIRI, iri), nil
		}
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokOp, "<="), nil
		}
		return mk(tokOp, "<"), nil
	case c == '>':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokOp, ">="), nil
		}
		return mk(tokOp, ">"), nil
	case c == '=':
		l.advance()
		return mk(tokOp, "="), nil
	case c == '!':
		l.advance()
		if l.peekByte() != '=' {
			return token{}, l.errf("expected '=' after '!'")
		}
		l.advance()
		return mk(tokOp, "!="), nil
	case c == '&':
		l.advance()
		if l.peekByte() != '&' {
			return token{}, l.errf("expected '&' after '&'")
		}
		l.advance()
		return mk(tokOp, "&&"), nil
	case c == '"':
		s, err := l.stringLiteral()
		if err != nil {
			return token{}, err
		}
		return mk(tokString, s), nil
	case c == '@':
		l.advance()
		tag := l.takeWhile(func(r rune) bool {
			return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-'
		})
		if tag == "" {
			return token{}, l.errf("empty language tag")
		}
		return mk(tokLangTag, tag), nil
	case c == '^':
		l.advance()
		if l.peekByte() != '^' {
			return token{}, l.errf("expected '^^'")
		}
		l.advance()
		return mk(tokDTMarker, "^^"), nil
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		num := l.takeWhile(func(r rune) bool {
			return r >= '0' && r <= '9' || r == '.' || r == '-' || r == '+' || r == 'e' || r == 'E'
		})
		return mk(tokNumber, num), nil
	default:
		word := l.takeWhile(isNameChar)
		if word == "" {
			return token{}, l.errf("unexpected character %q", c)
		}
		// Prefixed name: word ends with ':' or is followed by ':'.
		if l.peekByte() == ':' {
			l.advance()
			local := l.takeWhile(isNameChar)
			return mk(tokPName, word+":"+local), nil
		}
		up := strings.ToUpper(word)
		if keywords[up] {
			return mk(tokKeyword, up), nil
		}
		if word == "a" {
			return mk(tokA, "a"), nil
		}
		return token{}, l.errf("unexpected identifier %q", word)
	}
}

// tryIRI attempts to lex <…> starting at the current '<'. It succeeds
// only if a '>' appears before any whitespace, which disambiguates IRIs
// from the less-than operator in FILTER expressions.
func (l *lexer) tryIRI() (string, bool) {
	i := l.pos + 1
	for i < len(l.src) {
		c := l.src[i]
		if c == '>' {
			iri := l.src[l.pos+1 : i]
			// Consume up to and including '>'.
			for l.pos <= i {
				l.advance()
			}
			return iri, true
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			return "", false
		}
		i++
	}
	return "", false
}

// stringLiteral lexes a double-quoted string with the standard escapes.
func (l *lexer) stringLiteral() (string, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", l.errf("unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return sb.String(), nil
		case '\\':
			if l.pos >= len(l.src) {
				return "", l.errf("dangling backslash in string")
			}
			e := l.advance()
			switch e {
			case 't':
				sb.WriteByte('\t')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return "", l.errf("unknown string escape \\%c", e)
			}
		default:
			sb.WriteByte(c)
		}
	}
}

// takeWhile consumes runes while pred holds and returns them.
func (l *lexer) takeWhile(pred func(rune) bool) string {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !pred(r) {
			break
		}
		for i := 0; i < size; i++ {
			l.advance()
		}
	}
	return l.src[start:l.pos]
}

func isVarNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}
