package sparql

// Shape classifies a BGP's join structure, matching the four WatDiv
// basic-testing query families used throughout the paper's evaluation.
type Shape uint8

// The WatDiv query shapes.
const (
	// ShapeStar: every triple pattern shares one subject variable.
	ShapeStar Shape = iota
	// ShapeLinear: the patterns form a chain where each step's object is
	// the next step's subject (a path query).
	ShapeLinear
	// ShapeSnowflake: several subject-stars joined together acyclically.
	ShapeSnowflake
	// ShapeComplex: anything else (cycles, many interconnected stars,
	// shared objects, …).
	ShapeComplex
)

// String implements fmt.Stringer using the paper's single-letter codes.
func (s Shape) String() string {
	switch s {
	case ShapeStar:
		return "S"
	case ShapeLinear:
		return "L"
	case ShapeSnowflake:
		return "F"
	case ShapeComplex:
		return "C"
	default:
		return "?"
	}
}

// Label returns the long human-readable label used in tables.
func (s Shape) Label() string {
	switch s {
	case ShapeStar:
		return "Star"
	case ShapeLinear:
		return "Linear"
	case ShapeSnowflake:
		return "Snowflake"
	case ShapeComplex:
		return "Complex"
	default:
		return "Unknown"
	}
}

// Shape classifies the query's BGP structure. The classifier is purely
// structural: it inspects which variables patterns share and in which
// positions, then distinguishes the four families used by WatDiv.
func (q *Query) Shape() Shape {
	pats := q.Patterns
	if len(pats) == 0 {
		return ShapeComplex
	}
	if len(pats) == 1 {
		return ShapeLinear // a single pattern is a trivial path
	}

	// Star: all patterns share one subject variable.
	if sameSubjectVar(pats) {
		return ShapeStar
	}

	// Build star groups keyed by subject position.
	groups := subjectGroups(pats)

	// Linear: every group is a single pattern and the patterns chain
	// object→subject without branching.
	if len(groups) == len(pats) && isChain(pats) {
		return ShapeLinear
	}

	// Snowflake: at least one multi-pattern star, and the inter-group
	// join graph forms a tree (no cycles, connected).
	if hasMultiPatternGroup(groups) && groupGraphIsTree(groups) {
		return ShapeSnowflake
	}
	return ShapeComplex
}

// sameSubjectVar reports whether all patterns use one shared subject
// variable.
func sameSubjectVar(pats []TriplePattern) bool {
	if !pats[0].S.IsVar() {
		return false
	}
	v := pats[0].S.Var
	for _, tp := range pats[1:] {
		if !tp.S.IsVar() || tp.S.Var != v {
			return false
		}
	}
	return true
}

// subjectKey identifies a star group: the subject variable name, or the
// rendered term for bound subjects.
func subjectKey(tp TriplePattern) string {
	if tp.S.IsVar() {
		return "?" + tp.S.Var
	}
	return tp.S.Term.String()
}

// subjectGroups partitions patterns by subject position.
func subjectGroups(pats []TriplePattern) map[string][]TriplePattern {
	groups := make(map[string][]TriplePattern)
	for _, tp := range pats {
		k := subjectKey(tp)
		groups[k] = append(groups[k], tp)
	}
	return groups
}

func hasMultiPatternGroup(groups map[string][]TriplePattern) bool {
	for _, g := range groups {
		if len(g) > 1 {
			return true
		}
	}
	return false
}

// isChain reports whether single-subject patterns form a simple
// object→subject path: exactly one pattern whose subject is not any
// other pattern's object (the head), and each pattern's object variable
// is the subject of at most one other pattern.
func isChain(pats []TriplePattern) bool {
	subjectOf := map[string]int{} // var -> count as subject
	objectOf := map[string]int{}  // var -> count as object
	for _, tp := range pats {
		if tp.S.IsVar() {
			subjectOf[tp.S.Var]++
		}
		if tp.O.IsVar() {
			objectOf[tp.O.Var]++
		}
	}
	// In a chain of n patterns, n-1 variables appear as both a subject
	// and an object (the links), each exactly once in each role.
	links := 0
	for v, sc := range subjectOf {
		oc := objectOf[v]
		if sc > 1 || oc > 1 {
			return false // branching
		}
		if sc == 1 && oc == 1 {
			links++
		}
	}
	return links == len(pats)-1
}

// groupGraphIsTree builds the variable-sharing graph between star groups
// and reports whether it is a connected tree (acyclic). Snowflakes are
// exactly the multi-star BGPs whose group graph is a tree.
func groupGraphIsTree(groups map[string][]TriplePattern) bool {
	// Give groups stable integer IDs.
	ids := map[string]int{}
	var keys []string
	for k := range groups {
		ids[k] = len(keys)
		keys = append(keys, k)
	}
	n := len(keys)
	if n <= 1 {
		return true
	}
	// varUsers[v] = set of group IDs touching variable v.
	varUsers := map[string]map[int]bool{}
	for k, pats := range groups {
		gid := ids[k]
		for _, tp := range pats {
			for _, v := range tp.Vars() {
				if varUsers[v] == nil {
					varUsers[v] = map[int]bool{}
				}
				varUsers[v][gid] = true
			}
		}
	}
	// Union-find to count connected components and detect cycles.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	edges := 0
	for _, users := range varUsers {
		if len(users) < 2 {
			continue
		}
		// Connect all groups sharing this variable pairwise along a
		// spanning path (len(users)-1 edges).
		var list []int
		for g := range users {
			list = append(list, g)
		}
		for i := 1; i < len(list); i++ {
			a, b := find(list[0]), find(list[i])
			edges++
			if a == b {
				return false // cycle
			}
			parent[a] = b
		}
	}
	// Tree: connected (single root) with exactly n-1 edges.
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return false // disconnected
		}
	}
	return edges == n-1
}
