package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL SELECT query and validates it.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src), prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and fixed query sets.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// parser is a recursive-descent parser over the lexer's token stream with
// one token of lookahead.
type parser struct {
	lex      *lexer
	tok      token
	prefixes map[string]string
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// query = prologue SELECT [DISTINCT] (vars|*) WHERE group [LIMIT n] [OFFSET n]
func (p *parser) query() (*Query, error) {
	if err := p.prologue(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "SELECT" {
		return nil, p.errf("expected SELECT, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.tok.kind == tokKeyword && p.tok.text == "DISTINCT" {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// Projection: '*' or one or more variables.
	if p.tok.kind == tokOp && p.tok.text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for p.tok.kind == tokVar {
			q.Vars = append(q.Vars, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if len(q.Vars) == 0 {
			return nil, p.errf("SELECT needs '*' or at least one variable")
		}
	}
	if p.tok.kind != tokKeyword || p.tok.text != "WHERE" {
		return nil, p.errf("expected WHERE, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.groupGraphPattern(q); err != nil {
		return nil, err
	}
	// Solution modifiers.
	for p.tok.kind == tokKeyword && (p.tok.text == "LIMIT" || p.tok.text == "OFFSET") {
		kw := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		var n int
		if _, err := fmt.Sscanf(num.text, "%d", &n); err != nil || n < 0 {
			return nil, p.errf("invalid %s value %q", kw, num.text)
		}
		if kw == "LIMIT" {
			q.Limit = n
		} else {
			q.Offset = n
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing %s %q", p.tok.kind, p.tok.text)
	}
	return q, nil
}

// prologue = (PREFIX pname: <iri>)*
func (p *parser) prologue() error {
	for p.tok.kind == tokKeyword && (p.tok.text == "PREFIX" || p.tok.text == "BASE") {
		kw := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if kw == "BASE" {
			if _, err := p.expect(tokIRI); err != nil {
				return err
			}
			continue
		}
		name, err := p.expect(tokPName)
		if err != nil {
			return err
		}
		if !strings.HasSuffix(name.text, ":") {
			return p.errf("prefix declaration %q must end in ':'", name.text)
		}
		iri, err := p.expect(tokIRI)
		if err != nil {
			return err
		}
		p.prefixes[strings.TrimSuffix(name.text, ":")] = iri.text
	}
	return nil
}

// groupGraphPattern = '{' (triplesBlock | filter)* '}'
func (p *parser) groupGraphPattern(q *Query) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return p.errf("unexpected end of input inside group pattern")
		}
		if p.tok.kind == tokKeyword && p.tok.text == "FILTER" {
			if err := p.filter(q); err != nil {
				return err
			}
			continue
		}
		if err := p.triplesSameSubject(q); err != nil {
			return err
		}
		// Optional '.' separator between triple blocks.
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	_, err := p.expect(tokRBrace)
	return err
}

// triplesSameSubject = term (predObjList (';' predObjList)*)
func (p *parser) triplesSameSubject(q *Query) error {
	s, err := p.patternTerm(true)
	if err != nil {
		return err
	}
	for {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		// Object list: o1, o2, …
		for {
			o, err := p.patternTerm(false)
			if err != nil {
				return err
			}
			q.Patterns = append(q.Patterns, TriplePattern{S: s, P: pred, O: o})
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind != tokSemicolon {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
		// Allow a dangling ';' before '.' or '}'.
		if p.tok.kind == tokDot || p.tok.kind == tokRBrace {
			return nil
		}
	}
}

// predicate = 'a' | IRI | pname | var
func (p *parser) predicate() (PatternTerm, error) {
	switch p.tok.kind {
	case tokA:
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewIRI(RDFType)), nil
	case tokVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Variable(v), nil
	case tokIRI:
		iri := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewIRI(iri)), nil
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return PatternTerm{}, err
		}
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(t), nil
	default:
		return PatternTerm{}, p.errf("expected predicate, found %s %q", p.tok.kind, p.tok.text)
	}
}

// RDFType is the IRI bound by the 'a' keyword.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// patternTerm parses a subject (subjectPos) or object position.
func (p *parser) patternTerm(subjectPos bool) (PatternTerm, error) {
	switch p.tok.kind {
	case tokVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Variable(v), nil
	case tokIRI:
		iri := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewIRI(iri)), nil
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return PatternTerm{}, err
		}
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(t), nil
	case tokString:
		if subjectPos {
			return PatternTerm{}, p.errf("literal in subject position")
		}
		return p.literalTail(p.tok.text)
	case tokNumber:
		if subjectPos {
			return PatternTerm{}, p.errf("literal in subject position")
		}
		lex := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewTypedLiteral(lex, rdf.XSDInteger)), nil
	default:
		return PatternTerm{}, p.errf("expected term, found %s %q", p.tok.kind, p.tok.text)
	}
}

// literalTail finishes a string literal: optional @lang or ^^<datatype>.
func (p *parser) literalTail(lex string) (PatternTerm, error) {
	if err := p.advance(); err != nil {
		return PatternTerm{}, err
	}
	switch p.tok.kind {
	case tokLangTag:
		tag := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewLangLiteral(lex, tag)), nil
	case tokDTMarker:
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		switch p.tok.kind {
		case tokIRI:
			dt := p.tok.text
			if err := p.advance(); err != nil {
				return PatternTerm{}, err
			}
			return Bound(rdf.NewTypedLiteral(lex, dt)), nil
		case tokPName:
			t, err := p.expandPName(p.tok.text)
			if err != nil {
				return PatternTerm{}, err
			}
			if err := p.advance(); err != nil {
				return PatternTerm{}, err
			}
			return Bound(rdf.NewTypedLiteral(lex, t.Value)), nil
		default:
			return PatternTerm{}, p.errf("expected datatype IRI after '^^'")
		}
	default:
		return Bound(rdf.NewLiteral(lex)), nil
	}
}

// expandPName resolves prefix:local against declared prefixes.
func (p *parser) expandPName(pname string) (rdf.Term, error) {
	i := strings.IndexByte(pname, ':')
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return rdf.Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return rdf.NewIRI(base + local), nil
}

// filter = FILTER '(' comparison ('&&' comparison)* ')'
func (p *parser) filter(q *Query) error {
	if err := p.advance(); err != nil { // consume FILTER
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for {
		f, err := p.comparison()
		if err != nil {
			return err
		}
		q.Filters = append(q.Filters, f)
		if p.tok.kind == tokOp && p.tok.text == "&&" {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err := p.expect(tokRParen)
	return err
}

// comparison = var OP value
func (p *parser) comparison() (Filter, error) {
	v, err := p.expect(tokVar)
	if err != nil {
		return Filter{}, err
	}
	if p.tok.kind != tokOp {
		return Filter{}, p.errf("expected comparison operator, found %s %q", p.tok.kind, p.tok.text)
	}
	var op CompareOp
	switch p.tok.text {
	case "=":
		op = OpEQ
	case "!=":
		op = OpNE
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	default:
		return Filter{}, p.errf("unsupported operator %q in FILTER", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return Filter{}, err
	}
	// Value: IRI, pname, string literal or number.
	switch p.tok.kind {
	case tokIRI:
		t := rdf.NewIRI(p.tok.text)
		if err := p.advance(); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: t}, nil
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return Filter{}, err
		}
		if err := p.advance(); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: t}, nil
	case tokString:
		pt, err := p.literalTail(p.tok.text)
		if err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: pt.Term}, nil
	case tokNumber:
		lex := p.tok.text
		if err := p.advance(); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: rdf.NewTypedLiteral(lex, rdf.XSDInteger)}, nil
	default:
		return Filter{}, p.errf("expected FILTER value, found %s %q", p.tok.kind, p.tok.text)
	}
}
