package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL SELECT query and validates it.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src), prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and fixed query sets.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// parser is a recursive-descent parser over the lexer's token stream with
// one token of lookahead.
type parser struct {
	lex      *lexer
	tok      token
	prefixes map[string]string
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// query = prologue SELECT [DISTINCT] projection WHERE whereClause
//
//	[GROUP BY vars] [ORDER BY keys] [LIMIT n] [OFFSET n]
func (p *parser) query() (*Query, error) {
	if err := p.prologue(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "SELECT" {
		return nil, p.errf("expected SELECT, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.tok.kind == tokKeyword && p.tok.text == "DISTINCT" {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// Projection: '*', or one or more variables / (COUNT(...) AS ?x)
	// expressions.
	if p.tok.kind == tokOp && p.tok.text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
	proj:
		for {
			switch {
			case p.tok.kind == tokVar:
				q.Vars = append(q.Vars, p.tok.text)
				if err := p.advance(); err != nil {
					return nil, err
				}
			case p.tok.kind == tokLParen:
				if err := p.countProjection(q); err != nil {
					return nil, err
				}
			default:
				break proj
			}
		}
		if len(q.Vars) == 0 {
			return nil, p.errf("SELECT needs '*' or at least one variable")
		}
	}
	if p.tok.kind != tokKeyword || p.tok.text != "WHERE" {
		return nil, p.errf("expected WHERE, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.whereClause(q); err != nil {
		return nil, err
	}
	// Solution modifiers.
mods:
	for p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "GROUP":
			if err := p.groupByClause(q); err != nil {
				return nil, err
			}
		case "ORDER":
			if err := p.orderByClause(q); err != nil {
				return nil, err
			}
		case "LIMIT", "OFFSET":
			kw := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			num, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			var n int
			if _, err := fmt.Sscanf(num.text, "%d", &n); err != nil || n < 0 {
				return nil, p.errf("invalid %s value %q", kw, num.text)
			}
			if kw == "LIMIT" {
				q.Limit = n
			} else {
				q.Offset = n
			}
		default:
			break mods
		}
	}
	if len(q.Counts) > 0 && len(q.GroupBy) == 0 {
		return nil, p.errf("COUNT aggregate requires a GROUP BY clause")
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing %s %q", p.tok.kind, p.tok.text)
	}
	return q, nil
}

// countProjection = '(' COUNT '(' ('*'|var) ')' AS var ')'
func (p *parser) countProjection(q *Query) error {
	if err := p.advance(); err != nil { // consume '('
		return err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "COUNT" {
		return p.errf("expected COUNT in projection expression, found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var target string // empty means COUNT(*)
	switch {
	case p.tok.kind == tokOp && p.tok.text == "*":
		if err := p.advance(); err != nil {
			return err
		}
	case p.tok.kind == tokVar:
		target = p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
	default:
		return p.errf("COUNT argument must be '*' or a variable, found %s %q", p.tok.kind, p.tok.text)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "AS" {
		return p.errf("expected AS after COUNT(...), found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	alias, err := p.expect(tokVar)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	q.Counts = append(q.Counts, CountSpec{Var: target, Alias: alias.text})
	q.Vars = append(q.Vars, alias.text)
	return nil
}

// groupByClause = GROUP BY var+
func (p *parser) groupByClause(q *Query) error {
	if err := p.advance(); err != nil { // consume GROUP
		return err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "BY" {
		return p.errf("expected BY after GROUP, found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind == tokVar {
		q.GroupBy = append(q.GroupBy, p.tok.text)
		if err := p.advance(); err != nil {
			return err
		}
	}
	if len(q.GroupBy) == 0 {
		return p.errf("GROUP BY needs at least one variable")
	}
	return nil
}

// orderByClause = ORDER BY (var | ASC '(' var ')' | DESC '(' var ')')+
func (p *parser) orderByClause(q *Query) error {
	if err := p.advance(); err != nil { // consume ORDER
		return err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "BY" {
		return p.errf("expected BY after ORDER, found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return err
	}
	n := 0
	for {
		switch {
		case p.tok.kind == tokVar:
			q.Order = append(q.Order, OrderKey{Var: p.tok.text})
			if err := p.advance(); err != nil {
				return err
			}
		case p.tok.kind == tokKeyword && (p.tok.text == "ASC" || p.tok.text == "DESC"):
			desc := p.tok.text == "DESC"
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokLParen {
				return p.errf("expected '(' after %s in ORDER BY, found %s %q",
					map[bool]string{true: "DESC", false: "ASC"}[desc], p.tok.kind, p.tok.text)
			}
			if err := p.advance(); err != nil {
				return err
			}
			v, err := p.expect(tokVar)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			q.Order = append(q.Order, OrderKey{Var: v.text, Desc: desc})
		default:
			if n == 0 {
				return p.errf("ORDER BY needs at least one sort key")
			}
			return nil
		}
		n++
	}
}

// prologue = (PREFIX pname: <iri>)*
func (p *parser) prologue() error {
	for p.tok.kind == tokKeyword && (p.tok.text == "PREFIX" || p.tok.text == "BASE") {
		kw := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if kw == "BASE" {
			if _, err := p.expect(tokIRI); err != nil {
				return err
			}
			continue
		}
		name, err := p.expect(tokPName)
		if err != nil {
			return err
		}
		if !strings.HasSuffix(name.text, ":") {
			return p.errf("prefix declaration %q must end in ':'", name.text)
		}
		iri, err := p.expect(tokIRI)
		if err != nil {
			return err
		}
		p.prefixes[strings.TrimSuffix(name.text, ":")] = iri.text
	}
	return nil
}

// whereClause = '{' groupBody '}'
//
//	| '{' '{' groupBody '}' (UNION '{' groupBody '}')+ '}'
func (p *parser) whereClause(q *Query) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	if p.tok.kind == tokLBrace {
		// Union form: two or more braced branches joined by UNION.
		for {
			var g GroupPattern
			if _, err := p.expect(tokLBrace); err != nil {
				return err
			}
			if err := p.groupBody(&g, true); err != nil {
				return err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return err
			}
			q.Branches = append(q.Branches, g)
			if p.tok.kind == tokKeyword && p.tok.text == "UNION" {
				if err := p.advance(); err != nil {
					return err
				}
				if p.tok.kind != tokLBrace {
					return p.errf("expected '{' after UNION, found %s %q", p.tok.kind, p.tok.text)
				}
				continue
			}
			break
		}
		if len(q.Branches) < 2 {
			return p.errf("expected UNION after group, found %s %q", p.tok.kind, p.tok.text)
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return err
		}
	} else {
		var g GroupPattern
		if err := p.groupBody(&g, true); err != nil {
			return err
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return err
		}
		q.Branches = append(q.Branches, g)
	}
	// Mirror the first branch so single-BGP consumers keep working.
	q.Patterns = q.Branches[0].Patterns
	q.Filters = q.Branches[0].Filters
	return nil
}

// groupBody = (triplesBlock | filter | OPTIONAL '{' groupBody '}')*
//
// The body runs until the closing '}' (not consumed). OPTIONAL groups
// may not nest; allowOptional is false inside one.
func (p *parser) groupBody(g *GroupPattern, allowOptional bool) error {
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return p.errf("unexpected end of input inside group pattern")
		}
		if p.tok.kind == tokKeyword && p.tok.text == "FILTER" {
			if err := p.filterClause(&g.Filters); err != nil {
				return err
			}
			continue
		}
		if p.tok.kind == tokKeyword && p.tok.text == "OPTIONAL" {
			if !allowOptional {
				return p.errf("nested OPTIONAL groups are not supported")
			}
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokLBrace {
				return p.errf("expected '{' after OPTIONAL, found %s %q", p.tok.kind, p.tok.text)
			}
			if err := p.advance(); err != nil {
				return err
			}
			var opt GroupPattern
			if err := p.groupBody(&opt, false); err != nil {
				return err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return err
			}
			g.Optionals = append(g.Optionals, opt)
			continue
		}
		if p.tok.kind == tokLBrace {
			return p.errf("unexpected '{' inside group pattern (UNION branches must wrap the whole WHERE clause)")
		}
		if err := p.triplesSameSubject(&g.Patterns); err != nil {
			return err
		}
		// Optional '.' separator between triple blocks.
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	return nil
}

// triplesSameSubject = term (predObjList (';' predObjList)*)
func (p *parser) triplesSameSubject(pats *[]TriplePattern) error {
	s, err := p.patternTerm(true)
	if err != nil {
		return err
	}
	for {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		// Object list: o1, o2, …
		for {
			o, err := p.patternTerm(false)
			if err != nil {
				return err
			}
			*pats = append(*pats, TriplePattern{S: s, P: pred, O: o})
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind != tokSemicolon {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
		// Allow a dangling ';' before '.' or '}'.
		if p.tok.kind == tokDot || p.tok.kind == tokRBrace {
			return nil
		}
	}
}

// predicate = 'a' | IRI | pname | var
func (p *parser) predicate() (PatternTerm, error) {
	switch p.tok.kind {
	case tokA:
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewIRI(RDFType)), nil
	case tokVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Variable(v), nil
	case tokIRI:
		iri := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewIRI(iri)), nil
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return PatternTerm{}, err
		}
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(t), nil
	default:
		return PatternTerm{}, p.errf("expected predicate, found %s %q", p.tok.kind, p.tok.text)
	}
}

// RDFType is the IRI bound by the 'a' keyword.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// patternTerm parses a subject (subjectPos) or object position.
func (p *parser) patternTerm(subjectPos bool) (PatternTerm, error) {
	switch p.tok.kind {
	case tokVar:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Variable(v), nil
	case tokIRI:
		iri := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewIRI(iri)), nil
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return PatternTerm{}, err
		}
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(t), nil
	case tokString:
		if subjectPos {
			return PatternTerm{}, p.errf("literal in subject position")
		}
		return p.literalTail(p.tok.text)
	case tokNumber:
		if subjectPos {
			return PatternTerm{}, p.errf("literal in subject position")
		}
		lex := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewTypedLiteral(lex, rdf.XSDInteger)), nil
	default:
		return PatternTerm{}, p.errf("expected term, found %s %q", p.tok.kind, p.tok.text)
	}
}

// literalTail finishes a string literal: optional @lang or ^^<datatype>.
func (p *parser) literalTail(lex string) (PatternTerm, error) {
	if err := p.advance(); err != nil {
		return PatternTerm{}, err
	}
	switch p.tok.kind {
	case tokLangTag:
		tag := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		return Bound(rdf.NewLangLiteral(lex, tag)), nil
	case tokDTMarker:
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		switch p.tok.kind {
		case tokIRI:
			dt := p.tok.text
			if err := p.advance(); err != nil {
				return PatternTerm{}, err
			}
			return Bound(rdf.NewTypedLiteral(lex, dt)), nil
		case tokPName:
			t, err := p.expandPName(p.tok.text)
			if err != nil {
				return PatternTerm{}, err
			}
			if err := p.advance(); err != nil {
				return PatternTerm{}, err
			}
			return Bound(rdf.NewTypedLiteral(lex, t.Value)), nil
		default:
			return PatternTerm{}, p.errf("expected datatype IRI after '^^'")
		}
	default:
		return Bound(rdf.NewLiteral(lex)), nil
	}
}

// expandPName resolves prefix:local against declared prefixes.
func (p *parser) expandPName(pname string) (rdf.Term, error) {
	i := strings.IndexByte(pname, ':')
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return rdf.Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return rdf.NewIRI(base + local), nil
}

// filterClause = FILTER '(' comparison ('&&' comparison)* ')'
func (p *parser) filterClause(fs *[]Filter) error {
	if err := p.advance(); err != nil { // consume FILTER
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for {
		f, err := p.comparison()
		if err != nil {
			return err
		}
		*fs = append(*fs, f)
		if p.tok.kind == tokOp && p.tok.text == "&&" {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err := p.expect(tokRParen)
	return err
}

// comparison = var OP value
func (p *parser) comparison() (Filter, error) {
	v, err := p.expect(tokVar)
	if err != nil {
		return Filter{}, err
	}
	if p.tok.kind != tokOp {
		return Filter{}, p.errf("expected comparison operator, found %s %q", p.tok.kind, p.tok.text)
	}
	var op CompareOp
	switch p.tok.text {
	case "=":
		op = OpEQ
	case "!=":
		op = OpNE
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	default:
		return Filter{}, p.errf("unsupported operator %q in FILTER", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return Filter{}, err
	}
	// Value: IRI, pname, string literal or number.
	switch p.tok.kind {
	case tokIRI:
		t := rdf.NewIRI(p.tok.text)
		if err := p.advance(); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: t}, nil
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return Filter{}, err
		}
		if err := p.advance(); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: t}, nil
	case tokString:
		pt, err := p.literalTail(p.tok.text)
		if err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: pt.Term}, nil
	case tokNumber:
		lex := p.tok.text
		if err := p.advance(); err != nil {
			return Filter{}, err
		}
		return Filter{Var: v.text, Op: op, Value: rdf.NewTypedLiteral(lex, rdf.XSDInteger)}, nil
	default:
		return Filter{}, p.errf("expected FILTER value, found %s %q", p.tok.kind, p.tok.text)
	}
}
