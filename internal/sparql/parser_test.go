package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseSimpleBGP(t *testing.T) {
	q, err := Parse(`
		SELECT ?v0 ?v1 WHERE {
			?v0 <http://example.org/follows> ?v1 .
			?v1 <http://example.org/likes> <http://example.org/Product0> .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Patterns))
	}
	if got := q.Patterns[0].S; !got.IsVar() || got.Var != "v0" {
		t.Errorf("pattern 0 subject = %v", got)
	}
	if got := q.Patterns[1].O; got.IsVar() || got.Term.Value != "http://example.org/Product0" {
		t.Errorf("pattern 1 object = %v", got)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "v0" || q.Vars[1] != "v1" {
		t.Errorf("Vars = %v", q.Vars)
	}
	if q.Limit != -1 || q.Distinct {
		t.Errorf("unexpected modifiers: limit=%d distinct=%v", q.Limit, q.Distinct)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
		PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
		PREFIX rev: <http://purl.org/stuff/rev#>
		SELECT * WHERE {
			?v0 wsdbm:follows ?v1 .
			?v1 rev:hasReview ?v2 .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Patterns[0].P.Term.Value; got != "http://db.uwaterloo.ca/~galuc/wsdbm/follows" {
		t.Errorf("expanded predicate = %q", got)
	}
	if got := q.Patterns[1].P.Term.Value; got != "http://purl.org/stuff/rev#hasReview" {
		t.Errorf("expanded predicate = %q", got)
	}
	// SELECT *: projection covers all BGP vars.
	proj := q.Projection()
	if len(proj) != 3 {
		t.Errorf("Projection() = %v, want 3 vars", proj)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s a <http://example.org/User> . }`)
	if got := q.Patterns[0].P.Term.Value; got != RDFType {
		t.Errorf("'a' expanded to %q, want rdf:type", got)
	}
}

func TestParseSemicolonAndComma(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT * WHERE {
			?s ex:p1 ?a ;
			   ex:p2 ?b , ?c .
		}`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	for i, tp := range q.Patterns {
		if !tp.S.IsVar() || tp.S.Var != "s" {
			t.Errorf("pattern %d subject = %v, want ?s", i, tp.S)
		}
	}
	if q.Patterns[1].O.Var != "b" || q.Patterns[2].O.Var != "c" {
		t.Errorf("comma list objects wrong: %v %v", q.Patterns[1].O, q.Patterns[2].O)
	}
	if q.Patterns[1].P.Term.Value != "http://example.org/p2" || q.Patterns[2].P.Term.Value != "http://example.org/p2" {
		t.Errorf("comma list predicates wrong")
	}
}

func TestParseLiterals(t *testing.T) {
	q := MustParse(`
		PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
		SELECT * WHERE {
			?s <http://p1> "plain" .
			?s <http://p2> "typed"^^xsd:string .
			?s <http://p3> "tagged"@en .
			?s <http://p4> 42 .
		}`)
	want := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewTypedLiteral("typed", rdf.XSDString),
		rdf.NewLangLiteral("tagged", "en"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
	}
	for i, w := range want {
		if got := q.Patterns[i].O.Term; got != w {
			t.Errorf("pattern %d object = %v, want %v", i, got, w)
		}
	}
}

func TestParseDistinctLimitOffset(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?s WHERE { ?s <http://p> ?o . } LIMIT 10 OFFSET 5`)
	if !q.Distinct {
		t.Errorf("Distinct = false")
	}
	if q.Limit != 10 {
		t.Errorf("Limit = %d, want 10", q.Limit)
	}
	if q.Offset != 5 {
		t.Errorf("Offset = %d, want 5", q.Offset)
	}
}

func TestParseFilter(t *testing.T) {
	q := MustParse(`
		SELECT * WHERE {
			?s <http://p> ?o .
			FILTER(?o > 10 && ?o <= 100)
			FILTER(?s != <http://example.org/x>)
		}`)
	if len(q.Filters) != 3 {
		t.Fatalf("filters = %d, want 3", len(q.Filters))
	}
	f0 := q.Filters[0]
	if f0.Var != "o" || f0.Op != OpGT || f0.Value.Value != "10" {
		t.Errorf("filter 0 = %v", f0)
	}
	f1 := q.Filters[1]
	if f1.Var != "o" || f1.Op != OpLE || f1.Value.Value != "100" {
		t.Errorf("filter 1 = %v", f1)
	}
	f2 := q.Filters[2]
	if f2.Var != "s" || f2.Op != OpNE || !f2.Value.IsIRI() {
		t.Errorf("filter 2 = %v", f2)
	}
}

func TestParseFilterLessThanVsIRI(t *testing.T) {
	// '<' must lex as an operator inside FILTER but as an IRI opener in
	// pattern position.
	q := MustParse(`SELECT * WHERE { ?s <http://p> ?o . FILTER(?o < 5) }`)
	if len(q.Filters) != 1 || q.Filters[0].Op != OpLT {
		t.Fatalf("filters = %v", q.Filters)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse(`
		# leading comment
		SELECT * WHERE {
			?s <http://p> ?o . # trailing comment
		}`)
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d, want 1", len(q.Patterns))
	}
}

func TestParseOptional(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?s ?name WHERE {
			?s ex:follows ?f .
			OPTIONAL { ?s ex:name ?name . FILTER(?name != "x") }
		}`)
	if len(q.Branches) != 1 {
		t.Fatalf("branches = %d, want 1", len(q.Branches))
	}
	b := q.Branches[0]
	if len(b.Patterns) != 1 || len(b.Optionals) != 1 {
		t.Fatalf("base patterns = %d optionals = %d", len(b.Patterns), len(b.Optionals))
	}
	opt := b.Optionals[0]
	if len(opt.Patterns) != 1 || len(opt.Filters) != 1 {
		t.Errorf("optional group patterns = %d filters = %d", len(opt.Patterns), len(opt.Filters))
	}
	if !q.Extended() {
		t.Errorf("Extended() = false for OPTIONAL query")
	}
	// Patterns mirrors the first branch's required part.
	if len(q.Patterns) != 1 {
		t.Errorf("Patterns mirror = %d, want 1", len(q.Patterns))
	}
	if got := q.AllVars(); len(got) != 3 {
		t.Errorf("AllVars = %v, want 3 vars", got)
	}
}

func TestParseUnion(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?a ?b WHERE {
			{ ?a ex:p1 ?b . }
			UNION
			{ ?a ex:p2 ?b . }
			UNION
			{ ?a ex:p3 ?b . }
		}`)
	if len(q.Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(q.Branches))
	}
	for i, want := range []string{"p1", "p2", "p3"} {
		if got := q.Branches[i].Patterns[0].P.Term.Value; got != "http://example.org/"+want {
			t.Errorf("branch %d predicate = %q", i, got)
		}
	}
	if !q.Extended() {
		t.Errorf("Extended() = false for UNION query")
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q := MustParse(`
		SELECT ?s ?o WHERE { ?s <http://p> ?o . }
		ORDER BY DESC(?o) ?s
		LIMIT 5 OFFSET 2`)
	if len(q.Order) != 2 {
		t.Fatalf("order keys = %d, want 2", len(q.Order))
	}
	if q.Order[0].Var != "o" || !q.Order[0].Desc {
		t.Errorf("order[0] = %+v, want DESC(?o)", q.Order[0])
	}
	if q.Order[1].Var != "s" || q.Order[1].Desc {
		t.Errorf("order[1] = %+v, want ASC ?s", q.Order[1])
	}
	if q.Limit != 5 || q.Offset != 2 {
		t.Errorf("limit=%d offset=%d", q.Limit, q.Offset)
	}
}

func TestParseGroupByCount(t *testing.T) {
	q := MustParse(`
		SELECT ?s (COUNT(?o) AS ?n) (COUNT(*) AS ?total) WHERE {
			?s <http://p> ?o .
		}
		GROUP BY ?s
		ORDER BY DESC(?n)`)
	if len(q.Counts) != 2 {
		t.Fatalf("counts = %d, want 2", len(q.Counts))
	}
	if q.Counts[0].Var != "o" || q.Counts[0].Alias != "n" {
		t.Errorf("counts[0] = %+v", q.Counts[0])
	}
	if q.Counts[1].Var != "" || q.Counts[1].Alias != "total" {
		t.Errorf("counts[1] = %+v, want COUNT(*)", q.Counts[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "s" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if want := []string{"s", "n", "total"}; len(q.Vars) != 3 || q.Vars[0] != want[0] || q.Vars[1] != want[1] || q.Vars[2] != want[2] {
		t.Errorf("Vars = %v, want %v", q.Vars, want)
	}
	if !q.CountAliases()["n"] || !q.CountAliases()["total"] {
		t.Errorf("CountAliases = %v", q.CountAliases())
	}
}

func TestExtendedStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT ?s ?name WHERE { ?s <http://p> ?f . OPTIONAL { ?s <http://name> ?name . } } LIMIT 3`,
		`SELECT ?a ?b WHERE { { ?a <http://p1> ?b . } UNION { ?a <http://p2> ?b . } } ORDER BY ?a DESC(?b)`,
		`SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <http://p> ?o . } GROUP BY ?s ORDER BY DESC(?n) LIMIT 10`,
	}
	for _, src := range srcs {
		q1 := MustParse(src)
		q2 := MustParse(q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip mismatch:\n%s\nvs\n%s", q1.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no where", "SELECT ?s"},
		{"no brace", "SELECT ?s WHERE ?s <http://p> ?o ."},
		{"unclosed brace", "SELECT ?s WHERE { ?s <http://p> ?o ."},
		{"undeclared prefix", "SELECT * WHERE { ?s ex:p ?o . }"},
		{"empty group", "SELECT ?s WHERE { }"},
		{"projected var missing", "SELECT ?zzz WHERE { ?s <http://p> ?o . }"},
		{"filtered var missing", "SELECT * WHERE { ?s <http://p> ?o . FILTER(?zzz = 1) }"},
		{"literal subject", `SELECT * WHERE { "lit" <http://p> ?o . }`},
		{"literal predicate", `SELECT * WHERE { ?s "lit" ?o . }`},
		{"no projection", "SELECT WHERE { ?s <http://p> ?o . }"},
		{"bad limit", "SELECT * WHERE { ?s <http://p> ?o . } LIMIT x"},
		{"trailing garbage", "SELECT * WHERE { ?s <http://p> ?o . } BOGUS"},
		{"filter missing paren", "SELECT * WHERE { ?s <http://p> ?o . FILTER ?o = 1 }"},
		{"empty var", "SELECT ? WHERE { ?s <http://p> ?o . }"},
		{"lone ampersand", "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o = 1 & ?o = 2) }"},
		{"unclosed optional", "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?x . }"},
		{"optional missing brace", "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL ?s <http://q> ?x . }"},
		{"empty optional", "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { } }"},
		{"nested optional", "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?x . OPTIONAL { ?x <http://r> ?y . } } }"},
		{"disjoint optional", "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?x <http://q> ?y . } }"},
		{"union single branch", "SELECT ?a WHERE { { ?a <http://p> ?b . } }"},
		{"union missing second brace", "SELECT ?a WHERE { { ?a <http://p> ?b . } UNION ?a <http://q> ?b . }"},
		{"union unclosed branch", "SELECT ?a WHERE { { ?a <http://p> ?b . } UNION { ?a <http://q> ?b . }"},
		{"union mismatched vars", "SELECT ?a WHERE { { ?a <http://p> ?b . } UNION { ?a <http://q> ?c . } }"},
		{"union brace inside plain group", "SELECT * WHERE { ?s <http://p> ?o . { ?s <http://q> ?x . } }"},
		{"count without group by", "SELECT (COUNT(?o) AS ?n) WHERE { ?s <http://p> ?o . }"},
		{"count missing as", "SELECT (COUNT(?o) ?n) WHERE { ?s <http://p> ?o . } GROUP BY ?s"},
		{"count missing alias", "SELECT (COUNT(?o) AS) WHERE { ?s <http://p> ?o . } GROUP BY ?s"},
		{"count bad argument", `SELECT (COUNT("x") AS ?n) WHERE { ?s <http://p> ?o . } GROUP BY ?s`},
		{"count alias clash", "SELECT ?s (COUNT(?o) AS ?o) WHERE { ?s <http://p> ?o . } GROUP BY ?s"},
		{"ungrouped projection", "SELECT ?s ?o (COUNT(*) AS ?n) WHERE { ?s <http://p> ?o . } GROUP BY ?s"},
		{"group by unknown var", "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://p> ?o . } GROUP BY ?zzz"},
		{"group by no vars", "SELECT ?s WHERE { ?s <http://p> ?o . } GROUP BY"},
		{"order by bare desc", "SELECT ?s WHERE { ?s <http://p> ?o . } ORDER BY DESC ?s"},
		{"order by no keys", "SELECT ?s WHERE { ?s <http://p> ?o . } ORDER BY"},
		{"order by unprojected", "SELECT ?s WHERE { ?s <http://p> ?o . } ORDER BY ?o"},
		{"order by unclosed paren", "SELECT ?s WHERE { ?s <http://p> ?o . } ORDER BY ASC(?s"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.src)
			}
		})
	}
}

func TestExtendedErrorsArePositioned(t *testing.T) {
	// Every new-syntax failure must surface as a *SyntaxError carrying a
	// source position, never a panic or an unpositioned error.
	tests := []struct {
		name     string
		src      string
		wantLine int
	}{
		{"unclosed optional", "SELECT * WHERE {\n  ?s <http://p> ?o .\n  OPTIONAL { ?s <http://q> ?x .\n}", 4},
		{"optional missing brace", "SELECT * WHERE {\n  ?s <http://p> ?o .\n  OPTIONAL ?s <http://q> ?x .\n}", 3},
		{"union single branch", "SELECT ?a WHERE {\n  { ?a <http://p> ?b . }\n}", 3},
		{"union missing brace", "SELECT ?a WHERE {\n  { ?a <http://p> ?b . }\n  UNION ?a <http://q> ?b .\n}", 3},
		{"count without group by", "SELECT (COUNT(?o) AS ?n) WHERE {\n  ?s <http://p> ?o .\n}", 3},
		{"order by bare desc", "SELECT ?s WHERE { ?s <http://p> ?o . }\nORDER BY DESC ?s", 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want positioned error")
			}
			se, ok := err.(*SyntaxError)
			if !ok {
				t.Fatalf("error %T (%v), want *SyntaxError", err, err)
			}
			if se.Line != tt.wantLine {
				t.Errorf("error line = %d, want %d (%v)", se.Line, tt.wantLine, se)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("SELECT * WHERE {\n  ?s <http://p> ?o .\n  bogus\n}")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error %T, want *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3", se.Line)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT DISTINCT ?a ?b WHERE {
		?a <http://p1> ?b .
		?b <http://p2> "x" .
	} LIMIT 7`
	q1 := MustParse(src)
	q2 := MustParse(q1.String())
	if q1.String() != q2.String() {
		t.Errorf("String round trip mismatch:\n%s\nvs\n%s", q1.String(), q2.String())
	}
	if !strings.Contains(q1.String(), "LIMIT 7") {
		t.Errorf("String() lost LIMIT: %s", q1.String())
	}
}

func TestPatternHelpers(t *testing.T) {
	tp := TriplePattern{
		S: Variable("s"),
		P: Bound(rdf.NewIRI("http://p")),
		O: Bound(rdf.NewLiteral("x")),
	}
	if !tp.HasLiteral() {
		t.Errorf("HasLiteral() = false, want true")
	}
	if !tp.HasBoundObject() {
		t.Errorf("HasBoundObject() = false")
	}
	if vars := tp.Vars(); len(vars) != 1 || vars[0] != "s" {
		t.Errorf("Vars() = %v", vars)
	}
	tp2 := TriplePattern{S: Variable("x"), P: Variable("x"), O: Variable("y")}
	if vars := tp2.Vars(); len(vars) != 2 {
		t.Errorf("Vars() dedup failed: %v", vars)
	}
}
