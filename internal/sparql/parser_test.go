package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseSimpleBGP(t *testing.T) {
	q, err := Parse(`
		SELECT ?v0 ?v1 WHERE {
			?v0 <http://example.org/follows> ?v1 .
			?v1 <http://example.org/likes> <http://example.org/Product0> .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Patterns))
	}
	if got := q.Patterns[0].S; !got.IsVar() || got.Var != "v0" {
		t.Errorf("pattern 0 subject = %v", got)
	}
	if got := q.Patterns[1].O; got.IsVar() || got.Term.Value != "http://example.org/Product0" {
		t.Errorf("pattern 1 object = %v", got)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "v0" || q.Vars[1] != "v1" {
		t.Errorf("Vars = %v", q.Vars)
	}
	if q.Limit != -1 || q.Distinct {
		t.Errorf("unexpected modifiers: limit=%d distinct=%v", q.Limit, q.Distinct)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
		PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
		PREFIX rev: <http://purl.org/stuff/rev#>
		SELECT * WHERE {
			?v0 wsdbm:follows ?v1 .
			?v1 rev:hasReview ?v2 .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Patterns[0].P.Term.Value; got != "http://db.uwaterloo.ca/~galuc/wsdbm/follows" {
		t.Errorf("expanded predicate = %q", got)
	}
	if got := q.Patterns[1].P.Term.Value; got != "http://purl.org/stuff/rev#hasReview" {
		t.Errorf("expanded predicate = %q", got)
	}
	// SELECT *: projection covers all BGP vars.
	proj := q.Projection()
	if len(proj) != 3 {
		t.Errorf("Projection() = %v, want 3 vars", proj)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s a <http://example.org/User> . }`)
	if got := q.Patterns[0].P.Term.Value; got != RDFType {
		t.Errorf("'a' expanded to %q, want rdf:type", got)
	}
}

func TestParseSemicolonAndComma(t *testing.T) {
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT * WHERE {
			?s ex:p1 ?a ;
			   ex:p2 ?b , ?c .
		}`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	for i, tp := range q.Patterns {
		if !tp.S.IsVar() || tp.S.Var != "s" {
			t.Errorf("pattern %d subject = %v, want ?s", i, tp.S)
		}
	}
	if q.Patterns[1].O.Var != "b" || q.Patterns[2].O.Var != "c" {
		t.Errorf("comma list objects wrong: %v %v", q.Patterns[1].O, q.Patterns[2].O)
	}
	if q.Patterns[1].P.Term.Value != "http://example.org/p2" || q.Patterns[2].P.Term.Value != "http://example.org/p2" {
		t.Errorf("comma list predicates wrong")
	}
}

func TestParseLiterals(t *testing.T) {
	q := MustParse(`
		PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
		SELECT * WHERE {
			?s <http://p1> "plain" .
			?s <http://p2> "typed"^^xsd:string .
			?s <http://p3> "tagged"@en .
			?s <http://p4> 42 .
		}`)
	want := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewTypedLiteral("typed", rdf.XSDString),
		rdf.NewLangLiteral("tagged", "en"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
	}
	for i, w := range want {
		if got := q.Patterns[i].O.Term; got != w {
			t.Errorf("pattern %d object = %v, want %v", i, got, w)
		}
	}
}

func TestParseDistinctLimitOffset(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?s WHERE { ?s <http://p> ?o . } LIMIT 10 OFFSET 5`)
	if !q.Distinct {
		t.Errorf("Distinct = false")
	}
	if q.Limit != 10 {
		t.Errorf("Limit = %d, want 10", q.Limit)
	}
	if q.Offset != 5 {
		t.Errorf("Offset = %d, want 5", q.Offset)
	}
}

func TestParseFilter(t *testing.T) {
	q := MustParse(`
		SELECT * WHERE {
			?s <http://p> ?o .
			FILTER(?o > 10 && ?o <= 100)
			FILTER(?s != <http://example.org/x>)
		}`)
	if len(q.Filters) != 3 {
		t.Fatalf("filters = %d, want 3", len(q.Filters))
	}
	f0 := q.Filters[0]
	if f0.Var != "o" || f0.Op != OpGT || f0.Value.Value != "10" {
		t.Errorf("filter 0 = %v", f0)
	}
	f1 := q.Filters[1]
	if f1.Var != "o" || f1.Op != OpLE || f1.Value.Value != "100" {
		t.Errorf("filter 1 = %v", f1)
	}
	f2 := q.Filters[2]
	if f2.Var != "s" || f2.Op != OpNE || !f2.Value.IsIRI() {
		t.Errorf("filter 2 = %v", f2)
	}
}

func TestParseFilterLessThanVsIRI(t *testing.T) {
	// '<' must lex as an operator inside FILTER but as an IRI opener in
	// pattern position.
	q := MustParse(`SELECT * WHERE { ?s <http://p> ?o . FILTER(?o < 5) }`)
	if len(q.Filters) != 1 || q.Filters[0].Op != OpLT {
		t.Fatalf("filters = %v", q.Filters)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse(`
		# leading comment
		SELECT * WHERE {
			?s <http://p> ?o . # trailing comment
		}`)
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d, want 1", len(q.Patterns))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no where", "SELECT ?s"},
		{"no brace", "SELECT ?s WHERE ?s <http://p> ?o ."},
		{"unclosed brace", "SELECT ?s WHERE { ?s <http://p> ?o ."},
		{"undeclared prefix", "SELECT * WHERE { ?s ex:p ?o . }"},
		{"empty group", "SELECT ?s WHERE { }"},
		{"projected var missing", "SELECT ?zzz WHERE { ?s <http://p> ?o . }"},
		{"filtered var missing", "SELECT * WHERE { ?s <http://p> ?o . FILTER(?zzz = 1) }"},
		{"literal subject", `SELECT * WHERE { "lit" <http://p> ?o . }`},
		{"literal predicate", `SELECT * WHERE { ?s "lit" ?o . }`},
		{"no projection", "SELECT WHERE { ?s <http://p> ?o . }"},
		{"bad limit", "SELECT * WHERE { ?s <http://p> ?o . } LIMIT x"},
		{"trailing garbage", "SELECT * WHERE { ?s <http://p> ?o . } BOGUS"},
		{"filter missing paren", "SELECT * WHERE { ?s <http://p> ?o . FILTER ?o = 1 }"},
		{"empty var", "SELECT ? WHERE { ?s <http://p> ?o . }"},
		{"lone ampersand", "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o = 1 & ?o = 2) }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.src)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("SELECT * WHERE {\n  ?s <http://p> ?o .\n  bogus\n}")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error %T, want *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3", se.Line)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT DISTINCT ?a ?b WHERE {
		?a <http://p1> ?b .
		?b <http://p2> "x" .
	} LIMIT 7`
	q1 := MustParse(src)
	q2 := MustParse(q1.String())
	if q1.String() != q2.String() {
		t.Errorf("String round trip mismatch:\n%s\nvs\n%s", q1.String(), q2.String())
	}
	if !strings.Contains(q1.String(), "LIMIT 7") {
		t.Errorf("String() lost LIMIT: %s", q1.String())
	}
}

func TestPatternHelpers(t *testing.T) {
	tp := TriplePattern{
		S: Variable("s"),
		P: Bound(rdf.NewIRI("http://p")),
		O: Bound(rdf.NewLiteral("x")),
	}
	if !tp.HasLiteral() {
		t.Errorf("HasLiteral() = false, want true")
	}
	if !tp.HasBoundObject() {
		t.Errorf("HasBoundObject() = false")
	}
	if vars := tp.Vars(); len(vars) != 1 || vars[0] != "s" {
		t.Errorf("Vars() = %v", vars)
	}
	tp2 := TriplePattern{S: Variable("x"), P: Variable("x"), O: Variable("y")}
	if vars := tp2.Vars(); len(vars) != 2 {
		t.Errorf("Vars() dedup failed: %v", vars)
	}
}
