package sparql

import "testing"

func TestShapeClassification(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want Shape
	}{
		{
			"star 3 patterns",
			`SELECT * WHERE { ?s <http://p1> ?a . ?s <http://p2> ?b . ?s <http://p3> "x" . }`,
			ShapeStar,
		},
		{
			"star 2 patterns",
			`SELECT * WHERE { ?s <http://p1> ?a . ?s <http://p2> <http://o> . }`,
			ShapeStar,
		},
		{
			"single pattern is linear",
			`SELECT * WHERE { ?s <http://p1> ?o . }`,
			ShapeLinear,
		},
		{
			"chain of 3",
			`SELECT * WHERE { ?a <http://p1> ?b . ?b <http://p2> ?c . ?c <http://p3> ?d . }`,
			ShapeLinear,
		},
		{
			"chain ending in constant",
			`SELECT * WHERE { ?a <http://p1> ?b . ?b <http://p2> <http://x> . }`,
			ShapeLinear,
		},
		{
			"snowflake two stars",
			`SELECT * WHERE {
				?a <http://p1> ?x . ?a <http://p2> ?y .
				?b <http://p3> ?x . ?b <http://p4> ?z .
			}`,
			ShapeSnowflake,
		},
		{
			"snowflake star plus tail",
			`SELECT * WHERE {
				?a <http://p1> ?b . ?a <http://p2> ?c .
				?b <http://p3> ?d .
			}`,
			ShapeSnowflake,
		},
		{
			"complex cycle",
			`SELECT * WHERE {
				?a <http://p1> ?b . ?a <http://p4> ?c .
				?b <http://p2> ?c . ?b <http://p5> ?d .
				?c <http://p3> ?a .
			}`,
			ShapeComplex,
		},
		{
			"branching path is not linear",
			`SELECT * WHERE {
				?a <http://p1> ?b .
				?a <http://p2> ?c .
				?c <http://p3> ?d .
			}`,
			ShapeSnowflake, // group ?a has 2 patterns, tree-joined to ?c
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := MustParse(tt.src)
			if got := q.Shape(); got != tt.want {
				t.Errorf("Shape() = %v (%s), want %v (%s)", got, got.Label(), tt.want, tt.want.Label())
			}
		})
	}
}

func TestShapeStrings(t *testing.T) {
	pairs := []struct {
		s     Shape
		code  string
		label string
	}{
		{ShapeStar, "S", "Star"},
		{ShapeLinear, "L", "Linear"},
		{ShapeSnowflake, "F", "Snowflake"},
		{ShapeComplex, "C", "Complex"},
	}
	for _, p := range pairs {
		if p.s.String() != p.code {
			t.Errorf("String() = %q, want %q", p.s.String(), p.code)
		}
		if p.s.Label() != p.label {
			t.Errorf("Label() = %q, want %q", p.s.Label(), p.label)
		}
	}
	if Shape(99).String() != "?" || Shape(99).Label() != "Unknown" {
		t.Errorf("invalid shape strings wrong")
	}
}

func TestShapeEmptyQuery(t *testing.T) {
	q := &Query{Limit: -1}
	if got := q.Shape(); got != ShapeComplex {
		t.Errorf("empty query Shape() = %v, want Complex", got)
	}
}
