package workload

import (
	"sync"
	"testing"

	"repro/internal/stats"
)

// countingBuilder returns a Builder producing fixed-size tables and
// recording every build request.
func countingBuilder(bytes int64, mu *sync.Mutex, calls *[]TableKey) Builder {
	return func(pred, partner uint64, pos uint8, gen uint64) (Table, bool) {
		mu.Lock()
		*calls = append(*calls, TableKey{Pred: pred, Partner: partner, Pos: pos})
		mu.Unlock()
		return Table{Rows: 10, Bytes: bytes, Data: pred}, true
	}
}

func TestBuildAfterThreshold(t *testing.T) {
	var mu sync.Mutex
	var calls []TableKey
	m := New(Config{BudgetBytes: 1 << 20, BuildAfter: 3, Builder: countingBuilder(100, &mu, &calls)})

	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 50)
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 50)
	m.Wait()
	if _, ok := m.Lookup(1, 2, uint8(stats.JoinSO)); ok {
		t.Fatalf("table built after 2 observations, want threshold 3")
	}
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 50)
	m.Wait()
	if _, ok := m.Lookup(1, 2, uint8(stats.JoinSO)); !ok {
		t.Fatalf("table not built after crossing threshold")
	}
	// Both directions of a non-self pair materialize.
	if _, ok := m.Lookup(2, 1, uint8(stats.JoinOS)); !ok {
		t.Fatalf("transposed direction not built")
	}
	mu.Lock()
	n := len(calls)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("builder called %d times, want 2 (both directions once)", n)
	}
}

func TestSelfPairSingleDirection(t *testing.T) {
	var mu sync.Mutex
	var calls []TableKey
	m := New(Config{BudgetBytes: 1 << 20, BuildAfter: 1, Builder: countingBuilder(100, &mu, &calls)})
	m.ObserveJoin(7, 7, uint8(stats.JoinSS), 5)
	m.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("self-pair built %d directions, want 1", len(calls))
	}
}

func TestObserveJoinCanonicalizes(t *testing.T) {
	m := New(Config{})
	// p2⋈p1 at o-s is the same pair as p1⋈p2 at s-o.
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10)
	m.ObserveJoin(2, 1, uint8(stats.JoinOS), 30)
	pairs := m.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("got %d tracked pairs, want 1 (canonicalized)", len(pairs))
	}
	if pairs[0].Hits != 2 || pairs[0].Volume != 40 {
		t.Fatalf("pair hits=%d volume=%d, want 2/40", pairs[0].Hits, pairs[0].Volume)
	}
}

func TestBudgetEviction(t *testing.T) {
	var mu sync.Mutex
	var calls []TableKey
	// Budget fits two 100-byte tables (one pair's two directions), not
	// four: installing the second pair must evict the first's tables,
	// lowest volume-per-byte first.
	m := New(Config{BudgetBytes: 250, BuildAfter: 1, Builder: countingBuilder(100, &mu, &calls)})

	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10) // low volume
	m.Wait()
	if _, ok := m.Lookup(1, 2, uint8(stats.JoinSO)); !ok {
		t.Fatalf("first pair not built")
	}
	m.ObserveJoin(3, 4, uint8(stats.JoinSO), 1000) // high volume
	m.Wait()

	met := m.Metrics()
	if met.TableBytes > met.BudgetBytes {
		t.Fatalf("live bytes %d exceed budget %d", met.TableBytes, met.BudgetBytes)
	}
	if met.TablesEvicted == 0 {
		t.Fatalf("no eviction recorded under budget pressure")
	}
	// The high-volume pair's tables survive.
	if _, ok := m.Peek(3, 4, uint8(stats.JoinSO)); !ok {
		t.Fatalf("high-volume reduction evicted, want it to survive")
	}
	if _, ok := m.Peek(4, 3, uint8(stats.JoinOS)); !ok {
		t.Fatalf("high-volume transposed reduction evicted, want it to survive")
	}
	// The low-volume pair lost at least one table.
	_, a := m.Peek(1, 2, uint8(stats.JoinSO))
	_, b := m.Peek(2, 1, uint8(stats.JoinOS))
	if a && b {
		t.Fatalf("low-volume pair kept both tables despite budget pressure")
	}
}

func TestOversizedTableRejected(t *testing.T) {
	var mu sync.Mutex
	var calls []TableKey
	m := New(Config{BudgetBytes: 50, BuildAfter: 1, Builder: countingBuilder(100, &mu, &calls)})
	m.ObserveJoin(1, 2, uint8(stats.JoinSS), 10)
	m.Wait()
	met := m.Metrics()
	if met.TablesLive != 0 || met.TableBytes != 0 {
		t.Fatalf("table larger than the whole budget was installed: %+v", met)
	}
}

func TestInvalidateDropsEverything(t *testing.T) {
	var mu sync.Mutex
	var calls []TableKey
	m := New(Config{BudgetBytes: 1 << 20, BuildAfter: 1, Builder: countingBuilder(100, &mu, &calls)})
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10)
	m.Wait()
	m.ObserveScan(1, 99, true, 42)
	epoch := m.Epoch()
	gen := m.Generation()

	m.Invalidate()
	if m.Generation() != gen+1 {
		t.Fatalf("generation %d, want %d", m.Generation(), gen+1)
	}
	if m.Epoch() <= epoch {
		t.Fatalf("epoch did not advance on invalidate")
	}
	if _, ok := m.Lookup(1, 2, uint8(stats.JoinSO)); ok {
		t.Fatalf("table survived invalidation")
	}
	if _, ok := m.LookupObserved(1, 99, true); ok {
		t.Fatalf("observation survived invalidation")
	}
	// The pair's build eligibility resets: one more observation crosses
	// the threshold again and rebuilds against the new generation.
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10)
	m.Wait()
	if _, ok := m.Lookup(1, 2, uint8(stats.JoinSO)); !ok {
		t.Fatalf("pair not rebuilt after invalidation")
	}
}

func TestStaleBuildDiscarded(t *testing.T) {
	release := make(chan struct{})
	m := New(Config{BudgetBytes: 1 << 20, BuildAfter: 1, Builder: func(pred, partner uint64, pos uint8, gen uint64) (Table, bool) {
		<-release // hold the build until the invalidation lands
		return Table{Rows: 1, Bytes: 10, Data: nil}, true
	}})
	m.ObserveJoin(1, 2, uint8(stats.JoinSS), 10)
	m.Invalidate() // races past the in-flight build
	close(release)
	m.Wait()
	if met := m.Metrics(); met.TablesLive != 0 {
		t.Fatalf("stale build installed %d tables after invalidation", met.TablesLive)
	}
}

func TestObservationsRefreshWithoutEpochChurn(t *testing.T) {
	m := New(Config{})
	e0 := m.Epoch()
	m.ObserveScan(5, 6, false, 100)
	e1 := m.Epoch()
	if e1 == e0 {
		t.Fatalf("first observation did not bump epoch")
	}
	m.ObserveScan(5, 6, false, 120)
	if m.Epoch() != e1 {
		t.Fatalf("repeat observation bumped epoch, want refresh in place")
	}
	rows, ok := m.LookupObserved(5, 6, false)
	if !ok || rows != 120 {
		t.Fatalf("LookupObserved = %d,%v, want 120,true", rows, ok)
	}
}

func TestDisabledModelStillTracks(t *testing.T) {
	m := New(Config{}) // no budget, no builder
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10)
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10)
	m.ObserveJoin(1, 2, uint8(stats.JoinSO), 10)
	m.Wait()
	met := m.Metrics()
	if met.PairsTracked != 1 {
		t.Fatalf("disabled model tracked %d pairs, want 1", met.PairsTracked)
	}
	if met.TablesBuilt != 0 {
		t.Fatalf("disabled model built %d tables, want 0", met.TablesBuilt)
	}
}
