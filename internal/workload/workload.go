// Package workload maintains the cross-query workload model: it mines
// executed plans for hot predicate pairs (by executed join volume ×
// frequency), triggers background builds of ExtVP-style semi-join
// reductions for the hottest pairs under a byte budget, and records
// observed cardinalities of (predicate, constant) subpatterns so later
// queries sharing the subpattern start from an exact estimate instead
// of the independence guess.
//
// The model is storage-agnostic: the owning store registers a Builder
// callback that materializes one directional reduction and returns its
// exact row count, byte footprint and an opaque handle the executor
// later resolves. Invalidation is generational — a stats reload bumps
// the generation, dropping every table and discarding any build still
// in flight — and every externally visible change (table installed,
// table evicted, invalidation, first observation of a subpattern)
// bumps a separate epoch counter that plan-cache keys incorporate, so
// cached plans never outlive the workload state they were priced
// against.
package workload

import (
	"sort"
	"sync"

	"repro/internal/rdf"
	"repro/internal/stats"
)

// DefaultBuildAfter is how many feedback observations a predicate pair
// needs before a build is triggered when Config.BuildAfter is zero.
const DefaultBuildAfter = 2

// Table is one materialized directional reduction: the rows of Pred's
// VP table that survive the semi-join with Partner at the recorded
// position. Data is an opaque handle owned by the registered Builder
// (the core store keeps its *VPTable there); Rows and Bytes are exact.
type Table struct {
	Rows  int64
	Bytes int64
	Data  any
}

// TableKey identifies one directional reduction: Pred's table reduced
// against Partner, with Pos the join position seen from Pred's side
// (stats.JoinPos encoding).
type TableKey struct {
	Pred, Partner uint64
	Pos           uint8
}

// Builder materializes one directional reduction. It runs on the
// model's background goroutine, must be safe to run concurrently with
// queries, and returns ok=false when the reduction is not worth
// keeping (empty, or the predicate vanished after a reload).
type Builder func(pred, partner uint64, pos uint8, gen uint64) (Table, bool)

// Config tunes a Model.
type Config struct {
	// BudgetBytes caps the total bytes of live reductions; zero or
	// negative disables materialization entirely (the model still
	// tracks pairs and observations).
	BudgetBytes int64
	// BuildAfter is the number of observations of a pair before its
	// reductions are built (0 = DefaultBuildAfter).
	BuildAfter int
	// Builder materializes reductions; required for builds to happen.
	Builder Builder
}

// pairKey is a canonical predicate pair (stats.CanonicalPair form).
type pairKey struct {
	p1, p2 uint64
	pos    stats.JoinPos
}

// pairStat accumulates one pair's observed workload.
type pairStat struct {
	hits   int64
	volume int64 // sum of actual join output rows observed
	built  bool  // reductions built (or scheduled) for this pair
}

// obsKey identifies one (predicate, constant) subpattern: SubjBound
// tells which position the constant binds.
type obsKey struct {
	pred, constID uint64
	subjBound     bool
}

// tableEntry is one live reduction plus its eviction accounting.
type tableEntry struct {
	table Table
	pair  pairKey // the pair whose volume is this table's benefit
}

// buildReq is one queued background build.
type buildReq struct {
	pair pairKey
	gen  uint64
}

// Model is the workload model. All methods are safe for concurrent
// use; builds run on a single background goroutine so table installs
// are serialized and deterministic given a deterministic observation
// order.
type Model struct {
	cfg Config

	mu     sync.Mutex
	pairs  map[pairKey]*pairStat
	tables map[TableKey]*tableEntry
	bytes  int64 // total bytes of live tables
	obs    map[obsKey]int64
	gen    uint64 // bumped by Invalidate; stale builds discard
	epoch  uint64 // bumped on any externally visible change

	queue   []buildReq
	working bool
	wg      sync.WaitGroup

	built   uint64 // cumulative tables installed
	evicted uint64 // cumulative tables evicted
	hits    uint64 // successful Lookup calls (rewrites resolved)
}

// New returns a workload model; cfg.Builder may be nil when
// materialization is disabled.
func New(cfg Config) *Model {
	if cfg.BuildAfter <= 0 {
		cfg.BuildAfter = DefaultBuildAfter
	}
	return &Model{
		cfg:    cfg,
		pairs:  make(map[pairKey]*pairStat),
		tables: make(map[TableKey]*tableEntry),
		obs:    make(map[obsKey]int64),
	}
}

// enabled reports whether materialization can happen at all.
func (m *Model) enabled() bool {
	return m.cfg.BudgetBytes > 0 && m.cfg.Builder != nil
}

// ObserveJoin records one executed join between two predicates at a
// join position (stats.JoinPos encoding, as seen from p1's side) with
// its actual output row count. Crossing the build threshold schedules
// background builds of both directional reductions.
func (m *Model) ObserveJoin(p1, p2 uint64, pos uint8, actualRows int64) {
	q1, q2, qpos := canonical(p1, p2, pos)
	k := pairKey{q1, q2, qpos}
	m.mu.Lock()
	st := m.pairs[k]
	if st == nil {
		st = &pairStat{}
		m.pairs[k] = st
	}
	st.hits++
	st.volume += actualRows
	schedule := m.enabled() && !st.built && st.hits >= int64(m.cfg.BuildAfter)
	if schedule {
		st.built = true
		m.queue = append(m.queue, buildReq{pair: k, gen: m.gen})
		m.wg.Add(1)
		if !m.working {
			m.working = true
			go m.runBuilds()
		}
	}
	m.mu.Unlock()
}

// runBuilds drains the build queue on a single goroutine.
func (m *Model) runBuilds() {
	for {
		m.mu.Lock()
		if len(m.queue) == 0 {
			m.working = false
			m.mu.Unlock()
			return
		}
		req := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.build(req)
		m.wg.Done()
	}
}

// build materializes both directional reductions of one pair and
// installs them, unless an invalidation raced past the request.
func (m *Model) build(req buildReq) {
	keys := directions(req.pair)
	for _, tk := range keys {
		m.mu.Lock()
		_, have := m.tables[tk]
		stale := m.gen != req.gen
		m.mu.Unlock()
		if have || stale {
			continue
		}
		t, ok := m.cfg.Builder(tk.Pred, tk.Partner, tk.Pos, req.gen)
		if !ok {
			continue
		}
		m.install(tk, t, req)
	}
}

// directions expands a canonical pair into its two directional table
// keys. A self-pair (p ⋈ p) has a single direction.
func directions(k pairKey) []TableKey {
	a := TableKey{Pred: k.p1, Partner: k.p2, Pos: uint8(k.pos)}
	b := TableKey{Pred: k.p2, Partner: k.p1, Pos: uint8(k.pos.Transpose())}
	if a == b {
		return []TableKey{a}
	}
	return []TableKey{a, b}
}

// install registers a freshly built table, evicting lower-value tables
// to stay within budget. A build whose generation went stale while
// materializing is dropped on the floor.
func (m *Model) install(tk TableKey, t Table, req buildReq) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gen != req.gen {
		return
	}
	if t.Bytes > m.cfg.BudgetBytes {
		return // cannot fit even alone
	}
	if _, have := m.tables[tk]; have {
		return
	}
	m.tables[tk] = &tableEntry{table: t, pair: req.pair}
	m.bytes += t.Bytes
	m.built++
	m.evictLocked(tk)
	m.epoch++
}

// evictLocked removes lowest benefit/byte tables until the budget
// holds, sparing the just-installed key so installs cannot thrash.
func (m *Model) evictLocked(spare TableKey) {
	for m.bytes > m.cfg.BudgetBytes {
		var victim TableKey
		best := 0.0
		found := false
		for tk, e := range m.tables {
			if tk == spare {
				continue
			}
			score := m.scoreLocked(e)
			if !found || score < best || (score == best && lessKey(tk, victim)) {
				victim, best, found = tk, score, true
			}
		}
		if !found {
			// Only the spared table remains and it fits by the install
			// guard, so this cannot loop; bail defensively anyway.
			return
		}
		m.bytes -= m.tables[victim].table.Bytes
		delete(m.tables, victim)
		m.evicted++
	}
}

// scoreLocked is a table's eviction score: accumulated pair volume per
// byte — cheap, high-traffic reductions survive longest.
func (m *Model) scoreLocked(e *tableEntry) float64 {
	vol := int64(0)
	if st := m.pairs[e.pair]; st != nil {
		vol = st.volume
	}
	if e.table.Bytes <= 0 {
		return float64(vol)
	}
	return float64(vol) / float64(e.table.Bytes)
}

// lessKey orders table keys deterministically for eviction ties.
func lessKey(a, b TableKey) bool {
	if a.Pred != b.Pred {
		return a.Pred < b.Pred
	}
	if a.Partner != b.Partner {
		return a.Partner < b.Partner
	}
	return a.Pos < b.Pos
}

// Lookup resolves the live reduction of pred against partner at pos
// (from pred's perspective). The handle is the Builder's Data.
func (m *Model) Lookup(pred, partner uint64, pos uint8) (Table, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.tables[TableKey{Pred: pred, Partner: partner, Pos: pos}]
	if !ok {
		return Table{}, false
	}
	m.hits++
	return e.table, true
}

// Peek is Lookup without touching the hit counter — the planner's
// candidate probe, so pricing a rewrite it then declines does not
// count as serving one.
func (m *Model) Peek(pred, partner uint64, pos uint8) (Table, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.tables[TableKey{Pred: pred, Partner: partner, Pos: pos}]
	if !ok {
		return Table{}, false
	}
	return e.table, true
}

// ObserveScan records the executed cardinality of a (predicate,
// constant) scan so other queries sharing the subpattern estimate it
// exactly. The first observation of a new subpattern bumps the epoch
// (cached plans estimated it blind); repeats refresh the value.
func (m *Model) ObserveScan(pred, constID uint64, subjBound bool, rows int64) {
	k := obsKey{pred, constID, subjBound}
	m.mu.Lock()
	if _, seen := m.obs[k]; !seen {
		m.epoch++
	}
	m.obs[k] = rows
	m.mu.Unlock()
}

// LookupObserved returns the recorded cardinality of a (predicate,
// constant) subpattern.
func (m *Model) LookupObserved(pred, constID uint64, subjBound bool) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows, ok := m.obs[obsKey{pred, constID, subjBound}]
	return rows, ok
}

// Invalidate drops every table and observation and bumps the
// generation: reductions and observed cardinalities were computed
// against data that no longer exists. Builds in flight against the old
// generation discard their result on install.
func (m *Model) Invalidate() {
	m.mu.Lock()
	m.gen++
	m.epoch++
	m.evicted += uint64(len(m.tables))
	m.tables = make(map[TableKey]*tableEntry)
	m.bytes = 0
	m.obs = make(map[obsKey]int64)
	for _, st := range m.pairs {
		st.built = false // allow rebuilds against the new data
	}
	// Queued builds target the old generation; dropping them here must
	// settle their Wait accounting, since runBuilds will never see them.
	for range m.queue {
		m.wg.Done()
	}
	m.queue = nil
	m.mu.Unlock()
}

// Generation returns the current invalidation generation.
func (m *Model) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Epoch returns the change counter plan-cache keys incorporate.
func (m *Model) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Wait blocks until every scheduled background build has completed
// (or been discarded). Tests and benchmarks use it to quiesce.
func (m *Model) Wait() {
	m.wg.Wait()
}

// Metrics is the /stats workload block.
type Metrics struct {
	// PairsTracked is the number of distinct canonical predicate pairs
	// observed; Observations counts recorded (pred, const) scans.
	PairsTracked, Observations int
	// TablesBuilt and TablesEvicted are cumulative; TablesLive and
	// TableBytes describe the current set against BudgetBytes.
	TablesBuilt, TablesEvicted uint64
	TablesLive                 int
	TableBytes, BudgetBytes    int64
	// HitCount counts reductions served to executions.
	HitCount uint64
	// Epoch is the plan-cache-visible change counter.
	Epoch uint64
}

// Metrics snapshots the model's counters.
func (m *Model) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		PairsTracked:  len(m.pairs),
		Observations:  len(m.obs),
		TablesBuilt:   m.built,
		TablesEvicted: m.evicted,
		TablesLive:    len(m.tables),
		TableBytes:    m.bytes,
		BudgetBytes:   m.cfg.BudgetBytes,
		HitCount:      m.hits,
		Epoch:         m.epoch,
	}
}

// PairInfo is one tracked pair for EXPLAIN's workload block.
type PairInfo struct {
	P1, P2 uint64
	Pos    stats.JoinPos
	Hits   int64
	Volume int64
	Built  bool
}

// Pairs lists the tracked pairs sorted by descending volume (ties by
// key) — the EXPLAIN candidate listing.
func (m *Model) Pairs() []PairInfo {
	m.mu.Lock()
	out := make([]PairInfo, 0, len(m.pairs))
	for k, st := range m.pairs {
		out = append(out, PairInfo{P1: k.p1, P2: k.p2, Pos: k.pos, Hits: st.hits, Volume: st.volume, Built: st.built})
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Volume != out[b].Volume {
			return out[a].Volume > out[b].Volume
		}
		if out[a].P1 != out[b].P1 {
			return out[a].P1 < out[b].P1
		}
		if out[a].P2 != out[b].P2 {
			return out[a].P2 < out[b].P2
		}
		return out[a].Pos < out[b].Pos
	})
	return out
}

// canonical wraps stats.CanonicalPair over uint64 IDs.
func canonical(p1, p2 uint64, pos uint8) (uint64, uint64, stats.JoinPos) {
	q1, q2, qpos := stats.CanonicalPair(rdf.ID(p1), rdf.ID(p2), stats.JoinPos(pos))
	return uint64(q1), uint64(q2), qpos
}
