package plan_test

// The estimator accuracy harness — the regression gate for all future
// estimator work. For every 2- and 3-pattern connected subquery of the
// WatDiv query set it computes the exact result cardinality with the
// naive engine (written order, no re-planning; the planner cannot
// influence row counts) and compares the cost planner's root estimate
// against it, under both the Mixed strategy (characteristic sets price
// the PT stars) and VP-only (pair sketches price every join).
//
// The hard bound: wherever the root estimate is sketch- or cset-sourced
// and the subquery is constant-free with a non-empty result, the
// q-error max(est/actual, actual/est) must stay within 4x. Constant-
// bearing subqueries and independence-fallback estimates are reported
// in the printed q-error summary but not bounded — constants hit
// value-skew the per-predicate statistics cannot see, and independence
// is exactly the fallback the sketches exist to displace.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// qErrorBound is the harness's stated accuracy contract for sketch- and
// cset-sourced estimates on constant-free subqueries.
const qErrorBound = 4.0

// accuracyStore loads a WatDiv dataset with join-graph statistics.
func accuracyStore(t *testing.T) *core.Store {
	t.Helper()
	g := watdiv.MustGenerate(watdiv.Config{Scale: 200, Seed: 42})
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := core.Load(g, core.Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

// connectedSubsets enumerates the k-element subsets of pats whose
// patterns form a connected join graph via shared variables.
func connectedSubsets(pats []sparql.TriplePattern, k int) [][]sparql.TriplePattern {
	idx := make([]int, k)
	var out [][]sparql.TriplePattern
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sub := make([]sparql.TriplePattern, k)
			for i, j := range idx {
				sub[i] = pats[j]
			}
			if connected(sub) {
				out = append(out, sub)
			}
			return
		}
		for j := start; j < len(pats); j++ {
			idx[depth] = j
			rec(j+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

// connected reports whether the patterns form one component under
// shared-variable adjacency.
func connected(pats []sparql.TriplePattern) bool {
	if len(pats) == 0 {
		return false
	}
	joined := map[int]bool{0: true}
	varsOf := func(i int) map[string]bool {
		m := map[string]bool{}
		for _, v := range pats[i].Vars() {
			m[v] = true
		}
		return m
	}
	for changed := true; changed; {
		changed = false
		for i := range pats {
			if joined[i] {
				continue
			}
			vi := varsOf(i)
			for j := range pats {
				if !joined[j] {
					continue
				}
				for v := range varsOf(j) {
					if vi[v] {
						joined[i] = true
						changed = true
						break
					}
				}
				if joined[i] {
					break
				}
			}
		}
	}
	return len(joined) == len(pats)
}

// constantFree reports whether every subject and object is a variable.
func constantFree(pats []sparql.TriplePattern) bool {
	for _, tp := range pats {
		if !tp.S.IsVar() || !tp.O.IsVar() {
			return false
		}
	}
	return true
}

// rootEstimate returns the top estimating node of a plan: the first
// Scan/Join/Bound below the epilogue (Project/Distinct/Filter).
func rootEstimate(p *plan.Plan) *plan.Node {
	n := p.Root
	for n != nil {
		switch n.Op {
		case plan.OpProject, plan.OpDistinct, plan.OpFilter:
			n = n.Children[0]
		default:
			return n
		}
	}
	return nil
}

// qErr is the symmetric estimation-error factor with a 1-row floor.
func qErr(est float64, actual int64) float64 {
	e := math.Max(est, 1)
	a := math.Max(float64(actual), 1)
	if e > a {
		return e / a
	}
	return a / e
}

// bucket accumulates the q-error summary for one estimate source.
type bucket struct {
	n      int
	sum    float64 // of log q-errors, for the geometric mean
	max    float64
	maxAt  string
	errors []float64
}

func (b *bucket) add(q float64, label string) {
	b.n++
	b.sum += math.Log(q)
	b.errors = append(b.errors, q)
	if q > b.max {
		b.max, b.maxAt = q, label
	}
}

func (b *bucket) line(name string) string {
	if b.n == 0 {
		return fmt.Sprintf("%-22s      0 subqueries", name)
	}
	sort.Float64s(b.errors)
	p95 := b.errors[(b.n-1)*95/100]
	return fmt.Sprintf("%-22s %6d subqueries  geo-mean %6.2fx  p95 %7.2fx  max %8.2fx (%s)",
		name, b.n, math.Exp(b.sum/float64(b.n)), p95, b.max, b.maxAt)
}

// TestEstimatorAccuracyHarness is the table-driven accuracy gate.
func TestEstimatorAccuracyHarness(t *testing.T) {
	s := accuracyStore(t)
	queries := watdiv.BasicQuerySet()
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"mixed", core.StrategyMixed},
		{"vp-only", core.StrategyVPOnly},
	}

	// exactCache deduplicates naive executions per (strategy, subquery);
	// firstCount cross-checks that the naive engine's row count is
	// strategy-independent — every subquery executes under both
	// strategies, and a divergence fails the harness outright.
	exactCache := map[string]int64{}
	firstCount := map[string]int64{}
	exact := func(q *sparql.Query, strat core.Strategy) int64 {
		pats := ""
		for _, tp := range q.Patterns {
			pats += tp.String() + "\n"
		}
		key := strat.String() + "|" + pats
		if n, ok := exactCache[key]; ok {
			return n
		}
		res, err := s.Query(q, core.QueryOptions{Strategy: strat, Planner: core.PlannerNaive, ReplanThreshold: -1})
		if err != nil {
			t.Fatalf("naive execution of %s: %v", q.Name, err)
		}
		n := int64(len(res.Rows))
		exactCache[key] = n
		if prev, seen := firstCount[pats]; seen {
			if prev != n {
				t.Errorf("%s: naive row count depends on strategy (%d vs %d)\n%s", q.Name, prev, n, pats)
			}
		} else {
			firstCount[pats] = n
		}
		return n
	}

	buckets := map[string]*bucket{}
	bucketFor := func(name string) *bucket {
		b := buckets[name]
		if b == nil {
			b = &bucket{}
			buckets[name] = b
		}
		return b
	}

	var violations []string
	total, bounded := 0, 0
	for _, st := range strategies {
		for _, wq := range queries {
			for _, k := range []int{2, 3} {
				for si, sub := range connectedSubsets(wq.Parsed.Patterns, k) {
					q := &sparql.Query{
						Name:     fmt.Sprintf("%s/%s[%d-%d]", wq.Name, st.name, k, si),
						Patterns: sub,
						Limit:    -1,
					}
					pl, err := s.Plan(q, core.QueryOptions{Strategy: st.strat})
					if err != nil {
						t.Fatalf("planning %s: %v", q.Name, err)
					}
					top := rootEstimate(pl)
					if top == nil {
						t.Fatalf("%s: no estimating node in plan:\n%s", q.Name, pl)
					}
					actual := exact(q, st.strat)
					qe := qErr(pl.Root.Est, actual)
					total++

					src := top.EstSource
					tag := src
					if !constantFree(sub) {
						tag = src + "+const"
					} else if actual == 0 {
						tag = src + "+empty"
					}
					bucketFor(tag).add(qe, q.Name)

					covered := (src == plan.EstSketch || src == plan.EstCSet) &&
						constantFree(sub) && actual > 0
					if covered {
						bounded++
						if qe > qErrorBound {
							violations = append(violations,
								fmt.Sprintf("%s: est=%.4g actual=%d q-error %.2fx (source %s)\n%s",
									q.Name, pl.Root.Est, actual, qe, src, pl))
						}
					}
				}
			}
		}
	}

	names := make([]string, 0, len(buckets))
	for name := range buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	t.Logf("q-error summary over %d 2-/3-pattern connected WatDiv subqueries (%d bounded):", total, bounded)
	for _, name := range names {
		t.Logf("  %s", buckets[name].line(name))
	}

	if bounded == 0 {
		t.Fatalf("no sketch/cset-covered subqueries found — the join statistics are not being used")
	}
	for _, v := range violations {
		t.Errorf("q-error bound (%gx) violated: %s", qErrorBound, v)
	}

	// The bound only has teeth if coverage is real: on the constant-free
	// WatDiv subqueries the sketches must cover a solid majority.
	free := 0
	for name, b := range buckets {
		if name == plan.EstSketch || name == plan.EstCSet || name == plan.EstIndep {
			free += b.n
		}
	}
	if free > 0 && bounded*3 < free {
		t.Errorf("sketch/cset coverage too thin: %d of %d constant-free subqueries bounded", bounded, free)
	}
}
