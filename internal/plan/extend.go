package plan

// Extended-surface plan composition. The core planner translates and
// cost-plans each UNION branch's basic graph pattern (and each
// OPTIONAL group's) independently through Build — reusing filter
// pushdown, join ordering and physical join selection unchanged — and
// Extend grafts the results into one plan: per-branch LeftJoins for
// OPTIONAL groups, a branch-normalizing projection plus an n-ary Union
// when the query has multiple branches, then Aggregate, the final
// projection, Distinct, and a TopK that fuses ORDER BY with
// LIMIT/OFFSET. TopK always sits above the final projection, so its
// row order is defined over the projected column order — identical
// across planner modes — which is what makes limited results
// deterministic regardless of how each branch was join-ordered.

// CountAgg is one COUNT output column of an extended query: Var is
// the counted variable ("" = COUNT(*)), As the output column.
type CountAgg struct {
	Var string
	As  string
}

// BranchSpec is one UNION branch: the cost-planned base pattern and
// one cost-planned plan per OPTIONAL group, in query order.
type BranchSpec struct {
	Base      *Plan
	Optionals []*Plan
}

// ExtendSpec describes the extended shape grafted over the per-branch
// plans. Leaves and FilterLabels are the query-global lists (branch
// plans carry leaf and filter indexes already offset into them).
type ExtendSpec struct {
	Branches []BranchSpec
	// BranchVars is the sorted variable set every branch binds
	// (including optional variables) — the common schema branches are
	// projected to before the Union.
	BranchVars []string
	Projection []string
	Distinct   bool
	GroupBy    []string
	Counts     []CountAgg
	Order      []SortKey
	// Limit bounds the result (< 0 = none); Offset skips leading rows.
	Limit  int
	Offset int

	Leaves       []Leaf
	FilterLabels []string
}

// Extend composes the extended plan. The result inherits the first
// branch's planner metadata (mode, bushy, priced critical path) and
// carries freshly assigned node IDs.
func Extend(spec ExtendSpec) *Plan {
	first := spec.Branches[0].Base
	out := &Plan{
		Mode:         first.Mode,
		Bushy:        first.Bushy,
		EstCritPath:  first.EstCritPath,
		Leaves:       spec.Leaves,
		FilterLabels: spec.FilterLabels,
	}

	branchRoots := make([]*Node, len(spec.Branches))
	for bi, br := range spec.Branches {
		cur := br.Base.Root
		for _, opt := range br.Optionals {
			shared := sharedStrings(cur.Vars, opt.Root.Vars)
			vars := append([]string(nil), cur.Vars...)
			for _, v := range opt.Root.Vars {
				if !containsString(vars, v) {
					vars = append(vars, v)
				}
			}
			// A left outer join emits at least one row per left row;
			// estimate the left side's cardinality (matches can only
			// multiply it, which the independence assumption underprices
			// the same way inner joins do).
			cur = &Node{
				Op:       OpLeftJoin,
				Label:    "optional",
				Vars:     vars,
				Est:      cur.Est,
				Children: []*Node{cur, opt.Root},
				JoinVars: shared,
			}
		}
		if len(spec.Branches) > 1 {
			cur = &Node{
				Op:       OpProject,
				Vars:     append([]string(nil), spec.BranchVars...),
				Cols:     append([]string(nil), spec.BranchVars...),
				Est:      cur.Est,
				Children: []*Node{cur},
			}
		}
		branchRoots[bi] = cur
	}

	cur := branchRoots[0]
	if len(branchRoots) > 1 {
		var est float64
		for _, r := range branchRoots {
			est += r.Est
		}
		cur = &Node{
			Op:       OpUnion,
			Vars:     append([]string(nil), spec.BranchVars...),
			Est:      est,
			Children: branchRoots,
		}
	}

	if len(spec.Counts) > 0 {
		vars := append([]string(nil), spec.GroupBy...)
		countVars := make([]string, len(spec.Counts))
		for i, c := range spec.Counts {
			vars = append(vars, c.As)
			countVars[i] = c.Var
		}
		countCols := make([]bool, len(vars))
		for i := len(spec.GroupBy); i < len(vars); i++ {
			countCols[i] = true
		}
		cur = &Node{
			Op:        OpAggregate,
			Vars:      vars,
			Est:       cur.Est,
			Children:  []*Node{cur},
			GroupCols: append([]string(nil), spec.GroupBy...),
			CountVars: countVars,
			CountCols: countCols,
		}
	}

	if !equalStringSlices(spec.Projection, cur.Vars) {
		cur = &Node{
			Op:        OpProject,
			Vars:      append([]string(nil), spec.Projection...),
			Cols:      append([]string(nil), spec.Projection...),
			Est:       cur.Est,
			Children:  []*Node{cur},
			CountCols: projectedCountCols(cur, spec.Projection),
		}
	}

	if spec.Distinct {
		cur = &Node{
			Op:        OpDistinct,
			Vars:      cur.Vars,
			Est:       cur.Est,
			Children:  []*Node{cur},
			CountCols: cur.CountCols,
		}
	}

	if spec.Limit >= 0 || spec.Offset > 0 || len(spec.Order) > 0 {
		est := cur.Est
		if spec.Limit >= 0 && float64(spec.Limit) < est {
			est = float64(spec.Limit)
		}
		cur = &Node{
			Op:        OpTopK,
			Vars:      cur.Vars,
			Est:       est,
			Children:  []*Node{cur},
			Sort:      append([]SortKey(nil), spec.Order...),
			Limit:     spec.Limit,
			Offset:    spec.Offset,
			CountCols: cur.CountCols,
		}
	}

	out.Root = cur
	out.assignIDs()
	return out
}

// projectedCountCols maps a child's count-column mask through a
// projection, returning nil when no projected column is a count.
func projectedCountCols(child *Node, cols []string) []bool {
	if child.CountCols == nil {
		return nil
	}
	out := make([]bool, len(cols))
	any := false
	for i, c := range cols {
		for j, v := range child.Vars {
			if v == c && j < len(child.CountCols) && child.CountCols[j] {
				out[i] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return out
}

// sharedStrings returns the values present in both lists, in a's
// order.
func sharedStrings(a, b []string) []string {
	var out []string
	for _, v := range a {
		if containsString(b, v) {
			out = append(out, v)
		}
	}
	return out
}

func containsString(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
