package plan

import (
	"math"
	"strings"
	"testing"
)

// fakeSketches is a JoinStatsProvider over a hand-built pair table.
type fakeSketches struct {
	triples map[uint64]float64
	pairs   map[[3]uint64]PairSketchEntry
}

// PairSketchEntry is the fake's stored value.
type PairSketchEntry struct {
	Join, Keys float64
	Exact      bool // an entry with Join 0 and Exact means provably empty
}

// PairJoin honours the provider contract's positional symmetry: an
// s-s or o-o pair is order-independent, and OS(a,b) names the same
// sketch as SO(b,a) — exactly how stats.Collection normalizes keys.
func (f *fakeSketches) PairJoin(p1, p2 uint64, pos uint8) (float64, float64, bool) {
	lookups := [][3]uint64{{p1, p2, uint64(pos)}}
	switch PairPos(pos) {
	case PairSS, PairOO:
		lookups = append(lookups, [3]uint64{p2, p1, uint64(pos)})
	case PairSO:
		lookups = append(lookups, [3]uint64{p2, p1, uint64(PairOS)})
	case PairOS:
		lookups = append(lookups, [3]uint64{p2, p1, uint64(PairSO)})
	}
	for _, k := range lookups {
		if e, ok := f.pairs[k]; ok {
			return e.Join, e.Keys, true
		}
	}
	return 0, 0, false
}

func (f *fakeSketches) PredTriples(p uint64) float64 { return f.triples[p] }

// sketchLeaves is a two-leaf join on y: A's pattern has y at the
// object position, B's at the subject position.
func sketchLeaves() []Leaf {
	return []Leaf{
		{Label: "A", Vars: []string{"x", "y"}, Est: 1000,
			Dist: map[string]float64{"x": 1000, "y": 100},
			Pats: []PatRef{{Pred: 1, SVar: "x", OVar: "y"}}},
		{Label: "B", Vars: []string{"y", "z"}, Est: 200,
			Dist: map[string]float64{"y": 100, "z": 200},
			Pats: []PatRef{{Pred: 2, SVar: "y", OVar: "z"}}},
	}
}

// joinNode walks to the plan's (single) join.
func joinNode(t *testing.T, p *Plan) *Node {
	t.Helper()
	var join *Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Op == OpJoin {
			join = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	if join == nil {
		t.Fatalf("no join in plan:\n%s", p)
	}
	return join
}

func TestJoinEstimateUsesSketchSelectivity(t *testing.T) {
	c := testCosts()
	// Pair (1 object-side, 2 subject-side) = OS with join 5000 over
	// populations 1000×200: sel 1/40 → est 1000·200/40 = 5000, scaled
	// 1:1 since both leaves are at full population.
	c.JoinStats = &fakeSketches{
		triples: map[uint64]float64{1: 1000, 2: 200},
		pairs: map[[3]uint64]PairSketchEntry{
			{1, 2, uint64(PairOS)}: {Join: 5000, Keys: 60},
		},
	}
	p := Build(sketchLeaves(), nil, []string{"x", "z"}, false, ModeCost, c)
	join := joinNode(t, p)
	if join.EstSource != EstSketch {
		t.Fatalf("join est-source = %q, want sketch:\n%s", join.EstSource, p)
	}
	if join.Est != 5000 {
		t.Errorf("join est = %g, want 5000 (sketch cardinality at full scale)", join.Est)
	}
	// Scan nodes default to indep, and the rendering shows the tags.
	for _, sc := range p.Scans() {
		if sc.EstSource != EstIndep {
			t.Errorf("scan %s est-source = %q, want indep", sc.Label, sc.EstSource)
		}
	}
	if s := p.String(); !strings.Contains(s, "est-source=sketch") || !strings.Contains(s, "est-source=indep") {
		t.Errorf("rendering lacks est-source tags:\n%s", s)
	}
}

func TestJoinEstimateScalesSketchToFilteredInputs(t *testing.T) {
	c := testCosts()
	c.JoinStats = &fakeSketches{
		triples: map[uint64]float64{1: 2000, 2: 200},
		pairs: map[[3]uint64]PairSketchEntry{
			{1, 2, uint64(PairOS)}: {Join: 4000, Keys: 60},
		},
	}
	// A carries 1000 of predicate 1's 2000 triples (a filtered leaf):
	// containment scaling halves the sketch join → 2000.
	p := Build(sketchLeaves(), nil, []string{"x", "z"}, false, ModeCost, c)
	join := joinNode(t, p)
	if math.Abs(join.Est-2000) > 1e-6 {
		t.Errorf("join est = %g, want 2000 (4000 · 1000/2000 · 200/200)", join.Est)
	}
}

func TestJoinEstimateExactZeroPair(t *testing.T) {
	c := testCosts()
	// The pair exists in the provider with join 0: provably empty.
	c.JoinStats = &fakeSketches{
		triples: map[uint64]float64{1: 1000, 2: 200},
		pairs: map[[3]uint64]PairSketchEntry{
			{1, 2, uint64(PairOS)}: {Join: 0, Keys: 0, Exact: true},
		},
	}
	p := Build(sketchLeaves(), nil, []string{"x", "z"}, false, ModeCost, c)
	join := joinNode(t, p)
	if join.Est != 0 || join.EstSource != EstSketch {
		t.Errorf("join est = %g source %q, want exact zero from the sketch", join.Est, join.EstSource)
	}
}

func TestJoinEstimateFallsBackToIndependence(t *testing.T) {
	// No provider, and a provider without the pair, must both reproduce
	// the pre-sketch estimate bit-for-bit.
	base := Build(sketchLeaves(), nil, []string{"x", "z"}, false, ModeCost, testCosts())
	want := joinNode(t, base).Est
	if want != 1000*200/100 {
		t.Fatalf("independence est = %g, want 2000", want)
	}
	c := testCosts()
	c.JoinStats = &fakeSketches{triples: map[uint64]float64{1: 1000, 2: 200}}
	p := Build(sketchLeaves(), nil, []string{"x", "z"}, false, ModeCost, c)
	join := joinNode(t, p)
	if join.Est != want || join.EstSource != EstIndep {
		t.Errorf("uncovered pair: est = %g source %q, want %g indep", join.Est, join.EstSource, want)
	}
}

func TestJoinEstimateGeometricMeanOverCandidates(t *testing.T) {
	// Two patterns on the left expose y; their candidate pairs have
	// selectivities 1/40 and 1/160 — the estimate uses the geometric
	// mean 1/80.
	leaves := []Leaf{
		{Label: "A", Vars: []string{"x", "y"}, Est: 1000,
			Dist: map[string]float64{"x": 1000, "y": 100},
			Pats: []PatRef{
				{Pred: 1, SVar: "x", OVar: "y"},
				{Pred: 3, SVar: "x", OVar: "y"},
			}},
		{Label: "B", Vars: []string{"y", "z"}, Est: 200,
			Dist: map[string]float64{"y": 100, "z": 200},
			Pats: []PatRef{{Pred: 2, SVar: "y", OVar: "z"}}},
	}
	c := testCosts()
	c.JoinStats = &fakeSketches{
		triples: map[uint64]float64{1: 1000, 2: 200, 3: 1000},
		pairs: map[[3]uint64]PairSketchEntry{
			{1, 2, uint64(PairOS)}: {Join: 5000, Keys: 60}, // sel 1/40
			{3, 2, uint64(PairOS)}: {Join: 1250, Keys: 90}, // sel 1/160
		},
	}
	p := Build(leaves, nil, []string{"x", "z"}, false, ModeCost, c)
	join := joinNode(t, p)
	want := 1000.0 * 200 / 80
	if math.Abs(join.Est-want) > 1e-6 {
		t.Errorf("join est = %g, want %g (geometric mean of candidate selectivities)", join.Est, want)
	}
}
