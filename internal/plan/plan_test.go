package plan

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func testCosts() Costs {
	return Costs{
		Workers:            4,
		BroadcastThreshold: 10 << 20,
		BytesPerValue:      5,
		Model:              cluster.DefaultCostModel(),
	}
}

// chainLeaves builds A(x,y) — B(y,z) — C(z): a linear join graph with
// descending sizes toward C.
func chainLeaves() []Leaf {
	return []Leaf{
		{Label: "A", Vars: []string{"x", "y"}, Est: 1000, Dist: map[string]float64{"x": 1000, "y": 100}, PartCols: []string{"x"}},
		{Label: "B", Vars: []string{"y", "z"}, Est: 100, Dist: map[string]float64{"y": 100, "z": 50}, PartCols: []string{"y"}},
		{Label: "C", Vars: []string{"z"}, Est: 10, Dist: map[string]float64{"z": 10}, PartCols: []string{"z"}},
	}
}

func scanLabels(p *Plan) []string {
	var out []string
	for _, sc := range p.Scans() {
		out = append(out, sc.Label)
	}
	return out
}

func TestCostOrderStartsAtSmallestLeaf(t *testing.T) {
	p := Build(chainLeaves(), nil, []string{"x"}, false, ModeCost, testCosts())
	got := scanLabels(p)
	want := []string{"C", "B", "A"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cost order = %v, want %v", got, want)
		}
	}
}

func TestHeuristicAndNaiveKeepGivenOrder(t *testing.T) {
	for _, mode := range []Mode{ModeHeuristic, ModeNaive} {
		p := Build(chainLeaves(), nil, []string{"x"}, false, mode, testCosts())
		got := scanLabels(p)
		want := []string{"A", "B", "C"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order = %v, want %v (input order)", mode, got, want)
			}
		}
	}
}

func TestFilterPushedOnceToEarliestExposingScan(t *testing.T) {
	filters := []FilterSpec{{Var: "y", Selectivity: 0.5, Label: "?y>5"}}
	p := Build(chainLeaves(), filters, []string{"x"}, false, ModeCost, testCosts())
	// Order is C,B,A; both B and A expose y, so the filter must sit on
	// B's scan — and only there.
	count := 0
	for _, sc := range p.Scans() {
		for range sc.Filters {
			count++
		}
		if len(sc.Filters) > 0 && sc.Label != "B" {
			t.Errorf("filter pushed to %s, want B", sc.Label)
		}
	}
	if count != 1 {
		t.Errorf("filter applied at %d scans, want exactly 1", count)
	}
	// The filtered scan's estimate reflects the selectivity.
	for _, sc := range p.Scans() {
		if sc.Label == "B" && sc.Est != 50 {
			t.Errorf("filtered scan est = %g, want 50", sc.Est)
		}
	}
}

func TestJoinEstimateIndependenceFormula(t *testing.T) {
	leaves := []Leaf{
		{Label: "A", Vars: []string{"x", "y"}, Est: 1000, Dist: map[string]float64{"x": 1000, "y": 100}},
		{Label: "B", Vars: []string{"y", "z"}, Est: 200, Dist: map[string]float64{"y": 50, "z": 200}},
	}
	p := Build(leaves, nil, []string{"x"}, false, ModeHeuristic, testCosts())
	join := p.Root.Children[0]
	if join.Op != OpJoin {
		t.Fatalf("expected join under project, got %v", join.Op)
	}
	// |A ⋈ B| = 1000·200 / max(100, 50) = 2000.
	if join.Est != 2000 {
		t.Errorf("join est = %g, want 2000", join.Est)
	}
	if len(join.JoinVars) != 1 || join.JoinVars[0] != "y" {
		t.Errorf("join vars = %v, want [y]", join.JoinVars)
	}
}

func TestPhysicalSelectionBroadcastForSmallBuildSide(t *testing.T) {
	leaves := []Leaf{
		{Label: "big", Vars: []string{"x", "y"}, Est: 5e6, Dist: map[string]float64{"x": 5e6, "y": 1000}},
		{Label: "small", Vars: []string{"y"}, Est: 10, Dist: map[string]float64{"y": 10}},
	}
	p := Build(leaves, nil, []string{"x"}, false, ModeCost, testCosts())
	join := p.Root.Children[0]
	if join.Method != MethodBroadcast {
		t.Errorf("method = %v, want broadcast (build side is tiny)", join.Method)
	}
}

func TestPhysicalSelectionCoPartitionedSkipsShuffle(t *testing.T) {
	// Both sides exceed the broadcast threshold and are already
	// partitioned on the join key.
	leaves := []Leaf{
		{Label: "L", Vars: []string{"s", "a"}, Est: 3e6, Dist: map[string]float64{"s": 1e6, "a": 3e6}, PartCols: []string{"s"}},
		{Label: "R", Vars: []string{"s", "b"}, Est: 3e6, Dist: map[string]float64{"s": 1e6, "b": 3e6}, PartCols: []string{"s"}},
	}
	p := Build(leaves, nil, []string{"a"}, false, ModeCost, testCosts())
	join := p.Root.Children[0]
	if join.Method != MethodCoPartitioned {
		t.Errorf("method = %v, want co-partitioned", join.Method)
	}
}

func TestPhysicalSelectionShuffleForLargeMisalignedSides(t *testing.T) {
	// With many workers a shuffle spreads its movement while a
	// broadcast ships the full build side to every worker, so two
	// large misaligned sides price cheaper as a shuffle.
	costs := testCosts()
	costs.Workers = 16
	leaves := []Leaf{
		{Label: "L", Vars: []string{"s", "a"}, Est: 3e6, Dist: map[string]float64{"s": 1e6, "a": 3e6}, PartCols: []string{"a"}},
		{Label: "R", Vars: []string{"s", "b"}, Est: 3e6, Dist: map[string]float64{"s": 1e6, "b": 3e6}, PartCols: []string{"b"}},
	}
	p := Build(leaves, nil, []string{"a"}, false, ModeCost, costs)
	join := p.Root.Children[0]
	if join.Method != MethodShuffle {
		t.Errorf("method = %v, want shuffle (large misaligned sides, wide cluster)", join.Method)
	}
}

func TestPhysicalSelectionBroadcastAboveThresholdWhenPriced(t *testing.T) {
	// The build side exceeds the global threshold, but shipping it once
	// is still cheaper than shuffling the much larger probe side: the
	// pricing, not the threshold, decides.
	costs := testCosts()
	costs.BroadcastThreshold = 1 << 20
	leaves := []Leaf{
		{Label: "probe", Vars: []string{"y", "v"}, Est: 5e6, Dist: map[string]float64{"y": 1000, "v": 5e6}},
		{Label: "build", Vars: []string{"y"}, Est: 3e5, Dist: map[string]float64{"y": 3e5}},
	}
	if buildBytes := int64(3e5 * 1 * 5); buildBytes <= costs.BroadcastThreshold {
		t.Fatalf("fixture broken: build side %d under threshold %d", buildBytes, costs.BroadcastThreshold)
	}
	p := Build(leaves, nil, []string{"v"}, false, ModeCost, costs)
	join := p.Root.Children[0]
	if join.Method != MethodBroadcast {
		t.Errorf("method = %v, want broadcast above threshold", join.Method)
	}
}

func TestCartesianForDisconnectedLeaves(t *testing.T) {
	leaves := []Leaf{
		{Label: "A", Vars: []string{"x"}, Est: 10, Dist: map[string]float64{"x": 10}},
		{Label: "B", Vars: []string{"y"}, Est: 20, Dist: map[string]float64{"y": 20}},
	}
	p := Build(leaves, nil, []string{"x", "y"}, false, ModeCost, testCosts())
	join := p.Root.Children[0]
	if join.Method != MethodCartesian {
		t.Errorf("method = %v, want cartesian", join.Method)
	}
	if join.Est != 200 {
		t.Errorf("cartesian est = %g, want 200", join.Est)
	}
}

func TestDistinctEstimateBoundedByProjectedDistincts(t *testing.T) {
	leaves := []Leaf{
		{Label: "A", Vars: []string{"x", "y"}, Est: 1000, Dist: map[string]float64{"x": 4, "y": 100}},
	}
	p := Build(leaves, nil, []string{"x"}, true, ModeCost, testCosts())
	if p.Root.Op != OpDistinct {
		t.Fatalf("root = %v, want Distinct", p.Root.Op)
	}
	if p.Root.Est != 4 {
		t.Errorf("distinct est = %g, want 4 (distinct x values)", p.Root.Est)
	}
}

func TestRenderingAndErrorSummary(t *testing.T) {
	filters := []FilterSpec{{Var: "y", Selectivity: 0.5, Label: "?y>5"}}
	p := Build(chainLeaves(), filters, []string{"x"}, true, ModeCost, testCosts())
	out := p.String()
	for _, want := range []string{"cost planner", "Scan C", "Join[", "Project ?x", "Distinct", "est=", "actual=?", "?y>5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(p.ErrorSummary(), "not executed") {
		t.Errorf("unexecuted plan summary = %q", p.ErrorSummary())
	}

	// Simulate execution: fill actuals and check the worst ratio.
	var fill func(n *Node)
	fill = func(n *Node) {
		n.Actual = int64(n.Est) * 2
		for _, c := range n.Children {
			fill(c)
		}
	}
	fill(p.Root)
	ratio, at := p.MaxErrorRatio()
	if at == nil || ratio < 1.9 || ratio > 2.6 {
		t.Errorf("max error ratio = %g at %v, want ≈2x", ratio, at)
	}
	if !strings.Contains(p.ErrorSummary(), "max ratio") {
		t.Errorf("summary = %q", p.ErrorSummary())
	}
}

func TestEmptyLeavesReturnNilPlan(t *testing.T) {
	if p := Build(nil, nil, nil, false, ModeCost, testCosts()); p != nil {
		t.Errorf("Build with no leaves returned %v", p)
	}
}

// snowflakeLeaves builds a hub H(a,b) with two independent two-leaf
// arms hanging off a and b — the shape where building the arms as
// sibling subtrees and joining them at the top shortens the critical
// path versus threading everything through one left-deep chain.
func snowflakeLeaves() []Leaf {
	return []Leaf{
		{Label: "H", Vars: []string{"a", "b"}, Est: 1e6, Dist: map[string]float64{"a": 5e4, "b": 5e4}, PartCols: []string{"a"}},
		{Label: "A1", Vars: []string{"a", "c"}, Est: 1e5, Dist: map[string]float64{"a": 5e4, "c": 500}, PartCols: []string{"a"}},
		{Label: "A2", Vars: []string{"c"}, Est: 10, Dist: map[string]float64{"c": 10}, PartCols: []string{"c"}},
		{Label: "B1", Vars: []string{"b", "d"}, Est: 1e5, Dist: map[string]float64{"b": 5e4, "d": 500}, PartCols: []string{"b"}},
		{Label: "B2", Vars: []string{"d"}, Est: 10, Dist: map[string]float64{"d": 10}, PartCols: []string{"d"}},
	}
}

// hasBushyJoin reports whether any join has a join on both sides —
// i.e. the tree is not a left-deep chain.
func hasBushyJoin(n *Node) bool {
	if n == nil {
		return false
	}
	if n.Op == OpJoin && n.Children[0].Op == OpJoin && n.Children[1].Op == OpJoin {
		return true
	}
	for _, c := range n.Children {
		if hasBushyJoin(c) {
			return true
		}
	}
	return false
}

// rightDeepJoin reports whether some join's right child is itself a
// join — impossible in a left-deep chain, where right inputs are
// always scans.
func rightDeepJoin(n *Node) bool {
	if n == nil {
		return false
	}
	if n.Op == OpJoin && n.Children[1].Op == OpJoin {
		return true
	}
	for _, c := range n.Children {
		if rightDeepJoin(c) {
			return true
		}
	}
	return false
}

func TestBushyPlanForSnowflake(t *testing.T) {
	bushy := Build(snowflakeLeaves(), nil, []string{"a"}, false, ModeCost, testCosts())
	if !bushy.Bushy {
		t.Fatalf("ModeCost did not choose a bushy shape:\n%s", bushy)
	}
	if !rightDeepJoin(bushy.Root) {
		t.Errorf("bushy plan has no sibling join subtree:\n%s", bushy)
	}
	ld := Build(snowflakeLeaves(), nil, []string{"a"}, false, ModeCostLeftDeep, testCosts())
	if ld.Bushy {
		t.Errorf("ModeCostLeftDeep produced a bushy plan")
	}
	if rightDeepJoin(ld.Root) {
		t.Errorf("left-deep plan has a join as a right input:\n%s", ld)
	}
	if bushy.EstCritPath >= ld.EstCritPath {
		t.Errorf("bushy critical path %v not shorter than left-deep %v", bushy.EstCritPath, ld.EstCritPath)
	}
	if !strings.Contains(bushy.String(), "bushy") {
		t.Errorf("bushy plan rendering does not say so:\n%s", bushy)
	}
}

func TestBushyNeverChosenWhenChainPricesEqual(t *testing.T) {
	// A pure chain has no independent subtrees: the bushy candidate
	// cannot beat the left-deep critical path, so the chain is kept.
	p := Build(chainLeaves(), nil, []string{"x"}, false, ModeCost, testCosts())
	if p.Bushy {
		t.Errorf("chain query chose a bushy plan:\n%s", p)
	}
}

func TestNodeIDsAreStablePreorder(t *testing.T) {
	p := Build(snowflakeLeaves(), nil, []string{"a"}, false, ModeCost, testCosts())
	seen := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.ID < 0 || n.ID >= p.NumNodes() {
			t.Errorf("node %s has out-of-range ID %d (NumNodes=%d)", n.Op, n.ID, p.NumNodes())
		}
		if seen[n.ID] {
			t.Errorf("duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	if len(seen) != p.NumNodes() {
		t.Errorf("walked %d nodes, NumNodes=%d", len(seen), p.NumNodes())
	}
}

func TestObservationStampLeavesPlanUntouched(t *testing.T) {
	p := Build(chainLeaves(), nil, []string{"x"}, false, ModeCost, testCosts())
	obs := NewObservation(p)
	// Record actuals for the scans only: a partially executed query.
	for _, sc := range p.Scans() {
		obs.Record(sc, 7)
	}
	stamped := p.Stamp(obs)
	for _, sc := range stamped.Scans() {
		if sc.Actual != 7 {
			t.Errorf("stamped scan actual = %d, want 7", sc.Actual)
		}
	}
	if stamped.Root.Actual != -1 {
		t.Errorf("stamped root actual = %d, want -1 (never executed)", stamped.Root.Actual)
	}
	// The original plan (cache-shared) must stay pristine.
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Actual != -1 {
			t.Errorf("original plan node %s mutated: actual = %d", n.Op, n.Actual)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

// TestErrorRatioSkipsUnexecutedNodes is the satellite regression test:
// nodes that never executed must not contribute bogus ratios to
// MaxErrorRatio, and a fully unexecuted (e.g. cached, unstamped) plan
// reports "not executed".
func TestErrorRatioSkipsUnexecutedNodes(t *testing.T) {
	p := Build(chainLeaves(), nil, []string{"x"}, false, ModeCost, testCosts())
	if ratio, at := p.MaxErrorRatio(); at != nil || ratio != 1 {
		t.Errorf("unexecuted plan MaxErrorRatio = %g at %v, want (1, nil)", ratio, at)
	}
	obs := NewObservation(p)
	// Execute only the root-most scan exactly on-estimate; the huge
	// unexecuted joins above it must not dominate the ratio.
	sc := p.Scans()[0]
	obs.Record(sc, int64(sc.Est))
	stamped := p.Stamp(obs)
	ratio, at := stamped.MaxErrorRatio()
	if at == nil || at.Op != OpScan {
		t.Fatalf("MaxErrorRatio landed at %v, want the executed scan", at)
	}
	if ratio != 1 {
		t.Errorf("on-estimate partial execution ratio = %g, want 1", ratio)
	}
	if !strings.Contains(stamped.ErrorSummary(), "max ratio 1.00x") {
		t.Errorf("summary = %q", stamped.ErrorSummary())
	}
}

func TestModeCostLeftDeepString(t *testing.T) {
	if ModeCostLeftDeep.String() != "cost-leftdeep" {
		t.Errorf("ModeCostLeftDeep = %q", ModeCostLeftDeep.String())
	}
}
