package plan

import (
	"time"
)

// This file is the adaptive re-planner: given a partially executed
// plan whose estimates turned out wrong, it rebuilds the *unexecuted*
// remainder over the intermediates execution has already materialized
// (exact cardinalities, exact per-variable distinct counts and key
// skew), and decides whether switching to the corrected remainder pays
// for the re-planning charge.
//
// Three candidates are priced with the rebased statistics:
//
//  1. the static baseline — the original remainder shape with its
//     original physical methods (what finishing the old plan costs),
//  2. the repriced baseline — the same shape with physical selection
//     re-run per join, and
//  3. the greedy re-order — cost-based enumeration (left-deep chain,
//     plus the bushy GOO candidate when the mode allows it) from
//     scratch over the bound leaves.
//
// Because candidate 1 is always in the running and all candidates are
// priced by the same methodTime implementation, the chosen remainder is
// never priced worse than the static remainder — the invariant the
// rebased-estimator property test pins down.

// BoundLeaf describes one materialized intermediate result as the
// re-planner sees it: the exact output cardinality, per-variable
// distinct counts and hottest-value fractions computed from the actual
// rows, the partitioning the relation is laid out in, and an opaque
// Source handle the scheduler uses to wire the new plan's Bound leaf
// back to the relation.
type BoundLeaf struct {
	// Label names the executed fragment the leaf stands for.
	Label string
	// Vars is the relation's schema in engine column order.
	Vars []string
	// Rows is the exact materialized cardinality.
	Rows int64
	// Dist is the exact distinct-value count per variable.
	Dist map[string]float64
	// Hot is the fraction of rows carried by each variable's single
	// hottest value — the skew signal shuffle pricing reads.
	Hot map[string]float64
	// PartCols is the partitioning the relation carries (nil when
	// arbitrary).
	PartCols []string
	// Pats lists the triple patterns of every scan the fragment
	// materialized, so sketch-based estimation can still price the
	// remainder's joins of this intermediate against other relations.
	Pats []PatRef
	// Done is the virtual time the fragment finished materializing.
	Done time.Duration
	// Source is the caller's handle, stored into the Bound node's Leaf
	// field.
	Source int
}

// Remainder identifies the unexecuted upper fragment of a plan: the
// set of node IDs still to run (closed under ancestors, so it always
// includes the epilogue) and, for every executed node feeding that
// fragment, the index of the bound leaf standing in for it.
type Remainder struct {
	// Unexec holds the IDs of the nodes that have not executed.
	Unexec map[int]bool
	// Bound maps an executed node's ID to its index in the bound list.
	Bound map[int]int
}

// ReplanResult is one re-planning decision.
type ReplanResult struct {
	// Plan is the remainder to execute: the corrected plan when
	// Adopted, otherwise the static baseline (same shape, same methods,
	// estimates rebased), so a rejected re-plan executes exactly what
	// the original plan would have.
	Plan *Plan
	// Static is the baseline remainder (original shape and methods,
	// rebased estimates), kept for EXPLAIN's old-vs-new rendering.
	Static *Plan
	// Adopted reports whether the corrected remainder replaced the
	// baseline.
	Adopted bool
	// OldCrit and NewCrit are the priced critical paths of the static
	// baseline and of the chosen remainder (equal when not adopted).
	OldCrit, NewCrit time.Duration
}

// Replan re-plans the unexecuted remainder of orig over the bound
// leaves. charge is the virtual-time cost of splicing a new remainder
// into the running query; the corrected remainder is adopted only when
// its priced critical path undercuts the static baseline by more than
// the charge, so a query never pays for a re-plan that cannot win it
// back. allowBushy enables the bushy GOO candidate (ModeCost); the
// left-deep mode keeps its chain shape.
func Replan(orig *Plan, rem Remainder, bound []BoundLeaf, filters []FilterSpec, projection []string, distinct bool, allowBushy bool, c Costs, charge time.Duration) ReplanResult {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BytesPerValue <= 0 {
		c.BytesPerValue = 5
	}
	// Bound-leaf sizes are observed, not estimated, so the engine's
	// runtime join rule is predictable — price every candidate
	// (including the static baseline) with it.
	c.RuntimeRules = true

	baseline := rebuildRemainder(orig.Root, rem, bound, filters, true, c)
	repriced := rebuildRemainder(orig.Root, rem, bound, filters, false, c)

	residual := remainderResidual(orig.Root, rem)
	greedy := greedyRemainder(bound, residual, filters, projection, distinct, allowBushy, c)

	chosen := repriced
	if greedy.crit < chosen.crit {
		chosen = greedy
	}

	res := ReplanResult{
		Static:  orig.WithRoot(baseline.node),
		OldCrit: baseline.crit,
		NewCrit: chosen.crit,
	}
	if chosen.crit+charge < baseline.crit {
		res.Adopted = true
		res.Plan = orig.WithRoot(chosen.node)
	} else {
		res.NewCrit = baseline.crit
		res.Plan = res.Static
	}
	return res
}

// boundState builds the planner state for one materialized leaf. Its
// critical-path contribution is zero: the work is sunk, every candidate
// consumes the same leaves, and the comparison prices remainder work
// only.
func boundState(l BoundLeaf) state {
	dist := make(map[string]float64, len(l.Dist))
	for v, d := range l.Dist {
		dist[v] = d
	}
	est := float64(l.Rows)
	capDist(dist, est)
	n := &Node{
		Op:        OpBound,
		Label:     l.Label,
		Vars:      append([]string(nil), l.Vars...),
		Est:       est,
		Actual:    -1,
		Leaf:      l.Source,
		EstSource: EstExact,
	}
	return state{
		node:     n,
		vars:     n.Vars,
		est:      est,
		dist:     dist,
		partCols: append([]string(nil), l.PartCols...),
		hot:      l.Hot,
		pats:     l.Pats,
	}
}

// rebuildRemainder reconstructs the remainder with its original shape
// over rebased child states. With pin the original physical methods are
// kept (the static baseline: what finishing the old plan costs under
// corrected statistics); without it physical selection re-runs per
// join. Output schemas and pruning are preserved either way, so the
// rebuilt remainder produces exactly the columns later operators
// expect.
func rebuildRemainder(n *Node, rem Remainder, bound []BoundLeaf, filters []FilterSpec, pin bool, c Costs) state {
	if !rem.Unexec[n.ID] {
		return boundState(bound[rem.Bound[n.ID]])
	}
	switch n.Op {
	case OpJoin:
		l := rebuildRemainder(n.Children[0], rem, bound, filters, pin, c)
		r := rebuildRemainder(n.Children[1], rem, bound, filters, pin, c)
		shared := sharedVars(l.vars, r.vars)
		var est float64
		src := EstIndep
		var joinKeys map[string]float64
		method := n.Method
		if len(shared) == 0 {
			est = l.est * r.est
			method = MethodCartesian
		} else {
			est, src, joinKeys = joinEstimate(l, r, shared, c)
			if !pin {
				method, _, _ = selectMethod(l, r, shared, est, c)
			}
		}
		partCols, t := methodTime(l, r, shared, est, method, c)
		outVars := append([]string(nil), n.Vars...)
		if !containsAll(outVars, partCols) {
			partCols = nil
		}
		dist := mergeDist(l, r, outVars, est)
		capDistKeys(dist, joinKeys)
		nn := &Node{
			Op:        OpJoin,
			Label:     varList(shared),
			Vars:      outVars,
			Est:       est,
			Actual:    -1,
			Children:  []*Node{l.node, r.node},
			Method:    method,
			JoinVars:  shared,
			Keep:      append([]string(nil), n.Keep...),
			EstSource: src,
		}
		crit := l.crit
		if r.crit > crit {
			crit = r.crit
		}
		pats := make([]PatRef, 0, len(l.pats)+len(r.pats))
		pats = append(append(pats, l.pats...), r.pats...)
		return state{node: nn, vars: outVars, est: est, dist: dist, partCols: partCols, pats: pats, crit: crit + t}
	case OpFilter:
		in := rebuildRemainder(n.Children[0], rem, bound, filters, pin, c)
		sel := 1.0
		for _, fi := range n.Filters {
			if fi >= 0 && fi < len(filters) {
				sel *= filters[fi].Selectivity
			}
		}
		nn := &Node{
			Op:       OpFilter,
			Vars:     append([]string(nil), n.Vars...),
			Est:      in.est * sel,
			Actual:   -1,
			Children: []*Node{in.node},
			Filters:  append([]int(nil), n.Filters...),
		}
		in.node, in.est = nn, nn.Est
		return in
	case OpProject:
		in := rebuildRemainder(n.Children[0], rem, bound, filters, pin, c)
		nn := &Node{
			Op:       OpProject,
			Vars:     append([]string(nil), n.Vars...),
			Cols:     append([]string(nil), n.Cols...),
			Est:      in.est,
			Actual:   -1,
			Children: []*Node{in.node},
		}
		in.node, in.vars = nn, nn.Vars
		return in
	case OpDistinct:
		in := rebuildRemainder(n.Children[0], rem, bound, filters, pin, c)
		nn := &Node{
			Op:       OpDistinct,
			Vars:     append([]string(nil), n.Vars...),
			Est:      distinctEstimate(in, n.Vars),
			Actual:   -1,
			Children: []*Node{in.node},
		}
		in.node, in.est = nn, nn.Est
		return in
	default: // OpScan/OpBound cannot be unexecuted remainder interior nodes.
		return boundState(bound[rem.Bound[n.ID]])
	}
}

// remainderResidual collects the residual-filter indexes of the
// remainder's Filter nodes (pushed filters ran inside the executed
// scans and are gone).
func remainderResidual(root *Node, rem Remainder) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if !rem.Unexec[n.ID] {
			return
		}
		if n.Op == OpFilter {
			out = append(out, n.Filters...)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// greedyRemainder re-enumerates the remainder from scratch over the
// bound leaves: a greedy left-deep chain (smallest leaf first, then the
// connected leaf with the smallest estimated join, ties broken by
// priced time), plus the bushy GOO candidate when allowed, keeping the
// cheaper critical path. The epilogue (residual filters, projection,
// DISTINCT) is appended exactly as Build does.
func greedyRemainder(bound []BoundLeaf, residual []int, filters []FilterSpec, projection []string, distinct bool, allowBushy bool, c Costs) state {
	states := make([]state, len(bound))
	for i, l := range bound {
		states[i] = boundState(l)
	}
	cur := chainStates(states, projection, c)
	if allowBushy && len(states) > 2 {
		for _, byCrit := range []bool{false, true} {
			if bushy := gooStates(states, projection, c, byCrit); bushy.crit < cur.crit {
				cur = bushy
			}
		}
	}
	node := epilogue(cur, residual, filters, projection, distinct)
	cur.node = node
	return cur
}

// chainStates builds the greedy left-deep chain over prebuilt states.
func chainStates(states []state, projection []string, c Costs) state {
	remaining := make([]int, len(states))
	for i := range remaining {
		remaining[i] = i
	}
	start := 0
	for pos := 1; pos < len(remaining); pos++ {
		if states[remaining[pos]].est < states[remaining[start]].est {
			start = pos
		}
	}
	cur := states[remaining[start]]
	remaining = append(remaining[:start], remaining[start+1:]...)

	for len(remaining) > 0 {
		best := -1
		var bestEst float64
		var bestTime time.Duration
		for pos, li := range remaining {
			shared := sharedVars(cur.vars, states[li].vars)
			if len(shared) == 0 {
				continue
			}
			est, _, _ := joinEstimate(cur, states[li], shared, c)
			t := joinTime(cur, states[li], shared, est, c)
			if best < 0 || est < bestEst || (est == bestEst && t < bestTime) {
				best, bestEst, bestTime = pos, est, t
			}
		}
		if best < 0 {
			// Disconnected remainder: cartesian with the smallest.
			best = 0
			for pos := 1; pos < len(remaining); pos++ {
				if states[remaining[pos]].est < states[remaining[best]].est {
					best = pos
				}
			}
		}
		retain := make(map[string]bool, len(projection))
		for _, v := range projection {
			retain[v] = true
		}
		for pos, li := range remaining {
			if pos == best {
				continue
			}
			for _, v := range states[li].vars {
				retain[v] = true
			}
		}
		cur = joinStates(cur, states[remaining[best]], ModeCost, c, retain)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return cur
}

// gooStates is greedy operator ordering over prebuilt component
// states, merging the best connected pair until one component remains
// so independent fragments grow as siblings and price as parallel
// branches. With byCrit false the best pair has the smallest estimated
// join output (ties by priced time, then input order); with byCrit
// true it has the shortest merged critical path (ties by estimate) —
// see buildBushy for why both comparators are enumerated.
func gooStates(states []state, projection []string, c Costs, byCrit bool) state {
	comps := append([]state(nil), states...)
	for len(comps) > 1 {
		bi, bj := bestGOOPair(comps, c, byCrit)
		retain := make(map[string]bool, len(projection))
		for _, v := range projection {
			retain[v] = true
		}
		for k := range comps {
			if k == bi || k == bj {
				continue
			}
			for _, v := range comps[k].vars {
				retain[v] = true
			}
		}
		comps[bi] = joinStates(comps[bi], comps[bj], ModeCost, c, retain)
		comps = append(comps[:bj], comps[bj+1:]...)
	}
	return comps[0]
}

// mergeDist min-merges the per-variable distinct counts of two join
// inputs over the output schema, capped to the output estimate.
func mergeDist(left, right state, outVars []string, est float64) map[string]float64 {
	dist := make(map[string]float64, len(outVars))
	for _, v := range outVars {
		dl, okL := left.dist[v]
		dr, okR := right.dist[v]
		switch {
		case okL && okR:
			if dl < dr {
				dist[v] = dl
			} else {
				dist[v] = dr
			}
		case okL:
			dist[v] = dl
		case okR:
			dist[v] = dr
		}
	}
	capDist(dist, est)
	return dist
}

// containsAll reports whether vars contains every column in cols (and
// cols is non-empty).
func containsAll(vars, cols []string) bool {
	if len(cols) == 0 {
		return false
	}
	for _, c := range cols {
		if !containsVar(vars, c) {
			return false
		}
	}
	return true
}
