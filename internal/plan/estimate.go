package plan

import "math"

// This file is the join-cardinality estimator. Every join estimate in
// the planner — chain ordering, bushy enumeration, physical selection
// and the adaptive re-planner's rebased candidates — flows through
// joinEstimate, which applies the documented precedence:
//
//  1. Two-predicate join sketches (Costs.JoinStats): for a shared
//     variable exposed by a triple pattern on each side, the exact
//     leaf-level join cardinality of the predicate pair at its join
//     position, scaled to the actual input sizes under the containment
//     assumption. This prices correlated predicates (likes ⋈ likes
//     triangles) that the independence assumption misses by orders of
//     magnitude.
//  2. The textbook independence assumption |A ⋈ B| ≈ |A|·|B|/max(d)
//     for variables no sketch covers — the documented fallback when a
//     pair was trimmed by the sketch top-K bound, a predicate is
//     unknown, or join statistics were not collected.
//
// Characteristic sets are applied one layer up (internal/core prices
// star-shaped Property Table scans with them before the leaves reach
// Build); the est-source tags on plan nodes record which source
// produced each estimate for EXPLAIN.

// Estimate sources, rendered per node in EXPLAIN output.
const (
	// EstIndep is the independence assumption (the fallback).
	EstIndep = "indep"
	// EstCSet marks a scan priced from characteristic sets.
	EstCSet = "cset"
	// EstSketch marks an estimate priced from a pair join sketch.
	EstSketch = "sketch"
	// EstExact marks a materialized intermediate (bound leaf) whose
	// cardinality was observed, not estimated.
	EstExact = "exact"
	// EstExtVP marks a scan rewritten to a materialized semi-join
	// reduction (workload-driven ExtVP table); its estimate is the
	// reduction's exact row count (scaled by the pattern's constant
	// selectivity when a position is bound).
	EstExtVP = "extvp"
	// EstObserved marks a scan whose cardinality was seeded from a
	// previous execution of the same (predicate, constant) subpattern —
	// the workload model's cross-query feedback.
	EstObserved = "obs"
)

// PairPos identifies which position of each pattern in an ordered
// predicate pair carries the shared join variable. The numeric values
// match stats.JoinPos — the cross-package contract behind the
// JoinStatsProvider interface.
type PairPos uint8

// Pair positions.
const (
	// PairSS joins the subjects of both patterns.
	PairSS PairPos = iota
	// PairSO joins the left pattern's subject with the right's object.
	PairSO
	// PairOS joins the left pattern's object with the right's subject.
	PairOS
	// PairOO joins the objects of both patterns.
	PairOO
)

// String implements fmt.Stringer.
func (p PairPos) String() string {
	switch p {
	case PairSS:
		return "s-s"
	case PairSO:
		return "s-o"
	case PairOS:
		return "o-s"
	default:
		return "o-o"
	}
}

// JoinStatsProvider is the sketch lookup the estimator prices
// correlated joins with; *stats.Collection implements it. pos uses the
// PairPos encoding.
type JoinStatsProvider interface {
	// PairJoin returns the leaf-level join cardinality and the number
	// of distinct shared key values for the ordered predicate pair at
	// the given position. ok=false means "no sketch — fall back to
	// independence"; ok=true with a zero join is exact knowledge that
	// the pair never shares a key.
	PairJoin(p1, p2 uint64, pos uint8) (join, keys float64, ok bool)
	// PredTriples returns a predicate's total triple count — the
	// population its sketches were computed over, and therefore the
	// denominator that scales a sketch to filtered inputs.
	PredTriples(p uint64) float64
}

// PatRef ties one triple pattern of a leaf to the variables it exposes,
// so the estimator can find the predicate pair behind a join variable.
// Bound positions carry an empty variable name.
type PatRef struct {
	// Pred is the pattern's predicate ID (dictionary encoding).
	Pred uint64
	// SVar and OVar name the variables at the subject and object
	// positions ("" when the position is bound or absent).
	SVar, OVar string
}

// joinEstimate estimates |left ⋈ right| over the shared variables. Per
// shared variable it prefers a pair sketch — min over the candidate
// predicate pairs of join/(T1·T2), scaled by both input sizes — and
// falls back to the independence denominator max(d) over the remaining
// variables, reproducing the pre-sketch estimate bit-for-bit when no
// sketch applies. It returns the estimate, its source tag, and for
// sketch-covered variables the leaf-level shared-key count (an upper
// bound on the join output's distinct values for that variable).
func joinEstimate(left, right state, shared []string, c Costs) (float64, string, map[string]float64) {
	est := left.est * right.est
	restDenom := 1.0
	src := EstIndep
	var keys map[string]float64
	for _, v := range shared {
		if c.JoinStats != nil {
			if sel, k, ok := pairSelectivity(left.pats, right.pats, v, c.JoinStats); ok {
				est *= sel
				src = EstSketch
				if keys == nil {
					keys = make(map[string]float64, len(shared))
				}
				keys[v] = k
				continue
			}
		}
		d := math.Max(left.dist[v], right.dist[v])
		if d > restDenom {
			restDenom = d
		}
	}
	return est / restDenom, src, keys
}

// pairSelectivity combines every sketch-covered predicate pair
// exposing v on both sides into one selectivity: the geometric mean of
// the candidates' leaf-level selectivities join/(T1·T2). No single
// candidate is an upper or lower bound once the containment scaling is
// applied — positively correlated per-key degrees (popular products
// carry more likes AND more reviews AND more genres) make every
// pairwise product an underestimate of the multi-way output, while
// anti-correlated combinations make the largest candidate an
// overestimate — so log-averaging the pairwise evidence is the
// estimator the accuracy harness (accuracy_test.go) holds within its
// 4x q-error bound; min- and max-combining both break it. The returned
// key count is the smallest candidate's: the output's distinct v
// values lie in the intersection of every pair's shared-key set, so
// the minimum is always a valid upper bound.
func pairSelectivity(lpats, rpats []PatRef, v string, prov JoinStatsProvider) (sel, keys float64, ok bool) {
	logSum, n := 0.0, 0
	for _, lp := range lpats {
		for _, lSubj := range patPositions(lp, v) {
			for _, rp := range rpats {
				for _, rSubj := range patPositions(rp, v) {
					join, k, has := prov.PairJoin(lp.Pred, rp.Pred, uint8(pairPos(lSubj, rSubj)))
					if !has {
						continue
					}
					t1, t2 := prov.PredTriples(lp.Pred), prov.PredTriples(rp.Pred)
					if t1 <= 0 || t2 <= 0 || join == 0 {
						// A provably empty pair empties the join outright.
						return 0, 0, true
					}
					logSum += math.Log(join / (t1 * t2))
					n++
					if !ok || k < keys {
						keys, ok = k, true
					}
				}
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	return math.Exp(logSum / float64(n)), keys, true
}

// patPositions reports where a pattern exposes v: true for the subject
// position, false for the object position (both for ?v p ?v).
func patPositions(p PatRef, v string) []bool {
	var out []bool
	if p.SVar == v {
		out = append(out, true)
	}
	if p.OVar == v {
		out = append(out, false)
	}
	return out
}

// pairPos maps the (left-subject?, right-subject?) combination to the
// sketch position encoding.
func pairPos(lSubj, rSubj bool) PairPos {
	switch {
	case lSubj && rSubj:
		return PairSS
	case lSubj:
		return PairSO
	case rSubj:
		return PairOS
	default:
		return PairOO
	}
}

// capDistKeys bounds the join output's per-variable distinct counts by
// the sketch's shared-key counts: the join output can only contain key
// values both sides share at leaf level.
func capDistKeys(dist, keys map[string]float64) {
	for v, k := range keys {
		if d, in := dist[v]; in && k < d {
			dist[v] = math.Max(k, 1)
		}
	}
}
