package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
)

// This file is the workload-rewrite pre-pass: before join ordering, a
// single-pattern VP leaf whose predicate has a live materialized
// semi-join reduction (ExtVP table) against a sibling pattern in the
// same BGP is rewritten to scan the reduction instead of the full VP
// table. The reduction holds exactly the rows that survive the join
// with the partner's full table, so for a conjunctive BGP — where that
// join happens — the rewritten scan produces a superset of the rows
// the join will keep and the final result is unchanged; only the
// bytes read and shuffled shrink. A rewrite is kept only when the
// repriced scan is strictly cheaper, and every candidate considered is
// recorded on the plan so EXPLAIN can attribute declined rewrites.

// ExtVPProvider resolves materialized semi-join reductions for the
// planner. The workload model (via the core store) implements it.
type ExtVPProvider interface {
	// ExtVPTable returns the live reduction of pred against partner at
	// pos (PairPos encoding, seen from pred's side): the reduction's
	// exact row count and the full VP table's row count it was reduced
	// from. ok=false when no such table is currently materialized.
	ExtVPTable(pred, partner uint64, pos uint8) (tableRows, sourceRows int64, ok bool)
}

// ExtVPRef annotates a rewritten Scan with the reduction it reads; the
// executor resolves it back to the materialized table (falling back to
// the full VP table when the reduction was evicted in between).
type ExtVPRef struct {
	// Pred is the scanned predicate; Partner the predicate it was
	// semi-join-reduced against; Pos the join position from Pred's side.
	Pred, Partner uint64
	Pos           PairPos
	// TableRows is the reduction's exact cardinality at plan time.
	TableRows int64
}

// Rewrite records one candidate scan rewrite the pre-pass considered,
// applied or declined — the EXPLAIN workload block's rows.
type Rewrite struct {
	// Leaf is the candidate scan's label; Pred/Partner/Pos identify the
	// reduction considered.
	Leaf          string
	Pred, Partner uint64
	Pos           PairPos
	// TableRows and SourceRows are the reduction's and the full VP
	// table's cardinalities.
	TableRows, SourceRows int64
	// OldEst and NewEst are the leaf estimates before and after; OldTime
	// and NewTime the priced scan times the decision compared.
	OldEst, NewEst   float64
	OldTime, NewTime time.Duration
	// Applied reports the decision; Reason explains a decline.
	Applied bool
	Reason  string
}

// scanPrice prices reading est rows of the given width — the same
// arithmetic scanState charges, factored out so the rewrite decision
// compares exactly what the plan will be priced at.
func scanPrice(est float64, width int, c Costs) time.Duration {
	return c.Model.TaskTime(cluster.TaskStats{
		DiskBytes: estBytesFor(est, width, c) / int64(c.Workers),
		Rows:      estRows(est) / int64(c.Workers),
	})
}

// rewriteLeaves applies the ExtVP pre-pass. It returns the (possibly
// copied and modified) leaves and the record of every candidate
// considered. Leaves are modified copy-on-write: callers' slices are
// never touched.
func rewriteLeaves(leaves []Leaf, c Costs) ([]Leaf, []Rewrite) {
	if c.ExtVP == nil {
		return leaves, nil
	}
	var recs []Rewrite
	out := leaves
	for i := range leaves {
		l := &leaves[i]
		if !l.Reducible || len(l.Pats) != 1 || l.ExtVP != nil {
			continue
		}
		pat := l.Pats[0]
		first := len(recs) // this leaf's records start here
		best := -1         // index into recs of the best applicable candidate
		for j := range leaves {
			if j == i {
				continue
			}
			for _, pp := range leaves[j].Pats {
				for _, v := range sharedPatVars(pat, pp) {
					for _, lSubj := range patPositions(pat, v) {
						for _, rSubj := range patPositions(pp, v) {
							pos := pairPos(lSubj, rSubj)
							tRows, sRows, ok := c.ExtVP.ExtVPTable(pat.Pred, pp.Pred, uint8(pos))
							if !ok {
								continue
							}
							rec := priceRewrite(l, pat, pp.Pred, pos, tRows, sRows, c)
							recs = append(recs, rec)
							if rec.Reason == "" {
								if best < 0 || rec.NewTime < recs[best].NewTime ||
									(rec.NewTime == recs[best].NewTime && lessRewrite(rec, recs[best])) {
									best = len(recs) - 1
								}
							}
						}
					}
				}
			}
		}
		if best < 0 {
			continue
		}
		for k := first; k < len(recs); k++ {
			if recs[k].Reason != "" {
				continue
			}
			if k == best {
				recs[k].Applied = true
			} else {
				recs[k].Reason = "better candidate chosen"
			}
		}
		b := recs[best]
		if sameSlice(out, leaves) {
			out = append([]Leaf(nil), leaves...)
		}
		nl := out[i]
		nl.Est = b.NewEst
		nl.EstSource = EstExtVP
		nl.ExtVP = &ExtVPRef{Pred: b.Pred, Partner: b.Partner, Pos: b.Pos, TableRows: b.TableRows}
		out[i] = nl
	}
	return out, recs
}

// priceRewrite evaluates one candidate reduction for a leaf: the
// rewritten estimate (exact table rows for an unbound pattern, the
// old estimate scaled by the reduction ratio when a position is
// bound), both priced scan times, and the decline reason if any.
func priceRewrite(l *Leaf, pat PatRef, partner uint64, pos PairPos, tRows, sRows int64, c Costs) Rewrite {
	rec := Rewrite{
		Leaf: l.Label, Pred: pat.Pred, Partner: partner, Pos: pos,
		TableRows: tRows, SourceRows: sRows,
		OldEst: l.Est, OldTime: scanPrice(l.Est, len(l.Vars), c),
	}
	if pat.SVar != "" && pat.OVar != "" {
		rec.NewEst = float64(tRows)
	} else if sRows > 0 {
		rec.NewEst = l.Est * float64(tRows) / float64(sRows)
	} else {
		rec.NewEst = 0
	}
	rec.NewTime = scanPrice(rec.NewEst, len(l.Vars), c)
	switch {
	case tRows >= sRows:
		rec.Reason = "reduction not smaller than source"
	case rec.NewTime >= rec.OldTime:
		rec.Reason = "not priced cheaper"
	}
	return rec
}

// lessRewrite orders equally priced candidates deterministically.
func lessRewrite(a, b Rewrite) bool {
	if a.Partner != b.Partner {
		return a.Partner < b.Partner
	}
	return a.Pos < b.Pos
}

// sharedPatVars lists the variables two patterns share.
func sharedPatVars(a, b PatRef) []string {
	var out []string
	add := func(v string) {
		if v == "" {
			return
		}
		for _, x := range out {
			if x == v {
				return
			}
		}
		if v == b.SVar || v == b.OVar {
			out = append(out, v)
		}
	}
	add(a.SVar)
	add(a.OVar)
	return out
}

// sameSlice reports whether two slices share backing storage and
// length — the copy-on-write guard.
func sameSlice(a, b []Leaf) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// JoinObservation is one executed join's predicate-pair record, mined
// from a stamped plan to feed the workload model.
type JoinObservation struct {
	// P1 and P2 are the predicates on the left and right side; Pos the
	// join position (PairPos encoding, from P1's side).
	P1, P2 uint64
	Pos    PairPos
	// Rows is the join's observed output cardinality.
	Rows int64
}

// JoinObservations mines a stamped plan for executed joins: every Join
// node with an observed cardinality yields one observation per
// predicate pair exposing a join variable on opposite sides — the same
// pair resolution the sketch estimator prices with. Bound leaves
// (materialized intermediates of an earlier round) carry no patterns
// and contribute nothing, which is why the caller mines the first
// round's stamped plan rather than a grafted one.
func (p *Plan) JoinObservations() []JoinObservation {
	var out []JoinObservation
	var pats func(n *Node) []PatRef
	pats = func(n *Node) []PatRef {
		if n.Op == OpScan {
			if n.Leaf >= 0 && n.Leaf < len(p.Leaves) {
				return p.Leaves[n.Leaf].Pats
			}
			return nil
		}
		var acc []PatRef
		for _, c := range n.Children {
			acc = append(acc, pats(c)...)
		}
		return acc
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		if n.Op != OpJoin || n.Actual < 0 || len(n.Children) != 2 {
			return
		}
		lp, rp := pats(n.Children[0]), pats(n.Children[1])
		for _, v := range n.JoinVars {
			for _, l := range lp {
				for _, lSubj := range patPositions(l, v) {
					for _, r := range rp {
						for _, rSubj := range patPositions(r, v) {
							out = append(out, JoinObservation{
								P1: l.Pred, P2: r.Pred,
								Pos: pairPos(lSubj, rSubj), Rows: n.Actual,
							})
						}
					}
				}
			}
		}
	}
	walk(p.Root)
	return out
}

// RewriteSummary renders the plan's workload-rewrite block for
// EXPLAIN: every candidate reduction considered with its priced delta
// and the applied/declined decision. Empty when the pre-pass had no
// candidates.
func (p *Plan) RewriteSummary() string {
	if len(p.Rewrites) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("workload rewrites:\n")
	for _, r := range p.Rewrites {
		verdict := "declined"
		detail := r.Reason
		if r.Applied {
			verdict = "applied"
			detail = fmt.Sprintf("est %.4g -> %.4g rows", r.OldEst, r.NewEst)
		}
		fmt.Fprintf(&sb, "  %s %s: p%d reduced by p%d at %s (%d of %d rows), priced %v -> %v",
			verdict, r.Leaf, r.Pred, r.Partner, r.Pos, r.TableRows, r.SourceRows, r.OldTime, r.NewTime)
		if detail != "" {
			sb.WriteString(" — " + detail)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
