// Package plan is PRoST's physical planning layer: an explicit plan IR
// sitting between Join Tree translation (internal/core) and relational
// execution (internal/engine). A Plan is a tree of operators — Scan,
// Filter, Join, Project, Distinct — each carrying an estimated output
// cardinality derived from loader-time statistics, and, once executed,
// the actual cardinality observed, so EXPLAIN can show estimation error
// per node.
//
// Build runs three optimization passes over the translated leaves
// (paper §3.3, extended):
//
//  1. Filter pushdown — every FILTER constraint is attached to the
//     earliest scan in execution order that exposes its variable, so
//     the predicate runs during the scan instead of on a materialized
//     intermediate, and runs exactly once.
//  2. Join ordering — in ModeCost, greedy enumeration over the
//     cardinality-estimated join graph: start from the smallest
//     (filter-adjusted) leaf and repeatedly attach the connected leaf
//     whose priced join is cheapest. ModeHeuristic keeps the §3.3
//     priority order the translator produced; ModeNaive keeps the
//     query's written order (the ablation baselines).
//  3. Physical join selection — each join is priced as a broadcast
//     exchange and as a shuffle exchange on its *estimated* input
//     sizes using cluster.CostModel, choosing the cheaper, instead of
//     applying one global size threshold at runtime. Sides whose
//     predicted partitioning already matches the join key are priced
//     as co-partitioned (zero shuffle movement).
package plan

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Op identifies a physical operator.
type Op uint8

// Physical operators.
const (
	// OpScan reads one Join Tree leaf (a VP table select, a Property
	// Table select, or the triple-table fallback), applying any pushed
	// filters during the scan.
	OpScan Op = iota
	// OpFilter applies FILTER predicates to a materialized relation —
	// produced only when a predicate cannot be pushed into a scan.
	OpFilter
	// OpJoin is a natural join with an explicit physical method.
	OpJoin
	// OpProject keeps the projected columns.
	OpProject
	// OpDistinct removes duplicate rows.
	OpDistinct
	// OpBound reads an intermediate result a previous execution round
	// already materialized — the leaf the adaptive re-planner rebuilds
	// the unexecuted remainder of a plan over. Its estimate is the
	// observed cardinality, exact by construction.
	OpBound
	// OpLeftJoin is a left outer join (OPTIONAL): every left row
	// survives, padded with NullID in right-only columns when
	// unmatched. The right child is always the build side.
	OpLeftJoin
	// OpUnion concatenates its children's rows (UNION); children bind
	// identical variable sets, pre-projected to a common column order.
	OpUnion
	// OpTopK orders rows by Sort and keeps [Offset, Offset+Limit) —
	// ORDER BY and LIMIT fused, pushed below the collect exchange as a
	// per-partition top-K before the coordinator merge. An empty Sort
	// imposes the deterministic raw-ID row order, making LIMIT without
	// ORDER BY plan- and partitioning-independent.
	OpTopK
	// OpAggregate hash-groups rows on GroupCols and appends one COUNT
	// column per CountVars entry (GROUP BY … / COUNT).
	OpAggregate
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpFilter:
		return "Filter"
	case OpJoin:
		return "Join"
	case OpProject:
		return "Project"
	case OpDistinct:
		return "Distinct"
	case OpBound:
		return "Bound"
	case OpLeftJoin:
		return "LeftJoin"
	case OpUnion:
		return "Union"
	case OpTopK:
		return "TopK"
	case OpAggregate:
		return "Aggregate"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// SortKey is one ORDER BY key of a TopK node: the output column and
// its direction.
type SortKey struct {
	Col  string
	Desc bool
}

// JoinMethod is the physical strategy a Join node executes with.
type JoinMethod uint8

// Join methods.
const (
	// MethodAuto defers the choice to the engine's runtime rule (the
	// Catalyst-style broadcast threshold on actual sizes). Heuristic and
	// naive plans use it so the paper's behaviour is reproduced exactly.
	MethodAuto JoinMethod = iota
	// MethodBroadcast ships the smaller side to every worker.
	MethodBroadcast
	// MethodShuffle repartitions both sides on the join key.
	MethodShuffle
	// MethodCoPartitioned is a shuffle join whose sides are predicted to
	// already be partitioned on the join key, so no rows move.
	MethodCoPartitioned
	// MethodCartesian marks a join without shared variables.
	MethodCartesian
)

// String implements fmt.Stringer.
func (m JoinMethod) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodBroadcast:
		return "broadcast"
	case MethodShuffle:
		return "shuffle"
	case MethodCoPartitioned:
		return "co-partitioned"
	case MethodCartesian:
		return "cartesian"
	default:
		return fmt.Sprintf("JoinMethod(%d)", uint8(m))
	}
}

// Mode selects the planner variant.
type Mode uint8

// Planner modes.
const (
	// ModeCost is the cost-based planner (the default): join order and
	// physical methods chosen by estimated cardinality and priced time.
	// It additionally enumerates bushy shapes — independent connected
	// subtrees become sibling subplans joined at the top — and keeps the
	// bushy plan when its estimated critical path (max over parallel
	// branches, not their sum) is shorter than the left-deep chain's.
	ModeCost Mode = iota
	// ModeHeuristic keeps the paper's §3.3 priority ordering and the
	// engine's runtime join selection.
	ModeHeuristic
	// ModeNaive keeps the query's written pattern order (ablation A1).
	ModeNaive
	// ModeCostLeftDeep is the cost-based planner restricted to left-deep
	// chains — the PR 2 behaviour, kept as the ablation baseline the
	// bushy planner is measured against.
	ModeCostLeftDeep
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCost:
		return "cost"
	case ModeHeuristic:
		return "heuristic"
	case ModeNaive:
		return "naive"
	case ModeCostLeftDeep:
		return "cost-leftdeep"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Node is one operator of a physical plan.
type Node struct {
	// ID is the node's stable index within its plan (preorder from the
	// root), assigned by Build. Observations record per-execution actual
	// cardinalities by ID, so cached plans shared across concurrent
	// executions are never mutated.
	ID int
	// Op is the operator kind.
	Op Op
	// Label is a short human-readable description (e.g. the leaf label
	// for scans, the join variables for joins).
	Label string
	// Vars is the operator's output schema, in the exact column order
	// the engine produces.
	Vars []string
	// Est is the estimated output cardinality (rows).
	Est float64
	// Actual is the observed output cardinality; -1 until stamped. Plans
	// returned by Build (and plans held in a cache) always carry -1:
	// execution records actuals into a per-execution Observation, and
	// Stamp produces a private copy with the actuals filled in.
	Actual int64
	// Attempts is the number of execution attempts the operator's task
	// took under fault injection (failed tries, the winning try and any
	// speculative duplicate all count). 0 or 1 — a clean first run —
	// renders nothing; recovery renders as " attempts=N" in EXPLAIN.
	// Like Actual it is stamped per execution, never onto cached plans.
	Attempts int
	// Children are the operator inputs (0 for Scan, 1 for
	// Filter/Project/Distinct, 2 for Join).
	Children []*Node

	// Leaf is the index of the Join Tree leaf a Scan reads.
	Leaf int
	// Filters are the indexes (into the builder's filter list) of the
	// predicates this Scan or Filter node applies.
	Filters []int
	// Method is the Join node's physical strategy.
	Method JoinMethod
	// JoinVars are the Join node's equi-join columns, in left-schema
	// order (the order the engine shuffles on).
	JoinVars []string
	// Keep, when non-nil, lists the output columns the Join retains —
	// fused column pruning of variables no later operator reads. Nil
	// keeps the full join output.
	Keep []string
	// Cols are the Project node's output columns.
	Cols []string
	// EstSource records what produced Est for Scan, Join and Bound
	// nodes: EstCSet (characteristic sets), EstSketch (pair join
	// sketches), EstIndep (the independence assumption) or EstExact
	// (observed cardinality of a materialized intermediate). Empty for
	// derivative operators (Filter/Project/Distinct inherit their
	// input's quality).
	EstSource string
	// Sort holds a TopK node's ORDER BY keys; empty means the
	// deterministic raw-ID row order (LIMIT without ORDER BY).
	Sort []SortKey
	// Limit and Offset bound a TopK node's output; Limit < 0 means no
	// limit (a plain ORDER BY).
	Limit  int
	Offset int
	// GroupCols are an Aggregate node's GROUP BY columns.
	GroupCols []string
	// CountVars are an Aggregate node's counted variables, one per
	// COUNT output column in schema order ("" = COUNT(*)).
	CountVars []string
	// CountCols marks, per output column of this node, which columns
	// hold raw counts instead of dictionary IDs. Set on Aggregate nodes
	// and propagated through downstream Project/TopK nodes so result
	// decoding and ORDER BY comparison treat count cells numerically.
	CountCols []bool
	// ExtVP, when non-nil, redirects a Scan to a workload-materialized
	// semi-join reduction of its predicate's VP table. Executors resolve
	// it against the live workload model and fall back to the full table
	// when the reduction has since been evicted (a superset, so results
	// are unchanged).
	ExtVP *ExtVPRef

	// PricedNetBytes and MeasuredNetBytes compare the cost model's
	// network charge for this operator's exchange against the bytes
	// measured on the wire in a distributed execution. Stamped per
	// execution (like Actual) when HasNetBytes is true; rendered as
	// " net=priced/measured" in EXPLAIN.
	PricedNetBytes   int64
	MeasuredNetBytes int64
	HasNetBytes      bool
}

// Plan is a complete physical plan for one query. A Plan is immutable
// once built (execution records actuals into an Observation, never onto
// the plan), so one Plan may be cached and executed by any number of
// concurrent queries.
type Plan struct {
	// Root is the plan's root operator.
	Root *Node
	// Mode is the planner variant that produced the plan.
	Mode Mode
	// Bushy reports whether ModeCost chose a bushy shape over the
	// left-deep chain (independent subtrees joined at the top).
	Bushy bool
	// EstCritPath is the builder's priced critical path of the join
	// tree: every node costs its own estimated time and completes at
	// max(children completions) + own time, so parallel branches price
	// as their max, not their sum. It is populated for every mode (the
	// cost modes use it to choose bushy vs left-deep; heuristic and
	// naive plans carry the best-alternative pricing for reference).
	EstCritPath time.Duration
	// Leaves are the scan descriptions the plan was built from, in
	// builder input order (Node.Leaf indexes into it).
	Leaves []Leaf
	// FilterLabels render the builder's filter specs for EXPLAIN.
	FilterLabels []string
	// Rewrites records every ExtVP scan-rewrite candidate the build's
	// workload pre-pass considered (applied and declined), for EXPLAIN.
	Rewrites []Rewrite

	nodeCount int
}

// NumNodes returns the number of operators in the plan; Node.ID values
// range over [0, NumNodes).
func (p *Plan) NumNodes() int { return p.nodeCount }

// assignIDs numbers the nodes preorder from the root.
func (p *Plan) assignIDs() {
	p.nodeCount = 0
	var walk func(n *Node)
	walk = func(n *Node) {
		n.ID = p.nodeCount
		p.nodeCount++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

// Observation is one execution's record of actual per-node output
// cardinalities, indexed by Node.ID. Each execution owns its
// Observation, so concurrent queries sharing a cached Plan never write
// to shared state.
type Observation struct {
	actual []int64
	// attempts holds per-node execution attempt counts, allocated only
	// when a fault-injected run records one — fault-free executions never
	// touch it.
	attempts []int32
}

// NewObservation returns an empty observation for the plan: every node
// is marked not-executed (-1).
func NewObservation(p *Plan) *Observation {
	o := &Observation{actual: make([]int64, p.NumNodes())}
	for i := range o.actual {
		o.actual[i] = -1
	}
	return o
}

// Record stores a node's observed output cardinality.
func (o *Observation) Record(n *Node, rows int64) {
	if o != nil && n.ID >= 0 && n.ID < len(o.actual) {
		o.actual[n.ID] = rows
	}
}

// Actual returns a node's observed cardinality, or -1 when the node did
// not execute under this observation.
func (o *Observation) Actual(n *Node) int64 {
	if o == nil || n.ID < 0 || n.ID >= len(o.actual) {
		return -1
	}
	return o.actual[n.ID]
}

// EnableAttempts allocates the per-node attempt slots. The
// fault-injected executor calls it once before concurrent tasks record;
// fault-free executions skip it and pay nothing.
func (o *Observation) EnableAttempts() {
	if o.attempts == nil {
		o.attempts = make([]int32, len(o.actual))
	}
}

// RecordAttempts stores a node's execution attempt count. A no-op
// unless EnableAttempts was called first.
func (o *Observation) RecordAttempts(n *Node, attempts int) {
	if o != nil && o.attempts != nil && n.ID >= 0 && n.ID < len(o.attempts) {
		o.attempts[n.ID] = int32(attempts)
	}
}

// AttemptsOf returns a node's recorded attempt count, or 0 when the
// execution never recorded one (fault-free runs record none).
func (o *Observation) AttemptsOf(n *Node) int {
	if o == nil || o.attempts == nil || n.ID < 0 || n.ID >= len(o.attempts) {
		return 0
	}
	return int(o.attempts[n.ID])
}

// Stamp returns a copy of the plan with the observation's actual
// cardinalities filled into the nodes — the per-execution view EXPLAIN
// renders. The receiver is not modified; nodes the observation never
// saw stay at -1 in the copy.
func (p *Plan) Stamp(o *Observation) *Plan {
	out := *p
	var clone func(n *Node) *Node
	clone = func(n *Node) *Node {
		c := *n
		c.Actual = o.Actual(n)
		c.Attempts = o.AttemptsOf(n)
		if len(n.Children) > 0 {
			c.Children = make([]*Node, len(n.Children))
			for i, ch := range n.Children {
				c.Children[i] = clone(ch)
			}
		}
		return &c
	}
	out.Root = clone(p.Root)
	return &out
}

// WithRoot returns a plan sharing p's metadata (mode, leaves, filter
// labels) but rooted at the given operator tree, with node IDs freshly
// assigned. The adaptive executor uses it to assemble the corrected
// plan a query actually executed out of grafted round fragments.
func (p *Plan) WithRoot(root *Node) *Plan {
	out := *p
	out.Root = root
	out.assignIDs()
	return &out
}

// Rebase returns a copy of the plan with every executed node's estimate
// replaced by its observed cardinality and the actuals reset to -1 —
// the feedback form the plan cache stores, so the next execution plans
// its trigger checks (and any further re-planning) from corrected
// numbers instead of repeating the original estimation mistake.
func (p *Plan) Rebase() *Plan {
	out := *p
	var clone func(n *Node) *Node
	clone = func(n *Node) *Node {
		c := *n
		if n.Actual >= 0 {
			c.Est = float64(n.Actual)
		}
		c.Actual = -1
		c.Attempts = 0
		if len(n.Children) > 0 {
			c.Children = make([]*Node, len(n.Children))
			for i, ch := range n.Children {
				c.Children[i] = clone(ch)
			}
		}
		return &c
	}
	out.Root = clone(p.Root)
	out.assignIDs()
	return &out
}

// Scans returns the plan's Scan nodes in execution (left-deep) order.
func (p *Plan) Scans() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		if n.Op == OpScan {
			out = append(out, n)
		}
	}
	walk(p.Root)
	return out
}

// String renders the plan as an indented operator tree with estimated
// and (when executed) actual cardinalities per node.
func (p *Plan) String() string {
	var sb strings.Builder
	shape := ""
	if p.Bushy {
		shape = ", bushy"
	}
	fmt.Fprintf(&sb, "Physical plan (%s planner%s):\n", p.Mode, shape)
	p.render(&sb, p.Root, "")
	return sb.String()
}

func (p *Plan) render(sb *strings.Builder, n *Node, indent string) {
	desc := n.Op.String()
	switch n.Op {
	case OpScan:
		desc = fmt.Sprintf("Scan %s", n.Label)
		if len(n.Filters) > 0 {
			desc += " [" + p.filterList(n.Filters) + "]"
		}
	case OpFilter:
		desc = "Filter [" + p.filterList(n.Filters) + "]"
	case OpJoin:
		desc = fmt.Sprintf("Join[%s] on %s", n.Method, varList(n.JoinVars))
		if n.Keep != nil {
			desc += " keep " + varList(n.Keep)
		}
	case OpProject:
		desc = "Project " + varList(n.Cols)
	case OpDistinct:
		desc = "Distinct"
	case OpBound:
		desc = "Bound " + n.Label
	case OpLeftJoin:
		desc = fmt.Sprintf("LeftJoin on %s", varList(n.JoinVars))
	case OpUnion:
		desc = fmt.Sprintf("Union (%d branches)", len(n.Children))
	case OpTopK:
		keys := make([]string, 0, len(n.Sort))
		for _, k := range n.Sort {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys = append(keys, fmt.Sprintf("%s(?%s)", dir, k.Col))
		}
		order := strings.Join(keys, ",")
		if order == "" {
			order = "id-order"
		}
		desc = "TopK " + order
		if n.Limit >= 0 {
			desc += fmt.Sprintf(" limit=%d", n.Limit)
		}
		if n.Offset > 0 {
			desc += fmt.Sprintf(" offset=%d", n.Offset)
		}
	case OpAggregate:
		desc = "Aggregate group by " + varList(n.GroupCols)
		for _, v := range n.CountVars {
			if v == "" {
				desc += " count(*)"
			} else {
				desc += " count(?" + v + ")"
			}
		}
	}
	actual := "actual=?"
	if n.Actual >= 0 {
		actual = fmt.Sprintf("actual=%d", n.Actual)
	}
	if n.EstSource != "" {
		actual += " est-source=" + n.EstSource
	}
	if n.Attempts > 1 {
		actual += fmt.Sprintf(" attempts=%d", n.Attempts)
	}
	if n.HasNetBytes {
		actual += fmt.Sprintf(" net=%s priced / %s measured",
			humanBytes(n.PricedNetBytes), humanBytes(n.MeasuredNetBytes))
	}
	fmt.Fprintf(sb, "%s%-52s est=%-10.4g %s\n", indent, desc, n.Est, actual)
	child := indent + "  "
	for _, c := range n.Children {
		p.render(sb, c, child)
	}
}

// filterList renders the filter labels at the given indexes.
func (p *Plan) filterList(idx []int) string {
	parts := make([]string, 0, len(idx))
	for _, i := range idx {
		if i >= 0 && i < len(p.FilterLabels) {
			parts = append(parts, p.FilterLabels[i])
		} else {
			parts = append(parts, fmt.Sprintf("filter#%d", i))
		}
	}
	return strings.Join(parts, " && ")
}

// humanBytes renders a byte count with a binary-unit suffix, compact
// enough for the single EXPLAIN annotation line.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// varList renders variable names with SPARQL question marks.
func varList(vars []string) string {
	if len(vars) == 0 {
		return "()"
	}
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = "?" + v
	}
	return strings.Join(parts, ",")
}

// MaxErrorRatio returns the worst per-node estimation error of an
// executed plan — max over nodes of max(est,1)/max(actual,1) or its
// inverse, whichever exceeds 1 — plus the node it occurs at. Nodes
// that never executed (Actual still -1: a freshly built or cached
// plan, or operators skipped when execution aborted early) are
// excluded, so a partially executed plan never reports the bogus
// infinite/zero ratios a missing actual would imply. Plans with no
// executed nodes return (1, nil).
func (p *Plan) MaxErrorRatio() (float64, *Node) {
	worst, at := 1.0, (*Node)(nil)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Actual >= 0 {
			est := math.Max(n.Est, 1)
			act := math.Max(float64(n.Actual), 1)
			r := est / act
			if r < 1 {
				r = 1 / r
			}
			if at == nil || r > worst {
				worst, at = r, n
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return worst, at
}

// ErrorSummary renders MaxErrorRatio as the one-line EXPLAIN footer.
func (p *Plan) ErrorSummary() string {
	ratio, at := p.MaxErrorRatio()
	if at == nil {
		return "estimation error: plan not executed"
	}
	desc := at.Op.String()
	if at.Label != "" {
		desc += " " + at.Label
	}
	return fmt.Sprintf("estimation error: max ratio %.2fx (est=%.4g actual=%d at %s)",
		ratio, at.Est, at.Actual, desc)
}
