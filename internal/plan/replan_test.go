package plan

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
)

// replanCosts is a small fixed pricing for re-planner tests.
func replanCosts() Costs {
	return Costs{
		Workers:            4,
		BroadcastThreshold: 10 << 20,
		BytesPerValue:      5,
		SkewSaltFraction:   0.2,
		Model:              cluster.DefaultCostModel(),
	}
}

// randomChainQuery builds a random connected leaf set: leaf i shares
// variable v<i> with leaf i+1, plus occasional extra shared vars so
// bushy shapes and multi-column joins appear.
func randomChainQuery(rng *rand.Rand, n int) ([]Leaf, []string) {
	leaves := make([]Leaf, n)
	for i := range leaves {
		vars := []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1)}
		if i > 1 && rng.Intn(3) == 0 {
			vars = append(vars, fmt.Sprintf("v%d", rng.Intn(i)))
		}
		est := float64(1 + rng.Intn(100_000))
		dist := map[string]float64{}
		for _, v := range vars {
			dist[v] = 1 + float64(rng.Intn(int(est)+1))
		}
		leaves[i] = Leaf{
			Label: fmt.Sprintf("leaf%d", i),
			Vars:  vars,
			Est:   est,
			Dist:  dist,
		}
	}
	return leaves, []string{"v0", fmt.Sprintf("v%d", n)}
}

// markExecuted picks a random ancestors-closed unexecuted fragment:
// leaves always execute, an interior node executes only if all its
// children did (and a coin flip), and the root plus epilogue never
// execute — the shape the scheduler's quiescence produces.
func markExecuted(rng *rand.Rand, p *Plan) (unexec map[int]bool, frontier []*Node) {
	executed := make(map[int]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		all := true
		for _, c := range n.Children {
			walk(c)
			if !executed[c.ID] {
				all = false
			}
		}
		switch n.Op {
		case OpScan:
			executed[n.ID] = true
		case OpJoin:
			executed[n.ID] = all && rng.Intn(2) == 0
		default: // epilogue never executes when a re-plan triggers
			executed[n.ID] = false
		}
	}
	walk(p.Root)

	unexec = make(map[int]bool)
	var collect func(n *Node)
	collect = func(n *Node) {
		if executed[n.ID] {
			frontier = append(frontier, n)
			return
		}
		unexec[n.ID] = true
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(p.Root)
	return unexec, frontier
}

// TestReplanNeverWorseThanStaticRemainder is the rebased-estimator
// property: with exact actuals on every executed node, the re-planned
// remainder must never price worse than the static plan's remainder
// priced under the same rebased statistics — the static baseline is
// always a candidate, so the chosen remainder can only match or beat
// it.
func TestReplanNeverWorseThanStaticRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := replanCosts()
	for trial := 0; trial < 300; trial++ {
		nLeaves := 3 + rng.Intn(5)
		leaves, projection := randomChainQuery(rng, nLeaves)
		p := Build(leaves, nil, projection, rng.Intn(2) == 0, ModeCost, c)
		if p == nil {
			t.Fatal("Build returned nil")
		}
		unexec, frontier := markExecuted(rng, p)
		if len(frontier) == 0 {
			continue
		}
		boundIdx := make(map[int]int, len(frontier))
		bounds := make([]BoundLeaf, 0, len(frontier))
		for _, n := range frontier {
			rows := int64(1 + rng.Intn(200_000)) // "observed" actual, arbitrary
			dist := map[string]float64{}
			hot := map[string]float64{}
			for _, v := range n.Vars {
				dist[v] = 1 + float64(rng.Intn(int(rows)))
				hot[v] = rng.Float64()
			}
			boundIdx[n.ID] = len(bounds)
			bounds = append(bounds, BoundLeaf{
				Label:  "bound-" + n.Label,
				Vars:   n.Vars,
				Rows:   rows,
				Dist:   dist,
				Hot:    hot,
				Source: len(bounds),
			})
		}
		res := Replan(p, Remainder{Unexec: unexec, Bound: boundIdx}, bounds,
			nil, projection, rng.Intn(2) == 0, rng.Intn(2) == 0, c, 50*time.Millisecond)
		if res.NewCrit > res.OldCrit {
			t.Fatalf("trial %d: re-planned remainder (%v) priced worse than static remainder (%v)",
				trial, res.NewCrit, res.OldCrit)
		}
		if !res.Adopted && res.Plan != res.Static {
			t.Fatalf("trial %d: rejected re-plan must execute the static remainder", trial)
		}
		if res.Plan == nil || res.Plan.Root == nil {
			t.Fatalf("trial %d: Replan returned no plan", trial)
		}
		// The chosen remainder must consume every bound leaf exactly once
		// and keep the projection on top.
		seen := map[int]int{}
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.Op == OpBound {
				seen[n.Leaf]++
			}
			for _, ch := range n.Children {
				walk(ch)
			}
		}
		walk(res.Plan.Root)
		for i := range bounds {
			if seen[i] != 1 {
				t.Fatalf("trial %d: bound leaf %d consumed %d times", trial, i, seen[i])
			}
		}
	}
}

// TestReplanAdoptionRequiresCharge pins the hysteresis: a corrected
// remainder is adopted only when its saving exceeds the re-planning
// charge, so a re-plan can never cost more than it wins back.
func TestReplanAdoptionRequiresCharge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := replanCosts()
	adopted, rejected := 0, 0
	for trial := 0; trial < 300; trial++ {
		leaves, projection := randomChainQuery(rng, 3+rng.Intn(4))
		p := Build(leaves, nil, projection, false, ModeCost, c)
		unexec, frontier := markExecuted(rng, p)
		if len(frontier) == 0 {
			continue
		}
		boundIdx := make(map[int]int)
		var bounds []BoundLeaf
		for _, n := range frontier {
			rows := int64(1 + rng.Intn(500_000))
			dist := map[string]float64{}
			for _, v := range n.Vars {
				dist[v] = 1 + float64(rng.Intn(int(rows)))
			}
			boundIdx[n.ID] = len(bounds)
			bounds = append(bounds, BoundLeaf{Label: n.Label, Vars: n.Vars, Rows: rows, Dist: dist, Source: len(bounds)})
		}
		charge := time.Duration(rng.Intn(int(200 * time.Millisecond)))
		res := Replan(p, Remainder{Unexec: unexec, Bound: boundIdx}, bounds,
			nil, projection, false, true, c, charge)
		if res.Adopted {
			adopted++
			if res.NewCrit+charge >= res.OldCrit {
				t.Fatalf("trial %d: adopted a re-plan whose saving (%v -> %v) does not cover the charge %v",
					trial, res.OldCrit, res.NewCrit, charge)
			}
		} else {
			rejected++
			if res.NewCrit != res.OldCrit {
				t.Fatalf("trial %d: rejected re-plan reports NewCrit %v != OldCrit %v", trial, res.NewCrit, res.OldCrit)
			}
		}
	}
	if adopted == 0 || rejected == 0 {
		t.Errorf("hysteresis never exercised both outcomes (adopted=%d rejected=%d)", adopted, rejected)
	}
}
