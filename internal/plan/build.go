package plan

import (
	"math"
	"time"

	"repro/internal/cluster"
)

// Leaf describes one translated Join Tree node as the planner sees it:
// its output schema (in the exact order the scan will produce), its
// statistics-estimated cardinality and per-variable distinct counts,
// and the partitioning its scan output will carry.
type Leaf struct {
	// Label is the Join Tree node's display name.
	Label string
	// Vars is the scan's output schema, in engine column order.
	Vars []string
	// Est is the estimated scan output cardinality before filters.
	Est float64
	// Dist estimates the distinct-value count per output variable.
	Dist map[string]float64
	// PartCols is the partitioning the scan output will be hashed on
	// (nil when arbitrary).
	PartCols []string
	// Anchor grades the leaf's constant constraints (2 = bound literal,
	// 1 = bound IRI object, 0 = none). Constant-anchored patterns are
	// more selective than the independence assumption credits (the
	// observation behind the paper's §3.3 priority boosts), so the
	// cost-based start prefers them within a bounded estimate window.
	Anchor int
	// Pats lists the leaf's triple patterns (predicate plus the
	// variables at each position), so sketch-based join estimation can
	// resolve the predicate pair behind a shared variable. Empty for
	// leaves without bound predicates.
	Pats []PatRef
	// EstSource records what produced Est (EstCSet for characteristic-
	// set-priced stars, EstSketch for pair-sketch-priced groups, EstIndep
	// otherwise; "" defaults to EstIndep).
	EstSource string
	// Reducible marks a single-pattern VP scan the workload rewrite
	// pre-pass may redirect to a materialized semi-join reduction.
	Reducible bool
	// ExtVP, when non-nil, is the reduction this leaf was rewritten to
	// scan (set by the pre-pass, never by the translator).
	ExtVP *ExtVPRef
}

// FilterSpec is one FILTER constraint as the planner sees it.
type FilterSpec struct {
	// Var is the constrained variable.
	Var string
	// Selectivity estimates the fraction of rows the predicate keeps.
	Selectivity float64
	// Label renders the constraint in EXPLAIN output.
	Label string
}

// Costs carries the cluster facts physical selection prices with.
type Costs struct {
	// Workers is the simulated worker count.
	Workers int
	// BroadcastThreshold enables broadcast-join candidates when
	// positive and disables them entirely when <= 0. Unlike the
	// engine's runtime rule it is NOT a hard build-side cap: the
	// pricing replaces the size threshold, so a build side above it
	// still broadcasts when shipping it prices clearly cheaper than
	// shuffling both inputs.
	BroadcastThreshold int64
	// BytesPerValue is the wire footprint of one encoded value.
	BytesPerValue int64
	// SkewSaltFraction is the engine's shuffle-salting trigger: a join
	// key carrying at least this fraction of one side's rows is salted
	// into per-worker sub-keys at execution time. The planner prices
	// shuffle candidates with the same bound, so a skewed input (known
	// exactly for the re-planner's materialized intermediates) is priced
	// as a salted, balanced shuffle rather than a serialized one. Zero
	// or negative means salting is disabled.
	SkewSaltFraction float64
	// RuntimeRules makes shuffle-family pricing model the engine's
	// runtime join rule: a planned shuffle executes as StrategyAuto,
	// which broadcasts outright when the smaller input fits under the
	// broadcast threshold. The re-planner sets it — its input sizes are
	// observed, not estimated, so the runtime rule's behaviour is
	// predictable — which keeps the static baseline priced at what
	// finishing the old plan would actually cost. Static planning
	// leaves it off: pricing a runtime downgrade from unreliable
	// estimates would double-count the very adaptivity it feeds.
	RuntimeRules bool
	// Model prices shuffle and broadcast exchanges.
	Model cluster.CostModel
	// JoinStats provides two-predicate join sketches for correlated-join
	// estimation (nil falls back to the independence assumption
	// everywhere). *stats.Collection implements it.
	JoinStats JoinStatsProvider
	// ExtVP resolves workload-materialized semi-join reductions for the
	// scan rewrite pre-pass (nil disables rewriting).
	ExtVP ExtVPProvider
}

// Build assembles a physical plan from the translated leaves.
//
// In ModeCost and ModeCostLeftDeep the leaves are reordered by greedy
// cost-based enumeration; in ModeHeuristic and ModeNaive the given
// order (the §3.3 priority order, or the query's written order) is
// kept. ModeCost additionally enumerates a bushy shape (greedy
// operator ordering over connected components, so independent subtrees
// — snowflake arms, multi-star branches — become sibling subplans
// joined at the top) and keeps it when its estimated critical path
// (max of parallel branches plus the joining spine, not the sum of all
// stages) beats the left-deep chain's. Filters are pushed into exactly
// one scan exposing their variable. Join methods are priced per join
// in the cost modes and left to the engine's runtime rule otherwise.
func Build(leaves []Leaf, filters []FilterSpec, projection []string, distinct bool, mode Mode, c Costs) *Plan {
	if len(leaves) == 0 {
		return nil
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BytesPerValue <= 0 {
		c.BytesPerValue = 5
	}

	// Workload rewrite pre-pass: redirect eligible scans to materialized
	// semi-join reductions before ordering, so join enumeration prices
	// the reduced cardinalities.
	leaves, rewrites := rewriteLeaves(leaves, c)

	p := &Plan{Mode: mode, Leaves: leaves, Rewrites: rewrites}
	for _, f := range filters {
		p.FilterLabels = append(p.FilterLabels, f.Label)
	}

	// ModeCostLeftDeep is ModeCost's chain construction without the
	// bushy candidate; internal passes treat the two identically.
	effMode := mode
	if mode == ModeCostLeftDeep {
		effMode = ModeCost
	}

	order := make([]int, len(leaves))
	for i := range order {
		order[i] = i
	}
	if effMode == ModeCost {
		order = costOrder(leaves, filters, c)
	}

	// Pass 1: push each filter into the earliest scan (in the final
	// order) exposing its variable, so it runs exactly once, during
	// that scan.
	pushed, residual := pushFilters(leaves, filters, order)

	// Pass 2: build the left-deep operator tree in the chosen order,
	// carrying estimated cardinality, per-variable distinct counts and
	// the predicted partitioning through every join.
	cur := buildChain(leaves, filters, order, pushed, projection, effMode, c)

	// Pass 3 (ModeCost only): enumerate bushy candidates and keep the
	// best one when its priced critical path is strictly shorter than
	// the chain's — a tie keeps the chain, whose runtime behaviour is
	// better understood. Three candidate generators cover different
	// regimes:
	//
	//   - optimal bracketing of the chain order (an O(n³) DP over
	//     contiguous segments): keeps the cost-based join order and
	//     finds the parallel-arm split even when accurate sketch
	//     estimates make every join output small and the fixed
	//     per-exchange launches dominate the real cost;
	//   - GOO merging by smallest estimated join output (ties by priced
	//     time): the classic heuristic, effective when estimates are
	//     coarse and intermediate sizes dominate;
	//   - GOO merging by shortest merged critical path (ties by
	//     estimate): a shape-first variant that can escape the chain
	//     order entirely.
	if mode == ModeCost && len(leaves) > 2 {
		if dpCand := bushySequenceDP(leaves, filters, order, pushed, projection, c); dpCand.crit < cur.crit {
			cur = dpCand // chain-order filters and residual still apply
			p.Bushy = true
		}
		bPushed, bResidual := pushFiltersBushy(leaves, filters)
		for _, byCrit := range []bool{false, true} {
			if bushy := buildBushy(leaves, filters, bPushed, projection, c, byCrit); bushy.crit < cur.crit {
				cur = bushy
				residual = bResidual
				p.Bushy = true
			}
		}
	}
	p.EstCritPath = cur.crit

	p.Root = epilogue(cur, residual, filters, projection, distinct)
	p.assignIDs()
	return p
}

// pushFilters assigns each filter to the earliest leaf in execution
// order that exposes its variable. Filters no leaf exposes are returned
// as residual (defensive: validated queries cannot produce them).
func pushFilters(leaves []Leaf, filters []FilterSpec, order []int) (pushed [][]int, residual []int) {
	pushed = make([][]int, len(leaves))
	for fi, f := range filters {
		assigned := false
		for _, li := range order {
			if containsVar(leaves[li].Vars, f.Var) {
				pushed[li] = append(pushed[li], fi)
				assigned = true
				break
			}
		}
		if !assigned {
			residual = append(residual, fi)
		}
	}
	return pushed, residual
}

// pushFiltersBushy assigns each filter to the smallest exposing leaf —
// a bushy tree has no global execution order, so the most selective
// placement (cheapest scan shrinks further) stands in for "earliest".
func pushFiltersBushy(leaves []Leaf, filters []FilterSpec) (pushed [][]int, residual []int) {
	pushed = make([][]int, len(leaves))
	for fi, f := range filters {
		best := -1
		for li, l := range leaves {
			if !containsVar(l.Vars, f.Var) {
				continue
			}
			if best < 0 || l.Est < leaves[best].Est {
				best = li
			}
		}
		if best < 0 {
			residual = append(residual, fi)
			continue
		}
		pushed[best] = append(pushed[best], fi)
	}
	return pushed, residual
}

// buildChain constructs the left-deep join chain over the given order.
func buildChain(leaves []Leaf, filters []FilterSpec, order []int, pushed [][]int, projection []string, effMode Mode, c Costs) state {
	cur := scanState(leaves[order[0]], order[0], pushed[order[0]], filters, c)
	for pos, li := range order[1:] {
		next := scanState(leaves[li], li, pushed[li], filters, c)
		var retain map[string]bool
		if effMode == ModeCost {
			retain = retainSet(projection, leaves, order[pos+2:])
		}
		cur = joinStates(cur, next, effMode, c, retain)
	}
	return cur
}

// buildBushy is greedy operator ordering (GOO) over connected
// components: every leaf starts as its own component, and the best
// pair of connected components (bestGOOPair — the comparator shared
// with the re-planner, selected by byCrit) merges until one component
// remains. Independent subtrees grow as siblings and meet at the top
// instead of being threaded through one chain, and each component's
// crit field prices the critical path of its subtree.
func buildBushy(leaves []Leaf, filters []FilterSpec, pushed [][]int, projection []string, c Costs, byCrit bool) state {
	comps := make([]state, len(leaves))
	leafSets := make([][]int, len(leaves))
	for i, l := range leaves {
		comps[i] = scanState(l, i, pushed[i], filters, c)
		leafSets[i] = []int{i}
	}

	for len(comps) > 1 {
		bi, bj := bestGOOPair(comps, c, byCrit)

		retain := make(map[string]bool, len(projection))
		for _, v := range projection {
			retain[v] = true
		}
		for k := range comps {
			if k == bi || k == bj {
				continue
			}
			for _, li := range leafSets[k] {
				for _, v := range leaves[li].Vars {
					retain[v] = true
				}
			}
		}

		merged := joinStates(comps[bi], comps[bj], ModeCost, c, retain)
		comps[bi] = merged
		leafSets[bi] = append(leafSets[bi], leafSets[bj]...)
		comps = append(comps[:bj], comps[bj+1:]...)
		leafSets = append(leafSets[:bj], leafSets[bj+1:]...)
	}
	return comps[0]
}

// epilogue appends residual filters, the projection and DISTINCT on top
// of the finished join tree — the execution epilogue shared by every
// plan shape.
func epilogue(cur state, residual []int, filters []FilterSpec, projection []string, distinct bool) *Node {
	root := cur.node
	if len(residual) > 0 {
		sel := 1.0
		for _, fi := range residual {
			sel *= filters[fi].Selectivity
		}
		root = &Node{
			Op:       OpFilter,
			Vars:     cur.vars,
			Est:      cur.est * sel,
			Actual:   -1,
			Children: []*Node{root},
			Filters:  residual,
		}
		cur.est = root.Est
	}

	root = &Node{
		Op:       OpProject,
		Vars:     append([]string(nil), projection...),
		Cols:     append([]string(nil), projection...),
		Est:      cur.est,
		Actual:   -1,
		Children: []*Node{root},
	}
	if distinct {
		est := distinctEstimate(cur, projection)
		root = &Node{
			Op:       OpDistinct,
			Vars:     append([]string(nil), projection...),
			Est:      est,
			Actual:   -1,
			Children: []*Node{root},
		}
	}
	return root
}

// state tracks one subplan during construction: its root node, running
// estimates, predicted layout, and the priced critical path of its
// subtree.
type state struct {
	node     *Node
	vars     []string
	est      float64
	dist     map[string]float64
	partCols []string
	// hot maps a variable to the fraction of rows carried by its single
	// hottest value — the skew signal shuffle pricing reads. It is nil
	// for statistics-estimated leaves (loader statistics keep no key
	// histograms) and exact for the re-planner's bound leaves; join
	// outputs drop it (the output histogram is unknown).
	hot map[string]float64
	// pats accumulates the triple patterns of every leaf under the
	// subplan, so sketch lookups can resolve predicate pairs for any
	// later join variable.
	pats []PatRef
	// crit is the subtree's priced completion time under parallel
	// execution: own priced time plus max over the children's crit.
	crit time.Duration
}

// scanState builds the Scan node for one leaf with its pushed filters
// applied to the estimate.
func scanState(l Leaf, idx int, pushedFilters []int, filters []FilterSpec, c Costs) state {
	est := l.Est
	dist := make(map[string]float64, len(l.Dist))
	for v, d := range l.Dist {
		dist[v] = d
	}
	for _, fi := range pushedFilters {
		f := filters[fi]
		est *= f.Selectivity
		if d, ok := dist[f.Var]; ok {
			dist[f.Var] = math.Max(d*f.Selectivity, 1)
		}
	}
	capDist(dist, est)
	src := l.EstSource
	if src == "" {
		src = EstIndep
	}
	n := &Node{
		Op:        OpScan,
		Label:     l.Label,
		Vars:      append([]string(nil), l.Vars...),
		Est:       est,
		Actual:    -1,
		Leaf:      idx,
		Filters:   pushedFilters,
		EstSource: src,
		ExtVP:     l.ExtVP,
	}
	s := state{
		node:     n,
		vars:     n.Vars,
		est:      est,
		dist:     dist,
		partCols: append([]string(nil), l.PartCols...),
		pats:     l.Pats,
	}
	// Scans pipeline (no stage launch); their priced time is the raw
	// read before filtering plus per-row work, spread over the workers.
	// The pre-filter leaf size prices the read: filters drop rows after
	// they stream off disk.
	s.crit = c.Model.TaskTime(cluster.TaskStats{
		DiskBytes: estBytesFor(l.Est, len(l.Vars), c) / int64(c.Workers),
		Rows:      estRows(l.Est) / int64(c.Workers),
	})
	return s
}

// joinStates attaches right to left, estimating the join output,
// selecting the physical method, and extending the priced critical
// path (max of the two inputs plus this join's own priced time). A
// non-nil retain set enables fused column pruning: output variables
// absent from it (no later operator reads them) are dropped inside the
// join, shrinking every downstream exchange.
func joinStates(left, right state, mode Mode, c Costs, retain map[string]bool) state {
	shared := sharedVars(left.vars, right.vars)
	outVars := joinVars(left.vars, right.vars, shared)

	var est float64
	var ownTime time.Duration
	method := MethodAuto
	var partCols []string
	src := EstIndep
	var joinKeys map[string]float64
	if len(shared) == 0 {
		est = left.est * right.est
		method = MethodCartesian
		ownTime = c.Model.ShuffleJoinTime(
			estBytes(left, c)+estBytes(right, c),
			estRows(left.est)+estRows(right.est)+estRows(est), c.Workers)
	} else {
		est, src, joinKeys = joinEstimate(left, right, shared, c)
		if mode == ModeCost {
			method, partCols, ownTime = selectMethod(left, right, shared, est, c)
		} else {
			// The engine's runtime rule decides; predict its layout as a
			// shuffle output so downstream co-partition detection stays
			// conservative but usable, and price the cheaper alternative.
			partCols = append([]string(nil), shared...)
			ownTime = joinTime(left, right, shared, est, c)
		}
	}

	var keep []string
	if retain != nil {
		pruned := make([]string, 0, len(outVars))
		for _, v := range outVars {
			if retain[v] {
				pruned = append(pruned, v)
			}
		}
		if len(pruned) < len(outVars) {
			keep = pruned
			outVars = pruned
			partCols = survivingPartCols(partCols, outVars)
		}
	}

	dist := mergeDist(left, right, outVars, est)
	capDistKeys(dist, joinKeys)

	n := &Node{
		Op:        OpJoin,
		Label:     varList(shared),
		Vars:      outVars,
		Est:       est,
		Actual:    -1,
		Children:  []*Node{left.node, right.node},
		Method:    method,
		JoinVars:  shared,
		Keep:      keep,
		EstSource: src,
	}
	crit := left.crit
	if right.crit > crit {
		crit = right.crit
	}
	pats := make([]PatRef, 0, len(left.pats)+len(right.pats))
	pats = append(append(pats, left.pats...), right.pats...)
	return state{node: n, vars: outVars, est: est, dist: dist, partCols: partCols, pats: pats, crit: crit + ownTime}
}

// retainSet is the set of variables later operators still need: the
// projection plus every variable of the leaves not yet joined.
func retainSet(projection []string, leaves []Leaf, future []int) map[string]bool {
	retain := make(map[string]bool, len(projection))
	for _, v := range projection {
		retain[v] = true
	}
	for _, li := range future {
		for _, v := range leaves[li].Vars {
			retain[v] = true
		}
	}
	return retain
}

// survivingPartCols keeps the predicted partitioning only when pruning
// retains every partition column.
func survivingPartCols(partCols, vars []string) []string {
	for _, c := range partCols {
		if !containsVar(vars, c) {
			return nil
		}
	}
	return partCols
}

// selectMethod prices the candidate physical joins on estimated input
// sizes and returns the cheapest, plus the output partitioning and the
// priced time it contributes to the critical path.
func selectMethod(left, right state, shared []string, outEst float64, c Costs) (JoinMethod, []string, time.Duration) {
	shufMethod := MethodShuffle
	if colsEqual(left.partCols, shared) && colsEqual(right.partCols, shared) {
		shufMethod = MethodCoPartitioned
	}
	partCols, chosen := methodTime(left, right, shared, outEst, shufMethod, c)
	method := shufMethod

	// A broadcast is considered whenever broadcasting is enabled at
	// all: the pricing itself replaces the global size threshold, so a
	// build side above the threshold still broadcasts when shipping it
	// is cheaper than shuffling both inputs. Forcing a broadcast on a
	// marginal price difference is not worth the estimate risk (the
	// shuffle path keeps the runtime's adaptive selection), so the
	// broadcast must win by a clear margin.
	if c.BroadcastThreshold > 0 {
		if bPart, bt := methodTime(left, right, shared, outEst, MethodBroadcast, c); bt < chosen*9/10 {
			method, partCols, chosen = MethodBroadcast, bPart, bt
		}
	}
	return method, partCols, chosen
}

// methodTime prices one join executed with a specific physical method
// on the candidate inputs, returning the predicted output partitioning
// and the priced time. It is the single pricing implementation behind
// selectMethod, the ordering passes and the re-planner's pinned
// baseline, so none of them can drift from the others.
func methodTime(left, right state, shared []string, outEst float64, method JoinMethod, c Costs) ([]string, time.Duration) {
	lBytes := estBytes(left, c)
	rBytes := estBytes(right, c)
	switch method {
	case MethodCartesian:
		return nil, c.Model.ShuffleJoinTime(
			lBytes+rBytes,
			estRows(left.est)+estRows(right.est)+estRows(outEst), c.Workers)
	case MethodBroadcast:
		buildBytes, probe := rBytes, left
		if lBytes < rBytes {
			buildBytes, probe = lBytes, right
		}
		bRows := estRows(probe.est) + estRows(outEst)
		return append([]string(nil), probe.partCols...),
			c.Model.BroadcastJoinTime(buildBytes, bRows, c.Workers)
	default: // MethodShuffle, MethodCoPartitioned, MethodAuto
		// Under the engine's runtime rule a planned shuffle broadcasts
		// outright when the smaller side fits under the threshold; with
		// observed input sizes that behaviour is certain, so price it.
		if c.RuntimeRules && c.BroadcastThreshold > 0 {
			buildBytes, probe := rBytes, left
			if lBytes < rBytes {
				buildBytes, probe = lBytes, right
			}
			if buildBytes <= c.BroadcastThreshold {
				bRows := estRows(probe.est) + estRows(outEst)
				return append([]string(nil), probe.partCols...),
					c.Model.BroadcastJoinTime(buildBytes, bRows, c.Workers)
			}
		}
		hot := 0.0
		for _, v := range shared {
			if f := left.hot[v]; f > hot {
				hot = f
			}
			if f := right.hot[v]; f > hot {
				hot = f
			}
		}
		rows := estRows(left.est) + estRows(right.est) + estRows(outEst)
		// A salted execution re-places both sides (alignment shortcuts
		// do not apply) and its output layout is not the key hash, so
		// the pricing and the predicted partitioning must say the same.
		if c.SkewSaltFraction > 0 && hot >= c.SkewSaltFraction {
			return nil, c.Model.SkewedShuffleJoinTime(lBytes+rBytes, rows, c.Workers, hot, c.SkewSaltFraction)
		}
		var moved int64
		if !colsEqual(left.partCols, shared) {
			moved += lBytes
		}
		if !colsEqual(right.partCols, shared) {
			moved += rBytes
		}
		return append([]string(nil), shared...),
			c.Model.SkewedShuffleJoinTime(moved, rows, c.Workers, hot, c.SkewSaltFraction)
	}
}

// costOrder produces the cost-based greedy join order: start from the
// smallest filter-adjusted leaf, then repeatedly attach the connected
// leaf whose estimated join output is smallest, breaking ties by the
// priced join time (which prefers joins that avoid shuffles and cheap
// broadcasts). Cardinality propagation follows the same arithmetic as
// the §3.3 heuristic — per-variable distinct counts min-merged from
// the raw leaf statistics, with the independence-assumption
// denominator — so the enumeration differs from the heuristic in its
// start (filter-adjusted size instead of constant boosts) and its
// tie-breaking (priced time), never in the estimate formula.
// Disconnected leaves fall back to the smallest remaining (cartesian
// product either way).
func costOrder(leaves []Leaf, filters []FilterSpec, c Costs) []int {
	states := make([]state, len(leaves))
	for i, l := range leaves {
		var pushed []int
		for fi, f := range filters {
			if containsVar(l.Vars, f.Var) {
				pushed = append(pushed, fi)
			}
		}
		// For ordering purposes every exposing leaf is estimated as
		// filtered; the final single-site assignment happens after the
		// order is fixed.
		states[i] = scanState(l, i, pushed, filters, c)
	}

	remaining := make([]int, len(leaves))
	for i := range remaining {
		remaining[i] = i
	}
	start := startLeaf(leaves, states, remaining)
	order := []int{remaining[start]}
	cur := states[remaining[start]]
	curSize := cur.est
	curDist := make(map[string]float64, len(cur.dist))
	for v, d := range cur.dist {
		curDist[v] = d
	}
	curPats := append([]PatRef(nil), cur.pats...)
	remaining = append(remaining[:start], remaining[start+1:]...)

	for len(remaining) > 0 {
		best := -1
		var bestTime time.Duration
		var bestEst float64
		// The running chain for estimation purposes: the heuristic's
		// min-merged distinct counts and propagated size, plus the
		// accumulated patterns sketch lookups resolve pairs from.
		running := state{vars: cur.vars, est: curSize, dist: curDist, pats: curPats}
		for pos, li := range remaining {
			shared := sharedVars(cur.vars, states[li].vars)
			if len(shared) == 0 {
				continue
			}
			est, _, _ := joinEstimate(running, states[li], shared, c)
			t := joinTime(cur, states[li], shared, est, c)
			if best < 0 || est < bestEst || (est == bestEst && t < bestTime) {
				best, bestTime, bestEst = pos, t, est
			}
		}
		if best < 0 {
			// Disconnected BGP: take the smallest remaining leaf.
			best = 0
			for pos := 1; pos < len(remaining); pos++ {
				if states[remaining[pos]].est < states[remaining[best]].est {
					best = pos
				}
			}
			bestEst = curSize * states[remaining[best]].est
		}
		li := remaining[best]
		order = append(order, li)
		// Advance the running chain: the structural state (schema,
		// partitioning) comes from joinStates; the size and distinct
		// propagation follows the heuristic's arithmetic.
		cur = joinStates(cur, states[li], ModeCost, c, nil)
		if bestEst < 1 {
			bestEst = 1
		}
		curSize = bestEst
		cur.est = bestEst
		for v, d := range states[li].dist {
			if prev, ok := curDist[v]; !ok || d < prev {
				curDist[v] = d
			}
		}
		curPats = append(curPats, states[li].pats...)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return order
}

// startLeaf picks the chain's first leaf: the smallest filter-adjusted
// estimate, except that a constant-anchored leaf (bound literal, then
// bound IRI) within twice the minimum estimate wins — constants are
// more selective than independence-based estimates credit, which is
// exactly why §3.3 boosts them.
func startLeaf(leaves []Leaf, states []state, remaining []int) int {
	minEst := states[remaining[0]].est
	for _, li := range remaining[1:] {
		if states[li].est < minEst {
			minEst = states[li].est
		}
	}
	best := -1
	bestAnchor := -1
	for pos, li := range remaining {
		if states[li].est > 2*minEst && states[li].est > minEst+1 {
			continue
		}
		a := leaves[li].Anchor
		if best < 0 || a > bestAnchor || (a == bestAnchor && states[li].est < states[remaining[best]].est) {
			best, bestAnchor = pos, a
		}
	}
	return best
}

// joinTime prices one candidate join: the time of the physical method
// selectMethod would choose. Ordering decisions and critical-path
// pricing therefore always use the single pricing implementation in
// selectMethod (including its clear-margin broadcast rule), so they
// can never drift from what execution will actually run.
func joinTime(left, right state, shared []string, outEst float64, c Costs) time.Duration {
	_, _, t := selectMethod(left, right, shared, outEst, c)
	return t
}

// distinctEstimate bounds a Distinct's output by the product of the
// projected columns' distinct counts, capped at the input estimate.
func distinctEstimate(in state, projection []string) float64 {
	prod := 1.0
	for _, v := range projection {
		d, ok := in.dist[v]
		if !ok || d < 1 {
			d = 1
		}
		prod *= d
		if prod >= in.est {
			return in.est
		}
	}
	return math.Min(prod, in.est)
}

// estBytes is a state's estimated wire footprint, clamped so that
// astronomically large estimates (cartesian chains) stay finite
// positive numbers instead of overflowing int64.
func estBytes(s state, c Costs) int64 {
	return estBytesFor(s.est, len(s.vars), c)
}

// estBytesFor sizes est rows of the given width in bytes, clamped to a
// finite positive range.
func estBytesFor(est float64, width int, c Costs) int64 {
	if width == 0 {
		width = 1
	}
	b := est * float64(width) * float64(c.BytesPerValue)
	if b < 0 {
		return 0
	}
	if b > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(b)
}

// estRows converts a cardinality estimate to a row count for pricing.
func estRows(est float64) int64 {
	if est < 0 {
		return 0
	}
	if est > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(est)
}

// capDist clamps distinct estimates to the row estimate: no variable
// can have more distinct values than the relation has rows.
func capDist(dist map[string]float64, est float64) {
	for v, d := range dist {
		if d > est {
			dist[v] = est
		}
		if dist[v] < 1 {
			dist[v] = 1
		}
	}
}

// sharedVars returns the variables present in both schemas, in a's
// order — the order the engine's shuffle hashes.
func sharedVars(a, b []string) []string {
	var out []string
	for _, v := range a {
		if containsVar(b, v) {
			out = append(out, v)
		}
	}
	return out
}

// joinVars is a's schema followed by b's non-shared columns — the
// engine's join output schema.
func joinVars(a, b, shared []string) []string {
	out := append([]string(nil), a...)
	for _, v := range b {
		if !containsVar(shared, v) {
			out = append(out, v)
		}
	}
	return out
}

// colsEqual reports whether two column sequences are identical.
func colsEqual(a, b []string) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsVar reports whether vars contains v.
func containsVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// bestGOOPair picks one GOO round's merge pair over the components —
// the single comparator buildBushy and the re-planner's gooStates
// share, so the planner and re-planner can never disagree on bushy
// merge order. With byCrit false the best connected pair has the
// smallest estimated join output (ties by priced time, then input
// order); with byCrit true it has the shortest merged critical path
// (ties by estimate). A fully disconnected component set falls back to
// the two smallest components (cartesian product either way).
func bestGOOPair(comps []state, c Costs, byCrit bool) (bi, bj int) {
	bi, bj = -1, -1
	var bestEst float64
	var bestTime time.Duration
	var bestCrit time.Duration
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			shared := sharedVars(comps[i].vars, comps[j].vars)
			if len(shared) == 0 {
				continue
			}
			est, _, _ := joinEstimate(comps[i], comps[j], shared, c)
			t := joinTime(comps[i], comps[j], shared, est, c)
			crit := comps[i].crit
			if comps[j].crit > crit {
				crit = comps[j].crit
			}
			crit += t
			var better bool
			if byCrit {
				better = bi < 0 || crit < bestCrit || (crit == bestCrit && est < bestEst)
			} else {
				better = bi < 0 || est < bestEst || (est == bestEst && t < bestTime)
			}
			if better {
				bi, bj, bestEst, bestTime, bestCrit = i, j, est, t, crit
			}
		}
	}
	if bi < 0 {
		// Disconnected: cartesian-join the two smallest components.
		bi, bj = 0, 1
		if comps[1].est < comps[0].est {
			bi, bj = 1, 0
		}
		for k := 2; k < len(comps); k++ {
			if comps[k].est < comps[bi].est {
				bi, bj = k, bi
			} else if comps[k].est < comps[bj].est {
				bj = k
			}
		}
		if bi > bj {
			bi, bj = bj, bi
		}
	}
	return bi, bj
}

// bushySequenceDP finds the cheapest-critical-path binary bracketing
// of the chain order: every subtree covers a contiguous segment of the
// ordered leaves, so the cost-based join order survives while
// independent suffix segments (a second star, a snowflake arm) can
// split off into parallel arms instead of extending the spine. dp[i][j]
// holds the best subplan for order[i..j]; the recurrence tries every
// split point, pricing each join with the same estimator and method
// selection as the chain (ties broken toward the smaller estimate).
func bushySequenceDP(leaves []Leaf, filters []FilterSpec, order []int, pushed [][]int, projection []string, c Costs) state {
	n := len(order)
	dp := make([][]state, n)
	for i := range dp {
		dp[i] = make([]state, n)
		dp[i][i] = scanState(leaves[order[i]], order[i], pushed[order[i]], filters, c)
	}
	// retain(i, j): the variables operators outside order[i..j] still
	// need — the projection plus every leaf not in the segment.
	retain := func(i, j int) map[string]bool {
		r := make(map[string]bool, len(projection))
		for _, v := range projection {
			r[v] = true
		}
		for pos, li := range order {
			if pos >= i && pos <= j {
				continue
			}
			for _, v := range leaves[li].Vars {
				r[v] = true
			}
		}
		return r
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span-1 < n; i++ {
			j := i + span - 1
			r := retain(i, j)
			best := state{}
			bestSet := false
			for k := i; k < j; k++ {
				cand := joinStates(dp[i][k], dp[k+1][j], ModeCost, c, r)
				if !bestSet || cand.crit < best.crit || (cand.crit == best.crit && cand.est < best.est) {
					best, bestSet = cand, true
				}
			}
			dp[i][j] = best
		}
	}
	return dp[0][n-1]
}
