package engine

// Checksum digests the relation's payload in the packed-uint64 row
// format — the future exchange wire format — so a consumer can verify
// an exchanged relation against the checksum its producer delivered.
// The digest is FNV-1a over every value with row and partition
// boundary marks folded in, so it is sensitive to value content, row
// grouping and partition placement, and is byte-stable across runs for
// the deterministic operators in this engine.
//
// Executors compute checksums only while a cluster.FaultPlan is
// active; the fault-free hot path never calls this.
func (r *Relation) Checksum() uint64 {
	h := fnvOffset
	for _, part := range r.parts {
		for _, row := range part {
			for _, v := range row {
				h ^= uint64(v)
				h *= fnvPrime
			}
			// Row boundary: [a,b][c] must not collide with [a][b,c].
			h ^= rowBoundaryMark
			h *= fnvPrime
		}
		// Partition boundary: placement is part of the exchange contract.
		h ^= partBoundaryMark
		h *= fnvPrime
	}
	return h
}

// Boundary marks folded into Checksum between rows and partitions.
// Arbitrary odd constants outside the dense dictionary-ID range.
const (
	rowBoundaryMark  uint64 = 0x9E3779B97F4A7C55
	partBoundaryMark uint64 = 0xC2B2AE3D27D4EB4F
)
