package engine

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// stageNet sums the NetBytes of every stage whose name matches.
func stageNet(c *cluster.Clock, name string) int64 {
	var total int64
	for _, st := range c.Stages() {
		if st.Name == name {
			total += st.Stats.NetBytes
		}
	}
	return total
}

func sortedRows(rel *Relation) []Row {
	rows := rel.Rows()
	out := make([]Row, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return lessRows(out[i], out[j]) })
	return out
}

func TestLeftJoinPadsUnmatched(t *testing.T) {
	e := testExec(t)
	left := rel(t, Schema{"a", "b"}, "a", Row{1, 10}, Row{2, 20}, Row{3, 30})
	right := rel(t, Schema{"b", "c"}, "b", Row{10, 100}, Row{10, 101}, Row{30, 300})
	out, err := e.LeftJoin(left, right, "t")
	if err != nil {
		t.Fatalf("LeftJoin: %v", err)
	}
	if !reflect.DeepEqual(out.Schema(), Schema{"a", "b", "c"}) {
		t.Fatalf("schema = %v", out.Schema())
	}
	want := []Row{
		{1, 10, 100},
		{1, 10, 101},
		{2, 20, rdf.NullID}, // unmatched left row survives, null-padded
		{3, 30, 300},
	}
	if got := sortedRows(out); !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestLeftJoinRejectsDisjointSchemas(t *testing.T) {
	e := testExec(t)
	left := rel(t, Schema{"a", "b"}, "a", Row{1, 2})
	right := rel(t, Schema{"x", "y"}, "x", Row{3, 4})
	if _, err := e.LeftJoin(left, right, "t"); err == nil {
		t.Fatal("left join without shared columns did not error")
	}
}

func TestUnionAll(t *testing.T) {
	e := testExec(t)
	a := rel(t, Schema{"a", "b"}, "a", Row{1, 2}, Row{3, 4})
	b := rel(t, Schema{"a", "b"}, "a", Row{5, 6})
	out, err := e.UnionAll(a, b)
	if err != nil {
		t.Fatalf("UnionAll: %v", err)
	}
	if out.Partitions() != a.Partitions()+b.Partitions() {
		t.Errorf("partitions = %d, want %d", out.Partitions(), a.Partitions()+b.Partitions())
	}
	want := []Row{{1, 2}, {3, 4}, {5, 6}}
	if got := sortedRows(out); !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
	if _, err := e.UnionAll(); err == nil {
		t.Error("union of zero relations did not error")
	}
	c := rel(t, Schema{"a", "z"}, "a", Row{7, 8})
	if _, err := e.UnionAll(a, c); err == nil {
		t.Error("union with mismatched schema did not error")
	}
}

func TestTopKOrdersAndSlices(t *testing.T) {
	e := testExec(t)
	var rows []Row
	for i := 20; i >= 1; i-- {
		rows = append(rows, Row{rdf.ID(i), rdf.ID(i * 2)})
	}
	r := rel(t, Schema{"a", "b"}, "a", rows...)
	out, err := e.TopK(r, LessRowsID, 3, 2)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if out.Partitions() != 1 {
		t.Fatalf("top-K output has %d partitions, want 1", out.Partitions())
	}
	want := []Row{{3, 6}, {4, 8}, {5, 10}}
	if got := out.Rows(); !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
	all, err := e.TopK(r, LessRowsID, -1, 0)
	if err != nil {
		t.Fatalf("TopK unlimited: %v", err)
	}
	if got := all.Rows(); len(got) != 20 || !sort.SliceIsSorted(got, func(i, j int) bool { return lessRows(got[i], got[j]) }) {
		t.Errorf("unlimited TopK: %d rows, sorted=%v", len(got), sort.SliceIsSorted(got, func(i, j int) bool { return lessRows(got[i], got[j]) }))
	}
}

// TestTopKPushdownShrinksTransfer checks the top-K exchange pushdown:
// a small limit forwards only offset+limit rows per partition, so the
// stage's NetBytes must be strictly below the unlimited sort's.
func TestTopKPushdownShrinksTransfer(t *testing.T) {
	var rows []Row
	for i := 0; i < 400; i++ {
		rows = append(rows, Row{rdf.ID(i + 1), rdf.ID(i + 1)})
	}
	limited := testExec(t)
	r1 := rel(t, Schema{"a", "b"}, "a", rows...)
	if _, err := limited.TopK(r1, LessRowsID, 5, 0); err != nil {
		t.Fatalf("TopK limited: %v", err)
	}
	unlimited := testExec(t)
	if _, err := unlimited.TopK(r1, LessRowsID, -1, 0); err != nil {
		t.Fatalf("TopK unlimited: %v", err)
	}
	ln, un := stageNet(limited.Clock, "topk"), stageNet(unlimited.Clock, "topk")
	if ln <= 0 || un <= 0 {
		t.Fatalf("topk stages uncharged (limited=%d unlimited=%d)", ln, un)
	}
	if ln >= un {
		t.Errorf("limited top-K transferred %d B, not below unlimited %d B", ln, un)
	}
}

func TestAggregateCounts(t *testing.T) {
	e := testExec(t)
	r := rel(t, Schema{"g", "v"}, "g",
		Row{1, 10}, Row{1, rdf.NullID}, Row{1, 11},
		Row{2, rdf.NullID},
		Row{3, 30}, Row{3, 30})
	out, err := e.Aggregate(r, []string{"g"}, []AggCount{{Var: "", As: "n"}, {Var: "v", As: "c"}})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if !reflect.DeepEqual(out.Schema(), Schema{"g", "n", "c"}) {
		t.Fatalf("schema = %v", out.Schema())
	}
	// COUNT(*) counts every row of the group; COUNT(?v) skips unbound.
	want := []Row{{1, 3, 2}, {2, 1, 0}, {3, 2, 2}}
	if got := out.Rows(); !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
	if out.Partitions() != 1 {
		t.Errorf("aggregate output has %d partitions, want 1", out.Partitions())
	}
	if _, err := e.Aggregate(r, []string{"zzz"}, nil); err == nil {
		t.Error("unknown group column did not error")
	}
	if _, err := e.Aggregate(r, []string{"g"}, []AggCount{{Var: "zzz", As: "n"}}); err == nil {
		t.Error("unknown counted column did not error")
	}
}

// TestLimitTransfersOnlyPrefix pins the driver-side LIMIT pushdown:
// collecting a LIMIT k result charges k rows across the wire, not the
// whole relation.
func TestLimitTransfersOnlyPrefix(t *testing.T) {
	e := testExec(t)
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{rdf.ID(i + 1), rdf.ID(i + 1)})
	}
	r := rel(t, Schema{"a", "b"}, "a", rows...)
	got, err := e.Limit(r, 5, 0)
	if err != nil {
		t.Fatalf("Limit: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("Limit returned %d rows, want 5", len(got))
	}
	if net := stageNet(e.Clock, "collect"); net != 5*2*bytesPerValue {
		t.Errorf("LIMIT 5 charged %d B, want %d B", net, 5*2*bytesPerValue)
	}
}
