package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// zipfRows builds n rows whose key column concentrates hotFrac of the
// rows on one value — the zipfian hot-key shape salting exists for.
func zipfRows(rng *rand.Rand, width, n int, keyCol int, hotFrac float64) []Row {
	rows := make([]Row, n)
	hot := int(float64(n) * hotFrac)
	for i := range rows {
		r := make(Row, width)
		for j := range r {
			r[j] = rdf.ID(1 + rng.Intn(50))
		}
		if i < hot {
			r[keyCol] = rdf.ID(999)
		} else {
			r[keyCol] = rdf.ID(1 + rng.Intn(200))
		}
		rows[i] = r
	}
	return rows
}

// TestSaltedShuffleJoinMatchesReference drives zipf-skewed inputs
// through the shuffle join with salting active and compares against
// the nested-loop reference: salting must never change the result
// multiset, only the placement.
func TestSaltedShuffleJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	for trial := 0; trial < 25; trial++ {
		lSchema, rSchema := Schema{"a", "b"}, Schema{"b", "c"}
		lRows := zipfRows(rng, 2, 100+rng.Intn(200), 1, 0.3+0.4*rng.Float64())
		rRows := zipfRows(rng, 2, 100+rng.Intn(200), 0, 0.3*rng.Float64())

		_, wantRaw := refJoin(lSchema, lRows, rSchema, rRows)
		want := sortRows(wantRaw)

		left, err := Partition(lSchema, lRows, "a", 8)
		if err != nil {
			t.Fatal(err)
		}
		right, err := Partition(rSchema, rRows, "c", 8)
		if err != nil {
			t.Fatal(err)
		}
		e := NewExec(c, cluster.NewClock())
		e.BroadcastThreshold = -1 // pin the shuffle path
		out, err := e.Join(left, right, "salted")
		if err != nil {
			t.Fatal(err)
		}
		got := sortRows(out.Rows())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: salted shuffle join differs from reference (%d vs %d rows)", trial, len(got), len(want))
		}
		if cols := out.PartitionCols(); cols != nil {
			t.Errorf("trial %d: salted join output claims partitioning %v; salted placement is not the key hash", trial, cols)
		}
	}
}

// TestSaltedShuffleSpreadsHotKey checks the point of salting: with one
// key carrying most of one side's rows, the salted join's priced stage
// time (dominated by the slowest worker) must beat the unsalted run,
// which serializes the hot key's probe work on a single worker.
func TestSaltedShuffleSpreadsHotKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := cluster.MustNew(cluster.Config{Workers: 8, DefaultPartitions: 16})
	lSchema, rSchema := Schema{"a", "b"}, Schema{"b", "c"}
	lRows := zipfRows(rng, 2, 4000, 1, 0.9)
	rRows := zipfRows(rng, 2, 4000, 0, 0.9)

	run := func(saltFrac float64) (time.Duration, int64) {
		left, err := Partition(lSchema, lRows, "a", 16)
		if err != nil {
			t.Fatal(err)
		}
		right, err := Partition(rSchema, rRows, "c", 16)
		if err != nil {
			t.Fatal(err)
		}
		clk := cluster.NewClock()
		e := NewExec(c, clk)
		e.BroadcastThreshold = -1
		e.SkewSaltFraction = saltFrac
		out, err := e.Join(left, right, "skewed")
		if err != nil {
			t.Fatal(err)
		}
		var join cluster.StageRecord
		for _, s := range clk.Stages() {
			if s.Name == "join skewed" {
				join = s
			}
		}
		if join.Name == "" {
			t.Fatalf("join stage missing from trace (salt=%v); rows=%d", saltFrac, out.NumRows())
		}
		return join.Makespan, join.Stats.NetBytes
	}

	saltedSpan, saltedNet := run(0)      // 0 = engine default (enabled)
	unsaltedSpan, unsaltedNet := run(-1) // negative disables salting

	if saltedSpan >= unsaltedSpan {
		t.Errorf("salted makespan %v not shorter than unsalted %v", saltedSpan, unsaltedSpan)
	}
	if saltedNet <= unsaltedNet {
		t.Errorf("salted shuffle shipped %d bytes, expected more than unsalted %d (replicated probe rows)", saltedNet, unsaltedNet)
	}
}

// TestSaltingDisabledBelowVolumeFloor keeps tiny relations on the
// plain shuffle path: their histograms cannot mean anything and the
// output partitioning must stay usable downstream.
func TestSaltingDisabledBelowVolumeFloor(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	lRows := []Row{{1, 9}, {2, 9}, {3, 9}}
	rRows := []Row{{9, 4}, {9, 5}}
	left, err := Partition(Schema{"a", "b"}, lRows, "a", 8)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Partition(Schema{"b", "c"}, rRows, "c", 8)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(c, cluster.NewClock())
	e.BroadcastThreshold = -1
	out, err := e.Join(left, right, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 {
		t.Fatalf("join produced %d rows, want 6", out.NumRows())
	}
	if cols := out.PartitionCols(); len(cols) != 1 || cols[0] != "b" {
		t.Errorf("tiny join lost its key partitioning: %v", cols)
	}
}
