package engine

import (
	"testing"

	"repro/internal/rdf"
)

func ckRel(parts [][]Row) *Relation {
	return &Relation{schema: Schema{"a", "b"}, parts: parts}
}

func TestChecksumStableAndSensitive(t *testing.T) {
	base := ckRel([][]Row{{{1, 2}, {3, 4}}, {{5, 6}}})
	if base.Checksum() != ckRel([][]Row{{{1, 2}, {3, 4}}, {{5, 6}}}).Checksum() {
		t.Fatal("identical relations hash differently")
	}
	variants := map[string]*Relation{
		"value changed":   ckRel([][]Row{{{1, 2}, {3, 7}}, {{5, 6}}}),
		"rows regrouped":  ckRel([][]Row{{{1, 2, 3, 4}}, {{5, 6}}}),
		"rows reordered":  ckRel([][]Row{{{3, 4}, {1, 2}}, {{5, 6}}}),
		"row moved":       ckRel([][]Row{{{1, 2}}, {{3, 4}, {5, 6}}}),
		"row dropped":     ckRel([][]Row{{{1, 2}, {3, 4}}, {}}),
		"empty row added": ckRel([][]Row{{{1, 2}, {3, 4}}, {{5, 6}, {}}}),
	}
	for name, v := range variants {
		if v.Checksum() == base.Checksum() {
			t.Errorf("%s: checksum unchanged", name)
		}
	}
}

func TestChecksumEmptyPartitionsDistinct(t *testing.T) {
	a := ckRel([][]Row{{}, {}})
	b := ckRel([][]Row{{}, {}, {}})
	if a.Checksum() == b.Checksum() {
		t.Fatal("partition count not reflected in checksum")
	}
}

func TestChecksumMatchesAfterRebuild(t *testing.T) {
	rows := []Row{}
	for i := 0; i < 500; i++ {
		rows = append(rows, Row{rdf.ID(i), rdf.ID(i * 3)})
	}
	a, err := Partition(Schema{"x", "y"}, rows, "x", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(Schema{"x", "y"}, rows, "x", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("deterministic rebuild produced different checksum")
	}
}
