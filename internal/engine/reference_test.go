package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// refJoin is a naive nested-loop natural join used as the reference
// model for the engine's distributed joins.
func refJoin(lSchema Schema, lRows []Row, rSchema Schema, rRows []Row) (Schema, []Row) {
	shared := lSchema.Shared(rSchema)
	outSchema, _, keep := joinLayout(lSchema, rSchema, shared, nil)
	lKey := keyIndexes(lSchema, shared)
	rKey := keyIndexes(rSchema, shared)
	var out []Row
	for _, lr := range lRows {
		for _, rr := range rRows {
			match := true
			for i := range shared {
				if lr[lKey[i]] != rr[rKey[i]] {
					match = false
					break
				}
			}
			if match {
				out = append(out, concatRow(lr, rr, keep))
			}
		}
	}
	return outSchema, out
}

// sortRows orders rows lexicographically for set comparison.
func sortRows(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessRows(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestJoinMatchesReferenceModel drives randomized relations through
// every physical join strategy (shuffle, forced broadcast, aligned and
// misaligned partitioning) and compares against the nested-loop
// reference.
func TestJoinMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 5})

	schemas := [][2]Schema{
		{Schema{"a", "b"}, Schema{"b", "c"}},                // single shared var (ID-keyed fast path)
		{Schema{"a", "b"}, Schema{"a", "b"}},                // all columns shared (packed two-column key)
		{Schema{"a", "b", "c"}, Schema{"c", "a"}},           // two shared vars
		{Schema{"x", "y"}, Schema{"y", "z", "w"}},           // wider right side
		{Schema{"a", "b", "c", "d"}, Schema{"c", "a", "b"}}, // three shared vars (hashed key + re-check)
	}
	for trial := 0; trial < 40; trial++ {
		pair := schemas[trial%len(schemas)]
		lSchema, rSchema := pair[0], pair[1]
		lRows := randomRows(rng, len(lSchema), 1+rng.Intn(60), 8)
		rRows := randomRows(rng, len(rSchema), 1+rng.Intn(60), 8)

		_, wantRaw := refJoin(lSchema, lRows, rSchema, rRows)
		want := sortRows(wantRaw)

		for _, mode := range []struct {
			name      string
			threshold int64
			lKey      string
			rKey      string
		}{
			{"shuffle-misaligned", -1, "", ""},
			{"shuffle-aligned", -1, lSchema[0], rSchema[0]},
			{"broadcast", 1 << 30, "", ""},
		} {
			l := partitionMaybe(t, lSchema, lRows, mode.lKey, 5)
			r := partitionMaybe(t, rSchema, rRows, mode.rKey, 5)
			e := NewExec(c, cluster.NewClock())
			e.BroadcastThreshold = mode.threshold
			got, err := e.Join(l, r, "ref")
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			gotRows := sortRows(got.Rows())
			if len(gotRows) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotRows, want) {
				t.Fatalf("trial %d %s: engine join disagrees with reference\n got %v\nwant %v",
					trial, mode.name, gotRows, want)
			}
		}
	}
}

// partitionMaybe partitions by key when given, otherwise spreads rows
// round-robin with no partition-key claim.
func partitionMaybe(t *testing.T, schema Schema, rows []Row, key string, n int) *Relation {
	t.Helper()
	if key != "" {
		rel, err := Partition(schema, rows, key, n)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	parts := make([][]Row, n)
	for i, r := range rows {
		parts[i%n] = append(parts[i%n], r)
	}
	return NewRelation(schema, parts, "")
}

func randomRows(rng *rand.Rand, width, n, valueRange int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		r := make(Row, width)
		for j := range r {
			r[j] = rdf.ID(rng.Intn(valueRange) + 1)
		}
		rows[i] = r
	}
	return rows
}

// TestDistinctMatchesReference compares Distinct against a map-based
// reference on random inputs, row-by-row, across the packed (width ≤2)
// and hashed (width ≥3) dedup key paths.
func TestDistinctMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	for trial := 0; trial < 40; trial++ {
		width := 1 + trial%4
		schema := Schema{"a", "b", "c", "d"}[:width]
		rows := randomRows(rng, width, 1+rng.Intn(80), 5)
		rel := partitionMaybe(t, schema, rows, "", 4)
		e := NewExec(c, cluster.NewClock())
		got, err := e.Distinct(rel)
		if err != nil {
			t.Fatal(err)
		}
		var uniq []Row
		seen := map[[4]rdf.ID]bool{}
		for _, r := range rows {
			var k [4]rdf.ID
			copy(k[:], r)
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, r)
			}
		}
		if !reflect.DeepEqual(sortRows(got.Rows()), sortRows(uniq)) {
			t.Fatalf("trial %d width %d: Distinct disagrees with reference\n got %v\nwant %v",
				trial, width, sortRows(got.Rows()), sortRows(uniq))
		}
		// Distinct's output is shuffled on every column; it must record
		// that so a second Distinct dedups in place.
		if !reflect.DeepEqual(got.PartitionCols(), []string(schema)) {
			t.Errorf("trial %d: Distinct partCols = %v, want %v", trial, got.PartitionCols(), schema)
		}
	}
}

// TestHashedKeyCollisions forces every multi-column hashed key to fold
// to the same uint64 and re-runs the join strategies and Distinct
// against their references: the column-wise re-check must absorb
// arbitrary collisions without wrong or dropped rows.
func TestHashedKeyCollisions(t *testing.T) {
	testCollideHashedKeys = true
	defer func() { testCollideHashedKeys = false }()

	rng := rand.New(rand.NewSource(9))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 5})
	lSchema := Schema{"a", "b", "c", "l"}
	rSchema := Schema{"b", "c", "a", "r"}
	for trial := 0; trial < 20; trial++ {
		lRows := randomRows(rng, 4, 1+rng.Intn(40), 4)
		rRows := randomRows(rng, 4, 1+rng.Intn(40), 4)
		_, wantRaw := refJoin(lSchema, lRows, rSchema, rRows)
		want := sortRows(wantRaw)
		for _, threshold := range []int64{-1, 1 << 30} { // shuffle, broadcast
			l := partitionMaybe(t, lSchema, lRows, "", 5)
			r := partitionMaybe(t, rSchema, rRows, "", 5)
			e := NewExec(c, cluster.NewClock())
			e.BroadcastThreshold = threshold
			got, err := e.Join(l, r, "collide")
			if err != nil {
				t.Fatal(err)
			}
			gotRows := sortRows(got.Rows())
			if len(gotRows) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotRows, want) {
				t.Fatalf("trial %d threshold %d: colliding-key join disagrees with reference\n got %v\nwant %v",
					trial, threshold, gotRows, want)
			}
		}

		rows := randomRows(rng, 3, 1+rng.Intn(60), 3)
		rel := partitionMaybe(t, Schema{"a", "b", "c"}, rows, "", 5)
		e := NewExec(c, cluster.NewClock())
		got, err := e.Distinct(rel)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[3]rdf.ID]bool{}
		for _, r := range rows {
			seen[[3]rdf.ID{r[0], r[1], r[2]}] = true
		}
		if got.NumRows() != len(seen) {
			t.Fatalf("trial %d: colliding-key Distinct = %d rows, want %d", trial, got.NumRows(), len(seen))
		}
	}
}

// TestDistinctZeroWidth pins the zero-column edge: empty rows spread
// across partitions must still dedup globally (all of them shuffle to
// one partition — a zero-column layout can never claim alignment).
func TestDistinctZeroWidth(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	parts := make([][]Row, 4)
	parts[0] = []Row{{}}
	parts[2] = []Row{{}, {}}
	rel := NewRelation(Schema{}, parts, "")
	e := NewExec(c, cluster.NewClock())
	got, err := e.Distinct(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Fatalf("zero-width Distinct = %d rows, want 1", got.NumRows())
	}
}

// TestJoinEmptyAndSkewedPartitions exercises the join core's edge
// layouts: one side empty, and all rows crammed into a single
// partition with the rest empty.
func TestJoinEmptyAndSkewedPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	lSchema := Schema{"a", "b"}
	rSchema := Schema{"b", "c"}
	lRows := randomRows(rng, 2, 50, 6)
	rRows := randomRows(rng, 2, 50, 6)

	skew := func(schema Schema, rows []Row) *Relation {
		parts := make([][]Row, 4)
		parts[0] = rows
		return NewRelation(schema, parts, "")
	}
	empty := func(schema Schema) *Relation {
		return NewRelation(schema, make([][]Row, 4), "")
	}

	_, wantRaw := refJoin(lSchema, lRows, rSchema, rRows)
	want := sortRows(wantRaw)
	for _, threshold := range []int64{-1, 1 << 30} {
		e := NewExec(c, cluster.NewClock())
		e.BroadcastThreshold = threshold
		got, err := e.Join(skew(lSchema, lRows), skew(rSchema, rRows), "skew")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortRows(got.Rows()), want) {
			t.Fatalf("threshold %d: skewed-partition join disagrees with reference", threshold)
		}

		e = NewExec(c, cluster.NewClock())
		e.BroadcastThreshold = threshold
		got, err = e.Join(skew(lSchema, lRows), empty(rSchema), "empty")
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != 0 {
			t.Fatalf("threshold %d: join against empty side produced %d rows", threshold, got.NumRows())
		}
	}
}

// TestShuffleJoinRecordsMultiColumnPartitioning verifies the output of
// a multi-column shuffle join carries its join-key partitioning, and
// that a downstream join on the same key sequence skips the shuffle
// for that side (paying only the other side's movement).
func TestShuffleJoinRecordsMultiColumnPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	lSchema := Schema{"a", "b", "l"}
	rSchema := Schema{"a", "b", "r"}
	l := partitionMaybe(t, lSchema, randomRows(rng, 3, 120, 6), "", 4)
	r := partitionMaybe(t, rSchema, randomRows(rng, 3, 120, 6), "", 4)

	e := NewExec(c, cluster.NewClock())
	e.BroadcastThreshold = -1
	first, err := e.Join(l, r, "first")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.PartitionCols(), []string{"a", "b"}) {
		t.Fatalf("multi-column join partCols = %v, want [a b]", first.PartitionCols())
	}

	// Second join on the same two columns: only the fresh side moves.
	other := partitionMaybe(t, Schema{"a", "b", "o"}, randomRows(rng, 3, 40, 6), "", 4)
	clock := cluster.NewClock()
	e2 := NewExec(c, clock)
	e2.BroadcastThreshold = -1
	if _, err := e2.Join(first, other, "second"); err != nil {
		t.Fatal(err)
	}
	stages := clock.Stages()
	last := stages[len(stages)-1]
	wantNet := int64(other.NumRows()) * int64(len(other.Schema())) * bytesPerValue
	if last.Stats.NetBytes != wantNet {
		t.Errorf("second join shuffled %d bytes, want %d (aligned side must not move)",
			last.Stats.NetBytes, wantNet)
	}

	// The reference model agrees with the aligned re-join.
	_, wantRaw := refJoin(first.Schema(), first.Rows(), other.Schema(), other.Rows())
	e3 := NewExec(c, cluster.NewClock())
	e3.BroadcastThreshold = -1
	got, err := e3.Join(first, other, "check")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortRows(got.Rows()), sortRows(wantRaw)) {
		t.Fatal("aligned multi-column re-join disagrees with reference")
	}
}
