package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// refJoin is a naive nested-loop natural join used as the reference
// model for the engine's distributed joins.
func refJoin(lSchema Schema, lRows []Row, rSchema Schema, rRows []Row) (Schema, []Row) {
	shared := lSchema.Shared(rSchema)
	outSchema, keep := joinedSchema(lSchema, rSchema, shared)
	lKey := keyIndexes(lSchema, shared)
	rKey := keyIndexes(rSchema, shared)
	var out []Row
	for _, lr := range lRows {
		for _, rr := range rRows {
			match := true
			for i := range shared {
				if lr[lKey[i]] != rr[rKey[i]] {
					match = false
					break
				}
			}
			if match {
				out = append(out, concatRow(lr, rr, keep))
			}
		}
	}
	return outSchema, out
}

// sortRows orders rows lexicographically for set comparison.
func sortRows(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessRows(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestJoinMatchesReferenceModel drives randomized relations through
// every physical join strategy (shuffle, forced broadcast, aligned and
// misaligned partitioning) and compares against the nested-loop
// reference.
func TestJoinMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 5})

	schemas := [][2]Schema{
		{Schema{"a", "b"}, Schema{"b", "c"}},      // single shared var
		{Schema{"a", "b"}, Schema{"a", "b"}},      // all columns shared
		{Schema{"a", "b", "c"}, Schema{"c", "a"}}, // two shared vars
		{Schema{"x", "y"}, Schema{"y", "z", "w"}}, // wider right side
	}
	for trial := 0; trial < 40; trial++ {
		pair := schemas[trial%len(schemas)]
		lSchema, rSchema := pair[0], pair[1]
		lRows := randomRows(rng, len(lSchema), 1+rng.Intn(60), 8)
		rRows := randomRows(rng, len(rSchema), 1+rng.Intn(60), 8)

		_, wantRaw := refJoin(lSchema, lRows, rSchema, rRows)
		want := sortRows(wantRaw)

		for _, mode := range []struct {
			name      string
			threshold int64
			lKey      string
			rKey      string
		}{
			{"shuffle-misaligned", -1, "", ""},
			{"shuffle-aligned", -1, lSchema[0], rSchema[0]},
			{"broadcast", 1 << 30, "", ""},
		} {
			l := partitionMaybe(t, lSchema, lRows, mode.lKey, 5)
			r := partitionMaybe(t, rSchema, rRows, mode.rKey, 5)
			e := NewExec(c, cluster.NewClock())
			e.BroadcastThreshold = mode.threshold
			got, err := e.Join(l, r, "ref")
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode.name, err)
			}
			gotRows := sortRows(got.Rows())
			if len(gotRows) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotRows, want) {
				t.Fatalf("trial %d %s: engine join disagrees with reference\n got %v\nwant %v",
					trial, mode.name, gotRows, want)
			}
		}
	}
}

// partitionMaybe partitions by key when given, otherwise spreads rows
// round-robin with no partition-key claim.
func partitionMaybe(t *testing.T, schema Schema, rows []Row, key string, n int) *Relation {
	t.Helper()
	if key != "" {
		rel, err := Partition(schema, rows, key, n)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	parts := make([][]Row, n)
	for i, r := range rows {
		parts[i%n] = append(parts[i%n], r)
	}
	return NewRelation(schema, parts, "")
}

func randomRows(rng *rand.Rand, width, n, valueRange int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		r := make(Row, width)
		for j := range r {
			r[j] = rdf.ID(rng.Intn(valueRange) + 1)
		}
		rows[i] = r
	}
	return rows
}

// TestDistinctMatchesReference compares Distinct against a map-based
// reference on random inputs.
func TestDistinctMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	for trial := 0; trial < 20; trial++ {
		rows := randomRows(rng, 2, 1+rng.Intn(80), 5)
		rel := partitionMaybe(t, Schema{"a", "b"}, rows, "", 4)
		e := NewExec(c, cluster.NewClock())
		got, err := e.Distinct(rel)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]rdf.ID]bool{}
		for _, r := range rows {
			seen[[2]rdf.ID{r[0], r[1]}] = true
		}
		if got.NumRows() != len(seen) {
			t.Fatalf("trial %d: Distinct = %d rows, want %d", trial, got.NumRows(), len(seen))
		}
	}
}
