package engine

import (
	"fmt"
	"time"

	"repro/internal/cluster"
)

// JoinStrategy is the physical method an explicit join request uses.
type JoinStrategy uint8

// Join strategies.
const (
	// StrategyAuto selects the method at runtime the way Catalyst does:
	// a side below the broadcast threshold becomes the build side of a
	// broadcast hash join, otherwise the join shuffles.
	StrategyAuto JoinStrategy = iota
	// StrategyBroadcast forces a broadcast hash join; the smaller side
	// (by estimated bytes) becomes the build side.
	StrategyBroadcast
	// StrategyShuffle forces a shuffle hash join, with sides already
	// partitioned on the join key still skipping their movement. Note
	// that the cost planner maps its planned shuffles to StrategyAuto
	// instead, keeping the runtime's broadcast downgrade for tiny
	// actual intermediates; StrategyShuffle pins the physical method
	// outright (ablations, tests).
	StrategyShuffle
)

// Join performs a natural join on the columns shared by the two inputs,
// selecting the physical strategy the way Catalyst does: if either side
// is estimated below the broadcast threshold it becomes the build side
// of a broadcast hash join; otherwise both sides are shuffled on the
// join key (skipping sides already partitioned on it) and hash-joined
// partition-wise. Inputs without shared columns produce a cartesian
// product via broadcast (BGPs are connected, so this only serves
// robustness).
func (e *Exec) Join(left, right *Relation, name string) (*Relation, error) {
	return e.JoinWith(left, right, name, StrategyAuto)
}

// JoinWith is Join with an explicit physical strategy, the entry point
// for cost-based plans that price broadcast vs. shuffle per join on
// estimated input sizes instead of relying on the runtime threshold.
// Inputs without shared columns always produce a cartesian product.
func (e *Exec) JoinWith(left, right *Relation, name string, strategy JoinStrategy) (*Relation, error) {
	return e.JoinKeep(left, right, name, strategy, nil)
}

// JoinKeep is JoinWith with fused column pruning: when keep is
// non-nil, only the named output columns are emitted, inside the same
// join stage — no extra projection pass and no materialized wide
// intermediate. Planners use it to drop variables no later operator
// reads, shrinking every downstream shuffle and broadcast.
func (e *Exec) JoinKeep(left, right *Relation, name string, strategy JoinStrategy, keep []string) (*Relation, error) {
	shared := left.schema.Shared(right.schema)
	if len(shared) == 0 {
		return e.cartesian(left, right, name, keep)
	}
	switch strategy {
	case StrategyBroadcast:
		probe, build := left, right
		buildIsLeft := false
		if left.EstimatedBytes() < right.EstimatedBytes() {
			probe, build = right, left
			buildIsLeft = true
		}
		// Skew guard: a broadcast join runs in the probe's existing
		// layout, so a heavily skewed probe concentrates the whole join
		// on one worker. When the planner's forced broadcast meets such
		// a layout at runtime and the serialized row work would cost
		// more than rebalancing, shuffle instead (the adaptive
		// protection Spark's AQE applies to skewed joins).
		if e.skewDowngrade(probe) {
			return e.shuffleJoin(left, right, shared, name, keep)
		}
		return e.broadcastJoin(probe, build, shared, name, buildIsLeft, keep)
	case StrategyShuffle:
		return e.shuffleJoin(left, right, shared, name, keep)
	}
	bt := e.broadcastThreshold()
	if bt > 0 {
		lb, rb := left.EstimatedBytes(), right.EstimatedBytes()
		if rb <= bt && rb <= lb {
			return e.broadcastJoin(left, right, shared, name, false, keep)
		}
		if lb <= bt {
			return e.broadcastJoin(right, left, shared, name, true, keep)
		}
	}
	return e.shuffleJoin(left, right, shared, name, keep)
}

// joinLayout computes a join's output schema and emission index lists.
// With keep == nil the output is left ++ right-non-join and lKeep is
// nil, marking the bulk-copy fast path (AppendJoin); otherwise only
// columns named in keep survive, in the same relative order, and rows
// are emitted through AppendJoinPruned.
func joinLayout(left, right Schema, shared, keep []string) (out Schema, lKeep, rKeep []int) {
	isJoinCol := map[string]bool{}
	for _, c := range shared {
		isJoinCol[c] = true
	}
	if keep == nil {
		out = left.Clone()
		for i, c := range right {
			if !isJoinCol[c] {
				out = append(out, c)
				rKeep = append(rKeep, i)
			}
		}
		return out, nil, rKeep
	}
	retain := map[string]bool{}
	for _, c := range keep {
		retain[c] = true
	}
	lKeep = make([]int, 0, len(left))
	for i, c := range left {
		if retain[c] {
			out = append(out, c)
			lKeep = append(lKeep, i)
		}
	}
	for i, c := range right {
		if !isJoinCol[c] && retain[c] {
			out = append(out, c)
			rKeep = append(rKeep, i)
		}
	}
	return out, lKeep, rKeep
}

// survivingCols returns cols when the schema retains every one of
// them (the partitioning survives), nil otherwise.
func survivingCols(cols []string, schema Schema) []string {
	for _, c := range cols {
		if !schema.Contains(c) {
			return nil
		}
	}
	return cloneCols(cols)
}

// keyIndexes maps the shared columns into each schema.
func keyIndexes(s Schema, shared []string) []int {
	idx := make([]int, len(shared))
	for i, c := range shared {
		idx[i] = s.Index(c)
	}
	return idx
}

// shuffleRows hash-repartitions rel's rows by the key columns into n
// partitions. It returns the new partitions and, per target partition,
// the network bytes that landed there. Rows staying on the same
// partition index are treated as local only when the relation was
// already partitioned correctly — the caller decides by not calling
// shuffleRows at all in that case.
func shuffleRows(rel *Relation, keyIdx []int, n int) ([][]Row, []int64) {
	parts := make([][]Row, n)
	moved := make([]int64, n)
	rowB := int64(len(rel.schema)) * bytesPerValue
	for pi := 0; pi < rel.Partitions(); pi++ {
		for _, r := range rel.Part(pi) {
			p := cluster.HashPartition(hashRowKey(r, keyIdx), n)
			parts[p] = append(parts[p], r)
			moved[p] += rowB
		}
	}
	return parts, moved
}

// alignedOnCols reports whether rel is already hash-partitioned so that
// a join shuffling on cols (in that exact order) needs no shuffle: the
// relation's recorded partition columns must equal cols as a sequence
// and the partition count must match — shuffleRows, Partition and join
// outputs all place rows with the engine's canonical row-key hash over
// the partition columns in recorded order, so an aligned side's
// placement is already correct.
func alignedOnCols(rel *Relation, cols []string, n int) bool {
	// A zero-column key never aligns: placement of width-0 rows is
	// arbitrary, and hashing no columns sends them all to one
	// partition, so skipping that shuffle would dedup per-partition.
	if len(cols) == 0 || len(rel.partCols) != len(cols) || rel.Partitions() != n {
		return false
	}
	for i, c := range cols {
		if rel.partCols[i] != c {
			return false
		}
	}
	return true
}

// shuffleJoin repartitions both sides on the join key and performs a
// partition-wise hash join. The output records the full (possibly
// multi-column) join key as its partitioning (when pruning keeps it),
// so downstream joins on the same key sequence skip their shuffle.
func (e *Exec) shuffleJoin(left, right *Relation, shared []string, name string, keep []string) (*Relation, error) {
	n := e.Cluster.DefaultPartitions()
	lKey := keyIndexes(left.schema, shared)
	rKey := keyIndexes(right.schema, shared)

	// Skew guard for the shuffle path: a hot key above the salt
	// fraction is split into per-worker sub-keys (the other side's
	// matching rows replicated), so it can no longer serialize one
	// worker. Salting re-places both sides, so the alignment shortcut
	// does not apply and the output's layout is not the key hash.
	salted := e.saltPlan(left, right, lKey, rKey)

	// A side already partitioned on the join columns keeps its layout
	// and pays zero shuffle bytes.
	var lParts, rParts [][]Row
	lMoved := make([]int64, n)
	rMoved := make([]int64, n)
	switch {
	case salted != nil:
		lParts, lMoved = saltedShuffleRows(left, lKey, n, salted, true)
		rParts, rMoved = saltedShuffleRows(right, rKey, n, salted, false)
	default:
		if alignedOnCols(left, shared, n) {
			lParts = left.parts
		} else {
			lParts, lMoved = shuffleRows(left, lKey, n)
		}
		if alignedOnCols(right, shared, n) {
			rParts = right.parts
		} else {
			rParts, rMoved = shuffleRows(right, rKey, n)
		}
	}

	outSchema, lKeep, rKeep := joinLayout(left.schema, right.schema, shared, keep)
	out := make([][]Row, n)
	// The kernel runs locally, or on remote shards when an Exchanger is
	// installed — identical fragments in, identical rows out, and the
	// stage stats below are computed from fragment lengths and output
	// counts either way, so pricing never depends on where it ran.
	run := func(p int) []Row {
		return JoinPartitionKernel(lParts[p], rParts[p], lKey, rKey, len(outSchema), lKeep, rKeep)
	}
	if e.Dist != nil {
		var lSum, rSum int64
		for p := 0; p < n; p++ {
			lSum += lMoved[p]
			rSum += rMoved[p]
		}
		res, err := e.Dist.ShuffleJoin(ShuffleSpec{
			Name: name, LKey: lKey, RKey: rKey,
			OutWidth: len(outSchema), LKeep: lKeep, RKeep: rKeep,
			PricedBytes: lSum + rSum, LMovedBytes: lSum, RMovedBytes: rSum,
		}, lParts, rParts)
		if err != nil {
			return nil, err
		}
		run = func(p int) []Row { return res[p] }
	}
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "join "+name, n, func(p int) (cluster.TaskStats, error) {
		out[p] = run(p)
		return cluster.TaskStats{
			Rows:     int64(len(lParts[p]) + len(rParts[p]) + len(out[p])),
			NetBytes: lMoved[p] + rMoved[p],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	outPartCols := survivingCols(shared, outSchema)
	if salted != nil {
		outPartCols = nil
	}
	return &Relation{schema: outSchema, parts: out, partCols: outPartCols}, nil
}

// broadcastJoin ships the (small) build relation to every worker and
// probes the large side in place, preserving its partitioning.
// buildIsLeft records that build is semantically the LEFT input, so
// output columns keep left-to-right order.
func (e *Exec) broadcastJoin(probe, build *Relation, shared []string, name string, buildIsLeft bool, pruneTo []string) (*Relation, error) {
	probeKey := keyIndexes(probe.schema, shared)
	buildKey := keyIndexes(build.schema, shared)

	buildBytes := build.EstimatedBytes()

	var outSchema Schema
	var lKeep, rKeep []int
	if buildIsLeft {
		outSchema, lKeep, rKeep = joinLayout(build.schema, probe.schema, shared, pruneTo)
	} else {
		outSchema, lKeep, rKeep = joinLayout(probe.schema, build.schema, shared, pruneTo)
	}

	workers := e.Cluster.Workers()
	var run func(p int) []Row
	if e.Dist != nil {
		w := workers
		if probe.Partitions() < w {
			w = probe.Partitions()
		}
		res, err := e.Dist.BroadcastJoin(BroadcastSpec{
			Name: name, BuildKey: buildKey, ProbeKey: probeKey,
			BuildIsLeft: buildIsLeft, OutWidth: len(outSchema),
			LKeep: lKeep, RKeep: rKeep,
			PricedBytes: buildBytes * int64(w),
		}, build.Rows(), probe.parts)
		if err != nil {
			return nil, err
		}
		run = func(p int) []Row { return res[p] }
	} else {
		// Hash index over the build side, shared read-only by all tasks.
		jp := NewJoinProbe(build.Rows(), buildKey)
		run = func(p int) []Row {
			return jp.Probe(probe.Part(p), probeKey, buildIsLeft, len(outSchema), lKeep, rKeep)
		}
	}
	out := make([][]Row, probe.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.launchBroadcast(), "broadcast join "+name, probe.Partitions(), func(p int) (cluster.TaskStats, error) {
		out[p] = run(p)
		st := cluster.TaskStats{Rows: int64(len(probe.Part(p)) + len(out[p]))}
		// Each worker receives one copy of the build side; tasks are
		// placed round-robin, so the first task on each worker pays it.
		if p < workers {
			st.NetBytes = buildBytes
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: outSchema, parts: out, partCols: survivingCols(probe.partCols, outSchema)}, nil
}

// cartesian computes a cross product by broadcasting the smaller side.
func (e *Exec) cartesian(left, right *Relation, name string, keep []string) (*Relation, error) {
	small, large := left, right
	smallIsLeft := true
	if right.EstimatedBytes() < left.EstimatedBytes() {
		small, large = right, left
		smallIsLeft = false
	}
	smallRows := small.Rows()
	outSchema, lKeep, rKeep := joinLayout(left.schema, right.schema, nil, keep)
	workers := e.Cluster.Workers()
	smallBytes := small.EstimatedBytes()
	run := func(p int) []Row {
		// The output cardinality is exact, so the arena never regrows.
		return CartesianKernel(large.Part(p), smallRows, smallIsLeft, len(outSchema), lKeep, rKeep)
	}
	if e.Dist != nil {
		w := workers
		if large.Partitions() < w {
			w = large.Partitions()
		}
		res, err := e.Dist.Cartesian(CartesianSpec{
			Name: name, SmallIsLeft: smallIsLeft, OutWidth: len(outSchema),
			LKeep: lKeep, RKeep: rKeep,
			PricedBytes: smallBytes * int64(w),
		}, smallRows, large.parts)
		if err != nil {
			return nil, err
		}
		run = func(p int) []Row { return res[p] }
	}
	out := make([][]Row, large.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.launchBroadcast(), "cartesian "+name, large.Partitions(), func(p int) (cluster.TaskStats, error) {
		out[p] = run(p)
		st := cluster.TaskStats{Rows: int64(len(out[p]))}
		if p < workers {
			st.NetBytes = smallBytes
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	if keep == nil && len(outSchema) != len(left.schema)+len(right.schema) {
		return nil, fmt.Errorf("engine: cartesian schema construction bug")
	}
	return &Relation{schema: outSchema, parts: out}, nil
}

// skewDowngrade reports whether probing the relation in its existing
// layout would serialize on one worker badly enough that repartitioning
// pays for itself: the probe must be concentrated (largest partition ≥
// 3× the mean on a non-trivial row count) and the serialized row time
// must exceed the extra launch and movement a rebalancing shuffle
// costs.
func (e *Exec) skewDowngrade(probe *Relation) bool {
	n := probe.Partitions()
	total := probe.NumRows()
	if n == 0 || total < 4*n {
		return false
	}
	maxPart := 0
	for i := 0; i < n; i++ {
		if l := len(probe.Part(i)); l > maxPart {
			maxPart = l
		}
	}
	if maxPart*n < 3*total {
		return false
	}
	cost := e.Cluster.Config().Cost
	workers := e.Cluster.Workers()
	if workers < 1 {
		workers = 1
	}
	penalty := time.Duration(maxPart-total/workers) * cost.RowTime
	extra := e.BoundaryLaunch - e.BoundaryLaunch/3
	if cost.NetworkBytesPerSec > 0 {
		extra += time.Duration(float64(probe.EstimatedBytes()) / float64(workers) / cost.NetworkBytesPerSec * float64(time.Second))
	}
	return penalty > extra
}

// cloneCols copies a partition-column list, sharing nothing with the
// caller's slice.
func cloneCols(cols []string) []string {
	if len(cols) == 0 {
		return nil
	}
	out := make([]string, len(cols))
	copy(out, cols)
	return out
}

// concatRow builds left ++ right[keep]. The join operators emit through
// RowArena instead; this remains as the one-row reference used by the
// naive model in tests.
func concatRow(left, right Row, keep []int) Row {
	nr := make(Row, 0, len(left)+len(keep))
	nr = append(nr, left...)
	for _, i := range keep {
		nr = append(nr, right[i])
	}
	return nr
}
