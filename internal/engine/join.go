package engine

import (
	"fmt"

	"repro/internal/cluster"
)

// Join performs a natural join on the columns shared by the two inputs,
// selecting the physical strategy the way Catalyst does: if either side
// is estimated below the broadcast threshold it becomes the build side
// of a broadcast hash join; otherwise both sides are shuffled on the
// join key (skipping sides already partitioned on it) and hash-joined
// partition-wise. Inputs without shared columns produce a cartesian
// product via broadcast (BGPs are connected, so this only serves
// robustness).
func (e *Exec) Join(left, right *Relation, name string) (*Relation, error) {
	shared := left.schema.Shared(right.schema)
	if len(shared) == 0 {
		return e.cartesian(left, right, name)
	}
	bt := e.broadcastThreshold()
	if bt > 0 {
		lb, rb := left.EstimatedBytes(), right.EstimatedBytes()
		if rb <= bt && rb <= lb {
			return e.broadcastJoin(left, right, shared, name, false)
		}
		if lb <= bt {
			return e.broadcastJoin(right, left, shared, name, true)
		}
	}
	return e.shuffleJoin(left, right, shared, name)
}

// joinedSchema is left's schema followed by right's non-join columns.
func joinedSchema(left, right Schema, shared []string) (Schema, []int) {
	isJoinCol := map[string]bool{}
	for _, c := range shared {
		isJoinCol[c] = true
	}
	out := left.Clone()
	var rightKeep []int
	for i, c := range right {
		if !isJoinCol[c] {
			out = append(out, c)
			rightKeep = append(rightKeep, i)
		}
	}
	return out, rightKeep
}

// keyIndexes maps the shared columns into each schema.
func keyIndexes(s Schema, shared []string) []int {
	idx := make([]int, len(shared))
	for i, c := range shared {
		idx[i] = s.Index(c)
	}
	return idx
}

// shuffleRows hash-repartitions rel's rows by the key columns into n
// partitions. It returns the new partitions and, per target partition,
// the network bytes that landed there. Rows staying on the same
// partition index are treated as local only when the relation was
// already partitioned correctly — the caller decides by not calling
// shuffleRows at all in that case.
func shuffleRows(rel *Relation, keyIdx []int, n int) ([][]Row, []int64) {
	parts := make([][]Row, n)
	moved := make([]int64, n)
	rowB := int64(len(rel.schema)) * bytesPerValue
	for pi := 0; pi < rel.Partitions(); pi++ {
		for _, r := range rel.Part(pi) {
			p := cluster.HashPartition(hashRowKey(r, keyIdx), n)
			parts[p] = append(parts[p], r)
			moved[p] += rowB
		}
	}
	return parts, moved
}

// alignedOnKey reports whether rel is already hash-partitioned so that a
// join on shared needs no shuffle: single-column join key equal to the
// relation's partition key, and the row-key hash placement must coincide
// with the stored placement for the requested partition count.
func alignedOnKey(rel *Relation, shared []string, n int) bool {
	if len(shared) != 1 || rel.partKey != shared[0] || rel.Partitions() != n {
		return false
	}
	return true
}

// shuffleJoin repartitions both sides on the join key and performs a
// partition-wise hash join.
func (e *Exec) shuffleJoin(left, right *Relation, shared []string, name string) (*Relation, error) {
	n := e.Cluster.DefaultPartitions()
	lKey := keyIndexes(left.schema, shared)
	rKey := keyIndexes(right.schema, shared)

	// A side already partitioned on the single join column keeps its
	// layout and pays zero shuffle bytes: Partition(), shuffleRows and
	// join outputs all place rows with the engine's canonical row-key
	// hash, so an aligned side's placement is already correct.
	var lParts, rParts [][]Row
	lMoved := make([]int64, n)
	rMoved := make([]int64, n)
	if alignedOnKey(left, shared, n) {
		lParts = left.parts
	} else {
		lParts, lMoved = shuffleRows(left, lKey, n)
	}
	if alignedOnKey(right, shared, n) {
		rParts = right.parts
	} else {
		rParts, rMoved = shuffleRows(right, rKey, n)
	}

	outSchema, rightKeep := joinedSchema(left.schema, right.schema, shared)
	out := make([][]Row, n)
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "join "+name, n, func(p int) (cluster.TaskStats, error) {
		build, probe := lParts[p], rParts[p]
		buildKey, probeKey := lKey, rKey
		buildIsLeft := true
		if len(probe) < len(build) {
			build, probe = probe, build
			buildKey, probeKey = probeKey, buildKey
			buildIsLeft = false
		}
		ht := make(map[string][]Row, len(build))
		for _, r := range build {
			k := keyString(r, buildKey)
			ht[k] = append(ht[k], r)
		}
		var rows []Row
		for _, pr := range probe {
			matches := ht[keyString(pr, probeKey)]
			for _, br := range matches {
				lr, rr := br, pr
				if !buildIsLeft {
					lr, rr = pr, br
				}
				rows = append(rows, concatRow(lr, rr, rightKeep))
			}
		}
		out[p] = rows
		return cluster.TaskStats{
			Rows:     int64(len(build) + len(probe) + len(rows)),
			NetBytes: lMoved[p] + rMoved[p],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	partKey := ""
	if len(shared) == 1 {
		partKey = shared[0]
	}
	return &Relation{schema: outSchema, parts: out, partKey: partKey}, nil
}

// broadcastJoin ships the (small) build relation to every worker and
// probes the large side in place, preserving its partitioning.
// buildIsLeft records that build is semantically the LEFT input, so
// output columns keep left-to-right order.
func (e *Exec) broadcastJoin(probe, build *Relation, shared []string, name string, buildIsLeft bool) (*Relation, error) {
	probeKey := keyIndexes(probe.schema, shared)
	buildKey := keyIndexes(build.schema, shared)

	// Hash table over the build side, shared read-only by all tasks.
	ht := make(map[string][]Row, build.NumRows())
	for pi := 0; pi < build.Partitions(); pi++ {
		for _, r := range build.Part(pi) {
			k := keyString(r, buildKey)
			ht[k] = append(ht[k], r)
		}
	}
	buildBytes := build.EstimatedBytes()

	var outSchema Schema
	var keep []int
	if buildIsLeft {
		outSchema, keep = joinedSchema(build.schema, probe.schema, shared)
	} else {
		outSchema, keep = joinedSchema(probe.schema, build.schema, shared)
	}

	workers := e.Cluster.Workers()
	out := make([][]Row, probe.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.launchBroadcast(), "broadcast join "+name, probe.Partitions(), func(p int) (cluster.TaskStats, error) {
		var rows []Row
		for _, pr := range probe.Part(p) {
			for _, br := range ht[keyString(pr, probeKey)] {
				if buildIsLeft {
					rows = append(rows, concatRow(br, pr, keep))
				} else {
					rows = append(rows, concatRow(pr, br, keep))
				}
			}
		}
		out[p] = rows
		st := cluster.TaskStats{Rows: int64(len(probe.Part(p)) + len(rows))}
		// Each worker receives one copy of the build side; tasks are
		// placed round-robin, so the first task on each worker pays it.
		if p < workers {
			st.NetBytes = buildBytes
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: outSchema, parts: out, partKey: probe.partKey}, nil
}

// cartesian computes a cross product by broadcasting the smaller side.
func (e *Exec) cartesian(left, right *Relation, name string) (*Relation, error) {
	small, large := left, right
	smallIsLeft := true
	if right.EstimatedBytes() < left.EstimatedBytes() {
		small, large = right, left
		smallIsLeft = false
	}
	smallRows := small.Rows()
	outSchema := append(left.schema.Clone(), right.schema...)
	workers := e.Cluster.Workers()
	smallBytes := small.EstimatedBytes()
	out := make([][]Row, large.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.launchBroadcast(), "cartesian "+name, large.Partitions(), func(p int) (cluster.TaskStats, error) {
		var rows []Row
		for _, lr := range large.Part(p) {
			for _, sr := range smallRows {
				var a, b Row
				if smallIsLeft {
					a, b = sr, lr
				} else {
					a, b = lr, sr
				}
				nr := make(Row, 0, len(a)+len(b))
				nr = append(nr, a...)
				nr = append(nr, b...)
				rows = append(rows, nr)
			}
		}
		out[p] = rows
		st := cluster.TaskStats{Rows: int64(len(rows))}
		if p < workers {
			st.NetBytes = smallBytes
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	if len(outSchema) != len(left.schema)+len(right.schema) {
		return nil, fmt.Errorf("engine: cartesian schema construction bug")
	}
	return &Relation{schema: outSchema, parts: out}, nil
}

// keyString packs key column values into a map key.
func keyString(r Row, keyIdx []int) string {
	b := make([]byte, 0, len(keyIdx)*4)
	for _, i := range keyIdx {
		v := r[i]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// concatRow builds left ++ right[keep].
func concatRow(left, right Row, keep []int) Row {
	nr := make(Row, 0, len(left)+len(keep))
	nr = append(nr, left...)
	for _, i := range keep {
		nr = append(nr, right[i])
	}
	return nr
}
