// Package engine is a relational dataframe engine over the simulated
// cluster — the stand-in for Spark SQL. Relations are hash-partitioned
// collections of dictionary-encoded rows; operators (scan, filter,
// project, shuffle hash join, broadcast join, distinct, sort, limit)
// perform real computation on real partitions while charging shuffle,
// scan and per-row costs to the query's virtual clock.
//
// The engine reproduces the two Catalyst behaviours PRoST's plans rely
// on (paper §3.3): physical join selection (a build side smaller than
// the broadcast threshold becomes a broadcast hash join instead of a
// shuffle join) and shuffle avoidance for co-partitioned inputs (a
// relation already hash-partitioned on the join key — single- or
// multi-column — is not moved).
//
// The join/shuffle/distinct hot path is allocation-light by design:
// rows are dictionary-encoded, so join keys of one or two columns pack
// losslessly into the hash-table key (no materialization at all) and
// wider keys fold to a uint64 hash with a column-wise re-check on
// collision (key.go); hash joins probe a chained index that allocates
// only its head map and chain (joinIndex); and operators emit output
// rows into one flat per-partition backing buffer (RowArena) instead
// of allocating each row separately. Partition tasks run with real
// goroutine parallelism under cluster.RunStage; all per-partition
// state (arena, index, output slot) is task-local, and broadcast-join
// indexes are built once and probed read-only.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// Row is one tuple of dictionary-encoded values.
type Row []rdf.ID

// Schema is an ordered list of column names (SPARQL variable names).
type Schema []string

// Index returns the position of col, or -1.
func (s Schema) Index(col string) int {
	for i, c := range s {
		if c == col {
			return i
		}
	}
	return -1
}

// Contains reports whether the schema has the column.
func (s Schema) Contains(col string) bool { return s.Index(col) >= 0 }

// Shared returns the columns present in both schemas, in s's order.
func (s Schema) Shared(o Schema) []string {
	var out []string
	for _, c := range s {
		if o.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// BytesPerValue is the average wire/disk footprint of one encoded
// value, used for shuffle and broadcast size estimates. The planner
// prices candidate joins with the same constant so its estimates and
// the engine's runtime selection agree on byte sizes.
const BytesPerValue = 5

// bytesPerValue is the package-internal alias.
const bytesPerValue = BytesPerValue

// Relation is an immutable, partitioned table of rows. Operators never
// mutate their inputs; they build new relations.
type Relation struct {
	schema Schema
	parts  [][]Row
	// partCols are the columns the partitions are hash-distributed by,
	// in the exact order the shuffle hashed them (nil when the layout
	// is arbitrary). Joins shuffling on the same column sequence skip
	// the shuffle for this side.
	partCols []string
}

// NewRelation builds a relation directly from pre-partitioned rows. The
// caller asserts that rows are hash-partitioned by partKey (or passes ""
// if the layout is arbitrary).
func NewRelation(schema Schema, parts [][]Row, partKey string) *Relation {
	r := &Relation{schema: schema.Clone(), parts: parts}
	if partKey != "" {
		r.partCols = []string{partKey}
	}
	return r
}

// Partition hash-distributes rows by the key column into n partitions.
// It performs no cost charging: loaders charge their own load stages.
// Placement uses the engine's canonical row-key hash, so every relation
// carrying a partition key is laid out identically and joins on that key
// can skip the shuffle outright.
func Partition(schema Schema, rows []Row, key string, n int) (*Relation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: partition count %d must be positive", n)
	}
	ki := schema.Index(key)
	if ki < 0 {
		return nil, fmt.Errorf("engine: partition key %q not in schema %v", key, schema)
	}
	keyIdx := []int{ki}
	parts := make([][]Row, n)
	for _, r := range rows {
		p := cluster.HashPartition(hashRowKey(r, keyIdx), n)
		parts[p] = append(parts[p], r)
	}
	return &Relation{schema: schema.Clone(), parts: parts, partCols: []string{key}}, nil
}

// Schema returns the relation's column names.
func (r *Relation) Schema() Schema { return r.schema }

// Partitions returns the partition count.
func (r *Relation) Partitions() int { return len(r.parts) }

// PartitionKey returns the single column the relation is
// hash-partitioned by, or "" when the layout is arbitrary or keyed on
// multiple columns (see PartitionCols).
func (r *Relation) PartitionKey() string {
	if len(r.partCols) == 1 {
		return r.partCols[0]
	}
	return ""
}

// PartitionCols returns the columns the relation is hash-partitioned
// by, in shuffle-hash order, or nil. The returned slice is a copy.
func (r *Relation) PartitionCols() []string { return cloneCols(r.partCols) }

// Part returns one partition's rows. Callers must not mutate them.
func (r *Relation) Part(i int) []Row { return r.parts[i] }

// NumRows returns the total row count across partitions.
func (r *Relation) NumRows() int {
	n := 0
	for _, p := range r.parts {
		n += len(p)
	}
	return n
}

// EstimatedBytes approximates the relation's wire footprint, the input
// to broadcast-join selection.
func (r *Relation) EstimatedBytes() int64 {
	return int64(r.NumRows()) * int64(len(r.schema)) * bytesPerValue
}

// Rows gathers every partition's rows into one slice (driver-side
// materialization without cost accounting; use Exec.Collect inside
// queries).
func (r *Relation) Rows() []Row {
	out := make([]Row, 0, r.NumRows())
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out
}

// SortedRows returns all rows sorted lexicographically, for
// deterministic test assertions.
func (r *Relation) SortedRows() []Row {
	rows := r.Rows()
	sort.Slice(rows, func(i, j int) bool { return lessRows(rows[i], rows[j]) })
	return rows
}

func lessRows(a, b Row) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// PartitionFor returns the canonical partition index for a
// single-column key value — the placement used by Partition, shuffles
// and join outputs alike. Storage layers partition their files with it
// so scans produce relations whose joins on the key skip the shuffle.
func PartitionFor(v rdf.ID, n int) int {
	return cluster.HashPartition(hashRowKey(Row{v}, []int{0}), n)
}

// hashRowKey combines the values at key positions into a shuffle hash.
// It is the engine's canonical placement hash: Partition, shuffleRows
// and PartitionFor must all agree on it so co-partitioned relations
// stay aligned. (Join hash tables use packKey instead, which need not
// match placement.)
func hashRowKey(r Row, keyIdx []int) uint64 {
	h := fnvOffset
	for _, i := range keyIdx {
		h ^= uint64(r[i])
		h *= fnvPrime
	}
	return h
}
