package engine

import "repro/internal/rdf"

// Join and dedup keys. Rows are dictionary-encoded (rdf.ID is a
// uint32), so one key column IS the key and two key columns pack
// losslessly into a uint64 — the common BGP join needs no key
// materialization at all. Three or more columns are folded into a
// uint64 FNV hash and re-checked column-wise on every lookup, so a
// collision costs one extra comparison, never a wrong result. This
// replaces the old per-row string key (`string(b)`), which heap-
// allocated once per row on every join, shuffle and distinct.

const (
	// fnvOffset is the engine's hash basis. It is a truncated variant
	// of the FNV-1a offset basis, kept verbatim from the original
	// placement hash: partition placement — and therefore every
	// order-sensitive result (LIMIT without ORDER BY) — depends on it.
	fnvOffset uint64 = 1469598103934665603
	fnvPrime  uint64 = 1099511628211
)

// testCollideHashedKeys is a test hook: when set, every hashed
// (three-or-more-column) key folds to the same uint64, forcing the
// collision re-check path on each lookup.
var testCollideHashedKeys bool

// packKey reduces r's key columns to a uint64. exact reports whether
// the packing is collision-free; when false, callers must re-check
// candidate matches with keysEqual.
func packKey(r Row, keyIdx []int) (key uint64, exact bool) {
	switch len(keyIdx) {
	case 1:
		return uint64(r[keyIdx[0]]), true
	case 2:
		return uint64(r[keyIdx[0]])<<32 | uint64(r[keyIdx[1]]), true
	default:
		if testCollideHashedKeys {
			return 0xC0111DED, false
		}
		h := fnvOffset
		for _, i := range keyIdx {
			h ^= uint64(r[i])
			h *= fnvPrime
		}
		return h, false
	}
}

// keysEqual compares a's key columns to b's, position-wise.
func keysEqual(a Row, aIdx []int, b Row, bIdx []int) bool {
	for i, ai := range aIdx {
		if a[ai] != b[bIdx[i]] {
			return false
		}
	}
	return true
}

// joinIndex is a chained hash index over the build side of a hash
// join. Building one costs two allocations total (the head map and the
// chain slice) regardless of row count or key cardinality — no string
// keys, no per-key bucket slices. Chains store 1-based row indexes so
// the zero value of a map lookup doubles as "no entry".
type joinIndex struct {
	// head1 serves the single-column fast path, keyed directly on the
	// dictionary ID.
	head1 map[rdf.ID]int32
	// headN serves multi-column keys, packed (two columns) or hashed
	// (three or more) into a uint64.
	headN map[uint64]int32
	// next[i] links row i to the previous row inserted with the same
	// packed key; 0 terminates the chain.
	next   []int32
	rows   []Row
	keyIdx []int
	// exact records that the packed key is collision-free, so probe
	// matches need no column re-check.
	exact bool
}

// buildJoinIndex indexes rows by the key columns. The index is
// read-only after construction and safe for concurrent probing.
func buildJoinIndex(rows []Row, keyIdx []int) joinIndex {
	ix := joinIndex{
		next:   make([]int32, len(rows)),
		rows:   rows,
		keyIdx: keyIdx,
		exact:  len(keyIdx) <= 2,
	}
	if len(keyIdx) == 1 {
		ix.head1 = make(map[rdf.ID]int32, len(rows))
		ki := keyIdx[0]
		for i, r := range rows {
			k := r[ki]
			ix.next[i] = ix.head1[k]
			ix.head1[k] = int32(i + 1)
		}
		return ix
	}
	ix.headN = make(map[uint64]int32, len(rows))
	for i, r := range rows {
		k, _ := packKey(r, keyIdx)
		ix.next[i] = ix.headN[k]
		ix.headN[k] = int32(i + 1)
	}
	return ix
}

// first returns the 1-based head of the chain for probe row pr's key
// columns, or 0 when no build row shares the packed key.
func (ix *joinIndex) first(pr Row, probeIdx []int) int32 {
	if ix.head1 != nil {
		return ix.head1[pr[probeIdx[0]]]
	}
	k, _ := packKey(pr, probeIdx)
	return ix.headN[k]
}

// match reports whether chain entry i (1-based) genuinely matches pr,
// re-checking the key columns when the packed key is a lossy hash.
func (ix *joinIndex) match(i int32, pr Row, probeIdx []int) bool {
	return ix.exact || keysEqual(ix.rows[i-1], ix.keyIdx, pr, probeIdx)
}

// rowSet is a chained hash set over whole rows, used by Distinct. Like
// joinIndex it allocates only its head map and chain, and re-checks
// hashed (wide-row) keys column-wise so collisions never drop rows.
type rowSet struct {
	head   map[uint64]int32
	next   []int32
	rows   []Row
	keyIdx []int
}

// newRowSet returns a set for rows of the given width, pre-sized for
// capHint insertions.
func newRowSet(width, capHint int) *rowSet {
	keyIdx := make([]int, width)
	for i := range keyIdx {
		keyIdx[i] = i
	}
	return &rowSet{
		head:   make(map[uint64]int32, capHint),
		next:   make([]int32, 0, capHint),
		rows:   make([]Row, 0, capHint),
		keyIdx: keyIdx,
	}
}

// insert adds r unless an equal row is already present, reporting
// whether r was new. Inserted rows are retained (not copied) in
// first-seen order; see rows.
func (s *rowSet) insert(r Row) bool {
	k, exact := packKey(r, s.keyIdx)
	for i := s.head[k]; i != 0; i = s.next[i-1] {
		if exact || keysEqual(s.rows[i-1], s.keyIdx, r, s.keyIdx) {
			return false
		}
	}
	s.rows = append(s.rows, r)
	s.next = append(s.next, s.head[k])
	s.head[k] = int32(len(s.rows))
	return true
}
