package engine

import "repro/internal/cluster"

// This file is the engine's distributed-execution seam. Exchange
// operators (shuffle join, broadcast join, cartesian, distinct)
// compute their shuffle layout exactly as in single-process execution,
// then — when an Exchanger is installed on the Exec — delegate the
// per-partition kernels to remote shard processes and adopt the
// returned rows as the stage output. The kernels below are the exact
// functions the local closures run, so a shard executing them over the
// same fragments produces bit-identical partitions, and every stage's
// TaskStats are computed from coordinator-known values (fragment
// lengths and returned row counts) — SimTime is invariant under where
// the kernels physically ran.

// ShuffleSpec describes the partition-wise hash-join kernel of a
// shuffle join whose fragments were already routed by the coordinator.
type ShuffleSpec struct {
	Name         string
	LKey, RKey   []int
	OutWidth     int
	LKeep, RKeep []int
	// PricedBytes is the cost model's network charge for this exchange
	// (the moved bytes both sides pay), recorded for calibration.
	PricedBytes int64
	// LMovedBytes and RMovedBytes split PricedBytes per side. A side the
	// model charged zero for (already aligned on the join key) still
	// crosses the wire in coordinator mode — the relation lives
	// coordinator-side — but that relay traffic must not count against
	// the model's price, so the Exchanger uses these to classify each
	// side's payload as measured shuffle or relay.
	LMovedBytes, RMovedBytes int64
}

// BroadcastSpec describes a broadcast hash join: the build side ships
// whole, the probe side stays put.
type BroadcastSpec struct {
	Name               string
	BuildKey, ProbeKey []int
	BuildIsLeft        bool
	OutWidth           int
	LKeep, RKeep       []int
	PricedBytes        int64
}

// CartesianSpec describes a cross product via broadcast of the small
// side.
type CartesianSpec struct {
	Name         string
	SmallIsLeft  bool
	OutWidth     int
	LKeep, RKeep []int
	PricedBytes  int64
}

// DistinctSpec describes a post-shuffle dedup kernel.
type DistinctSpec struct {
	Width       int
	PricedBytes int64
}

// Exchanger runs exchange kernels on remote shards. Implementations
// must return exactly len(input-partitions) output partitions with the
// same rows the local kernels would produce; internal/shard's
// coordinator session is the production implementation.
type Exchanger interface {
	ShuffleJoin(spec ShuffleSpec, lParts, rParts [][]Row) ([][]Row, error)
	BroadcastJoin(spec BroadcastSpec, buildRows []Row, probeParts [][]Row) ([][]Row, error)
	Cartesian(spec CartesianSpec, smallRows []Row, largeParts [][]Row) ([][]Row, error)
	Distinct(spec DistinctSpec, parts [][]Row) ([][]Row, error)
}

// JoinPartitionKernel hash-joins one shuffle partition: the smaller
// side (by row count; left on ties) becomes the build side, and output
// rows keep left-to-right column order. This is the exact kernel
// shuffleJoin runs locally, exported so shard processes reproduce its
// output bit for bit.
func JoinPartitionKernel(lRows, rRows []Row, lKey, rKey []int, outWidth int, lKeep, rKeep []int) []Row {
	build, probe := lRows, rRows
	buildKey, probeKey := lKey, rKey
	buildIsLeft := true
	if len(probe) < len(build) {
		build, probe = probe, build
		buildKey, probeKey = probeKey, buildKey
		buildIsLeft = false
	}
	jp := NewJoinProbe(build, buildKey)
	return jp.Probe(probe, probeKey, buildIsLeft, outWidth, lKeep, rKeep)
}

// JoinProbe is a reusable hash index over a join's build side; shard
// servers build it once per broadcast join and probe every owned
// partition against it.
type JoinProbe struct {
	ix       joinIndex
	buildKey []int
}

// NewJoinProbe indexes buildRows on the key columns.
func NewJoinProbe(buildRows []Row, buildKey []int) *JoinProbe {
	return &JoinProbe{ix: buildJoinIndex(buildRows, buildKey), buildKey: buildKey}
}

// Probe emits the join of probeRows against the indexed build side,
// preserving probe-row order (then build-chain order), exactly as the
// in-process join closures do.
func (jp *JoinProbe) Probe(probeRows []Row, probeKey []int, buildIsLeft bool, outWidth int, lKeep, rKeep []int) []Row {
	ix := jp.ix
	arena := NewRowArena(outWidth, len(probeRows))
	for _, pr := range probeRows {
		for i := ix.first(pr, probeKey); i != 0; i = ix.next[i-1] {
			if !ix.match(i, pr, probeKey) {
				continue
			}
			br := ix.rows[i-1]
			lr, rr := br, pr
			if !buildIsLeft {
				lr, rr = pr, br
			}
			if lKeep == nil {
				arena.AppendJoin(lr, rr, rKeep)
			} else {
				arena.AppendJoinPruned(lr, rr, lKeep, rKeep)
			}
		}
	}
	return arena.Rows()
}

// CartesianKernel crosses one partition of the large side with the
// whole broadcast small side, in the local operator's emission order.
func CartesianKernel(largeRows, smallRows []Row, smallIsLeft bool, outWidth int, lKeep, rKeep []int) []Row {
	arena := NewRowArena(outWidth, len(largeRows)*len(smallRows))
	for _, lr := range largeRows {
		for _, sr := range smallRows {
			l, r := sr, lr
			if !smallIsLeft {
				l, r = lr, sr
			}
			if lKeep == nil {
				arena.AppendConcat(l, r)
			} else {
				arena.AppendJoinPruned(l, r, lKeep, rKeep)
			}
		}
	}
	return arena.Rows()
}

// DistinctKernel dedups one shuffled partition, keeping first-seen
// row order like the local distinct closure.
func DistinctKernel(rows []Row, width int) []Row {
	seen := newRowSet(width, len(rows))
	for _, r := range rows {
		seen.insert(r)
	}
	return seen.rows
}

// RowsChecksum digests row partitions exactly like Relation.Checksum,
// exported so the wire layer can verify an exchanged payload against
// the checksum its producer framed alongside it.
func RowsChecksum(parts [][]Row) uint64 {
	h := fnvOffset
	for _, part := range parts {
		for _, row := range part {
			for _, v := range row {
				h ^= uint64(v)
				h *= fnvPrime
			}
			h ^= rowBoundaryMark
			h *= fnvPrime
		}
		h ^= partBoundaryMark
		h *= fnvPrime
	}
	return h
}

// ScanGathered charges a filtered table scan whose surviving rows were
// produced elsewhere (shard-local evaluation): stats are identical to
// ScanFiltered — the full stored partition streams off disk and every
// stored row is processed — but the output partitions are the
// shard-returned ones. out must have table.Partitions() entries.
func (e *Exec) ScanGathered(table *Relation, name string, diskBytes int64, out [][]Row) (*Relation, error) {
	n := table.Partitions()
	if n == 0 {
		return table, nil
	}
	perPart := diskBytes / int64(n)
	err := e.Cluster.RunStage(e.Clock, e.Launch(false), "scan "+name, n, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			DiskBytes: perPart,
			Rows:      int64(len(table.Part(p))),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: table.schema.Clone(), parts: out, partCols: cloneCols(table.partCols)}, nil
}
