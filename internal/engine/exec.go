package engine

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// DefaultBroadcastThreshold mirrors Spark's
// spark.sql.autoBroadcastJoinThreshold default of 10 MiB.
const DefaultBroadcastThreshold = 10 << 20

// DefaultSkewSaltFraction is the shuffle-salting trigger: a join key
// carrying at least this fraction of one input's rows would serialize
// a fifth of the join on one worker, so it is salted into per-worker
// sub-keys instead. The planner prices shuffle candidates with the
// same bound (plan.Costs.SkewSaltFraction).
const DefaultSkewSaltFraction = 0.2

// Exec is the execution context for one query: the cluster it runs on,
// the virtual clock it charges, and the physical-planning knobs.
type Exec struct {
	// Cluster is the simulated cluster.
	Cluster *cluster.Cluster
	// Clock accumulates the query's virtual time. May be nil (costs are
	// then discarded), which tests use for pure-semantics checks.
	Clock *cluster.Clock
	// StartCost is charged once, on the query's first stage: query
	// planning in a warm Spark SQL session (PRoST, S2RDF) or a full
	// spark-submit (SPARQLGX).
	StartCost time.Duration
	// BoundaryLaunch is charged on every stage that crosses a shuffle
	// or broadcast-exchange boundary; pipelined work (scan, filter,
	// project) launches nothing.
	BoundaryLaunch time.Duration
	// BroadcastThreshold is the maximum build-side size for broadcast
	// joins; 0 means DefaultBroadcastThreshold, negative disables
	// broadcasting entirely (the ablation knob).
	BroadcastThreshold int64
	// SkewSaltFraction is the shuffle-salting trigger: a join key
	// carrying at least this fraction of one input's rows is split into
	// per-worker sub-keys, with the other side's matching rows
	// replicated, so a zipfian hot key no longer serializes one worker.
	// 0 means DefaultSkewSaltFraction; negative disables salting.
	SkewSaltFraction float64
	// Dist, when non-nil, delegates exchange kernels (shuffle join,
	// broadcast join, cartesian, distinct) to remote shard processes.
	// Layout decisions, shuffle routing and stage pricing stay local,
	// so SimTime and results are identical to single-process runs.
	Dist Exchanger

	started bool
}

// NewExec returns an execution context with warm-session Spark SQL
// pricing — the mode PRoST and S2RDF run in.
func NewExec(c *cluster.Cluster, clock *cluster.Clock) *Exec {
	cost := c.Config().Cost
	return &Exec{
		Cluster:        c,
		Clock:          clock,
		StartCost:      cost.SQLPlanning,
		BoundaryLaunch: cost.SQLStageLaunch,
	}
}

// NewRDDExec returns an execution context priced as a freshly submitted
// RDD program (SPARQLGX's mode): a spark-submit per query and a job
// launch per shuffle stage.
func NewRDDExec(c *cluster.Cluster, clock *cluster.Clock) *Exec {
	cost := c.Config().Cost
	return &Exec{
		Cluster:        c,
		Clock:          clock,
		StartCost:      cost.RDDSubmit,
		BoundaryLaunch: cost.RDDStageLaunch,
	}
}

// Launch returns the launch overhead for the next stage: StartCost on
// the query's first stage, plus BoundaryLaunch when the stage crosses a
// shuffle/broadcast boundary. Storage layers that run their own scan
// stages call this with boundary=false.
func (e *Exec) Launch(boundary bool) time.Duration {
	var d time.Duration
	if !e.started {
		e.started = true
		d += e.StartCost
	}
	if boundary {
		d += e.BoundaryLaunch
	}
	return d
}

// launchBroadcast prices a broadcast hash join's stage: the probe side
// pipelines into the open stage (Spark fuses BroadcastHashJoin into
// whole-stage codegen), so only the small build-side collection job is
// charged, at a third of a full stage launch.
func (e *Exec) launchBroadcast() time.Duration {
	return e.Launch(false) + e.BoundaryLaunch/3
}

func (e *Exec) broadcastThreshold() int64 {
	if e.BroadcastThreshold == 0 {
		return DefaultBroadcastThreshold
	}
	return e.BroadcastThreshold
}

// saltFraction resolves the shuffle-salting trigger (0 when disabled).
func (e *Exec) saltFraction() float64 {
	if e.SkewSaltFraction == 0 {
		return DefaultSkewSaltFraction
	}
	if e.SkewSaltFraction < 0 {
		return 0
	}
	return e.SkewSaltFraction
}

// Scan charges a table scan of the relation: diskBytes streamed evenly
// across partitions plus per-row processing. It returns table unchanged
// (relations are immutable), making it the bridge between stored tables
// and query plans. Pass diskBytes = 0 for a scan of an in-memory cached
// table.
func (e *Exec) Scan(table *Relation, name string, diskBytes int64) (*Relation, error) {
	n := table.Partitions()
	if n == 0 {
		return table, nil
	}
	perPart := diskBytes / int64(n)
	err := e.Cluster.RunStage(e.Clock, e.Launch(false), "scan "+name, n, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			DiskBytes: perPart,
			Rows:      int64(len(table.Part(p))),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// ScanFiltered charges a table scan like Scan and applies a
// pushed-down row predicate inside the same stage: rows are tested as
// they stream off disk, so the filter costs no extra stage and no
// materialized intermediate. A nil pred degenerates to Scan. The
// output keeps the table's partitioning (filtering moves no rows).
func (e *Exec) ScanFiltered(table *Relation, name string, diskBytes int64, pred func(Row) bool) (*Relation, error) {
	if pred == nil {
		return e.Scan(table, name, diskBytes)
	}
	n := table.Partitions()
	if n == 0 {
		return table, nil
	}
	perPart := diskBytes / int64(n)
	out := make([][]Row, n)
	err := e.Cluster.RunStage(e.Clock, e.Launch(false), "scan "+name, n, func(p int) (cluster.TaskStats, error) {
		in := table.Part(p)
		var kept []Row
		for _, r := range in {
			if pred(r) {
				kept = append(kept, r)
			}
		}
		out[p] = kept
		return cluster.TaskStats{
			DiskBytes: perPart,
			Rows:      int64(len(in)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: table.schema.Clone(), parts: out, partCols: cloneCols(table.partCols)}, nil
}

// Filter keeps the rows satisfying pred, partition-wise (no shuffle).
func (e *Exec) Filter(rel *Relation, name string, pred func(Row) bool) (*Relation, error) {
	out := make([][]Row, rel.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.Launch(false), "filter "+name, rel.Partitions(), func(p int) (cluster.TaskStats, error) {
		in := rel.Part(p)
		var kept []Row
		for _, r := range in {
			if pred(r) {
				kept = append(kept, r)
			}
		}
		out[p] = kept
		return cluster.TaskStats{Rows: int64(len(in))}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: rel.schema.Clone(), parts: out, partCols: cloneCols(rel.partCols)}, nil
}

// Project keeps only the named columns, in the given order.
func (e *Exec) Project(rel *Relation, cols []string) (*Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := rel.schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("engine: project column %q not in schema %v", c, rel.schema)
		}
		idx[i] = j
	}
	// The partitioning survives only if every partition column is
	// still projected (placement hashes all of them).
	partCols := cloneCols(rel.partCols)
	for _, pc := range partCols {
		if !Schema(cols).Contains(pc) {
			partCols = nil
			break
		}
	}
	out := make([][]Row, rel.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.Launch(false), "project", rel.Partitions(), func(p int) (cluster.TaskStats, error) {
		in := rel.Part(p)
		arena := NewRowArena(len(idx), len(in))
		for _, r := range in {
			arena.AppendProjected(r, idx)
		}
		out[p] = arena.Rows()
		return cluster.TaskStats{Rows: int64(len(in))}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: Schema(cols).Clone(), parts: out, partCols: partCols}, nil
}

// Rename relabels the relation's columns without touching data or
// layout; the partition key follows its column. It is free (metadata
// only), like a SQL AS clause.
func (e *Exec) Rename(rel *Relation, newNames []string) (*Relation, error) {
	if len(newNames) != len(rel.schema) {
		return nil, fmt.Errorf("engine: rename needs %d names, got %d", len(rel.schema), len(newNames))
	}
	var partCols []string
	for _, pc := range rel.partCols {
		if i := rel.schema.Index(pc); i >= 0 {
			partCols = append(partCols, newNames[i])
		}
	}
	if len(partCols) != len(rel.partCols) {
		partCols = nil
	}
	return &Relation{schema: Schema(newNames).Clone(), parts: rel.parts, partCols: partCols}, nil
}

// Distinct removes duplicate rows. It requires a shuffle on all columns
// so equal rows meet in one partition, exactly as Spark plans it; a
// relation already partitioned on all its columns dedups in place. The
// output records the all-columns partitioning for downstream reuse.
func (e *Exec) Distinct(rel *Relation) (*Relation, error) {
	n := e.Cluster.DefaultPartitions()
	width := len(rel.schema)
	keyIdx := make([]int, width)
	for i := range keyIdx {
		keyIdx[i] = i
	}
	var shuffled [][]Row
	moved := make([]int64, n)
	if alignedOnCols(rel, rel.schema, n) {
		shuffled = rel.parts
	} else {
		shuffled, moved = shuffleRows(rel, keyIdx, n)
	}
	run := func(p int) []Row { return DistinctKernel(shuffled[p], width) }
	if e.Dist != nil {
		var priced int64
		for _, m := range moved {
			priced += m
		}
		res, err := e.Dist.Distinct(DistinctSpec{Width: width, PricedBytes: priced}, shuffled)
		if err != nil {
			return nil, err
		}
		run = func(p int) []Row { return res[p] }
	}
	out := make([][]Row, n)
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "distinct", n, func(p int) (cluster.TaskStats, error) {
		out[p] = run(p)
		return cluster.TaskStats{
			Rows:     int64(len(shuffled[p])),
			NetBytes: moved[p],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: rel.schema.Clone(), parts: out, partCols: cloneCols(rel.schema)}, nil
}

// Union concatenates two relations with identical schemas.
func (e *Exec) Union(a, b *Relation) (*Relation, error) {
	if len(a.schema) != len(b.schema) {
		return nil, fmt.Errorf("engine: union schema mismatch %v vs %v", a.schema, b.schema)
	}
	for i := range a.schema {
		if a.schema[i] != b.schema[i] {
			return nil, fmt.Errorf("engine: union schema mismatch %v vs %v", a.schema, b.schema)
		}
	}
	n := a.Partitions()
	if b.Partitions() > n {
		n = b.Partitions()
	}
	parts := make([][]Row, n)
	for i := 0; i < n; i++ {
		if i < a.Partitions() {
			parts[i] = append(parts[i], a.Part(i)...)
		}
		if i < b.Partitions() {
			parts[i] = append(parts[i], b.Part(i)...)
		}
	}
	return &Relation{schema: a.schema.Clone(), parts: parts}, nil
}

// Collect gathers all rows to the driver, charging their transfer.
func (e *Exec) Collect(rel *Relation) ([]Row, error) {
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "collect", rel.Partitions(), func(p int) (cluster.TaskStats, error) {
		rows := int64(len(rel.Part(p)))
		return cluster.TaskStats{
			Rows:     rows,
			NetBytes: rows * int64(len(rel.schema)) * bytesPerValue,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rel.Rows(), nil
}

// Limit gathers rows to the driver in partition order, pushing
// offset/limit into the collection itself: partitions are consumed in
// order and gathering stops as soon as offset+limit rows are taken, so
// only the consumed prefix crosses the wire (and is charged) — a
// LIMIT 10 over a million-row relation transfers 10 rows, not all of
// them. The surviving rows are identical to collecting everything and
// slicing. A negative limit means "no limit" and degenerates to
// Collect.
func (e *Exec) Limit(rel *Relation, limit, offset int) ([]Row, error) {
	if limit < 0 {
		rows, err := e.Collect(rel)
		if err != nil {
			return nil, err
		}
		if offset > 0 {
			if offset >= len(rows) {
				return nil, nil
			}
			rows = rows[offset:]
		}
		return rows, nil
	}
	if offset < 0 {
		offset = 0
	}
	need := offset + limit
	n := rel.Partitions()
	taken := make([]int64, n)
	gathered := make([]Row, 0, need)
	for p := 0; p < n && len(gathered) < need; p++ {
		part := rel.Part(p)
		take := need - len(gathered)
		if take > len(part) {
			take = len(part)
		}
		gathered = append(gathered, part[:take]...)
		taken[p] = int64(take)
	}
	width := int64(len(rel.schema))
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "collect", n, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			Rows:     taken[p],
			NetBytes: taken[p] * width * bytesPerValue,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if offset >= len(gathered) {
		return nil, nil
	}
	return gathered[offset:], nil
}

// CompareIDs applies a SPARQL FILTER comparison to two dictionary IDs,
// resolving them through dict. Numeric literals compare numerically;
// everything else compares by term ordering.
func CompareIDs(dict *rdf.Dictionary, a rdf.ID, op func(int) bool, b rdf.Term) bool {
	ta := dict.Term(a)
	if na, oka := numericValue(ta); oka {
		if nb, okb := numericValue(b); okb {
			switch {
			case na < nb:
				return op(-1)
			case na > nb:
				return op(1)
			default:
				return op(0)
			}
		}
	}
	return op(ta.Compare(b))
}

// CompareTermIDs three-way-compares two dictionary IDs through dict
// the way FILTER comparisons do: integer-typed literals compare
// numerically, everything else by term ordering. Callers must have
// resolved NullID (unbound) cells before calling — the dictionary
// panics on NullID by design.
func CompareTermIDs(dict *rdf.Dictionary, a, b rdf.ID) int {
	ta, tb := dict.Term(a), dict.Term(b)
	if na, oka := numericValue(ta); oka {
		if nb, okb := numericValue(tb); okb {
			switch {
			case na < nb:
				return -1
			case na > nb:
				return 1
			default:
				return 0
			}
		}
	}
	return ta.Compare(tb)
}

// numericValue parses integer-typed literals.
func numericValue(t rdf.Term) (int64, bool) {
	if !t.IsLiteral() || t.Datatype != rdf.XSDInteger {
		return 0, false
	}
	var n int64
	neg := false
	s := t.Value
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if s == "" {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}
