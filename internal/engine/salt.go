package engine

import (
	"sort"

	"repro/internal/cluster"
)

// Skew-salted shuffles: a shuffle join hashes rows to partitions by
// their join key, so a zipfian hot key sends all of its rows — and all
// of its join work — to one partition on one worker, serializing the
// stage no matter how many workers exist. When an input's key
// histogram shows a value at or above Exec.SkewSaltFraction of its
// rows, the shuffle salts that key: the hot side's rows round-robin
// over K=workers sub-keys (one shuffle target partition each), and the
// other side's matching rows are replicated with one copy per distinct
// target partition, so every matching pair still meets exactly once
// while the row work spreads across the cluster. This generalizes the
// broadcast-only skew guard (skewDowngrade) to the shuffle path, where
// concurrent DAG branches would otherwise pile onto one worker.

// saltedKey describes one hot join-key value the shuffle salts: the
// distinct target partitions its rows spread over, which input side
// spreads (the hotter one; the other side replicates one copy per
// target), and the spread side's round-robin cursor.
type saltedKey struct {
	targets    []int
	spreadLeft bool
	next       int
}

// saltPlan scans both inputs' join-key histograms and returns the hot
// keys to salt, keyed by the engine's canonical row-key hash, or nil
// when no key concentrates enough rows to matter. Hash collisions only
// widen a salt group — correctness never depends on the hash, because
// the per-partition hash join still tests the real key columns.
func (e *Exec) saltPlan(left, right *Relation, lKey, rKey []int) map[uint64]*saltedKey {
	frac := e.saltFraction()
	if frac <= 0 {
		return nil
	}
	workers := e.Cluster.Workers()
	n := e.Cluster.DefaultPartitions()
	if workers < 2 || n < 2 {
		return nil
	}
	// Below a few rows per partition the histogram cannot mean
	// anything; the same floor the broadcast skew guard uses.
	minRows := 4 * n
	lTotal, rTotal := left.NumRows(), right.NumRows()
	if lTotal < minRows && rTotal < minRows {
		return nil
	}
	// Screen cheaply before counting: a key carrying frac of a side's
	// rows cannot hide from a deterministic stride sample, so the full
	// histogram — a map touched once per row, real cost on the PR 1
	// allocation-light hot path — is built only when the sample says a
	// hot key is plausible. The sample uses a relaxed bound so sampling
	// noise cannot suppress a genuinely hot key; the exact rule below
	// still decides on the full counts.
	var lCounts, rCounts map[uint64]int
	if lTotal >= minRows && sampleSuggestsHotKey(left, lKey, frac) {
		lCounts = keyHistogram(left, lKey)
	}
	if rTotal >= minRows && sampleSuggestsHotKey(right, rKey, frac) {
		rCounts = keyHistogram(right, rKey)
	}
	if lCounts == nil && rCounts == nil {
		return nil
	}

	salted := make(map[uint64]*saltedKey)
	consider := func(h uint64) {
		if salted[h] != nil {
			return
		}
		targets := saltTargets(h, workers, n)
		if len(targets) < 2 {
			return // the sub-keys collapse to one partition; salting is a no-op
		}
		salted[h] = &saltedKey{targets: targets, spreadLeft: lCounts[h] >= rCounts[h]}
	}
	for h, c := range lCounts {
		if float64(c) >= frac*float64(lTotal) {
			consider(h)
		}
	}
	for h, c := range rCounts {
		if float64(c) >= frac*float64(rTotal) {
			consider(h)
		}
	}
	if len(salted) == 0 {
		return nil
	}
	return salted
}

// saltSampleSize bounds the screening sample per input.
const saltSampleSize = 512

// sampleSuggestsHotKey strides through the relation counting at most
// saltSampleSize keys and reports whether any sampled key plausibly
// reaches the salt fraction. The bound is relaxed to half the trigger:
// a key truly carrying frac of the rows concentrates the same share of
// a stride sample (the stride is independent of the key), so a 0.2-hot
// key essentially cannot sample below 0.1 at 512 draws, while uniform
// key distributions screen out without ever allocating a full
// histogram.
func sampleSuggestsHotKey(rel *Relation, keyIdx []int, frac float64) bool {
	total := rel.NumRows()
	stride := total / saltSampleSize
	if stride < 1 {
		stride = 1
	}
	counts := make(map[uint64]int, saltSampleSize)
	sampled, max, next := 0, 0, 0
	for p := 0; p < rel.Partitions(); p++ {
		rows := rel.Part(p)
		for next < len(rows) {
			h := hashRowKey(rows[next], keyIdx)
			c := counts[h] + 1
			counts[h] = c
			if c > max {
				max = c
			}
			sampled++
			next += stride
		}
		next -= len(rows)
	}
	return sampled > 0 && float64(max) >= 0.5*frac*float64(sampled)
}

// keyHistogram counts rows per join-key hash across all partitions.
func keyHistogram(rel *Relation, keyIdx []int) map[uint64]int {
	counts := make(map[uint64]int, 256)
	for p := 0; p < rel.Partitions(); p++ {
		for _, r := range rel.Part(p) {
			counts[hashRowKey(r, keyIdx)]++
		}
	}
	return counts
}

// saltTargets derives a hot key's sub-key target partitions: one
// candidate per worker, deduplicated (two sub-keys may hash to the same
// partition) and sorted for deterministic round-robin order.
func saltTargets(h uint64, workers, n int) []int {
	seen := make(map[int]bool, workers)
	out := make([]int, 0, workers)
	for s := 0; s < workers; s++ {
		p := cluster.HashPartition(h^(uint64(s+1)*0xBF58476D1CE4E5B9), n)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// saltedShuffleRows hash-repartitions one side of a salted shuffle:
// non-hot rows place canonically, the spread side's hot rows
// round-robin over their key's target partitions, and the replicating
// side's hot rows land once in every target partition. It returns the
// new partitions and, per target partition, the network bytes that
// landed there (replicas ship — and are charged — per copy).
func saltedShuffleRows(rel *Relation, keyIdx []int, n int, salted map[uint64]*saltedKey, isLeft bool) ([][]Row, []int64) {
	parts := make([][]Row, n)
	moved := make([]int64, n)
	rowB := int64(len(rel.schema)) * bytesPerValue
	for pi := 0; pi < rel.Partitions(); pi++ {
		for _, r := range rel.Part(pi) {
			h := hashRowKey(r, keyIdx)
			sk := salted[h]
			switch {
			case sk == nil:
				p := cluster.HashPartition(h, n)
				parts[p] = append(parts[p], r)
				moved[p] += rowB
			case sk.spreadLeft == isLeft:
				p := sk.targets[sk.next%len(sk.targets)]
				sk.next++
				parts[p] = append(parts[p], r)
				moved[p] += rowB
			default:
				for _, p := range sk.targets {
					parts[p] = append(parts[p], r)
					moved[p] += rowB
				}
			}
		}
	}
	return parts, moved
}
