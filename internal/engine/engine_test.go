package engine

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// testExec returns a 3-worker exec over a fresh clock.
func testExec(t *testing.T) *Exec {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	return NewExec(c, cluster.NewClock())
}

func rel(t *testing.T, schema Schema, key string, rows ...Row) *Relation {
	t.Helper()
	r, err := Partition(schema, rows, key, 4)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return r
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{"a", "b", "c"}
	if s.Index("b") != 1 || s.Index("z") != -1 {
		t.Errorf("Index wrong")
	}
	if !s.Contains("c") || s.Contains("z") {
		t.Errorf("Contains wrong")
	}
	if got := s.Shared(Schema{"c", "a", "z"}); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("Shared = %v, want [a c] (left order)", got)
	}
	cl := s.Clone()
	cl[0] = "x"
	if s[0] != "a" {
		t.Errorf("Clone aliases the original")
	}
}

func TestPartitionColocatesKeys(t *testing.T) {
	rows := []Row{{1, 10}, {1, 11}, {2, 20}, {3, 30}, {1, 12}}
	r, err := Partition(Schema{"s", "o"}, rows, "s", 4)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if r.NumRows() != 5 {
		t.Errorf("NumRows = %d, want 5", r.NumRows())
	}
	// All rows with s=1 must share a partition.
	home := -1
	for p := 0; p < r.Partitions(); p++ {
		for _, row := range r.Part(p) {
			if row[0] == 1 {
				if home == -1 {
					home = p
				} else if home != p {
					t.Fatalf("key 1 in partitions %d and %d", home, p)
				}
			}
		}
	}
	if r.PartitionKey() != "s" {
		t.Errorf("PartitionKey = %q", r.PartitionKey())
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(Schema{"a"}, nil, "zzz", 2); err == nil {
		t.Errorf("Partition with bad key succeeded")
	}
	if _, err := Partition(Schema{"a"}, nil, "a", 0); err == nil {
		t.Errorf("Partition with 0 partitions succeeded")
	}
}

func TestFilter(t *testing.T) {
	e := testExec(t)
	r := rel(t, Schema{"s", "o"}, "s", Row{1, 5}, Row{2, 6}, Row{3, 7})
	out, err := e.Filter(r, "o>5", func(row Row) bool { return row[1] > 5 })
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	got := out.SortedRows()
	want := []Row{{2, 6}, {3, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filter result = %v, want %v", got, want)
	}
	if out.PartitionKey() != "s" {
		t.Errorf("Filter lost partition key")
	}
}

func TestProject(t *testing.T) {
	e := testExec(t)
	r := rel(t, Schema{"s", "p", "o"}, "s", Row{1, 2, 3}, Row{4, 5, 6})
	out, err := e.Project(r, []string{"o", "s"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if !reflect.DeepEqual(out.Schema(), Schema{"o", "s"}) {
		t.Errorf("schema = %v", out.Schema())
	}
	got := out.SortedRows()
	want := []Row{{3, 1}, {6, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
	if out.PartitionKey() != "s" {
		t.Errorf("projection keeping key column lost partition key: %q", out.PartitionKey())
	}
	out2, err := e.Project(r, []string{"o"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if out2.PartitionKey() != "" {
		t.Errorf("projection dropping key column kept partition key %q", out2.PartitionKey())
	}
	if _, err := e.Project(r, []string{"nope"}); err == nil {
		t.Errorf("Project with unknown column succeeded")
	}
}

func TestShuffleJoinNatural(t *testing.T) {
	e := testExec(t)
	e.BroadcastThreshold = -1 // force shuffle joins
	follows := rel(t, Schema{"a", "b"}, "a",
		Row{1, 2}, Row{1, 3}, Row{2, 3}, Row{4, 1})
	likes := rel(t, Schema{"b", "c"}, "b",
		Row{2, 100}, Row{3, 200}, Row{3, 300})
	out, err := e.Join(follows, likes, "follows⋈likes")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !reflect.DeepEqual(out.Schema(), Schema{"a", "b", "c"}) {
		t.Fatalf("schema = %v", out.Schema())
	}
	got := out.SortedRows()
	want := []Row{
		{1, 2, 100}, {1, 3, 200}, {1, 3, 300},
		{2, 3, 200}, {2, 3, 300},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("join rows = %v, want %v", got, want)
	}
}

func TestBroadcastJoinMatchesShuffleJoin(t *testing.T) {
	build := []Row{{2, 100}, {3, 200}}
	probe := []Row{{1, 2}, {1, 3}, {2, 3}, {9, 9}}
	mk := func(threshold int64) []Row {
		e := testExec(t)
		e.BroadcastThreshold = threshold
		l := rel(t, Schema{"a", "b"}, "a", probe...)
		r := rel(t, Schema{"b", "c"}, "b", build...)
		out, err := e.Join(l, r, "j")
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		if !reflect.DeepEqual(out.Schema(), Schema{"a", "b", "c"}) {
			t.Fatalf("schema = %v", out.Schema())
		}
		return out.SortedRows()
	}
	bc := mk(1 << 20) // small build side broadcasts
	sh := mk(-1)      // forced shuffle
	if !reflect.DeepEqual(bc, sh) {
		t.Errorf("broadcast join = %v, shuffle join = %v", bc, sh)
	}
}

func TestBroadcastJoinLeftBuild(t *testing.T) {
	// The LEFT side is tiny: it must become the build side while the
	// output schema stays left-first.
	e := testExec(t)
	small := rel(t, Schema{"a", "b"}, "a", Row{1, 2})
	big := make([]Row, 3000)
	for i := range big {
		big[i] = Row{rdf.ID(i%5 + 1), rdf.ID(i + 10)}
	}
	large := rel(t, Schema{"b", "c"}, "b", big...)
	out, err := e.Join(small, large, "small⋈large")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !reflect.DeepEqual(out.Schema(), Schema{"a", "b", "c"}) {
		t.Fatalf("schema = %v", out.Schema())
	}
	// b=2 appears in large at rows where i%5+1 == 2.
	wantMatches := 0
	for i := range big {
		if big[i][0] == 2 {
			wantMatches++
		}
	}
	if out.NumRows() != wantMatches {
		t.Errorf("join produced %d rows, want %d", out.NumRows(), wantMatches)
	}
}

func TestJoinOnMultipleSharedColumns(t *testing.T) {
	e := testExec(t)
	e.BroadcastThreshold = -1
	l := rel(t, Schema{"x", "y", "v"}, "x",
		Row{1, 1, 10}, Row{1, 2, 20}, Row{2, 2, 30})
	r := rel(t, Schema{"x", "y", "w"}, "x",
		Row{1, 1, 100}, Row{1, 2, 200}, Row{2, 1, 300})
	out, err := e.Join(l, r, "multi")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	got := out.SortedRows()
	want := []Row{{1, 1, 10, 100}, {1, 2, 20, 200}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestJoinShuffleAvoidanceOnCoPartitionedInputs(t *testing.T) {
	// Two relations partitioned on the join key must pay zero shuffle
	// bytes — the engine behaviour that makes PT subject-joins cheap.
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	clock := cluster.NewClock()
	e := NewExec(c, clock)
	e.BroadcastThreshold = -1
	l := rel(t, Schema{"s", "a"}, "s", Row{1, 10}, Row{2, 20}, Row{3, 30})
	r := rel(t, Schema{"s", "b"}, "s", Row{1, 100}, Row{2, 200})
	out, err := e.Join(l, r, "aligned")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2", out.NumRows())
	}
	for _, st := range clock.Stages() {
		if st.Stats.NetBytes != 0 {
			t.Errorf("stage %q shuffled %d bytes; co-partitioned join must be shuffle-free", st.Name, st.Stats.NetBytes)
		}
	}

	// Control: join on a non-partition column must shuffle.
	clock.Reset()
	l2 := rel(t, Schema{"a", "s"}, "a", Row{10, 1}, Row{20, 2})
	r2 := rel(t, Schema{"s", "b"}, "b", Row{1, 100}, Row{2, 200})
	if _, err := e.Join(l2, r2, "misaligned"); err != nil {
		t.Fatalf("Join: %v", err)
	}
	var moved int64
	for _, st := range clock.Stages() {
		moved += st.Stats.NetBytes
	}
	if moved == 0 {
		t.Errorf("misaligned join shuffled no bytes")
	}
}

func TestCartesianJoin(t *testing.T) {
	e := testExec(t)
	l := rel(t, Schema{"a"}, "a", Row{1}, Row{2})
	r := rel(t, Schema{"b"}, "b", Row{10}, Row{20})
	out, err := e.Join(l, r, "cross")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if out.NumRows() != 4 {
		t.Errorf("cartesian rows = %d, want 4", out.NumRows())
	}
	if !reflect.DeepEqual(out.Schema(), Schema{"a", "b"}) {
		t.Errorf("schema = %v", out.Schema())
	}
	got := out.SortedRows()
	want := []Row{{1, 10}, {1, 20}, {2, 10}, {2, 20}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestDistinct(t *testing.T) {
	e := testExec(t)
	r := rel(t, Schema{"a", "b"}, "a",
		Row{1, 2}, Row{1, 2}, Row{1, 3}, Row{2, 2}, Row{1, 2})
	out, err := e.Distinct(r)
	if err != nil {
		t.Fatalf("Distinct: %v", err)
	}
	got := out.SortedRows()
	want := []Row{{1, 2}, {1, 3}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distinct rows = %v, want %v", got, want)
	}
}

func TestUnion(t *testing.T) {
	e := testExec(t)
	a := rel(t, Schema{"x"}, "x", Row{1}, Row{2})
	b := rel(t, Schema{"x"}, "x", Row{2}, Row{3})
	out, err := e.Union(a, b)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if out.NumRows() != 4 {
		t.Errorf("union rows = %d, want 4 (bag semantics)", out.NumRows())
	}
	c := rel(t, Schema{"y"}, "y", Row{1})
	if _, err := e.Union(a, c); err == nil {
		t.Errorf("Union with mismatched schema succeeded")
	}
}

func TestCollectAndLimit(t *testing.T) {
	e := testExec(t)
	r := rel(t, Schema{"a"}, "a", Row{3}, Row{1}, Row{2}, Row{4}, Row{5})
	rows, err := e.Collect(r)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(rows) != 5 {
		t.Errorf("Collect = %d rows, want 5", len(rows))
	}
	lim, err := e.Limit(r, 2, 0)
	if err != nil {
		t.Fatalf("Limit: %v", err)
	}
	if len(lim) != 2 {
		t.Errorf("Limit(2) = %d rows", len(lim))
	}
	all, err := e.Limit(r, -1, 0)
	if err != nil {
		t.Fatalf("Limit(-1): %v", err)
	}
	if len(all) != 5 {
		t.Errorf("Limit(-1) = %d rows, want 5", len(all))
	}
	off, err := e.Limit(r, -1, 3)
	if err != nil {
		t.Fatalf("Limit offset: %v", err)
	}
	if len(off) != 2 {
		t.Errorf("Offset(3) = %d rows, want 2", len(off))
	}
	none, err := e.Limit(r, -1, 99)
	if err != nil {
		t.Fatalf("Limit big offset: %v", err)
	}
	if len(none) != 0 {
		t.Errorf("Offset(99) = %d rows, want 0", len(none))
	}
}

func TestScanChargesDisk(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Workers: 2, DefaultPartitions: 2})
	clock := cluster.NewClock()
	e := NewExec(c, clock)
	r := rel(t, Schema{"s", "o"}, "s", Row{1, 2}, Row{3, 4})
	if _, err := e.Scan(r, "vp_follows", 1<<20); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	stages := clock.Stages()
	if len(stages) != 1 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Stats.DiskBytes == 0 {
		t.Errorf("scan charged no disk bytes")
	}
}

func TestEstimatedBytes(t *testing.T) {
	r := rel(t, Schema{"a", "b"}, "a", Row{1, 2}, Row{3, 4}, Row{5, 6})
	if got := r.EstimatedBytes(); got != 3*2*bytesPerValue {
		t.Errorf("EstimatedBytes = %d, want %d", got, 3*2*bytesPerValue)
	}
}

func TestCompareIDs(t *testing.T) {
	d := rdf.NewDictionary()
	five := d.Encode(rdf.NewTypedLiteral("5", rdf.XSDInteger))
	alpha := d.Encode(rdf.NewLiteral("alpha"))

	lt := func(c int) bool { return c < 0 }
	eq := func(c int) bool { return c == 0 }
	if !CompareIDs(d, five, lt, rdf.NewTypedLiteral("10", rdf.XSDInteger)) {
		t.Errorf("5 < 10 numeric comparison failed")
	}
	if CompareIDs(d, five, eq, rdf.NewTypedLiteral("10", rdf.XSDInteger)) {
		t.Errorf("5 == 10 returned true")
	}
	// String comparison: "alpha" < "beta" lexically.
	if !CompareIDs(d, alpha, lt, rdf.NewLiteral("beta")) {
		t.Errorf("alpha < beta failed")
	}
	// Mixed: numeric vs non-numeric falls back to term ordering.
	if !CompareIDs(d, five, eq, rdf.NewTypedLiteral("5", rdf.XSDInteger)) {
		t.Errorf("5 == 5 failed")
	}
}

func TestNumericValue(t *testing.T) {
	tests := []struct {
		term rdf.Term
		want int64
		ok   bool
	}{
		{rdf.NewTypedLiteral("42", rdf.XSDInteger), 42, true},
		{rdf.NewTypedLiteral("-7", rdf.XSDInteger), -7, true},
		{rdf.NewTypedLiteral("+3", rdf.XSDInteger), 3, true},
		{rdf.NewTypedLiteral("x", rdf.XSDInteger), 0, false},
		{rdf.NewTypedLiteral("", rdf.XSDInteger), 0, false},
		{rdf.NewTypedLiteral("-", rdf.XSDInteger), 0, false},
		{rdf.NewLiteral("42"), 0, false},
		{rdf.NewIRI("http://42"), 0, false},
	}
	for _, tt := range tests {
		got, ok := numericValue(tt.term)
		if got != tt.want || ok != tt.ok {
			t.Errorf("numericValue(%v) = %d,%v want %d,%v", tt.term, got, ok, tt.want, tt.ok)
		}
	}
}
