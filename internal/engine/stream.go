package engine

// Streaming-operator surface over the hash-join internals. The
// morsel-driven executor in internal/core fuses scans, probes,
// projections and distinct into pull-based pipelines; this file
// exports exactly the pieces it needs — join layout, chained hash
// index, row dedup set — as thin wrappers so the streaming path emits
// rows through the same packKey/joinLayout/arena machinery the
// materialized operators use. Sharing those code paths, not just the
// semantics, is what keeps the two execution modes byte-identical on
// SortedRows.

// StreamJoin is one hash join's precomputed layout: output schema,
// emission index lists and per-side key columns, fixed at
// pipeline-build time.
type StreamJoin struct {
	out          Schema
	shared       []string
	lKey, rKey   []int
	lKeep, rKeep []int
	// nullRight is a right-width row of NullIDs, the padding ProbeOuter
	// emits for probe rows with no match (left outer join semantics).
	nullRight Row
}

// NewStreamJoin computes the join layout of left ⋈ right with fused
// column pruning (keep == nil retains every column, exactly like
// JoinKeep). Zero shared variables degrade to a cartesian product
// naturally: the empty key packs to a constant, chaining every build
// row behind every probe.
func NewStreamJoin(left, right Schema, keep []string) *StreamJoin {
	shared := left.Shared(right)
	out, lKeep, rKeep := joinLayout(left, right, shared, keep)
	return &StreamJoin{
		out:       out,
		shared:    shared,
		lKey:      keyIndexes(left, shared),
		rKey:      keyIndexes(right, shared),
		lKeep:     lKeep,
		rKeep:     rKeep,
		nullRight: make(Row, len(right)),
	}
}

// OutSchema returns the join's output schema (left columns first, the
// materialized operators' orientation).
func (j *StreamJoin) OutSchema() Schema { return j.out }

// Shared returns the join variables.
func (j *StreamJoin) Shared() []string { return j.shared }

// Build indexes the buffered build side. Build rows must be stable
// (the index and probes retain them); arena-backed rows qualify.
func (j *StreamJoin) Build(buildRows []Row, buildIsLeft bool) *StreamHash {
	buildKey, probeKey := j.rKey, j.lKey
	if buildIsLeft {
		buildKey, probeKey = j.lKey, j.rKey
	}
	return &StreamHash{
		j:         j,
		ix:        buildJoinIndex(buildRows, buildKey),
		probeKey:  probeKey,
		buildLeft: buildIsLeft,
	}
}

// StreamHash is a built hash table ready for chunk-at-a-time probing.
// Probing is read-only, so concurrent probe morsels share one table.
type StreamHash struct {
	j         *StreamJoin
	ix        joinIndex
	probeKey  []int
	buildLeft bool
}

// BuildRows returns the number of indexed build rows.
func (h *StreamHash) BuildRows() int { return len(h.ix.rows) }

// Probe appends every join match of probe row pr into arena — the
// same chain walk and append paths as the materialized join — and
// returns the number of rows emitted.
func (h *StreamHash) Probe(pr Row, arena *RowArena) int {
	n := 0
	for i := h.ix.first(pr, h.probeKey); i != 0; i = h.ix.next[i-1] {
		if !h.ix.match(i, pr, h.probeKey) {
			continue
		}
		br := h.ix.rows[i-1]
		lr, rr := br, pr
		if !h.buildLeft {
			lr, rr = pr, br
		}
		if h.j.lKeep == nil {
			arena.AppendJoin(lr, rr, h.j.rKeep)
		} else {
			arena.AppendJoinPruned(lr, rr, h.j.lKeep, h.j.rKeep)
		}
		n++
	}
	return n
}

// ProbeOuter is Probe with left-outer semantics: a probe row with no
// match emits once, padded with NullID in the right-only columns. It
// requires the build side to be the right (optional) input
// (buildIsLeft=false at Build time) — the probe row is the left side
// whose presence the outer join preserves.
func (h *StreamHash) ProbeOuter(pr Row, arena *RowArena) int {
	if n := h.Probe(pr, arena); n > 0 {
		return n
	}
	if h.j.lKeep == nil {
		arena.AppendJoin(pr, h.j.nullRight, h.j.rKeep)
	} else {
		arena.AppendJoinPruned(pr, h.j.nullRight, h.j.lKeep, h.j.rKeep)
	}
	return 1
}

// RowDeduper wraps the Distinct operator's row set for streaming use:
// pipelines insert as rows arrive instead of deduplicating a
// materialized relation at the end.
type RowDeduper struct {
	set *rowSet
}

// NewRowDeduper returns a deduper for rows of the given width.
func NewRowDeduper(width, capHint int) *RowDeduper {
	return &RowDeduper{set: newRowSet(width, capHint)}
}

// Insert adds r unless an equal row was already seen, reporting
// whether r was new. r is retained, not copied — callers streaming
// from reused scratch buffers must copy first.
func (d *RowDeduper) Insert(r Row) bool { return d.set.insert(r) }

// Rows returns the retained distinct rows in first-seen order.
func (d *RowDeduper) Rows() []Row { return d.set.rows }

// Len returns the number of distinct rows seen.
func (d *RowDeduper) Len() int { return len(d.set.rows) }
