package engine

import "repro/internal/rdf"

// RowArena accumulates fixed-width output rows in one flat []rdf.ID
// backing buffer, handing out rows as capacity-clipped slices into it.
// Operators allocate one arena per partition instead of one Row per
// output tuple, so emitting n rows costs O(log n) buffer growths
// rather than n heap allocations. If the buffer grows, already-issued
// rows keep pointing into the previous backing array, which stays
// valid — rows are immutable once emitted.
//
// The arena is exported so storage layers (property-table and VP
// scans in internal/core) can emit their scan output in the same
// representation the join core produces.
type RowArena struct {
	width int
	buf   []rdf.ID
	rows  []Row
}

// NewRowArena returns an arena for rows of the given width, pre-sized
// to hold rowCapHint rows without reallocating. Callers derive the
// hint from known cardinalities (probe-side row count for joins, exact
// output size for cartesian products and projections).
func NewRowArena(width, rowCapHint int) *RowArena {
	a := &RowArena{width: width}
	if rowCapHint > 0 {
		a.buf = make([]rdf.ID, 0, rowCapHint*width)
		a.rows = make([]Row, 0, rowCapHint)
	}
	return a
}

// seal clips the just-written row out of the buffer tail and records
// it. The capacity clip guarantees no later append can write into an
// issued row.
func (a *RowArena) seal(start int) {
	a.rows = append(a.rows, a.buf[start:len(a.buf):len(a.buf)])
}

// AppendJoin emits left ++ right[keep] — the hash-join output shape —
// as one arena row.
func (a *RowArena) AppendJoin(left, right Row, keep []int) {
	start := len(a.buf)
	a.buf = append(a.buf, left...)
	for _, i := range keep {
		a.buf = append(a.buf, right[i])
	}
	a.seal(start)
}

// AppendJoinPruned emits left[lKeep] ++ right[rKeep] — the hash-join
// output shape with fused column pruning — as one arena row.
func (a *RowArena) AppendJoinPruned(left, right Row, lKeep, rKeep []int) {
	start := len(a.buf)
	for _, i := range lKeep {
		a.buf = append(a.buf, left[i])
	}
	for _, i := range rKeep {
		a.buf = append(a.buf, right[i])
	}
	a.seal(start)
}

// AppendConcat emits x ++ y (the cartesian-product shape) as one
// arena row.
func (a *RowArena) AppendConcat(x, y Row) {
	start := len(a.buf)
	a.buf = append(a.buf, x...)
	a.buf = append(a.buf, y...)
	a.seal(start)
}

// AppendCopy emits a copy of r, which the caller may reuse as scratch.
func (a *RowArena) AppendCopy(r Row) {
	start := len(a.buf)
	a.buf = append(a.buf, r...)
	a.seal(start)
}

// AppendProjected emits r's columns at idx, in idx order.
func (a *RowArena) AppendProjected(r Row, idx []int) {
	start := len(a.buf)
	for _, j := range idx {
		a.buf = append(a.buf, r[j])
	}
	a.seal(start)
}

// Len returns the number of rows emitted so far.
func (a *RowArena) Len() int { return len(a.rows) }

// Rows returns the emitted rows. The arena must not be appended to
// afterwards.
func (a *RowArena) Rows() []Row { return a.rows }
