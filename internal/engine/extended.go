package engine

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/rdf"
)

// This file holds the extended-surface operators: left outer join
// (OPTIONAL), n-ary union (UNION), top-K (ORDER BY/LIMIT fused) and
// hash aggregation (GROUP BY with COUNT). They reuse the hash-join
// core (joinLayout, joinIndex, RowArena) so their output rows share
// the exact representation and emission order of the inner-join
// operators, which is what keeps the materialized and streaming
// executors byte-identical.

// AggCount describes one COUNT aggregate output column: Var is the
// counted variable ("" means COUNT(*), counting rows), As the output
// column name.
type AggCount struct {
	Var string
	As  string
}

// LeftJoin performs a left outer join on the shared columns: every
// left row appears in the output, padded with NullID in the right-only
// columns when no right row matches. The right (optional) side is
// always the build side — broadcast to every worker like a broadcast
// hash join — so unmatched left rows are detectable during the probe.
// Zero shared columns are rejected: the planner validates OPTIONAL
// groups against it, and an outer cartesian product has no sensible
// null-extension semantics here.
func (e *Exec) LeftJoin(left, right *Relation, name string) (*Relation, error) {
	shared := left.schema.Shared(right.schema)
	if len(shared) == 0 {
		return nil, fmt.Errorf("engine: left join %s has no shared columns (%v vs %v)", name, left.schema, right.schema)
	}
	outSchema, _, rKeep := joinLayout(left.schema, right.schema, shared, nil)
	buildKey := keyIndexes(right.schema, shared)
	probeKey := keyIndexes(left.schema, shared)
	jp := NewJoinProbe(right.Rows(), buildKey)
	nullRight := make(Row, len(right.schema))
	buildBytes := right.EstimatedBytes()
	workers := e.Cluster.Workers()
	out := make([][]Row, left.Partitions())
	err := e.Cluster.RunStage(e.Clock, e.launchBroadcast(), "left join "+name, left.Partitions(), func(p int) (cluster.TaskStats, error) {
		out[p] = jp.ProbeOuter(left.Part(p), probeKey, len(outSchema), rKeep, nullRight)
		st := cluster.TaskStats{Rows: int64(len(left.Part(p)) + len(out[p]))}
		// One build-side copy per worker, paid by its first task.
		if p < workers {
			st.NetBytes = buildBytes
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: outSchema, parts: out, partCols: survivingCols(left.partCols, outSchema)}, nil
}

// ProbeOuter emits the left outer join of probeRows (the left side)
// against the indexed build side (the right side), preserving
// probe-row order: matched rows go through the same AppendJoin path as
// Probe, and a probe row with no match emits once, padded with
// nullRight in the right-only columns.
func (jp *JoinProbe) ProbeOuter(probeRows []Row, probeKey []int, outWidth int, rKeep []int, nullRight Row) []Row {
	ix := jp.ix
	arena := NewRowArena(outWidth, len(probeRows))
	for _, pr := range probeRows {
		matched := false
		for i := ix.first(pr, probeKey); i != 0; i = ix.next[i-1] {
			if !ix.match(i, pr, probeKey) {
				continue
			}
			arena.AppendJoin(pr, ix.rows[i-1], rKeep)
			matched = true
		}
		if !matched {
			arena.AppendJoin(pr, nullRight, rKeep)
		}
	}
	return arena.Rows()
}

// UnionAll concatenates relations with identical schemas, keeping each
// input's partitions as-is (the output has the sum of the inputs'
// partition counts). Like Rename it is metadata-only — no rows move,
// so nothing is charged; downstream operators shuffle as needed.
func (e *Exec) UnionAll(rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("engine: union of zero relations")
	}
	s := rels[0].schema
	for _, r := range rels[1:] {
		if len(r.schema) != len(s) {
			return nil, fmt.Errorf("engine: union schema mismatch %v vs %v", s, r.schema)
		}
		for i := range s {
			if r.schema[i] != s[i] {
				return nil, fmt.Errorf("engine: union schema mismatch %v vs %v", s, r.schema)
			}
		}
	}
	var parts [][]Row
	for _, r := range rels {
		parts = append(parts, r.parts...)
	}
	return &Relation{schema: s.Clone(), parts: parts}, nil
}

// TopK orders the relation by less and keeps rows [offset,
// offset+limit). Each partition pre-sorts locally and forwards only
// its first offset+limit rows — the top-K pushdown below the exchange
// — so the transfer (and its NetBytes charge) shrinks with the limit;
// the driver merges the per-partition survivors and applies the final
// offset/limit slice. A negative limit keeps every row (a plain
// ORDER BY). less must be a strict total order for the output to be
// deterministic across partitionings; it is called concurrently from
// partition tasks and must be safe for that. The result is a
// single-partition relation in sorted order.
func (e *Exec) TopK(rel *Relation, less func(a, b Row) bool, limit, offset int) (*Relation, error) {
	if offset < 0 {
		offset = 0
	}
	k := -1
	if limit >= 0 {
		k = offset + limit
	}
	n := rel.Partitions()
	kept := make([][]Row, n)
	width := int64(len(rel.schema))
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "topk", n, func(p int) (cluster.TaskStats, error) {
		in := rel.Part(p)
		sorted := make([]Row, len(in))
		copy(sorted, in)
		sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		if k >= 0 && k < len(sorted) {
			sorted = sorted[:k]
		}
		kept[p] = sorted
		return cluster.TaskStats{
			Rows:     int64(len(in)),
			NetBytes: int64(len(sorted)) * width * bytesPerValue,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var all []Row
	for _, rows := range kept {
		all = append(all, rows...)
	}
	sort.SliceStable(all, func(i, j int) bool { return less(all[i], all[j]) })
	if offset > 0 {
		if offset >= len(all) {
			all = nil
		} else {
			all = all[offset:]
		}
	}
	if limit >= 0 && limit < len(all) {
		all = all[:limit]
	}
	return &Relation{schema: rel.schema.Clone(), parts: [][]Row{all}}, nil
}

// Aggregate hash-groups the relation on groupCols and appends one
// COUNT column per entry of counts: COUNT(?v) counts rows where ?v is
// bound (non-NullID), COUNT(*) counts all rows. Count cells hold the
// raw count as an rdf.ID — NOT a dictionary ID — so callers decoding
// result rows must treat the count columns numerically. The output is
// a single partition sorted by raw ID order (group keys are unique,
// so the order is total), which both executors share. The stage is
// priced as a full shuffle: every input row moves to meet its group.
func (e *Exec) Aggregate(rel *Relation, groupCols []string, counts []AggCount) (*Relation, error) {
	gIdx := make([]int, len(groupCols))
	for i, c := range groupCols {
		j := rel.schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("engine: group column %q not in schema %v", c, rel.schema)
		}
		gIdx[i] = j
	}
	cIdx := make([]int, len(counts))
	for i, c := range counts {
		if c.Var == "" {
			cIdx[i] = -1
			continue
		}
		j := rel.schema.Index(c.Var)
		if j < 0 {
			return nil, fmt.Errorf("engine: counted column %q not in schema %v", c.Var, rel.schema)
		}
		cIdx[i] = j
	}
	outSchema := make(Schema, 0, len(groupCols)+len(counts))
	outSchema = append(outSchema, groupCols...)
	for _, c := range counts {
		outSchema = append(outSchema, c.As)
	}

	index := map[string]int{}
	var groupRows []Row
	var groupCounts [][]rdf.ID
	var kb []byte
	for p := 0; p < rel.Partitions(); p++ {
		for _, r := range rel.Part(p) {
			kb = kb[:0]
			for _, j := range gIdx {
				v := r[j]
				kb = append(kb, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			gi, ok := index[string(kb)]
			if !ok {
				gi = len(groupRows)
				index[string(kb)] = gi
				gr := make(Row, len(gIdx))
				for i, j := range gIdx {
					gr[i] = r[j]
				}
				groupRows = append(groupRows, gr)
				groupCounts = append(groupCounts, make([]rdf.ID, len(counts)))
			}
			for ci, j := range cIdx {
				if j < 0 || r[j] != rdf.NullID {
					groupCounts[gi][ci]++
				}
			}
		}
	}
	out := make([]Row, len(groupRows))
	for i, gr := range groupRows {
		row := make(Row, 0, len(gr)+len(counts))
		row = append(row, gr...)
		row = append(row, groupCounts[i]...)
		out[i] = row
	}
	sort.Slice(out, func(i, j int) bool { return lessRows(out[i], out[j]) })

	width := int64(len(rel.schema))
	err := e.Cluster.RunStage(e.Clock, e.Launch(true), "aggregate", rel.Partitions(), func(p int) (cluster.TaskStats, error) {
		rows := int64(len(rel.Part(p)))
		return cluster.TaskStats{Rows: rows, NetBytes: rows * width * bytesPerValue}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Relation{schema: outSchema, parts: [][]Row{out}}, nil
}

// LessRowsID is the engine's canonical raw-ID row order (column-wise
// by dictionary ID, shorter rows first) — the deterministic total
// order imposed on limited, unordered results so LIMIT without
// ORDER BY returns the same rows under every plan and partitioning.
func LessRowsID(a, b Row) bool { return lessRows(a, b) }
