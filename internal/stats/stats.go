// Package stats computes the loader-time statistics PRoST's
// statistics-based optimizer consumes (paper §3.3): the total number of
// triples per predicate and the number of distinct subjects per
// predicate, plus the distinct-object counts used by the inverse
// Property Table extension. The counts are exact and are gathered in one
// pass over the encoded triples, mirroring the paper's claim that they
// are "calculated during the loading phase without any significant
// overhead".
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Predicate holds the per-predicate statistics.
type Predicate struct {
	// Triples is the number of triples using this predicate.
	Triples int64
	// DistinctSubjects is the number of distinct subjects appearing
	// with this predicate.
	DistinctSubjects int64
	// DistinctObjects is the number of distinct objects appearing with
	// this predicate.
	DistinctObjects int64
	// MultiValued reports whether some subject has more than one object
	// under this predicate — such predicates become list columns in the
	// Property Table.
	MultiValued bool
}

// SubjectsPerTriple returns DistinctSubjects/Triples, the selectivity
// adjustment of the paper's priority formula (≈1 means nearly one triple
// per subject; small values mean heavy fan-out).
func (p Predicate) SubjectsPerTriple() float64 {
	if p.Triples == 0 {
		return 1
	}
	return float64(p.DistinctSubjects) / float64(p.Triples)
}

// Collection is the full statistics bundle for one loaded dataset.
type Collection struct {
	// ByPredicate maps predicate IDs to their statistics.
	ByPredicate map[rdf.ID]*Predicate
	// TotalTriples is the dataset's triple count after deduplication.
	TotalTriples int64
	// DistinctSubjects is the dataset-wide distinct subject count.
	DistinctSubjects int64
	// DistinctObjects is the dataset-wide distinct object count.
	DistinctObjects int64
	// Joins holds the join-graph statistics (characteristic sets and
	// two-predicate join sketches); nil when only the per-predicate
	// counts were collected (plain Collect, or CollectJoinStats with
	// everything disabled).
	Joins *JoinStats
}

// Collect computes the statistics in one pass.
func Collect(triples []rdf.EncodedTriple) *Collection {
	c := &Collection{ByPredicate: make(map[rdf.ID]*Predicate)}
	type pair struct{ a, b rdf.ID }
	subjSeen := make(map[pair]struct{})
	objSeen := make(map[pair]struct{})
	allSubj := make(map[rdf.ID]struct{})
	allObj := make(map[rdf.ID]struct{})
	for _, t := range triples {
		ps, ok := c.ByPredicate[t.P]
		if !ok {
			ps = &Predicate{}
			c.ByPredicate[t.P] = ps
		}
		ps.Triples++
		sk := pair{t.P, t.S}
		if _, dup := subjSeen[sk]; !dup {
			subjSeen[sk] = struct{}{}
			ps.DistinctSubjects++
		} else {
			ps.MultiValued = true
		}
		ok2 := pair{t.P, t.O}
		if _, dup := objSeen[ok2]; !dup {
			objSeen[ok2] = struct{}{}
			ps.DistinctObjects++
		}
		allSubj[t.S] = struct{}{}
		allObj[t.O] = struct{}{}
	}
	c.TotalTriples = int64(len(triples))
	c.DistinctSubjects = int64(len(allSubj))
	c.DistinctObjects = int64(len(allObj))
	return c
}

// Fingerprint returns a content hash of the collection: two
// collections computed from the same data fingerprint identically, and
// any change to a count changes the hash with overwhelming
// probability. Plan caches key on it so cached plans are invalidated
// the moment the loader statistics they were priced with change.
func (c *Collection) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(c.TotalTriples))
	mix(uint64(c.DistinctSubjects))
	mix(uint64(c.DistinctObjects))
	preds := make([]rdf.ID, 0, len(c.ByPredicate))
	for p := range c.ByPredicate {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	for _, p := range preds {
		ps := c.ByPredicate[p]
		mix(uint64(p))
		mix(uint64(ps.Triples))
		mix(uint64(ps.DistinctSubjects))
		mix(uint64(ps.DistinctObjects))
		if ps.MultiValued {
			mix(1)
		} else {
			mix(0)
		}
	}
	c.Joins.fingerprint(mix)
	return h
}

// Predicate returns the stats for a predicate; absent predicates return
// a zero-valued entry (the predicate simply does not occur).
func (c *Collection) Predicate(p rdf.ID) Predicate {
	if ps, ok := c.ByPredicate[p]; ok {
		return *ps
	}
	return Predicate{}
}

// Summary renders a human-readable table of the statistics, sorted by
// descending triple count, resolving predicate names through dict.
func (c *Collection) Summary(dict *rdf.Dictionary) string {
	type row struct {
		name string
		p    Predicate
	}
	rows := make([]row, 0, len(c.ByPredicate))
	for id, ps := range c.ByPredicate {
		rows = append(rows, row{dict.Term(id).Value, *ps})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p.Triples != rows[j].p.Triples {
			return rows[i].p.Triples > rows[j].p.Triples
		}
		return rows[i].name < rows[j].name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-60s %12s %12s %12s %s\n", "predicate", "triples", "subjects", "objects", "multi")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-60s %12d %12d %12d %v\n",
			r.name, r.p.Triples, r.p.DistinctSubjects, r.p.DistinctObjects, r.p.MultiValued)
	}
	fmt.Fprintf(&sb, "total: %d triples, %d distinct subjects, %d distinct objects\n",
		c.TotalTriples, c.DistinctSubjects, c.DistinctObjects)
	if js, ok := c.JoinStatsSummary(); ok {
		fmt.Fprintf(&sb, "join stats: %d characteristic sets, %d/%d pair sketches kept (top-%d, %.1f%% of join volume), ~%d bytes\n",
			js.CSets, js.SketchPairs, js.CandidatePairs, js.TopK, 100*js.VolumeCoverage, js.MemoryBytes)
	}
	return sb.String()
}
