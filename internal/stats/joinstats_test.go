package stats

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// joinFixture builds a small graph with known join cardinalities:
//
//	subjects 1,2 emit {a,b}; subject 3 emits {a,a,c} (a twice).
//	predicate a: (1,a,10) (2,a,10) (3,a,11) (3,a,12)
//	predicate b: (1,b,10) (2,b,20)
//	predicate c: (3,c,10)
const (
	pA rdf.ID = 100
	pB rdf.ID = 101
	pC rdf.ID = 102
)

func joinFixture() []rdf.EncodedTriple {
	return enc(
		[3]rdf.ID{1, pA, 10},
		[3]rdf.ID{2, pA, 10},
		[3]rdf.ID{3, pA, 11},
		[3]rdf.ID{3, pA, 12},
		[3]rdf.ID{1, pB, 10},
		[3]rdf.ID{2, pB, 20},
		[3]rdf.ID{3, pC, 10},
	)
}

func fullStats(t *testing.T) *Collection {
	t.Helper()
	return CollectJoinStats(joinFixture(), Config{CSets: true})
}

func TestCharacteristicSets(t *testing.T) {
	c := fullStats(t)
	if c.Joins == nil {
		t.Fatalf("join stats not collected")
	}
	// Two csets: {a,b} with 2 subjects (1 triple each per predicate) and
	// {a,c} with 1 subject (a twice).
	if len(c.Joins.CSets) != 2 {
		t.Fatalf("csets = %d, want 2: %+v", len(c.Joins.CSets), c.Joins.CSets)
	}
	ab := c.Joins.CSets[0] // sorted by count desc
	if ab.Count != 2 || len(ab.Preds) != 2 || ab.Preds[0] != pA || ab.Preds[1] != pB {
		t.Errorf("cset[0] = %+v, want {a,b} count 2", ab)
	}
	if ab.Triples[0] != 2 || ab.Triples[1] != 2 {
		t.Errorf("cset{a,b} triples = %v, want [2 2]", ab.Triples)
	}
	ac := c.Joins.CSets[1]
	if ac.Count != 1 || ac.Preds[0] != pA || ac.Preds[1] != pC || ac.Triples[0] != 2 {
		t.Errorf("cset[1] = %+v, want {a,c} count 1 with a-triples 2", ac)
	}
}

func TestStarEstimateExactOnStars(t *testing.T) {
	c := fullStats(t)
	// Star {a,b}: subjects 1 and 2 each contribute deg_a·deg_b = 1 → 2.
	subj, rows, ok := c.StarEstimate([]rdf.ID{pA, pB})
	if !ok || subj != 2 || rows != 2 {
		t.Errorf("StarEstimate(a,b) = (%g, %g, %v), want (2, 2, true)", subj, rows, ok)
	}
	// Star {a,c}: subject 3 contributes deg_a·deg_c = 2·1 = 2.
	subj, rows, ok = c.StarEstimate([]rdf.ID{pA, pC})
	if !ok || subj != 1 || rows != 2 {
		t.Errorf("StarEstimate(a,c) = (%g, %g, %v), want (1, 2, true)", subj, rows, ok)
	}
	// Star {a}: every subject; rows = a's triple count.
	subj, rows, ok = c.StarEstimate([]rdf.ID{pA})
	if !ok || subj != 3 || rows != 4 {
		t.Errorf("StarEstimate(a) = (%g, %g, %v), want (3, 4, true)", subj, rows, ok)
	}
	// Star {b,c}: no subject emits both — exact zero.
	subj, rows, ok = c.StarEstimate([]rdf.ID{pB, pC})
	if !ok || subj != 0 || rows != 0 {
		t.Errorf("StarEstimate(b,c) = (%g, %g, %v), want (0, 0, true)", subj, rows, ok)
	}
	// Repeated predicate: {a,a} multiplies a's mean multiplicity twice:
	// cset{a,b}: 2·1·1 = 2; cset{a,c}: 1·2·2 = 4 → 6.
	_, rows, ok = c.StarEstimate([]rdf.ID{pA, pA})
	if !ok || rows != 6 {
		t.Errorf("StarEstimate(a,a) = %g, want 6", rows)
	}
}

func TestPairSketchCardinalities(t *testing.T) {
	c := fullStats(t)
	cases := []struct {
		p1, p2     rdf.ID
		pos        JoinPos
		join, keys float64
	}{
		// s-s a⋈b: subjects 1,2 each 1·1 → join 2, keys 2.
		{pA, pB, JoinSS, 2, 2},
		// s-s order-independent.
		{pB, pA, JoinSS, 2, 2},
		// s-s a⋈a self-pair: 1+1+4 = 6 over 3 subjects.
		{pA, pA, JoinSS, 6, 3},
		// o-o a⋈b: object 10 has deg_a 2, deg_b 1 → 2; key count 1.
		{pA, pB, JoinOO, 2, 1},
		// s-o: subject keys of a that appear as objects of a... none.
		// Subject 1..3 never appear as objects, so a s-o a is empty —
		// exact zero with ok=true.
		{pA, pA, JoinSO, 0, 0},
	}
	for _, tt := range cases {
		join, keys, ok := c.PairJoin(uint64(tt.p1), uint64(tt.p2), uint8(tt.pos))
		if !ok || join != tt.join || keys != tt.keys {
			t.Errorf("PairJoin(%d,%d,%v) = (%g, %g, %v), want (%g, %g, true)",
				tt.p1, tt.p2, tt.pos, join, keys, ok, tt.join, tt.keys)
		}
	}
	// Unknown predicate: fall back to independence.
	if _, _, ok := c.PairJoin(9999, uint64(pA), uint8(JoinSS)); ok {
		t.Errorf("PairJoin with unknown predicate reported ok")
	}
	// JoinOS is the transposed JoinSO: o-s b⋈? — object 10 of a joins
	// subject... no subject is 10, so exact zero again; just check the
	// transposition is consistent.
	j1, k1, ok1 := c.PairJoin(uint64(pA), uint64(pB), uint8(JoinSO))
	j2, k2, ok2 := c.PairJoin(uint64(pB), uint64(pA), uint8(JoinOS))
	if j1 != j2 || k1 != k2 || ok1 != ok2 {
		t.Errorf("SO(a,b)=(%g,%g,%v) != OS(b,a)=(%g,%g,%v)", j1, k1, ok1, j2, k2, ok2)
	}
}

func TestTopKTrimFallsBackToIndependence(t *testing.T) {
	// Keep only the single largest pair: everything else must report
	// ok=false (the independence fallback), never a fake zero.
	c := CollectJoinStats(joinFixture(), Config{SketchTopK: 1})
	// a⋈a s-s (join 6) is the volume leader and must be kept.
	if join, _, ok := c.PairJoin(uint64(pA), uint64(pA), uint8(JoinSS)); !ok || join != 6 {
		t.Fatalf("top-1 sketch lost the largest pair: (%g, %v)", join, ok)
	}
	// a⋈b s-s was a candidate but is trimmed → independence fallback.
	if _, _, ok := c.PairJoin(uint64(pA), uint64(pB), uint8(JoinSS)); ok {
		t.Errorf("trimmed pair reported a sketch value instead of falling back")
	}
	// b⋈c s-s never co-occurs → still an exact zero.
	if join, _, ok := c.PairJoin(uint64(pB), uint64(pC), uint8(JoinSS)); !ok || join != 0 {
		t.Errorf("never-co-occurring pair = (%g, %v), want exact zero", join, ok)
	}
	sum, ok := c.JoinStatsSummary()
	if !ok || sum.SketchPairs != 1 || sum.CandidatePairs <= 1 {
		t.Errorf("summary = %+v, want 1 kept of several candidates", sum)
	}
	if sum.VolumeCoverage <= 0 || sum.VolumeCoverage >= 1 {
		t.Errorf("volume coverage = %g, want in (0,1) after trimming", sum.VolumeCoverage)
	}
}

func TestSketchesDisabledFallBack(t *testing.T) {
	c := CollectJoinStats(joinFixture(), Config{CSets: true, SketchTopK: -1})
	if _, _, ok := c.PairJoin(uint64(pA), uint64(pB), uint8(JoinSS)); ok {
		t.Errorf("disabled sketches still answered a pair lookup")
	}
	if _, _, ok := c.StarEstimate([]rdf.ID{pA, pB}); !ok {
		t.Errorf("csets disabled although requested")
	}
	// A cset-only collection reports zero sketch coverage — no pair
	// lookup can succeed, so the summary must not claim 100%.
	if js, ok := c.JoinStatsSummary(); !ok || js.VolumeCoverage != 0 || js.SketchPairs != 0 {
		t.Errorf("cset-only summary = %+v (ok=%v), want zero sketch coverage", js, ok)
	}
	// Plain Collect keeps Joins nil and both lookups fall back.
	plain := Collect(joinFixture())
	if plain.Joins != nil {
		t.Fatalf("Collect attached join stats")
	}
	if _, _, ok := plain.StarEstimate([]rdf.ID{pA}); ok {
		t.Errorf("plain collection answered a star estimate")
	}
}

func TestFingerprintSensitiveToJoinStats(t *testing.T) {
	base := Collect(joinFixture()).Fingerprint()
	full := fullStats(t).Fingerprint()
	csetOnly := CollectJoinStats(joinFixture(), Config{CSets: true, SketchTopK: -1}).Fingerprint()
	trimmed := CollectJoinStats(joinFixture(), Config{CSets: true, SketchTopK: 1}).Fingerprint()
	seen := map[uint64]string{base: "base"}
	for name, fp := range map[string]uint64{"full": full, "csetOnly": csetOnly, "trimmed": trimmed} {
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between %s and %s", prev, name)
		}
		seen[fp] = name
	}
	// Same config, same data → identical fingerprints.
	again := CollectJoinStats(joinFixture(), Config{CSets: true}).Fingerprint()
	if again != full {
		t.Errorf("fingerprint not deterministic: %x vs %x", again, full)
	}
}

func TestSummaryReportsJoinStats(t *testing.T) {
	d := rdf.NewDictionary()
	s := d.Encode(rdf.NewIRI("http://s"))
	p := d.Encode(rdf.NewIRI("http://example.org/follows"))
	o := d.Encode(rdf.NewIRI("http://o"))
	c := CollectJoinStats([]rdf.EncodedTriple{{S: s, P: p, O: o}}, Config{CSets: true})
	sum := c.Summary(d)
	if !strings.Contains(sum, "join stats:") || !strings.Contains(sum, "characteristic sets") {
		t.Errorf("summary missing join-stats block:\n%s", sum)
	}
	js, ok := c.JoinStatsSummary()
	if !ok || js.CSets != 1 || js.MemoryBytes <= 0 {
		t.Errorf("JoinStatsSummary = %+v, %v", js, ok)
	}
}
