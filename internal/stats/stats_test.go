package stats

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// enc builds encoded triples from int IDs for compact fixtures.
func enc(spo ...[3]rdf.ID) []rdf.EncodedTriple {
	out := make([]rdf.EncodedTriple, len(spo))
	for i, t := range spo {
		out[i] = rdf.EncodedTriple{S: t[0], P: t[1], O: t[2]}
	}
	return out
}

func TestCollectBasicCounts(t *testing.T) {
	// predicate 100: subjects {1,2}, objects {10, 11, 12}; subject 1 has
	// two objects (multi-valued).
	// predicate 200: subjects {1}, objects {20}.
	c := Collect(enc(
		[3]rdf.ID{1, 100, 10},
		[3]rdf.ID{1, 100, 11},
		[3]rdf.ID{2, 100, 12},
		[3]rdf.ID{1, 200, 20},
	))
	if c.TotalTriples != 4 {
		t.Errorf("TotalTriples = %d, want 4", c.TotalTriples)
	}
	p100 := c.Predicate(100)
	if p100.Triples != 3 || p100.DistinctSubjects != 2 || p100.DistinctObjects != 3 {
		t.Errorf("p100 = %+v", p100)
	}
	if !p100.MultiValued {
		t.Errorf("p100 not detected as multi-valued")
	}
	p200 := c.Predicate(200)
	if p200.Triples != 1 || p200.MultiValued {
		t.Errorf("p200 = %+v", p200)
	}
	if c.DistinctSubjects != 2 {
		t.Errorf("DistinctSubjects = %d, want 2", c.DistinctSubjects)
	}
	if c.DistinctObjects != 4 {
		t.Errorf("DistinctObjects = %d, want 4", c.DistinctObjects)
	}
}

func TestPredicateAbsent(t *testing.T) {
	c := Collect(nil)
	p := c.Predicate(42)
	if p.Triples != 0 || p.MultiValued {
		t.Errorf("absent predicate = %+v, want zero value", p)
	}
	if p.SubjectsPerTriple() != 1 {
		t.Errorf("zero-triple SubjectsPerTriple = %v, want 1", p.SubjectsPerTriple())
	}
}

func TestSubjectsPerTriple(t *testing.T) {
	c := Collect(enc(
		[3]rdf.ID{1, 100, 10},
		[3]rdf.ID{1, 100, 11},
		[3]rdf.ID{1, 100, 12},
		[3]rdf.ID{2, 100, 13},
	))
	got := c.Predicate(100).SubjectsPerTriple()
	if got != 0.5 {
		t.Errorf("SubjectsPerTriple = %v, want 0.5", got)
	}
}

func TestSameObjectDifferentPredicates(t *testing.T) {
	// Distinct-object counting is per predicate.
	c := Collect(enc(
		[3]rdf.ID{1, 100, 10},
		[3]rdf.ID{1, 200, 10},
	))
	if c.Predicate(100).DistinctObjects != 1 || c.Predicate(200).DistinctObjects != 1 {
		t.Errorf("per-predicate object counts wrong")
	}
	if c.DistinctObjects != 1 {
		t.Errorf("global DistinctObjects = %d, want 1", c.DistinctObjects)
	}
}

func TestSummary(t *testing.T) {
	d := rdf.NewDictionary()
	s := d.Encode(rdf.NewIRI("http://s"))
	p := d.Encode(rdf.NewIRI("http://example.org/follows"))
	o := d.Encode(rdf.NewIRI("http://o"))
	c := Collect([]rdf.EncodedTriple{{S: s, P: p, O: o}})
	sum := c.Summary(d)
	if !strings.Contains(sum, "http://example.org/follows") {
		t.Errorf("summary missing predicate name:\n%s", sum)
	}
	if !strings.Contains(sum, "total: 1 triples") {
		t.Errorf("summary missing totals:\n%s", sum)
	}
}
