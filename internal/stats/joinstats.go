// Join-graph statistics: characteristic sets and two-predicate join
// sketches, collected in the same loading pass as the per-predicate
// counts. They exist to price exactly the joins the independence
// assumption misprices — correlated predicate pairs (likes ⋈ likes
// triangles) and subject stars — before the first execution, so the
// adaptive re-planner only has to catch what these statistics cannot
// express.
//
// Estimator precedence (documented contract, enforced by the accuracy
// harness in internal/plan): characteristic sets price subject stars,
// pair sketches price two-predicate joins sharing a position, and
// everything else falls back to the textbook independence assumption.
// A predicate pair outside the kept top-K also falls back to
// independence; pairs that never share a key are known-empty and are
// reported as an exact zero.
package stats

import (
	"sort"

	"repro/internal/rdf"
)

// DefaultSketchTopK bounds the pair sketches kept when Config.SketchTopK
// is zero. WatDiv-scale vocabularies produce a few hundred co-occurring
// pairs, so the default keeps full coverage there while bounding memory
// on datasets with quadratic pair blowup.
const DefaultSketchTopK = 512

// JoinPos identifies which position of each pattern in an ordered
// predicate pair (p1, p2) carries the shared join key. The numeric
// values are a cross-package contract: internal/plan's PairPos uses the
// same encoding.
type JoinPos uint8

// Join positions.
const (
	// JoinSS joins p1's subject with p2's subject.
	JoinSS JoinPos = iota
	// JoinSO joins p1's subject with p2's object.
	JoinSO
	// JoinOS joins p1's object with p2's subject.
	JoinOS
	// JoinOO joins p1's object with p2's object.
	JoinOO
)

// String implements fmt.Stringer.
func (p JoinPos) String() string {
	switch p {
	case JoinSS:
		return "s-s"
	case JoinSO:
		return "s-o"
	case JoinOS:
		return "o-s"
	default:
		return "o-o"
	}
}

// Config selects which join-graph statistics CollectJoinStats gathers
// on top of the per-predicate counts.
type Config struct {
	// CSets enables characteristic sets (per distinct predicate-set
	// emitted by a subject: occurrence count and per-predicate mean
	// multiplicity).
	CSets bool
	// SketchTopK bounds the two-predicate join sketches kept: 0 uses
	// DefaultSketchTopK, negative disables pair sketches entirely.
	SketchTopK int
}

// CharacteristicSet records one distinct predicate combination emitted
// by subjects: how many subjects emit exactly this set, and how many
// triples those subjects emit per predicate (so Triples[i]/Count is the
// mean multiplicity of Preds[i] within the set).
type CharacteristicSet struct {
	// Preds is the predicate set, sorted ascending by ID.
	Preds []rdf.ID
	// Count is the number of subjects whose predicate set is exactly
	// Preds.
	Count int64
	// Triples holds, parallel to Preds, the total triples these subjects
	// emit with each predicate.
	Triples []int64
}

// pairKey identifies one ordered predicate pair at one join position,
// in canonical form: JoinSS and JoinOO entries keep p1 <= p2 (they are
// symmetric) and JoinOS is stored as the transposed JoinSO.
type pairKey struct {
	p1, p2 rdf.ID
	pos    JoinPos
}

// canonicalPair normalizes a (p1, p2, pos) query to its stored form.
func canonicalPair(p1, p2 rdf.ID, pos JoinPos) pairKey {
	switch pos {
	case JoinSS, JoinOO:
		if p2 < p1 {
			p1, p2 = p2, p1
		}
		return pairKey{p1, p2, pos}
	case JoinOS:
		return pairKey{p2, p1, JoinSO}
	default:
		return pairKey{p1, p2, JoinSO}
	}
}

// CanonicalPair normalizes an ordered (p1, p2, pos) predicate pair to
// the canonical form the sketch store (and the workload model's pair
// accounting) key by: symmetric positions keep p1 <= p2 and o-s is
// stored as the transposed s-o. The workload layer uses it so that the
// same physical join observed from either side accumulates into one
// counter.
func CanonicalPair(p1, p2 rdf.ID, pos JoinPos) (q1, q2 rdf.ID, qpos JoinPos) {
	k := canonicalPair(p1, p2, pos)
	return k.p1, k.p2, k.pos
}

// Transpose returns the join position as seen from the other side of
// the pair: s-o becomes o-s and the symmetric positions are unchanged.
func (p JoinPos) Transpose() JoinPos {
	switch p {
	case JoinSO:
		return JoinOS
	case JoinOS:
		return JoinSO
	default:
		return p
	}
}

// PairSketch is the sketch for one predicate pair at one join
// position: the exact join cardinality and the number of distinct key
// values both sides share.
type PairSketch struct {
	// Join is Σ over shared keys v of deg_p1(v) · deg_p2(v) — the exact
	// cardinality of the two-pattern join at this position.
	Join int64
	// Keys is the number of distinct key values appearing on both sides.
	Keys int64
}

// JoinStats bundles the join-graph statistics of one collection.
type JoinStats struct {
	// CSets lists the characteristic sets, sorted by descending Count
	// (ties by predicate list) for deterministic iteration.
	CSets []CharacteristicSet
	// TopK is the resolved sketch bound the collection was built with
	// (0 when sketches are disabled).
	TopK int

	// byPred maps a predicate to the indexes of the CSets containing it.
	byPred map[rdf.ID][]int
	// sketches holds the kept (top-K) pair sketches.
	sketches map[pairKey]PairSketch
	// candidates marks every pair with Join > 0 seen before the top-K
	// trim, so lookups can tell "trimmed, fall back to independence"
	// from "never co-occurs, exact zero".
	candidates map[pairKey]struct{}
	// keptVolume and totalVolume sum the join cardinalities of the kept
	// sketches and of all candidates, for coverage reporting.
	keptVolume, totalVolume float64
}

// CollectJoinStats computes the per-predicate statistics plus the
// join-graph statistics selected by cfg, in one pass over the encoded
// triples (plus one pass over the per-key groups).
func CollectJoinStats(triples []rdf.EncodedTriple, cfg Config) *Collection {
	c := Collect(triples)
	if !cfg.CSets && cfg.SketchTopK < 0 {
		return c
	}
	j := &JoinStats{}

	// Group degrees by key once; characteristic sets read the subject
	// side, sketches read both. The object side is skipped entirely
	// when pair sketches are disabled — csets never consume it.
	subjDeg := make(map[rdf.ID]map[rdf.ID]int64)
	var objDeg map[rdf.ID]map[rdf.ID]int64
	if cfg.SketchTopK >= 0 {
		objDeg = make(map[rdf.ID]map[rdf.ID]int64)
	}
	for _, t := range triples {
		sd := subjDeg[t.S]
		if sd == nil {
			sd = make(map[rdf.ID]int64, 4)
			subjDeg[t.S] = sd
		}
		sd[t.P]++
		if objDeg != nil {
			od := objDeg[t.O]
			if od == nil {
				od = make(map[rdf.ID]int64, 2)
				objDeg[t.O] = od
			}
			od[t.P]++
		}
	}

	if cfg.CSets {
		j.collectCSets(subjDeg)
	}
	if cfg.SketchTopK >= 0 {
		topK := cfg.SketchTopK
		if topK == 0 {
			topK = DefaultSketchTopK
		}
		j.collectSketches(subjDeg, objDeg, topK)
	}
	c.Joins = j
	return c
}

// collectCSets derives the characteristic sets from the per-subject
// predicate degrees.
func (j *JoinStats) collectCSets(subjDeg map[rdf.ID]map[rdf.ID]int64) {
	type accum struct {
		count   int64
		triples map[rdf.ID]int64
	}
	sets := make(map[string]*accum)
	keyOf := make(map[string][]rdf.ID)
	var keyBuf []byte
	for _, degs := range subjDeg {
		preds := make([]rdf.ID, 0, len(degs))
		for p := range degs {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(a, b int) bool { return preds[a] < preds[b] })
		keyBuf = keyBuf[:0]
		for _, p := range preds {
			keyBuf = append(keyBuf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		k := string(keyBuf)
		a := sets[k]
		if a == nil {
			a = &accum{triples: make(map[rdf.ID]int64, len(preds))}
			sets[k] = a
			keyOf[k] = preds
		}
		a.count++
		for p, d := range degs {
			a.triples[p] += d
		}
	}

	j.CSets = make([]CharacteristicSet, 0, len(sets))
	for k, a := range sets {
		preds := keyOf[k]
		cs := CharacteristicSet{Preds: preds, Count: a.count, Triples: make([]int64, len(preds))}
		for i, p := range preds {
			cs.Triples[i] = a.triples[p]
		}
		j.CSets = append(j.CSets, cs)
	}
	sort.Slice(j.CSets, func(a, b int) bool {
		if j.CSets[a].Count != j.CSets[b].Count {
			return j.CSets[a].Count > j.CSets[b].Count
		}
		return lessPredList(j.CSets[a].Preds, j.CSets[b].Preds)
	})
	j.byPred = make(map[rdf.ID][]int)
	for i, cs := range j.CSets {
		for _, p := range cs.Preds {
			j.byPred[p] = append(j.byPred[p], i)
		}
	}
}

// lessPredList orders predicate lists lexicographically.
func lessPredList(a, b []rdf.ID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// collectSketches enumerates every co-occurring predicate pair per join
// position, computes its exact join cardinality and shared-key count,
// and keeps the top-K pairs by join volume.
func (j *JoinStats) collectSketches(subjDeg, objDeg map[rdf.ID]map[rdf.ID]int64, topK int) {
	j.TopK = topK
	acc := make(map[pairKey]*PairSketch)
	add := func(k pairKey, join int64) {
		s := acc[k]
		if s == nil {
			s = &PairSketch{}
			acc[k] = s
		}
		s.Join += join
		s.Keys++
	}
	for key, sd := range subjDeg {
		// Same-key subject pairs (s-s), including self-pairs: the
		// likes ⋈ likes shape.
		for p1, d1 := range sd {
			for p2, d2 := range sd {
				if p2 < p1 {
					continue
				}
				add(pairKey{p1, p2, JoinSS}, d1*d2)
			}
		}
		// Subject-object pairs (s-o) on the same key value.
		if od := objDeg[key]; od != nil {
			for p1, d1 := range sd {
				for p2, d2 := range od {
					add(pairKey{p1, p2, JoinSO}, d1*d2)
				}
			}
		}
	}
	for _, od := range objDeg {
		for p1, d1 := range od {
			for p2, d2 := range od {
				if p2 < p1 {
					continue
				}
				add(pairKey{p1, p2, JoinOO}, d1*d2)
			}
		}
	}

	j.candidates = make(map[pairKey]struct{}, len(acc))
	keys := make([]pairKey, 0, len(acc))
	for k, s := range acc {
		j.candidates[k] = struct{}{}
		j.totalVolume += float64(s.Join)
		keys = append(keys, k)
	}
	// Top-K by join volume, deterministic tie-break by key.
	sort.Slice(keys, func(a, b int) bool {
		ja, jb := acc[keys[a]].Join, acc[keys[b]].Join
		if ja != jb {
			return ja > jb
		}
		ka, kb := keys[a], keys[b]
		if ka.pos != kb.pos {
			return ka.pos < kb.pos
		}
		if ka.p1 != kb.p1 {
			return ka.p1 < kb.p1
		}
		return ka.p2 < kb.p2
	})
	if len(keys) > topK {
		keys = keys[:topK]
	}
	j.sketches = make(map[pairKey]PairSketch, len(keys))
	for _, k := range keys {
		j.sketches[k] = *acc[k]
		j.keptVolume += float64(acc[k].Join)
	}
}

// StarEstimate prices a subject star (every predicate constraining the
// same subject) from the characteristic sets: subjects is the number
// of subjects whose predicate set contains every listed predicate, and
// rows is the estimated star output Σ over matching sets of
// count · Π mean-multiplicity, with repeated predicates multiplying
// their mean multiplicity once per occurrence. ok is false when
// characteristic sets were not collected; a true return with zero
// counts is exact knowledge that no subject emits the combination.
func (c *Collection) StarEstimate(preds []rdf.ID) (subjects, rows float64, ok bool) {
	j := c.Joins
	if j == nil || len(j.byPred) == 0 {
		return 0, 0, false
	}
	if len(preds) == 0 {
		return 0, 0, false
	}
	// Scan the csets of the rarest predicate only.
	need := make(map[rdf.ID]bool, len(preds))
	for _, p := range preds {
		need[p] = true
	}
	rarest := preds[0]
	for p := range need {
		if len(j.byPred[p]) < len(j.byPred[rarest]) {
			rarest = p
		}
	}
	for _, ci := range j.byPred[rarest] {
		cs := &j.CSets[ci]
		mult := make(map[rdf.ID]float64, len(cs.Preds))
		for i, p := range cs.Preds {
			mult[p] = float64(cs.Triples[i]) / float64(cs.Count)
		}
		contained := true
		for p := range need {
			if _, in := mult[p]; !in {
				contained = false
				break
			}
		}
		if !contained {
			continue
		}
		r := float64(cs.Count)
		for _, p := range preds {
			r *= mult[p]
		}
		subjects += float64(cs.Count)
		rows += r
	}
	return subjects, rows, true
}

// PairJoin implements the planner's sketch lookup (the
// plan.JoinStatsProvider contract; pos uses the JoinPos encoding). It
// returns the exact join cardinality and shared-key count for the
// ordered predicate pair when its sketch was kept; an exact zero when
// sketches were collected and the pair provably never shares a key at
// this position; and ok=false — the documented independence fallback —
// when the pair was trimmed by the top-K bound, a predicate is
// unknown, or sketches were not collected.
func (c *Collection) PairJoin(p1, p2 uint64, pos uint8) (join, keys float64, ok bool) {
	j := c.Joins
	if j == nil || j.sketches == nil {
		return 0, 0, false
	}
	id1, id2 := rdf.ID(p1), rdf.ID(p2)
	if _, in := c.ByPredicate[id1]; !in {
		return 0, 0, false
	}
	if _, in := c.ByPredicate[id2]; !in {
		return 0, 0, false
	}
	k := canonicalPair(id1, id2, JoinPos(pos))
	if s, kept := j.sketches[k]; kept {
		return float64(s.Join), float64(s.Keys), true
	}
	if _, cand := j.candidates[k]; cand {
		return 0, 0, false // trimmed by top-K: fall back to independence
	}
	// Both predicates occur but never share a key at this position: the
	// join is provably empty.
	return 0, 0, true
}

// PredTriples implements the planner's scaling denominator: the
// predicate's exact triple count (the population a pair sketch was
// computed over).
func (c *Collection) PredTriples(p uint64) float64 {
	return float64(c.Predicate(rdf.ID(p)).Triples)
}

// JoinStatsSummary reports the join-graph statistics' size and
// coverage — what /stats and EXPLAIN surface so an independence
// fallback can be attributed to the top-K bound.
type JoinStatsSummary struct {
	// CSets is the number of characteristic sets held.
	CSets int
	// SketchPairs is the number of pair sketches kept; CandidatePairs
	// counts every co-occurring pair seen before the top-K trim.
	SketchPairs, CandidatePairs int
	// TopK is the configured sketch bound (0 = sketches disabled).
	TopK int
	// VolumeCoverage is the fraction of the candidates' total join
	// volume the kept sketches cover (1 when nothing was trimmed).
	VolumeCoverage float64
	// MemoryBytes estimates the in-memory footprint of the join-graph
	// statistics.
	MemoryBytes int64
}

// JoinStatsSummary summarizes the collection's join-graph statistics;
// ok is false when none were collected.
func (c *Collection) JoinStatsSummary() (JoinStatsSummary, bool) {
	j := c.Joins
	if j == nil {
		return JoinStatsSummary{}, false
	}
	s := JoinStatsSummary{
		CSets:          len(j.CSets),
		SketchPairs:    len(j.sketches),
		CandidatePairs: len(j.candidates),
		TopK:           j.TopK,
	}
	// Coverage answers "can a pair lookup succeed": 0 when sketches were
	// not collected at all (every pair prices as independence), the kept
	// fraction of the candidate join volume otherwise (1 when nothing
	// was trimmed, including the trivial no-candidates case).
	switch {
	case j.sketches == nil:
		s.VolumeCoverage = 0
	case j.totalVolume > 0:
		s.VolumeCoverage = j.keptVolume / j.totalVolume
	default:
		s.VolumeCoverage = 1
	}
	for _, cs := range j.CSets {
		// Preds + Triples slices plus the struct header.
		s.MemoryBytes += int64(len(cs.Preds))*12 + 48
	}
	// One sketch entry: key (12 bytes padded) + value (16 bytes) plus
	// map overhead; candidate entries hold the key only.
	s.MemoryBytes += int64(len(j.sketches))*40 + int64(len(j.candidates))*24
	return s, true
}

// fingerprintJoins mixes the join-graph statistics into a collection
// fingerprint, so enabling, disabling or re-bounding them invalidates
// cached plans exactly like a data change would.
func (j *JoinStats) fingerprint(mix func(uint64)) {
	if j == nil {
		mix(0)
		return
	}
	mix(1)
	mix(uint64(j.TopK))
	mix(uint64(len(j.CSets)))
	for _, cs := range j.CSets {
		mix(uint64(len(cs.Preds)))
		for i, p := range cs.Preds {
			mix(uint64(p))
			mix(uint64(cs.Triples[i]))
		}
		mix(uint64(cs.Count))
	}
	keys := make([]pairKey, 0, len(j.sketches))
	for k := range j.sketches {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].pos != keys[b].pos {
			return keys[a].pos < keys[b].pos
		}
		if keys[a].p1 != keys[b].p1 {
			return keys[a].p1 < keys[b].p1
		}
		return keys[a].p2 < keys[b].p2
	})
	mix(uint64(len(keys)))
	for _, k := range keys {
		s := j.sketches[k]
		mix(uint64(k.pos))
		mix(uint64(k.p1))
		mix(uint64(k.p2))
		mix(uint64(s.Join))
		mix(uint64(s.Keys))
	}
}
