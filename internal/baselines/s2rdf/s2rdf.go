// Package s2rdf reimplements the S2RDF baseline (Schätzle et al., VLDB
// 2016): Vertical Partitioning extended with ExtVP — precomputed
// semi-join reductions between every correlated pair of VP tables.
// Queries pick, per triple pattern, the smallest reduction consistent
// with the query's joins, which shrinks join inputs dramatically; the
// price is a loading phase that computes O(|P|²) semi-joins and stores
// their results, reproducing the paper's Table 1 blow-up (6.2 GB,
// 3h11m versus PRoST's 2.1 GB, 25m).
package s2rdf

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/columnar"
	"repro/internal/engine"
	"repro/internal/hdfs"
	"repro/internal/rdf"
	"repro/internal/sizeenc"
	"repro/internal/stats"
)

// CorrKind is the position correlation of an ExtVP table: how table p's
// rows were filtered against table q.
type CorrKind uint8

// The four ExtVP correlation kinds (S2RDF §4): p's subject or object
// semi-joined against q's subject or object.
const (
	CorrSS CorrKind = iota // p.s ∈ subjects(q)
	CorrSO                 // p.s ∈ objects(q)
	CorrOS                 // p.o ∈ subjects(q)
	CorrOO                 // p.o ∈ objects(q)
)

// String implements fmt.Stringer.
func (c CorrKind) String() string {
	switch c {
	case CorrSS:
		return "SS"
	case CorrSO:
		return "SO"
	case CorrOS:
		return "OS"
	case CorrOO:
		return "OO"
	default:
		return fmt.Sprintf("CorrKind(%d)", uint8(c))
	}
}

// DefaultSelectivityThreshold is S2RDF's SF parameter: reductions whose
// selectivity is at or above it are not materialized. S2RDF's base
// configuration (the one the paper's Table 1 measures at 6.2 GB and
// 3h11m) materializes every strict reduction, i.e. SF = 1.0; smaller
// values such as 0.25 are its space-saving variant.
const DefaultSelectivityThreshold = 1.0

// Options configures an S2RDF store.
type Options struct {
	// Cluster is the simulated cluster. Required.
	Cluster *cluster.Cluster
	// FS is the simulated HDFS instance (created when nil).
	FS *hdfs.FS
	// PathPrefix is the HDFS directory (default "/s2rdf").
	PathPrefix string
	// Partitions is the table partition count (0 = cluster default).
	Partitions int
	// Dict optionally shares a dictionary with other systems.
	Dict *rdf.Dictionary
	// SelectivityThreshold overrides the SF parameter (0 = default).
	SelectivityThreshold float64
	// BroadcastThreshold overrides the engine's broadcast-join
	// threshold (0 = Spark default). The benchmark harness shrinks it
	// when extrapolating costs to a larger dataset, because a table's
	// broadcastability depends on its extrapolated size.
	BroadcastThreshold int64
}

// extKey identifies one ExtVP table.
type extKey struct {
	p, q rdf.ID
	kind CorrKind
}

// table is a stored relation plus its on-HDFS size.
type table struct {
	rel       *engine.Relation
	fileBytes int64
}

// Store is a loaded S2RDF database.
type Store struct {
	cluster *cluster.Cluster
	fs      *hdfs.FS
	dict    *rdf.Dictionary
	stats   *stats.Collection
	parts   int
	bcast   int64

	vp  map[rdf.ID]*table
	ext map[extKey]*table

	load LoadReport
}

// LoadReport summarizes loading (Table 1 inputs).
type LoadReport struct {
	Triples   int64
	SizeBytes int64
	LoadTime  time.Duration
	// ExtVPTables is the number of materialized reductions.
	ExtVPTables int
}

// Result is a query answer.
type Result struct {
	Vars     []string
	Rows     [][]rdf.Term
	SimTime  time.Duration
	WallTime time.Duration
	Clock    *cluster.Clock
}

// LoadReport returns the loading summary.
func (s *Store) LoadReport() LoadReport { return s.load }

// Dictionary returns the store's term dictionary.
func (s *Store) Dictionary() *rdf.Dictionary { return s.dict }

// ExtVPTableCount returns the number of materialized ExtVP tables.
func (s *Store) ExtVPTableCount() int { return len(s.ext) }

// Load builds VP tables and the full ExtVP family.
func Load(g *rdf.Graph, opts Options) (*Store, error) {
	if opts.Cluster == nil {
		return nil, fmt.Errorf("s2rdf: Options.Cluster is required")
	}
	if opts.FS == nil {
		fs, err := hdfs.New(hdfs.Config{DataNodes: opts.Cluster.Workers() + 1})
		if err != nil {
			return nil, err
		}
		opts.FS = fs
	}
	if opts.PathPrefix == "" {
		opts.PathPrefix = "/s2rdf"
	}
	if opts.Dict == nil {
		opts.Dict = rdf.NewDictionary()
	}
	if opts.SelectivityThreshold <= 0 {
		opts.SelectivityThreshold = DefaultSelectivityThreshold
	}
	parts := opts.Partitions
	if parts <= 0 {
		parts = opts.Cluster.DefaultPartitions()
	}
	clock := cluster.NewClock()
	clock.Charge("job submit", opts.Cluster.Config().Cost.RDDSubmit)
	s := &Store{
		cluster: opts.Cluster,
		fs:      opts.FS,
		dict:    opts.Dict,
		parts:   parts,
		bcast:   opts.BroadcastThreshold,
		vp:      make(map[rdf.ID]*table),
		ext:     make(map[extKey]*table),
	}

	// Parse + encode + dedupe + stats.
	var inputBytes int64
	seen := make(map[rdf.EncodedTriple]struct{}, g.Len())
	triples := make([]rdf.EncodedTriple, 0, g.Len())
	for _, t := range g.Triples() {
		inputBytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + 12)
		et := opts.Dict.EncodeTriple(t)
		if _, dup := seen[et]; dup {
			continue
		}
		seen[et] = struct{}{}
		triples = append(triples, et)
	}
	s.stats = stats.Collect(triples)
	err := s.cluster.RunStage(clock, s.cluster.Config().Cost.SQLStageLaunch, "read input", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{DiskBytes: inputBytes / int64(parts), Rows: int64(g.Len()) / int64(parts)}, nil
	})
	if err != nil {
		return nil, err
	}

	// VP tables (Parquet-like, as in PRoST).
	byPred := make(map[rdf.ID][]engine.Row)
	for _, t := range triples {
		byPred[t.P] = append(byPred[t.P], engine.Row{t.S, t.O})
	}
	preds := make([]rdf.ID, 0, len(byPred))
	for p := range byPred {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	var vpRows, vpWrite int64
	for _, pred := range preds {
		rows := byPred[pred]
		rel, err := engine.Partition(engine.Schema{"s", "o"}, rows, "s", parts)
		if err != nil {
			return nil, err
		}
		size := s.writeTable(rel, fmt.Sprintf("%s/vp/p%d", opts.PathPrefix, pred))
		s.vp[pred] = &table{rel: rel, fileBytes: size}
		vpRows += int64(len(rows))
		vpWrite += size * int64(s.fs.Config().Replication)
	}
	err = s.cluster.RunStage(clock, s.cluster.Config().Cost.SQLStageLaunch, "build VP tables", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			Rows:      vpRows / int64(parts),
			NetBytes:  vpRows * 10 / int64(parts),
			DiskBytes: vpWrite / int64(parts),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// ExtVP: four correlation families over every predicate pair. Each
	// family needs per-predicate value sets; semi-joins are computed for
	// real, and every candidate pair charges a Spark SQL stage, which is
	// exactly why S2RDF's loading takes hours in the paper.
	if err := s.buildExtVP(clock, preds, byPred, opts); err != nil {
		return nil, err
	}

	s.load = LoadReport{
		Triples:     int64(len(triples)),
		SizeBytes:   s.fs.LogicalBytes(opts.PathPrefix + "/"),
		LoadTime:    clock.Elapsed(),
		ExtVPTables: len(s.ext),
	}
	return s, nil
}

// writeTable encodes a relation's partitions as columnar files with
// local dictionaries and writes them to HDFS, returning the logical size.
func (s *Store) writeTable(rel *engine.Relation, prefix string) int64 {
	var total int64
	for p := 0; p < rel.Partitions(); p++ {
		part := rel.Part(p)
		subj := make([]rdf.ID, len(part))
		obj := make([]rdf.ID, len(part))
		localTerms := make(map[rdf.ID]struct{}, 2*len(part))
		for i, r := range part {
			subj[i], obj[i] = r[0], r[1]
			localTerms[r[0]] = struct{}{}
			localTerms[r[1]] = struct{}{}
		}
		w := columnar.NewWriter(0)
		w.AddScalar("s", subj)
		w.AddScalar("o", obj)
		f, err := w.Finish()
		if err != nil {
			panic(fmt.Sprintf("s2rdf: encoding table: %v", err)) // schema is fixed; cannot fail
		}
		size := f.SizeBytes() + sizeenc.CompressedTermBytes(s.dict, localTerms)
		path := fmt.Sprintf("%s/part-%05d.parquet", prefix, p)
		if _, err := s.fs.Write(path, size); err != nil {
			panic(fmt.Sprintf("s2rdf: hdfs write: %v", err)) // paths are well-formed by construction
		}
		total += size
	}
	return total
}

// buildExtVP materializes the reductions below the selectivity
// threshold.
func (s *Store) buildExtVP(clock *cluster.Clock, preds []rdf.ID, byPred map[rdf.ID][]engine.Row, opts Options) error {
	// Per-predicate subject and object sets, shared by all pairs.
	subjSet := make(map[rdf.ID]map[rdf.ID]struct{}, len(preds))
	objSet := make(map[rdf.ID]map[rdf.ID]struct{}, len(preds))
	for _, p := range preds {
		ss := make(map[rdf.ID]struct{})
		os := make(map[rdf.ID]struct{})
		for _, r := range byPred[p] {
			ss[r[0]] = struct{}{}
			os[r[1]] = struct{}{}
		}
		subjSet[p], objSet[p] = ss, os
	}

	var stages, extRows, extWrite int64
	var processed int64
	for _, p := range preds {
		rowsP := byPred[p]
		for _, q := range preds {
			if p == q {
				continue
			}
			for _, kind := range []CorrKind{CorrSS, CorrSO, CorrOS, CorrOO} {
				stages++
				processed += int64(len(rowsP))
				kept := semiJoin(rowsP, kind, subjSet[q], objSet[q])
				sel := float64(len(kept)) / float64(len(rowsP))
				if len(kept) == 0 || sel >= opts.SelectivityThreshold {
					continue
				}
				rel, err := engine.Partition(engine.Schema{"s", "o"}, kept, "s", s.parts)
				if err != nil {
					return err
				}
				size := s.writeTable(rel, fmt.Sprintf("%s/extvp/%s/p%d_q%d", opts.PathPrefix, kind, p, q))
				s.ext[extKey{p: p, q: q, kind: kind}] = &table{rel: rel, fileBytes: size}
				extRows += int64(len(kept))
				extWrite += size * int64(s.fs.Config().Replication)
			}
		}
	}

	// Charge the precomputation: every candidate pair is one Spark SQL
	// semi-join job over VP_p, plus the writes of materialized tables.
	// Stage launches dominate (thousands of jobs), matching the paper.
	launch := s.cluster.Config().Cost.SQLStageLaunch
	rowTime := s.cluster.Config().Cost.RowTime
	diskRate := s.cluster.Config().Cost.DiskBytesPerSec
	elapsed := time.Duration(stages)*launch +
		time.Duration(processed/int64(s.cluster.Workers()))*rowTime +
		time.Duration(float64(extWrite)/float64(s.cluster.Workers())/diskRate*float64(time.Second))
	clock.Charge(fmt.Sprintf("ExtVP precomputation: %d semi-joins, %d tables", stages, len(s.ext)), elapsed)
	_ = extRows
	return nil
}

// semiJoin filters p's rows by membership of the correlated position in
// q's value set.
func semiJoin(rowsP []engine.Row, kind CorrKind, subjQ, objQ map[rdf.ID]struct{}) []engine.Row {
	var pos int
	var set map[rdf.ID]struct{}
	switch kind {
	case CorrSS:
		pos, set = 0, subjQ
	case CorrSO:
		pos, set = 0, objQ
	case CorrOS:
		pos, set = 1, subjQ
	case CorrOO:
		pos, set = 1, objQ
	}
	var kept []engine.Row
	for _, r := range rowsP {
		if _, ok := set[r[pos]]; ok {
			kept = append(kept, r)
		}
	}
	return kept
}
