package s2rdf

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const ns = "http://example.org/"

func fixtureGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	// Follow chain u0→u1→…→u9→u0; only u1 likes anything, so the OS
	// reduction of follows against likes keeps 1 of 10 rows.
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9"}
	for i, u := range users {
		add(u, "follows", iri(users[(i+1)%len(users)]))
	}
	add("u1", "likes", iri("pA"))
	add("pA", "genre", iri("g1"))
	add("u0", "name", rdf.NewLiteral("alice"))
	add("u1", "name", rdf.NewLiteral("bob"))
	return g
}

func fixtureStore(t *testing.T) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(fixtureGraph(), Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

func run(t *testing.T, s *Store, src string) ([]string, *Result) {
	t.Helper()
	res, err := s.Query(sparql.MustParse(src))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var rows []string
	for _, r := range res.Rows {
		var parts []string
		for _, term := range r {
			parts = append(parts, strings.TrimPrefix(term.Value, ns))
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sortStrings(rows)
	return rows, res
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestLoadMaterializesExtVP(t *testing.T) {
	s := fixtureStore(t)
	rep := s.LoadReport()
	if rep.Triples != 14 {
		t.Errorf("Triples = %d, want 14", rep.Triples)
	}
	if rep.ExtVPTables == 0 {
		t.Errorf("no ExtVP tables materialized")
	}
	if rep.SizeBytes <= 0 || rep.LoadTime <= 0 {
		t.Errorf("LoadReport = %+v", rep)
	}
	// The SS reduction follows⋉likes keeps only follows rows whose
	// subject likes something: u1 → 1 of 10 rows (selectivity 0.1).
	follows, _ := s.dict.Lookup(rdf.NewIRI(ns + "follows"))
	likes, _ := s.dict.Lookup(rdf.NewIRI(ns + "likes"))
	ext, ok := s.ext[extKey{p: follows, q: likes, kind: CorrSS}]
	if !ok {
		t.Fatalf("ExtVP SS(follows|likes) not materialized")
	}
	if ext.rel.NumRows() != 1 {
		t.Errorf("ExtVP SS(follows|likes) rows = %d, want 1", ext.rel.NumRows())
	}
	// The reverse reduction likes⋉follows keeps all likes rows
	// (selectivity 1.0 > threshold): must NOT be materialized.
	if _, ok := s.ext[extKey{p: likes, q: follows, kind: CorrSS}]; ok {
		t.Errorf("ExtVP SS(likes|follows) materialized despite selectivity 1.0")
	}
}

func TestExtVPLargerThanVPOnDisk(t *testing.T) {
	// The whole point of Table 1: S2RDF's database is much bigger than
	// plain VP because of the reductions.
	s := fixtureStore(t)
	vpBytes := s.fs.LogicalBytes("/s2rdf/vp/")
	extBytes := s.fs.LogicalBytes("/s2rdf/extvp/")
	if extBytes == 0 {
		t.Fatalf("no ExtVP bytes on HDFS")
	}
	if s.LoadReport().SizeBytes != vpBytes+extBytes {
		t.Errorf("SizeBytes %d != vp %d + extvp %d", s.LoadReport().SizeBytes, vpBytes, extBytes)
	}
}

func TestQueryUsesSmallestTable(t *testing.T) {
	s := fixtureStore(t)
	q := sparql.MustParse(`SELECT ?a ?p WHERE {
		?a <http://example.org/follows> ?b .
		?b <http://example.org/likes> ?p .
	}`)
	choices, err := s.choosePatternTables(q.Patterns)
	if err != nil {
		t.Fatalf("choosePatternTables: %v", err)
	}
	// Pattern 0 (follows) must pick the OS reduction (follows.o ∈
	// likes.s keeps rows pointing at likers) or the SS — whichever is
	// smaller — not the full VP of 10 rows.
	if choices[0].rows >= 10 {
		t.Errorf("pattern 0 chose table with %d rows (%s); expected an ExtVP reduction", choices[0].rows, choices[0].label)
	}
	if !strings.Contains(choices[0].label, "ExtVP") {
		t.Errorf("pattern 0 label = %q, want an ExtVP table", choices[0].label)
	}
}

func TestQuerySemantics(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?a ?p WHERE {
		?a <http://example.org/follows> ?b .
		?b <http://example.org/likes> ?p .
	}`)
	want := []string{"u0|pA"}
	if strings.Join(rows, " ") != strings.Join(want, " ") {
		t.Errorf("rows = %v, want %v", rows, want)
	}
}

func TestQueryStarAndChain(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?n ?g WHERE {
		?u <http://example.org/name> ?n .
		?u <http://example.org/likes> ?p .
		?p <http://example.org/genre> ?g .
	}`)
	if len(rows) != 1 || rows[0] != "bob|g1" {
		t.Errorf("rows = %v, want [bob|g1]", rows)
	}
}

func TestQueryEmptyAndModifiers(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE { ?u <http://example.org/nope> ?x . }`)
	if len(rows) != 0 {
		t.Errorf("rows = %v, want empty", rows)
	}
	rows, _ = run(t, s, `SELECT DISTINCT ?b WHERE { ?a <http://example.org/follows> ?b . } LIMIT 1`)
	if len(rows) != 1 || rows[0] != "u1" {
		t.Errorf("rows = %v, want [u1]", rows)
	}
}

func TestQueryUsesSQLStages(t *testing.T) {
	s := fixtureStore(t)
	_, res := run(t, s, `SELECT ?a WHERE {
		?a <http://example.org/follows> ?b .
		?b <http://example.org/likes> ?p .
	}`)
	rddSubmit := cluster.DefaultCostModel().RDDSubmit
	for _, st := range res.Clock.Stages() {
		if st.Launch >= rddSubmit {
			t.Errorf("S2RDF stage %q paid a spark-submit launch (%v); it runs in a warm SQL session", st.Name, st.Launch)
		}
	}
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v", res.SimTime)
	}
}

func TestVariablePredicateRejected(t *testing.T) {
	s := fixtureStore(t)
	if _, err := s.Query(sparql.MustParse(`SELECT ?p WHERE { <http://example.org/u0> ?p ?o . }`)); err == nil {
		t.Errorf("variable predicate accepted")
	}
}

func TestCorrelations(t *testing.T) {
	v := sparql.Variable
	b := func(s string) sparql.PatternTerm { return sparql.Bound(rdf.NewIRI(s)) }
	a := sparql.TriplePattern{S: v("x"), P: b("p1"), O: v("y")}
	tests := []struct {
		name  string
		other sparql.TriplePattern
		want  []CorrKind
	}{
		{"ss", sparql.TriplePattern{S: v("x"), P: b("p2"), O: v("z")}, []CorrKind{CorrSS}},
		{"so", sparql.TriplePattern{S: v("z"), P: b("p2"), O: v("x")}, []CorrKind{CorrSO}},
		{"os", sparql.TriplePattern{S: v("y"), P: b("p2"), O: v("z")}, []CorrKind{CorrOS}},
		{"oo", sparql.TriplePattern{S: v("z"), P: b("p2"), O: v("y")}, []CorrKind{CorrOO}},
		{"none", sparql.TriplePattern{S: v("q"), P: b("p2"), O: v("z")}, nil},
		{"both", sparql.TriplePattern{S: v("x"), P: b("p2"), O: v("y")}, []CorrKind{CorrSS, CorrOO}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := correlations(a, tt.other)
			if len(got) != len(tt.want) {
				t.Fatalf("correlations = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("correlations = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestLoadRequiresCluster(t *testing.T) {
	if _, err := Load(fixtureGraph(), Options{}); err == nil {
		t.Errorf("Load without cluster succeeded")
	}
}
