package s2rdf

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Query evaluates a SPARQL query: each triple pattern is answered from
// the smallest ExtVP reduction consistent with the query's join
// structure (falling back to the plain VP table), then joined on the
// Spark SQL engine with broadcast-join selection enabled.
func (s *Store) Query(q *sparql.Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	clock := cluster.NewClock()
	e := engine.NewExec(s.cluster, clock) // warm Spark SQL session
	e.BroadcastThreshold = s.bcast

	choices, err := s.choosePatternTables(q.Patterns)
	if err != nil {
		return nil, err
	}
	order := s.orderChoices(choices)

	var current *engine.Relation
	for _, ch := range order {
		rel, err := s.scanChoice(e, ch)
		if err != nil {
			return nil, err
		}
		rel, err = applyFilters(s.dict, e, rel, q.Filters)
		if err != nil {
			return nil, err
		}
		if current == nil {
			current = rel
			continue
		}
		current, err = e.Join(current, rel, ch.label)
		if err != nil {
			return nil, err
		}
	}
	if current == nil {
		return nil, fmt.Errorf("s2rdf: query has no patterns")
	}
	proj := q.Projection()
	current, err = e.Project(current, proj)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		if current, err = e.Distinct(current); err != nil {
			return nil, err
		}
	}
	rows, err := e.Limit(current, q.Limit, q.Offset)
	if err != nil {
		return nil, err
	}
	decoded := make([][]rdf.Term, len(rows))
	for i, r := range rows {
		terms := make([]rdf.Term, len(r))
		for j, id := range r {
			terms[j] = s.dict.Term(id)
		}
		decoded[i] = terms
	}
	return &Result{
		Vars:     proj,
		Rows:     decoded,
		SimTime:  clock.Elapsed(),
		WallTime: time.Since(start),
		Clock:    clock,
	}, nil
}

// patternChoice is one pattern plus the table chosen to answer it.
type patternChoice struct {
	tp    sparql.TriplePattern
	tbl   *table
	label string
	rows  int
	empty bool // predicate or constant absent: empty result
}

// choosePatternTables picks, for every pattern, the smallest table among
// the plain VP table and the ExtVP reductions induced by the query's
// variable correlations with other patterns (S2RDF's table selection).
func (s *Store) choosePatternTables(pats []sparql.TriplePattern) ([]patternChoice, error) {
	choices := make([]patternChoice, len(pats))
	for i, tp := range pats {
		ch := patternChoice{tp: tp, label: "VP"}
		if tp.P.IsVar() {
			return nil, fmt.Errorf("s2rdf: variable predicates are not supported (pattern %s)", tp)
		}
		pid, ok := s.dict.Lookup(tp.P.Term)
		if !ok {
			ch.empty = true
			choices[i] = ch
			continue
		}
		best, okVP := s.vp[pid]
		if !okVP {
			ch.empty = true
			choices[i] = ch
			continue
		}
		label := "VP"
		for j, other := range pats {
			if i == j || other.P.IsVar() {
				continue
			}
			qid, ok := s.dict.Lookup(other.P.Term)
			if !ok {
				continue
			}
			for _, corr := range correlations(tp, other) {
				ext, ok := s.ext[extKey{p: pid, q: qid, kind: corr}]
				if !ok {
					continue
				}
				if ext.rel.NumRows() < best.rel.NumRows() {
					best = ext
					label = fmt.Sprintf("ExtVP_%s", corr)
				}
			}
		}
		ch.tbl = best
		ch.label = fmt.Sprintf("%s(%s)", label, patternLabel(tp))
		ch.rows = best.rel.NumRows()
		choices[i] = ch
	}
	return choices, nil
}

// correlations lists the ExtVP kinds that connect pattern a to pattern
// b through shared variables (a's side first).
func correlations(a, b sparql.TriplePattern) []CorrKind {
	var out []CorrKind
	if a.S.IsVar() {
		if b.S.IsVar() && a.S.Var == b.S.Var {
			out = append(out, CorrSS)
		}
		if b.O.IsVar() && a.S.Var == b.O.Var {
			out = append(out, CorrSO)
		}
	}
	if a.O.IsVar() {
		if b.S.IsVar() && a.O.Var == b.S.Var {
			out = append(out, CorrOS)
		}
		if b.O.IsVar() && a.O.Var == b.O.Var {
			out = append(out, CorrOO)
		}
	}
	return out
}

// choiceEstimate returns a choice's estimated output rows after bound
// positions and the per-variable distinct-value estimates, based on the
// loader statistics — the inputs to S2RDF's cardinality-driven ordering.
func (s *Store) choiceEstimate(ch patternChoice) (float64, map[string]float64) {
	dist := map[string]float64{}
	if ch.empty {
		return 0, dist
	}
	rows := float64(ch.rows)
	var subjD, objD float64 = 1, 1
	if pid, ok := s.dict.Lookup(ch.tp.P.Term); ok {
		ps := s.stats.Predicate(pid)
		subjD = float64(ps.DistinctSubjects)
		objD = float64(ps.DistinctObjects)
		if subjD < 1 {
			subjD = 1
		}
		if objD < 1 {
			objD = 1
		}
	}
	if !ch.tp.O.IsVar() {
		rows /= objD
	}
	if !ch.tp.S.IsVar() {
		rows /= subjD
	}
	if ch.tp.S.IsVar() {
		dist[ch.tp.S.Var] = minF(subjD, rows)
	}
	if ch.tp.O.IsVar() {
		dist[ch.tp.O.Var] = minF(objD, rows)
	}
	return rows, dist
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// orderChoices starts from the smallest estimated pattern and greedily
// appends the connected pattern minimizing the estimated join output
// under the independence assumption |A⋈B| ≈ |A|·|B|/max(d_A(v),d_B(v)).
func (s *Store) orderChoices(choices []patternChoice) []patternChoice {
	pending := make([]patternChoice, len(choices))
	copy(pending, choices)
	sort.SliceStable(pending, func(i, j int) bool {
		ei, _ := s.choiceEstimate(pending[i])
		ej, _ := s.choiceEstimate(pending[j])
		return ei < ej
	})
	if len(pending) == 0 {
		return nil
	}

	var order []patternChoice
	curDist := map[string]float64{}
	var curSize float64
	take := func(i int, joined float64) {
		ch := pending[i]
		order = append(order, ch)
		_, dist := s.choiceEstimate(ch)
		for v, d := range dist {
			if prev, ok := curDist[v]; !ok || d < prev {
				curDist[v] = d
			}
		}
		curSize = joined
		pending = append(pending[:i], pending[i+1:]...)
	}
	startSize, _ := s.choiceEstimate(pending[0])
	take(0, startSize)
	for len(pending) > 0 {
		best, bestEst := -1, 0.0
		for i, ch := range pending {
			size, dist := s.choiceEstimate(ch)
			denom := 0.0
			for v, d := range dist {
				if cd, ok := curDist[v]; ok {
					shared := cd
					if d > shared {
						shared = d
					}
					if shared > denom {
						denom = shared
					}
				}
			}
			if denom == 0 {
				continue
			}
			est := curSize * size / denom
			if best < 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		if best < 0 {
			size, _ := s.choiceEstimate(pending[0])
			take(0, curSize*size)
			continue
		}
		if bestEst < 1 {
			bestEst = 1
		}
		take(best, bestEst)
	}
	return order
}

// scanChoice reads the chosen table and shapes it to the pattern's
// variables (bound-position filters, projection, renaming).
func (s *Store) scanChoice(e *engine.Exec, ch patternChoice) (*engine.Relation, error) {
	tp := ch.tp
	outVars := tp.Vars()
	empty := func() *engine.Relation {
		return engine.NewRelation(engine.Schema(outVars), make([][]engine.Row, s.parts), "")
	}
	if ch.empty {
		return empty(), nil
	}
	rel, err := e.Scan(ch.tbl.rel, "scan "+ch.label, ch.tbl.fileBytes)
	if err != nil {
		return nil, err
	}
	if !tp.S.IsVar() {
		sid, ok := s.dict.Lookup(tp.S.Term)
		if !ok {
			return empty(), nil
		}
		if rel, err = e.Filter(rel, "s=const", func(r engine.Row) bool { return r[0] == sid }); err != nil {
			return nil, err
		}
	}
	if !tp.O.IsVar() {
		oid, ok := s.dict.Lookup(tp.O.Term)
		if !ok {
			return empty(), nil
		}
		if rel, err = e.Filter(rel, "o=const", func(r engine.Row) bool { return r[1] == oid }); err != nil {
			return nil, err
		}
	}
	switch {
	case tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var:
		if rel, err = e.Filter(rel, "s=o", func(r engine.Row) bool { return r[0] == r[1] }); err != nil {
			return nil, err
		}
		if rel, err = e.Project(rel, []string{"s"}); err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.S.IsVar() && tp.O.IsVar():
		return e.Rename(rel, []string{tp.S.Var, tp.O.Var})
	case tp.S.IsVar():
		if rel, err = e.Project(rel, []string{"s"}); err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.O.IsVar():
		if rel, err = e.Project(rel, []string{"o"}); err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.O.Var})
	default:
		parts := make([][]engine.Row, 1)
		if rel.NumRows() > 0 {
			parts[0] = []engine.Row{{}}
		}
		return engine.NewRelation(engine.Schema{}, parts, ""), nil
	}
}

// patternLabel renders a short pattern label for stage names.
func patternLabel(tp sparql.TriplePattern) string {
	v := tp.P.Term.Value
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}

// applyFilters pushes applicable FILTER constraints onto the relation.
func applyFilters(dict *rdf.Dictionary, e *engine.Exec, rel *engine.Relation, filters []sparql.Filter) (*engine.Relation, error) {
	for _, f := range filters {
		idx := rel.Schema().Index(f.Var)
		if idx < 0 {
			continue
		}
		op, err := compareFn(f.Op)
		if err != nil {
			return nil, err
		}
		i, value := idx, f.Value
		rel, err = e.Filter(rel, "?"+f.Var, func(r engine.Row) bool {
			return engine.CompareIDs(dict, r[i], op, value)
		})
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// compareFn maps a comparison operator to a three-way predicate.
func compareFn(op sparql.CompareOp) (func(int) bool, error) {
	switch op {
	case sparql.OpEQ:
		return func(c int) bool { return c == 0 }, nil
	case sparql.OpNE:
		return func(c int) bool { return c != 0 }, nil
	case sparql.OpLT:
		return func(c int) bool { return c < 0 }, nil
	case sparql.OpLE:
		return func(c int) bool { return c <= 0 }, nil
	case sparql.OpGT:
		return func(c int) bool { return c > 0 }, nil
	case sparql.OpGE:
		return func(c int) bool { return c >= 0 }, nil
	default:
		return nil, fmt.Errorf("s2rdf: unsupported filter operator %v", op)
	}
}
