// Package sparqlgx reimplements the SPARQLGX baseline (Graux et al.,
// ISWC 2016): SPARQL evaluation over plain Vertical Partitioning files,
// compiled directly to Spark RDD operations. Three architectural traits
// drive its performance profile in the paper and are reproduced here:
//
//   - tables are stored as (compressed) text files that every query
//     re-reads from HDFS — no columnar pruning, no caching;
//   - queries compile to one RDD job per operator, each paying the full
//     job-launch overhead (no Spark SQL session reuse);
//   - no Catalyst: joins are always hash shuffles, never broadcasts,
//     and text partitioning gives no subject co-location.
//
// SPARQLGX does use its own cardinality statistics to order joins, which
// is also reproduced.
package sparqlgx

import (
	"compress/flate"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/hdfs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
)

// Options configures a SPARQLGX store.
type Options struct {
	// Cluster is the simulated cluster. Required.
	Cluster *cluster.Cluster
	// FS is the simulated HDFS instance (created when nil).
	FS *hdfs.FS
	// PathPrefix is the HDFS directory (default "/sparqlgx").
	PathPrefix string
	// Partitions is the table partition count (0 = cluster default).
	Partitions int
	// Dict optionally shares a dictionary with other systems (the
	// benchmark harness loads all four systems from one graph).
	Dict *rdf.Dictionary
}

// Store is a loaded SPARQLGX database.
type Store struct {
	cluster *cluster.Cluster
	fs      *hdfs.FS
	dict    *rdf.Dictionary
	stats   *stats.Collection
	parts   int

	// vp maps predicate → rows; text partitioning gives no useful
	// partition key, so joins always shuffle.
	vp map[rdf.ID]*vpFile

	load LoadReport
}

// vpFile is one predicate's text file: the rows plus its on-HDFS size.
type vpFile struct {
	rel       *engine.Relation
	textBytes int64
}

// LoadReport summarizes loading (Table 1 inputs).
type LoadReport struct {
	Triples   int64
	SizeBytes int64
	LoadTime  time.Duration
}

// Result is a query answer.
type Result struct {
	Vars     []string
	Rows     [][]rdf.Term
	SimTime  time.Duration
	WallTime time.Duration
	Clock    *cluster.Clock
}

// LoadReport returns the loading summary.
func (s *Store) LoadReport() LoadReport { return s.load }

// Dictionary returns the store's term dictionary.
func (s *Store) Dictionary() *rdf.Dictionary { return s.dict }

// Load builds the SPARQLGX store: parse, split by predicate, write one
// compressed text file per predicate.
func Load(g *rdf.Graph, opts Options) (*Store, error) {
	if opts.Cluster == nil {
		return nil, fmt.Errorf("sparqlgx: Options.Cluster is required")
	}
	if opts.FS == nil {
		fs, err := hdfs.New(hdfs.Config{DataNodes: opts.Cluster.Workers() + 1})
		if err != nil {
			return nil, err
		}
		opts.FS = fs
	}
	if opts.PathPrefix == "" {
		opts.PathPrefix = "/sparqlgx"
	}
	if opts.Dict == nil {
		opts.Dict = rdf.NewDictionary()
	}
	parts := opts.Partitions
	if parts <= 0 {
		parts = opts.Cluster.DefaultPartitions()
	}
	clock := cluster.NewClock()
	clock.Charge("job submit", opts.Cluster.Config().Cost.RDDSubmit)
	s := &Store{
		cluster: opts.Cluster,
		fs:      opts.FS,
		dict:    opts.Dict,
		parts:   parts,
		vp:      make(map[rdf.ID]*vpFile),
	}

	// Read + parse input. Loading is one long-running bulk job (a
	// single spark-submit), so it is priced like any other batch stage;
	// the per-query RDD job overhead applies to queries, where SPARQLGX
	// really does compile and submit a fresh program each time.
	var inputBytes int64
	for _, t := range g.Triples() {
		inputBytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + 12)
	}
	err := s.cluster.RunStage(clock, s.cluster.Config().Cost.SQLStageLaunch, "read input", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{DiskBytes: inputBytes / int64(parts), Rows: int64(g.Len()) / int64(parts)}, nil
	})
	if err != nil {
		return nil, err
	}

	// Encode, dedupe, gather stats (SPARQLGX ships a stats tool).
	triples := make([]rdf.EncodedTriple, 0, g.Len())
	seen := make(map[rdf.EncodedTriple]struct{}, g.Len())
	for _, t := range g.Triples() {
		et := s.dict.EncodeTriple(t)
		if _, dup := seen[et]; dup {
			continue
		}
		seen[et] = struct{}{}
		triples = append(triples, et)
	}
	s.stats = stats.Collect(triples)
	clock.Charge("statistics", time.Duration(len(triples))*s.cluster.Config().Cost.RowTime)

	// Split by predicate and write compressed text files.
	byPred := make(map[rdf.ID][]engine.Row)
	for _, t := range triples {
		byPred[t.P] = append(byPred[t.P], engine.Row{t.S, t.O})
	}
	var totalWrite, shuffleBytes int64
	preds := make([]rdf.ID, 0, len(byPred))
	for p := range byPred {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	for _, pred := range preds {
		rows := byPred[pred]
		// Text layout is unordered RDD output: no partition key.
		rel, err := engine.Partition(engine.Schema{"s", "o"}, rows, "s", parts)
		if err != nil {
			return nil, err
		}
		rel, err = engineStripKey(rel)
		if err != nil {
			return nil, err
		}
		size := s.textFileBytes(rows)
		path := fmt.Sprintf("%s/vp/p%d.txt.deflate", opts.PathPrefix, pred)
		if _, err := s.fs.Write(path, size); err != nil {
			return nil, err
		}
		s.vp[pred] = &vpFile{rel: rel, textBytes: size}
		totalWrite += size
		shuffleBytes += int64(len(rows)) * 2 * 5
	}
	writeBytes := totalWrite * int64(s.fs.Config().Replication)
	err = s.cluster.RunStage(clock, s.cluster.Config().Cost.SQLStageLaunch, "write VP text files", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			Rows:      int64(len(triples)) / int64(parts),
			NetBytes:  shuffleBytes / int64(parts),
			DiskBytes: writeBytes / int64(parts),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	s.load = LoadReport{
		Triples:   int64(len(triples)),
		SizeBytes: s.fs.LogicalBytes(opts.PathPrefix + "/"),
		LoadTime:  clock.Elapsed(),
	}
	return s, nil
}

// engineStripKey drops the partition-key claim: RDD text files are block
// partitioned, so subject co-location never holds for SPARQLGX.
func engineStripKey(rel *engine.Relation) (*engine.Relation, error) {
	parts := make([][]engine.Row, rel.Partitions())
	for i := 0; i < rel.Partitions(); i++ {
		parts[i] = rel.Part(i)
	}
	return engine.NewRelation(rel.Schema(), parts, ""), nil
}

// textFileBytes sizes one predicate file: deflate over the real
// tab-separated term text, modeling Spark's compressed saveAsTextFile.
func (s *Store) textFileBytes(rows []engine.Row) int64 {
	cw := &countingWriter{}
	fw, err := flate.NewWriter(cw, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("sparqlgx: flate writer: %v", err))
	}
	for _, r := range rows {
		st := s.dict.Term(r[0])
		ot := s.dict.Term(r[1])
		fmt.Fprintf(fw, "%s\t%s\n", st.Value, ot.String())
	}
	fw.Close()
	return cw.n
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Query evaluates a SPARQL query by compiling the BGP to per-pattern VP
// scans and RDD hash joins, ordered by SPARQLGX's own cardinality
// statistics.
func (s *Store) Query(q *sparql.Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	clock := cluster.NewClock()
	e := engine.NewRDDExec(s.cluster, clock) // spark-submit per query
	e.BroadcastThreshold = -1                // no Catalyst, no broadcast joins

	order := s.orderPatterns(q.Patterns)
	var current *engine.Relation
	for _, tp := range order {
		rel, err := s.scanPattern(e, tp)
		if err != nil {
			return nil, err
		}
		rel, err = applyFilters(s.dict, e, rel, q.Filters)
		if err != nil {
			return nil, err
		}
		if current == nil {
			current = rel
			continue
		}
		current, err = e.Join(current, rel, patternLabel(tp))
		if err != nil {
			return nil, err
		}
	}
	if current == nil {
		return nil, fmt.Errorf("sparqlgx: query has no patterns")
	}
	proj := q.Projection()
	current, err := e.Project(current, proj)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		if current, err = e.Distinct(current); err != nil {
			return nil, err
		}
	}
	rows, err := e.Limit(current, q.Limit, q.Offset)
	if err != nil {
		return nil, err
	}
	decoded := make([][]rdf.Term, len(rows))
	for i, r := range rows {
		terms := make([]rdf.Term, len(r))
		for j, id := range r {
			terms[j] = s.dict.Term(id)
		}
		decoded[i] = terms
	}
	return &Result{
		Vars:     proj,
		Rows:     decoded,
		SimTime:  clock.Elapsed(),
		WallTime: time.Since(start),
		Clock:    clock,
	}, nil
}

// orderPatterns sorts patterns by estimated cardinality (constants
// first, then ascending predicate triple count), greedily keeping the
// join connected — SPARQLGX's statistics-driven join ordering.
func (s *Store) orderPatterns(pats []sparql.TriplePattern) []sparql.TriplePattern {
	est := func(tp sparql.TriplePattern) float64 {
		size := float64(s.stats.TotalTriples)
		if !tp.P.IsVar() {
			if pid, ok := s.dict.Lookup(tp.P.Term); ok {
				size = float64(s.stats.Predicate(pid).Triples)
			} else {
				size = 0
			}
		}
		if !tp.O.IsVar() {
			size /= 100
		}
		if !tp.S.IsVar() {
			size /= 100
		}
		return size
	}
	pending := make([]sparql.TriplePattern, len(pats))
	copy(pending, pats)
	sort.SliceStable(pending, func(i, j int) bool { return est(pending[i]) < est(pending[j]) })

	var order []sparql.TriplePattern
	bound := map[string]bool{}
	take := func(i int) {
		tp := pending[i]
		order = append(order, tp)
		for _, v := range tp.Vars() {
			bound[v] = true
		}
		pending = append(pending[:i], pending[i+1:]...)
	}
	if len(pending) == 0 {
		return nil
	}
	take(0)
	for len(pending) > 0 {
		picked := -1
		for i, tp := range pending {
			for _, v := range tp.Vars() {
				if bound[v] {
					picked = i
					break
				}
			}
			if picked >= 0 {
				break
			}
		}
		if picked < 0 {
			picked = 0
		}
		take(picked)
	}
	return order
}

// scanPattern reads one pattern's VP text file (charged in full — no
// column pruning in text files) and shapes it to the pattern variables.
func (s *Store) scanPattern(e *engine.Exec, tp sparql.TriplePattern) (*engine.Relation, error) {
	outVars := tp.Vars()
	empty := func() *engine.Relation {
		return engine.NewRelation(engine.Schema(outVars), make([][]engine.Row, s.parts), "")
	}
	if tp.P.IsVar() {
		// SPARQLGX compiles one file read per concrete predicate; the
		// WatDiv workload never uses variable predicates, so this
		// reimplementation declines them rather than faking a plan.
		return nil, fmt.Errorf("sparqlgx: variable predicates are not supported (pattern %s)", tp)
	}
	pid, ok := s.dict.Lookup(tp.P.Term)
	if !ok {
		return empty(), nil
	}
	f, ok := s.vp[pid]
	if !ok {
		return empty(), nil
	}
	rel, err := e.Scan(f.rel, "VP text "+patternLabel(tp), f.textBytes)
	if err != nil {
		return nil, err
	}
	if !tp.S.IsVar() {
		sid, ok := s.dict.Lookup(tp.S.Term)
		if !ok {
			return empty(), nil
		}
		if rel, err = e.Filter(rel, "s=const", func(r engine.Row) bool { return r[0] == sid }); err != nil {
			return nil, err
		}
	}
	if !tp.O.IsVar() {
		oid, ok := s.dict.Lookup(tp.O.Term)
		if !ok {
			return empty(), nil
		}
		if rel, err = e.Filter(rel, "o=const", func(r engine.Row) bool { return r[1] == oid }); err != nil {
			return nil, err
		}
	}
	switch {
	case tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var:
		if rel, err = e.Filter(rel, "s=o", func(r engine.Row) bool { return r[0] == r[1] }); err != nil {
			return nil, err
		}
		if rel, err = e.Project(rel, []string{"s"}); err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.S.IsVar() && tp.O.IsVar():
		return e.Rename(rel, []string{tp.S.Var, tp.O.Var})
	case tp.S.IsVar():
		if rel, err = e.Project(rel, []string{"s"}); err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.S.Var})
	case tp.O.IsVar():
		if rel, err = e.Project(rel, []string{"o"}); err != nil {
			return nil, err
		}
		return e.Rename(rel, []string{tp.O.Var})
	default:
		parts := make([][]engine.Row, 1)
		if rel.NumRows() > 0 {
			parts[0] = []engine.Row{{}}
		}
		return engine.NewRelation(engine.Schema{}, parts, ""), nil
	}
}

// patternLabel renders a short pattern label for stage names.
func patternLabel(tp sparql.TriplePattern) string {
	if tp.P.IsVar() {
		return "?" + tp.P.Var
	}
	v := tp.P.Term.Value
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}

// applyFilters pushes applicable FILTER constraints onto the relation.
func applyFilters(dict *rdf.Dictionary, e *engine.Exec, rel *engine.Relation, filters []sparql.Filter) (*engine.Relation, error) {
	for _, f := range filters {
		idx := rel.Schema().Index(f.Var)
		if idx < 0 {
			continue
		}
		op, err := compareFn(f.Op)
		if err != nil {
			return nil, err
		}
		i, value := idx, f.Value
		rel, err = e.Filter(rel, "?"+f.Var, func(r engine.Row) bool {
			return engine.CompareIDs(dict, r[i], op, value)
		})
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// compareFn maps a comparison operator to a three-way predicate.
func compareFn(op sparql.CompareOp) (func(int) bool, error) {
	switch op {
	case sparql.OpEQ:
		return func(c int) bool { return c == 0 }, nil
	case sparql.OpNE:
		return func(c int) bool { return c != 0 }, nil
	case sparql.OpLT:
		return func(c int) bool { return c < 0 }, nil
	case sparql.OpLE:
		return func(c int) bool { return c <= 0 }, nil
	case sparql.OpGT:
		return func(c int) bool { return c > 0 }, nil
	case sparql.OpGE:
		return func(c int) bool { return c >= 0 }, nil
	default:
		return nil, fmt.Errorf("sparqlgx: unsupported filter operator %v", op)
	}
}
