package sparqlgx

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const ns = "http://example.org/"

func fixtureGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	add("u0", "follows", iri("u1"))
	add("u0", "follows", iri("u2"))
	add("u1", "follows", iri("u2"))
	add("u0", "likes", iri("pA"))
	add("u1", "likes", iri("pA"))
	add("u1", "likes", iri("pB"))
	add("u2", "likes", iri("pB"))
	add("pA", "genre", iri("g1"))
	add("pB", "genre", iri("g2"))
	add("u0", "name", rdf.NewLiteral("alice"))
	add("u1", "name", rdf.NewLiteral("bob"))
	return g
}

func fixtureStore(t *testing.T) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(fixtureGraph(), Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

func run(t *testing.T, s *Store, src string) ([]string, *Result) {
	t.Helper()
	res, err := s.Query(sparql.MustParse(src))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var rows []string
	for _, r := range res.Rows {
		var parts []string
		for _, term := range r {
			parts = append(parts, strings.TrimPrefix(term.Value, ns))
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sortStrings(rows)
	return rows, res
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestLoadReport(t *testing.T) {
	s := fixtureStore(t)
	rep := s.LoadReport()
	if rep.Triples != 11 {
		t.Errorf("Triples = %d, want 11", rep.Triples)
	}
	if rep.SizeBytes <= 0 || rep.LoadTime <= 0 {
		t.Errorf("LoadReport = %+v", rep)
	}
}

func TestQueryChain(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u ?g WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/genre> ?g .
	}`)
	want := []string{"u0|g1", "u1|g1", "u1|g2", "u2|g2"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, rows[i], want[i])
		}
	}
}

func TestQueryStarWithLiteral(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE {
		?u <http://example.org/name> "bob" .
		?u <http://example.org/likes> ?p .
	}`)
	if len(rows) != 2 || rows[0] != "u1" || rows[1] != "u1" {
		t.Errorf("rows = %v, want [u1 u1]", rows)
	}
}

func TestQueryUsesRDDStagesAndNoBroadcast(t *testing.T) {
	s := fixtureStore(t)
	_, res := run(t, s, `SELECT ?u ?g WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/genre> ?g .
	}`)
	stages := res.Clock.Stages()
	if len(stages) == 0 {
		t.Fatalf("no stages recorded")
	}
	for _, st := range stages {
		if strings.HasPrefix(st.Name, "broadcast join") {
			t.Errorf("SPARQLGX used a broadcast join: %q", st.Name)
		}
	}
	// Every query pays a fresh spark-submit.
	if submit := cluster.DefaultCostModel().RDDSubmit; res.SimTime < submit {
		t.Errorf("SimTime = %v, want at least the spark-submit cost %v", res.SimTime, submit)
	}
}

func TestQueryJoinsAlwaysShuffle(t *testing.T) {
	// Text storage gives no co-partitioning: a subject-subject join must
	// move bytes.
	s := fixtureStore(t)
	_, res := run(t, s, `SELECT ?u WHERE {
		?u <http://example.org/likes> ?p .
		?u <http://example.org/name> ?n .
	}`)
	var moved int64
	for _, st := range res.Clock.Stages() {
		moved += st.Stats.NetBytes
	}
	if moved == 0 {
		t.Errorf("subject-subject join moved no bytes; SPARQLGX must shuffle")
	}
}

func TestEmptyPredicate(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE { ?u <http://example.org/nope> ?x . }`)
	if len(rows) != 0 {
		t.Errorf("rows = %v, want empty", rows)
	}
}

func TestVariablePredicateRejected(t *testing.T) {
	s := fixtureStore(t)
	_, err := s.Query(sparql.MustParse(`SELECT ?p WHERE { <http://example.org/u0> ?p ?o . }`))
	if err == nil {
		t.Errorf("variable predicate accepted")
	}
}

func TestFilterAndModifiers(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT DISTINCT ?p WHERE { ?u <http://example.org/likes> ?p . } LIMIT 1`)
	if len(rows) != 1 {
		t.Errorf("rows = %v, want exactly 1", rows)
	}
}

func TestBoundSubject(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?x WHERE { <http://example.org/u0> <http://example.org/follows> ?x . }`)
	if len(rows) != 2 || rows[0] != "u1" || rows[1] != "u2" {
		t.Errorf("rows = %v", rows)
	}
}

func TestLoadRequiresCluster(t *testing.T) {
	if _, err := Load(fixtureGraph(), Options{}); err == nil {
		t.Errorf("Load without cluster succeeded")
	}
}
