package rya

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

const ns = "http://example.org/"

func fixtureGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(ns + s) }
	num := func(s string) rdf.Term { return rdf.NewTypedLiteral(s, rdf.XSDInteger) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	add("u0", "follows", iri("u1"))
	add("u0", "follows", iri("u2"))
	add("u1", "follows", iri("u2"))
	add("u0", "likes", iri("pA"))
	add("u1", "likes", iri("pA"))
	add("u1", "likes", iri("pB"))
	add("u2", "likes", iri("pB"))
	add("pA", "genre", iri("g1"))
	add("pB", "genre", iri("g2"))
	add("u0", "name", rdf.NewLiteral("alice"))
	add("u1", "name", rdf.NewLiteral("bob"))
	add("u0", "age", num("25"))
	add("u1", "age", num("30"))
	return g
}

func fixtureStore(t *testing.T) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	s, err := Load(fixtureGraph(), Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

func run(t *testing.T, s *Store, src string) ([]string, *Result) {
	t.Helper()
	res, err := s.Query(sparql.MustParse(src))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var rows []string
	for _, r := range res.Rows {
		var parts []string
		for _, term := range r {
			parts = append(parts, strings.TrimPrefix(term.Value, ns))
		}
		rows = append(rows, strings.Join(parts, "|"))
	}
	sortStrings(rows)
	return rows, res
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestLoadBuildsThreeIndexes(t *testing.T) {
	s := fixtureStore(t)
	rep := s.LoadReport()
	if rep.Triples != 13 {
		t.Errorf("Triples = %d, want 13", rep.Triples)
	}
	if s.spo.Len() != 13 || s.pos.Len() != 13 || s.osp.Len() != 13 {
		t.Errorf("index sizes = %d/%d/%d, want 13 each", s.spo.Len(), s.pos.Len(), s.osp.Len())
	}
	if rep.SizeBytes <= 0 || rep.LoadTime <= 0 {
		t.Errorf("LoadReport = %+v", rep)
	}
}

func TestQueryBoundSubject(t *testing.T) {
	s := fixtureStore(t)
	rows, res := run(t, s, `SELECT ?x WHERE { <http://example.org/u0> <http://example.org/follows> ?x . }`)
	if len(rows) != 2 || rows[0] != "u1" || rows[1] != "u2" {
		t.Errorf("rows = %v", rows)
	}
	if res.SimTime <= 0 {
		t.Errorf("SimTime = %v", res.SimTime)
	}
}

func TestQueryChainJoins(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u ?g WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/genre> ?g .
	}`)
	want := []string{"u0|g1", "u1|g1", "u1|g2", "u2|g2"}
	if strings.Join(rows, " ") != strings.Join(want, " ") {
		t.Errorf("rows = %v, want %v", rows, want)
	}
}

func TestQueryStar(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE {
		?u <http://example.org/name> "bob" .
		?u <http://example.org/age> ?a .
	}`)
	if len(rows) != 1 || rows[0] != "u1" {
		t.Errorf("rows = %v, want [u1]", rows)
	}
}

func TestQueryObjectOnlyUsesOSP(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE { ?u <http://example.org/likes> <http://example.org/pB> . }`)
	if len(rows) != 2 || rows[0] != "u1" || rows[1] != "u2" {
		t.Errorf("rows = %v", rows)
	}
}

func TestQueryVariablePredicate(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?p WHERE { <http://example.org/pA> ?p ?o . }`)
	if len(rows) != 1 || rows[0] != "genre" {
		t.Errorf("rows = %v, want [genre]", rows)
	}
}

func TestQueryFilter(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE { ?u <http://example.org/age> ?a . FILTER(?a > 27) }`)
	if len(rows) != 1 || rows[0] != "u1" {
		t.Errorf("rows = %v, want [u1]", rows)
	}
}

func TestQueryDistinctAndLimit(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT DISTINCT ?p WHERE { ?u <http://example.org/likes> ?p . }`)
	if len(rows) != 2 {
		t.Errorf("distinct rows = %v", rows)
	}
	rows, _ = run(t, s, `SELECT ?p WHERE { ?u <http://example.org/likes> ?p . } LIMIT 2`)
	if len(rows) != 2 {
		t.Errorf("limited rows = %v", rows)
	}
}

func TestSeekCountGrowsWithBindings(t *testing.T) {
	// The chain join needs one lookup per intermediate binding: its
	// total seeks must exceed the single-pattern query's.
	s := fixtureStore(t)
	_, res1 := run(t, s, `SELECT ?u ?p WHERE { ?u <http://example.org/likes> ?p . }`)
	_, res2 := run(t, s, `SELECT ?u ?g WHERE {
		?u <http://example.org/likes> ?p .
		?p <http://example.org/genre> ?g .
	}`)
	seeks := func(c *cluster.Clock) int64 {
		var n int64
		for _, st := range c.Stages() {
			// Seek counts are embedded in the stage names
			// ("pattern N: K lookups"); use elapsed as a proxy.
			_ = st
			n++
		}
		return n
	}
	if seeks(res2.Clock) <= seeks(res1.Clock) {
		t.Errorf("chain query recorded %d stages, single pattern %d; expected more lookup stages",
			seeks(res2.Clock), seeks(res1.Clock))
	}
	if res2.SimTime <= res1.SimTime {
		t.Errorf("chain SimTime %v not greater than single-pattern %v", res2.SimTime, res1.SimTime)
	}
}

func TestEmptyResults(t *testing.T) {
	s := fixtureStore(t)
	rows, _ := run(t, s, `SELECT ?u WHERE { ?u <http://example.org/nope> ?x . }`)
	if len(rows) != 0 {
		t.Errorf("rows = %v, want empty", rows)
	}
	rows, _ = run(t, s, `SELECT ?u WHERE {
		?u <http://example.org/likes> <http://example.org/ghost> .
	}`)
	if len(rows) != 0 {
		t.Errorf("rows = %v, want empty", rows)
	}
}

func TestKeySegmentRoundTrip(t *testing.T) {
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/x"),
		rdf.NewLiteral("plain words"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewLangLiteral("chat", "fr"),
		rdf.NewBlank("b0"),
	}
	for _, term := range terms {
		got, err := parseKeySegment(keyOf(term))
		if err != nil {
			t.Errorf("parseKeySegment(%v): %v", term, err)
			continue
		}
		if got != term {
			t.Errorf("round trip %v != %v", got, term)
		}
	}
}

func TestLoadRequiresCluster(t *testing.T) {
	if _, err := Load(fixtureGraph(), Options{}); err == nil {
		t.Errorf("Load without cluster succeeded")
	}
}
