// Package rya reimplements the Rya baseline (Punnoose et al., 2012): an
// RDF triple store over a sorted key-value store (Apache Accumulo in the
// original, the mini-Accumulo of internal/kv here). Whole triples are
// stored as keys in three permutation indexes (SPO, POS, OSP), so point
// lookups and short ranges are extremely fast; joins are index nested
// loops executed client-side, one range scan per binding — the
// architecture that makes Rya the fastest system on highly selective
// queries and orders of magnitude the slowest when intermediate results
// grow (paper §4.4).
package rya

import (
	"bytes"
	"compress/flate"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/kv"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
)

// sep separates key segments; it sorts below all printable characters.
const sep = "\x1f"

// Options configures a Rya store.
type Options struct {
	// Cluster is the simulated cluster (tablet servers run on its
	// workers). Required.
	Cluster *cluster.Cluster
	// FS records the store's size under /rya (created when nil).
	FS *hdfs.FS
	// PathPrefix is the HDFS directory (default "/rya").
	PathPrefix string
	// Dict optionally shares a dictionary with other systems.
	Dict *rdf.Dictionary
	// BatchParallelism models the Accumulo BatchScanner's concurrent
	// range lookups (default 8): total seek latency is divided by it.
	BatchParallelism int
}

// Store is a loaded Rya database.
type Store struct {
	cluster *cluster.Cluster
	dict    *rdf.Dictionary
	stats   *stats.Collection
	batch   int

	spo *kv.Store
	pos *kv.Store
	osp *kv.Store

	load LoadReport
}

// LoadReport summarizes loading (Table 1 inputs).
type LoadReport struct {
	Triples   int64
	SizeBytes int64
	LoadTime  time.Duration
}

// Result is a query answer.
type Result struct {
	Vars     []string
	Rows     [][]rdf.Term
	SimTime  time.Duration
	WallTime time.Duration
	Clock    *cluster.Clock
}

// LoadReport returns the loading summary.
func (s *Store) LoadReport() LoadReport { return s.load }

// Dictionary returns the store's term dictionary.
func (s *Store) Dictionary() *rdf.Dictionary { return s.dict }

// keyOf renders a term as a key segment. Term.String() syntax keeps
// IRIs, literals and blanks in disjoint namespaces.
func keyOf(t rdf.Term) string { return t.String() }

// Load builds the three permutation indexes through batch writers.
func Load(g *rdf.Graph, opts Options) (*Store, error) {
	if opts.Cluster == nil {
		return nil, fmt.Errorf("rya: Options.Cluster is required")
	}
	if opts.FS == nil {
		fs, err := hdfs.New(hdfs.Config{DataNodes: opts.Cluster.Workers() + 1})
		if err != nil {
			return nil, err
		}
		opts.FS = fs
	}
	if opts.PathPrefix == "" {
		opts.PathPrefix = "/rya"
	}
	if opts.Dict == nil {
		opts.Dict = rdf.NewDictionary()
	}
	if opts.BatchParallelism <= 0 {
		opts.BatchParallelism = 8
	}
	clock := cluster.NewClock()
	clock.Charge("bulk load job submit", opts.Cluster.Config().Cost.RDDSubmit)
	s := &Store{
		cluster: opts.Cluster,
		dict:    opts.Dict,
		batch:   opts.BatchParallelism,
		spo:     kv.NewStore(0),
		pos:     kv.NewStore(0),
		osp:     kv.NewStore(0),
	}

	// Parse input (client-side MapReduce bulk load in the original).
	var inputBytes int64
	seen := make(map[rdf.EncodedTriple]struct{}, g.Len())
	triples := make([]rdf.EncodedTriple, 0, g.Len())
	var rawKeyBytes int64
	for _, t := range g.Triples() {
		inputBytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + 12)
		et := opts.Dict.EncodeTriple(t)
		if _, dup := seen[et]; dup {
			continue
		}
		seen[et] = struct{}{}
		triples = append(triples, et)

		sk, pk, ok := keyOf(t.S), keyOf(t.P), keyOf(t.O)
		s.spo.Put([]byte(sk+sep+pk+sep+ok), nil)
		s.pos.Put([]byte(pk+sep+ok+sep+sk), nil)
		s.osp.Put([]byte(ok+sep+sk+sep+pk), nil)
		rawKeyBytes += int64(3 * (len(sk) + len(pk) + len(ok) + 6))
	}
	s.spo.Flush()
	s.pos.Flush()
	s.osp.Flush()
	s.stats = stats.Collect(triples)

	// Charge: input scan, then batch-writing three indexes with LSM
	// write amplification (minor + major compaction rewrite the data).
	parts := opts.Cluster.DefaultPartitions()
	err := opts.Cluster.RunStage(clock, 0, "read input", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{DiskBytes: inputBytes / int64(parts), Rows: int64(g.Len()) / int64(parts)}, nil
	})
	if err != nil {
		return nil, err
	}
	const writeAmplification = 3 // memtable flush + compactions
	writeBytes := rawKeyBytes * writeAmplification
	err = opts.Cluster.RunStage(clock, 0, "batch write 3 indexes", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{
			DiskBytes: writeBytes / int64(parts),
			NetBytes:  rawKeyBytes / int64(parts), // client → tablet servers
			Rows:      3 * int64(len(triples)) / int64(parts),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// On-disk size: Accumulo compresses blocks (gzip); deflate over the
	// real sorted keys of each index.
	var size int64
	for _, st := range []*kv.Store{s.spo, s.pos, s.osp} {
		size += compressedIndexBytes(st)
	}
	if _, err := opts.FS.Write(opts.PathPrefix+"/tables", size); err != nil {
		return nil, err
	}

	s.load = LoadReport{
		Triples:   int64(len(triples)),
		SizeBytes: size,
		LoadTime:  clock.Elapsed(),
	}
	return s, nil
}

// compressedIndexBytes deflates an index's sorted keys, modeling
// Accumulo's block compression over prefix-similar keys. Every Accumulo
// key also carries column family/qualifier markers, a visibility field
// and an 8-byte timestamp; the timestamp varies per entry and resists
// compression, which is part of why Rya's three indexes outweigh
// PRoST's columnar tables in Table 1.
func compressedIndexBytes(st *kv.Store) int64 {
	entries, _, err := st.ScanRange(nil, nil)
	if err != nil {
		return st.SizeBytes()
	}
	cw := &countingWriter{}
	fw, ferr := flate.NewWriter(cw, flate.BestSpeed)
	if ferr != nil {
		panic(fmt.Sprintf("rya: flate writer: %v", ferr))
	}
	var meta [16]byte
	for i, e := range entries {
		fw.Write(e.Key)
		// Pseudo-timestamp + key metadata: distinct per entry, like the
		// millisecond write timestamps Accumulo stores.
		ts := uint64(i)*0x9E3779B97F4A7C15 + 0x5DEECE66D
		for b := 0; b < 16; b++ {
			meta[b] = byte(ts >> ((b % 8) * 8))
		}
		fw.Write(meta[:])
		fw.Write([]byte{'\n'})
	}
	fw.Close()
	return cw.n
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// binding is one partial solution: variable name → term key segment.
type binding map[string]string

// Query evaluates the BGP with index nested loop joins: patterns are
// ordered by selectivity, then each pattern is answered by one range
// scan per current binding. Every scan's seeks and bytes are charged;
// the BatchScanner parallelism divides the seek latency, not the count.
func (s *Store) Query(q *sparql.Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	clock := cluster.NewClock()

	patterns := s.orderPatterns(q.Patterns)
	bindings := []binding{{}}
	for i, tp := range patterns {
		var agg kv.ScanStats
		var next []binding
		for _, b := range bindings {
			matches, st, err := s.lookup(tp, b)
			if err != nil {
				return nil, err
			}
			agg.Seeks += st.Seeks
			agg.BytesRead += st.BytesRead
			agg.Entries += st.Entries
			next = append(next, matches...)
		}
		// One "stage": client-side batched lookups. Seek latency is
		// divided by the batch parallelism; counts stay truthful.
		cost := s.cluster.Config().Cost
		elapsed := time.Duration(float64(agg.Seeks)*float64(cost.SeekTime)/float64(s.batch)) +
			time.Duration(float64(agg.BytesRead)/cost.KVScanBytesPerSec*float64(time.Second)) +
			time.Duration(int64(len(next)))*cost.RowTime
		clock.Charge(fmt.Sprintf("pattern %d: %d lookups", i+1, agg.Seeks), elapsed)
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}

	// FILTER application on complete bindings.
	bindings, err := s.applyFilters(q, bindings)
	if err != nil {
		return nil, err
	}

	// Projection and modifiers.
	proj := q.Projection()
	rows := make([][]rdf.Term, 0, len(bindings))
	for _, b := range bindings {
		row := make([]rdf.Term, len(proj))
		okRow := true
		for j, v := range proj {
			seg, ok := b[v]
			if !ok {
				okRow = false
				break
			}
			t, err := parseKeySegment(seg)
			if err != nil {
				return nil, err
			}
			row[j] = t
		}
		if okRow {
			rows = append(rows, row)
		}
	}
	if q.Distinct {
		rows = dedupeRows(rows)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{
		Vars:     proj,
		Rows:     rows,
		SimTime:  clock.Elapsed(),
		WallTime: time.Since(start),
		Clock:    clock,
	}, nil
}

// orderPatterns sorts by estimated selectivity: more bound positions
// first, literals ahead of IRIs, then ascending predicate cardinality —
// greedily keeping patterns connected so bindings propagate.
func (s *Store) orderPatterns(pats []sparql.TriplePattern) []sparql.TriplePattern {
	selectivity := func(tp sparql.TriplePattern) float64 {
		score := 0.0
		if !tp.S.IsVar() {
			score -= 1e9
		}
		if !tp.O.IsVar() {
			score -= 1e9
			if tp.O.Term.IsLiteral() {
				score -= 1e8
			}
		}
		if !tp.P.IsVar() {
			if pid, ok := s.dict.Lookup(tp.P.Term); ok {
				score += float64(s.stats.Predicate(pid).Triples)
			}
		} else {
			score += float64(s.stats.TotalTriples)
		}
		return score
	}
	pending := make([]sparql.TriplePattern, len(pats))
	copy(pending, pats)
	sort.SliceStable(pending, func(i, j int) bool { return selectivity(pending[i]) < selectivity(pending[j]) })

	var order []sparql.TriplePattern
	bound := map[string]bool{}
	take := func(i int) {
		tp := pending[i]
		order = append(order, tp)
		for _, v := range tp.Vars() {
			bound[v] = true
		}
		pending = append(pending[:i], pending[i+1:]...)
	}
	if len(pending) == 0 {
		return nil
	}
	take(0)
	for len(pending) > 0 {
		picked := -1
		for i, tp := range pending {
			for _, v := range tp.Vars() {
				if bound[v] {
					picked = i
					break
				}
			}
			if picked >= 0 {
				break
			}
		}
		if picked < 0 {
			picked = 0
		}
		take(picked)
	}
	return order
}

// resolved returns the key segment for a pattern position under a
// binding: the bound term's segment, the binding's value for the
// variable, or "" when free.
func resolved(pt sparql.PatternTerm, b binding) string {
	if !pt.IsVar() {
		return keyOf(pt.Term)
	}
	if seg, ok := b[pt.Var]; ok {
		return seg
	}
	return ""
}

// lookup answers one pattern under one binding with a single range scan
// against the best index for the bound prefix.
func (s *Store) lookup(tp sparql.TriplePattern, b binding) ([]binding, kv.ScanStats, error) {
	sSeg := resolved(tp.S, b)
	pSeg := resolved(tp.P, b)
	oSeg := resolved(tp.O, b)

	// Choose index and prefix from the bound positions; the entry
	// layout determines how segments map back to S/P/O.
	var store *kv.Store
	var prefixParts []string
	var layout [3]int // entry segment index → 0:s 1:p 2:o
	switch {
	case sSeg != "":
		store, layout = s.spo, [3]int{0, 1, 2}
		prefixParts = boundPrefix(sSeg, pSeg, oSeg)
	case pSeg != "":
		store, layout = s.pos, [3]int{1, 2, 0}
		prefixParts = boundPrefix(pSeg, oSeg, sSeg)
	case oSeg != "":
		store, layout = s.osp, [3]int{2, 0, 1}
		prefixParts = boundPrefix(oSeg, sSeg, pSeg)
	default:
		store, layout = s.spo, [3]int{0, 1, 2}
		prefixParts = nil
	}
	var prefix []byte
	if len(prefixParts) > 0 {
		prefix = []byte(strings.Join(prefixParts, sep) + sep)
		if len(prefixParts) == 3 {
			prefix = bytes.TrimSuffix(prefix, []byte(sep))
		}
	}
	entries, st, err := store.ScanPrefix(prefix)
	if err != nil {
		return nil, st, fmt.Errorf("rya: index scan: %w", err)
	}

	want := [3]string{sSeg, pSeg, oSeg}
	varOf := [3]string{varName(tp.S), varName(tp.P), varName(tp.O)}
	var out []binding
	for _, e := range entries {
		segs := strings.Split(string(e.Key), sep)
		if len(segs) != 3 {
			return nil, st, fmt.Errorf("rya: corrupt index key %q", e.Key)
		}
		spo := [3]string{segs[indexOfPos(layout, 0)], segs[indexOfPos(layout, 1)], segs[indexOfPos(layout, 2)]}
		ok := true
		nb := binding{}
		for k := 0; k < 3; k++ {
			if want[k] != "" {
				if spo[k] != want[k] {
					ok = false
					break
				}
				continue
			}
			v := varOf[k]
			if v == "" {
				continue
			}
			if prev, seen := nb[v]; seen && prev != spo[k] {
				ok = false
				break
			}
			nb[v] = spo[k]
		}
		if !ok {
			continue
		}
		merged := make(binding, len(b)+len(nb))
		for k, v := range b {
			merged[k] = v
		}
		for k, v := range nb {
			merged[k] = v
		}
		out = append(out, merged)
	}
	return out, st, nil
}

// boundPrefix collects the leading non-empty segments in index order.
func boundPrefix(segs ...string) []string {
	var out []string
	for _, s := range segs {
		if s == "" {
			break
		}
		out = append(out, s)
	}
	return out
}

// indexOfPos finds which entry segment holds S/P/O position pos.
func indexOfPos(layout [3]int, pos int) int {
	for i, p := range layout {
		if p == pos {
			return i
		}
	}
	return 0
}

// varName returns the variable name of a pattern position or "".
func varName(pt sparql.PatternTerm) string {
	if pt.IsVar() {
		return pt.Var
	}
	return ""
}

// applyFilters keeps the bindings satisfying every FILTER.
func (s *Store) applyFilters(q *sparql.Query, bindings []binding) ([]binding, error) {
	if len(q.Filters) == 0 {
		return bindings, nil
	}
	var out []binding
	for _, b := range bindings {
		keep := true
		for _, f := range q.Filters {
			seg, ok := b[f.Var]
			if !ok {
				keep = false
				break
			}
			t, err := parseKeySegment(seg)
			if err != nil {
				return nil, err
			}
			match, err := evalFilter(t, f)
			if err != nil {
				return nil, err
			}
			if !match {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, b)
		}
	}
	return out, nil
}

// evalFilter applies one comparison to a term.
func evalFilter(t rdf.Term, f sparql.Filter) (bool, error) {
	c := compareTerms(t, f.Value)
	switch f.Op {
	case sparql.OpEQ:
		return c == 0, nil
	case sparql.OpNE:
		return c != 0, nil
	case sparql.OpLT:
		return c < 0, nil
	case sparql.OpLE:
		return c <= 0, nil
	case sparql.OpGT:
		return c > 0, nil
	case sparql.OpGE:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("rya: unsupported filter operator %v", f.Op)
	}
}

// compareTerms compares numerically when both are integer literals.
func compareTerms(a, b rdf.Term) int {
	if a.IsLiteral() && b.IsLiteral() && a.Datatype == rdf.XSDInteger && b.Datatype == rdf.XSDInteger {
		av, aok := parseInt(a.Value)
		bv, bok := parseInt(b.Value)
		if aok && bok {
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			default:
				return 0
			}
		}
	}
	return a.Compare(b)
}

func parseInt(s string) (int64, bool) {
	var n int64
	neg := false
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if s == "" {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// parseKeySegment decodes a Term.String() segment back into a term.
func parseKeySegment(seg string) (rdf.Term, error) {
	doc := "<http://x> <http://y> " + seg + " ."
	g, err := rdf.ParseNTriples(doc)
	if err != nil || g.Len() != 1 {
		// Subject-position segments can be IRIs/blanks only; object
		// position accepts everything, so parse there.
		return rdf.Term{}, fmt.Errorf("rya: cannot decode key segment %q: %v", seg, err)
	}
	return g.Triples()[0].O, nil
}

// dedupeRows removes duplicate rows preserving order.
func dedupeRows(rows [][]rdf.Term) [][]rdf.Term {
	seen := make(map[string]struct{}, len(rows))
	var out [][]rdf.Term
	for _, r := range rows {
		var sb strings.Builder
		for _, t := range r {
			sb.WriteString(t.String())
			sb.WriteByte('\x00')
		}
		k := sb.String()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}
