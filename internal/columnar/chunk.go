// Package columnar implements a Parquet-like columnar storage codec for
// dictionary-encoded RDF data: run-length and varint encodings, list
// columns for multi-valued properties, row groups, and realistic on-disk
// size accounting.
//
// The paper stores the Property Table in Parquet precisely because
// run-length encoding makes its many NULLs nearly free (§3.1). This
// package reproduces that effect with real byte-level encoding, so the
// storage-size comparison of Table 1 measures genuine compressed sizes
// rather than estimates.
package columnar

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
)

// Encoding identifies how a chunk's bytes are laid out.
type Encoding uint8

// Supported encodings.
const (
	// EncPlain stores each value as a varint.
	EncPlain Encoding = iota
	// EncRLE stores (run length, value) varint pairs.
	EncRLE
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "PLAIN"
	case EncRLE:
		return "RLE"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// Chunk is one encoded column chunk of rdf.ID values. NullID (0)
// represents an absent cell; the encodings treat it as an ordinary value,
// which is exactly why NULL-dense Property Table columns compress so
// well under RLE.
type Chunk struct {
	enc  Encoding
	n    int
	data []byte
}

// EncodeIDs encodes vals, choosing whichever of the plain and RLE
// layouts is smaller — mirroring Parquet's per-chunk encoding selection.
func EncodeIDs(vals []rdf.ID) Chunk {
	rle := encodeRLE(vals)
	plain := encodePlain(vals)
	if len(rle) <= len(plain) {
		return Chunk{enc: EncRLE, n: len(vals), data: rle}
	}
	return Chunk{enc: EncPlain, n: len(vals), data: plain}
}

func encodePlain(vals []rdf.ID) []byte {
	buf := make([]byte, 0, len(vals))
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], uint64(v))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

func encodeRLE(vals []rdf.ID) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		n := binary.PutUvarint(tmp[:], uint64(j-i))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(vals[i]))
		buf = append(buf, tmp[:n]...)
		i = j
	}
	return buf
}

// Len returns the number of values in the chunk.
func (c Chunk) Len() int { return c.n }

// SizeBytes returns the encoded byte size (the chunk's on-disk cost).
func (c Chunk) SizeBytes() int64 { return int64(len(c.data)) }

// Encoding returns the layout the chunk was stored with.
func (c Chunk) Encoding() Encoding { return c.enc }

// Decode materializes the chunk's values.
func (c Chunk) Decode() ([]rdf.ID, error) {
	out := make([]rdf.ID, 0, c.n)
	data := c.data
	switch c.enc {
	case EncPlain:
		for len(out) < c.n {
			v, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, fmt.Errorf("columnar: corrupt plain chunk at value %d", len(out))
			}
			data = data[n:]
			out = append(out, rdf.ID(v))
		}
	case EncRLE:
		for len(out) < c.n {
			runLen, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, fmt.Errorf("columnar: corrupt RLE run length at value %d", len(out))
			}
			data = data[n:]
			v, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, fmt.Errorf("columnar: corrupt RLE value at value %d", len(out))
			}
			data = data[n:]
			for k := uint64(0); k < runLen; k++ {
				out = append(out, rdf.ID(v))
			}
		}
	default:
		return nil, fmt.Errorf("columnar: unknown encoding %d", c.enc)
	}
	if len(out) != c.n {
		return nil, fmt.Errorf("columnar: decoded %d values, expected %d", len(out), c.n)
	}
	return out, nil
}

// ListChunk is an encoded column of variable-length value lists, used
// for the Property Table's multi-valued properties (paper §3.1). It is
// stored as a lengths chunk plus a flattened values chunk, like
// Parquet's repetition levels.
type ListChunk struct {
	lengths Chunk
	values  Chunk
	rows    int
}

// EncodeLists encodes one list of values per row. Empty lists are valid
// and represent absent cells.
func EncodeLists(lists [][]rdf.ID) ListChunk {
	lengths := make([]rdf.ID, len(lists))
	var flat []rdf.ID
	for i, l := range lists {
		lengths[i] = rdf.ID(len(l))
		flat = append(flat, l...)
	}
	return ListChunk{
		lengths: EncodeIDs(lengths),
		values:  EncodeIDs(flat),
		rows:    len(lists),
	}
}

// Rows returns the number of rows (lists) in the chunk.
func (l ListChunk) Rows() int { return l.rows }

// SizeBytes returns the combined encoded size of lengths and values.
func (l ListChunk) SizeBytes() int64 { return l.lengths.SizeBytes() + l.values.SizeBytes() }

// Decode materializes the per-row value lists. Rows with no values
// decode as nil slices.
func (l ListChunk) Decode() ([][]rdf.ID, error) {
	lengths, err := l.lengths.Decode()
	if err != nil {
		return nil, fmt.Errorf("columnar: list lengths: %w", err)
	}
	values, err := l.values.Decode()
	if err != nil {
		return nil, fmt.Errorf("columnar: list values: %w", err)
	}
	out := make([][]rdf.ID, len(lengths))
	pos := 0
	for i, n := range lengths {
		ln := int(n)
		if pos+ln > len(values) {
			return nil, fmt.Errorf("columnar: list chunk truncated at row %d", i)
		}
		if ln > 0 {
			out[i] = values[pos : pos+ln : pos+ln]
		}
		pos += ln
	}
	if pos != len(values) {
		return nil, fmt.Errorf("columnar: %d trailing values after decoding lists", len(values)-pos)
	}
	return out, nil
}
