package columnar

import (
	"testing"

	"repro/internal/rdf"
)

// TestRowChunkRLEAcrossMorselBoundaries verifies that a long run of
// equal values split across chunk edges round-trips: each chunk
// re-encodes its slice of the run independently (RLE state never spans
// a chunk), and decoding re-concatenates the original rows exactly.
func TestRowChunkRLEAcrossMorselBoundaries(t *testing.T) {
	const width, n, chunkSize = 2, 1000, 64
	rows := make([][]rdf.ID, n)
	for i := range rows {
		// Column 0: runs of 100 equal values, deliberately misaligned
		// with the 64-row chunk boundary. Column 1: unique values, so the
		// encoder picks plain for one column and RLE for the other.
		rows[i] = []rdf.ID{rdf.ID(i/100 + 1), rdf.ID(i + 1)}
	}
	chunks, err := ChunkRows(width, rows, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if want := (n + chunkSize - 1) / chunkSize; len(chunks) != want {
		t.Fatalf("got %d chunks, want %d", len(chunks), want)
	}
	sawRLE := false
	var decoded [][]rdf.ID
	for ci, rc := range chunks {
		if rc.Column(0).Encoding() == EncRLE {
			sawRLE = true
		}
		got, err := rc.Decode()
		if err != nil {
			t.Fatalf("chunk %d: %v", ci, err)
		}
		decoded = append(decoded, got...)
	}
	if !sawRLE {
		t.Errorf("run-heavy column never chose RLE")
	}
	if len(decoded) != n {
		t.Fatalf("decoded %d rows, want %d", len(decoded), n)
	}
	for i := range rows {
		for c := 0; c < width; c++ {
			if decoded[i][c] != rows[i][c] {
				t.Fatalf("row %d col %d: got %d, want %d", i, c, decoded[i][c], rows[i][c])
			}
		}
	}
}

// TestRowChunkNullDense exercises a column dominated by NullID — the
// Property-Table shape RLE exists for — across several chunks.
func TestRowChunkNullDense(t *testing.T) {
	const n, chunkSize = 500, 128
	rows := make([][]rdf.ID, n)
	for i := range rows {
		v := rdf.NullID
		if i%97 == 0 {
			v = rdf.ID(i + 1)
		}
		rows[i] = []rdf.ID{v}
	}
	chunks, err := ChunkRows(1, rows, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var back [][]rdf.ID
	for _, rc := range chunks {
		if rc.Column(0).Encoding() != EncRLE {
			t.Errorf("null-dense column encoded as %v, want RLE", rc.Column(0).Encoding())
		}
		total += rc.SizeBytes()
		got, err := rc.Decode()
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, got...)
	}
	// A null-dense RLE column must compress far below one byte per value.
	if total >= int64(n) {
		t.Errorf("null-dense chunks take %d bytes for %d values; RLE should compress below 1 B/value", total, n)
	}
	for i := range rows {
		if back[i][0] != rows[i][0] {
			t.Fatalf("row %d: got %d, want %d", i, back[i][0], rows[i][0])
		}
	}
}

// TestRowChunkEmptyAndZeroWidth covers the degenerate morsels the
// streaming executor produces: empty batches (no chunks at all) and
// width-0 existence rows (row count, no columns).
func TestRowChunkEmptyAndZeroWidth(t *testing.T) {
	chunks, err := ChunkRows(3, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Fatalf("empty input produced %d chunks, want 0", len(chunks))
	}

	rc, err := EncodeRows(0, [][]rdf.ID{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Rows() != 3 || rc.Width() != 0 || rc.SizeBytes() != 0 {
		t.Fatalf("width-0 chunk: rows=%d width=%d bytes=%d, want 3/0/0", rc.Rows(), rc.Width(), rc.SizeBytes())
	}
	back, err := rc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("width-0 decode returned %d rows, want 3", len(back))
	}
	for i, r := range back {
		if len(r) != 0 {
			t.Fatalf("width-0 decode row %d has %d values", i, len(r))
		}
	}

	// Width mismatch is an error, not a panic or silent truncation.
	if _, err := EncodeRows(2, [][]rdf.ID{{1, 2}, {3}}); err == nil {
		t.Error("EncodeRows accepted a short row")
	}
}
