package columnar

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// DefaultRowGroupSize is the number of rows per row group, mirroring
// Parquet's practice of slicing files into independently encoded groups.
const DefaultRowGroupSize = 65536

// ColumnKind distinguishes scalar columns from list columns.
type ColumnKind uint8

// Column kinds.
const (
	// KindScalar holds one rdf.ID per row (NullID = absent).
	KindScalar ColumnKind = iota
	// KindList holds zero or more rdf.IDs per row.
	KindList
)

// column is one named column split into per-row-group chunks.
type column struct {
	name   string
	kind   ColumnKind
	chunks []Chunk
	lists  []ListChunk
}

// File is an immutable columnar file: a set of equally long columns
// split into row groups. It stands in for one Parquet file on HDFS.
type File struct {
	rows         int
	rowGroupSize int
	columns      map[string]*column
	order        []string
}

// Writer accumulates columns and produces a File. All columns must have
// the same row count.
type Writer struct {
	rowGroupSize int
	rows         int
	haveRows     bool
	columns      map[string]*column
	order        []string
	err          error
}

// NewWriter returns a writer with the given row-group size (0 means
// DefaultRowGroupSize).
func NewWriter(rowGroupSize int) *Writer {
	if rowGroupSize <= 0 {
		rowGroupSize = DefaultRowGroupSize
	}
	return &Writer{rowGroupSize: rowGroupSize, columns: map[string]*column{}}
}

func (w *Writer) checkRows(name string, n int) bool {
	if w.err != nil {
		return false
	}
	if _, dup := w.columns[name]; dup {
		w.err = fmt.Errorf("columnar: duplicate column %q", name)
		return false
	}
	if w.haveRows && n != w.rows {
		w.err = fmt.Errorf("columnar: column %q has %d rows, file has %d", name, n, w.rows)
		return false
	}
	w.rows, w.haveRows = n, true
	return true
}

// AddScalar appends a scalar column; NullID marks absent cells.
func (w *Writer) AddScalar(name string, vals []rdf.ID) *Writer {
	if !w.checkRows(name, len(vals)) {
		return w
	}
	col := &column{name: name, kind: KindScalar}
	for start := 0; start < len(vals) || start == 0; start += w.rowGroupSize {
		end := start + w.rowGroupSize
		if end > len(vals) {
			end = len(vals)
		}
		col.chunks = append(col.chunks, EncodeIDs(vals[start:end]))
		if end == len(vals) {
			break
		}
	}
	w.columns[name] = col
	w.order = append(w.order, name)
	return w
}

// AddList appends a list column; empty lists mark absent cells.
func (w *Writer) AddList(name string, lists [][]rdf.ID) *Writer {
	if !w.checkRows(name, len(lists)) {
		return w
	}
	col := &column{name: name, kind: KindList}
	for start := 0; start < len(lists) || start == 0; start += w.rowGroupSize {
		end := start + w.rowGroupSize
		if end > len(lists) {
			end = len(lists)
		}
		col.lists = append(col.lists, EncodeLists(lists[start:end]))
		if end == len(lists) {
			break
		}
	}
	w.columns[name] = col
	w.order = append(w.order, name)
	return w
}

// Finish validates and returns the file.
func (w *Writer) Finish() (*File, error) {
	if w.err != nil {
		return nil, w.err
	}
	return &File{
		rows:         w.rows,
		rowGroupSize: w.rowGroupSize,
		columns:      w.columns,
		order:        w.order,
	}, nil
}

// Rows returns the file's row count.
func (f *File) Rows() int { return f.rows }

// ColumnNames returns the column names in insertion order.
func (f *File) ColumnNames() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// HasColumn reports whether the file contains the named column.
func (f *File) HasColumn(name string) bool {
	_, ok := f.columns[name]
	return ok
}

// SizeBytes returns the file's total encoded size plus a small footer
// estimate (column metadata), standing in for the on-HDFS Parquet size.
func (f *File) SizeBytes() int64 {
	var total int64
	for _, c := range f.columns {
		for _, ch := range c.chunks {
			total += ch.SizeBytes()
		}
		for _, lc := range c.lists {
			total += lc.SizeBytes()
		}
		total += int64(len(c.name)) + 16 // footer metadata per column
	}
	return total + 64 // file footer/magic
}

// ColumnSizeBytes returns one column's encoded size, used by
// column-pruned scans to charge only the bytes actually read.
func (f *File) ColumnSizeBytes(name string) (int64, error) {
	c, ok := f.columns[name]
	if !ok {
		return 0, fmt.Errorf("columnar: no column %q", name)
	}
	var total int64
	for _, ch := range c.chunks {
		total += ch.SizeBytes()
	}
	for _, lc := range c.lists {
		total += lc.SizeBytes()
	}
	return total, nil
}

// ReadScalar decodes an entire scalar column.
func (f *File) ReadScalar(name string) ([]rdf.ID, error) {
	c, ok := f.columns[name]
	if !ok {
		return nil, fmt.Errorf("columnar: no column %q", name)
	}
	if c.kind != KindScalar {
		return nil, fmt.Errorf("columnar: column %q is not scalar", name)
	}
	out := make([]rdf.ID, 0, f.rows)
	for _, ch := range c.chunks {
		vals, err := ch.Decode()
		if err != nil {
			return nil, fmt.Errorf("columnar: column %q: %w", name, err)
		}
		out = append(out, vals...)
	}
	return out, nil
}

// ReadList decodes an entire list column.
func (f *File) ReadList(name string) ([][]rdf.ID, error) {
	c, ok := f.columns[name]
	if !ok {
		return nil, fmt.Errorf("columnar: no column %q", name)
	}
	if c.kind != KindList {
		return nil, fmt.Errorf("columnar: column %q is not a list column", name)
	}
	out := make([][]rdf.ID, 0, f.rows)
	for _, lc := range c.lists {
		lists, err := lc.Decode()
		if err != nil {
			return nil, fmt.Errorf("columnar: column %q: %w", name, err)
		}
		out = append(out, lists...)
	}
	return out, nil
}

// Stats summarizes a file for diagnostics: per-column sizes sorted by
// name.
func (f *File) Stats() []ColumnStat {
	out := make([]ColumnStat, 0, len(f.columns))
	for name, c := range f.columns {
		var size int64
		for _, ch := range c.chunks {
			size += ch.SizeBytes()
		}
		for _, lc := range c.lists {
			size += lc.SizeBytes()
		}
		out = append(out, ColumnStat{Name: name, Kind: c.kind, SizeBytes: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ColumnStat is one column's summary.
type ColumnStat struct {
	Name      string
	Kind      ColumnKind
	SizeBytes int64
}
