package columnar

import (
	"fmt"

	"repro/internal/rdf"
)

// RowChunk is one fixed-width batch of rows encoded column-at-a-time:
// each column is its own Chunk (plain varint or RLE, whichever is
// smaller), so a chunk of join output whose key column repeats — or a
// Property-Table column dense in NullID — compresses exactly like the
// on-disk format. The streaming executor moves intermediate rows
// between pipeline stages in this representation, which is what bounds
// the memory high-water mark to O(chunks in flight) instead of
// O(intermediate relations).
//
// Width-0 chunks (existence results) are valid: they carry a row count
// and no columns.
type RowChunk struct {
	cols []Chunk
	rows int
}

// EncodeRows encodes a batch of rows of the given width. Every row must
// have exactly width values; rows may be nil when width is 0.
func EncodeRows(width int, rows [][]rdf.ID) (RowChunk, error) {
	rc := RowChunk{rows: len(rows)}
	if width == 0 {
		return rc, nil
	}
	col := make([]rdf.ID, len(rows))
	rc.cols = make([]Chunk, width)
	for c := 0; c < width; c++ {
		for i, r := range rows {
			if len(r) != width {
				return RowChunk{}, fmt.Errorf("columnar: row %d has width %d, chunk width is %d", i, len(r), width)
			}
			col[i] = r[c]
		}
		rc.cols[c] = EncodeIDs(col)
	}
	return rc, nil
}

// Rows returns the number of rows in the chunk.
func (rc RowChunk) Rows() int { return rc.rows }

// Width returns the number of columns.
func (rc RowChunk) Width() int { return len(rc.cols) }

// SizeBytes returns the total encoded size across columns — the
// chunk's wire/in-flight footprint.
func (rc RowChunk) SizeBytes() int64 {
	var n int64
	for _, c := range rc.cols {
		n += c.SizeBytes()
	}
	return n
}

// Column returns the encoded chunk of one column.
func (rc RowChunk) Column(i int) Chunk { return rc.cols[i] }

// Decode materializes the chunk back into row-major form. Width-0
// chunks decode to rows of length zero.
func (rc RowChunk) Decode() ([][]rdf.ID, error) {
	out := make([][]rdf.ID, rc.rows)
	if len(rc.cols) == 0 {
		for i := range out {
			out[i] = []rdf.ID{}
		}
		return out, nil
	}
	flat := make([]rdf.ID, rc.rows*len(rc.cols))
	for i := range out {
		out[i] = flat[i*len(rc.cols) : (i+1)*len(rc.cols) : (i+1)*len(rc.cols)]
	}
	for c, ch := range rc.cols {
		vals, err := ch.Decode()
		if err != nil {
			return nil, fmt.Errorf("columnar: column %d: %w", c, err)
		}
		if len(vals) != rc.rows {
			return nil, fmt.Errorf("columnar: column %d decoded %d values, chunk has %d rows", c, len(vals), rc.rows)
		}
		for i, v := range vals {
			out[i][c] = v
		}
	}
	return out, nil
}

// ChunkRows splits rows into encoded chunks of at most chunkSize rows —
// the morsel boundary the streaming executor hands batches across. A
// chunkSize <= 0 produces a single chunk.
func ChunkRows(width int, rows [][]rdf.ID, chunkSize int) ([]RowChunk, error) {
	if chunkSize <= 0 {
		chunkSize = len(rows)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]RowChunk, 0, (len(rows)+chunkSize-1)/chunkSize)
	for start := 0; start < len(rows); start += chunkSize {
		end := start + chunkSize
		if end > len(rows) {
			end = len(rows)
		}
		rc, err := EncodeRows(width, rows[start:end])
		if err != nil {
			return nil, err
		}
		out = append(out, rc)
	}
	return out, nil
}
