package columnar

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestChunkRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		vals []rdf.ID
	}{
		{"empty", nil},
		{"single", []rdf.ID{7}},
		{"all same", []rdf.ID{5, 5, 5, 5, 5}},
		{"all nulls", []rdf.ID{0, 0, 0, 0}},
		{"mixed runs", []rdf.ID{1, 1, 1, 0, 0, 9, 9, 9, 9, 2}},
		{"no runs", []rdf.ID{1, 2, 3, 4, 5, 6}},
		{"large values", []rdf.ID{1 << 30, 1<<30 + 1, 1 << 30}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := EncodeIDs(tt.vals)
			if c.Len() != len(tt.vals) {
				t.Fatalf("Len() = %d, want %d", c.Len(), len(tt.vals))
			}
			got, err := c.Decode()
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if len(got) != len(tt.vals) {
				t.Fatalf("decoded %d values, want %d", len(got), len(tt.vals))
			}
			for i := range tt.vals {
				if got[i] != tt.vals[i] {
					t.Errorf("value %d = %d, want %d", i, got[i], tt.vals[i])
				}
			}
		})
	}
}

func TestChunkRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := make([]rdf.ID, len(raw))
		for i, v := range raw {
			vals[i] = rdf.ID(v)
		}
		got, err := EncodeIDs(vals).Decode()
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRLEWinsOnRuns(t *testing.T) {
	// A NULL-dense column (the Property Table case) must choose RLE and
	// compress dramatically versus plain encoding.
	vals := make([]rdf.ID, 10000)
	vals[0] = 12345 // one non-null value
	c := EncodeIDs(vals)
	if c.Encoding() != EncRLE {
		t.Fatalf("NULL-dense column encoded as %v, want RLE", c.Encoding())
	}
	if c.SizeBytes() > 32 {
		t.Errorf("10000 NULLs occupy %d bytes under RLE, want ≤ 32", c.SizeBytes())
	}
}

func TestPlainWinsOnDistinctValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]rdf.ID, 1000)
	for i := range vals {
		vals[i] = rdf.ID(rng.Uint32()%100000 + 1)
	}
	c := EncodeIDs(vals)
	if c.Encoding() != EncPlain {
		t.Errorf("high-cardinality column encoded as %v, want PLAIN", c.Encoding())
	}
}

func TestEncodingString(t *testing.T) {
	if EncPlain.String() != "PLAIN" || EncRLE.String() != "RLE" {
		t.Errorf("encoding names wrong: %v %v", EncPlain, EncRLE)
	}
	if Encoding(9).String() != "Encoding(9)" {
		t.Errorf("unknown encoding name: %v", Encoding(9))
	}
}

func TestListChunkRoundTrip(t *testing.T) {
	lists := [][]rdf.ID{
		{1, 2, 3},
		nil,
		{7},
		{},
		{5, 5},
	}
	lc := EncodeLists(lists)
	if lc.Rows() != 5 {
		t.Fatalf("Rows() = %d, want 5", lc.Rows())
	}
	got, err := lc.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := [][]rdf.ID{{1, 2, 3}, nil, {7}, nil, {5, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Decode() = %v, want %v", got, want)
	}
}

func TestListChunkProperty(t *testing.T) {
	f := func(spec []uint8) bool {
		// Build lists whose lengths come from spec.
		lists := make([][]rdf.ID, len(spec))
		v := rdf.ID(1)
		for i, n := range spec {
			for j := 0; j < int(n%5); j++ {
				lists[i] = append(lists[i], v)
				v++
			}
		}
		got, err := EncodeLists(lists).Decode()
		if err != nil || len(got) != len(lists) {
			return false
		}
		for i := range lists {
			if len(got[i]) != len(lists[i]) {
				return false
			}
			for j := range lists[i] {
				if got[i][j] != lists[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFileWriterRoundTrip(t *testing.T) {
	w := NewWriter(4) // tiny row groups to exercise splitting
	subjects := []rdf.ID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ages := []rdf.ID{0, 20, 0, 21, 0, 0, 0, 22, 0, 0}
	likes := [][]rdf.ID{{100, 101}, nil, {102}, nil, nil, {103, 104, 105}, nil, nil, nil, {106}}
	w.AddScalar("s", subjects).AddScalar("age", ages).AddList("likes", likes)
	f, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if f.Rows() != 10 {
		t.Fatalf("Rows() = %d, want 10", f.Rows())
	}
	if !reflect.DeepEqual(f.ColumnNames(), []string{"s", "age", "likes"}) {
		t.Errorf("ColumnNames() = %v", f.ColumnNames())
	}
	gotS, err := f.ReadScalar("s")
	if err != nil {
		t.Fatalf("ReadScalar(s): %v", err)
	}
	if !reflect.DeepEqual(gotS, subjects) {
		t.Errorf("s column = %v, want %v", gotS, subjects)
	}
	gotLikes, err := f.ReadList("likes")
	if err != nil {
		t.Fatalf("ReadList(likes): %v", err)
	}
	for i := range likes {
		if len(gotLikes[i]) != len(likes[i]) {
			t.Errorf("likes row %d = %v, want %v", i, gotLikes[i], likes[i])
		}
	}
	if f.SizeBytes() <= 0 {
		t.Errorf("SizeBytes() = %d", f.SizeBytes())
	}
}

func TestFileWriterErrors(t *testing.T) {
	t.Run("row mismatch", func(t *testing.T) {
		w := NewWriter(0)
		w.AddScalar("a", []rdf.ID{1, 2, 3}).AddScalar("b", []rdf.ID{1})
		if _, err := w.Finish(); err == nil {
			t.Errorf("Finish succeeded with mismatched row counts")
		}
	})
	t.Run("duplicate column", func(t *testing.T) {
		w := NewWriter(0)
		w.AddScalar("a", []rdf.ID{1}).AddScalar("a", []rdf.ID{2})
		if _, err := w.Finish(); err == nil {
			t.Errorf("Finish succeeded with duplicate column")
		}
	})
}

func TestFileColumnAccessErrors(t *testing.T) {
	w := NewWriter(0)
	w.AddScalar("s", []rdf.ID{1}).AddList("l", [][]rdf.ID{{2}})
	f, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := f.ReadScalar("missing"); err == nil {
		t.Errorf("ReadScalar(missing) succeeded")
	}
	if _, err := f.ReadScalar("l"); err == nil {
		t.Errorf("ReadScalar on list column succeeded")
	}
	if _, err := f.ReadList("s"); err == nil {
		t.Errorf("ReadList on scalar column succeeded")
	}
	if _, err := f.ColumnSizeBytes("missing"); err == nil {
		t.Errorf("ColumnSizeBytes(missing) succeeded")
	}
	if !f.HasColumn("s") || f.HasColumn("zzz") {
		t.Errorf("HasColumn wrong")
	}
}

func TestColumnPruningSizes(t *testing.T) {
	// The sum of per-column sizes must not exceed the file size, and a
	// wide-but-sparse column must cost less than a dense one.
	w := NewWriter(0)
	n := 5000
	dense := make([]rdf.ID, n)
	sparse := make([]rdf.ID, n)
	for i := range dense {
		dense[i] = rdf.ID(i + 1)
	}
	sparse[42] = 7
	w.AddScalar("dense", dense).AddScalar("sparse", sparse)
	f, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	sd, _ := f.ColumnSizeBytes("dense")
	ss, _ := f.ColumnSizeBytes("sparse")
	if ss >= sd {
		t.Errorf("sparse column (%d bytes) not smaller than dense (%d bytes)", ss, sd)
	}
	if sd+ss > f.SizeBytes() {
		t.Errorf("column sizes %d+%d exceed file size %d", sd, ss, f.SizeBytes())
	}
	stats := f.Stats()
	if len(stats) != 2 || stats[0].Name != "dense" {
		t.Errorf("Stats() = %v", stats)
	}
}

func TestEmptyFile(t *testing.T) {
	w := NewWriter(0)
	w.AddScalar("s", nil)
	f, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if f.Rows() != 0 {
		t.Errorf("Rows() = %d, want 0", f.Rows())
	}
	vals, err := f.ReadScalar("s")
	if err != nil {
		t.Fatalf("ReadScalar: %v", err)
	}
	if len(vals) != 0 {
		t.Errorf("decoded %d values from empty column", len(vals))
	}
}
