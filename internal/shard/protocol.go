// Package shard implements true scale-out execution. A prost-shard
// worker process hosts a deterministically loaded copy of the store and
// owns the partitions p with p % shards == shard; the coordinator runs
// the normal single-process planning and scheduling path and delegates
// only per-partition kernels — filtered scans and exchange joins — to
// the shards over TCP. Kernels are pure functions of their fragments
// and every stage's TaskStats derive from coordinator-known values, so
// results and SimTime are bit-identical to single-process execution.
//
// The protocol is one request/response frame pair per shard per
// exchange (package wire framing: magic, type, length, payload, FNV-1a
// checksum). Payload headers are gob; row data inside them uses the
// packed dictionary-ID layout of wire.AppendRows, and each response's
// partitions additionally carry an engine.RowsChecksum the coordinator
// verifies end to end.
package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Frame type bytes. Requests flow coordinator → shard; every request is
// answered with msgOK (gob payload of the matching response struct) or
// msgErr (gob errResp).
const (
	msgHello byte = 1 + iota
	msgScan
	msgShuffle
	msgBroadcast
	msgCartesian
	msgDistinct
	msgOK
	msgErr
)

// helloReq opens a connection: the coordinator states the topology and
// dataset it expects, and the shard refuses the handshake on any
// mismatch — a shard serving different partitions or a differently
// loaded dataset would silently corrupt results otherwise.
type helloReq struct {
	Shard, Shards int
	Partitions    int
	Workers       int
	Fingerprint   uint64
}

// helloResp acknowledges a validated handshake.
type helloResp struct{}

// errResp carries a shard-side failure message.
type errResp struct {
	Msg string
}

// scanReq evaluates one Join Tree node's scan kernel over the shard's
// owned partitions, with the query's pushed-down FILTERs applied
// shard-side.
type scanReq struct {
	Node    core.Node
	Filters []sparql.Filter
}

// scanResp returns the filtered rows per owned partition plus the
// per-partition processed key counts PT scan pricing needs.
type scanResp struct {
	Parts     []byte
	Processed []int64
	Checksum  uint64
}

// shuffleReq carries both sides' owned fragments of a shuffle hash
// join whose routing the coordinator already computed.
type shuffleReq struct {
	Spec  engine.ShuffleSpec
	Parts int
	L, R  []byte
}

// broadcastReq carries the whole build side (a row section) and the
// shard's owned probe partitions.
type broadcastReq struct {
	Spec  engine.BroadcastSpec
	Parts int
	Build []byte
	Probe []byte
}

// cartesianReq carries the whole small side and the shard's owned
// partitions of the large side.
type cartesianReq struct {
	Spec  engine.CartesianSpec
	Parts int
	Small []byte
	Large []byte
}

// distinctReq carries the shard's owned partitions of an
// already-shuffled distinct input.
type distinctReq struct {
	Spec  engine.DistinctSpec
	Parts int
	In    []byte
}

// exchangeResp returns an exchange kernel's owned output partitions.
type exchangeResp struct {
	Parts    []byte
	Checksum uint64
}

// encodeMsg gob-encodes one protocol struct. A fresh encoder per
// message keeps frames self-contained (no cross-frame stream state).
func encodeMsg(v any) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// decodeMsg decodes a frame payload into the given protocol struct.
func decodeMsg(p []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(p)).Decode(v)
}

// appendRowSection packs engine rows in the wire codec's packed layout
// (width ++ count ++ row-major IDs, uint32 little-endian — the exact
// layout of wire.AppendRows). The explicit width covers empty row sets.
func appendRowSection(buf []byte, width int, rows []engine.Row) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(width))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		for _, v := range r {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf
}

// decodeRowSection decodes one packed row section into engine rows,
// returning the remaining bytes. Guards mirror wire.DecodeRows: a
// truncated body and an implausible width-0 count are both rejected
// before any allocation sized from untrusted input.
func decodeRowSection(buf []byte) ([]engine.Row, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("shard: row section truncated header")
	}
	width := int(binary.LittleEndian.Uint32(buf))
	count := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if width != 0 && count > len(buf)/(width*4) {
		return nil, nil, fmt.Errorf("shard: row section truncated body (%d×%d rows, %d bytes left)", count, width, len(buf))
	}
	if width == 0 && count > 1<<20 {
		return nil, nil, fmt.Errorf("shard: implausible width-0 row count %d", count)
	}
	rows := make([]engine.Row, count)
	if width == 0 {
		for i := range rows {
			rows[i] = engine.Row{}
		}
		return rows, buf, nil
	}
	flat := make([]rdf.ID, width*count)
	for i := range flat {
		flat[i] = rdf.ID(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	for i := range rows {
		rows[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	return rows, buf[width*count*4:], nil
}

// appendPartSet packs the partitions own selects out of parts: an entry
// count, then per entry the global partition index followed by a row
// section. Partitions outside the set decode back as nil.
func appendPartSet(buf []byte, parts [][]engine.Row, width int, own func(p int) bool) []byte {
	cntAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	n := 0
	for p, rows := range parts {
		if !own(p) {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
		buf = appendRowSection(buf, width, rows)
		n++
	}
	binary.LittleEndian.PutUint32(buf[cntAt:], uint32(n))
	return buf
}

// decodePartSet decodes a part set into a dense partition slice of the
// given total length, entries at their global indexes and absent
// partitions nil.
func decodePartSet(buf []byte, total int) ([][]engine.Row, error) {
	if total < 0 {
		return nil, fmt.Errorf("shard: negative partition count %d", total)
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("shard: part set truncated header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n > total {
		return nil, fmt.Errorf("shard: part set has %d entries for %d partitions", n, total)
	}
	parts := make([][]engine.Row, total)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("shard: part set truncated entry %d", i)
		}
		p := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if p >= total {
			return nil, fmt.Errorf("shard: part set entry index %d out of %d partitions", p, total)
		}
		rows, rest, err := decodeRowSection(buf)
		if err != nil {
			return nil, err
		}
		parts[p] = rows
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after part set", len(buf))
	}
	return parts, nil
}

// partsWidth returns the row width of the first non-empty partition
// (0 when every partition is empty — the encoded width is then only a
// placeholder, since no row bodies follow it).
func partsWidth(parts [][]engine.Row) int {
	for _, rows := range parts {
		if len(rows) > 0 {
			return len(rows[0])
		}
	}
	return 0
}

// rowsWidth is partsWidth for a flat row slice.
func rowsWidth(rows []engine.Row) int {
	if len(rows) > 0 {
		return len(rows[0])
	}
	return 0
}
