package shard

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sparql"
	"repro/internal/wire"
)

// Coordinator is the client side of scale-out execution: one persistent
// TCP connection per shard, handed to queries as per-query DistSessions
// (core.DistRunner) and aggregating wire measurements across sessions
// (core.NetworkReporter). It also hosts the calibration layer: every
// exchange records measured bytes against the cost model's price, and
// measured per-table scan bytes feed back into the next run's leaf
// pricing record so the calibration error narrows run over run.
type Coordinator struct {
	parts   int
	workers int
	fp      uint64
	conns   []*shardConn

	// leafMu guards leaf, the calibration store: measured wire bytes per
	// scan site (label + pushed filters), seeded by the first run and
	// used to price the same leaf on later runs.
	leafMu sync.Mutex
	leaf   map[string]int64

	// aggMu guards the cross-session exchange aggregates /stats reports.
	aggMu     sync.Mutex
	exchanges int64
	calSum    float64
	calN      int64
}

// Dial connects to every shard in addrs (addrs[i] is shard i of
// len(addrs)) and performs the topology/dataset handshake against the
// coordinator's own store. Any refusal or connection failure aborts the
// whole dial.
func Dial(store *core.Store, addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: no shard addresses")
	}
	c := &Coordinator{
		parts:   store.Partitions(),
		workers: store.Cluster().Workers(),
		fp:      store.Stats().Fingerprint(),
		leaf:    map[string]int64{},
	}
	for i, addr := range addrs {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, &wire.ShardError{Addr: addr, Shard: i, Err: err}
		}
		sc := &shardConn{addr: addr, shard: i, c: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
		c.conns = append(c.conns, sc)
		var resp helloResp
		if _, _, _, err := sc.call(msgHello, helloReq{
			Shard: i, Shards: len(addrs),
			Partitions: c.parts, Workers: c.workers, Fingerprint: c.fp,
		}, &resp); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close severs every shard connection.
func (c *Coordinator) Close() error {
	var err error
	for _, sc := range c.conns {
		if cerr := sc.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Shards returns the topology size.
func (c *Coordinator) Shards() int { return len(c.conns) }

// Session implements core.DistRunner: sessions share the coordinator's
// connections (per-connection calls serialize) and keep their own
// exchange records.
func (c *Coordinator) Session(q *sparql.Query) (core.DistSession, error) {
	return &session{c: c, filters: append([]sparql.Filter(nil), q.Filters...)}, nil
}

// NetworkStats implements core.NetworkReporter.
func (c *Coordinator) NetworkStats() core.NetworkStats {
	var ns core.NetworkStats
	for _, sc := range c.conns {
		sent, recv, calls, rtts := sc.snapshot()
		ns.BytesSent += sent
		ns.BytesReceived += recv
		ns.ShardRTT = append(ns.ShardRTT, core.ShardRTT{
			Addr:  sc.addr,
			Calls: calls,
			P50:   durationQuantile(rtts, 0.50),
			P99:   durationQuantile(rtts, 0.99),
		})
	}
	c.aggMu.Lock()
	ns.Exchanges = c.exchanges
	ns.CalibratedExchanges = c.calN
	if c.calN > 0 {
		ns.CalibrationError = c.calSum / float64(c.calN)
	}
	c.aggMu.Unlock()
	return ns
}

// leafPrice resolves a scan site's calibrated price: the measured bytes
// a previous run stored, or the cost model's figure on first sight.
func (c *Coordinator) leafPrice(key string, modeledBytes int64) int64 {
	c.leafMu.Lock()
	defer c.leafMu.Unlock()
	if m, ok := c.leaf[key]; ok {
		return m
	}
	return modeledBytes
}

// storeLeaf records a scan site's measured wire bytes for later runs.
func (c *Coordinator) storeLeaf(key string, measured int64) {
	c.leafMu.Lock()
	c.leaf[key] = measured
	c.leafMu.Unlock()
}

// noteRecord folds one exchange record into the cross-session
// aggregates. Only shuffle exchanges enter the calibration error: their
// price and payload describe the same physical movement, whereas
// broadcast-style prices scale with the simulated worker count rather
// than the shard count that actually received copies.
func (c *Coordinator) noteRecord(r core.ExchangeRecord) {
	c.aggMu.Lock()
	c.exchanges++
	if r.Kind == "shuffle" && r.PricedBytes > 0 && r.MeasuredBytes > 0 {
		c.calSum += math.Abs(math.Log2(float64(r.MeasuredBytes) / float64(r.PricedBytes)))
		c.calN++
	}
	c.aggMu.Unlock()
}

// shardConn is one shard's connection: calls serialize on mu (one
// request/response in flight), and every call's bytes and round-trip
// latency are recorded for /stats.
type shardConn struct {
	addr  string
	shard int
	c     net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	mu    sync.Mutex

	statMu sync.Mutex
	sent   int64
	recv   int64
	calls  int64
	rtts   []time.Duration
}

// maxRTTSamples bounds per-shard latency memory; past it, samples
// overwrite ring-style so quantiles track the recent window.
const maxRTTSamples = 1 << 13

// call performs one framed request/response exchange. Every failure —
// transport, shard-reported, or codec — comes back as a
// *wire.ShardError naming this shard, so query errors surface through
// the task-attempt machinery as a worker outage.
func (sc *shardConn) call(typ byte, req, resp any) (sent, recv int64, wall time.Duration, err error) {
	payload, err := encodeMsg(req)
	if err != nil {
		return 0, 0, 0, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: err}
	}
	sc.mu.Lock()
	start := time.Now()
	var rtyp byte
	var rp []byte
	sent, err = wire.WriteFrame(sc.bw, typ, payload)
	if err == nil {
		err = sc.bw.Flush()
	}
	if err == nil {
		rtyp, rp, recv, err = wire.ReadFrame(sc.br)
	}
	wall = time.Since(start)
	sc.mu.Unlock()
	sc.note(sent, recv, wall)
	if err != nil {
		return sent, recv, wall, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: err}
	}
	switch rtyp {
	case msgErr:
		var er errResp
		if derr := decodeMsg(rp, &er); derr != nil {
			er.Msg = fmt.Sprintf("undecodable shard error: %v", derr)
		}
		return sent, recv, wall, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: errors.New(er.Msg)}
	case msgOK:
		if derr := decodeMsg(rp, resp); derr != nil {
			return sent, recv, wall, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: derr}
		}
		return sent, recv, wall, nil
	default:
		return sent, recv, wall, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: fmt.Errorf("unexpected response type %d", rtyp)}
	}
}

// note records one call's wire bytes and latency.
func (sc *shardConn) note(sent, recv int64, wall time.Duration) {
	sc.statMu.Lock()
	sc.sent += sent
	sc.recv += recv
	if len(sc.rtts) < maxRTTSamples {
		sc.rtts = append(sc.rtts, wall)
	} else {
		sc.rtts[sc.calls%maxRTTSamples] = wall
	}
	sc.calls++
	sc.statMu.Unlock()
}

// snapshot copies the connection's counters for reporting.
func (sc *shardConn) snapshot() (sent, recv, calls int64, rtts []time.Duration) {
	sc.statMu.Lock()
	defer sc.statMu.Unlock()
	return sc.sent, sc.recv, sc.calls, append([]time.Duration(nil), sc.rtts...)
}

// durationQuantile returns the q-quantile of samples (nearest-rank).
func durationQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// session is one query's DistSession: it resolves FILTER indexes
// against the query it was opened for, fans every exchange out to all
// shards, and records measured-vs-priced bytes per exchange.
type session struct {
	c       *Coordinator
	filters []sparql.Filter

	mu      sync.Mutex
	records []core.ExchangeRecord
}

// Records implements core.DistSession.
func (s *session) Records() []core.ExchangeRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.ExchangeRecord(nil), s.records...)
}

// Close implements core.DistSession; connections outlive sessions.
func (s *session) Close() error { return nil }

// record appends one exchange record and feeds the coordinator's
// aggregates.
func (s *session) record(r core.ExchangeRecord) {
	s.mu.Lock()
	s.records = append(s.records, r)
	s.mu.Unlock()
	s.c.noteRecord(r)
}

// shardCall is one shard's measured contribution to a fan-out.
type shardCall struct {
	sent, recv int64
	wall       time.Duration
	parts      [][]engine.Row
}

// fanOut runs fn for every shard concurrently and merges the responses:
// out[p] comes from p's owner, wire bytes sum, and the exchange wall
// time is the slowest shard's round trip (shards work in parallel).
// The lowest-index error wins, keeping failures deterministic.
func (s *session) fanOut(total int, fn func(sc *shardConn, own func(p int) bool) (shardCall, error)) (out [][]engine.Row, wireBytes int64, wall time.Duration, err error) {
	conns := s.c.conns
	calls := make([]shardCall, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, sc := range conns {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			own := func(p int) bool { return p%len(conns) == i }
			calls[i], errs[i] = fn(sc, own)
		}(i, sc)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, 0, 0, e
		}
	}
	out = make([][]engine.Row, total)
	for i, call := range calls {
		wireBytes += call.sent + call.recv
		if call.wall > wall {
			wall = call.wall
		}
		for p := i; p < total; p += len(conns) {
			out[p] = call.parts[p]
		}
	}
	return out, wireBytes, wall, nil
}

// verifyParts decodes and end-to-end-checks one response's partitions.
func verifyParts(sc *shardConn, packed []byte, total int, sum uint64) ([][]engine.Row, error) {
	parts, err := decodePartSet(packed, total)
	if err != nil {
		return nil, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: err}
	}
	if engine.RowsChecksum(parts) != sum {
		return nil, &wire.ShardError{Addr: sc.addr, Shard: sc.shard, Err: fmt.Errorf("exchange payload checksum mismatch")}
	}
	return parts, nil
}

// partPayloadBytes is the packed row-ID payload of a partition set: 4
// bytes per value, framing excluded. Every partition crosses the wire
// exactly once (to its owner), so the payload is a property of the
// fragments alone; sparse-set and frame overhead counts toward
// WireBytes instead, keeping MeasuredBytes comparable with the cost
// model's per-row prices even for tiny exchanges.
func partPayloadBytes(parts [][]engine.Row, width int) int64 {
	var rows int64
	for _, p := range parts {
		rows += int64(len(p))
	}
	return rows * int64(width) * 4
}

// rowsPayloadBytes is partPayloadBytes for a flat row slice.
func rowsPayloadBytes(rows []engine.Row, width int) int64 {
	return int64(len(rows)) * int64(width) * 4
}

// ScanNode implements core.DistSession: every shard scans its owned
// partitions of the node's table with the pushed filters applied
// shard-side; the merged result and summed processed counts are exactly
// what the local scan kernels produce.
func (s *session) ScanNode(n *core.Node, filterIdx []int, label string, modeledBytes int64) ([][]engine.Row, []int64, error) {
	filters := make([]sparql.Filter, 0, len(filterIdx))
	for _, i := range filterIdx {
		if i < 0 || i >= len(s.filters) {
			return nil, nil, fmt.Errorf("shard: filter index %d out of %d", i, len(s.filters))
		}
		filters = append(filters, s.filters[i])
	}
	req := scanReq{Node: *n, Filters: filters}
	processedBy := make([][]int64, len(s.c.conns))
	out, wireBytes, wall, err := s.fanOut(s.c.parts, func(sc *shardConn, own func(p int) bool) (shardCall, error) {
		var resp scanResp
		sent, recv, w, err := sc.call(msgScan, req, &resp)
		if err != nil {
			return shardCall{}, err
		}
		parts, err := verifyParts(sc, resp.Parts, s.c.parts, resp.Checksum)
		if err != nil {
			return shardCall{}, err
		}
		if len(resp.Processed) != s.c.parts {
			return shardCall{}, &wire.ShardError{Addr: sc.addr, Shard: sc.shard,
				Err: fmt.Errorf("scan returned %d processed counts for %d partitions", len(resp.Processed), s.c.parts)}
		}
		processedBy[sc.shard] = resp.Processed
		return shardCall{sent: sent, recv: recv, wall: w, parts: parts}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	processed := make([]int64, s.c.parts)
	for p := range processed {
		processed[p] = processedBy[p%len(s.c.conns)][p]
	}
	payload := partPayloadBytes(out, partsWidth(out))
	key := leafKey(label, filters)
	priced := s.c.leafPrice(key, modeledBytes)
	s.c.storeLeaf(key, payload)
	s.record(core.ExchangeRecord{
		Kind: "scan", Name: label,
		PricedBytes: priced, MeasuredBytes: payload,
		WireBytes: wireBytes, Wall: wall,
	})
	return out, processed, nil
}

// leafKey identifies a scan site for the calibration store: the node
// label plus the pushed filters that shape its measured payload.
func leafKey(label string, filters []sparql.Filter) string {
	if len(filters) == 0 {
		return label
	}
	var sb strings.Builder
	sb.WriteString(label)
	for _, f := range filters {
		sb.WriteByte('|')
		sb.WriteString(f.String())
	}
	return sb.String()
}

// ShuffleJoin implements engine.Exchanger. The coordinator already
// routed both sides; each shard receives the fragments of the
// partitions it owns and joins them. A side the model priced at zero
// (aligned on the join key) still crosses the wire — its relation lives
// coordinator-side — but that relay payload counts only toward
// WireBytes, keeping MeasuredBytes comparable with the price.
func (s *session) ShuffleJoin(spec engine.ShuffleSpec, lParts, rParts [][]engine.Row) ([][]engine.Row, error) {
	n := len(lParts)
	lw, rw := partsWidth(lParts), partsWidth(rParts)
	out, wireBytes, wall, err := s.fanOut(n, func(sc *shardConn, own func(p int) bool) (shardCall, error) {
		lBuf := appendPartSet(nil, lParts, lw, own)
		rBuf := appendPartSet(nil, rParts, rw, own)
		var resp exchangeResp
		sent, recv, w, err := sc.call(msgShuffle, shuffleReq{Spec: spec, Parts: n, L: lBuf, R: rBuf}, &resp)
		if err != nil {
			return shardCall{}, err
		}
		parts, err := verifyParts(sc, resp.Parts, n, resp.Checksum)
		if err != nil {
			return shardCall{}, err
		}
		return shardCall{sent: sent, recv: recv, wall: w, parts: parts}, nil
	})
	if err != nil {
		return nil, err
	}
	var measured int64
	if spec.LMovedBytes > 0 {
		measured += partPayloadBytes(lParts, lw)
	}
	if spec.RMovedBytes > 0 {
		measured += partPayloadBytes(rParts, rw)
	}
	s.record(core.ExchangeRecord{
		Kind: "shuffle", Name: spec.Name,
		PricedBytes: spec.PricedBytes, MeasuredBytes: measured,
		WireBytes: wireBytes, Wall: wall,
	})
	return out, nil
}

// BroadcastJoin implements engine.Exchanger: the build side ships whole
// to every shard (the measured broadcast payload); the probe side is
// relay and counts only toward WireBytes.
func (s *session) BroadcastJoin(spec engine.BroadcastSpec, buildRows []engine.Row, probeParts [][]engine.Row) ([][]engine.Row, error) {
	n := len(probeParts)
	bw := rowsWidth(buildRows)
	buildBuf := appendRowSection(nil, bw, buildRows)
	pw := partsWidth(probeParts)
	out, wireBytes, wall, err := s.fanOut(n, func(sc *shardConn, own func(p int) bool) (shardCall, error) {
		probeBuf := appendPartSet(nil, probeParts, pw, own)
		var resp exchangeResp
		sent, recv, w, err := sc.call(msgBroadcast, broadcastReq{Spec: spec, Parts: n, Build: buildBuf, Probe: probeBuf}, &resp)
		if err != nil {
			return shardCall{}, err
		}
		parts, err := verifyParts(sc, resp.Parts, n, resp.Checksum)
		if err != nil {
			return shardCall{}, err
		}
		return shardCall{sent: sent, recv: recv, wall: w, parts: parts}, nil
	})
	if err != nil {
		return nil, err
	}
	// Every shard received one copy of the build side.
	buildPay := rowsPayloadBytes(buildRows, bw) * int64(len(s.c.conns))
	s.record(core.ExchangeRecord{
		Kind: "broadcast", Name: spec.Name,
		PricedBytes: spec.PricedBytes, MeasuredBytes: buildPay,
		WireBytes: wireBytes, Wall: wall,
	})
	return out, nil
}

// Cartesian implements engine.Exchanger; like a broadcast join, the
// small side's shipped copies are the measured payload.
func (s *session) Cartesian(spec engine.CartesianSpec, smallRows []engine.Row, largeParts [][]engine.Row) ([][]engine.Row, error) {
	n := len(largeParts)
	sw := rowsWidth(smallRows)
	smallBuf := appendRowSection(nil, sw, smallRows)
	lw := partsWidth(largeParts)
	out, wireBytes, wall, err := s.fanOut(n, func(sc *shardConn, own func(p int) bool) (shardCall, error) {
		largeBuf := appendPartSet(nil, largeParts, lw, own)
		var resp exchangeResp
		sent, recv, w, err := sc.call(msgCartesian, cartesianReq{Spec: spec, Parts: n, Small: smallBuf, Large: largeBuf}, &resp)
		if err != nil {
			return shardCall{}, err
		}
		parts, err := verifyParts(sc, resp.Parts, n, resp.Checksum)
		if err != nil {
			return shardCall{}, err
		}
		return shardCall{sent: sent, recv: recv, wall: w, parts: parts}, nil
	})
	if err != nil {
		return nil, err
	}
	smallPay := rowsPayloadBytes(smallRows, sw) * int64(len(s.c.conns))
	s.record(core.ExchangeRecord{
		Kind: "cartesian", Name: spec.Name,
		PricedBytes: spec.PricedBytes, MeasuredBytes: smallPay,
		WireBytes: wireBytes, Wall: wall,
	})
	return out, nil
}

// Distinct implements engine.Exchanger over an already-shuffled input.
func (s *session) Distinct(spec engine.DistinctSpec, parts [][]engine.Row) ([][]engine.Row, error) {
	n := len(parts)
	w := partsWidth(parts)
	out, wireBytes, wall, err := s.fanOut(n, func(sc *shardConn, own func(p int) bool) (shardCall, error) {
		inBuf := appendPartSet(nil, parts, w, own)
		var resp exchangeResp
		sent, recv, wd, err := sc.call(msgDistinct, distinctReq{Spec: spec, Parts: n, In: inBuf}, &resp)
		if err != nil {
			return shardCall{}, err
		}
		outParts, err := verifyParts(sc, resp.Parts, n, resp.Checksum)
		if err != nil {
			return shardCall{}, err
		}
		return shardCall{sent: sent, recv: recv, wall: wd, parts: outParts}, nil
	})
	if err != nil {
		return nil, err
	}
	var measured int64
	if spec.PricedBytes > 0 {
		measured = partPayloadBytes(parts, w)
	}
	s.record(core.ExchangeRecord{
		Kind: "distinct", Name: "distinct",
		PricedBytes: spec.PricedBytes, MeasuredBytes: measured,
		WireBytes: wireBytes, Wall: wall,
	})
	return out, nil
}
