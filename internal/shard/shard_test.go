package shard

import (
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/watdiv"
	"repro/internal/wire"
)

// The fixture: one WatDiv dataset loaded once. Shard servers and the
// coordinator share the same read-only store object — exactly the
// deterministic-load guarantee separate prost-shard processes rely on,
// without paying three loads per test run.
const testScale = 120

var (
	fixOnce  sync.Once
	fixStore *core.Store
	fixErr   error
)

func testStore(t *testing.T) *core.Store {
	t.Helper()
	fixOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: testScale, Seed: 42})
		c := cluster.MustNew(cluster.DefaultConfig())
		fixStore, fixErr = core.Load(g, core.Options{Cluster: c, BuildInversePT: true})
	})
	if fixErr != nil {
		t.Fatalf("loading fixture: %v", fixErr)
	}
	return fixStore
}

// startShards boots n shard servers on loopback and returns their
// addresses in shard order.
func startShards(t *testing.T, store *core.Store, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(store, i, n)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func dialShards(t *testing.T, store *core.Store, n int) *Coordinator {
	t.Helper()
	coord, err := Dial(store, startShards(t, store, n))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// renderResult flattens SortedRows into one comparable string.
func renderResult(res *core.Result) string {
	var sb strings.Builder
	for _, row := range res.SortedRows() {
		for i, term := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(term.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestShardedExecutionMatchesSingleProcess is the tentpole acceptance
// gate: every WatDiv query, under every planner mode and storage
// strategy, must produce byte-identical SortedRows and the identical
// SimTime on 2-shard and 4-shard topologies as in single-process
// execution. The baseline disables adaptive re-planning, matching the
// restriction distributed mode enforces.
func TestShardedExecutionMatchesSingleProcess(t *testing.T) {
	store := testStore(t)
	coords := map[int]*Coordinator{
		2: dialShards(t, store, 2),
		4: dialShards(t, store, 4),
	}
	strategies := map[string]core.Strategy{}
	for _, name := range core.StrategyNames() {
		st, err := core.ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%s): %v", name, err)
		}
		strategies[name] = st
	}
	// Broadcast thresholds: the default (tiny fixture tables all
	// broadcast) plus disabled (every join shuffles), so both exchange
	// families are pinned identical.
	for _, bcast := range []int64{0, -1} {
		for _, modeName := range core.PlannerModeNames() {
			mode, err := core.ParsePlannerMode(modeName)
			if err != nil {
				t.Fatalf("ParsePlannerMode(%s): %v", modeName, err)
			}
			for stratName, strat := range strategies {
				for _, q := range watdiv.BasicQuerySet() {
					opts := core.QueryOptions{Strategy: strat, Planner: mode, ReplanThreshold: -1, BroadcastThreshold: bcast}
					base, err := store.Query(q.Parsed, opts)
					if err != nil {
						t.Fatalf("%s/%s/%s single-process: %v", q.Name, modeName, stratName, err)
					}
					baseRows := renderResult(base)
					for shards, coord := range coords {
						dopts := opts
						dopts.Dist = coord
						res, err := store.Query(q.Parsed, dopts)
						if err != nil {
							t.Fatalf("%s/%s/%s on %d shards: %v", q.Name, modeName, stratName, shards, err)
						}
						if got := renderResult(res); got != baseRows {
							t.Errorf("%s/%s/%s on %d shards: rows diverge from single-process\ngot:\n%swant:\n%s",
								q.Name, modeName, stratName, shards, got, baseRows)
						}
						if res.SimTime != base.SimTime {
							t.Errorf("%s/%s/%s on %d shards: SimTime %v != single-process %v",
								q.Name, modeName, stratName, shards, res.SimTime, base.SimTime)
						}
					}
				}
			}
		}
	}
}

// netAnnotated collects the executed plan's nodes carrying exchange
// measurements.
func netAnnotated(p *plan.Plan) []*plan.Node {
	var out []*plan.Node
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		if n.HasNetBytes {
			out = append(out, n)
		}
	}
	walk(p.Root)
	return out
}

// TestShuffleCalibrationWithin2x pins the calibration acceptance bound:
// on every shuffled join the model priced, the measured wire payload
// must land within 2x of the price (the packed wire layout uses 4
// bytes/value against the model's 5, so the expected ratio is ~0.8).
func TestShuffleCalibrationWithin2x(t *testing.T) {
	store := testStore(t)
	coord := dialShards(t, store, 2)
	shuffles := 0
	for _, q := range watdiv.BasicQuerySet() {
		// The fixture's tables all fit under the default broadcast
		// threshold; disabling broadcasts forces the shuffle exchanges
		// the bound is about.
		res, err := store.Query(q.Parsed, core.QueryOptions{Dist: coord, BroadcastThreshold: -1})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		for _, n := range netAnnotated(res.Plan) {
			if n.Op != plan.OpJoin || n.Method != plan.MethodShuffle {
				continue
			}
			if n.PricedNetBytes <= 0 || n.MeasuredNetBytes <= 0 {
				continue
			}
			shuffles++
			ratio := float64(n.MeasuredNetBytes) / float64(n.PricedNetBytes)
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("%s: shuffle join measured %d bytes vs priced %d (ratio %.2f), outside 2x",
					q.Name, n.MeasuredNetBytes, n.PricedNetBytes, ratio)
			}
		}
	}
	if shuffles == 0 {
		t.Fatalf("no priced shuffle joins executed — calibration bound never exercised")
	}
	ns := coord.NetworkStats()
	if ns.CalibratedExchanges == 0 || ns.CalibrationError > 1 {
		t.Errorf("NetworkStats calibration: error %.3f over %d exchanges, want >0 exchanges within mean 2x",
			ns.CalibrationError, ns.CalibratedExchanges)
	}
	if ns.Exchanges == 0 || ns.BytesSent == 0 || ns.BytesReceived == 0 {
		t.Errorf("NetworkStats traffic empty: %+v", ns)
	}
	if len(ns.ShardRTT) != 2 {
		t.Errorf("ShardRTT has %d entries, want 2", len(ns.ShardRTT))
	}
}

// scanError sums a plan's leaf-pricing calibration error, in
// |log2(measured/priced)| terms.
func scanError(p *plan.Plan) (sum float64, scans int) {
	for _, n := range netAnnotated(p) {
		if n.Op != plan.OpScan || n.PricedNetBytes <= 0 || n.MeasuredNetBytes <= 0 {
			continue
		}
		sum += math.Abs(math.Log2(float64(n.MeasuredNetBytes) / float64(n.PricedNetBytes)))
		scans++
	}
	return sum, scans
}

// TestLeafPricingFeedbackNarrows verifies the calibration feedback
// loop: the first run prices scans from the cost model, the measured
// wire bytes are stored, and a second identical run prices from the
// stored measurement — so its leaf-pricing error collapses.
func TestLeafPricingFeedbackNarrows(t *testing.T) {
	store := testStore(t)
	coord := dialShards(t, store, 2)
	q := watdiv.BasicQuerySet()[0]
	opts := core.QueryOptions{Dist: coord}

	first, err := store.Query(q.Parsed, opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	err1, scans1 := scanError(first.Plan)
	if scans1 == 0 {
		t.Fatalf("first run annotated no priced scans")
	}
	if err1 == 0 {
		t.Fatalf("first-run leaf error already 0 — modeled scan bytes cannot equal wire payload")
	}

	second, err := store.Query(q.Parsed, opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	err2, scans2 := scanError(second.Plan)
	if scans2 != scans1 {
		t.Fatalf("second run annotated %d scans, first %d", scans2, scans1)
	}
	if err2 >= err1 {
		t.Errorf("leaf-pricing error did not narrow: first %.4f, second %.4f", err1, err2)
	}
	if err2 > 0.01 {
		t.Errorf("second-run leaf error %.4f, want ~0 (priced from measured bytes of an identical run)", err2)
	}
}

// TestShardDeathSurfacesTypedError kills one shard mid-topology and
// verifies the failure reaches the caller through the task-attempt
// machinery: a *core.TaskFailedError whose attempt records a worker
// outage and which unwraps to the underlying *wire.ShardError.
func TestShardDeathSurfacesTypedError(t *testing.T) {
	store := testStore(t)
	addrs := make([]string, 2)
	servers := make([]*Server, 2)
	for i := 0; i < 2; i++ {
		srv, err := NewServer(store, i, 2)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
		servers[i] = srv
	}
	coord, err := Dial(store, addrs)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { coord.Close() })

	servers[1].Close()

	q := watdiv.BasicQuerySet()[0]
	_, err = store.Query(q.Parsed, core.QueryOptions{Dist: coord})
	if err == nil {
		t.Fatalf("query succeeded with a dead shard")
	}
	var tfe *core.TaskFailedError
	if !errors.As(err, &tfe) {
		t.Fatalf("error %v (%T) is not a *core.TaskFailedError", err, err)
	}
	if len(tfe.Attempts) != 1 || tfe.Attempts[0].Outcome != core.AttemptOutage {
		t.Errorf("attempt trace %+v, want one worker-outage attempt", tfe.Attempts)
	}
	if tfe.Attempts[0].Worker != 1 {
		t.Errorf("attempt worker = %d, want dead shard 1", tfe.Attempts[0].Worker)
	}
	var se *wire.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not unwrap to *wire.ShardError", err)
	}
	if se.Shard != 1 {
		t.Errorf("ShardError.Shard = %d, want 1", se.Shard)
	}
}

// TestHelloRejectsTopologyMismatch verifies the handshake refuses a
// coordinator whose topology disagrees with the shard's.
func TestHelloRejectsTopologyMismatch(t *testing.T) {
	store := testStore(t)
	// A server believing it is shard 0 of 2 must refuse a coordinator
	// dialing it as the only shard of 1.
	srv, err := NewServer(store, 0, 2)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	if _, err := Dial(store, []string{ln.Addr().String()}); err == nil {
		t.Fatalf("Dial succeeded across a topology mismatch")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Errorf("mismatch error %v does not identify the shard handshake", err)
	}
}

// TestPartSetRoundTrip pins the sparse partition codec.
func TestPartSetRoundTrip(t *testing.T) {
	parts := [][]engine.Row{
		{{1, 2}, {3, 4}},
		nil,
		{},
		{{9, 10}},
	}
	own := func(p int) bool { return p%2 == 0 }
	buf := appendPartSet(nil, parts, 2, own)
	got, err := decodePartSet(buf, len(parts))
	if err != nil {
		t.Fatalf("decodePartSet: %v", err)
	}
	if engine.RowsChecksum(got) != engine.RowsChecksum([][]engine.Row{parts[0], nil, parts[2], nil}) {
		t.Errorf("owned partitions do not round-trip: %v", got)
	}
	if got[1] != nil || got[3] != nil {
		t.Errorf("unowned partitions decoded non-nil: %v", got)
	}
	// Truncations must error, never panic or misdecode.
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodePartSet(buf[:cut], len(parts)); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := decodePartSet(buf, 1); err == nil {
		t.Errorf("part index beyond total decoded successfully")
	}
}

// TestRowSectionWidthZero covers existence-relation payloads.
func TestRowSectionWidthZero(t *testing.T) {
	rows := []engine.Row{{}}
	buf := appendRowSection(nil, 0, rows)
	got, rest, err := decodeRowSection(buf)
	if err != nil || len(rest) != 0 || len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("width-0 round trip: rows=%v rest=%d err=%v", got, len(rest), err)
	}
}

// TestExplainRendersNetBytes verifies the /explain plumbing end to end:
// a distributed execution's plan renders measured-vs-priced bytes.
func TestExplainRendersNetBytes(t *testing.T) {
	store := testStore(t)
	coord := dialShards(t, store, 2)
	q := watdiv.BasicQuerySet()[0]
	res, err := store.Query(q.Parsed, core.QueryOptions{Dist: coord})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(netAnnotated(res.Plan)) == 0 {
		t.Fatalf("executed plan carries no exchange annotations")
	}
	if out := res.Plan.String(); !strings.Contains(out, "net=") {
		t.Errorf("plan rendering lacks net= annotation:\n%s", out)
	}
}
