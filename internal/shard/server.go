package shard

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wire"
)

// Server hosts one shard: a fully loaded store plus this process's
// position in the topology. Shards and the coordinator load the same
// dataset deterministically, so dictionary IDs, partition placement and
// per-partition row sets agree everywhere; the server only ever
// evaluates kernels over the partitions it owns (p % shards == shard).
type Server struct {
	store         *core.Store
	shard, shards int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer builds a shard server for position shard of shards over the
// given store.
func NewServer(store *core.Store, shard, shards int) (*Server, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("shard: invalid position %d of %d", shard, shards)
	}
	return &Server{store: store, shard: shard, shards: shards, conns: map[net.Conn]struct{}{}}, nil
}

// owned reports whether this shard owns global partition p.
func (s *Server) owned(p int) bool { return p%s.shards == s.shard }

// Serve accepts coordinator connections on ln until Close. It returns
// nil after Close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("shard: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.handle(c)
	}
}

// ListenAndServe listens on addr and serves; the bound address is
// reported through Addr once listening.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the server's listen address, nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and severs every live coordinator connection —
// from the coordinator's side an abrupt shard death, surfaced there as
// a *wire.ShardError.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	return err
}

// handle serves one coordinator connection: a strict request/response
// loop over wire frames, handshake first.
func (s *Server) handle(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	helloed := false
	for {
		typ, payload, _, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		rtyp, resp := s.dispatch(typ, payload, &helloed)
		if _, err := wire.WriteFrame(bw, rtyp, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch runs one request and folds any failure into an msgErr
// response, keeping the connection alive for the next request.
func (s *Server) dispatch(typ byte, payload []byte, helloed *bool) (byte, []byte) {
	out, err := s.handleMsg(typ, payload, helloed)
	if err != nil {
		p, eerr := encodeMsg(errResp{Msg: err.Error()})
		if eerr != nil {
			p = nil
		}
		return msgErr, p
	}
	return msgOK, out
}

// handleMsg evaluates one request payload.
func (s *Server) handleMsg(typ byte, payload []byte, helloed *bool) ([]byte, error) {
	if typ == msgHello {
		var req helloReq
		if err := decodeMsg(payload, &req); err != nil {
			return nil, err
		}
		if err := s.validateHello(req); err != nil {
			return nil, err
		}
		*helloed = true
		return encodeMsg(helloResp{})
	}
	if !*helloed {
		return nil, fmt.Errorf("shard: message type %d before handshake", typ)
	}
	switch typ {
	case msgScan:
		return s.handleScan(payload)
	case msgShuffle:
		return s.handleShuffle(payload)
	case msgBroadcast:
		return s.handleBroadcast(payload)
	case msgCartesian:
		return s.handleCartesian(payload)
	case msgDistinct:
		return s.handleDistinct(payload)
	default:
		return nil, fmt.Errorf("shard: unknown message type %d", typ)
	}
}

// validateHello refuses coordinators whose topology or dataset does not
// match this shard's: serving the wrong partitions or a differently
// loaded store would corrupt results silently, so every axis the
// kernels depend on is checked up front.
func (s *Server) validateHello(req helloReq) error {
	if req.Shard != s.shard || req.Shards != s.shards {
		return fmt.Errorf("shard: coordinator expects shard %d of %d, this is %d of %d",
			req.Shard, req.Shards, s.shard, s.shards)
	}
	if req.Partitions != s.store.Partitions() {
		return fmt.Errorf("shard: coordinator has %d partitions, this store has %d",
			req.Partitions, s.store.Partitions())
	}
	if req.Workers != s.store.Cluster().Workers() {
		return fmt.Errorf("shard: coordinator simulates %d workers, this store %d",
			req.Workers, s.store.Cluster().Workers())
	}
	if req.Fingerprint != s.store.Stats().Fingerprint() {
		return fmt.Errorf("shard: dataset statistics fingerprint mismatch (coordinator %x, shard %x) — stores were not loaded from the same input",
			req.Fingerprint, s.store.Stats().Fingerprint())
	}
	return nil
}

// handleScan evaluates a scan node over the owned partitions.
func (s *Server) handleScan(payload []byte) ([]byte, error) {
	var req scanReq
	if err := decodeMsg(payload, &req); err != nil {
		return nil, err
	}
	parts, processed, err := s.store.ScanNodeParts(&req.Node, req.Filters, s.owned)
	if err != nil {
		return nil, err
	}
	return encodeMsg(scanResp{
		Parts:     appendPartSet(nil, parts, partsWidth(parts), s.owned),
		Processed: processed,
		Checksum:  engine.RowsChecksum(parts),
	})
}

// handleShuffle hash-joins the owned partitions of a routed shuffle.
func (s *Server) handleShuffle(payload []byte) ([]byte, error) {
	var req shuffleReq
	if err := decodeMsg(payload, &req); err != nil {
		return nil, err
	}
	l, err := decodePartSet(req.L, req.Parts)
	if err != nil {
		return nil, err
	}
	r, err := decodePartSet(req.R, req.Parts)
	if err != nil {
		return nil, err
	}
	out := make([][]engine.Row, req.Parts)
	for p := range out {
		if !s.owned(p) {
			continue
		}
		out[p] = engine.JoinPartitionKernel(l[p], r[p],
			req.Spec.LKey, req.Spec.RKey, req.Spec.OutWidth, req.Spec.LKeep, req.Spec.RKeep)
	}
	return encodeExchange(out, req.Spec.OutWidth, s.owned)
}

// handleBroadcast indexes the build side once and probes every owned
// partition against it, exactly as the in-process broadcast join does.
func (s *Server) handleBroadcast(payload []byte) ([]byte, error) {
	var req broadcastReq
	if err := decodeMsg(payload, &req); err != nil {
		return nil, err
	}
	build, rest, err := decodeRowSection(req.Build)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after build rows", len(rest))
	}
	probe, err := decodePartSet(req.Probe, req.Parts)
	if err != nil {
		return nil, err
	}
	jp := engine.NewJoinProbe(build, req.Spec.BuildKey)
	out := make([][]engine.Row, req.Parts)
	for p := range out {
		if !s.owned(p) {
			continue
		}
		out[p] = jp.Probe(probe[p], req.Spec.ProbeKey,
			req.Spec.BuildIsLeft, req.Spec.OutWidth, req.Spec.LKeep, req.Spec.RKeep)
	}
	return encodeExchange(out, req.Spec.OutWidth, s.owned)
}

// handleCartesian crosses every owned large-side partition with the
// broadcast small side.
func (s *Server) handleCartesian(payload []byte) ([]byte, error) {
	var req cartesianReq
	if err := decodeMsg(payload, &req); err != nil {
		return nil, err
	}
	small, rest, err := decodeRowSection(req.Small)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after small rows", len(rest))
	}
	large, err := decodePartSet(req.Large, req.Parts)
	if err != nil {
		return nil, err
	}
	out := make([][]engine.Row, req.Parts)
	for p := range out {
		if !s.owned(p) {
			continue
		}
		out[p] = engine.CartesianKernel(large[p], small,
			req.Spec.SmallIsLeft, req.Spec.OutWidth, req.Spec.LKeep, req.Spec.RKeep)
	}
	return encodeExchange(out, req.Spec.OutWidth, s.owned)
}

// handleDistinct dedups the owned partitions of a shuffled distinct.
func (s *Server) handleDistinct(payload []byte) ([]byte, error) {
	var req distinctReq
	if err := decodeMsg(payload, &req); err != nil {
		return nil, err
	}
	in, err := decodePartSet(req.In, req.Parts)
	if err != nil {
		return nil, err
	}
	out := make([][]engine.Row, req.Parts)
	for p := range out {
		if !s.owned(p) {
			continue
		}
		out[p] = engine.DistinctKernel(in[p], req.Spec.Width)
	}
	return encodeExchange(out, req.Spec.Width, s.owned)
}

// encodeExchange packs an exchange kernel's output partitions with
// their end-to-end checksum.
func encodeExchange(out [][]engine.Row, width int, own func(p int) bool) ([]byte, error) {
	return encodeMsg(exchangeResp{
		Parts:    appendPartSet(nil, out, width, own),
		Checksum: engine.RowsChecksum(out),
	})
}
