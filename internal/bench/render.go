package bench

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Table is a generic text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Values []time.Duration
}

// Figure is per-label timings for several series — the data behind the
// paper's bar charts.
type Figure struct {
	Title  string
	Labels []string
	Series []Series
}

// Table renders the figure's data as a table (labels × series).
func (f Figure) Table() Table {
	header := append([]string{"query"}, seriesNames(f.Series)...)
	var rows [][]string
	for i, label := range f.Labels {
		row := []string{label}
		for _, s := range f.Series {
			row = append(row, formatMS(s.Values[i]))
		}
		rows = append(rows, row)
	}
	return Table{Title: f.Title, Header: header, Rows: rows}
}

// String renders the data table followed by log-scale ASCII bars,
// echoing the paper's logarithmic Figure 3.
func (f Figure) String() string {
	var sb strings.Builder
	sb.WriteString(f.Table().String())
	sb.WriteString("\nlog-scale bars (each ■ ≈ ×3.16 over 1ms):\n")
	for i, label := range f.Labels {
		for _, s := range f.Series {
			bars := logBars(s.Values[i])
			fmt.Fprintf(&sb, "%-4s %-10s %-22s %s\n", label, s.Name, bars, formatMS(s.Values[i]))
		}
		if i < len(f.Labels)-1 {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func seriesNames(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// logBars draws half-decade log-scale bars above 1ms.
func logBars(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	n := int(math.Round(2 * math.Log10(ms)))
	if n < 1 {
		n = 1
	}
	if n > 20 {
		n = 20
	}
	return strings.Repeat("■", n)
}

// formatMS renders a duration in the paper's milliseconds style.
func formatMS(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 10000:
		return fmt.Sprintf("%.0fms", ms)
	case ms >= 100:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.2fms", ms)
	}
}

// formatBytes renders a size in the paper's GB/MB style.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// formatDuration renders a loading time like "25m 32s".
func formatDuration(d time.Duration) string {
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	switch {
	case h > 0:
		return fmt.Sprintf("%dh %02dm %02ds", h, m, s)
	case m > 0:
		return fmt.Sprintf("%dm %02ds", m, s)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}
