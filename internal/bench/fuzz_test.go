package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// Strategy aliases keep the table in TestRandomBGPStrategiesAgree tidy.
type coreStrategy = core.Strategy

const (
	coreStrategyMixed    = core.StrategyMixed
	coreStrategyVPOnly   = core.StrategyVPOnly
	coreStrategyMixedIPT = core.StrategyMixedIPT
)

// runStrategy executes q on the fixture's PRoST store under one
// strategy and returns the result row count.
func runStrategy(s *Systems, q *sparql.Query, strat core.Strategy) (int, error) {
	res, err := s.PRoST.Query(q, core.QueryOptions{Strategy: strat, BroadcastThreshold: s.BroadcastThreshold})
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// TestRandomBGPAgreement generates random connected BGPs over the WatDiv
// vocabulary and checks that all four systems return identical row
// counts — a fuzz-style differential test across four independent
// implementations of SPARQL join semantics.
func TestRandomBGPAgreement(t *testing.T) {
	s := systems(t)
	rng := rand.New(rand.NewSource(99))

	preds := []string{
		watdiv.NSwsdbm + "follows",
		watdiv.NSwsdbm + "likes",
		watdiv.NSwsdbm + "friendOf",
		watdiv.NSwsdbm + "livesIn",
		watdiv.NSwsdbm + "gender",
		watdiv.NSfoaf + "age",
		watdiv.NSsorg + "nationality",
		watdiv.NSrev + "reviewer",
		watdiv.NSrev + "rating",
		watdiv.NSgr + "includes",
		watdiv.NSwsdbm + "hasGenre",
		watdiv.NSsorg + "caption",
	}

	for qi := 0; qi < 25; qi++ {
		src := randomBGP(rng, preds)
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("query %d does not parse: %v\n%s", qi, err, src)
		}
		q.Name = fmt.Sprintf("fuzz%d", qi)
		counts := map[string]int{}
		for _, name := range SystemNames() {
			out, err := s.RunOn(name, q)
			if err != nil {
				t.Fatalf("query %d on %s: %v\n%s", qi, name, err, src)
			}
			counts[name] = out.Rows
		}
		base := counts[SysPRoST]
		for name, n := range counts {
			if n != base {
				t.Errorf("query %d: %s returned %d rows, PRoST returned %d\n%s", qi, name, n, base, src)
			}
		}
	}
}

// randomBGP builds a random connected BGP of 2–5 patterns: each new
// pattern reuses an existing variable in subject or object position, so
// the query never degenerates into a cartesian product.
func randomBGP(rng *rand.Rand, preds []string) string {
	nPatterns := 2 + rng.Intn(4)
	vars := []string{"v0", "v1"}
	patterns := []string{
		fmt.Sprintf("?v0 <%s> ?v1 .", preds[rng.Intn(len(preds))]),
	}
	for len(patterns) < nPatterns {
		pred := preds[rng.Intn(len(preds))]
		reuse := vars[rng.Intn(len(vars))]
		fresh := fmt.Sprintf("v%d", len(vars))
		var pat string
		switch rng.Intn(3) {
		case 0: // reuse as subject
			pat = fmt.Sprintf("?%s <%s> ?%s .", reuse, pred, fresh)
			vars = append(vars, fresh)
		case 1: // reuse as object
			pat = fmt.Sprintf("?%s <%s> ?%s .", fresh, pred, reuse)
			vars = append(vars, fresh)
		default: // reuse on both sides (adds a cycle)
			other := vars[rng.Intn(len(vars))]
			pat = fmt.Sprintf("?%s <%s> ?%s .", reuse, pred, other)
		}
		patterns = append(patterns, pat)
	}
	src := "SELECT * WHERE {\n"
	for _, p := range patterns {
		src += "  " + p + "\n"
	}
	return src + "}"
}

// TestRandomBGPEstimationModesAgree is the estimator-isolation property
// test: planner output rows must be byte-identical whether cardinality
// estimates come from the independence assumption, characteristic sets
// only, or characteristic sets plus pair sketches — estimates may steer
// join order and physical methods, but they must never change results.
// Checked for random connected BGPs under all three storage strategies.
func TestRandomBGPEstimationModesAgree(t *testing.T) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 150, Seed: 21})
	load := func(opts core.Options) *core.Store {
		opts.Cluster = cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
		opts.BuildInversePT = true
		s, err := core.Load(g, opts)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return s
	}
	stores := []struct {
		name  string
		store *core.Store
	}{
		{"indep", load(core.Options{DisableJoinStats: true})},
		{"cset", load(core.Options{SketchTopK: -1})},
		{"sketch", load(core.Options{})},
	}

	render := func(res *core.Result) string {
		var sb strings.Builder
		for _, row := range res.SortedRows() {
			for i, term := range row {
				if i > 0 {
					sb.WriteByte('\t')
				}
				sb.WriteString(term.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	rng := rand.New(rand.NewSource(5))
	preds := []string{
		watdiv.NSwsdbm + "follows",
		watdiv.NSwsdbm + "likes",
		watdiv.NSwsdbm + "friendOf",
		watdiv.NSrev + "reviewer",
		watdiv.NSrev + "rating",
		watdiv.NSwsdbm + "hasGenre",
		watdiv.NSwsdbm + "livesIn",
		watdiv.NSsorg + "caption",
	}
	strategies := []coreStrategy{coreStrategyMixed, coreStrategyVPOnly, coreStrategyMixedIPT}
	for qi := 0; qi < 12; qi++ {
		src := randomBGP(rng, preds)
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("query %d does not parse: %v\n%s", qi, err, src)
		}
		for _, strat := range strategies {
			want := ""
			for i, st := range stores {
				res, err := st.store.Query(q, core.QueryOptions{Strategy: strat})
				if err != nil {
					t.Fatalf("query %d strategy %v on %s store: %v\n%s", qi, strat, st.name, err, src)
				}
				got := render(res)
				if i == 0 {
					want = got
				} else if got != want {
					t.Errorf("query %d strategy %v: %s-store rows differ from indep-store rows\n%s\nplan:\n%s",
						qi, strat, st.name, src, res.Plan)
				}
			}
		}
	}
}

// TestRandomBGPStrategiesAgree additionally checks PRoST's three
// strategies against each other on the random workload.
func TestRandomBGPStrategiesAgree(t *testing.T) {
	s := systems(t)
	rng := rand.New(rand.NewSource(7))
	preds := []string{
		watdiv.NSwsdbm + "follows",
		watdiv.NSwsdbm + "likes",
		watdiv.NSrev + "reviewer",
		watdiv.NSwsdbm + "hasGenre",
		watdiv.NSwsdbm + "livesIn",
	}
	for qi := 0; qi < 15; qi++ {
		src := randomBGP(rng, preds)
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("query %d does not parse: %v\n%s", qi, err, src)
		}
		rows := map[string]int{}
		for _, st := range []struct {
			name string
			s    coreStrategy
		}{
			{"mixed", coreStrategyMixed},
			{"vp-only", coreStrategyVPOnly},
			{"mixed+ipt", coreStrategyMixedIPT},
		} {
			res, err := runStrategy(s, q, st.s)
			if err != nil {
				t.Fatalf("query %d strategy %s: %v\n%s", qi, st.name, err, src)
			}
			rows[st.name] = res
		}
		if rows["mixed"] != rows["vp-only"] || rows["mixed"] != rows["mixed+ipt"] {
			t.Errorf("query %d: strategies disagree: %v\n%s", qi, rows, src)
		}
	}
}
