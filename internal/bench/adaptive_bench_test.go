package bench

// Microbenchmark of the adaptive execution loop (ablation A5): the
// C-family queries — where the independence assumption's triangle-join
// errors trigger mid-query re-planning — executed with the static cost
// planner, as an adaptive first run (re-plan evaluated and possibly
// spliced), and through the feedback cache (the corrected plan a
// previous adaptive run wrote back). Run with
//
//	go test ./internal/bench -bench AblationAdaptive
//
// SimTime is reported as the custom metric sim-ms/op.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/watdiv"
)

func BenchmarkAblationAdaptive(b *testing.B) {
	// The independence-estimator store: with join-graph statistics on,
	// the C-family estimates hold and no re-plan ever triggers (that is
	// BenchmarkAblationSketches' subject) — the adaptive loop needs the
	// mis-estimates to exist. Resolved up front so the lazy load never
	// lands inside a timed region.
	f := plannerStore(b)
	indep := f.indepStore(b)
	variants := []struct {
		name string
		opts func(core.QueryOptions) core.QueryOptions
	}{
		{"static", func(o core.QueryOptions) core.QueryOptions {
			o.ReplanThreshold = -1
			o.NoPlanCache = true
			return o
		}},
		{"adaptive-1st", func(o core.QueryOptions) core.QueryOptions {
			o.NoPlanCache = true
			return o
		}},
		{"adaptive-cached", func(o core.QueryOptions) core.QueryOptions { return o }},
	}
	for _, name := range []string{"C1", "C2", "C3"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range variants {
			b.Run(name+"/"+v.name, func(b *testing.B) {
				opts := v.opts(core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: f.bcast})
				var sim int64
				for i := 0; i < b.N; i++ {
					res, err := indep.Query(q.Parsed, opts)
					if err != nil {
						b.Fatal(err)
					}
					sim += int64(res.SimTime)
				}
				b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
			})
		}
	}
}
