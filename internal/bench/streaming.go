package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/watdiv"
)

// StreamingRecord is one query's A/B measurement of the morsel-driven
// streaming executor against the materialized scheduler: simulated
// time both ways, the streaming path's first-row latency, and both
// peak intermediate-memory high-water marks.
type StreamingRecord struct {
	Query           string  `json:"query"`
	Group           string  `json:"group"`
	Rows            int     `json:"rows"`
	SimMS           float64 `json:"simMs"`
	StreamSimMS     float64 `json:"streamSimMs"`
	FirstRowMS      float64 `json:"firstRowMs"`
	PeakBytes       int64   `json:"peakBytes"`
	StreamPeakBytes int64   `json:"streamPeakBytes"`
	// PeakDropRatio is PeakBytes / StreamPeakBytes — how many times
	// smaller the streaming high-water mark is.
	PeakDropRatio float64 `json:"peakDropRatio"`
}

// StreamingProfile measures every query twice on a PRoST store —
// materialized and streaming, Mixed strategy, re-planning pinned off
// so both modes execute the same static plan — and reports the paired
// record. Row counts must agree or the profile fails.
//
// The profile is an engine-internal A/B, so it runs at the engine's
// native cost model and broadcast threshold rather than on the
// extrapolated cross-system fixture: extrapolation shrinks the
// broadcast threshold by the scale factor until every sizeable join
// degenerates to a shuffle join, a regime with no per-executor
// broadcast replicas — the very memory the streaming executor's
// shared build hash is designed to avoid holding W times over.
func StreamingProfile(store *core.Store, queries []watdiv.Query) ([]StreamingRecord, error) {
	var out []StreamingRecord
	for _, q := range queries {
		base := core.QueryOptions{Strategy: core.StrategyMixed, ReplanThreshold: -1}
		mat, err := store.Query(q.Parsed, base)
		if err != nil {
			return nil, fmt.Errorf("bench: streaming profile, %s materialized: %w", q.Name, err)
		}
		opts := base
		opts.Streaming = true
		str, err := store.Query(q.Parsed, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: streaming profile, %s streaming: %w", q.Name, err)
		}
		if !str.Streamed {
			return nil, fmt.Errorf("bench: streaming profile, %s: fell back to materialized execution", q.Name)
		}
		if len(mat.Rows) != len(str.Rows) {
			return nil, fmt.Errorf("bench: streaming profile, %s: materialized %d rows vs streaming %d rows", q.Name, len(mat.Rows), len(str.Rows))
		}
		rec := StreamingRecord{
			Query:           q.Name,
			Group:           q.Group,
			Rows:            len(mat.Rows),
			SimMS:           ms(mat.SimTime),
			StreamSimMS:     ms(str.SimTime),
			FirstRowMS:      ms(str.FirstRow),
			PeakBytes:       mat.PeakMemBytes,
			StreamPeakBytes: str.PeakMemBytes,
		}
		if str.PeakMemBytes > 0 {
			rec.PeakDropRatio = float64(mat.PeakMemBytes) / float64(str.PeakMemBytes)
		}
		out = append(out, rec)
	}
	return out, nil
}

// StreamingTable renders the profile for human consumption.
func StreamingTable(recs []StreamingRecord) Table {
	t := Table{
		Title:  "Streaming executor vs materialized: time, first row, peak memory",
		Header: []string{"query", "sim-ms", "stream-ms", "first-row-ms", "peak", "stream-peak", "drop"},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Query,
			fmt.Sprintf("%.2f", r.SimMS),
			fmt.Sprintf("%.2f", r.StreamSimMS),
			fmt.Sprintf("%.2f", r.FirstRowMS),
			formatBytes(r.PeakBytes),
			formatBytes(r.StreamPeakBytes),
			fmt.Sprintf("%.1fx", r.PeakDropRatio),
		})
	}
	return t
}

// streamingTrajectory is the BENCH_streaming.json document: the
// fixture's shape plus the per-query records. Every field is derived
// from the virtual cost model, so reruns on any machine produce
// identical bytes — the committed file only changes when an engine or
// pricing change moves a tracked metric, making its diff history the
// metric trajectory across PRs.
type streamingTrajectory struct {
	Scale   int               `json:"scale"`
	Workers int               `json:"workers"`
	Queries []StreamingRecord `json:"queries"`
}

// WriteStreamingTrajectory writes the profile to path as the
// BENCH_streaming.json trajectory document.
func WriteStreamingTrajectory(path string, scale, workers int, recs []StreamingRecord) error {
	doc := streamingTrajectory{Scale: scale, Workers: workers, Queries: recs}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
