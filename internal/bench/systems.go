// Package bench is the experiment harness: it loads one WatDiv dataset
// into all four systems (PRoST, S2RDF, SPARQLGX, Rya), runs the basic
// query set, and regenerates the paper's evaluation artifacts — Table 1
// (loading size and time), Figure 2 (VP-only vs the mixed strategy),
// Figure 3 (per-query comparison of the four systems) and Table 2
// (average querying time per query family) — plus the ablations and the
// future-work extension experiment called out in DESIGN.md.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baselines/rya"
	"repro/internal/baselines/s2rdf"
	"repro/internal/baselines/sparqlgx"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hdfs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// System names in the paper's presentation order.
const (
	SysPRoST    = "PRoST"
	SysS2RDF    = "S2RDF"
	SysRya      = "Rya"
	SysSPARQLGX = "SPARQLGX"
)

// SystemNames returns the four systems in presentation order.
func SystemNames() []string {
	return []string{SysPRoST, SysS2RDF, SysRya, SysSPARQLGX}
}

// Systems bundles the four loaded stores over one shared cluster,
// filesystem and dictionary.
type Systems struct {
	Cluster *cluster.Cluster
	FS      *hdfs.FS
	Dict    *rdf.Dictionary

	PRoST    *core.Store
	S2RDF    *s2rdf.Store
	SPARQLGX *sparqlgx.Store
	Rya      *rya.Store

	// graph and inversePT let PRoSTIndep build its store lazily: only
	// the adaptive (A5) and sketch (A6) ablations need it, so other
	// experiments never pay the extra load.
	graph     *rdf.Graph
	inversePT bool

	indepOnce sync.Once
	indep     *core.Store
	indepErr  error

	extvpOnce sync.Once
	extvp     *core.Store
	extvpErr  error

	// BroadcastThreshold is the effective broadcast-join threshold for
	// the SQL systems, shrunk by the extrapolation factor so that a
	// table's broadcastability reflects its extrapolated size.
	BroadcastThreshold int64

	loads []LoadRow
}

// LoadRow is one system's Table 1 row.
type LoadRow struct {
	System    string
	SizeBytes int64
	LoadTime  time.Duration
}

// LoadOptions tunes LoadAll.
type LoadOptions struct {
	// Cluster to load on; DefaultConfig when nil. Ignored when
	// ExtrapolateTriples is set (a scaled cluster is built instead).
	Cluster *cluster.Cluster
	// InversePT additionally builds PRoST's object-keyed table for the
	// extension experiment.
	InversePT bool
	// ExtrapolateTriples, when positive, prices all data-proportional
	// costs (scan and shuffle bytes, per-row CPU, KV seeks) as if the
	// dataset had this many triples, while fixed costs (stage launches)
	// stay fixed. WatDiv query selectivities are fractions of the
	// dataset, so intermediate-result sizes scale roughly linearly and
	// the extrapolated times reproduce the paper's 100M-triple shape
	// from a laptop-sized dataset. Queries with scale-independent
	// result sizes (bound-subject lookups) are over-charged; see
	// EXPERIMENTS.md.
	ExtrapolateTriples int64
}

// LoadAll loads the graph into the four systems. The shared dictionary
// keeps cross-system result comparison exact; each system still builds
// and prices its own storage.
func LoadAll(g *rdf.Graph, opts LoadOptions) (*Systems, error) {
	c := opts.Cluster
	if c == nil {
		c = cluster.MustNew(cluster.DefaultConfig())
	}
	bcast := int64(0) // 0 = engine default
	if opts.ExtrapolateTriples > 0 {
		factor := float64(opts.ExtrapolateTriples) / float64(g.Len())
		if factor < 1 {
			factor = 1
		}
		cfg := c.Config()
		cfg.Cost = scaleCostModel(cfg.Cost, factor)
		c = cluster.MustNew(cfg)
		bcast = int64(float64(engine.DefaultBroadcastThreshold) / factor)
		if bcast < 1 {
			bcast = 1
		}
	}
	fs, err := hdfs.New(hdfs.Config{DataNodes: c.Workers() + 1})
	if err != nil {
		return nil, err
	}
	dict := rdf.NewDictionary()
	sys := &Systems{Cluster: c, FS: fs, Dict: dict, BroadcastThreshold: bcast}

	prost, err := core.Load(g, core.Options{Cluster: c, FS: fs, BuildInversePT: opts.InversePT})
	if err != nil {
		return nil, fmt.Errorf("bench: loading PRoST: %w", err)
	}
	sys.PRoST = prost
	sys.loads = append(sys.loads, LoadRow{SysPRoST, prost.LoadReport().SizeBytes, prost.LoadReport().LoadTime})
	sys.graph, sys.inversePT = g, opts.InversePT

	s2, err := s2rdf.Load(g, s2rdf.Options{Cluster: c, FS: fs, Dict: dict, BroadcastThreshold: bcast})
	if err != nil {
		return nil, fmt.Errorf("bench: loading S2RDF: %w", err)
	}
	sys.S2RDF = s2
	sys.loads = append(sys.loads, LoadRow{SysS2RDF, s2.LoadReport().SizeBytes, s2.LoadReport().LoadTime})

	gx, err := sparqlgx.Load(g, sparqlgx.Options{Cluster: c, FS: fs, Dict: dict})
	if err != nil {
		return nil, fmt.Errorf("bench: loading SPARQLGX: %w", err)
	}
	sys.SPARQLGX = gx
	sys.loads = append(sys.loads, LoadRow{SysSPARQLGX, gx.LoadReport().SizeBytes, gx.LoadReport().LoadTime})

	ry, err := rya.Load(g, rya.Options{Cluster: c, FS: fs, Dict: dict})
	if err != nil {
		return nil, fmt.Errorf("bench: loading Rya: %w", err)
	}
	sys.Rya = ry
	sys.loads = append(sys.loads, LoadRow{SysRya, ry.LoadReport().SizeBytes, ry.LoadReport().LoadTime})

	return sys, nil
}

// scaleCostModel multiplies the data-proportional cost rates by factor:
// throughputs shrink (same bytes are priced as factor× bytes) and
// per-unit costs grow; stage-launch overheads are unchanged.
func scaleCostModel(m cluster.CostModel, factor float64) cluster.CostModel {
	m.DiskBytesPerSec /= factor
	m.NetworkBytesPerSec /= factor
	m.KVScanBytesPerSec /= factor
	m.RowTime = time.Duration(float64(m.RowTime) * factor)
	m.SeekTime = time.Duration(float64(m.SeekTime) * factor)
	return m
}

// PRoSTIndep returns the same data loaded without join-graph
// statistics (characteristic sets + pair sketches): the pre-sketch
// independence-only estimator, built lazily on first use. The adaptive
// ablation (A5) runs on it — with sketches on, the estimation mistakes
// that trigger mid-query re-planning no longer occur — and the sketch
// ablation (A6) measures the two stores against each other.
func (s *Systems) PRoSTIndep() (*core.Store, error) {
	s.indepOnce.Do(func() {
		s.indep, s.indepErr = core.Load(s.graph, core.Options{Cluster: s.Cluster, FS: s.FS,
			BuildInversePT: s.inversePT, PathPrefix: "/prost-indep", DisableJoinStats: true})
	})
	return s.indep, s.indepErr
}

// PRoSTExtVP returns the same data loaded with the workload model
// enabled under a generous byte budget (every hot pair is buildable)
// and an observation threshold of one, so a single mining pass is
// enough to queue every candidate reduction. The ExtVP ablation (A7)
// runs on it; other experiments never pay the extra load. Built
// lazily on first use, on the shared cluster and filesystem but under
// its own HDFS path prefix.
func (s *Systems) PRoSTExtVP() (*core.Store, error) {
	s.extvpOnce.Do(func() {
		s.extvp, s.extvpErr = core.Load(s.graph, core.Options{Cluster: s.Cluster, FS: s.FS,
			BuildInversePT: s.inversePT, PathPrefix: "/prost-extvp",
			ExtVPBudget: 1 << 30, ExtVPBuildAfter: 1})
	})
	return s.extvp, s.extvpErr
}

// Loads returns the Table 1 rows in load order.
func (s *Systems) Loads() []LoadRow {
	out := make([]LoadRow, len(s.loads))
	copy(out, s.loads)
	return out
}

// Outcome is one query execution's measurement.
type Outcome struct {
	System   string
	Query    string
	Rows     int
	SimTime  time.Duration
	WallTime time.Duration
}

// RunOn executes a parsed query on the named system.
func (s *Systems) RunOn(system string, q *sparql.Query) (Outcome, error) {
	switch system {
	case SysPRoST:
		// Paper figures measure the static planner (ReplanThreshold -1):
		// adaptive re-planning writes corrected plans back to the shared
		// cache, which would make later experiments' numbers depend on
		// which experiment ran first. Adaptivity is measured by ablation
		// A5, which manages its own options.
		res, err := s.PRoST.Query(q, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, ReplanThreshold: -1})
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{System: system, Query: q.Name, Rows: len(res.Rows), SimTime: res.SimTime, WallTime: res.WallTime}, nil
	case SysS2RDF:
		res, err := s.S2RDF.Query(q)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{System: system, Query: q.Name, Rows: len(res.Rows), SimTime: res.SimTime, WallTime: res.WallTime}, nil
	case SysSPARQLGX:
		res, err := s.SPARQLGX.Query(q)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{System: system, Query: q.Name, Rows: len(res.Rows), SimTime: res.SimTime, WallTime: res.WallTime}, nil
	case SysRya:
		res, err := s.Rya.Query(q)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{System: system, Query: q.Name, Rows: len(res.Rows), SimTime: res.SimTime, WallTime: res.WallTime}, nil
	default:
		return Outcome{}, fmt.Errorf("bench: unknown system %q", system)
	}
}

// VerifyAgreement runs every query on all four systems and returns an
// error when any two disagree on the result-row count — the harness's
// cross-implementation correctness check.
func (s *Systems) VerifyAgreement(queries []watdiv.Query) error {
	for _, q := range queries {
		counts := map[string]int{}
		for _, name := range SystemNames() {
			out, err := s.RunOn(name, q.Parsed)
			if err != nil {
				return fmt.Errorf("bench: %s on %s: %w", q.Name, name, err)
			}
			counts[name] = out.Rows
		}
		base := counts[SysPRoST]
		for name, n := range counts {
			if n != base {
				return fmt.Errorf("bench: %s: %s returned %d rows, PRoST returned %d", q.Name, name, n, base)
			}
		}
	}
	return nil
}
