package bench

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/watdiv"
)

// The shared fixture: one WatDiv dataset loaded into all four systems.
// Loading S2RDF's ExtVP family dominates, so it happens once.
var (
	fixtureOnce sync.Once
	fixture     *Systems
	fixtureErr  error
)

const fixtureScale = 400

func systems(t *testing.T) *Systems {
	t.Helper()
	fixtureOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: fixtureScale, Seed: 42})
		// Extrapolate to the paper's 100M-triple dataset so the shape
		// assertions test the regime the paper measured.
		fixture, fixtureErr = LoadAll(g, LoadOptions{InversePT: true, ExtrapolateTriples: 100_000_000})
	})
	if fixtureErr != nil {
		t.Fatalf("LoadAll: %v", fixtureErr)
	}
	return fixture
}

func TestAllSystemsAgreeOnEveryQuery(t *testing.T) {
	s := systems(t)
	if err := s.VerifyAgreement(watdiv.BasicQuerySet()); err != nil {
		t.Fatalf("systems disagree: %v", err)
	}
}

func TestTable1Shape(t *testing.T) {
	s := systems(t)
	size := map[string]int64{}
	load := map[string]time.Duration{}
	for _, row := range s.Loads() {
		size[row.System] = row.SizeBytes
		load[row.System] = row.LoadTime
	}
	// Size ordering (paper Table 1): SPARQLGX < PRoST < Rya < S2RDF.
	if !(size[SysSPARQLGX] < size[SysPRoST]) {
		t.Errorf("size: SPARQLGX (%d) not smaller than PRoST (%d)", size[SysSPARQLGX], size[SysPRoST])
	}
	if !(size[SysPRoST] < size[SysRya]) {
		t.Errorf("size: PRoST (%d) not smaller than Rya (%d)", size[SysPRoST], size[SysRya])
	}
	if !(size[SysRya] < size[SysS2RDF]) {
		t.Errorf("size: Rya (%d) not smaller than S2RDF (%d)", size[SysRya], size[SysS2RDF])
	}
	// Time ordering: SPARQLGX ≈ PRoST ≪ S2RDF; Rya between.
	if !(load[SysSPARQLGX] <= load[SysPRoST]) {
		t.Errorf("load time: SPARQLGX (%v) not ≤ PRoST (%v)", load[SysSPARQLGX], load[SysPRoST])
	}
	if !(load[SysPRoST] < load[SysS2RDF]) {
		t.Errorf("load time: PRoST (%v) not < S2RDF (%v)", load[SysPRoST], load[SysS2RDF])
	}
	if ratio := float64(load[SysS2RDF]) / float64(load[SysPRoST]); ratio < 2 {
		t.Errorf("load time: S2RDF/PRoST ratio = %.2f, want ≫ 1 (paper: ≈7.5)", ratio)
	}
	out := s.Table1().String()
	for _, name := range SystemNames() {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 output missing %s:\n%s", name, out)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.Figure2(queries)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	// Mixed must beat VP-only on every star query and on average
	// overall; linear queries may tie (paper §4.3).
	var vpTotal, mixedTotal time.Duration
	for i, label := range fig.Labels {
		vp, mixed := fig.Series[0].Values[i], fig.Series[1].Values[i]
		vpTotal += vp
		mixedTotal += mixed
		if strings.HasPrefix(label, "S") && mixed > vp {
			t.Errorf("%s: mixed (%v) slower than VP-only (%v) on a star query", label, mixed, vp)
		}
	}
	if mixedTotal >= vpTotal {
		t.Errorf("mixed total (%v) not faster than VP-only total (%v)", mixedTotal, vpTotal)
	}
	if !strings.Contains(fig.String(), "Figure 2") {
		t.Errorf("figure rendering lost its title")
	}
}

func TestFigure3AndTable2Shape(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.Figure3(queries)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}

	prost := GroupAverages(fig, queries, SysPRoST)
	s2rdf := GroupAverages(fig, queries, SysS2RDF)
	rya := GroupAverages(fig, queries, SysRya)
	gx := GroupAverages(fig, queries, SysSPARQLGX)

	// Paper Table 2 orderings per group (paper-era PRoST):
	//   Complex:   S2RDF < PRoST ≪ SPARQLGX ≪ Rya
	//   Snowflake: S2RDF < PRoST ≪ SPARQLGX ≪ Rya
	//   Linear:    S2RDF < PRoST ≪ SPARQLGX ≪ Rya
	//   Star:      PRoST ≈ S2RDF ≪ SPARQLGX ≈ Rya (PRoST wins several)
	for _, g := range []string{"C", "F", "L"} {
		if !(prost[g] < gx[g]) {
			t.Errorf("group %s: PRoST (%v) not faster than SPARQLGX (%v)", g, prost[g], gx[g])
		}
		if !(gx[g] < rya[g]) {
			t.Errorf("group %s: SPARQLGX (%v) not faster than Rya (%v)", g, gx[g], rya[g])
		}
	}
	if !(prost["S"] < gx["S"]) {
		t.Errorf("star: PRoST (%v) not faster than SPARQLGX (%v)", prost["S"], gx["S"])
	}
	// The paper measured S2RDF ahead of PRoST on complex queries (its
	// ExtVP advantage). That held here until the DAG executor: PRoST
	// now runs independent join subtrees concurrently and its
	// complex-query critical path drops below S2RDF's sequential
	// execution, so the modern assertion is the reverse. S2RDF keeps
	// its paper position against the non-Spark-SQL systems.
	if !(prost["C"] < s2rdf["C"]) {
		t.Errorf("complex: PRoST with DAG executor (%v) not faster than S2RDF (%v)", prost["C"], s2rdf["C"])
	}
	if !(s2rdf["C"] < gx["C"]) {
		t.Errorf("complex: S2RDF (%v) not faster than SPARQLGX (%v)", s2rdf["C"], gx["C"])
	}
	// PRoST beats SPARQLGX by roughly an order of magnitude overall.
	var prostTotal, gxTotal time.Duration
	for _, g := range watdiv.Groups() {
		prostTotal += prost[g]
		gxTotal += gx[g]
	}
	if ratio := float64(gxTotal) / float64(prostTotal); ratio < 3 {
		t.Errorf("SPARQLGX/PRoST overall ratio = %.2f, want ≫ 1 (paper: ≈10)", ratio)
	}
	// Rya's average is the worst overall (paper: dominated by complex).
	var ryaTotal time.Duration
	for _, g := range watdiv.Groups() {
		ryaTotal += rya[g]
	}
	if ryaTotal <= gxTotal {
		t.Errorf("Rya total (%v) not slower than SPARQLGX total (%v)", ryaTotal, gxTotal)
	}

	tbl := Table2(fig, queries)
	out := tbl.String()
	for _, label := range []string{"Complex", "Snowflake", "Linear", "Star"} {
		if !strings.Contains(out, label) {
			t.Errorf("Table 2 missing group %s:\n%s", label, out)
		}
	}
}

func TestAblationJoinOrder(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.AblationJoinOrder(queries)
	if err != nil {
		t.Fatalf("AblationJoinOrder: %v", err)
	}
	var stats, naive time.Duration
	for i := range fig.Labels {
		stats += fig.Series[0].Values[i]
		naive += fig.Series[1].Values[i]
	}
	if stats > naive {
		t.Errorf("stats ordering total (%v) slower than naive (%v)", stats, naive)
	}
}

func TestAblationPlanner(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.AblationPlanner(queries)
	if err != nil {
		t.Fatalf("AblationPlanner: %v", err)
	}
	var costTotal, heurTotal time.Duration
	wins := 0
	for i, label := range fig.Labels {
		cost, heur := fig.Series[0].Values[i], fig.Series[1].Values[i]
		costTotal += cost
		heurTotal += heur
		if cost < heur {
			wins++
		}
		// No query may regress more than 5% against the §3.3 heuristic.
		if float64(cost) > float64(heur)*1.05 {
			t.Errorf("%s: cost planner (%v) regresses >5%% vs heuristic (%v)", label, cost, heur)
		}
	}
	if wins < 3 {
		t.Errorf("cost planner beats the heuristic on %d queries, want ≥ 3", wins)
	}
	if costTotal >= heurTotal {
		t.Errorf("cost planner total (%v) not faster than heuristic total (%v)", costTotal, heurTotal)
	}
}

func TestAblationBushy(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.AblationBushy(queries)
	if err != nil {
		t.Fatalf("AblationBushy: %v", err)
	}
	var bushyTotal, ldTotal time.Duration
	wins := 0
	for i, label := range fig.Labels {
		bushy, ld := fig.Series[0].Values[i], fig.Series[1].Values[i]
		bushyTotal += bushy
		ldTotal += ld
		// The bushy win must come from the snowflake/complex families
		// — multi-arm shapes where sibling subtrees shorten the
		// critical path measurably (>2%).
		if (strings.HasPrefix(label, "F") || strings.HasPrefix(label, "C")) && float64(bushy) < float64(ld)*0.98 {
			wins++
		}
		// Zero regressions: the planner only keeps a bushy shape when
		// its priced critical path beats the chain, so no query may run
		// slower than left-deep beyond pricing noise (1%).
		if float64(bushy) > float64(ld)*1.01 {
			t.Errorf("%s: bushy (%v) regresses vs left-deep (%v)", label, bushy, ld)
		}
		t.Logf("%-4s bushy=%12v left-deep=%12v (%+.2f%%)", label, bushy, ld, 100*(float64(bushy)/float64(ld)-1))
	}
	if wins < 1 {
		t.Errorf("bushy execution shortens no snowflake/complex query by >2%%")
	}
	if bushyTotal > ldTotal {
		t.Errorf("bushy total (%v) slower than left-deep total (%v)", bushyTotal, ldTotal)
	}
}

// TestAblationAdaptive pins the A5 acceptance shape: at least one
// C-family query must improve by more than 5% on its very first
// adaptive execution (the under-estimated triangle join triggers a
// re-plan whose splice pays for itself), the steady-state feedback-
// cache execution must match or beat the re-planned first run (it
// skips the re-planning charge), and no query may regress more than
// 2% against the static cost planner — the adopt-only-when-it-pays
// rule makes adaptivity free where it cannot help.
func TestAblationAdaptive(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.AblationAdaptive(queries)
	if err != nil {
		t.Fatalf("AblationAdaptive: %v", err)
	}
	cWins := 0
	for i, label := range fig.Labels {
		first, second, static := fig.Series[0].Values[i], fig.Series[1].Values[i], fig.Series[2].Values[i]
		if strings.HasPrefix(label, "C") && float64(first) < float64(static)*0.95 {
			cWins++
		}
		if float64(first) > float64(static)*1.02 {
			t.Errorf("%s: adaptive first run (%v) regresses >2%% vs static (%v)", label, first, static)
		}
		// "Matches or beats": the steady-state run re-executes the
		// corrected plan without the re-plan stall, so it must not be
		// slower than the first adaptive run beyond pricing noise.
		if float64(second) > float64(first)*1.001 {
			t.Errorf("%s: feedback-cache run (%v) slower than re-planned first run (%v)", label, second, first)
		}
		t.Logf("%-4s first=%12v second=%12v static=%12v (first %+.2f%%, second %+.2f%% vs static)",
			label, first, second, static,
			100*(float64(first)/float64(static)-1), 100*(float64(second)/float64(static)-1))
	}
	if cWins < 1 {
		t.Errorf("no C-family query improves >5%% on its first adaptive execution")
	}
}

// TestAblationSketches pins the A6 acceptance shape: load-time
// join-graph statistics (characteristic sets + pair sketches) must turn
// PR 4's first-run adaptive rescue into a static win. Concretely: C3's
// first execution with sketches matches or beats the re-planned
// adaptive first run on the independence store; no query regresses more
// than 1% against that adaptive baseline; the C-family first executions
// fire no re-plan triggers at all (their worst estimation error sits
// below the 8x threshold); and the estimator actually used csets and
// sketches (provenance counters).
func TestAblationSketches(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.AblationSketches(queries)
	if err != nil {
		t.Fatalf("AblationSketches: %v", err)
	}
	var sketchTotal, adaptiveTotal time.Duration
	for i, label := range fig.Labels {
		sketch, adaptive, static := fig.Series[0].Values[i], fig.Series[1].Values[i], fig.Series[2].Values[i]
		sketchTotal += sketch
		adaptiveTotal += adaptive
		if float64(sketch) > float64(adaptive)*1.01 {
			t.Errorf("%s: sketches (%v) regress >1%% vs adaptive first run (%v)", label, sketch, adaptive)
		}
		if label == "C3" && sketch > adaptive {
			t.Errorf("C3: sketch first run (%v) does not match or beat the adaptive first run (%v)", sketch, adaptive)
		}
		t.Logf("%-4s sketches=%12v indep-adaptive=%12v indep-static=%12v (%+.2f%% vs adaptive)",
			label, sketch, adaptive, static, 100*(float64(sketch)/float64(adaptive)-1))
	}
	if sketchTotal > adaptiveTotal {
		t.Errorf("sketch total (%v) slower than adaptive-baseline total (%v)", sketchTotal, adaptiveTotal)
	}

	// The C-family estimation mistakes (269x/63x/57x under independence)
	// must shrink below the re-plan threshold: no trigger fires, and the
	// executed plans' worst error stays under 8x.
	for _, name := range []string{"C1", "C2", "C3"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, NoPlanCache: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Replans) != 0 {
			t.Errorf("%s: %d re-plan trigger(s) fired with sketches on; estimates should hold below the threshold", name, len(res.Replans))
		}
		if ratio, at := res.Plan.MaxErrorRatio(); at != nil && ratio > core.DefaultReplanThreshold {
			t.Errorf("%s: worst estimation error %.1fx still above the %gx re-plan threshold (at %s)",
				name, ratio, core.DefaultReplanThreshold, at.Label)
		}
	}

	// Provenance: the sketch store's plans must actually be priced from
	// csets and sketches, and the coverage summary must be available.
	em := s.PRoST.EstSourceMetrics()
	if em.CSet == 0 || em.Sketch == 0 {
		t.Errorf("estimate-source counters show no cset/sketch usage: %+v", em)
	}
	if js, ok := s.PRoST.Stats().JoinStatsSummary(); !ok || js.CSets == 0 || js.SketchPairs == 0 {
		t.Errorf("join-stats summary missing or empty: %+v (ok=%v)", js, ok)
	}
}

func TestAblationBroadcast(t *testing.T) {
	s := systems(t)
	queries := watdiv.BasicQuerySet()
	fig, err := s.AblationBroadcast(queries)
	if err != nil {
		t.Fatalf("AblationBroadcast: %v", err)
	}
	var on, off time.Duration
	for i := range fig.Labels {
		on += fig.Series[0].Values[i]
		off += fig.Series[1].Values[i]
	}
	if on >= off {
		t.Errorf("broadcast-on total (%v) not faster than broadcast-off (%v)", on, off)
	}
}

func TestExtensionInversePT(t *testing.T) {
	s := systems(t)
	queries := ObjectStarQueries()
	fig, err := s.ExtensionInversePT(queries)
	if err != nil {
		t.Fatalf("ExtensionInversePT: %v", err)
	}
	var mixed, ipt time.Duration
	for i := range fig.Labels {
		mixed += fig.Series[0].Values[i]
		ipt += fig.Series[1].Values[i]
	}
	if ipt >= mixed {
		t.Errorf("mixed+ipt total (%v) not faster than mixed (%v) on object stars", ipt, mixed)
	}
}

func TestRunOnUnknownSystem(t *testing.T) {
	s := systems(t)
	q := watdiv.BasicQuerySet()[0]
	if _, err := s.RunOn("NoSuchSystem", q.Parsed); err == nil {
		t.Errorf("RunOn with unknown system succeeded")
	}
}

func TestRenderHelpers(t *testing.T) {
	if got := formatBytes(2 << 30); got != "2.00 GiB" {
		t.Errorf("formatBytes = %q", got)
	}
	if got := formatDuration(25*time.Minute + 32*time.Second); got != "25m 32s" {
		t.Errorf("formatDuration = %q", got)
	}
	if got := formatDuration(3*time.Hour + 11*time.Minute + 44*time.Second); got != "3h 11m 44s" {
		t.Errorf("formatDuration = %q", got)
	}
	if got := formatMS(1195 * time.Millisecond); got != "1195.0ms" {
		t.Errorf("formatMS = %q", got)
	}
	tbl := Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	if !strings.Contains(tbl.String(), "bb") {
		t.Errorf("table render broken:\n%s", tbl)
	}
}
