package bench

// Microbenchmarks of the physical planning layer: plan-construction
// cost (translate + estimate + order + physical selection, no
// execution) and end-to-end simulated time per WatDiv query shape for
// the cost-based planner vs the paper's §3.3 heuristic. Run with
//
//	go test ./internal/bench -bench Planner -benchmem
//
// SimTime is reported as the custom metric sim-ms/op; wall ns/op for
// the SimTime benchmarks measures the simulation itself and is not the
// interesting number.

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/watdiv"
)

// plannerFixture is a PRoST-only store priced at the paper's
// 100M-triple scale (same extrapolation as the Systems fixture,
// without loading the three baseline systems). indepStore lazily adds
// the same data without join-graph statistics — the estimator the
// adaptive-loop benchmarks exercise and the sketch ablation measures
// against; benchmarks that never touch it never pay the extra load.
type plannerFixture struct {
	store *core.Store
	bcast int64
	graph *rdf.Graph

	indepOnce sync.Once
	indep     *core.Store
	indepErr  error

	extvpOnce sync.Once
	extvp     *core.Store
	extvpErr  error
}

// indepStore returns the fixture's independence-estimator store,
// loading it on first use.
func (f *plannerFixture) indepStore(b *testing.B) *core.Store {
	b.Helper()
	f.indepOnce.Do(func() {
		f.indep, f.indepErr = core.Load(f.graph, core.Options{Cluster: f.store.Cluster(), DisableJoinStats: true})
	})
	if f.indepErr != nil {
		b.Fatalf("loading independence fixture: %v", f.indepErr)
	}
	return f.indep
}

var (
	plannerOnce sync.Once
	plannerFix  *plannerFixture
	plannerErr  error
)

func plannerStore(b *testing.B) *plannerFixture {
	b.Helper()
	plannerOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: fixtureScale, Seed: 42})
		factor := float64(100_000_000) / float64(g.Len())
		cfg := cluster.DefaultConfig()
		cfg.Cost = scaleCostModel(cfg.Cost, factor)
		c := cluster.MustNew(cfg)
		bcast := int64(float64(engine.DefaultBroadcastThreshold) / factor)
		if bcast < 1 {
			bcast = 1
		}
		store, err := core.Load(g, core.Options{Cluster: c})
		if err != nil {
			plannerErr = err
			return
		}
		plannerFix = &plannerFixture{store: store, bcast: bcast, graph: g}
	})
	if plannerErr != nil {
		b.Fatalf("loading planner fixture: %v", plannerErr)
	}
	return plannerFix
}

// plannerShapes picks one representative query per WatDiv family.
var plannerShapes = []struct{ shape, query string }{
	{"star", "S1"},
	{"linear", "L5"},
	{"snowflake", "F1"},
	{"complex", "C1"},
}

var plannerModes = []struct {
	name string
	mode core.PlannerMode
}{
	{"cost", core.PlannerCost},
	{"heuristic", core.PlannerHeuristic},
}

// BenchmarkPlannerConstruction measures pure planning cost: translate
// the BGP, estimate cardinalities, order the joins and select physical
// methods, without executing anything.
func BenchmarkPlannerConstruction(b *testing.B) {
	f := plannerStore(b)
	for _, sh := range plannerShapes {
		q, err := watdiv.QueryByName(sh.query)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range plannerModes {
			b.Run(sh.shape+"/"+m.name, func(b *testing.B) {
				opts := core.QueryOptions{Planner: m.mode, BroadcastThreshold: f.bcast}
				for i := 0; i < b.N; i++ {
					if _, err := f.store.Plan(q.Parsed, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlannerSimTime measures end-to-end execution under each
// planner, reporting the simulated cluster time as sim-ms/op.
func BenchmarkPlannerSimTime(b *testing.B) {
	f := plannerStore(b)
	for _, sh := range plannerShapes {
		q, err := watdiv.QueryByName(sh.query)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range plannerModes {
			b.Run(sh.shape+"/"+m.name, func(b *testing.B) {
				// Re-planning pinned off: this benchmark isolates the
				// static planner variable (AblationAdaptive measures the
				// adaptive loop).
				opts := core.QueryOptions{Planner: m.mode, BroadcastThreshold: f.bcast, ReplanThreshold: -1}
				var sim int64
				for i := 0; i < b.N; i++ {
					res, err := f.store.Query(q.Parsed, opts)
					if err != nil {
						b.Fatal(err)
					}
					sim += int64(res.SimTime)
				}
				b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
			})
		}
	}
}
