package bench

// Chaos harness for the fault-tolerant scheduler: seeded fault
// schedules (isolated task failures, correlated worker loss, a 10%
// straggler tail, corrupted exchange payloads, and all of them at
// once) run the WatDiv basic set under every planner mode and must
// leave results byte-identical to the fault-free run, with the
// virtual-clock overhead bounded by the priced recovery cost. Run with
//
//	go test ./internal/bench -run Chaos -race
//	go test ./internal/bench -bench Chaos -benchtime 1x

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/watdiv"
)

// chaosFixture is a PRoST-only store small enough to sweep schedules ×
// queries × planner modes quickly; the heavyweight Systems fixture is
// deliberately not reused here.
var (
	chaosOnce sync.Once
	chaosFix  *core.Store
	chaosErr  error
)

func chaosStore(tb testing.TB) *core.Store {
	tb.Helper()
	chaosOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: 150, Seed: 11})
		c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
		chaosFix, chaosErr = core.Load(g, core.Options{Cluster: c})
	})
	if chaosErr != nil {
		tb.Fatalf("loading chaos fixture: %v", chaosErr)
	}
	return chaosFix
}

// chaosSchedules are the seeded fault schedules the harness sweeps.
// Every decision in a schedule is a pure hash of (seed, task), so each
// entry is one reproducible disaster.
var chaosSchedules = []struct {
	name        string
	fp          *cluster.FaultPlan
	maxAttempts int
}{
	{"single-failures", &cluster.FaultPlan{Seed: 1, FailRate: 0.05}, 0},
	// Two of four workers lost in overlapping windows early in the run:
	// retries must rotate onto the surviving machines.
	{"correlated-worker-loss", &cluster.FaultPlan{Seed: 2, Outages: []cluster.WorkerOutage{
		{Worker: 0, From: 0, Until: 800 * time.Millisecond},
		{Worker: 1, From: 100 * time.Millisecond, Until: time.Second},
	}}, 6},
	{"stragglers-10pct", &cluster.FaultPlan{Seed: 3, StragglerRate: 0.10, StragglerFactor: 6}, 0},
	{"corrupted-exchange", &cluster.FaultPlan{Seed: 4, CorruptRate: 0.15}, 0},
	{"kitchen-sink", &cluster.FaultPlan{
		Seed: 5, FailRate: 0.05, StragglerRate: 0.05, StragglerFactor: 6, CorruptRate: 0.05,
		Outages: []cluster.WorkerOutage{{Worker: 2, From: 0, Until: 500 * time.Millisecond}},
	}, 6},
}

var chaosModes = []struct {
	name string
	mode core.PlannerMode
}{
	{"cost", core.PlannerCost},
	{"cost-leftdeep", core.PlannerCostLeftDeep},
	{"heuristic", core.PlannerHeuristic},
	{"naive", core.PlannerNaive},
}

// chaosRender canonicalizes a result for byte-exact comparison.
func chaosRender(res *core.Result) string {
	var sb strings.Builder
	for _, row := range res.SortedRows() {
		for i, term := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(term.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestChaosSchedulesPreserveResults is the core chaos sweep: every
// schedule × planner mode × basic query must produce byte-identical
// rows to the fault-free run, and the virtual clock may exceed the
// fault-free run only by the recovery cost the scheduler priced in.
// Static plans (ReplanThreshold -1) keep the bound exact — recovery
// delays cannot move adaptive pause points.
func TestChaosSchedulesPreserveResults(t *testing.T) {
	s := chaosStore(t)
	queries := watdiv.BasicQuerySet()
	for _, m := range chaosModes {
		clean := make(map[string]*core.Result, len(queries))
		for _, q := range queries {
			res, err := s.Query(q.Parsed, core.QueryOptions{Planner: m.mode, ReplanThreshold: -1})
			if err != nil {
				t.Fatalf("%s/%s clean: %v", m.name, q.Name, err)
			}
			clean[q.Name] = res
		}
		for _, sched := range chaosSchedules {
			recovered := int64(0)
			for _, q := range queries {
				opts := core.QueryOptions{
					Planner:         m.mode,
					ReplanThreshold: -1,
					Faults:          sched.fp,
					MaxTaskAttempts: sched.maxAttempts,
				}
				res, err := s.Query(q.Parsed, opts)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", sched.name, m.name, q.Name, err)
				}
				base := clean[q.Name]
				if got, want := chaosRender(res), chaosRender(base); got != want {
					t.Errorf("%s/%s/%s: rows differ from fault-free run", sched.name, m.name, q.Name)
				}
				overhead := res.SimTime - base.SimTime
				if overhead < 0 {
					t.Errorf("%s/%s/%s: fault run faster than clean (%v vs %v)",
						sched.name, m.name, q.Name, res.SimTime, base.SimTime)
				}
				if overhead > res.Resilience.RecoveryTime {
					t.Errorf("%s/%s/%s: SimTime overhead %v exceeds priced recovery %v",
						sched.name, m.name, q.Name, overhead, res.Resilience.RecoveryTime)
				}
				if res.Resilience.Recovered() {
					recovered++
				}
			}
			if recovered == 0 {
				t.Errorf("%s/%s: schedule injected nothing across %d queries; it tests nothing",
					sched.name, m.name, len(queries))
			}
		}
	}
}

// TestChaosDeterministicReplay re-runs every schedule and requires the
// identical recovery record and virtual clock: a fault schedule is a
// pure function of (seed, plan, data), never of goroutine interleaving.
func TestChaosDeterministicReplay(t *testing.T) {
	s := chaosStore(t)
	queries := watdiv.BasicQuerySet()[:6]
	for _, sched := range chaosSchedules {
		for _, q := range queries {
			opts := core.QueryOptions{
				ReplanThreshold: -1,
				Faults:          sched.fp,
				MaxTaskAttempts: sched.maxAttempts,
			}
			a, err := s.Query(q.Parsed, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", sched.name, q.Name, err)
			}
			b, err := s.Query(q.Parsed, opts)
			if err != nil {
				t.Fatalf("%s/%s replay: %v", sched.name, q.Name, err)
			}
			if a.SimTime != b.SimTime {
				t.Errorf("%s/%s: replay SimTime %v != %v", sched.name, q.Name, b.SimTime, a.SimTime)
			}
			if a.Resilience != b.Resilience {
				t.Errorf("%s/%s: replay recovery record differs:\n%+v\nvs\n%+v",
					sched.name, q.Name, b.Resilience, a.Resilience)
			}
		}
	}
}

// TestChaosAdaptiveRowsIdentical runs the schedules with adaptive
// re-planning left ON. Recovery delays may legitimately shift re-plan
// pause points (so no timing bound here), but the rows must still be
// byte-identical to the fault-free adaptive run.
func TestChaosAdaptiveRowsIdentical(t *testing.T) {
	s := chaosStore(t)
	queries := watdiv.BasicQuerySet()[:6]
	for _, sched := range chaosSchedules {
		for _, q := range queries {
			base, err := s.Query(q.Parsed, core.QueryOptions{})
			if err != nil {
				t.Fatalf("%s/%s clean: %v", sched.name, q.Name, err)
			}
			res, err := s.Query(q.Parsed, core.QueryOptions{Faults: sched.fp, MaxTaskAttempts: sched.maxAttempts})
			if err != nil {
				t.Fatalf("%s/%s: %v", sched.name, q.Name, err)
			}
			if got, want := chaosRender(res), chaosRender(base); got != want {
				t.Errorf("%s/%s: adaptive rows differ under faults", sched.name, q.Name)
			}
		}
	}
}

// BenchmarkChaosRecovery reports the virtual-clock cost of each fault
// schedule on a join-heavy query, next to its fault-free baseline —
// sim-ms/op is the simulated latency including recovery, recovery-ms
// the slice of it the fault schedule caused.
func BenchmarkChaosRecovery(b *testing.B) {
	s := chaosStore(b)
	q, err := watdiv.QueryByName("F1")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, fp *cluster.FaultPlan, maxAttempts int) {
		var sim, rec int64
		for i := 0; i < b.N; i++ {
			res, err := s.Query(q.Parsed, core.QueryOptions{
				ReplanThreshold: -1,
				Faults:          fp,
				MaxTaskAttempts: maxAttempts,
			})
			if err != nil {
				b.Fatal(err)
			}
			sim += int64(res.SimTime)
			rec += int64(res.Resilience.RecoveryTime)
		}
		b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
		b.ReportMetric(float64(rec)/float64(b.N)/1e6, "recovery-ms/op")
	}
	b.Run("fault-free", func(b *testing.B) { run(b, nil, 0) })
	for _, sched := range chaosSchedules {
		b.Run(sched.name, func(b *testing.B) { run(b, sched.fp, sched.maxAttempts) })
	}
}
