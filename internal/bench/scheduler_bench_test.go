package bench

// Microbenchmarks of the concurrent execution path: bushy DAG plans vs
// left-deep chains on the snowflake/complex families, and server-style
// concurrent throughput at increasing in-flight client counts. Run with
//
//	go test ./internal/bench -bench 'Scheduler|Throughput'
//
// SimTime benchmarks report the simulated cluster time as sim-ms/op;
// the throughput benchmark reports real queries/sec, the number the
// prost-serve capacity planning cares about.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/watdiv"
)

// schedulerShapes are the multi-arm query shapes where bushy execution
// can shorten the critical path: the full snowflake (F) family per the
// scheduler ablation, plus the complex (C) family where the Mixed
// strategy leaves enough join-tree nodes for sibling subtrees.
var schedulerShapes = []string{"F1", "F2", "F3", "F4", "F5", "C1", "C2", "C3"}

// BenchmarkSchedulerBushyVsLeftDeep measures end-to-end simulated time
// of bushy DAG execution against the left-deep restriction, per query
// and strategy (VP-only keeps every pattern a separate leaf, so the F
// family exposes arm parallelism there even when PT grouping collapses
// it under Mixed).
func BenchmarkSchedulerBushyVsLeftDeep(b *testing.B) {
	f := plannerStore(b)
	strategies := []struct {
		name string
		s    core.Strategy
	}{
		{"mixed", core.StrategyMixed},
		{"vp-only", core.StrategyVPOnly},
	}
	modes := []struct {
		name string
		m    core.PlannerMode
	}{
		{"bushy", core.PlannerCost},
		{"left-deep", core.PlannerCostLeftDeep},
	}
	for _, name := range schedulerShapes {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range strategies {
			for _, m := range modes {
				b.Run(name+"/"+st.name+"/"+m.name, func(b *testing.B) {
					// Re-planning pinned off: the benchmark isolates the
					// bushy-vs-left-deep plan shape.
					opts := core.QueryOptions{Strategy: st.s, Planner: m.m, BroadcastThreshold: f.bcast, ReplanThreshold: -1}
					var sim int64
					for i := 0; i < b.N; i++ {
						res, err := f.store.Query(q.Parsed, opts)
						if err != nil {
							b.Fatal(err)
						}
						sim += int64(res.SimTime)
					}
					b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
				})
			}
		}
	}
}

// BenchmarkConcurrentThroughput measures real queries/sec through
// Store.Query with 1, 8 and 32 in-flight clients cycling the basic
// WatDiv set — the server workload. The plan cache is warm after the
// first cycle, so this is the steady-state serving regime.
func BenchmarkConcurrentThroughput(b *testing.B) {
	f := plannerStore(b)
	queries := watdiv.BasicQuerySet()
	for _, clients := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			opts := core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: f.bcast}
			var next atomic.Int64
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						q := queries[int(i)%len(queries)]
						if _, err := f.store.Query(q.Parsed, opts); err != nil {
							errs <- fmt.Errorf("%s: %w", q.Name, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/sec")
		})
	}
}
