package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/watdiv"
)

// ExtVPRecord is one query's A/B/C measurement of the workload-driven
// ExtVP semi-join tables against the PR 5 sketch store: the sketch
// baseline, the cold run (workload model on but no reductions built
// yet — the price of mining), and the warm run after the background
// builder has materialized the workload's hot pairs.
type ExtVPRecord struct {
	Query     string  `json:"query"`
	Group     string  `json:"group"`
	Rows      int     `json:"rows"`
	BaseSimMS float64 `json:"baseSimMs"`
	ColdSimMS float64 `json:"coldSimMs"`
	WarmSimMS float64 `json:"warmSimMs"`
	// WinPct is the warm run's SimTime win over the baseline in
	// percent; negative means the rewritten plan regressed.
	WinPct float64 `json:"winPct"`
}

// ExtVPProfile measures the workload-driven semi-join tables (A7):
// every query runs cold on the ExtVP store (mining its join pairs),
// the background builder drains, the workload is replayed until the
// rewritten plans stabilize, and the stable warm time is paired with
// the sketch baseline measured on the default store.
//
// Both sides run VP-only: the rewrite targets VP scans, and under the
// mixed strategy star shapes route through the Property Table where a
// per-predicate reduction has nothing to attach to. Re-planning is
// pinned off and the plan cache bypassed so every run prices and pays
// for a fresh plan — the comparison is planner output vs planner
// output, not cache state.
func (s *Systems) ExtVPProfile(queries []watdiv.Query) ([]ExtVPRecord, error) {
	store, err := s.PRoSTExtVP()
	if err != nil {
		return nil, fmt.Errorf("bench: extvp profile: %w", err)
	}
	opts := core.QueryOptions{Strategy: core.StrategyVPOnly, BroadcastThreshold: s.BroadcastThreshold,
		ReplanThreshold: -1, NoPlanCache: true}

	// Cold pass: the workload model observes every executed join and
	// queues builds; no reductions exist yet, so plans are unrewritten.
	cold := make(map[string]*core.Result, len(queries))
	for _, q := range queries {
		res, err := store.Query(q.Parsed, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: extvp profile, %s cold: %w", q.Name, err)
		}
		cold[q.Name] = res
	}
	store.Workload().Wait()

	// Warm until stable: a rewritten plan can shift which joins execute
	// and therefore which pairs the model sees next, so replay the
	// workload (draining builds between rounds) until the aggregate
	// simulated time stops moving.
	warm := make(map[string]*core.Result, len(queries))
	prev := time.Duration(-1)
	for i := 0; i < 6; i++ {
		var total time.Duration
		for _, q := range queries {
			res, err := store.Query(q.Parsed, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: extvp profile, %s warm: %w", q.Name, err)
			}
			warm[q.Name] = res
			total += res.SimTime
		}
		store.Workload().Wait()
		if total == prev {
			break
		}
		prev = total
	}

	var out []ExtVPRecord
	for _, q := range queries {
		base, err := s.PRoST.Query(q.Parsed, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: extvp profile, %s baseline: %w", q.Name, err)
		}
		c, w := cold[q.Name], warm[q.Name]
		if len(c.Rows) != len(base.Rows) || len(w.Rows) != len(base.Rows) {
			return nil, fmt.Errorf("bench: extvp profile, %s: row counts diverge (base %d, cold %d, warm %d)",
				q.Name, len(base.Rows), len(c.Rows), len(w.Rows))
		}
		out = append(out, ExtVPRecord{
			Query:     q.Name,
			Group:     q.Group,
			Rows:      len(base.Rows),
			BaseSimMS: ms(base.SimTime),
			ColdSimMS: ms(c.SimTime),
			WarmSimMS: ms(w.SimTime),
			WinPct:    100 * (1 - float64(w.SimTime)/float64(base.SimTime)),
		})
	}
	return out, nil
}

// AblationExtVP renders the profile as the A7 figure: the sketch-store
// baseline against the workload store cold (mining, unrewritten) and
// warm (rewritten onto the materialized reductions).
func (s *Systems) AblationExtVP(queries []watdiv.Query) (Figure, error) {
	recs, err := s.ExtVPProfile(queries)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title: "Ablation A7: workload-driven ExtVP semi-join tables vs sketch store (VP-only)",
		Series: []Series{
			{Name: "sketch-baseline"},
			{Name: "extvp-cold"},
			{Name: "extvp-warm"},
		},
	}
	for _, r := range recs {
		fig.Labels = append(fig.Labels, r.Query)
		fig.Series[0].Values = append(fig.Series[0].Values, time.Duration(r.BaseSimMS*float64(time.Millisecond)))
		fig.Series[1].Values = append(fig.Series[1].Values, time.Duration(r.ColdSimMS*float64(time.Millisecond)))
		fig.Series[2].Values = append(fig.Series[2].Values, time.Duration(r.WarmSimMS*float64(time.Millisecond)))
	}
	return fig, nil
}

// ExtVPTable renders the profile for human consumption.
func ExtVPTable(recs []ExtVPRecord) Table {
	t := Table{
		Title:  "Workload-driven ExtVP tables vs sketch store: cold, warm, win",
		Header: []string{"query", "base-ms", "cold-ms", "warm-ms", "win"},
	}
	for _, r := range recs {
		t.Rows = append(t.Rows, []string{
			r.Query,
			fmt.Sprintf("%.2f", r.BaseSimMS),
			fmt.Sprintf("%.2f", r.ColdSimMS),
			fmt.Sprintf("%.2f", r.WarmSimMS),
			fmt.Sprintf("%.1f%%", r.WinPct),
		})
	}
	return t
}

// extvpTrajectory is the BENCH_extvp.json document: the fixture's
// shape plus the per-query records. Every field is derived from the
// virtual cost model, so reruns on any machine produce identical
// bytes — the committed file only changes when an engine or pricing
// change moves a tracked metric.
type extvpTrajectory struct {
	Scale   int           `json:"scale"`
	Workers int           `json:"workers"`
	Queries []ExtVPRecord `json:"queries"`
}

// WriteExtVPTrajectory writes the profile to path as the
// BENCH_extvp.json trajectory document.
func WriteExtVPTrajectory(path string, scale, workers int, recs []ExtVPRecord) error {
	doc := extvpTrajectory{Scale: scale, Workers: workers, Queries: recs}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
