package bench

// Microbenchmark of the workload-driven ExtVP semi-join tables
// (ablation A7): the C-family queries executed VP-only on the PR 5
// sketch store against the same queries on a store whose workload
// model has already mined the query mix and materialized its hot
// reductions — the steady state a repeated workload converges to. Run
// with
//
//	go test ./internal/bench -bench AblationExtVP
//
// SimTime is reported as the custom metric sim-ms/op.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/watdiv"
)

// extvpStore returns the fixture's workload-model store, loaded on
// first use and warmed outside any timed region: the basic query set
// runs until the background builder has materialized every hot pair
// the mix surfaces, so the benchmark measures rewritten steady-state
// plans rather than mining.
func (f *plannerFixture) extvpStore(b *testing.B) *core.Store {
	b.Helper()
	f.extvpOnce.Do(func() {
		s, err := core.Load(f.graph, core.Options{Cluster: f.store.Cluster(),
			PathPrefix: "/prost-extvp-bench", ExtVPBudget: 1 << 30, ExtVPBuildAfter: 1})
		if err != nil {
			f.extvpErr = err
			return
		}
		opts := core.QueryOptions{Strategy: core.StrategyVPOnly, BroadcastThreshold: f.bcast,
			ReplanThreshold: -1, NoPlanCache: true}
		for i := 0; i < 3; i++ {
			for _, q := range watdiv.BasicQuerySet() {
				if _, f.extvpErr = s.Query(q.Parsed, opts); f.extvpErr != nil {
					return
				}
			}
			s.Workload().Wait()
		}
		f.extvp = s
	})
	if f.extvpErr != nil {
		b.Fatalf("loading extvp fixture: %v", f.extvpErr)
	}
	return f.extvp
}

func BenchmarkAblationExtVP(b *testing.B) {
	f := plannerStore(b)
	extvp := f.extvpStore(b)
	variants := []struct {
		name  string
		store *core.Store
	}{
		{"sketch-baseline", f.store},
		{"extvp-warm", extvp},
	}
	for _, name := range []string{"C1", "C2", "C3"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range variants {
			b.Run(name+"/"+v.name, func(b *testing.B) {
				opts := core.QueryOptions{Strategy: core.StrategyVPOnly, BroadcastThreshold: f.bcast,
					ReplanThreshold: -1, NoPlanCache: true}
				var sim int64
				for i := 0; i < b.N; i++ {
					res, err := v.store.Query(q.Parsed, opts)
					if err != nil {
						b.Fatal(err)
					}
					sim += int64(res.SimTime)
				}
				b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
			})
		}
	}
}
