package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// Table1 regenerates the paper's Table 1: per-system database size and
// loading time on the shared dataset.
func (s *Systems) Table1() Table {
	t := Table{
		Title:  "Table 1: Size and loading times",
		Header: []string{"System", "Size", "Time"},
	}
	for _, row := range s.loads {
		t.Rows = append(t.Rows, []string{row.System, formatBytes(row.SizeBytes), formatDuration(row.LoadTime)})
	}
	return t
}

// Figure2 regenerates the paper's Figure 2: per-query times for PRoST
// with Vertical Partitioning only versus the mixed strategy.
func (s *Systems) Figure2(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Figure 2: Querying time, VP-only vs mixed strategy (PRoST)",
		Series: []Series{
			{Name: "VP-only"},
			{Name: "Mixed"},
		},
	}
	for _, q := range queries {
		vp, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyVPOnly, BroadcastThreshold: s.BroadcastThreshold, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, fmt.Errorf("bench: figure 2, %s vp-only: %w", q.Name, err)
		}
		mixed, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, fmt.Errorf("bench: figure 2, %s mixed: %w", q.Name, err)
		}
		if len(vp.Rows) != len(mixed.Rows) {
			return Figure{}, fmt.Errorf("bench: figure 2, %s: vp-only %d rows vs mixed %d rows", q.Name, len(vp.Rows), len(mixed.Rows))
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, vp.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, mixed.SimTime)
	}
	return fig, nil
}

// Figure3 regenerates the paper's Figure 3: per-query times for PRoST,
// S2RDF, Rya and SPARQLGX (the paper plots these on a log scale).
func (s *Systems) Figure3(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Figure 3: Querying time per query, all systems (log scale)",
	}
	for _, name := range SystemNames() {
		fig.Series = append(fig.Series, Series{Name: name})
	}
	for _, q := range queries {
		fig.Labels = append(fig.Labels, q.Name)
		var baseRows = -1
		for i, name := range SystemNames() {
			out, err := s.RunOn(name, q.Parsed)
			if err != nil {
				return Figure{}, fmt.Errorf("bench: figure 3, %s on %s: %w", q.Name, name, err)
			}
			if baseRows < 0 {
				baseRows = out.Rows
			} else if out.Rows != baseRows {
				return Figure{}, fmt.Errorf("bench: figure 3, %s: %s returned %d rows, expected %d", q.Name, name, out.Rows, baseRows)
			}
			fig.Series[i].Values = append(fig.Series[i].Values, out.SimTime)
		}
	}
	return fig, nil
}

// Table2 regenerates the paper's Table 2: average querying time per
// query family, computed from Figure 3's measurements.
func Table2(fig Figure, queries []watdiv.Query) Table {
	group := map[string]string{}
	for _, q := range queries {
		group[q.Name] = q.Group
	}
	sums := map[string]map[string]time.Duration{} // group → system → total
	counts := map[string]int{}
	for i, label := range fig.Labels {
		g := group[label]
		if sums[g] == nil {
			sums[g] = map[string]time.Duration{}
		}
		counts[g]++
		for _, s := range fig.Series {
			sums[g][s.Name] += s.Values[i]
		}
	}
	t := Table{
		Title:  "Table 2: Average querying time grouped by type of query",
		Header: append([]string{"Queries"}, seriesNames(fig.Series)...),
	}
	for _, g := range watdiv.Groups() {
		if counts[g] == 0 {
			continue
		}
		row := []string{watdiv.GroupLabel(g)}
		for _, s := range fig.Series {
			avg := sums[g][s.Name] / time.Duration(counts[g])
			row = append(row, formatMS(avg))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// GroupAverages extracts per-group mean times for one series of a
// figure, used by shape assertions in tests.
func GroupAverages(fig Figure, queries []watdiv.Query, system string) map[string]time.Duration {
	group := map[string]string{}
	for _, q := range queries {
		group[q.Name] = q.Group
	}
	var series *Series
	for i := range fig.Series {
		if fig.Series[i].Name == system {
			series = &fig.Series[i]
		}
	}
	if series == nil {
		return nil
	}
	sums := map[string]time.Duration{}
	counts := map[string]int{}
	for i, label := range fig.Labels {
		g := group[label]
		sums[g] += series.Values[i]
		counts[g]++
	}
	out := map[string]time.Duration{}
	for g, total := range sums {
		out[g] = total / time.Duration(counts[g])
	}
	return out
}

// AblationJoinOrder compares PRoST's statistics-guided node ordering
// against naive written-order execution (ablation A1 in DESIGN.md).
func (s *Systems) AblationJoinOrder(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Ablation A1: statistics-based join ordering",
		Series: []Series{
			{Name: "stats-order"},
			{Name: "naive-order"},
		},
	}
	for _, q := range queries {
		// PlannerHeuristic pins the paper's §3.3 statistics ordering this
		// ablation measures (the session default is the cost planner).
		withStats, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, Planner: core.PlannerHeuristic})
		if err != nil {
			return Figure{}, err
		}
		naive, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, NaiveOrder: true})
		if err != nil {
			return Figure{}, err
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, withStats.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, naive.SimTime)
	}
	return fig, nil
}

// AblationPlanner compares the cost-based physical planner against the
// paper's §3.3 heuristic ordering (ablation A3): same storage, same
// engine, only join order and per-join physical selection differ —
// adaptive re-planning is pinned off on both sides so the delta
// isolates the planner variable (A5 measures adaptivity).
func (s *Systems) AblationPlanner(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Ablation A3: cost-based planner vs §3.3 heuristic",
		Series: []Series{
			{Name: "cost"},
			{Name: "heuristic"},
		},
	}
	for _, q := range queries {
		costRes, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, Planner: core.PlannerCost, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		heurRes, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, Planner: core.PlannerHeuristic, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		if len(costRes.Rows) != len(heurRes.Rows) {
			return Figure{}, fmt.Errorf("bench: planner ablation, %s: cost %d rows vs heuristic %d rows", q.Name, len(costRes.Rows), len(heurRes.Rows))
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, costRes.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, heurRes.SimTime)
	}
	return fig, nil
}

// AblationBushy compares bushy DAG execution (PlannerCost, the
// default: independent subtrees become sibling subplans priced and run
// as parallel branches) against the same cost-based planner restricted
// to left-deep chains (ablation A4). Same storage, same engine, same
// join arithmetic, re-planning pinned off on both sides — only the
// plan shape differs, so the delta is the critical-path saving of
// running snowflake arms concurrently.
func (s *Systems) AblationBushy(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Ablation A4: bushy DAG execution vs left-deep chains",
		Series: []Series{
			{Name: "bushy"},
			{Name: "left-deep"},
		},
	}
	for _, q := range queries {
		bushy, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, Planner: core.PlannerCost, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		ld, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, Planner: core.PlannerCostLeftDeep, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		if len(bushy.Rows) != len(ld.Rows) {
			return Figure{}, fmt.Errorf("bench: bushy ablation, %s: bushy %d rows vs left-deep %d rows", q.Name, len(bushy.Rows), len(ld.Rows))
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, bushy.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, ld.SimTime)
	}
	return fig, nil
}

// AblationAdaptive compares adaptive mid-query re-planning against the
// static cost planner (ablation A5), Mixed strategy throughout. Three
// series per query:
//
//   - static: the cost planner with re-planning disabled (the PR 3
//     behaviour), planned fresh each time.
//   - adaptive-1st: a first execution with the default re-plan trigger
//     and no plan cache — mis-estimated operators pause the frontier,
//     the remainder is re-planned over materialized intermediates, and
//     the corrected remainder is spliced in when its priced saving
//     beats the re-planning charge.
//   - adaptive-2nd: the steady-state cached execution — the feedback
//     cache serves the corrected plan written back by a completed
//     adaptive run, so the query neither repeats the estimation
//     mistake nor re-pays the re-plan.
//
// The adopt-only-when-it-pays rule means a query without a genuine
// correction opportunity runs exactly the static plan at exactly the
// static time, so adaptivity is free where it cannot help.
//
// Since join-graph statistics landed, A5 runs on the independence-only
// store (PRoSTIndep): on the default store the sketches fix the very
// estimation mistakes the adaptive loop exists to catch, so no trigger
// ever fires (that is ablation A6's claim). A5 keeps pinning the
// adaptive machinery itself, which production stores still need for
// the shapes sketches cannot express.
func (s *Systems) AblationAdaptive(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Ablation A5: adaptive re-planning vs static cost planner (independence estimator)",
		Series: []Series{
			{Name: "adaptive-1st"},
			{Name: "adaptive-2nd"},
			{Name: "static"},
		},
	}
	indep, err := s.PRoSTIndep()
	if err != nil {
		return Figure{}, fmt.Errorf("bench: adaptive ablation: %w", err)
	}
	for _, q := range queries {
		base := core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold}

		staticOpts := base
		staticOpts.ReplanThreshold = -1
		staticOpts.NoPlanCache = true
		static, err := indep.Query(q.Parsed, staticOpts)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: adaptive ablation, %s static: %w", q.Name, err)
		}

		firstOpts := base
		firstOpts.NoPlanCache = true
		first, err := indep.Query(q.Parsed, firstOpts)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: adaptive ablation, %s first: %w", q.Name, err)
		}

		// Steady state through the feedback cache: a corrected entry may
		// itself be corrected once more (a re-plan exposes new operators
		// whose estimates were never observed), so warm until the
		// simulated time stops changing.
		var second *core.Result
		prev := time.Duration(-1)
		for i := 0; i < 6; i++ {
			res, err := indep.Query(q.Parsed, base)
			if err != nil {
				return Figure{}, fmt.Errorf("bench: adaptive ablation, %s cached run: %w", q.Name, err)
			}
			second = res
			if res.SimTime == prev {
				break
			}
			prev = res.SimTime
		}

		if len(first.Rows) != len(static.Rows) || len(second.Rows) != len(static.Rows) {
			return Figure{}, fmt.Errorf("bench: adaptive ablation, %s: row counts diverge (static %d, first %d, second %d)",
				q.Name, len(static.Rows), len(first.Rows), len(second.Rows))
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, first.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, second.SimTime)
		fig.Series[2].Values = append(fig.Series[2].Values, static.SimTime)
	}
	return fig, nil
}

// AblationSketches measures the join-graph statistics (ablation A6):
// first-execution times on the default store (characteristic sets +
// pair sketches collected at load time) against the pre-sketch
// independence estimator, with and without PR 4's adaptive rescue.
// Three series per query, Mixed strategy, fresh plans throughout
// (NoPlanCache — this is the cost a *new* query pays):
//
//   - sketches-1st: the default store; the adaptive loop stays armed
//     but the sketch-based estimates are intended to make it idle.
//   - indep-adaptive-1st: the sketch-less store with the adaptive loop
//     — what PR 4 paid on a first execution to fix the independence
//     assumption's mistakes at runtime.
//   - indep-static: the sketch-less store, static — the unrescued
//     baseline.
//
// The A6 claim: sketches turn the adaptive loop's first-run rescue
// into a static win — sketches-1st matches or beats indep-adaptive-1st
// everywhere, without re-plan triggers firing.
func (s *Systems) AblationSketches(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Ablation A6: join-graph statistics (csets + sketches) vs independence estimator",
		Series: []Series{
			{Name: "sketches-1st"},
			{Name: "indep-adaptive-1st"},
			{Name: "indep-static"},
		},
	}
	indep, err := s.PRoSTIndep()
	if err != nil {
		return Figure{}, fmt.Errorf("bench: sketch ablation: %w", err)
	}
	for _, q := range queries {
		base := core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, NoPlanCache: true}

		sketch, err := s.PRoST.Query(q.Parsed, base)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: sketch ablation, %s sketches: %w", q.Name, err)
		}

		indepAdaptive, err := indep.Query(q.Parsed, base)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: sketch ablation, %s indep-adaptive: %w", q.Name, err)
		}

		staticOpts := base
		staticOpts.ReplanThreshold = -1
		indepStatic, err := indep.Query(q.Parsed, staticOpts)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: sketch ablation, %s indep-static: %w", q.Name, err)
		}

		if len(sketch.Rows) != len(indepStatic.Rows) || len(indepAdaptive.Rows) != len(indepStatic.Rows) {
			return Figure{}, fmt.Errorf("bench: sketch ablation, %s: row counts diverge (sketch %d, adaptive %d, static %d)",
				q.Name, len(sketch.Rows), len(indepAdaptive.Rows), len(indepStatic.Rows))
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, sketch.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, indepAdaptive.SimTime)
		fig.Series[2].Values = append(fig.Series[2].Values, indepStatic.SimTime)
	}
	return fig, nil
}

// AblationBroadcast compares PRoST with Catalyst-style broadcast joins
// enabled (default) and disabled (ablation A2 in DESIGN.md).
func (s *Systems) AblationBroadcast(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Ablation A2: broadcast join selection",
		Series: []Series{
			{Name: "broadcast-on"},
			{Name: "broadcast-off"},
		},
	}
	for _, q := range queries {
		on, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		off, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: -1, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, on.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, off.SimTime)
	}
	return fig, nil
}

// ExtensionInversePT compares the mixed strategy against mixed+IPT on
// object-star queries (the paper's §5 future work). The systems must
// have been loaded with LoadOptions.InversePT.
func (s *Systems) ExtensionInversePT(queries []watdiv.Query) (Figure, error) {
	fig := Figure{
		Title: "Extension E1: inverse (object-keyed) Property Table",
		Series: []Series{
			{Name: "mixed"},
			{Name: "mixed+ipt"},
		},
	}
	for _, q := range queries {
		mixed, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: s.BroadcastThreshold, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		ipt, err := s.PRoST.Query(q.Parsed, core.QueryOptions{Strategy: core.StrategyMixedIPT, BroadcastThreshold: s.BroadcastThreshold, ReplanThreshold: -1})
		if err != nil {
			return Figure{}, err
		}
		if len(mixed.Rows) != len(ipt.Rows) {
			return Figure{}, fmt.Errorf("bench: extension, %s: mixed %d rows vs ipt %d rows", q.Name, len(mixed.Rows), len(ipt.Rows))
		}
		fig.Labels = append(fig.Labels, q.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, mixed.SimTime)
		fig.Series[1].Values = append(fig.Series[1].Values, ipt.SimTime)
	}
	return fig, nil
}

// ObjectStarQueries returns the extension experiment's workload: BGPs
// whose patterns share object variables, where the inverse PT saves
// joins. They follow the WatDiv vocabulary.
func ObjectStarQueries() []watdiv.Query {
	// Pure object stars: every subject variable occurs once, so the
	// Mixed strategy cannot group anything and pays a join per pattern,
	// while Mixed+IPT answers each star with one inverse-PT select.
	raw := []struct{ name, body string }{
		{"O1", `SELECT ?r ?r2 WHERE {
			?r rev:reviewer ?u .
			?r2 rev:reviewer ?u .
		}`},
		{"O2", `SELECT ?u ?v WHERE {
			?u wsdbm:livesIn ?c .
			?v wsdbm:livesIn ?c .
		}`},
		{"O3", `SELECT ?o ?u WHERE {
			?o sorg:eligibleRegion ?c .
			?u sorg:nationality ?c .
		}`},
	}
	prologueQ := `
PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>
PREFIX sorg: <http://schema.org/>
PREFIX rev: <http://purl.org/stuff/rev#>
PREFIX gr: <http://purl.org/goodrelations/>
`
	var out []watdiv.Query
	for _, r := range raw {
		text := prologueQ + r.body
		parsed, err := parseMust(text, r.name)
		if err != nil {
			panic(err)
		}
		out = append(out, watdiv.Query{Name: r.name, Group: "O", Text: text, Parsed: parsed})
	}
	return out
}

func parseMust(text, name string) (*sparql.Query, error) {
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("bench: query %s: %w", name, err)
	}
	q.Name = name
	return q, nil
}
