package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/watdiv"
)

// TestShardProfileShape pins the scale-out acceptance shape at the
// paper fixture scale: every query must answer identically (rows and
// SimTime — ShardProfile fails otherwise) on 1, 2 and 4 shards, every
// topology must move wire traffic, and on every shuffled join the
// measured payload must land within 2x of the cost model's network
// price. The measured profile is then written to BENCH_shard.json at
// the repo root; SimTime comes from the virtual cost model and the
// byte columns from the deterministic wire encoding, so the file only
// changes when an engine, pricing or protocol change moves a tracked
// metric.
func TestShardProfileShape(t *testing.T) {
	store := streamingStore(t)
	queries := watdiv.BasicQuerySet()
	shardCounts := []int{1, 2, 4}
	recs, err := ShardProfile(store, queries, shardCounts)
	if err != nil {
		t.Fatalf("ShardProfile: %v", err)
	}
	if len(recs) != len(queries) {
		t.Fatalf("profiled %d of %d queries", len(recs), len(queries))
	}
	for _, r := range recs {
		if len(r.Topologies) != len(shardCounts) {
			t.Fatalf("%s: %d topologies, want %d", r.Query, len(r.Topologies), len(shardCounts))
		}
		for _, topo := range r.Topologies {
			if topo.SimMS != r.SimMS {
				t.Errorf("%s on %d shards: sim %.4fms diverges from single-process %.4fms",
					r.Query, topo.Shards, topo.SimMS, r.SimMS)
			}
			if topo.Exchanges < 1 || topo.WireBytes <= 0 {
				t.Errorf("%s on %d shards: no wire traffic (%d exchanges, %d B)",
					r.Query, topo.Shards, topo.Exchanges, topo.WireBytes)
			}
			if topo.ExchangeBytes > 0 && topo.PricedBytes > 0 {
				ratio := float64(topo.ExchangeBytes) / float64(topo.PricedBytes)
				if ratio < 0.25 || ratio > 2 {
					t.Errorf("%s on %d shards: payload %d B vs priced %d B (ratio %.2f) outside [0.25, 2]",
						r.Query, topo.Shards, topo.ExchangeBytes, topo.PricedBytes, ratio)
				}
			}
			t.Logf("%-4s shards=%d sim=%8.2fms exchanges=%3d payload=%8dB priced=%8dB wire=%8dB",
				r.Query, topo.Shards, topo.SimMS, topo.Exchanges, topo.ExchangeBytes, topo.PricedBytes, topo.WireBytes)
		}
	}

	out := ShardTable(recs).String()
	for _, q := range queries {
		if !strings.Contains(out, q.Name) {
			t.Errorf("shard table missing %s:\n%s", q.Name, out)
		}
	}

	path := filepath.Join("..", "..", "BENCH_shard.json")
	if err := WriteShardTrajectory(path, fixtureScale, store.Cluster().Workers(), recs); err != nil {
		t.Fatalf("WriteShardTrajectory: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trajectory: %v", err)
	}
	var doc struct {
		Scale   int
		Workers int
		Queries []ShardRecord
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trajectory not valid JSON: %v", err)
	}
	if doc.Scale != fixtureScale || doc.Workers != store.Cluster().Workers() || len(doc.Queries) != len(recs) {
		t.Errorf("trajectory round-trip mismatch: scale=%d workers=%d queries=%d", doc.Scale, doc.Workers, len(doc.Queries))
	}
}
