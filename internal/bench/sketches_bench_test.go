package bench

// Microbenchmark of the join-graph statistics (ablation A6): the
// C-family queries executed as a first run (fresh plan, no cache) on
// the default store — characteristic sets + pair sketches collected at
// load time price the correlated joins statically — against the same
// first run on the independence-estimator store with and without PR 4's
// adaptive rescue. Run with
//
//	go test ./internal/bench -bench AblationSketches
//
// SimTime is reported as the custom metric sim-ms/op.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/watdiv"
)

func BenchmarkAblationSketches(b *testing.B) {
	f := plannerStore(b)
	// Resolved up front so the lazy load never lands inside a timed
	// region.
	indep := f.indepStore(b)
	variants := []struct {
		name  string
		store *core.Store
		opts  func(core.QueryOptions) core.QueryOptions
	}{
		{"sketches-1st", f.store, func(o core.QueryOptions) core.QueryOptions {
			o.NoPlanCache = true
			return o
		}},
		{"indep-adaptive-1st", indep, func(o core.QueryOptions) core.QueryOptions {
			o.NoPlanCache = true
			return o
		}},
		{"indep-static", indep, func(o core.QueryOptions) core.QueryOptions {
			o.NoPlanCache = true
			o.ReplanThreshold = -1
			return o
		}},
	}
	for _, name := range []string{"C1", "C2", "C3"} {
		q, err := watdiv.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range variants {
			b.Run(name+"/"+v.name, func(b *testing.B) {
				opts := v.opts(core.QueryOptions{Strategy: core.StrategyMixed, BroadcastThreshold: f.bcast})
				store := v.store
				var sim int64
				for i := 0; i < b.N; i++ {
					res, err := store.Query(q.Parsed, opts)
					if err != nil {
						b.Fatal(err)
					}
					sim += int64(res.SimTime)
				}
				b.ReportMetric(float64(sim)/float64(b.N)/1e6, "sim-ms/op")
			})
		}
	}
}
