package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/watdiv"
)

// TestExtVPProfileShape pins the workload-driven ExtVP acceptance
// shape on the extrapolated cross-system fixture: once the hot pairs
// are materialized, the C-family (complex queries, the join-heaviest
// group) must win at least 20% aggregate SimTime against the PR 5
// sketch store, and no query anywhere may regress more than 1% — a
// rewrite the pricer keeps must actually pay off. The measured profile
// is then written to BENCH_extvp.json at the repo root; all numbers
// come from the virtual cost model, so the file only changes when a
// pricing or engine change moves a tracked metric.
func TestExtVPProfileShape(t *testing.T) {
	sys := systems(t)
	queries := watdiv.BasicQuerySet()
	recs, err := sys.ExtVPProfile(queries)
	if err != nil {
		t.Fatalf("ExtVPProfile: %v", err)
	}

	famBase := map[string]float64{}
	famWarm := map[string]float64{}
	for _, r := range recs {
		if r.WarmSimMS > r.BaseSimMS*1.01 {
			t.Errorf("%s: warm %.2fms regresses >1%% vs sketch baseline %.2fms", r.Query, r.WarmSimMS, r.BaseSimMS)
		}
		famBase[r.Group] += r.BaseSimMS
		famWarm[r.Group] += r.WarmSimMS
		t.Logf("%-4s base=%9.2fms cold=%9.2fms warm=%9.2fms win=%5.1f%%",
			r.Query, r.BaseSimMS, r.ColdSimMS, r.WarmSimMS, r.WinPct)
	}
	for _, g := range watdiv.Groups() {
		win := 100 * (1 - famWarm[g]/famBase[g])
		t.Logf("family %s aggregate win = %.1f%%", g, win)
		if g == "C" && win < 20 {
			t.Errorf("C-family aggregate win %.1f%%, want >= 20%%", win)
		}
	}

	out := ExtVPTable(recs).String()
	for _, q := range queries {
		if !strings.Contains(out, q.Name) {
			t.Errorf("extvp table missing %s:\n%s", q.Name, out)
		}
	}

	path := filepath.Join("..", "..", "BENCH_extvp.json")
	if err := WriteExtVPTrajectory(path, fixtureScale, sys.Cluster.Workers(), recs); err != nil {
		t.Fatalf("WriteExtVPTrajectory: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trajectory: %v", err)
	}
	var doc struct {
		Scale   int
		Workers int
		Queries []ExtVPRecord
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trajectory not valid JSON: %v", err)
	}
	if doc.Scale != fixtureScale || doc.Workers != sys.Cluster.Workers() || len(doc.Queries) != len(recs) {
		t.Errorf("trajectory round-trip mismatch: scale=%d workers=%d queries=%d", doc.Scale, doc.Workers, len(doc.Queries))
	}
}
