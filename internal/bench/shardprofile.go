package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/watdiv"
)

// ShardTopology is one query's measurement on one shard count:
// simulated time under distributed execution plus the wire traffic the
// coordinator measured. ExchangeBytes is the packed row-ID payload the
// cost model's network price is calibrated against; WireBytes adds
// framing, headers and colocated relay traffic.
type ShardTopology struct {
	Shards        int     `json:"shards"`
	SimMS         float64 `json:"simMs"`
	Exchanges     int64   `json:"exchanges"`
	ExchangeBytes int64   `json:"exchangeBytes"`
	PricedBytes   int64   `json:"pricedBytes"`
	ScanBytes     int64   `json:"scanBytes"`
	WireBytes     int64   `json:"wireBytes"`
}

// ShardRecord is one query's scale-out profile: the single-process
// baseline plus each shard topology's measurement. Distributed
// execution delegates kernels but prices stages from the same
// coordinator-known values, so every topology's SimMS must equal the
// baseline's — the profile exists to track the wire traffic that
// equality costs.
type ShardRecord struct {
	Query      string          `json:"query"`
	Group      string          `json:"group"`
	Rows       int             `json:"rows"`
	SimMS      float64         `json:"simMs"`
	Topologies []ShardTopology `json:"topologies"`
}

// shardTopo is one booted in-process topology: n shard servers sharing
// the store (loading is deterministic, so a shared store is
// indistinguishable from n separate loads) plus a dialed coordinator.
type shardTopo struct {
	coord   *shard.Coordinator
	servers []*shard.Server
}

func bootTopology(store *core.Store, shards int) (*shardTopo, error) {
	topo := &shardTopo{}
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv, err := shard.NewServer(store, i, shards)
		if err != nil {
			topo.close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			topo.close()
			return nil, err
		}
		go srv.Serve(ln)
		topo.servers = append(topo.servers, srv)
		addrs[i] = ln.Addr().String()
	}
	coord, err := shard.Dial(store, addrs)
	if err != nil {
		topo.close()
		return nil, err
	}
	topo.coord = coord
	return topo, nil
}

func (t *shardTopo) close() {
	if t.coord != nil {
		t.coord.Close()
	}
	for _, s := range t.servers {
		s.Close()
	}
}

// netBytes sums the calibration annotations over a plan's nodes,
// splitting join/distinct exchanges (priced by the network cost model)
// from leaf scans (priced in disk bytes — a different unit, so their
// payload is reported separately rather than folded into the exchange
// ratio).
func netBytes(p *plan.Plan) (measured, priced, scans int64) {
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		if !n.HasNetBytes {
			return
		}
		if n.Op == plan.OpScan {
			scans += n.MeasuredNetBytes
			return
		}
		measured += n.MeasuredNetBytes
		priced += n.PricedNetBytes
	}
	walk(p.Root)
	return measured, priced, scans
}

// ShardProfile measures every query single-process and on each shard
// count. Broadcasting is disabled so joins exercise the shuffle
// exchange path the calibration layer prices — the same plans execute
// in every configuration, keeping the comparison paired. Rows and
// SimTime must agree exactly between single-process and every
// topology, or the profile fails.
func ShardProfile(store *core.Store, queries []watdiv.Query, shardCounts []int) ([]ShardRecord, error) {
	topos := make([]*shardTopo, len(shardCounts))
	for i, n := range shardCounts {
		topo, err := bootTopology(store, n)
		if err != nil {
			for _, t := range topos[:i] {
				t.close()
			}
			return nil, fmt.Errorf("bench: shard profile, booting %d-shard topology: %w", n, err)
		}
		topos[i] = topo
	}
	defer func() {
		for _, t := range topos {
			t.close()
		}
	}()

	base := core.QueryOptions{Strategy: core.StrategyMixed, ReplanThreshold: -1, BroadcastThreshold: -1}
	var out []ShardRecord
	for _, q := range queries {
		single, err := store.Query(q.Parsed, base)
		if err != nil {
			return nil, fmt.Errorf("bench: shard profile, %s single-process: %w", q.Name, err)
		}
		rec := ShardRecord{
			Query: q.Name,
			Group: q.Group,
			Rows:  len(single.Rows),
			SimMS: ms(single.SimTime),
		}
		for i, topo := range topos {
			before := topo.coord.NetworkStats()
			opts := base
			opts.Dist = topo.coord
			res, err := store.Query(q.Parsed, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: shard profile, %s on %d shards: %w", q.Name, shardCounts[i], err)
			}
			if len(res.Rows) != len(single.Rows) {
				return nil, fmt.Errorf("bench: shard profile, %s on %d shards: %d rows vs single-process %d",
					q.Name, shardCounts[i], len(res.Rows), len(single.Rows))
			}
			if res.SimTime != single.SimTime {
				return nil, fmt.Errorf("bench: shard profile, %s on %d shards: SimTime %v diverges from single-process %v",
					q.Name, shardCounts[i], res.SimTime, single.SimTime)
			}
			after := topo.coord.NetworkStats()
			measured, priced, scanBytes := netBytes(res.Plan)
			rec.Topologies = append(rec.Topologies, ShardTopology{
				Shards:        shardCounts[i],
				SimMS:         ms(res.SimTime),
				Exchanges:     after.Exchanges - before.Exchanges,
				ExchangeBytes: measured,
				PricedBytes:   priced,
				ScanBytes:     scanBytes,
				WireBytes: (after.BytesSent + after.BytesReceived) -
					(before.BytesSent + before.BytesReceived),
			})
		}
		out = append(out, rec)
	}
	return out, nil
}

// ShardTable renders the profile for human consumption.
func ShardTable(recs []ShardRecord) Table {
	t := Table{
		Title:  "Scale-out execution: per-topology wire traffic at identical SimTime",
		Header: []string{"query", "sim-ms", "shards", "exchanges", "payload", "priced", "wire"},
	}
	for _, r := range recs {
		for _, topo := range r.Topologies {
			t.Rows = append(t.Rows, []string{
				r.Query,
				fmt.Sprintf("%.2f", r.SimMS),
				fmt.Sprintf("%d", topo.Shards),
				fmt.Sprintf("%d", topo.Exchanges),
				formatBytes(topo.ExchangeBytes),
				formatBytes(topo.PricedBytes),
				formatBytes(topo.WireBytes),
			})
		}
	}
	return t
}

// shardTrajectory is the BENCH_shard.json document. SimMS and the
// byte columns derive from the virtual cost model and the
// deterministic wire encoding, so reruns produce identical bytes and
// the committed file's diff history tracks the scale-out path's cost
// across PRs.
type shardTrajectory struct {
	Scale   int           `json:"scale"`
	Workers int           `json:"workers"`
	Queries []ShardRecord `json:"queries"`
}

// WriteShardTrajectory writes the profile to path as the
// BENCH_shard.json trajectory document.
func WriteShardTrajectory(path string, scale, workers int, recs []ShardRecord) error {
	doc := shardTrajectory{Scale: scale, Workers: workers, Queries: recs}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
