package bench

// Microbenchmarks of the engine's join/distinct hot path: shuffle hash
// join, broadcast hash join, and distinct, each over single- and
// multi-column keys. These guard the allocation budget of the join
// core — run with
//
//	go test ./internal/bench -bench 'Join|Distinct' -benchmem
//
// and compare allocs/op against the numbers recorded in CHANGES.md.

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/rdf"
)

const (
	joinBenchBuildRows = 20_000
	joinBenchProbeRows = 60_000
)

// joinBenchRelations builds a probe/build pair sharing `shared` key
// columns with dictionary-style dense IDs, spread round-robin so every
// join strategy pays its full shuffle or broadcast cost.
func joinBenchRelations(shared int) (*engine.Relation, *engine.Relation) {
	rng := rand.New(rand.NewSource(42))
	// Same effective composite keyspace (~4096 keys) at every arity so
	// output cardinality stays comparable across the key=Ncol variants.
	keyRange := []int{0, 4096, 64, 16}[shared]

	var lSchema, rSchema engine.Schema
	for i := 0; i < shared; i++ {
		c := string(rune('j' + i))
		lSchema = append(lSchema, c)
		rSchema = append(rSchema, c)
	}
	lSchema = append(lSchema, "lv")
	rSchema = append(rSchema, "rv")

	mkRows := func(n, width int) []engine.Row {
		rows := make([]engine.Row, n)
		for i := range rows {
			r := make(engine.Row, width)
			for j := 0; j < shared; j++ {
				r[j] = rdf.ID(rng.Intn(keyRange) + 1)
			}
			r[width-1] = rdf.ID(i + 1)
			rows[i] = r
		}
		return rows
	}
	roundRobin := func(schema engine.Schema, rows []engine.Row, n int) *engine.Relation {
		parts := make([][]engine.Row, n)
		for i, r := range rows {
			parts[i%n] = append(parts[i%n], r)
		}
		return engine.NewRelation(schema, parts, "")
	}
	left := roundRobin(lSchema, mkRows(joinBenchProbeRows, len(lSchema)), 8)
	right := roundRobin(rSchema, mkRows(joinBenchBuildRows, len(rSchema)), 8)
	return left, right
}

func benchJoin(b *testing.B, shared int, threshold int64) {
	left, right := joinBenchRelations(shared)
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := engine.NewExec(c, nil)
		e.BroadcastThreshold = threshold
		out, err := e.Join(left, right, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("bench join produced no rows")
		}
	}
}

func BenchmarkShuffleJoin(b *testing.B) {
	b.Run("key=1col", func(b *testing.B) { benchJoin(b, 1, -1) })
	b.Run("key=2col", func(b *testing.B) { benchJoin(b, 2, -1) })
	b.Run("key=3col", func(b *testing.B) { benchJoin(b, 3, -1) })
}

func BenchmarkBroadcastJoin(b *testing.B) {
	b.Run("key=1col", func(b *testing.B) { benchJoin(b, 1, 1<<30) })
	b.Run("key=2col", func(b *testing.B) { benchJoin(b, 2, 1<<30) })
	b.Run("key=3col", func(b *testing.B) { benchJoin(b, 3, 1<<30) })
}

func BenchmarkDistinct(b *testing.B) {
	for _, width := range []int{2, 3} {
		name := "width=2col"
		if width == 3 {
			name = "width=3col"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			rows := make([]engine.Row, 100_000)
			for i := range rows {
				r := make(engine.Row, width)
				for j := range r {
					r[j] = rdf.ID(rng.Intn(64) + 1)
				}
				rows[i] = r
			}
			parts := make([][]engine.Row, 8)
			for i, r := range rows {
				parts[i%8] = append(parts[i%8], r)
			}
			schema := engine.Schema{"a", "b", "c"}[:width]
			rel := engine.NewRelation(schema, parts, "")
			c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := engine.NewExec(c, nil)
				out, err := e.Distinct(rel)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 {
					b.Fatal("distinct produced no rows")
				}
			}
		})
	}
}
