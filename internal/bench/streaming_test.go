package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/watdiv"
)

// The streaming profile fixture: the same WatDiv dataset as the shared
// cross-system fixture, loaded at the engine's native cost model and
// default cluster shape. The streaming-vs-materialized comparison is
// engine-internal, and the broadcast-replica memory it measures only
// exists where joins actually broadcast — the extrapolated fixture's
// scaled-down threshold forces every sizeable join to shuffle instead
// (see StreamingProfile's doc comment).
var (
	streamFixOnce sync.Once
	streamFix     *core.Store
	streamFixErr  error
)

func streamingStore(t *testing.T) *core.Store {
	t.Helper()
	streamFixOnce.Do(func() {
		g := watdiv.MustGenerate(watdiv.Config{Scale: fixtureScale, Seed: 42})
		streamFix, streamFixErr = core.Load(g, core.Options{Cluster: cluster.MustNew(cluster.DefaultConfig())})
	})
	if streamFixErr != nil {
		t.Fatalf("loading streaming fixture: %v", streamFixErr)
	}
	return streamFix
}

// TestStreamingProfileShape pins the streaming executor's acceptance
// shape at the paper fixture scale: no query's streaming SimTime may
// regress more than 5% against materialized execution, first-row
// latency must land strictly before full completion wherever rows are
// produced, and the C-family peak intermediate footprint must drop at
// least 4x — the broadcast-replica memory the Spark model pins on
// every executor versus the morsel engine's single shared build hash.
// The measured profile is then written to BENCH_streaming.json at the
// repo root; all numbers come from the virtual cost model, so the file
// only changes when a pricing or engine change moves a tracked metric.
func TestStreamingProfileShape(t *testing.T) {
	store := streamingStore(t)
	queries := watdiv.BasicQuerySet()
	recs, err := StreamingProfile(store, queries)
	if err != nil {
		t.Fatalf("StreamingProfile: %v", err)
	}
	for _, r := range recs {
		if r.StreamSimMS > r.SimMS*1.05 {
			t.Errorf("%s: streaming sim %.2fms regresses >5%% vs materialized %.2fms", r.Query, r.StreamSimMS, r.SimMS)
		}
		if r.Rows > 0 {
			if r.FirstRowMS <= 0 || r.FirstRowMS >= r.StreamSimMS {
				t.Errorf("%s: first row at %.2fms not strictly inside (0, %.2fms)", r.Query, r.FirstRowMS, r.StreamSimMS)
			}
			if r.PeakBytes <= 0 || r.StreamPeakBytes <= 0 {
				t.Errorf("%s: peak bytes not tracked (mat=%d stream=%d)", r.Query, r.PeakBytes, r.StreamPeakBytes)
			}
		}
		if r.Group == "C" && r.PeakDropRatio < 4 {
			t.Errorf("%s: peak memory drop %.2fx, want >= 4x (mat %d B / stream %d B)",
				r.Query, r.PeakDropRatio, r.PeakBytes, r.StreamPeakBytes)
		}
		t.Logf("%-4s sim=%8.2fms stream=%8.2fms first=%8.2fms peak=%7dB streamPeak=%7dB drop=%5.1fx",
			r.Query, r.SimMS, r.StreamSimMS, r.FirstRowMS, r.PeakBytes, r.StreamPeakBytes, r.PeakDropRatio)
	}

	out := StreamingTable(recs).String()
	for _, q := range queries {
		if !strings.Contains(out, q.Name) {
			t.Errorf("streaming table missing %s:\n%s", q.Name, out)
		}
	}

	path := filepath.Join("..", "..", "BENCH_streaming.json")
	if err := WriteStreamingTrajectory(path, fixtureScale, store.Cluster().Workers(), recs); err != nil {
		t.Fatalf("WriteStreamingTrajectory: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trajectory: %v", err)
	}
	var doc struct {
		Scale   int
		Workers int
		Queries []StreamingRecord
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trajectory not valid JSON: %v", err)
	}
	if doc.Scale != fixtureScale || doc.Workers != store.Cluster().Workers() || len(doc.Queries) != len(recs) {
		t.Errorf("trajectory round-trip mismatch: scale=%d workers=%d queries=%d", doc.Scale, doc.Workers, len(doc.Queries))
	}
}
