package hdfs

import (
	"testing"
	"testing/quick"
)

func TestNewConfigDefaults(t *testing.T) {
	fs := MustNew(Config{DataNodes: 10})
	cfg := fs.Config()
	if cfg.BlockSize != DefaultBlockSize {
		t.Errorf("BlockSize = %d, want default", cfg.BlockSize)
	}
	if cfg.Replication != 3 {
		t.Errorf("Replication = %d, want 3", cfg.Replication)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{DataNodes: 0}); err == nil {
		t.Errorf("New with 0 data nodes succeeded")
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := MustNew(Config{DataNodes: 2, Replication: 5})
	if fs.Config().Replication != 2 {
		t.Errorf("Replication = %d, want capped at 2", fs.Config().Replication)
	}
}

func TestWriteSplitsIntoBlocks(t *testing.T) {
	fs := MustNew(Config{DataNodes: 4, BlockSize: 100, Replication: 2})
	fi, err := fs.Write("/data/file1", 250)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if len(fi.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(fi.Blocks))
	}
	sizes := []int64{100, 100, 50}
	for i, b := range fi.Blocks {
		if b.Size != sizes[i] {
			t.Errorf("block %d size = %d, want %d", i, b.Size, sizes[i])
		}
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas, want 2", i, len(b.Replicas))
		}
		if b.Replicas[0] == b.Replicas[1] {
			t.Errorf("block %d replicas on the same node", i)
		}
	}
}

func TestWriteEmptyFile(t *testing.T) {
	fs := MustNew(Config{DataNodes: 2})
	fi, err := fs.Write("/empty", 0)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if fi.Size != 0 || len(fi.Blocks) != 1 || fi.Blocks[0].Size != 0 {
		t.Errorf("empty file info = %+v", fi)
	}
}

func TestWriteErrors(t *testing.T) {
	fs := MustNew(Config{DataNodes: 2})
	if _, err := fs.Write("relative/path", 10); err == nil {
		t.Errorf("Write with relative path succeeded")
	}
	if _, err := fs.Write("", 10); err == nil {
		t.Errorf("Write with empty path succeeded")
	}
	if _, err := fs.Write("/x", -1); err == nil {
		t.Errorf("Write with negative size succeeded")
	}
}

func TestStatExistsDelete(t *testing.T) {
	fs := MustNew(Config{DataNodes: 3})
	if fs.Exists("/a") {
		t.Errorf("Exists before write")
	}
	if _, err := fs.Stat("/a"); err == nil {
		t.Errorf("Stat before write succeeded")
	}
	if _, err := fs.Write("/a", 10); err != nil {
		t.Fatalf("Write: %v", err)
	}
	fi, err := fs.Stat("/a")
	if err != nil || fi.Size != 10 {
		t.Errorf("Stat = %+v, %v", fi, err)
	}
	if err := fs.Delete("/a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if fs.Exists("/a") {
		t.Errorf("Exists after delete")
	}
	if err := fs.Delete("/a"); err == nil {
		t.Errorf("double Delete succeeded")
	}
}

func TestLogicalAndPhysicalBytes(t *testing.T) {
	fs := MustNew(Config{DataNodes: 5, BlockSize: 1000, Replication: 3})
	mustWrite(t, fs, "/prost/vp/p1", 500)
	mustWrite(t, fs, "/prost/pt/part0", 1500)
	mustWrite(t, fs, "/rya/spo", 700)
	if got := fs.LogicalBytes("/prost/"); got != 2000 {
		t.Errorf("LogicalBytes(/prost/) = %d, want 2000", got)
	}
	if got := fs.PhysicalBytes("/prost/"); got != 6000 {
		t.Errorf("PhysicalBytes(/prost/) = %d, want 6000", got)
	}
	if got := fs.LogicalBytes("/"); got != 2700 {
		t.Errorf("LogicalBytes(/) = %d, want 2700", got)
	}
}

func TestOverwriteReleasesSpace(t *testing.T) {
	fs := MustNew(Config{DataNodes: 3, BlockSize: 100, Replication: 1})
	mustWrite(t, fs, "/f", 300)
	before := fs.PhysicalBytes("/")
	mustWrite(t, fs, "/f", 100)
	after := fs.PhysicalBytes("/")
	if before != 300 || after != 100 {
		t.Errorf("physical bytes before/after overwrite = %d/%d, want 300/100", before, after)
	}
	var total int64
	for _, u := range fs.NodeUsage() {
		total += u
		if u < 0 {
			t.Errorf("negative node usage %d", u)
		}
	}
	if total != 100 {
		t.Errorf("summed node usage = %d, want 100", total)
	}
}

func TestListPrefix(t *testing.T) {
	fs := MustNew(Config{DataNodes: 2})
	mustWrite(t, fs, "/b/2", 1)
	mustWrite(t, fs, "/b/1", 1)
	mustWrite(t, fs, "/a/1", 1)
	got := fs.ListPrefix("/b/")
	if len(got) != 2 || got[0] != "/b/1" || got[1] != "/b/2" {
		t.Errorf("ListPrefix = %v", got)
	}
	if n := len(fs.ListPrefix("/zzz")); n != 0 {
		t.Errorf("ListPrefix(/zzz) = %d entries", n)
	}
}

func TestPlacementBalance(t *testing.T) {
	// Writing many equal files must spread bytes roughly evenly.
	fs := MustNew(Config{DataNodes: 5, BlockSize: 10, Replication: 2})
	for i := 0; i < 100; i++ {
		mustWrite(t, fs, "/f/"+string(rune('a'+i%26))+string(rune('0'+i/26)), 10)
	}
	usage := fs.NodeUsage()
	for node, u := range usage {
		if u < 300 || u > 500 {
			t.Errorf("node %d stores %d bytes; placement unbalanced %v", node, u, usage)
		}
	}
}

func TestPhysicalEqualsLogicalTimesReplication(t *testing.T) {
	f := func(sizes []uint16) bool {
		fs := MustNew(Config{DataNodes: 4, BlockSize: 64, Replication: 3})
		var logical int64
		for i, s := range sizes {
			if i > 50 {
				break
			}
			logical += int64(s)
			if _, err := fs.Write("/p/"+itoa(i), int64(s)); err != nil {
				return false
			}
		}
		return fs.LogicalBytes("/p/") == logical && fs.PhysicalBytes("/p/") == 3*logical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func mustWrite(t *testing.T, fs *FS, path string, size int64) {
	t.Helper()
	if _, err := fs.Write(path, size); err != nil {
		t.Fatalf("Write(%q, %d): %v", path, size, err)
	}
}
