// Package hdfs simulates the Hadoop Distributed File System layer the
// paper's systems store their tables in: files are split into blocks,
// blocks are replicated across data nodes, and readers are charged for
// the bytes they stream. The simulator tracks logical sizes (what the
// paper's Table 1 reports) and physical sizes (logical × replication),
// and provides the per-node usage view used to sanity-check placement.
package hdfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultBlockSize is the HDFS default block size (128 MiB).
const DefaultBlockSize = 128 << 20

// Config describes the simulated HDFS deployment.
type Config struct {
	// DataNodes is the number of storage nodes (the paper's cluster has
	// 10 machines; HDFS runs on all of them).
	DataNodes int
	// BlockSize is the file split granularity; 0 means DefaultBlockSize.
	BlockSize int64
	// Replication is the block replication factor; 0 means 3, and the
	// effective factor is capped at DataNodes.
	Replication int
}

// Block is one replicated block of a file.
type Block struct {
	// Index is the block's position within its file.
	Index int
	// Size is the block's byte length (≤ BlockSize).
	Size int64
	// Replicas lists the data nodes holding a copy.
	Replicas []int
}

// FileInfo describes one stored file.
type FileInfo struct {
	// Path is the file's absolute path.
	Path string
	// Size is the file's logical byte length.
	Size int64
	// Blocks is the file's block list in order.
	Blocks []Block
}

// FS is the simulated filesystem. It is safe for concurrent use.
type FS struct {
	cfg      Config
	mu       sync.RWMutex
	files    map[string]*FileInfo
	nodeUsed []int64
	nextNode int
}

// New returns an empty filesystem.
func New(cfg Config) (*FS, error) {
	if cfg.DataNodes <= 0 {
		return nil, fmt.Errorf("hdfs: DataNodes must be positive, got %d", cfg.DataNodes)
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > cfg.DataNodes {
		cfg.Replication = cfg.DataNodes
	}
	return &FS{
		cfg:      cfg,
		files:    make(map[string]*FileInfo),
		nodeUsed: make([]int64, cfg.DataNodes),
	}, nil
}

// MustNew is New that panics on error; for tests and fixtures.
func MustNew(cfg Config) *FS {
	fs, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return fs
}

// Config returns the deployment configuration (with defaults applied).
func (fs *FS) Config() Config { return fs.cfg }

// Write stores a file of the given logical size, splitting it into
// blocks and placing replicas round-robin (a simplification of HDFS's
// rack-aware placement that preserves its load-balancing effect).
// Writing an existing path overwrites it.
func (fs *FS) Write(path string, size int64) (*FileInfo, error) {
	if path == "" || !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("hdfs: path %q must be absolute", path)
	}
	if size < 0 {
		return nil, fmt.Errorf("hdfs: negative size %d for %q", size, path)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[path]; ok {
		fs.releaseLocked(old)
	}
	fi := &FileInfo{Path: path, Size: size}
	remaining := size
	for idx := 0; remaining > 0 || idx == 0; idx++ {
		bs := fs.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		replicas := make([]int, fs.cfg.Replication)
		for r := 0; r < fs.cfg.Replication; r++ {
			node := (fs.nextNode + r) % fs.cfg.DataNodes
			replicas[r] = node
			fs.nodeUsed[node] += bs
		}
		fs.nextNode = (fs.nextNode + 1) % fs.cfg.DataNodes
		fi.Blocks = append(fi.Blocks, Block{Index: idx, Size: bs, Replicas: replicas})
		remaining -= bs
		if remaining <= 0 {
			break
		}
	}
	fs.files[path] = fi
	return fi, nil
}

// releaseLocked returns an overwritten/deleted file's bytes to the nodes.
func (fs *FS) releaseLocked(fi *FileInfo) {
	for _, b := range fi.Blocks {
		for _, node := range b.Replicas {
			fs.nodeUsed[node] -= b.Size
		}
	}
}

// Stat returns the file's metadata.
func (fs *FS) Stat(path string) (*FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fi, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", path)
	}
	return fi, nil
}

// Exists reports whether the path is stored.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Delete removes a file, freeing its replicas.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fi, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("hdfs: no such file %q", path)
	}
	fs.releaseLocked(fi)
	delete(fs.files, path)
	return nil
}

// ListPrefix returns the stored paths with the given prefix, sorted.
func (fs *FS) ListPrefix(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// LogicalBytes returns the sum of file sizes under a prefix — the number
// Table 1 reports ("Size" of each system's database).
func (fs *FS) LogicalBytes(prefix string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for p, fi := range fs.files {
		if strings.HasPrefix(p, prefix) {
			total += fi.Size
		}
	}
	return total
}

// PhysicalBytes returns the replicated storage consumed under a prefix.
func (fs *FS) PhysicalBytes(prefix string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for p, fi := range fs.files {
		if strings.HasPrefix(p, prefix) {
			for _, b := range fi.Blocks {
				total += b.Size * int64(len(b.Replicas))
			}
		}
	}
	return total
}

// NodeUsage returns per-node stored bytes (replicas included).
func (fs *FS) NodeUsage() []int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]int64, len(fs.nodeUsed))
	copy(out, fs.nodeUsed)
	return out
}
