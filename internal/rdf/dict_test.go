package rdf

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictionaryEncodeLookup(t *testing.T) {
	d := NewDictionary()
	a := NewIRI("http://a")
	b := NewLiteral("b")

	ida := d.Encode(a)
	idb := d.Encode(b)
	if ida == NullID || idb == NullID {
		t.Fatalf("Encode returned NullID")
	}
	if ida == idb {
		t.Fatalf("distinct terms share ID %d", ida)
	}
	if got := d.Encode(a); got != ida {
		t.Errorf("re-Encode(a) = %d, want %d", got, ida)
	}
	if got := d.Term(ida); got != a {
		t.Errorf("Term(%d) = %v, want %v", ida, got, a)
	}
	if id, ok := d.Lookup(b); !ok || id != idb {
		t.Errorf("Lookup(b) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup(NewIRI("http://missing")); ok {
		t.Errorf("Lookup of missing term succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len() = %d, want 2", d.Len())
	}
}

func TestDictionaryDistinguishesLiteralFlavours(t *testing.T) {
	d := NewDictionary()
	ids := map[ID]bool{
		d.Encode(NewLiteral("x")):                 true,
		d.Encode(NewTypedLiteral("x", XSDString)): true,
		d.Encode(NewLangLiteral("x", "en")):       true,
		d.Encode(NewIRI("x")):                     true,
		d.Encode(NewBlank("x")):                   true,
	}
	if len(ids) != 5 {
		t.Errorf("same-value terms of different kinds collapsed: %d distinct IDs, want 5", len(ids))
	}
}

func TestDictionaryTermPanicsOnInvalid(t *testing.T) {
	d := NewDictionary()
	d.Encode(NewIRI("http://a"))
	for _, id := range []ID{NullID, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Term(%d) did not panic", id)
				}
			}()
			d.Term(id)
		}()
	}
}

func TestDictionaryTripleRoundTrip(t *testing.T) {
	d := NewDictionary()
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLangLiteral("o", "de"))
	enc := d.EncodeTriple(tr)
	if got := d.DecodeTriple(enc); got != tr {
		t.Errorf("round trip = %v, want %v", got, tr)
	}
}

func TestDictionaryEncodeGraph(t *testing.T) {
	g := NewGraph(0)
	g.AddSPO(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("1"))
	g.AddSPO(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("2"))
	d := NewDictionary()
	enc := d.EncodeGraph(g)
	if len(enc) != 2 {
		t.Fatalf("encoded %d triples, want 2", len(enc))
	}
	if enc[0].S != enc[1].S || enc[0].P != enc[1].P {
		t.Errorf("shared terms got different IDs: %+v %+v", enc[0], enc[1])
	}
	if enc[0].O == enc[1].O {
		t.Errorf("distinct objects share ID")
	}
	// s, p, "1", "2" = 4 distinct terms
	if d.Len() != 4 {
		t.Errorf("dictionary Len() = %d, want 4", d.Len())
	}
}

func TestDictionaryConcurrentEncode(t *testing.T) {
	d := NewDictionary()
	const goroutines = 8
	const termsPer = 200
	var wg sync.WaitGroup
	results := make([][]ID, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ids := make([]ID, termsPer)
			for i := 0; i < termsPer; i++ {
				// All goroutines intern the same term set.
				ids[i] = d.Encode(NewIRI(fmt.Sprintf("http://t/%d", i)))
			}
			results[gi] = ids
		}(gi)
	}
	wg.Wait()
	if d.Len() != termsPer {
		t.Fatalf("dictionary has %d terms, want %d", d.Len(), termsPer)
	}
	for gi := 1; gi < goroutines; gi++ {
		for i := range results[0] {
			if results[gi][i] != results[0][i] {
				t.Fatalf("goroutine %d saw ID %d for term %d, goroutine 0 saw %d",
					gi, results[gi][i], i, results[0][i])
			}
		}
	}
}

func TestDictionaryEncodeDecodePropery(t *testing.T) {
	d := NewDictionary()
	f := func(v string, kind uint8) bool {
		term := Term{Kind: TermKind(kind % 3), Value: v}
		id := d.Encode(term)
		return d.Term(id) == term && id != NullID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDictionaryApproxBytes(t *testing.T) {
	d := NewDictionary()
	if d.ApproxBytes() != 0 {
		t.Errorf("empty dictionary ApproxBytes() = %d, want 0", d.ApproxBytes())
	}
	d.Encode(NewIRI("http://example.org/abcd"))
	if d.ApproxBytes() <= 0 {
		t.Errorf("ApproxBytes() = %d, want > 0", d.ApproxBytes())
	}
}
