package rdf

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		name string
		term Term
		want string
	}{
		{"iri", NewIRI("http://example.org/s"), "<http://example.org/s>"},
		{"plain literal", NewLiteral("hello"), `"hello"`},
		{"typed literal", NewTypedLiteral("42", XSDInteger), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"lang literal", NewLangLiteral("chat", "fr"), `"chat"@fr`},
		{"blank", NewBlank("b0"), "_:b0"},
		{"escaped quote", NewLiteral(`say "hi"`), `"say \"hi\""`},
		{"escaped backslash", NewLiteral(`a\b`), `"a\\b"`},
		{"escaped newline", NewLiteral("a\nb"), `"a\nb"`},
		{"escaped tab", NewLiteral("a\tb"), `"a\tb"`},
		{"escaped cr", NewLiteral("a\rb"), `"a\rb"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.term.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestTermKindPredicates(t *testing.T) {
	iri := NewIRI("http://x")
	lit := NewLiteral("x")
	bn := NewBlank("x")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Errorf("IRI predicates wrong: %v %v %v", iri.IsIRI(), iri.IsLiteral(), iri.IsBlank())
	}
	if lit.IsIRI() || !lit.IsLiteral() || lit.IsBlank() {
		t.Errorf("literal predicates wrong")
	}
	if bn.IsIRI() || bn.IsLiteral() || !bn.IsBlank() {
		t.Errorf("blank predicates wrong")
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "IRI" || KindLiteral.String() != "Literal" || KindBlank.String() != "Blank" {
		t.Errorf("TermKind.String() wrong: %s %s %s", KindIRI, KindLiteral, KindBlank)
	}
	if got := TermKind(99).String(); got != "TermKind(99)" {
		t.Errorf("invalid kind String() = %q", got)
	}
}

func TestTermCompareOrdering(t *testing.T) {
	terms := []Term{
		NewBlank("z"),
		NewLiteral("a"),
		NewIRI("http://b"),
		NewIRI("http://a"),
		NewLangLiteral("a", "en"),
		NewTypedLiteral("a", XSDInteger),
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Compare(terms[j]) < 0 })
	// IRIs first (sorted by value), then literals, then blanks.
	if !terms[0].IsIRI() || terms[0].Value != "http://a" {
		t.Errorf("first term = %v, want IRI http://a", terms[0])
	}
	if !terms[1].IsIRI() || terms[1].Value != "http://b" {
		t.Errorf("second term = %v, want IRI http://b", terms[1])
	}
	if !terms[len(terms)-1].IsBlank() {
		t.Errorf("last term = %v, want blank node", terms[len(terms)-1])
	}
}

func TestTermCompareProperties(t *testing.T) {
	// Antisymmetry and identity, property-based.
	f := func(a, b string, kindA, kindB uint8) bool {
		ta := Term{Kind: TermKind(kindA % 3), Value: a}
		tb := Term{Kind: TermKind(kindB % 3), Value: b}
		if ta.Compare(tb) != -tb.Compare(ta) {
			return false
		}
		return ta.Compare(ta) == 0 && tb.Compare(tb) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleValid(t *testing.T) {
	s := NewIRI("http://s")
	p := NewIRI("http://p")
	o := NewLiteral("o")
	tests := []struct {
		name string
		tr   Triple
		want bool
	}{
		{"iri spo", Triple{s, p, o}, true},
		{"blank subject", Triple{NewBlank("b"), p, o}, true},
		{"literal subject", Triple{o, p, s}, false},
		{"literal predicate", Triple{s, o, o}, false},
		{"blank predicate", Triple{s, NewBlank("b"), o}, false},
		{"empty subject", Triple{NewIRI(""), p, o}, false},
		{"iri object", Triple{s, p, NewIRI("http://o")}, true},
		{"blank object", Triple{s, p, NewBlank("b")}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tr.Valid(); got != tt.want {
				t.Errorf("Valid() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGraphDistincts(t *testing.T) {
	g := NewGraph(0)
	s1, s2 := NewIRI("http://s1"), NewIRI("http://s2")
	p1, p2 := NewIRI("http://p1"), NewIRI("http://p2")
	g.AddSPO(s1, p1, NewLiteral("a"))
	g.AddSPO(s1, p2, NewLiteral("b"))
	g.AddSPO(s2, p1, NewLiteral("c"))
	g.AddSPO(s2, p1, NewLiteral("c")) // duplicate
	if g.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", g.Len())
	}
	if got := len(g.Predicates()); got != 2 {
		t.Errorf("distinct predicates = %d, want 2", got)
	}
	if got := len(g.Subjects()); got != 2 {
		t.Errorf("distinct subjects = %d, want 2", got)
	}
	if g.Predicates()[0] != p1 {
		t.Errorf("predicates not in first-seen order")
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	want := `<http://s> <http://p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
