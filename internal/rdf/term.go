// Package rdf provides the RDF data model used throughout the PRoST
// reproduction: terms, triples, an N-Triples reader/writer and a
// dictionary encoder that maps terms to dense integer IDs.
//
// The model intentionally covers exactly the subset of RDF 1.1 exercised
// by the paper's workload (WatDiv): IRIs, plain / typed / language-tagged
// literals and blank nodes. Generalized RDF (literals in subject
// position, IRIs as graph names, …) is out of scope.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three syntactic categories of RDF terms.
type TermKind uint8

// The three RDF term kinds. The zero value is KindIRI so that
// Term{Value: "http://…"} is a usable IRI term.
const (
	// KindIRI is an IRI reference such as <http://example.org/p>.
	KindIRI TermKind = iota
	// KindLiteral is a literal, optionally carrying a datatype IRI or a
	// language tag.
	KindLiteral
	// KindBlank is a blank node with a document-scoped label.
	KindBlank
)

// String implements fmt.Stringer for debugging output.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindLiteral:
		return "Literal"
	case KindBlank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Terms are value types and are comparable
// with ==, which makes them usable as map keys (the dictionary encoder
// relies on this).
type Term struct {
	// Kind selects which category the term belongs to.
	Kind TermKind
	// Value holds the IRI string (without angle brackets), the literal's
	// lexical form (unescaped) or the blank node label (without the "_:"
	// prefix), depending on Kind.
	Value string
	// Datatype is the datatype IRI of a typed literal, empty otherwise.
	// Plain literals leave both Datatype and Lang empty (implicitly
	// xsd:string, per RDF 1.1).
	Datatype string
	// Lang is the language tag of a language-tagged literal, empty
	// otherwise.
	Lang string
}

// Common XSD datatype IRIs used by the WatDiv generator and tests.
const (
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"
)

// NewIRI returns an IRI term for the given absolute IRI string.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewLiteral returns a plain literal term with the given lexical form.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewTypedLiteral returns a literal term with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: lang}
}

// NewBlank returns a blank node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal of any flavour.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// String renders the term in N-Triples surface syntax, e.g.
// <http://example.org/s>, "42"^^<…#integer>, "chat"@fr or _:b0.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		var sb strings.Builder
		sb.WriteByte('"')
		escapeLiteral(&sb, t.Value)
		sb.WriteByte('"')
		if t.Lang != "" {
			sb.WriteByte('@')
			sb.WriteString(t.Lang)
		} else if t.Datatype != "" {
			sb.WriteString("^^<")
			sb.WriteString(t.Datatype)
			sb.WriteByte('>')
		}
		return sb.String()
	default:
		return fmt.Sprintf("!invalid-term(%d)", t.Kind)
	}
}

// escapeLiteral writes s with the N-Triples string escapes applied.
func escapeLiteral(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
}

// Compare orders terms deterministically: first by kind (IRI < literal <
// blank), then by value, datatype and language. It returns -1, 0 or +1.
// The ordering exists so tables and test fixtures have a stable sort; it
// is not a SPARQL ORDER BY implementation.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}
