package rdf

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNTriplesBasic(t *testing.T) {
	doc := `
# a comment
<http://example.org/s> <http://example.org/p> <http://example.org/o> .
<http://example.org/s> <http://example.org/p> "plain" .

<http://example.org/s> <http://example.org/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/s> <http://example.org/p> "chat"@fr .
_:b0 <http://example.org/p> _:b1 .
`
	g, err := ParseNTriples(doc)
	if err != nil {
		t.Fatalf("ParseNTriples: %v", err)
	}
	if g.Len() != 5 {
		t.Fatalf("parsed %d triples, want 5", g.Len())
	}
	ts := g.Triples()
	if ts[0].O != NewIRI("http://example.org/o") {
		t.Errorf("triple 0 object = %v", ts[0].O)
	}
	if ts[1].O != NewLiteral("plain") {
		t.Errorf("triple 1 object = %v", ts[1].O)
	}
	if ts[2].O != NewTypedLiteral("42", XSDInteger) {
		t.Errorf("triple 2 object = %v", ts[2].O)
	}
	if ts[3].O != NewLangLiteral("chat", "fr") {
		t.Errorf("triple 3 object = %v", ts[3].O)
	}
	if ts[4].S != NewBlank("b0") || ts[4].O != NewBlank("b1") {
		t.Errorf("triple 4 = %v", ts[4])
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		want string
	}{
		{"quote", `<http://s> <http://p> "a\"b" .`, `a"b`},
		{"backslash", `<http://s> <http://p> "a\\b" .`, `a\b`},
		{"newline", `<http://s> <http://p> "a\nb" .`, "a\nb"},
		{"tab", `<http://s> <http://p> "a\tb" .`, "a\tb"},
		{"cr", `<http://s> <http://p> "a\rb" .`, "a\rb"},
		{"u escape", `<http://s> <http://p> "é" .`, "é"},
		{"U escape", `<http://s> <http://p> "\U0001F600" .`, "😀"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := ParseNTriples(tt.doc)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := g.Triples()[0].O.Value; got != tt.want {
				t.Errorf("object = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"missing dot", `<http://s> <http://p> <http://o>`},
		{"unterminated iri", `<http://s <http://p> <http://o> .`},
		{"unterminated literal", `<http://s> <http://p> "abc .`},
		{"literal subject", `"s" <http://p> <http://o> .`},
		{"bad escape", `<http://s> <http://p> "a\qb" .`},
		{"truncated u escape", `<http://s> <http://p> "\u00e" .`},
		{"bad hex", `<http://s> <http://p> "\u00zz" .`},
		{"empty iri", `<> <http://p> <http://o> .`},
		{"garbage after dot", `<http://s> <http://p> <http://o> . xx`},
		{"only two terms", `<http://s> <http://p> .`},
		{"empty lang", `<http://s> <http://p> "x"@ .`},
		{"datatype not iri", `<http://s> <http://p> "x"^^42 .`},
		{"bad blank", `_b <http://p> <http://o> .`},
		{"dangling backslash", `<http://s> <http://p> "x\`},
		{"surrogate rune", `<http://s> <http://p> "\uD800" .`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseNTriples(tt.doc)
			if err == nil {
				t.Errorf("ParseNTriples(%q) succeeded, want error", tt.doc)
			}
			var pe *ParseError
			if !errorsAs(err, &pe) {
				t.Errorf("error %v is not a *ParseError", err)
			} else if pe.Line != 1 {
				t.Errorf("error line = %d, want 1", pe.Line)
			}
		})
	}
}

// errorsAs is a tiny local wrapper to keep the test file free of an
// errors import dance.
func errorsAs(err error, target *(*ParseError)) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseErrorLineNumbers(t *testing.T) {
	doc := "<http://s> <http://p> <http://o> .\n# comment\nbad line\n"
	_, err := ParseNTriples(doc)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := NewGraph(0)
	g.AddSPO(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("hello \"world\"\nline2"))
	g.AddSPO(NewBlank("b0"), NewIRI("http://p2"), NewTypedLiteral("5", XSDInteger))
	g.AddSPO(NewIRI("http://s"), NewIRI("http://p3"), NewLangLiteral("bonjour", "fr"))

	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, err := ParseNTriples(sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip %d triples, want %d", g2.Len(), g.Len())
	}
	for i := range g.Triples() {
		if g.Triples()[i] != g2.Triples()[i] {
			t.Errorf("triple %d: %v != %v", i, g.Triples()[i], g2.Triples()[i])
		}
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	// Any literal lexical form must survive serialize→parse unchanged.
	f := func(lex string) bool {
		if !strings.ContainsRune(lex, '�') && strings.ToValidUTF8(lex, "") != lex {
			return true // skip invalid UTF-8 inputs; N-Triples is UTF-8 text
		}
		g := NewGraph(1)
		g.AddSPO(NewIRI("http://s"), NewIRI("http://p"), NewLiteral(lex))
		var sb strings.Builder
		if err := WriteNTriples(&sb, g); err != nil {
			return false
		}
		g2, err := ParseNTriples(sb.String())
		if err != nil || g2.Len() != 1 {
			return false
		}
		return g2.Triples()[0].O.Value == lex
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNTriplesReaderStreaming(t *testing.T) {
	doc := "<http://s> <http://p> \"1\" .\n<http://s> <http://p> \"2\" .\n"
	r := NewNTriplesReader(strings.NewReader(doc))
	t1, err := r.Read()
	if err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if t1.O.Value != "1" {
		t.Errorf("first object = %q", t1.O.Value)
	}
	t2, err := r.Read()
	if err != nil {
		t.Fatalf("read 2: %v", err)
	}
	if t2.O.Value != "2" {
		t.Errorf("second object = %q", t2.O.Value)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("third read err = %v, want io.EOF", err)
	}
}
