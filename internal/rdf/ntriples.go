package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error in an N-Triples document, carrying
// the 1-based line number where it occurred.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// NTriplesReader streams triples out of an N-Triples document. It accepts
// the line-based RDF 1.1 N-Triples grammar: one triple per line, '#'
// comments, blank lines, and the \t \n \r \" \\ \uXXXX \UXXXXXXXX string
// escapes.
type NTriplesReader struct {
	scan *bufio.Scanner
	line int
}

// NewNTriplesReader returns a reader consuming r. Lines longer than 1 MiB
// are rejected by the underlying scanner.
func NewNTriplesReader(r io.Reader) *NTriplesReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &NTriplesReader{scan: sc}
}

// Read returns the next triple, or io.EOF when the document is exhausted.
func (r *NTriplesReader) Read() (Triple, error) {
	for r.scan.Scan() {
		r.line++
		line := strings.TrimSpace(r.scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTripleLine(line, r.line)
		if err != nil {
			return Triple{}, err
		}
		return t, nil
	}
	if err := r.scan.Err(); err != nil {
		return Triple{}, fmt.Errorf("ntriples: read: %w", err)
	}
	return Triple{}, io.EOF
}

// ReadAll parses every remaining triple into a Graph.
func (r *NTriplesReader) ReadAll() (*Graph, error) {
	g := NewGraph(1024)
	for {
		t, err := r.Read()
		if err == io.EOF {
			return g, nil
		}
		if err != nil {
			return nil, err
		}
		g.Add(t)
	}
}

// ParseNTriples parses a complete N-Triples document held in a string.
func ParseNTriples(doc string) (*Graph, error) {
	return NewNTriplesReader(strings.NewReader(doc)).ReadAll()
}

// parseTripleLine parses one non-empty, non-comment N-Triples line.
func parseTripleLine(line string, lineno int) (Triple, error) {
	p := &lineParser{s: line, line: lineno}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	if err := p.dot(); err != nil {
		return Triple{}, err
	}
	t := Triple{S: s, P: pred, O: o}
	if !t.Valid() {
		return Triple{}, &ParseError{Line: lineno, Msg: "not a valid RDF triple: " + t.String()}
	}
	return t, nil
}

// lineParser is a tiny cursor over one line of input.
type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// term parses the next IRI, literal or blank node.
func (p *lineParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return Term{}, p.errf("unexpected end of line, expected term")
	}
	switch c := p.s[p.pos]; {
	case c == '<':
		return p.iri()
	case c == '"':
		return p.literal()
	case c == '_':
		return p.blank()
	default:
		return Term{}, p.errf("unexpected character %q at column %d", c, p.pos+1)
	}
}

func (p *lineParser) iri() (Term, error) {
	start := p.pos + 1
	end := strings.IndexByte(p.s[start:], '>')
	if end < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.s[start : start+end]
	if iri == "" {
		return Term{}, p.errf("empty IRI")
	}
	p.pos = start + end + 1
	return NewIRI(iri), nil
}

func (p *lineParser) blank() (Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return Term{}, p.errf("malformed blank node label")
	}
	start := p.pos + 2
	end := start
	for end < len(p.s) && !isTermBoundary(p.s[end]) {
		end++
	}
	if end == start {
		return Term{}, p.errf("empty blank node label")
	}
	p.pos = end
	return NewBlank(p.s[start:end]), nil
}

func isTermBoundary(c byte) bool { return c == ' ' || c == '\t' }

func (p *lineParser) literal() (Term, error) {
	// Opening quote already verified by caller.
	p.pos++
	var sb strings.Builder
	for {
		if p.pos >= len(p.s) {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.s[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			if err := p.escape(&sb); err != nil {
				return Term{}, err
			}
			continue
		}
		sb.WriteByte(c)
		p.pos++
	}
	lex := sb.String()
	// Optional language tag or datatype.
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		start := p.pos + 1
		end := start
		for end < len(p.s) && !isTermBoundary(p.s[end]) {
			end++
		}
		if end == start {
			return Term{}, p.errf("empty language tag")
		}
		p.pos = end
		return NewLangLiteral(lex, p.s[start:end]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.s) || p.s[p.pos] != '<' {
			return Term{}, p.errf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// escape consumes one backslash escape sequence, writing the decoded rune.
func (p *lineParser) escape(sb *strings.Builder) error {
	if p.pos+1 >= len(p.s) {
		return p.errf("dangling backslash")
	}
	c := p.s[p.pos+1]
	switch c {
	case 't':
		sb.WriteByte('\t')
	case 'n':
		sb.WriteByte('\n')
	case 'r':
		sb.WriteByte('\r')
	case '"':
		sb.WriteByte('"')
	case '\\':
		sb.WriteByte('\\')
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		hexStart := p.pos + 2
		if hexStart+n > len(p.s) {
			return p.errf("truncated \\%c escape", c)
		}
		var r rune
		for i := 0; i < n; i++ {
			d := hexDigit(p.s[hexStart+i])
			if d < 0 {
				return p.errf("invalid hex digit %q in \\%c escape", p.s[hexStart+i], c)
			}
			r = r<<4 | rune(d)
		}
		if !utf8.ValidRune(r) {
			return p.errf("escape \\%c%s is not a valid rune", c, p.s[hexStart:hexStart+n])
		}
		sb.WriteRune(r)
		p.pos = hexStart + n
		return nil
	default:
		return p.errf("unknown escape \\%c", c)
	}
	p.pos += 2
	return nil
}

func hexDigit(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	case 'A' <= c && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// dot consumes the terminating '.' and any trailing whitespace.
func (p *lineParser) dot() error {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != '.' {
		return p.errf("missing terminating '.'")
	}
	p.pos++
	p.skipSpace()
	if p.pos != len(p.s) {
		return p.errf("trailing garbage after '.'")
	}
	return nil
}

// WriteNTriples serializes the graph to w, one triple per line.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("ntriples: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("ntriples: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ntriples: flush: %w", err)
	}
	return nil
}
