package rdf

import (
	"fmt"
	"sync"
)

// ID is a dense dictionary-encoded identifier for an RDF term. The engine
// operates exclusively on IDs; strings only appear at the edges (loading
// and result rendering). ID 0 is reserved as "no value" (NullID), which
// lets the Property Table represent missing cells with the zero value.
type ID uint32

// NullID is the reserved "no value" identifier.
const NullID ID = 0

// Dictionary is a bidirectional map between RDF terms and dense IDs.
// It is safe for concurrent use: Encode takes a write lock, Term and
// related lookups take a read lock. IDs start at 1 and grow densely, so
// they double as indexes into columnar dictionaries.
type Dictionary struct {
	mu    sync.RWMutex
	terms []Term      // terms[i] is the term for ID(i+1)
	ids   map[Term]ID // inverse mapping
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[Term]ID, 1024)}
}

// Encode interns the term and returns its ID, allocating a fresh ID on
// first sight.
func (d *Dictionary) Encode(t Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.ids[t] = id
	return id
}

// Lookup returns the ID for a term without interning it. The boolean is
// false when the term has never been encoded, which query translation
// uses to answer literal-constrained patterns with an empty result.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t]
	return id, ok
}

// Term returns the term for an ID. It panics on NullID or out-of-range
// IDs, which always indicate an engine bug rather than user input.
func (d *Dictionary) Term(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NullID || int(id) > len(d.terms) {
		panic(fmt.Sprintf("rdf: dictionary lookup of invalid ID %d (size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Len returns the number of distinct terms interned so far.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// EncodedTriple is a triple after dictionary encoding.
type EncodedTriple struct {
	S, P, O ID
}

// EncodeTriple interns all three terms of t.
func (d *Dictionary) EncodeTriple(t Triple) EncodedTriple {
	return EncodedTriple{S: d.Encode(t.S), P: d.Encode(t.P), O: d.Encode(t.O)}
}

// DecodeTriple maps an encoded triple back to its terms.
func (d *Dictionary) DecodeTriple(t EncodedTriple) Triple {
	return Triple{S: d.Term(t.S), P: d.Term(t.P), O: d.Term(t.O)}
}

// EncodeGraph encodes every triple of g, preserving order.
func (d *Dictionary) EncodeGraph(g *Graph) []EncodedTriple {
	out := make([]EncodedTriple, 0, g.Len())
	for _, t := range g.Triples() {
		out = append(out, d.EncodeTriple(t))
	}
	return out
}

// ApproxBytes estimates the in-memory footprint of the dictionary's
// string data, used by the loading-size experiment to account for the
// dictionary that every system ships alongside its tables.
func (d *Dictionary) ApproxBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, t := range d.terms {
		n += int64(len(t.Value) + len(t.Datatype) + len(t.Lang) + 8)
	}
	return n
}
