package rdf

import "fmt"

// Triple is a single RDF statement (subject, predicate, object).
type Triple struct {
	S, P, O Term
}

// NewTriple is a convenience constructor.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Valid reports whether the triple is well-formed RDF: the subject must
// be an IRI or blank node, the predicate an IRI, and the object any term.
func (t Triple) Valid() bool {
	if t.S.Kind == KindLiteral {
		return false
	}
	if t.P.Kind != KindIRI {
		return false
	}
	return t.S.Value != "" && t.P.Value != ""
}

// Graph is an in-memory bag of triples. It preserves insertion order and
// may contain duplicates; deduplication happens at load time in the
// individual stores, mirroring how the paper's loaders consume raw
// N-Triples files.
type Graph struct {
	triples []Triple
}

// NewGraph returns an empty graph with capacity for n triples.
func NewGraph(n int) *Graph {
	return &Graph{triples: make([]Triple, 0, n)}
}

// Add appends a triple to the graph.
func (g *Graph) Add(t Triple) { g.triples = append(g.triples, t) }

// AddSPO appends a triple built from the three terms.
func (g *Graph) AddSPO(s, p, o Term) { g.Add(Triple{S: s, P: p, O: o}) }

// Len returns the number of triples (duplicates included).
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the backing slice. Callers must not mutate it.
func (g *Graph) Triples() []Triple { return g.triples }

// Predicates returns the distinct predicate terms in first-seen order.
func (g *Graph) Predicates() []Term {
	seen := make(map[Term]struct{})
	var out []Term
	for _, t := range g.triples {
		if _, ok := seen[t.P]; !ok {
			seen[t.P] = struct{}{}
			out = append(out, t.P)
		}
	}
	return out
}

// Subjects returns the distinct subject terms in first-seen order.
func (g *Graph) Subjects() []Term {
	seen := make(map[Term]struct{})
	var out []Term
	for _, t := range g.triples {
		if _, ok := seen[t.S]; !ok {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
	}
	return out
}
