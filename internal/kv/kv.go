// Package kv is a sorted key-value store modeled after Apache Accumulo,
// the substrate Rya stores its triple indexes in. Keys are kept globally
// sorted and split into range-partitioned tablets; scans start with a
// priced seek (the client→tablet-server round trip) and then stream
// entries. Rya's performance profile in the paper — extremely fast point
// lookups, catastrophic slowdowns when joins need millions of lookups —
// falls directly out of this cost structure.
package kv

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// DefaultTabletSize is the number of entries per tablet before a split,
// a stand-in for Accumulo's size-based tablet splitting.
const DefaultTabletSize = 1 << 17

// Entry is one key-value pair.
type Entry struct {
	Key   []byte
	Value []byte
}

// ScanStats records the priced work of one scan for the caller to charge
// to its clock.
type ScanStats struct {
	// Seeks is the number of tablet seeks performed (≥1 per scan; +1
	// for every tablet boundary crossed).
	Seeks int64
	// BytesRead is the byte volume streamed back to the client.
	BytesRead int64
	// Entries is the number of entries returned.
	Entries int64
}

// Store is a sorted KV table. Writes go through a batch-writer phase
// (Put, then Flush); reads require a flushed store. The store is safe
// for concurrent reads after Flush.
type Store struct {
	mu         sync.RWMutex
	entries    []Entry
	flushed    bool
	tabletSize int
}

// NewStore returns an empty store with the given tablet size (0 means
// DefaultTabletSize).
func NewStore(tabletSize int) *Store {
	if tabletSize <= 0 {
		tabletSize = DefaultTabletSize
	}
	return &Store{tabletSize: tabletSize}
}

// Put buffers one entry. Key bytes are copied.
func (s *Store) Put(key, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := make([]byte, len(key))
	copy(k, key)
	var v []byte
	if len(value) > 0 {
		v = make([]byte, len(value))
		copy(v, value)
	}
	s.entries = append(s.entries, Entry{Key: k, Value: v})
	s.flushed = false
}

// Flush sorts the buffered entries and removes duplicate keys (last
// write wins), making the store readable — Accumulo's minor compaction.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.SliceStable(s.entries, func(i, j int) bool {
		return bytes.Compare(s.entries[i].Key, s.entries[j].Key) < 0
	})
	// Deduplicate, keeping the last occurrence of each key.
	out := s.entries[:0]
	for i := 0; i < len(s.entries); i++ {
		if i+1 < len(s.entries) && bytes.Equal(s.entries[i].Key, s.entries[i+1].Key) {
			continue
		}
		out = append(out, s.entries[i])
	}
	s.entries = out
	s.flushed = true
}

// Len returns the number of entries (after Flush).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// SizeBytes returns the raw key+value byte volume, the input to the
// store's on-disk size accounting.
func (s *Store) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, e := range s.entries {
		n += int64(len(e.Key) + len(e.Value))
	}
	return n
}

// Tablets returns the number of range-partitioned tablets the store's
// entries occupy.
func (s *Store) Tablets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.entries) == 0 {
		return 1
	}
	return (len(s.entries) + s.tabletSize - 1) / s.tabletSize
}

// ErrNotFlushed is returned by scans on a store with unflushed writes.
var ErrNotFlushed = fmt.Errorf("kv: store has unflushed writes; call Flush first")

// ScanRange returns the entries with start ≤ key < end (end nil means
// "to the end of the table") together with the scan's priced work.
func (s *Store) ScanRange(start, end []byte) ([]Entry, ScanStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.flushed {
		return nil, ScanStats{}, ErrNotFlushed
	}
	lo := sort.Search(len(s.entries), func(i int) bool {
		return bytes.Compare(s.entries[i].Key, start) >= 0
	})
	hi := len(s.entries)
	if end != nil {
		hi = sort.Search(len(s.entries), func(i int) bool {
			return bytes.Compare(s.entries[i].Key, end) >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	result := s.entries[lo:hi]
	stats := ScanStats{Seeks: 1, Entries: int64(len(result))}
	for _, e := range result {
		stats.BytesRead += int64(len(e.Key) + len(e.Value))
	}
	// Crossing tablet boundaries costs an extra seek per tablet.
	if len(result) > 0 {
		firstTablet := lo / s.tabletSize
		lastTablet := (hi - 1) / s.tabletSize
		stats.Seeks += int64(lastTablet - firstTablet)
	}
	return result, stats, nil
}

// ScanPrefix returns the entries whose key starts with prefix.
func (s *Store) ScanPrefix(prefix []byte) ([]Entry, ScanStats, error) {
	return s.ScanRange(prefix, prefixEnd(prefix))
}

// prefixEnd computes the smallest key greater than every key with the
// given prefix, or nil when the prefix is all 0xFF (scan to the end).
func prefixEnd(prefix []byte) []byte {
	end := make([]byte, len(prefix))
	copy(end, prefix)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
