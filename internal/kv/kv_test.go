package kv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func flushedStore(t *testing.T, keys ...string) *Store {
	t.Helper()
	s := NewStore(0)
	for _, k := range keys {
		s.Put([]byte(k), nil)
	}
	s.Flush()
	return s
}

func TestPutFlushSortsAndDedupes(t *testing.T) {
	s := NewStore(0)
	s.Put([]byte("c"), []byte("1"))
	s.Put([]byte("a"), []byte("2"))
	s.Put([]byte("b"), []byte("3"))
	s.Put([]byte("a"), []byte("4")) // overwrite
	s.Flush()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	entries, _, err := s.ScanRange(nil, nil)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	wantKeys := []string{"a", "b", "c"}
	for i, e := range entries {
		if string(e.Key) != wantKeys[i] {
			t.Errorf("entry %d key = %q, want %q", i, e.Key, wantKeys[i])
		}
	}
	// Last write wins.
	if string(entries[0].Value) != "4" {
		t.Errorf("overwritten value = %q, want 4", entries[0].Value)
	}
}

func TestScanRequiresFlush(t *testing.T) {
	s := NewStore(0)
	s.Put([]byte("a"), nil)
	if _, _, err := s.ScanRange(nil, nil); err != ErrNotFlushed {
		t.Errorf("scan on unflushed store err = %v, want ErrNotFlushed", err)
	}
	s.Flush()
	if _, _, err := s.ScanRange(nil, nil); err != nil {
		t.Errorf("scan after flush err = %v", err)
	}
	s.Put([]byte("b"), nil) // new write invalidates
	if _, _, err := s.ScanRange(nil, nil); err != ErrNotFlushed {
		t.Errorf("scan after new write err = %v, want ErrNotFlushed", err)
	}
}

func TestScanRange(t *testing.T) {
	s := flushedStore(t, "apple", "banana", "cherry", "date", "fig")
	entries, stats, err := s.ScanRange([]byte("banana"), []byte("date"))
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if len(entries) != 2 || string(entries[0].Key) != "banana" || string(entries[1].Key) != "cherry" {
		t.Errorf("entries = %v", entries)
	}
	if stats.Seeks != 1 || stats.Entries != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.BytesRead != int64(len("banana")+len("cherry")) {
		t.Errorf("BytesRead = %d", stats.BytesRead)
	}
}

func TestScanRangeEmptyResult(t *testing.T) {
	s := flushedStore(t, "a", "b")
	entries, stats, err := s.ScanRange([]byte("x"), []byte("z"))
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if len(entries) != 0 {
		t.Errorf("entries = %v, want empty", entries)
	}
	if stats.Seeks != 1 {
		t.Errorf("empty scan still costs one seek, got %d", stats.Seeks)
	}
}

func TestScanPrefix(t *testing.T) {
	s := flushedStore(t, "spo|s1|p1|o1", "spo|s1|p2|o2", "spo|s2|p1|o3", "pos|p1|o1|s1")
	entries, _, err := s.ScanPrefix([]byte("spo|s1|"))
	if err != nil {
		t.Fatalf("ScanPrefix: %v", err)
	}
	if len(entries) != 2 {
		t.Errorf("prefix scan returned %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if !bytes.HasPrefix(e.Key, []byte("spo|s1|")) {
			t.Errorf("entry %q does not match prefix", e.Key)
		}
	}
}

func TestPrefixEnd(t *testing.T) {
	tests := []struct {
		prefix string
		want   []byte
	}{
		{"abc", []byte("abd")},
		{"a\xff", []byte("b")},
		{"", nil},
	}
	for _, tt := range tests {
		if got := prefixEnd([]byte(tt.prefix)); !bytes.Equal(got, tt.want) {
			t.Errorf("prefixEnd(%q) = %q, want %q", tt.prefix, got, tt.want)
		}
	}
	if got := prefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Errorf("prefixEnd(all-FF) = %q, want nil", got)
	}
}

func TestTabletBoundariesCostExtraSeeks(t *testing.T) {
	s := NewStore(10) // tiny tablets
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), nil)
	}
	s.Flush()
	if s.Tablets() != 10 {
		t.Fatalf("Tablets = %d, want 10", s.Tablets())
	}
	// Scanning all 100 entries spans 10 tablets: 1 seek + 9 crossings.
	_, stats, err := s.ScanRange(nil, nil)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if stats.Seeks != 10 {
		t.Errorf("full scan seeks = %d, want 10", stats.Seeks)
	}
	// A scan within one tablet costs a single seek.
	_, stats, err = s.ScanRange([]byte("key000"), []byte("key005"))
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if stats.Seeks != 1 {
		t.Errorf("single-tablet scan seeks = %d, want 1", stats.Seeks)
	}
}

func TestSizeBytes(t *testing.T) {
	s := NewStore(0)
	s.Put([]byte("abc"), []byte("de"))
	s.Flush()
	if got := s.SizeBytes(); got != 5 {
		t.Errorf("SizeBytes = %d, want 5", got)
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewStore(0)
	s.Flush()
	if s.Len() != 0 || s.Tablets() != 1 {
		t.Errorf("empty store Len=%d Tablets=%d", s.Len(), s.Tablets())
	}
	entries, stats, err := s.ScanRange(nil, nil)
	if err != nil || len(entries) != 0 || stats.Seeks != 1 {
		t.Errorf("empty scan = %v, %+v, %v", entries, stats, err)
	}
}

func TestPutCopiesKeyBytes(t *testing.T) {
	s := NewStore(0)
	k := []byte("mutate-me")
	s.Put(k, nil)
	k[0] = 'X'
	s.Flush()
	entries, _, err := s.ScanRange(nil, nil)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if string(entries[0].Key) != "mutate-me" {
		t.Errorf("store aliased caller's key bytes: %q", entries[0].Key)
	}
}

func TestScanRangeProperty(t *testing.T) {
	// Every scan result must be sorted and within [start, end).
	f := func(keys []string, start, end string) bool {
		if start > end {
			start, end = end, start
		}
		s := NewStore(0)
		for _, k := range keys {
			s.Put([]byte(k), nil)
		}
		s.Flush()
		entries, _, err := s.ScanRange([]byte(start), []byte(end))
		if err != nil {
			return false
		}
		prev := ""
		for _, e := range entries {
			k := string(e.Key)
			if k < start || k >= end {
				return false
			}
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
