package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rdf"
)

// testServer loads a small graph and wraps it in a Server.
func testServer(t *testing.T) *Server {
	t.Helper()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	add("user0", "likes", iri("prodA"))
	add("user1", "likes", iri("prodA"))
	add("user1", "likes", iri("prodB"))
	add("user2", "likes", iri("prodB"))
	add("prodA", "hasGenre", iri("g1"))
	add("prodB", "hasGenre", iri("g2"))
	add("user0", "name", rdf.NewLiteral("alice"))

	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	store, err := core.Load(g, core.Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	srv, err := New(Config{Store: store, MaxInflight: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

const serveQuery = `SELECT ?u ?g WHERE {
	?u <http://example.org/likes> ?p .
	?p <http://example.org/hasGenre> ?g .
}`

func get(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestSPARQLEndpointJSON(t *testing.T) {
	srv := testServer(t)
	w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var doc struct {
		Head    struct{ Vars []string }
		Results struct {
			Bindings []map[string]struct{ Type, Value string }
		}
		Stats struct {
			Rows  int
			SimMS float64 `json:"simMs"`
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "u" || doc.Head.Vars[1] != "g" {
		t.Errorf("vars = %v, want [u g]", doc.Head.Vars)
	}
	if doc.Stats.Rows != 4 || len(doc.Results.Bindings) != 4 {
		t.Errorf("rows = %d bindings = %d, want 4", doc.Stats.Rows, len(doc.Results.Bindings))
	}
	if doc.Stats.SimMS <= 0 {
		t.Errorf("simMs = %g, want > 0", doc.Stats.SimMS)
	}
	b := doc.Results.Bindings[0]["u"]
	if b.Type != "uri" || !strings.HasPrefix(b.Value, "http://example.org/user") {
		t.Errorf("binding u = %+v", b)
	}
}

func TestSPARQLEndpointTSVAndPost(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/sparql?format=tsv", strings.NewReader(serveQuery))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if lines[0] != "u\tg" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("got %d lines, want header + 4 rows:\n%s", len(lines), w.Body)
	}
}

func TestSPARQLEndpointErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path string
		want string
	}{
		{"/sparql", "missing query"},
		{"/sparql?query=" + url.QueryEscape("SELECT nonsense"), ""},
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&planner=bogus", "valid modes: cost, cost-leftdeep, heuristic, naive"},
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&strategy=bogus", "valid strategies"},
		// The test store is loaded without the inverse PT, so the
		// otherwise-valid strategy must be rejected up front.
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&strategy=" + url.QueryEscape("mixed+ipt"), "inverse property table"},
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&format=bogus", "valid formats"},
	}
	for _, tt := range cases {
		w := get(t, srv, tt.path)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tt.path, w.Code)
		}
		if tt.want != "" && !strings.Contains(w.Body.String(), tt.want) {
			t.Errorf("%s: body %q does not mention %q", tt.path, w.Body, tt.want)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	w := get(t, srv, "/explain?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	body := w.Body.String()
	for _, want := range []string{"Physical plan", "actual=", "estimation error", "Join Tree", "Stage trace"} {
		if !strings.Contains(body, want) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}

	// analyze=0 plans without executing: actuals unknown.
	w = get(t, srv, "/explain?analyze=0&query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("analyze=0 status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "not executed") {
		t.Errorf("analyze=0 output should report an unexecuted plan:\n%s", w.Body)
	}
	if strings.Contains(w.Body.String(), "Stage trace") {
		t.Errorf("analyze=0 must not execute:\n%s", w.Body)
	}
}

func TestStatsEndpointTracksCacheAndErrors(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 5; i++ {
		if w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery)); w.Code != http.StatusOK {
			t.Fatalf("query %d failed: %s", i, w.Body)
		}
	}
	get(t, srv, "/sparql?query=broken") // one parse error

	w := get(t, srv, "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats status = %d", w.Code)
	}
	var doc struct {
		PlanCache struct {
			Hits    uint64
			Misses  uint64
			HitRate float64
		}
		Queries struct {
			Total  uint64
			Errors uint64
		}
		Estimation struct {
			Observed    uint64
			AvgRatio    float64 `json:"avgMaxRatio"`
			WorstCase   float64 `json:"worstRatio"`
			SketchNodes uint64  `json:"sketchNodes"`
			IndepNodes  uint64  `json:"indepNodes"`
		}
		JoinStats struct {
			Collected      bool
			CSets          int
			SketchPairs    int
			CandidatePairs int
			TopK           int
			VolumeCoverage float64
			MemoryBytes    int64
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, w.Body)
	}
	if doc.Queries.Total != 6 || doc.Queries.Errors != 1 {
		t.Errorf("queries = %+v, want total 6 / errors 1", doc.Queries)
	}
	if doc.PlanCache.Hits < 4 {
		t.Errorf("cache hits = %d, want >= 4 after 5 identical queries", doc.PlanCache.Hits)
	}
	if doc.PlanCache.HitRate <= 0.5 {
		t.Errorf("hit rate = %g, want > 0.5", doc.PlanCache.HitRate)
	}
	if doc.Estimation.Observed != 5 || doc.Estimation.WorstCase < 1 {
		t.Errorf("estimation = %+v, want 5 observations with ratio >= 1", doc.Estimation)
	}
	// The join-graph statistics block: collected by default, with the
	// likes⋈hasGenre pair (the served query's join) among the sketches
	// and provenance counters showing the estimator consumed it.
	if !doc.JoinStats.Collected || doc.JoinStats.CSets == 0 || doc.JoinStats.SketchPairs == 0 {
		t.Errorf("joinStats = %+v, want collected with csets and sketches", doc.JoinStats)
	}
	if doc.JoinStats.VolumeCoverage <= 0 || doc.JoinStats.MemoryBytes <= 0 || doc.JoinStats.TopK == 0 {
		t.Errorf("joinStats coverage/footprint missing: %+v", doc.JoinStats)
	}
	if doc.Estimation.SketchNodes == 0 {
		t.Errorf("estimation provenance shows no sketch-priced nodes: %+v", doc.Estimation)
	}
}

// TestQueryTimeoutReturns504 pins the per-query deadline: a server
// with an already-unmeetable timeout must stop the query at a plan
// operator boundary and answer 504 with partial trace info, and the
// timed-out request must not poison the plan cache for later runs.
func TestQueryTimeoutReturns504(t *testing.T) {
	srv := testServer(t)
	srv.cfg.QueryTimeout = time.Nanosecond
	w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "plan tasks") {
		t.Errorf("504 body lacks partial trace info: %s", w.Body)
	}

	// Clearing the timeout must leave the server fully functional: the
	// cancelled run wrote nothing poisonous back.
	srv.cfg.QueryTimeout = 0
	w = get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("query after timeout: status %d (body %s)", w.Code, w.Body)
	}

	w = get(t, srv, "/stats")
	var doc struct {
		Queries struct {
			Errors   uint64
			Timeouts uint64
		}
		Adaptive struct {
			ReplansEvaluated uint64 `json:"replansEvaluated"`
			ReplansAdopted   uint64 `json:"replansAdopted"`
		}
		PlanCache struct {
			FeedbackHits     uint64 `json:"feedbackHits"`
			CorrectedEntries int    `json:"correctedEntries"`
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, w.Body)
	}
	if doc.Queries.Timeouts != 1 || doc.Queries.Errors != 1 {
		t.Errorf("stats = %+v, want 1 timeout counted as 1 error", doc.Queries)
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	if w := get(t, srv, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("healthz = %d %q", w.Code, w.Body)
	}
}

// TestConcurrentRequests drives the handler from many goroutines — the
// end-to-end race check over the server, cache, scheduler and engine.
func TestConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	want := get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(serveQuery)).Body.String()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for gi := 0; gi < 16; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				w := get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(serveQuery))
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", w.Code, w.Body)
					return
				}
				if w.Body.String() != want {
					errs <- fmt.Errorf("concurrent response differs:\n%s\nvs\n%s", w.Body, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
