package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/shard"
)

// testServer loads a small graph and wraps it in a Server.
func testServer(t *testing.T) *Server {
	t.Helper()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	add("user0", "likes", iri("prodA"))
	add("user1", "likes", iri("prodA"))
	add("user1", "likes", iri("prodB"))
	add("user2", "likes", iri("prodB"))
	add("prodA", "hasGenre", iri("g1"))
	add("prodB", "hasGenre", iri("g2"))
	add("user0", "name", rdf.NewLiteral("alice"))

	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	store, err := core.Load(g, core.Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	srv, err := New(Config{Store: store, MaxInflight: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

const serveQuery = `SELECT ?u ?g WHERE {
	?u <http://example.org/likes> ?p .
	?p <http://example.org/hasGenre> ?g .
}`

func get(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestSPARQLEndpointJSON(t *testing.T) {
	srv := testServer(t)
	w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var doc struct {
		Head    struct{ Vars []string }
		Results struct {
			Bindings []map[string]struct{ Type, Value string }
		}
		Stats struct {
			Rows  int
			SimMS float64 `json:"simMs"`
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "u" || doc.Head.Vars[1] != "g" {
		t.Errorf("vars = %v, want [u g]", doc.Head.Vars)
	}
	if doc.Stats.Rows != 4 || len(doc.Results.Bindings) != 4 {
		t.Errorf("rows = %d bindings = %d, want 4", doc.Stats.Rows, len(doc.Results.Bindings))
	}
	if doc.Stats.SimMS <= 0 {
		t.Errorf("simMs = %g, want > 0", doc.Stats.SimMS)
	}
	b := doc.Results.Bindings[0]["u"]
	if b.Type != "uri" || !strings.HasPrefix(b.Value, "http://example.org/user") {
		t.Errorf("binding u = %+v", b)
	}
}

func TestSPARQLEndpointTSVAndPost(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/sparql?format=tsv", strings.NewReader(serveQuery))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if lines[0] != "u\tg" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("got %d lines, want header + 4 rows:\n%s", len(lines), w.Body)
	}
}

func TestSPARQLEndpointErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path string
		want string
	}{
		{"/sparql", "missing query"},
		{"/sparql?query=" + url.QueryEscape("SELECT nonsense"), ""},
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&planner=bogus", "valid modes: cost, cost-leftdeep, heuristic, naive"},
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&strategy=bogus", "valid strategies"},
		// The test store is loaded without the inverse PT, so the
		// otherwise-valid strategy must be rejected up front.
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&strategy=" + url.QueryEscape("mixed+ipt"), "inverse property table"},
		{"/sparql?query=" + url.QueryEscape(serveQuery) + "&format=bogus", "valid formats"},
	}
	for _, tt := range cases {
		w := get(t, srv, tt.path)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tt.path, w.Code)
		}
		if tt.want != "" && !strings.Contains(w.Body.String(), tt.want) {
			t.Errorf("%s: body %q does not mention %q", tt.path, w.Body, tt.want)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	w := get(t, srv, "/explain?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	body := w.Body.String()
	for _, want := range []string{"Physical plan", "actual=", "estimation error", "Join Tree", "Stage trace"} {
		if !strings.Contains(body, want) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}

	// analyze=0 plans without executing: actuals unknown.
	w = get(t, srv, "/explain?analyze=0&query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("analyze=0 status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "not executed") {
		t.Errorf("analyze=0 output should report an unexecuted plan:\n%s", w.Body)
	}
	if strings.Contains(w.Body.String(), "Stage trace") {
		t.Errorf("analyze=0 must not execute:\n%s", w.Body)
	}
}

func TestStatsEndpointTracksCacheAndErrors(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 5; i++ {
		if w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery)); w.Code != http.StatusOK {
			t.Fatalf("query %d failed: %s", i, w.Body)
		}
	}
	get(t, srv, "/sparql?query=broken") // one parse error

	w := get(t, srv, "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats status = %d", w.Code)
	}
	var doc struct {
		PlanCache struct {
			Hits    uint64
			Misses  uint64
			HitRate float64
		}
		Queries struct {
			Total  uint64
			Errors uint64
		}
		Estimation struct {
			Observed    uint64
			AvgRatio    float64 `json:"avgMaxRatio"`
			WorstCase   float64 `json:"worstRatio"`
			SketchNodes uint64  `json:"sketchNodes"`
			IndepNodes  uint64  `json:"indepNodes"`
		}
		JoinStats struct {
			Collected      bool
			CSets          int
			SketchPairs    int
			CandidatePairs int
			TopK           int
			VolumeCoverage float64
			MemoryBytes    int64
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, w.Body)
	}
	if doc.Queries.Total != 6 || doc.Queries.Errors != 1 {
		t.Errorf("queries = %+v, want total 6 / errors 1", doc.Queries)
	}
	if doc.PlanCache.Hits < 4 {
		t.Errorf("cache hits = %d, want >= 4 after 5 identical queries", doc.PlanCache.Hits)
	}
	if doc.PlanCache.HitRate <= 0.5 {
		t.Errorf("hit rate = %g, want > 0.5", doc.PlanCache.HitRate)
	}
	if doc.Estimation.Observed != 5 || doc.Estimation.WorstCase < 1 {
		t.Errorf("estimation = %+v, want 5 observations with ratio >= 1", doc.Estimation)
	}
	// The join-graph statistics block: collected by default, with the
	// likes⋈hasGenre pair (the served query's join) among the sketches
	// and provenance counters showing the estimator consumed it.
	if !doc.JoinStats.Collected || doc.JoinStats.CSets == 0 || doc.JoinStats.SketchPairs == 0 {
		t.Errorf("joinStats = %+v, want collected with csets and sketches", doc.JoinStats)
	}
	if doc.JoinStats.VolumeCoverage <= 0 || doc.JoinStats.MemoryBytes <= 0 || doc.JoinStats.TopK == 0 {
		t.Errorf("joinStats coverage/footprint missing: %+v", doc.JoinStats)
	}
	if doc.Estimation.SketchNodes == 0 {
		t.Errorf("estimation provenance shows no sketch-priced nodes: %+v", doc.Estimation)
	}
}

// TestQueryTimeoutReturns504 pins the per-query deadline: a server
// with an already-unmeetable timeout must stop the query at a plan
// operator boundary and answer 504 with partial trace info, and the
// timed-out request must not poison the plan cache for later runs.
func TestQueryTimeoutReturns504(t *testing.T) {
	srv := testServer(t)
	srv.cfg.QueryTimeout = time.Nanosecond
	w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "plan tasks") {
		t.Errorf("504 body lacks partial trace info: %s", w.Body)
	}

	// Clearing the timeout must leave the server fully functional: the
	// cancelled run wrote nothing poisonous back.
	srv.cfg.QueryTimeout = 0
	w = get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("query after timeout: status %d (body %s)", w.Code, w.Body)
	}

	w = get(t, srv, "/stats")
	var doc struct {
		Queries struct {
			Errors   uint64
			Timeouts uint64
		}
		Adaptive struct {
			ReplansEvaluated uint64 `json:"replansEvaluated"`
			ReplansAdopted   uint64 `json:"replansAdopted"`
		}
		PlanCache struct {
			FeedbackHits     uint64 `json:"feedbackHits"`
			CorrectedEntries int    `json:"correctedEntries"`
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, w.Body)
	}
	if doc.Queries.Timeouts != 1 || doc.Queries.Errors != 1 {
		t.Errorf("stats = %+v, want 1 timeout counted as 1 error", doc.Queries)
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	if w := get(t, srv, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("healthz = %d %q", w.Code, w.Body)
	}
}

// TestConcurrentRequests drives the handler from many goroutines — the
// end-to-end race check over the server, cache, scheduler and engine.
func TestConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	want := get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(serveQuery)).Body.String()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for gi := 0; gi < 16; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				w := get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(serveQuery))
				// Load over the in-flight bound is shed with 503 +
				// Retry-After rather than queued; honour it like a
				// well-behaved client and try again.
				for w.Code == http.StatusServiceUnavailable {
					if w.Header().Get("Retry-After") == "" {
						errs <- fmt.Errorf("shed response missing Retry-After: %s", w.Body)
						return
					}
					time.Sleep(time.Millisecond)
					w = get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(serveQuery))
				}
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", w.Code, w.Body)
					return
				}
				if w.Body.String() != want {
					errs <- fmt.Errorf("concurrent response differs:\n%s\nvs\n%s", w.Body, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// waitInflight polls until the server's in-flight count reaches n.
func waitInflight(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		srv.drainMu.Lock()
		cur := srv.inflight
		srv.drainMu.Unlock()
		if cur == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight count never reached %d", n)
}

// TestDrainCompletesInflightQuery pins graceful shutdown: Drain stops
// admitting queries immediately (503, /readyz not ready, /healthz
// still alive) but blocks until the in-flight query finishes — and
// that query still succeeds.
func TestDrainCompletesInflightQuery(t *testing.T) {
	srv := testServer(t)
	want := get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(serveQuery)).Body.String()

	// Hold a query in flight by stalling its POST body mid-read.
	pr, pw := io.Pipe()
	req := httptest.NewRequest(http.MethodPost, "/sparql?format=tsv", pr)
	held := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(held, req)
		close(done)
	}()
	waitInflight(t, srv, 1)

	// A drain against an already-expired context must report the stuck
	// query instead of returning success.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); err == nil {
		t.Error("Drain with expired context reported success with a query in flight")
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	time.Sleep(5 * time.Millisecond)

	if w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery)); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Errorf("query during drain = %d %q, want 503 draining", w.Code, w.Body)
	}
	if w := get(t, srv, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", w.Code)
	}
	if w := get(t, srv, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness only)", w.Code)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) before the in-flight query finished", err)
	default:
	}

	// Release the held query: it completes normally despite the drain,
	// and only then does Drain return.
	if _, err := pw.Write([]byte(serveQuery)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	<-done
	if held.Code != http.StatusOK || held.Body.String() != want {
		t.Errorf("in-flight query during drain: %d %q, want 200 with normal rows", held.Code, held.Body)
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain after last query finished: %v", err)
	}
}

// TestFaultShedOverflowReturns503 pins load shedding at the in-flight
// bound: with the only execution slot taken, a query is rejected
// immediately with 503 + Retry-After, counted as shed rather than as a
// failed query.
func TestFaultShedOverflowReturns503(t *testing.T) {
	base := testServer(t)
	srv, err := New(Config{Store: base.cfg.Store, MaxInflight: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.sem <- struct{}{} // occupy the only execution slot
	w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "over capacity") {
		t.Fatalf("overflow = %d %q, want 503 over capacity", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	var doc struct {
		Queries    struct{ Total, Errors uint64 }
		Resilience struct {
			ShedRequests uint64 `json:"shedRequests"`
		}
	}
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v", err)
	}
	if doc.Resilience.ShedRequests != 1 || doc.Queries.Total != 0 || doc.Queries.Errors != 0 {
		t.Errorf("shed request miscounted: shed=%d queries=%+v, want shed=1 and no query counters",
			doc.Resilience.ShedRequests, doc.Queries)
	}

	<-srv.sem // free the slot: back to normal service
	if w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery)); w.Code != http.StatusOK {
		t.Errorf("query after slot freed = %d (%s), want 200", w.Code, w.Body)
	}
}

// TestFaultBreakerTripsAndRecovers drives the breaker through its full
// cycle on a fake clock: unrecoverable fault injection produces 500s
// with attempt traces (counted as queries.failed, not timeouts), the
// failure rate trips the breaker to fast 503s and flips /readyz, and
// after the cooldown a successful half-open probe closes it again.
func TestFaultBreakerTripsAndRecovers(t *testing.T) {
	srv := testServer(t)
	clock := time.Unix(1000, 0)
	srv.brk.now = func() time.Time { return clock }

	// Every attempt fails and the budget is one: each query aborts with
	// a *core.TaskFailedError.
	srv.cfg.Options.Faults = &cluster.FaultPlan{Seed: 1, FailRate: 1, MaxFailuresPerTask: 100}
	srv.cfg.Options.MaxTaskAttempts = 1
	for i := 0; i < DefaultBreakerMinSamples; i++ {
		w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("faulted query %d = %d (%s), want 500", i, w.Code, w.Body)
		}
		if !strings.Contains(w.Body.String(), "failed permanently") {
			t.Fatalf("500 body lacks the attempt trace: %s", w.Body)
		}
	}

	w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "circuit breaker") {
		t.Fatalf("post-trip query = %d %q, want breaker 503", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker 503 missing Retry-After")
	}
	if w := get(t, srv, "/readyz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "circuit breaker") {
		t.Errorf("readyz with open breaker = %d %q, want 503", w.Code, w.Body)
	}

	var doc struct {
		Queries struct {
			Total, Errors, Timeouts, Failed uint64
		}
		Resilience struct {
			TasksFailed  uint64 `json:"tasksFailed"`
			BreakerState string `json:"breakerState"`
			ShedRequests uint64 `json:"shedRequests"`
		}
	}
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v", err)
	}
	if doc.Queries.Failed != uint64(DefaultBreakerMinSamples) || doc.Queries.Timeouts != 0 {
		t.Errorf("queries = %+v, want %d failed / 0 timeouts", doc.Queries, DefaultBreakerMinSamples)
	}
	if doc.Resilience.BreakerState != "open" || doc.Resilience.ShedRequests == 0 || doc.Resilience.TasksFailed == 0 {
		t.Errorf("resilience = %+v, want open breaker with shed requests and failed tasks", doc.Resilience)
	}

	// Cooldown elapses and the store heals: the half-open probe succeeds
	// and closes the breaker.
	clock = clock.Add(DefaultBreakerCooldown + time.Second)
	srv.cfg.Options.Faults = nil
	srv.cfg.Options.MaxTaskAttempts = 0
	if w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery)); w.Code != http.StatusOK {
		t.Fatalf("probe after cooldown = %d (%s), want 200", w.Code, w.Body)
	}
	if st := srv.brk.stateName(); st != "closed" {
		t.Errorf("breaker state after successful probe = %q, want closed", st)
	}
	if w := get(t, srv, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz after recovery = %d, want 200", w.Code)
	}
}

// TestFaultStatsAndExplainShowRecovery pins the observability surface
// of recoverable faults: /explain renders per-node attempt counts, the
// resilience summary and the priced recovery stage, and /stats
// aggregates the recovery counters while the breaker stays closed
// (retried-to-success queries are not failures).
func TestFaultStatsAndExplainShowRecovery(t *testing.T) {
	srv := testServer(t)
	srv.cfg.Options.Faults = &cluster.FaultPlan{Seed: 3, FailRate: 1, MaxFailuresPerTask: 2}
	w := get(t, srv, "/explain?query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("explain under recoverable faults = %d (%s)", w.Code, w.Body)
	}
	body := w.Body.String()
	for _, want := range []string{"resilience: attempts=", "attempts=3", "fault recovery"} {
		if !strings.Contains(body, want) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}

	var doc struct {
		Queries    struct{ Errors uint64 }
		Resilience struct {
			Attempts     uint64 `json:"attempts"`
			Retries      uint64 `json:"retries"`
			BreakerState string `json:"breakerState"`
		}
	}
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad stats JSON: %v", err)
	}
	if doc.Resilience.Attempts == 0 || doc.Resilience.Retries == 0 {
		t.Errorf("resilience counters empty after recovered faults: %+v", doc.Resilience)
	}
	if doc.Queries.Errors != 0 || doc.Resilience.BreakerState != "closed" {
		t.Errorf("recovered faults should not look like failures: %+v %+v", doc.Queries, doc.Resilience)
	}
}

// TestSPARQLStreamingEndpoint exercises the ?streaming= override end
// to end: the streamed response carries the first-row and peak-memory
// stats, renders byte-identical bindings to the materialized response,
// /explain reports the streaming record, and /stats aggregates the
// streamed-query counters.
func TestSPARQLStreamingEndpoint(t *testing.T) {
	srv := testServer(t)
	base := "/sparql?query=" + url.QueryEscape(serveQuery)

	mat := get(t, srv, base)
	str := get(t, srv, base+"&streaming=1&chunk=512")
	if str.Code != http.StatusOK {
		t.Fatalf("streaming status = %d, body %s", str.Code, str.Body)
	}
	type doc struct {
		Results struct {
			Bindings []map[string]struct{ Type, Value string }
		}
		Stats struct {
			Rows         int
			Streamed     bool
			FirstRowMS   float64 `json:"firstRowMs"`
			PeakMemBytes int64   `json:"peakMemBytes"`
		}
	}
	var md, sd doc
	if err := json.Unmarshal(mat.Body.Bytes(), &md); err != nil {
		t.Fatalf("bad materialized JSON: %v", err)
	}
	if err := json.Unmarshal(str.Body.Bytes(), &sd); err != nil {
		t.Fatalf("bad streaming JSON: %v", err)
	}
	if !sd.Stats.Streamed {
		t.Fatal("streaming=1 response not marked streamed")
	}
	if md.Stats.Streamed {
		t.Fatal("default response claims to have streamed")
	}
	if sd.Stats.FirstRowMS <= 0 || sd.Stats.PeakMemBytes <= 0 {
		t.Errorf("streaming stats firstRowMs=%g peakMemBytes=%d, want both > 0",
			sd.Stats.FirstRowMS, sd.Stats.PeakMemBytes)
	}
	if fmt.Sprint(md.Results.Bindings) != fmt.Sprint(sd.Results.Bindings) {
		t.Errorf("streaming bindings differ from materialized:\n%v\nvs\n%v",
			sd.Results.Bindings, md.Results.Bindings)
	}

	matTSV := get(t, srv, base+"&format=tsv")
	strTSV := get(t, srv, base+"&format=tsv&streaming=1")
	if strTSV.Body.String() != matTSV.Body.String() {
		t.Errorf("streaming TSV differs from materialized:\n%q\nvs\n%q", strTSV.Body, matTSV.Body)
	}

	if w := get(t, srv, base+"&chunk=bogus"); w.Code != http.StatusBadRequest {
		t.Errorf("chunk=bogus status = %d, want 400", w.Code)
	}
	if w := get(t, srv, base+"&streaming=maybe"); w.Code != http.StatusBadRequest {
		t.Errorf("streaming=maybe status = %d, want 400", w.Code)
	}

	exp := get(t, srv, "/explain?streaming=1&query="+url.QueryEscape(serveQuery))
	if !strings.Contains(exp.Body.String(), "streamed: first row at") {
		t.Errorf("/explain missing streaming record:\n%s", exp.Body)
	}

	var stats struct {
		Queries struct {
			Streamed        uint64
			AvgFirstRowMS   float64 `json:"avgFirstRowMs"`
			MaxPeakMemBytes int64   `json:"maxPeakMemBytes"`
		}
	}
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	if stats.Queries.Streamed < 2 {
		t.Errorf("stats streamed = %d, want >= 2", stats.Queries.Streamed)
	}
	if stats.Queries.AvgFirstRowMS <= 0 || stats.Queries.MaxPeakMemBytes <= 0 {
		t.Errorf("stats avgFirstRowMs=%g maxPeakMemBytes=%d, want both > 0",
			stats.Queries.AvgFirstRowMS, stats.Queries.MaxPeakMemBytes)
	}
}

// TestMalformedParamsReturn400 pins the validation contract: a
// boolean/int parameter is parsed whenever the key is present, so an
// empty or malformed ?streaming=, ?chunk= or ?analyze= returns 400
// with a parse error rather than silently falling back to defaults.
func TestMalformedParamsReturn400(t *testing.T) {
	srv := testServer(t)
	q := url.QueryEscape(serveQuery)
	cases := []struct {
		path string
		want string
	}{
		{"/sparql?query=" + q + "&streaming=", "invalid streaming"},
		{"/sparql?query=" + q + "&streaming=yes-please", "invalid streaming"},
		{"/sparql?query=" + q + "&chunk=", "invalid chunk"},
		{"/sparql?query=" + q + "&chunk=-3", "invalid chunk"},
		{"/sparql?query=" + q + "&chunk=many", "invalid chunk"},
		{"/explain?query=" + q + "&analyze=", "invalid analyze"},
		{"/explain?query=" + q + "&analyze=maybe", "invalid analyze"},
		{"/explain?query=" + q + "&streaming=", "invalid streaming"},
	}
	for _, tt := range cases {
		w := get(t, srv, tt.path)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %q)", tt.path, w.Code, w.Body)
		}
		if !strings.Contains(w.Body.String(), tt.want) {
			t.Errorf("%s: body %q does not mention %q", tt.path, w.Body, tt.want)
		}
	}
	// Well-formed values keep working.
	for _, path := range []string{
		"/sparql?query=" + q + "&streaming=1&chunk=2",
		"/sparql?query=" + q + "&streaming=false",
		"/explain?query=" + q + "&analyze=0",
		"/explain?query=" + q + "&analyze=true",
	} {
		if w := get(t, srv, path); w.Code != http.StatusOK {
			t.Errorf("%s: status = %d, want 200 (body %q)", path, w.Code, w.Body)
		}
	}
}

// TestStatsWorkloadBlock exercises /stats against a store with the
// ExtVP subsystem enabled: after a repeated join query the workload
// block reports mined pairs, built reductions, and served hits. The
// graph needs dangling edges on both sides of the hot pair or the
// semi-joins keep every row and nothing materializes.
func TestStatsWorkloadBlock(t *testing.T) {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	add("user0", "likes", iri("prodA"))
	add("user1", "likes", iri("prodA"))
	add("user1", "likes", iri("prodB"))
	add("user2", "likes", iri("prodB"))
	add("user3", "likes", iri("prodC")) // prodC has no genre
	add("prodA", "hasGenre", iri("g1"))
	add("prodB", "hasGenre", iri("g2"))
	add("prodD", "hasGenre", iri("g3")) // nobody likes prodD

	c := cluster.MustNew(cluster.Config{Workers: 3, DefaultPartitions: 4})
	store, err := core.Load(g, core.Options{Cluster: c, ExtVPBudget: 1 << 20, ExtVPBuildAfter: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	srv, err := New(Config{Store: store, MaxInflight: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	path := "/sparql?query=" + url.QueryEscape(serveQuery)
	if w := get(t, srv, path); w.Code != http.StatusOK {
		t.Fatalf("cold query: %d %s", w.Code, w.Body)
	}
	store.Workload().Wait()
	if w := get(t, srv, path); w.Code != http.StatusOK {
		t.Fatalf("warm query: %d %s", w.Code, w.Body)
	}

	var doc struct {
		Workload struct {
			Enabled      bool
			PairsTracked int
			TablesBuilt  uint64
			TablesLive   int
			TableBytes   int64
			BudgetBytes  int64
			HitCount     uint64
		}
		Estimation struct {
			ExtVPNodes uint64 `json:"extvpNodes"`
		}
	}
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	wl := doc.Workload
	if !wl.Enabled {
		t.Fatal("workload block reports disabled on an ExtVP-enabled store")
	}
	if wl.PairsTracked < 1 || wl.TablesBuilt < 1 || wl.TablesLive < 1 {
		t.Errorf("workload block %+v, want mined pairs and live tables", wl)
	}
	if wl.HitCount < 1 {
		t.Errorf("warm query served no reduction (hitCount = %d)", wl.HitCount)
	}
	if wl.TableBytes <= 0 || wl.TableBytes > wl.BudgetBytes {
		t.Errorf("tableBytes = %d outside (0, budget %d]", wl.TableBytes, wl.BudgetBytes)
	}
	if doc.Estimation.ExtVPNodes < 1 {
		t.Errorf("estimation block recorded no extvp-sourced scan")
	}

	// The warm /explain renders the rewrite record.
	exp := get(t, srv, "/explain?query="+url.QueryEscape(serveQuery))
	if !strings.Contains(exp.Body.String(), "workload rewrites:") {
		t.Errorf("/explain missing workload rewrite block:\n%s", exp.Body)
	}
}

// TestSPARQLExtendedSurface drives the extended query forms through
// the HTTP layer: OPTIONAL rows omit unbound variables from JSON
// bindings (and render them as empty TSV cells), ORDER BY responses
// are flagged ordered and presented in query order, and GROUP BY/COUNT
// bindings carry xsd:integer literals.
func TestSPARQLExtendedSurface(t *testing.T) {
	srv := testServer(t)

	optional := `SELECT ?u ?p ?n WHERE {
		?u <http://example.org/likes> ?p .
		OPTIONAL { ?u <http://example.org/name> ?n . }
	}`
	w := get(t, srv, "/sparql?query="+url.QueryEscape(optional))
	if w.Code != http.StatusOK {
		t.Fatalf("OPTIONAL status = %d, body %s", w.Code, w.Body)
	}
	var od struct {
		Results struct {
			Bindings []map[string]struct{ Type, Value string }
		}
		Stats struct{ Rows int }
	}
	if err := json.Unmarshal(w.Body.Bytes(), &od); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if od.Stats.Rows != 4 {
		t.Fatalf("OPTIONAL rows = %d, want 4 (every likes row survives)", od.Stats.Rows)
	}
	named, bare := 0, 0
	for _, b := range od.Results.Bindings {
		if n, ok := b["n"]; ok {
			named++
			if n.Value != "alice" {
				t.Errorf("bound name = %q, want alice", n.Value)
			}
		} else {
			bare++
		}
	}
	if named != 1 || bare != 3 {
		t.Errorf("bindings with name = %d / without = %d, want 1 / 3", named, bare)
	}
	// TSV renders the unbound cell as empty, keeping the column count.
	w = get(t, srv, "/sparql?format=tsv&query="+url.QueryEscape(optional))
	for i, line := range strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n") {
		if got := strings.Count(line, "\t"); got != 2 {
			t.Errorf("TSV line %d has %d tabs, want 2: %q", i, got, line)
		}
	}

	ordered := `SELECT ?u ?p WHERE {
		?u <http://example.org/likes> ?p .
	} ORDER BY DESC(?u) ?p LIMIT 3`
	w = get(t, srv, "/sparql?query="+url.QueryEscape(ordered))
	if w.Code != http.StatusOK {
		t.Fatalf("ORDER BY status = %d, body %s", w.Code, w.Body)
	}
	var sd struct {
		Results struct {
			Bindings []map[string]struct{ Type, Value string }
		}
		Stats struct {
			Rows    int
			Ordered bool
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sd); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if !sd.Stats.Ordered || sd.Stats.Rows != 3 {
		t.Fatalf("ORDER BY stats = %+v, want ordered with 3 rows", sd.Stats)
	}
	for i := 1; i < len(sd.Results.Bindings); i++ {
		if sd.Results.Bindings[i-1]["u"].Value < sd.Results.Bindings[i]["u"].Value {
			t.Errorf("bindings not in DESC(?u) order: %v", sd.Results.Bindings)
		}
	}

	grouped := `SELECT ?p (COUNT(?u) AS ?n) WHERE {
		?u <http://example.org/likes> ?p .
	} GROUP BY ?p ORDER BY ?p`
	w = get(t, srv, "/sparql?query="+url.QueryEscape(grouped))
	if w.Code != http.StatusOK {
		t.Fatalf("GROUP BY status = %d, body %s", w.Code, w.Body)
	}
	var gd struct {
		Results struct {
			Bindings []map[string]struct{ Type, Value, Datatype string }
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &gd); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if len(gd.Results.Bindings) != 2 {
		t.Fatalf("GROUP BY bindings = %d, want 2 products", len(gd.Results.Bindings))
	}
	for _, b := range gd.Results.Bindings {
		n := b["n"]
		if n.Type != "literal" || n.Value != "2" || !strings.HasSuffix(n.Datatype, "integer") {
			t.Errorf("count binding = %+v, want xsd:integer literal 2", n)
		}
	}
}

// TestStreamingDowngradeSurfaced pins the sharded-coordinator
// interaction: ?streaming=1 against a coordinator runs materialized,
// and the downgrade is explicit — in the response's stats block and in
// the /stats streamingDowngraded counter — never silent.
func TestStreamingDowngradeSurfaced(t *testing.T) {
	store := testServer(t).cfg.Store
	var addrs []string
	for i := 0; i < 2; i++ {
		sh, err := shard.NewServer(store, i, 2)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		go sh.Serve(ln)
		t.Cleanup(func() { sh.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	coord, err := shard.Dial(store, addrs)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { coord.Close() })
	srv, err := New(Config{Store: store, Options: core.QueryOptions{Dist: coord}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	w := get(t, srv, "/sparql?streaming=1&query="+url.QueryEscape(serveQuery))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var doc struct {
		Stats struct {
			Streamed            bool
			StreamingDowngraded bool
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body)
	}
	if doc.Stats.Streamed {
		t.Error("coordinator query claims to have streamed")
	}
	if !doc.Stats.StreamingDowngraded {
		t.Error("streaming downgrade not surfaced in response stats")
	}

	var stats struct {
		Queries struct {
			StreamingDowngraded uint64 `json:"streamingDowngraded"`
		}
	}
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	if stats.Queries.StreamingDowngraded != 1 {
		t.Errorf("/stats streamingDowngraded = %d, want 1", stats.Queries.StreamingDowngraded)
	}
}

// TestStatsNetworkBlock runs the server as a 2-shard coordinator and
// checks that /stats reports the network block (and that a plain
// single-process server omits it).
func TestStatsNetworkBlock(t *testing.T) {
	plain := testServer(t)
	if strings.Contains(get(t, plain, "/stats").Body.String(), `"network"`) {
		t.Fatal("single-process /stats reports a network block")
	}

	store := testServer(t).cfg.Store
	var addrs []string
	for i := 0; i < 2; i++ {
		sh, err := shard.NewServer(store, i, 2)
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		go sh.Serve(ln)
		t.Cleanup(func() { sh.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	coord, err := shard.Dial(store, addrs)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { coord.Close() })
	srv, err := New(Config{Store: store, Options: core.QueryOptions{Dist: coord}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if w := get(t, srv, "/sparql?query="+url.QueryEscape(serveQuery)); w.Code != http.StatusOK {
		t.Fatalf("distributed query status = %d, body %s", w.Code, w.Body)
	}

	var doc struct {
		Network *struct {
			Exchanges     int64
			BytesSent     int64
			BytesReceived int64
			Shards        []struct {
				Addr  string
				Calls int64
			}
		}
	}
	w := get(t, srv, "/stats")
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad /stats JSON: %v\n%s", err, w.Body)
	}
	n := doc.Network
	if n == nil {
		t.Fatalf("coordinator /stats has no network block:\n%s", w.Body)
	}
	if n.Exchanges < 1 || n.BytesSent <= 0 || n.BytesReceived <= 0 {
		t.Errorf("network block %+v, want nonzero traffic", n)
	}
	if len(n.Shards) != 2 {
		t.Fatalf("network block reports %d shards, want 2", len(n.Shards))
	}
	for i, sh := range n.Shards {
		if sh.Addr != addrs[i] || sh.Calls < 1 {
			t.Errorf("shard %d = %+v, want addr %s with calls", i, sh, addrs[i])
		}
	}
}
