package serve

import (
	"sync"
	"time"
)

// Circuit-breaker defaults, applied when the corresponding Config knob
// is zero.
const (
	// DefaultBreakerWindow is the sliding window over which the failure
	// rate is measured.
	DefaultBreakerWindow = 30 * time.Second
	// DefaultBreakerThreshold is the execution-failure rate that trips
	// the breaker once enough samples are in the window.
	DefaultBreakerThreshold = 0.5
	// DefaultBreakerMinSamples is the minimum number of executions in the
	// window before the rate is trusted.
	DefaultBreakerMinSamples = 5
	// DefaultBreakerCooldown is how long a tripped breaker rejects
	// queries before letting a probe through.
	DefaultBreakerCooldown = 5 * time.Second
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerEvent is one execution outcome on the breaker's timeline.
type breakerEvent struct {
	at     time.Time
	failed bool
}

// breaker sheds /sparql load when the store itself is failing: once the
// execution-failure rate over a sliding window crosses the threshold it
// opens and rejects queries instantly (fast 503s instead of queueing
// doomed work), then after a cooldown lets probes through half-open —
// one success closes it, one failure re-opens it. Only execution
// outcomes feed the window; caller mistakes (400s) and shed requests
// are not evidence about store health.
type breaker struct {
	window     time.Duration
	threshold  float64
	minSamples int
	cooldown   time.Duration
	now        func() time.Time // injectable for tests

	mu       sync.Mutex
	state    breakerState
	events   []breakerEvent
	openedAt time.Time
}

// newBreaker applies defaults to zero knobs and returns a closed
// breaker on the real clock.
func newBreaker(window time.Duration, threshold float64, minSamples int, cooldown time.Duration) *breaker {
	if window <= 0 {
		window = DefaultBreakerWindow
	}
	if threshold <= 0 || threshold > 1 {
		threshold = DefaultBreakerThreshold
	}
	if minSamples <= 0 {
		minSamples = DefaultBreakerMinSamples
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{
		window:     window,
		threshold:  threshold,
		minSamples: minSamples,
		cooldown:   cooldown,
		now:        time.Now,
	}
}

// allow reports whether a query may execute now. An open breaker past
// its cooldown moves to half-open and admits probes.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
	}
	return true
}

// record feeds one execution outcome into the automaton.
func (b *breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case breakerHalfOpen:
		if failed {
			b.trip(now)
		} else {
			b.state = breakerClosed
			b.events = b.events[:0]
		}
	case breakerClosed:
		b.events = append(b.events, breakerEvent{at: now, failed: failed})
		b.prune(now)
		failures := 0
		for _, e := range b.events {
			if e.failed {
				failures++
			}
		}
		if len(b.events) >= b.minSamples &&
			float64(failures)/float64(len(b.events)) >= b.threshold {
			b.trip(now)
		}
	}
}

// trip opens the breaker and discards the window.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.events = b.events[:0]
}

// prune drops events older than the sliding window.
func (b *breaker) prune(now time.Time) {
	cut := now.Add(-b.window)
	i := 0
	for i < len(b.events) && b.events[i].at.Before(cut) {
		i++
	}
	if i > 0 {
		b.events = append(b.events[:0], b.events[i:]...)
	}
}

// stateName is the current state for /stats and /readyz.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
