// Package serve implements prost-serve's HTTP layer: a SPARQL query
// endpoint over a loaded PRoST store, built to exercise the concurrent
// execution path for real. Every request runs Store.Query directly —
// cached plans are shared read-only across in-flight requests, each
// execution schedules its plan DAG on its own bounded worker pool, and
// an in-flight semaphore caps how many queries execute at once.
//
// Endpoints:
//
//	GET|POST /sparql   — execute a query (?query=… or POST body),
//	                     JSON results by default, TSV with ?format=tsv;
//	                     ?streaming=1 routes it through the morsel
//	                     executor (?chunk= sets the chunk size) and the
//	                     response body is flushed to the client in row
//	                     chunks as it is written
//	GET      /explain  — physical plan, estimation errors, adaptive
//	                     re-plan events / feedback provenance, Join
//	                     Tree and stage trace (?analyze=0 plans only)
//	GET      /stats    — plan-cache hit rate (incl. feedback hits),
//	                     adaptive re-plan counters, query counters,
//	                     estimation-error aggregates and the resilience
//	                     block (fault recovery, breaker, shed), as JSON;
//	                     running as a shard coordinator adds a network
//	                     block (exchanges, bytes each way, per-shard
//	                     RTT p50/p99, calibration error)
//	GET      /healthz  — liveness probe (200 as long as the process
//	                     can serve HTTP at all)
//	GET      /readyz   — readiness probe: 503 while draining or while
//	                     the circuit breaker is open
//
// Config.QueryTimeout bounds each query's execution; a query past the
// deadline stops at the next operator boundary and the request
// returns 504 with partial trace info. A query that exhausts its task
// attempts under fault injection returns 500 with its attempt trace —
// the two are counted separately (queries.timeouts vs queries.failed).
//
// The server degrades instead of collapsing: queries over the
// in-flight bound are shed immediately with 503 + Retry-After rather
// than queued, and a sliding-window circuit breaker trips /sparql to
// fast 503s when the execution-failure rate crosses its threshold.
// Drain stops admitting queries while letting in-flight ones finish,
// for graceful SIGTERM shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// DefaultMaxInflight caps concurrently executing queries when
// Config.MaxInflight is zero.
const DefaultMaxInflight = 32

// Config assembles a Server.
type Config struct {
	// Store is the loaded PRoST database. Required.
	Store *core.Store
	// Options are the base query options every request starts from;
	// the strategy and planner can be overridden per request.
	Options core.QueryOptions
	// MaxInflight bounds concurrently executing queries; requests over
	// the bound wait their turn (0 = DefaultMaxInflight).
	MaxInflight int
	// MaxRows caps the rows returned per query (0 = unlimited).
	MaxRows int
	// QueryTimeout bounds each query's wall-clock execution; a query
	// past the deadline stops at the next plan-operator boundary and
	// the request returns 504 with partial trace info (how much of the
	// plan had executed). 0 means no timeout.
	QueryTimeout time.Duration
	// BreakerWindow, BreakerThreshold, BreakerMinSamples and
	// BreakerCooldown configure the /sparql circuit breaker: once at
	// least MinSamples executions land in the sliding Window and their
	// failure rate reaches Threshold, the breaker opens and queries are
	// shed with fast 503s until a post-Cooldown probe succeeds. Zero
	// values take the DefaultBreaker* constants.
	BreakerWindow     time.Duration
	BreakerThreshold  float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration
}

// Server is the prost-serve HTTP handler. It is safe for concurrent
// use by the standard library's server.
type Server struct {
	cfg Config
	mux *http.ServeMux
	sem chan struct{}
	brk *breaker

	// shed counts requests rejected without executing: in-flight
	// overflow, open breaker, draining.
	shed atomic.Uint64

	// drainMu guards the drain state and the in-flight request count.
	drainMu  sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // closed when inflight drops to 0 during drain

	mu         sync.Mutex
	queries    uint64
	errors     uint64
	timeouts   uint64
	failed     uint64
	simTotal   time.Duration
	wallTotal  time.Duration
	streamed   uint64
	downgraded uint64
	firstTotal time.Duration
	peakMax    int64
	estObs     uint64
	estSum     float64
	estMax     float64
	estMaxNode string
}

// New validates the configuration and returns a ready handler.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		sem: make(chan struct{}, cfg.MaxInflight),
		brk: newBreaker(cfg.BreakerWindow, cfg.BreakerThreshold, cfg.BreakerMinSamples, cfg.BreakerCooldown),
	}
	s.mux.HandleFunc("/sparql", s.handleSPARQL)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness only: stays 200 while draining or tripped so the
		// process is not killed mid-drain; readiness is /readyz.
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// handleReadyz is the readiness probe: not ready while draining or
// while the breaker is open (load balancers should route elsewhere),
// ready otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if st := s.brk.stateName(); st == "open" {
		http.Error(w, "circuit breaker open", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// beginRequest admits a query into the in-flight count, or refuses it
// while draining.
func (s *Server) beginRequest() error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return unavailable{msg: "draining: server is shutting down", retryAfter: time.Second}
	}
	s.inflight++
	return nil
}

// endRequest retires a query and wakes a pending Drain when the last
// one finishes.
func (s *Server) endRequest() {
	s.drainMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.drainMu.Unlock()
}

// Drain stops admitting new queries (they are shed with 503; /readyz
// reports not-ready) and blocks until every in-flight query has
// finished or ctx expires. Safe to call once during shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	var idle chan struct{}
	if s.inflight > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		idle = s.idle
	}
	s.drainMu.Unlock()
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.drainMu.Lock()
		n := s.inflight
		s.drainMu.Unlock()
		return fmt.Errorf("drain: %d queries still in flight: %w", n, ctx.Err())
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// queryText extracts the SPARQL text from ?query= or the request body.
func queryText(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("query"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return "", err
		}
		if len(b) > 0 {
			return string(b), nil
		}
	}
	return "", fmt.Errorf("missing query: pass ?query=… or POST the query text")
}

// requestOptions resolves per-request planner/strategy overrides on
// top of the configured base options.
func (s *Server) requestOptions(r *http.Request) (core.QueryOptions, error) {
	opts := s.cfg.Options
	if v := r.URL.Query().Get("planner"); v != "" {
		mode, err := core.ParsePlannerMode(v)
		if err != nil {
			return opts, err
		}
		opts.Planner = mode
	}
	if v := r.URL.Query().Get("strategy"); v != "" {
		strat, err := core.ParseStrategy(v)
		if err != nil {
			return opts, err
		}
		if strat == core.StrategyMixedIPT && s.cfg.Store.InversePropertyTable() == nil {
			return opts, fmt.Errorf("strategy %q requires a store loaded with the inverse property table (start prost-serve with -strategy mixed+ipt)", v)
		}
		opts.Strategy = strat
	}
	// Boolean and integer parameters are validated whenever the key is
	// present — ?streaming= with an empty or malformed value is a 400,
	// not a silent no-op the caller mistakes for having taken effect.
	if q := r.URL.Query(); q.Has("streaming") {
		v := q.Get("streaming")
		on, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("invalid streaming=%q: want a boolean (1, 0, true, false)", v)
		}
		opts.Streaming = on
	}
	if q := r.URL.Query(); q.Has("chunk") {
		v := q.Get("chunk")
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return opts, fmt.Errorf("invalid chunk=%q: want a positive row count", v)
		}
		opts.ChunkSize = n
	}
	return opts, nil
}

// runQuery parses and executes one request's query inside the
// in-flight bound, recording the server-level counters (failed
// requests — bad parameters, parse errors, execution errors — count
// as errors; deadline-exceeded queries additionally count as
// timeouts, permanently failed or otherwise broken executions as
// failed). Shed requests (open breaker, draining, in-flight overflow)
// are rejected before executing and counted only in shedRequests.
func (s *Server) runQuery(r *http.Request) (*core.Result, error) {
	if !s.brk.allow() {
		s.shed.Add(1)
		return nil, unavailable{
			msg:        "circuit breaker open: shedding load until the store recovers",
			retryAfter: s.brk.cooldown,
		}
	}
	if err := s.beginRequest(); err != nil {
		s.shed.Add(1)
		return nil, err
	}
	defer s.endRequest()

	res, err := s.doQuery(r)

	var ua unavailable
	if errors.As(err, &ua) {
		// Shed at the in-flight bound: never executed, so neither a
		// query counter nor a breaker sample.
		s.shed.Add(1)
		return nil, err
	}
	var br badRequest
	isBad := errors.As(err, &br)
	if !isBad {
		// Only execution outcomes are evidence about store health.
		s.brk.record(err != nil)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if err != nil {
		s.errors++
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts++
		} else if !isBad {
			s.failed++
		}
		return nil, err
	}
	s.simTotal += res.SimTime
	s.wallTotal += res.WallTime
	if res.Streamed {
		s.streamed++
		s.firstTotal += res.FirstRow
	}
	if res.StreamingDowngraded {
		s.downgraded++
	}
	if res.PeakMemBytes > s.peakMax {
		s.peakMax = res.PeakMemBytes
	}
	if ratio, at := res.Plan.MaxErrorRatio(); at != nil {
		s.estObs++
		s.estSum += ratio
		if ratio > s.estMax {
			s.estMax = ratio
			s.estMaxNode = at.Op.String()
			if at.Label != "" {
				s.estMaxNode += " " + at.Label
			}
		}
	}
	return res, nil
}

// badRequest marks an error as the caller's fault (malformed query or
// parameters); everything else renders as a server error.
type badRequest struct{ err error }

func (e badRequest) Error() string { return e.err.Error() }

// unavailable marks a request shed without executing (overflow, open
// breaker, draining); it renders as 503 with a Retry-After hint.
type unavailable struct {
	msg        string
	retryAfter time.Duration
}

func (e unavailable) Error() string { return e.msg }

// errStatus maps an error to its HTTP status: 400 for caller mistakes,
// 503 for shed load, 504 for queries stopped at their deadline, 500
// for other execution failures (including fault-exhausted tasks, whose
// *core.TaskFailedError body carries the attempt trace), so retry
// policies and monitoring can tell them apart.
func errStatus(err error) int {
	var br badRequest
	if errors.As(err, &br) {
		return http.StatusBadRequest
	}
	var ua unavailable
	if errors.As(err, &ua) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// writeError renders an error response, attaching Retry-After to shed
// requests so well-behaved clients back off.
func writeError(w http.ResponseWriter, err error) {
	var ua unavailable
	if errors.As(err, &ua) {
		secs := int(ua.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	http.Error(w, err.Error(), errStatus(err))
}

// doQuery is runQuery without the bookkeeping. With a configured
// QueryTimeout the execution runs under a deadline; a timed-out query
// returns a *core.CancelError whose message carries the partial trace
// info (completed vs scheduled plan tasks) the 504 body reports.
func (s *Server) doQuery(r *http.Request) (*core.Result, error) {
	text, err := queryText(r)
	if err != nil {
		return nil, badRequest{err}
	}
	opts, err := s.requestOptions(r)
	if err != nil {
		return nil, badRequest{err}
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, badRequest{err}
	}
	// Shed instead of queue: a request over the in-flight bound gets an
	// immediate 503 + Retry-After, keeping latency bounded under
	// overload instead of building an invisible queue.
	select {
	case s.sem <- struct{}{}:
	default:
		return nil, unavailable{
			msg:        fmt.Sprintf("over capacity: %d queries already executing", cap(s.sem)),
			retryAfter: time.Second,
		}
	}
	defer func() { <-s.sem }()
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	return s.cfg.Store.QueryContext(ctx, q, opts)
}

// binding is one variable's value in the SPARQL-JSON results format.
type binding struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

// unbound reports whether a result cell is an unbound OPTIONAL
// variable (the zero Term). Unbound cells are omitted from JSON
// bindings (per the SPARQL results format) and rendered empty in TSV.
func unbound(t rdf.Term) bool { return t == rdf.Term{} }

// termBinding maps an RDF term to its JSON binding.
func termBinding(t rdf.Term) binding {
	switch {
	case t.IsIRI():
		return binding{Type: "uri", Value: t.Value}
	case t.IsBlank():
		return binding{Type: "bnode", Value: t.Value}
	default:
		return binding{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

// sparqlStats is the /sparql response's execution record. The
// streaming-only fields report the morsel executor's two extra
// metrics: when the first result row reached the driver, and the
// simulated intermediate-memory high-water mark.
type sparqlStats struct {
	Rows         int     `json:"rows"`
	Truncated    bool    `json:"truncated,omitempty"`
	SimMS        float64 `json:"simMs"`
	WallMS       float64 `json:"wallMs"`
	Streamed     bool    `json:"streamed,omitempty"`
	FirstRowMS   float64 `json:"firstRowMs,omitempty"`
	PeakMemBytes int64   `json:"peakMemBytes,omitempty"`
	// Ordered reports that the bindings are in the query's ORDER BY
	// order rather than the server's display sort.
	Ordered bool `json:"ordered,omitempty"`
	// StreamingDowngraded reports that ?streaming=1 was requested but
	// the query ran materialized anyway — the sharded coordinator path
	// executes only under the materialized scheduler.
	StreamingDowngraded bool `json:"streamingDowngraded,omitempty"`
}

// sparqlResponse documents the /sparql JSON shape: the W3C SPARQL
// results layout plus a stats block. The handler writes it
// incrementally rather than marshaling this struct, so a streamed
// query's bindings reach the client in flushed chunks.
type sparqlResponse struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]binding `json:"bindings"`
	} `json:"results"`
	Stats sparqlStats `json:"stats"`
}

// flushEveryRows is how many result rows a streamed /sparql response
// writes between http.Flusher flushes, in both formats.
const flushEveryRows = 256

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	res, err := s.runQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	// ORDER BY results arrive in query order and must be presented
	// as-is; everything else is sorted for stable output.
	rows := res.Rows
	if !res.Ordered {
		rows = res.SortedRows()
	}
	truncated := false
	if s.cfg.MaxRows > 0 && len(rows) > s.cfg.MaxRows {
		rows = rows[:s.cfg.MaxRows]
		truncated = true
	}

	// Chunked transfer: a streamed query's rows are flushed to the
	// client in flushEveryRows batches, so consumers see results while
	// the response body is still being written (the HTTP analogue of
	// the executor's first-row latency). Materialized results write in
	// one piece, as before.
	flusher, _ := w.(http.Flusher)
	maybeFlush := func(i int) {
		if res.Streamed && flusher != nil && (i+1)%flushEveryRows == 0 {
			flusher.Flush()
		}
	}
	st := sparqlStats{
		Rows:                len(res.Rows),
		Truncated:           truncated,
		SimMS:               float64(res.SimTime) / float64(time.Millisecond),
		WallMS:              float64(res.WallTime) / float64(time.Millisecond),
		Streamed:            res.Streamed,
		PeakMemBytes:        res.PeakMemBytes,
		Ordered:             res.Ordered,
		StreamingDowngraded: res.StreamingDowngraded,
	}
	if res.Streamed {
		st.FirstRowMS = float64(res.FirstRow) / float64(time.Millisecond)
	}

	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/tab-separated-values") {
		format = "tsv"
	}
	switch format {
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		fmt.Fprintln(w, strings.Join(res.Vars, "\t"))
		for i, row := range rows {
			cells := make([]string, len(row))
			for j, t := range row {
				if unbound(t) {
					continue // empty TSV cell
				}
				cells[j] = t.String()
			}
			fmt.Fprintln(w, strings.Join(cells, "\t"))
			maybeFlush(i)
		}
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		head, _ := json.Marshal(res.Vars)
		fmt.Fprintf(w, "{\"head\":{\"vars\":%s},\"results\":{\"bindings\":[", head)
		for i, row := range rows {
			b := make(map[string]binding, len(row))
			for j, t := range row {
				if j < len(res.Vars) && !unbound(t) {
					b[res.Vars[j]] = termBinding(t)
				}
			}
			buf, _ := json.Marshal(b)
			if i > 0 {
				io.WriteString(w, ",")
			}
			io.WriteString(w, "\n")
			w.Write(buf)
			maybeFlush(i)
		}
		stats, _ := json.Marshal(st)
		fmt.Fprintf(w, "\n]},\"stats\":%s}\n", stats)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (valid formats: json, tsv)", format), http.StatusBadRequest)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	analyze := true
	if q := r.URL.Query(); q.Has("analyze") {
		v := q.Get("analyze")
		on, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, fmt.Sprintf("invalid analyze=%q: want a boolean (1, 0, true, false)", v), http.StatusBadRequest)
			return
		}
		analyze = on
	}
	if !analyze {
		// Plan only: translate and build (through the plan cache is
		// pointless here — Plan is pure), no execution, so actuals
		// render as "?" and the error summary reports not-executed.
		text, err := queryText(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opts, err := s.requestOptions(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q, err := sparql.Parse(text)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pl, err := s.cfg.Store.Plan(q, opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprint(w, pl.String())
		fmt.Fprintln(w, pl.ErrorSummary())
		return
	}
	res, err := s.runQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	fmt.Fprint(w, res.Plan.String())
	fmt.Fprintln(w, res.Plan.ErrorSummary())
	if adaptive := res.ReplanSummary(); adaptive != "" {
		fmt.Fprint(w, adaptive)
	}
	if ws := res.Plan.RewriteSummary(); ws != "" {
		fmt.Fprint(w, ws)
	}
	if rs := res.Resilience.String(); rs != "" {
		fmt.Fprint(w, rs)
	}
	fmt.Fprintf(w, "\n%d rows; simulated cluster time %v (wall %v)\n", len(res.Rows), res.SimTime, res.WallTime)
	if res.Streamed {
		fmt.Fprintf(w, "streamed: first row at %v; peak intermediate footprint %d B\n", res.FirstRow, res.PeakMemBytes)
	}
	fmt.Fprintln(w, "\nJoin Tree:")
	fmt.Fprint(w, res.Tree.String())
	fmt.Fprintln(w, "\nStage trace:")
	fmt.Fprint(w, res.Clock.Trace())
}

// statsResponse is the /stats JSON document.
type statsResponse struct {
	PlanCache struct {
		Hits             uint64  `json:"hits"`
		Misses           uint64  `json:"misses"`
		Evictions        uint64  `json:"evictions"`
		Entries          int     `json:"entries"`
		HitRate          float64 `json:"hitRate"`
		FeedbackHits     uint64  `json:"feedbackHits"`
		CorrectedEntries int     `json:"correctedEntries"`
	} `json:"planCache"`
	Queries struct {
		Total uint64 `json:"total"`
		// Errors counts every errored query; Timeouts the subset stopped
		// at their deadline (504), Failed the subset broken by execution
		// itself — e.g. a task that exhausted its fault-injection attempt
		// budget (500).
		Errors   uint64  `json:"errors"`
		Timeouts uint64  `json:"timeouts"`
		Failed   uint64  `json:"failed"`
		AvgSimMS float64 `json:"avgSimMs"`
		AvgWall  float64 `json:"avgWallMs"`
		// Streamed counts queries answered by the morsel-driven
		// streaming executor; AvgFirstRowMS averages their simulated
		// first-row latency, and MaxPeakMemBytes is the largest
		// intermediate-memory high-water mark seen on any query in
		// either execution mode.
		Streamed        uint64  `json:"streamed"`
		AvgFirstRowMS   float64 `json:"avgFirstRowMs"`
		MaxPeakMemBytes int64   `json:"maxPeakMemBytes"`
		// StreamingDowngraded counts queries that requested streaming
		// but were forced onto the materialized scheduler (sharded
		// coordinator mode) — a downgrade the response also reports
		// per-query in its stats block.
		StreamingDowngraded uint64 `json:"streamingDowngraded"`
	} `json:"queries"`
	// Resilience aggregates fault-recovery activity across queries plus
	// the server's own degradation state.
	Resilience struct {
		Attempts            uint64 `json:"attempts"`
		Retries             uint64 `json:"retries"`
		Stragglers          uint64 `json:"stragglers"`
		SpeculativeLaunched uint64 `json:"speculativeLaunched"`
		SpeculativeWins     uint64 `json:"speculativeWins"`
		ChecksumFailures    uint64 `json:"checksumFailures"`
		LineageRecomputes   uint64 `json:"lineageRecomputes"`
		TasksFailed         uint64 `json:"tasksFailed"`
		BreakerState        string `json:"breakerState"`
		ShedRequests        uint64 `json:"shedRequests"`
	} `json:"resilience"`
	Adaptive struct {
		ReplansEvaluated uint64 `json:"replansEvaluated"`
		ReplansAdopted   uint64 `json:"replansAdopted"`
	} `json:"adaptive"`
	Estimation struct {
		Observed  uint64  `json:"observed"`
		AvgRatio  float64 `json:"avgMaxRatio"`
		WorstCase float64 `json:"worstRatio"`
		WorstNode string  `json:"worstNode,omitempty"`
		// Estimate provenance across all built plans: how many scan/join
		// estimates came from characteristic sets, pair sketches, the
		// independence fallback, a materialized ExtVP reduction's exact
		// count, or an observed cardinality seeded by an earlier query.
		CSetNodes     uint64 `json:"csetNodes"`
		SketchNodes   uint64 `json:"sketchNodes"`
		IndepNodes    uint64 `json:"indepNodes"`
		ExtVPNodes    uint64 `json:"extvpNodes"`
		ObservedNodes uint64 `json:"observedNodes"`
	} `json:"estimation"`
	// Workload reports the workload model driving ExtVP semi-join
	// materialization: mined pair/scan observations, the live reduction
	// set against its byte budget, and how often executions scanned a
	// reduction instead of a full VP table.
	Workload struct {
		Enabled       bool   `json:"enabled"`
		PairsTracked  int    `json:"pairsTracked"`
		Observations  int    `json:"observations"`
		TablesBuilt   uint64 `json:"tablesBuilt"`
		TablesEvicted uint64 `json:"tablesEvicted"`
		TablesLive    int    `json:"tablesLive"`
		TableBytes    int64  `json:"tableBytes"`
		BudgetBytes   int64  `json:"budgetBytes"`
		HitCount      uint64 `json:"hitCount"`
		Epoch         uint64 `json:"epoch"`
	} `json:"workload"`
	// Network reports distributed-execution traffic when the server runs
	// as a shard coordinator (Options.Dist set): wire exchange counts,
	// bytes each way, per-shard round-trip quantiles and how far the
	// cost model's network prices sit from measured payloads. Omitted in
	// single-process mode.
	Network *networkBlock `json:"network,omitempty"`
	// JoinStats summarizes the loader's join-graph statistics: size,
	// memory footprint, and how much of the candidate pair volume the
	// kept top-K sketches cover — the number that explains why a pair
	// fell back to independence.
	JoinStats struct {
		Collected      bool    `json:"collected"`
		CSets          int     `json:"csets"`
		SketchPairs    int     `json:"sketchPairs"`
		CandidatePairs int     `json:"candidatePairs"`
		TopK           int     `json:"topK"`
		VolumeCoverage float64 `json:"volumeCoverage"`
		MemoryBytes    int64   `json:"memoryBytes"`
	} `json:"joinStats"`
}

// networkBlock is /stats' distributed-execution section.
type networkBlock struct {
	Exchanges     int64           `json:"exchanges"`
	BytesSent     int64           `json:"bytesSent"`
	BytesReceived int64           `json:"bytesReceived"`
	Shards        []shardRTTBlock `json:"shards"`
	// CalibrationError is the mean |log2(measured/priced)| over priced
	// shuffle exchanges: 0 = the cost model prices network movement
	// exactly, 1 = off by 2x on average.
	CalibrationError    float64 `json:"calibrationError"`
	CalibratedExchanges int64   `json:"calibratedExchanges"`
}

// shardRTTBlock is one shard's round-trip latency summary in /stats.
type shardRTTBlock struct {
	Addr  string  `json:"addr"`
	Calls int64   `json:"calls"`
	P50MS float64 `json:"rttP50Ms"`
	P99MS float64 `json:"rttP99Ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var doc statsResponse
	m := s.cfg.Store.PlanCacheMetrics()
	doc.PlanCache.Hits = m.Hits
	doc.PlanCache.Misses = m.Misses
	doc.PlanCache.Evictions = m.Evictions
	doc.PlanCache.Entries = m.Entries
	doc.PlanCache.HitRate = m.HitRate()
	doc.PlanCache.FeedbackHits = m.FeedbackHits
	doc.PlanCache.CorrectedEntries = m.CorrectedEntries

	am := s.cfg.Store.AdaptiveMetrics()
	doc.Adaptive.ReplansEvaluated = am.Evaluated
	doc.Adaptive.ReplansAdopted = am.Adopted

	em := s.cfg.Store.EstSourceMetrics()
	doc.Estimation.CSetNodes = em.CSet
	doc.Estimation.SketchNodes = em.Sketch
	doc.Estimation.IndepNodes = em.Indep
	doc.Estimation.ExtVPNodes = em.ExtVP
	doc.Estimation.ObservedNodes = em.Observed

	wm := s.cfg.Store.WorkloadMetrics()
	doc.Workload.Enabled = s.cfg.Store.Workload() != nil
	doc.Workload.PairsTracked = wm.PairsTracked
	doc.Workload.Observations = wm.Observations
	doc.Workload.TablesBuilt = wm.TablesBuilt
	doc.Workload.TablesEvicted = wm.TablesEvicted
	doc.Workload.TablesLive = wm.TablesLive
	doc.Workload.TableBytes = wm.TableBytes
	doc.Workload.BudgetBytes = wm.BudgetBytes
	doc.Workload.HitCount = wm.HitCount
	doc.Workload.Epoch = wm.Epoch

	rm := s.cfg.Store.ResilienceMetrics()
	doc.Resilience.Attempts = rm.Attempts
	doc.Resilience.Retries = rm.Retries
	doc.Resilience.Stragglers = rm.Stragglers
	doc.Resilience.SpeculativeLaunched = rm.SpeculativeLaunched
	doc.Resilience.SpeculativeWins = rm.SpeculativeWins
	doc.Resilience.ChecksumFailures = rm.ChecksumFailures
	doc.Resilience.LineageRecomputes = rm.LineageRecomputes
	doc.Resilience.TasksFailed = rm.TasksFailed
	doc.Resilience.BreakerState = s.brk.stateName()
	doc.Resilience.ShedRequests = s.shed.Load()

	if nr, ok := s.cfg.Options.Dist.(core.NetworkReporter); ok {
		ns := nr.NetworkStats()
		nb := &networkBlock{
			Exchanges:           ns.Exchanges,
			BytesSent:           ns.BytesSent,
			BytesReceived:       ns.BytesReceived,
			CalibrationError:    ns.CalibrationError,
			CalibratedExchanges: ns.CalibratedExchanges,
		}
		for _, rtt := range ns.ShardRTT {
			nb.Shards = append(nb.Shards, shardRTTBlock{
				Addr:  rtt.Addr,
				Calls: rtt.Calls,
				P50MS: float64(rtt.P50) / float64(time.Millisecond),
				P99MS: float64(rtt.P99) / float64(time.Millisecond),
			})
		}
		doc.Network = nb
	}

	if js, ok := s.cfg.Store.Stats().JoinStatsSummary(); ok {
		doc.JoinStats.Collected = true
		doc.JoinStats.CSets = js.CSets
		doc.JoinStats.SketchPairs = js.SketchPairs
		doc.JoinStats.CandidatePairs = js.CandidatePairs
		doc.JoinStats.TopK = js.TopK
		doc.JoinStats.VolumeCoverage = js.VolumeCoverage
		doc.JoinStats.MemoryBytes = js.MemoryBytes
	}

	s.mu.Lock()
	doc.Queries.Total = s.queries
	doc.Queries.Errors = s.errors
	doc.Queries.Timeouts = s.timeouts
	doc.Queries.Failed = s.failed
	if ok := s.queries - s.errors; ok > 0 {
		doc.Queries.AvgSimMS = float64(s.simTotal) / float64(ok) / float64(time.Millisecond)
		doc.Queries.AvgWall = float64(s.wallTotal) / float64(ok) / float64(time.Millisecond)
	}
	doc.Queries.Streamed = s.streamed
	doc.Queries.StreamingDowngraded = s.downgraded
	if s.streamed > 0 {
		doc.Queries.AvgFirstRowMS = float64(s.firstTotal) / float64(s.streamed) / float64(time.Millisecond)
	}
	doc.Queries.MaxPeakMemBytes = s.peakMax
	doc.Estimation.Observed = s.estObs
	if s.estObs > 0 {
		doc.Estimation.AvgRatio = s.estSum / float64(s.estObs)
	}
	doc.Estimation.WorstCase = s.estMax
	doc.Estimation.WorstNode = s.estMaxNode
	s.mu.Unlock()

	writeJSON(w, doc)
}

// writeJSON renders v with an application/json content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
