package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/columnar"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Morsel-driven streaming execution. The materialized scheduler runs a
// plan operator at a time, each one materializing its full output
// relation before the next starts; this file rebuilds the same plan as
// pull-based pipelines over fixed-size column chunks. A pipeline fuses
// one source scan with every filter, hash-join probe, projection and
// distinct step up to the next pipeline breaker (a hash-join build
// side, or the driver), so an intermediate row lives exactly as long
// as the chunk carrying it. Rows cross pipeline boundaries encoded as
// columnar.RowChunk batches — the same chunk format the on-disk tables
// use — which is what drops the memory high-water mark from
// O(intermediate relations) to O(build sides + chunks in flight).
//
// Execution and pricing are decoupled: the real row work runs first
// (producing exactly the materialized path's row multisets, since the
// probe/emission code paths are shared with the engine's join), then a
// virtual morsel scheduler (cluster.SimulateMorsels) prices the
// per-pipeline work split into morsels and list-scheduled onto the
// simulated workers. SimTime therefore reflects worker contention
// across concurrent pipelines, first-row latency falls out of the
// per-morsel result deliveries, and fault injection retries single
// morsels instead of whole operators — all of it deterministic,
// because every priced quantity is a multiset invariant of the query
// (row counts per operator) rather than an artifact of goroutine
// interleaving.

// DefaultChunkSize is the number of rows per streaming chunk (and per
// morsel batch) when QueryOptions.ChunkSize is zero. Small enough that
// the in-flight budget (workers x chunk x width) stays a rounding
// error next to a C-family build side; large enough that per-chunk
// encode overhead amortizes.
const DefaultChunkSize = 2048

// memBytesPerValue is the in-memory footprint of one bound value
// (rdf.ID is a uint32). Distinct from engine.BytesPerValue, the
// serialized wire/disk footprint the cost model prices.
const memBytesPerValue = 4

// chunkSize resolves the options' streaming chunk size.
func (o QueryOptions) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return DefaultChunkSize
}

// stepKind enumerates the fused per-chunk operators.
type stepKind uint8

const (
	stepFilter stepKind = iota
	stepProbe
	stepProbeOuter
	stepProject
	stepDistinct
	stepTopK
	stepAggregate
)

// filterCheck is one residual FILTER predicate bound to its column,
// with the rows that entered it counted for stage-pricing parity (the
// materialized path charges each filter as its own stage over the
// previous filter's output).
type filterCheck struct {
	col  int
	pred func(rdf.ID) bool
	in   atomic.Int64
}

// streamStep is one fused operator of a pipeline. Steps are shared by
// every partition worker of the pipeline; all mutable state is either
// atomic (counters) or lock-guarded (the distinct set).
type streamStep struct {
	kind stepKind
	node *plan.Node
	// width is the step's output row width.
	width int
	// checks are the filter step's predicates, applied in plan order.
	checks []*filterCheck
	// jr is the probe step's join.
	jr *streamJoinRef
	// proj maps output columns into the input row.
	proj []int
	// dedup is the distinct step's row set; mu serializes inserts
	// across partition workers.
	mu    sync.Mutex
	dedup *engine.RowDeduper
	// Top-K barrier state (stepTopK): incoming rows accumulate in buf
	// under mu, trimmed back to keep rows whenever the buffer doubles —
	// the early termination that bounds an ORDER BY + LIMIT query's
	// footprint to O(offset+limit) instead of O(result). keep < 0
	// retains everything (ORDER BY without LIMIT). retained is the
	// buffer's high-water mark for the peak-memory sweep.
	less     func(a, b engine.Row) bool
	keep     int
	buf      []engine.Row
	retained int64
	// Aggregate barrier state (stepAggregate): the shared group table
	// under mu. groupIdx maps group columns into the input row;
	// countIdx maps each COUNT to its counted input column (-1 =
	// COUNT(*)).
	groupIdx []int
	countIdx []int
	groups   map[string]*aggGroup
	// out counts the step's emitted rows — the plan node's observed
	// cardinality.
	out atomic.Int64
}

// aggGroup is one GROUP BY group: its key cells and running counts.
type aggGroup struct {
	row    engine.Row
	counts []int64
}

// apply runs one chunk batch through the step. Input rows must be
// stable; output rows are stable (filter/distinct pass rows through,
// probe and project emit arena-backed rows).
func (st *streamStep) apply(rows []engine.Row) []engine.Row {
	switch st.kind {
	case stepFilter:
		for _, c := range st.checks {
			if len(rows) == 0 {
				break
			}
			c.in.Add(int64(len(rows)))
			kept := make([]engine.Row, 0, len(rows))
			for _, r := range rows {
				if c.pred(r[c.col]) {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
	case stepProbe:
		arena := engine.NewRowArena(st.width, len(rows))
		for _, r := range rows {
			st.jr.hash.Probe(r, arena)
		}
		rows = arena.Rows()
	case stepProbeOuter:
		arena := engine.NewRowArena(st.width, len(rows))
		for _, r := range rows {
			st.jr.hash.ProbeOuter(r, arena)
		}
		rows = arena.Rows()
	case stepProject:
		arena := engine.NewRowArena(st.width, len(rows))
		for _, r := range rows {
			arena.AppendProjected(r, st.proj)
		}
		rows = arena.Rows()
	case stepDistinct:
		kept := make([]engine.Row, 0, len(rows))
		st.mu.Lock()
		for _, r := range rows {
			if st.dedup.Insert(r) {
				kept = append(kept, r)
			}
		}
		st.mu.Unlock()
		rows = kept
	case stepTopK:
		st.mu.Lock()
		st.buf = append(st.buf, rows...)
		if n := int64(len(st.buf)); n > st.retained {
			st.retained = n
		}
		if st.keep >= 0 && len(st.buf) > 2*st.keep+64 {
			sort.SliceStable(st.buf, func(i, j int) bool { return st.less(st.buf[i], st.buf[j]) })
			st.buf = st.buf[:st.keep]
		}
		st.mu.Unlock()
		rows = nil
	case stepAggregate:
		st.mu.Lock()
		for _, r := range rows {
			key := aggKey(r, st.groupIdx)
			g := st.groups[key]
			if g == nil {
				gr := make(engine.Row, len(st.groupIdx))
				for i, gi := range st.groupIdx {
					gr[i] = r[gi]
				}
				g = &aggGroup{row: gr, counts: make([]int64, len(st.countIdx))}
				st.groups[key] = g
			}
			for ci, idx := range st.countIdx {
				if idx < 0 || r[idx] != rdf.NullID {
					g.counts[ci]++
				}
			}
		}
		st.mu.Unlock()
		rows = nil
	}
	st.out.Add(int64(len(rows)))
	return rows
}

// streamJoinRef is one hash join shared between its build pipeline
// (which fills hash) and the probe step of the pipeline that continues
// through the join.
type streamJoinRef struct {
	node        *plan.Node
	left, right *plan.Node
	join        *engine.StreamJoin
	// buildIsLeft records which plan child buffers; chosen from the
	// planner's estimates, before any row is produced.
	buildIsLeft bool
	buildPipe   int
	buildWidth  int
	// hash and buildRows are set when the build pipeline completes.
	hash      *engine.StreamHash
	buildRows int64
}

// srcKind enumerates pipeline sources.
type srcKind uint8

const (
	// srcEmpty is a scan a dictionary miss made unanswerable.
	srcEmpty srcKind = iota
	srcVP
	// srcVPExist is a fully-bound pattern: an existence test emitting
	// one width-0 row when any row matches.
	srcVPExist
	srcPT
	srcTriples
	// srcUnion replays the encoded sink chunks of the UNION branch
	// pipelines, in branch order — the branch boundary is a pipeline
	// breaker, like a hash-join build.
	srcUnion
)

// streamSource is a pipeline's scan: where its rows come from and how
// they are shaped to the pattern's variables.
type streamSource struct {
	kind   srcKind
	node   *plan.Node
	label  string
	schema engine.Schema
	parts  int

	// VP: the table, the fused scan predicate, and the output shape —
	// rows emit as r[lo:hi] of the stored (s,o) row, aliasing the
	// table's stable storage. shapeCharge marks the shapes the
	// materialized path pays an extra Project pass for.
	table       *VPTable
	pred        func(engine.Row) bool
	lo, hi      int
	shapeCharge bool

	// PT/IPT.
	pt      *PropertyTable
	spec    ptNodeScan
	rowPred func(engine.Row) bool

	// Triples fallback.
	tp     sparql.TriplePattern
	pushed []compiledFilter

	// Union: the branch pipelines whose sink chunks this source
	// replays (their outChunks are retained until consumed).
	unionFrom []*streamPipe

	// out counts emitted source rows (the scan node's observed
	// cardinality); scanned counts input units examined (PT keys),
	// where that differs from a precomputed table size.
	out     atomic.Int64
	scanned atomic.Int64
}

// streamPipe is one pipeline: a source, the fused steps, and a sink —
// either a hash-join build (sink != nil) or the driver (root).
type streamPipe struct {
	id    int
	name  string
	deps  []int
	src   *streamSource
	steps []*streamStep
	sink  *streamJoinRef
	// width is the sink row width.
	width int

	// outChunks collects the sink's encoded chunks per source
	// partition (each partition is processed by one worker, so the
	// slots need no locking).
	outChunks [][]columnar.RowChunk
	outRows   atomic.Int64
}

// streamPlan is a compiled streaming query: pipelines in dependency
// order (every build pipeline precedes the pipeline probing it).
type streamPlan struct {
	pipes []*streamPipe
	joins []*streamJoinRef
	// pipeOf maps plan node ID -> the pipeline carrying its work;
	// stepOf maps node ID -> its fused step (scans map to sources).
	pipeOf map[int]int
	stepOf map[int]*streamStep
	root   *streamPipe
	// maxWidth is the widest row any pipeline stage carries — the
	// in-flight memory term.
	maxWidth int
	// barrier is the root pipeline's fused blocking step — a bounded
	// top-K buffer or the aggregate group table — when the plan ends in
	// one; the driver finalizes it after every pipeline drains.
	barrier     *streamStep
	barrierPipe int
	// tail holds the plan operators above a fused Aggregate (Project /
	// Distinct / TopK over the group rows), top-down; the driver
	// applies them in reverse after finalizing the aggregate. Group
	// rows number at most the distinct key count, so this is driver
	// epilogue work, not pipeline work.
	tail []*plan.Node
	// tailObs records the barrier's and tail operators' output
	// cardinalities for the observation.
	tailObs map[*plan.Node]int64
}

// streamCompiler lowers a physical plan into pipelines. unsupported
// marks plans the streaming engine hands back to the materialized path
// (Bound leaves from adaptive rounds, defensive schema mismatches);
// err marks real failures.
type streamCompiler struct {
	store       *Store
	nodes       []*Node
	filters     []compiledFilter
	sp          *streamPlan
	unsupported bool
	err         error
}

// compileStreamPlan lowers pl into a streaming plan. ok=false reports
// a plan shape the streaming engine does not execute — the caller
// falls back to the materialized scheduler.
func (s *Store) compileStreamPlan(pl *plan.Plan, nodes []*Node, filters []compiledFilter) (*streamPlan, bool, error) {
	c := &streamCompiler{
		store:   s,
		nodes:   nodes,
		filters: filters,
		sp:      &streamPlan{pipeOf: map[int]int{}, stepOf: map[int]*streamStep{}},
	}
	// Operators above an Aggregate run driver-side on the finalized
	// group rows; everything at or below it compiles into pipelines.
	tail, body := peelDriverTail(pl.Root)
	c.sp.tail = tail
	rootPipe := c.compile(body)
	if c.err != nil {
		return nil, false, c.err
	}
	if c.unsupported {
		return nil, false, nil
	}
	c.sp.root = c.sp.pipes[rootPipe]
	return c.sp, true, nil
}

// peelDriverTail splits the plan at a tail Aggregate: the operators
// strictly above it (TopK / Distinct / Project over the group rows)
// return top-down as the driver tail, and the Aggregate itself becomes
// the pipeline body's root. Plans without an aggregate keep their full
// root (a tail TopK fuses into the root pipeline as a bounded buffer).
func peelDriverTail(root *plan.Node) (tail []*plan.Node, body *plan.Node) {
	body = root
	if !aggUnder(body) {
		return nil, root
	}
	for body.Op != plan.OpAggregate {
		tail = append(tail, body)
		body = body.Children[0]
	}
	return tail, body
}

// aggUnder reports an OpAggregate reachable from n through tail
// operators only.
func aggUnder(n *plan.Node) bool {
	for {
		switch n.Op {
		case plan.OpAggregate:
			return true
		case plan.OpProject, plan.OpDistinct, plan.OpTopK:
			n = n.Children[0]
		default:
			return false
		}
	}
}

// notchWidth tracks the widest row in flight.
func (c *streamCompiler) notchWidth(w int) {
	if w > c.sp.maxWidth {
		c.sp.maxWidth = w
	}
}

// pipe returns the pipeline by index.
func (c *streamCompiler) pipe(i int) *streamPipe { return c.sp.pipes[i] }

// compile lowers one plan node, returning the index of the pipeline
// that carries its output. Joins compile the build child first, so a
// pipeline's dependencies always have smaller indexes — the
// topological order both the real executor and the morsel simulator
// rely on.
func (c *streamCompiler) compile(n *plan.Node) int {
	if c.err != nil || c.unsupported {
		return 0
	}
	switch n.Op {
	case plan.OpScan:
		src := c.buildSource(n)
		if src == nil {
			return 0
		}
		p := &streamPipe{id: len(c.sp.pipes), name: src.label, src: src, width: len(src.schema)}
		c.sp.pipes = append(c.sp.pipes, p)
		c.sp.pipeOf[n.ID] = p.id
		c.notchWidth(p.width)
		return p.id

	case plan.OpFilter:
		pi := c.compile(n.Children[0])
		if c.err != nil || c.unsupported {
			return 0
		}
		in := engine.Schema(n.Children[0].Vars)
		var checks []*filterCheck
		for _, f := range pickFilters(c.filters, n.Filters) {
			col := in.Index(f.v)
			if col < 0 {
				c.err = fmt.Errorf("core: residual filter variable ?%s not in schema %v", f.v, in)
				return 0
			}
			checks = append(checks, &filterCheck{col: col, pred: f.pred})
		}
		st := &streamStep{kind: stepFilter, node: n, width: len(n.Vars), checks: checks}
		c.pipe(pi).steps = append(c.pipe(pi).steps, st)
		c.sp.pipeOf[n.ID], c.sp.stepOf[n.ID] = pi, st
		return pi

	case plan.OpProject:
		pi := c.compile(n.Children[0])
		if c.err != nil || c.unsupported {
			return 0
		}
		in := engine.Schema(n.Children[0].Vars)
		proj := make([]int, len(n.Cols))
		for i, col := range n.Cols {
			proj[i] = in.Index(col)
			if proj[i] < 0 {
				c.err = fmt.Errorf("core: projected column ?%s not in schema %v", col, in)
				return 0
			}
		}
		st := &streamStep{kind: stepProject, node: n, width: len(n.Cols), proj: proj}
		p := c.pipe(pi)
		p.steps = append(p.steps, st)
		p.width = len(n.Cols)
		c.sp.pipeOf[n.ID], c.sp.stepOf[n.ID] = pi, st
		c.notchWidth(p.width)
		return pi

	case plan.OpDistinct:
		pi := c.compile(n.Children[0])
		if c.err != nil || c.unsupported {
			return 0
		}
		st := &streamStep{
			kind:  stepDistinct,
			node:  n,
			width: len(n.Vars),
			dedup: engine.NewRowDeduper(len(n.Vars), 0),
		}
		c.pipe(pi).steps = append(c.pipe(pi).steps, st)
		c.sp.pipeOf[n.ID], c.sp.stepOf[n.ID] = pi, st
		return pi

	case plan.OpJoin:
		l, r := n.Children[0], n.Children[1]
		// The build side buffers; pick the smaller estimated side, as
		// the planner's pricing did. The probe chain fuses onward, so
		// the (estimated) bigger side never materializes.
		buildIsLeft := estBytes(l) < estBytes(r)
		buildNode, probeNode := r, l
		if buildIsLeft {
			buildNode, probeNode = l, r
		}
		bi := c.compile(buildNode)
		pi := c.compile(probeNode)
		if c.err != nil || c.unsupported {
			return 0
		}
		jr := &streamJoinRef{
			node: n, left: l, right: r,
			buildIsLeft: buildIsLeft,
			buildPipe:   bi,
			buildWidth:  len(buildNode.Vars),
			join:        engine.NewStreamJoin(engine.Schema(l.Vars), engine.Schema(r.Vars), n.Keep),
		}
		if !schemaEq(jr.join.OutSchema(), n.Vars) {
			// The engine would emit a different column order than the
			// plan recorded — hand the query back rather than risk a
			// mismatched result.
			c.unsupported = true
			return 0
		}
		c.pipe(bi).sink = jr
		st := &streamStep{kind: stepProbe, node: n, width: len(n.Vars), jr: jr}
		p := c.pipe(pi)
		p.steps = append(p.steps, st)
		p.width = len(n.Vars)
		p.deps = append(p.deps, bi)
		c.sp.joins = append(c.sp.joins, jr)
		c.sp.pipeOf[n.ID], c.sp.stepOf[n.ID] = pi, st
		c.notchWidth(p.width)
		return pi

	case plan.OpLeftJoin:
		l, r := n.Children[0], n.Children[1]
		// The optional (right) side always builds: the outer probe must
		// see every left row to null-pad the unmatched ones.
		bi := c.compile(r)
		pi := c.compile(l)
		if c.err != nil || c.unsupported {
			return 0
		}
		jr := &streamJoinRef{
			node: n, left: l, right: r,
			buildIsLeft: false,
			buildPipe:   bi,
			buildWidth:  len(r.Vars),
			join:        engine.NewStreamJoin(engine.Schema(l.Vars), engine.Schema(r.Vars), nil),
		}
		if len(jr.join.Shared()) == 0 || !schemaEq(jr.join.OutSchema(), n.Vars) {
			c.unsupported = true
			return 0
		}
		c.pipe(bi).sink = jr
		st := &streamStep{kind: stepProbeOuter, node: n, width: len(n.Vars), jr: jr}
		p := c.pipe(pi)
		p.steps = append(p.steps, st)
		p.width = len(n.Vars)
		p.deps = append(p.deps, bi)
		c.sp.joins = append(c.sp.joins, jr)
		c.sp.pipeOf[n.ID], c.sp.stepOf[n.ID] = pi, st
		c.notchWidth(p.width)
		return pi

	case plan.OpUnion:
		var deps []int
		var from []*streamPipe
		for _, ch := range n.Children {
			ci := c.compile(ch)
			if c.err != nil || c.unsupported {
				return 0
			}
			if c.pipe(ci).width != len(n.Vars) {
				c.unsupported = true
				return 0
			}
			deps = append(deps, ci)
			from = append(from, c.pipe(ci))
		}
		src := &streamSource{
			kind: srcUnion, node: n, label: "union",
			schema: engine.Schema(n.Vars), parts: 1, unionFrom: from,
		}
		p := &streamPipe{id: len(c.sp.pipes), name: "union", src: src, width: len(n.Vars), deps: deps}
		c.sp.pipes = append(c.sp.pipes, p)
		c.sp.pipeOf[n.ID] = p.id
		c.notchWidth(p.width)
		return p.id

	case plan.OpTopK:
		pi := c.compile(n.Children[0])
		if c.err != nil || c.unsupported {
			return 0
		}
		keep := -1
		if n.Limit >= 0 {
			keep = n.Offset + n.Limit
		}
		st := &streamStep{
			kind: stepTopK, node: n, width: len(n.Vars),
			less: c.store.topkLess(n), keep: keep,
		}
		c.pipe(pi).steps = append(c.pipe(pi).steps, st)
		c.sp.pipeOf[n.ID] = pi
		c.sp.barrier, c.sp.barrierPipe = st, pi
		return pi

	case plan.OpAggregate:
		pi := c.compile(n.Children[0])
		if c.err != nil || c.unsupported {
			return 0
		}
		in := engine.Schema(n.Children[0].Vars)
		groupIdx := make([]int, len(n.GroupCols))
		for i, g := range n.GroupCols {
			groupIdx[i] = in.Index(g)
			if groupIdx[i] < 0 {
				c.err = fmt.Errorf("core: group column ?%s not in schema %v", g, in)
				return 0
			}
		}
		countIdx := make([]int, len(n.CountVars))
		for i, v := range n.CountVars {
			countIdx[i] = -1
			if v == "" {
				continue
			}
			countIdx[i] = in.Index(v)
			if countIdx[i] < 0 {
				c.err = fmt.Errorf("core: counted column ?%s not in schema %v", v, in)
				return 0
			}
		}
		st := &streamStep{
			kind: stepAggregate, node: n, width: len(n.Vars),
			groupIdx: groupIdx, countIdx: countIdx, groups: map[string]*aggGroup{},
		}
		c.pipe(pi).steps = append(c.pipe(pi).steps, st)
		c.sp.pipeOf[n.ID] = pi
		c.sp.barrier, c.sp.barrierPipe = st, pi
		return pi

	default:
		// OpBound (an adaptive round's materialized intermediate) and
		// anything newer than this compiler.
		c.unsupported = true
		return 0
	}
}

// aggKey encodes a row's group columns as the group-table key (the
// same little-endian layout the materialized Aggregate uses).
func aggKey(r engine.Row, groupIdx []int) string {
	kb := make([]byte, 0, 4*len(groupIdx))
	for _, j := range groupIdx {
		v := r[j]
		kb = append(kb, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(kb)
}

// estBytes is a node's estimated payload, the build-side selection
// metric (same formula as Relation.EstimatedBytes over the estimate).
func estBytes(n *plan.Node) float64 {
	return n.Est * float64(len(n.Vars)) * float64(engine.BytesPerValue)
}

// schemaEq reports whether an engine schema equals a plan var list.
func schemaEq(s engine.Schema, vars []string) bool {
	if len(s) != len(vars) {
		return false
	}
	for i, c := range s {
		if c != vars[i] {
			return false
		}
	}
	return true
}

// buildSource lowers one Scan node into a pipeline source, resolving
// dictionary lookups exactly like the materialized scan operators (a
// miss produces an empty source, not an error).
func (c *streamCompiler) buildSource(n *plan.Node) *streamSource {
	cn := c.nodes[n.Leaf]
	pushed := pickFilters(c.filters, n.Filters)
	schema := engine.Schema(n.Vars)
	empty := func() *streamSource {
		return &streamSource{kind: srcEmpty, node: n, label: cn.Label(), schema: schema}
	}
	switch cn.Kind {
	case NodeVP:
		tp := cn.Patterns[0]
		pid, ok := c.store.dict.Lookup(tp.P.Term)
		if !ok {
			return empty()
		}
		table := c.store.vp[pid]
		if table == nil {
			return empty()
		}
		label := cn.Label()
		// A scan the planner rewrote to a semi-join reduction streams
		// the reduced table through the same source; a miss (evicted or
		// invalidated since planning) keeps the full table — a
		// superset, so results are unchanged.
		if n.ExtVP != nil {
			if t, l, ok := c.store.extvpTable(n.ExtVP); ok {
				table, label = t, l
			}
		}
		pred, ok, err := c.store.vpScanPred(tp, pushed)
		if err != nil {
			c.err = err
			return nil
		}
		if !ok {
			return empty()
		}
		src := &streamSource{
			node: n, label: label, schema: schema,
			table: table, pred: pred, parts: table.Rel.Partitions(),
		}
		switch {
		case tp.S.IsVar() && tp.O.IsVar() && tp.S.Var == tp.O.Var:
			src.kind, src.lo, src.hi, src.shapeCharge = srcVP, 0, 1, true
		case tp.S.IsVar() && tp.O.IsVar():
			src.kind, src.lo, src.hi = srcVP, 0, 2
		case tp.S.IsVar():
			src.kind, src.lo, src.hi, src.shapeCharge = srcVP, 0, 1, true
		case tp.O.IsVar():
			src.kind, src.lo, src.hi, src.shapeCharge = srcVP, 1, 2, true
		default:
			src.kind, src.parts = srcVPExist, 1
		}
		if src.kind == srcVP && len(schema) != src.hi-src.lo {
			c.unsupported = true
			return nil
		}
		return src

	case NodePT, NodeIPT:
		pt := c.store.pt
		if cn.Kind == NodeIPT {
			pt = c.store.ipt
			if pt == nil {
				c.err = fmt.Errorf("core: inverse property table not loaded")
				return nil
			}
		}
		spec := c.store.ptNodeScan(pt, cn)
		if spec.empty {
			return empty()
		}
		if !schemaEq(spec.schema, n.Vars) {
			c.unsupported = true
			return nil
		}
		rowPred, err := rowPredicate(spec.schema, pushed)
		if err != nil {
			c.err = err
			return nil
		}
		return &streamSource{
			kind: srcPT, node: n, label: cn.Label(), schema: schema,
			pt: pt, spec: spec, rowPred: rowPred, parts: len(pt.parts),
		}

	case NodeTriples:
		tp := cn.Patterns[0]
		return &streamSource{
			kind: srcTriples, node: n, label: cn.Label(), schema: schema,
			tp: tp, pushed: pushed, parts: 1,
		}

	default:
		c.err = fmt.Errorf("core: unknown node kind %v", cn.Kind)
		return nil
	}
}

// run executes every pipeline for real, in dependency order: source
// partitions stream through the fused steps in chunkSize batches, sink
// chunks are encoded columnar, and each completed build pipeline's
// rows are decoded once into its join's hash table.
func (sp *streamPlan) run(ctx context.Context, s *Store, chunkSize, par int) error {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	for done, p := range sp.pipes {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return &CancelError{Err: cerr, CompletedTasks: done, TotalTasks: len(sp.pipes)}
			}
		}
		if err := p.run(ctx, s, chunkSize, par); err != nil {
			return err
		}
		if p.sink != nil {
			rows, err := decodeChunks(p.outChunks, p.width)
			if err != nil {
				return err
			}
			p.sink.buildRows = int64(len(rows))
			p.sink.hash = p.sink.join.Build(rows, p.sink.buildIsLeft)
			// The chunks fed the hash table; drop them (the hash table
			// itself is the build side's memory, and the peak sweep
			// prices it as such).
			p.outChunks = nil
		}
	}
	return nil
}

// run executes one pipeline's source partitions through its steps.
func (p *streamPipe) run(ctx context.Context, s *Store, chunkSize, par int) error {
	switch p.src.kind {
	case srcEmpty:
		return nil

	case srcVPExist:
		return p.runExistence(chunkSize)

	case srcVP:
		p.outChunks = make([][]columnar.RowChunk, p.src.parts)
		return p.forEachPart(ctx, par, func(pi int) error { return p.scanVPPart(pi, chunkSize) })

	case srcPT:
		p.outChunks = make([][]columnar.RowChunk, p.src.parts)
		return p.forEachPart(ctx, par, func(pi int) error { return p.scanPTPart(pi, chunkSize) })

	case srcTriples:
		p.outChunks = make([][]columnar.RowChunk, 1)
		rows, err := s.triplesMatches(p.src.tp, p.src.pushed)
		if err != nil {
			return err
		}
		p.src.out.Add(int64(len(rows)))
		for start := 0; start < len(rows); start += chunkSize {
			end := start + chunkSize
			if end > len(rows) {
				end = len(rows)
			}
			if err := p.processBatch(0, rows[start:end]); err != nil {
				return err
			}
		}
		return nil

	case srcUnion:
		p.outChunks = make([][]columnar.RowChunk, 1)
		for _, cp := range p.src.unionFrom {
			for _, chunks := range cp.outChunks {
				for _, rc := range chunks {
					raw, err := rc.Decode()
					if err != nil {
						return err
					}
					rows := make([]engine.Row, len(raw))
					for i, r := range raw {
						rows[i] = engine.Row(r)
					}
					p.src.out.Add(int64(len(rows)))
					if err := p.processBatch(0, rows); err != nil {
						return err
					}
				}
			}
			// Consumed; free the branch's buffered chunks.
			cp.outChunks = nil
		}
		return nil

	default:
		return fmt.Errorf("core: unknown stream source kind %d", p.src.kind)
	}
}

// forEachPart runs fn over the source partitions on a bounded worker
// pool, one worker per partition (so per-partition state needs no
// locks). The first error wins; a context cancellation stops new
// partitions from starting.
func (p *streamPipe) forEachPart(ctx context.Context, par int, fn func(pi int) error) error {
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for pi := 0; pi < p.src.parts; pi++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				fail(&CancelError{Err: cerr, CompletedTasks: pi, TotalTasks: p.src.parts})
				break
			}
		}
		if stopped() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pi int) {
			defer wg.Done()
			defer func() { <-sem }()
			if stopped() {
				return
			}
			if err := fn(pi); err != nil {
				fail(err)
			}
		}(pi)
	}
	wg.Wait()
	return firstErr
}

// scanVPPart streams one VP partition through the pipeline: the fused
// scan predicate runs on the raw (s,o) rows, survivors are shaped by
// slicing (aliasing the table's stable storage — no copy), and batches
// of chunkSize flow through the steps.
func (p *streamPipe) scanVPPart(pi, chunkSize int) error {
	src := p.src
	batch := make([]engine.Row, 0, chunkSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		src.out.Add(int64(len(batch)))
		err := p.processBatch(pi, batch)
		batch = batch[:0]
		return err
	}
	for _, r := range src.table.Rel.Part(pi) {
		if src.pred != nil && !src.pred(r) {
			continue
		}
		batch = append(batch, r[src.lo:src.hi])
		if len(batch) == chunkSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// scanPTPart streams one PT partition: the cartesian flatten yields
// reused scratch rows, which are copied into a fresh per-batch arena
// (retained rows must be stable) and flushed through the steps at
// chunk boundaries.
func (p *streamPipe) scanPTPart(pi, chunkSize int) error {
	src := p.src
	width := len(src.spec.schema)
	arena := engine.NewRowArena(width, chunkSize)
	var ferr error
	flush := func() {
		rows := arena.Rows()
		if len(rows) == 0 {
			return
		}
		src.out.Add(int64(len(rows)))
		if err := p.processBatch(pi, rows); err != nil && ferr == nil {
			ferr = err
		}
		arena = engine.NewRowArena(width, chunkSize)
	}
	processed := scanPTPartition(src.pt.parts[pi], src.spec.specs, width, src.rowPred, func(r engine.Row) {
		if ferr != nil {
			return
		}
		arena.AppendCopy(r)
		if arena.Len() >= chunkSize {
			flush()
		}
	})
	src.scanned.Add(processed)
	flush()
	return ferr
}

// runExistence answers a fully-bound pattern: scan until any row
// matches, then feed a single width-0 row through the chain (cartesian
// with one empty row is the join identity, exactly like the
// materialized existenceRelation).
func (p *streamPipe) runExistence(chunkSize int) error {
	src := p.src
	found := false
	for pi := 0; pi < src.table.Rel.Partitions() && !found; pi++ {
		for _, r := range src.table.Rel.Part(pi) {
			if src.pred == nil || src.pred(r) {
				found = true
				break
			}
		}
	}
	p.outChunks = make([][]columnar.RowChunk, 1)
	if !found {
		return nil
	}
	src.out.Add(1)
	return p.processBatch(0, []engine.Row{{}})
}

// processBatch pushes one chunk batch through the pipeline's steps and
// encodes the survivors at the sink.
func (p *streamPipe) processBatch(part int, rows []engine.Row) error {
	for _, st := range p.steps {
		rows = st.apply(rows)
		if len(rows) == 0 {
			return nil
		}
	}
	if len(rows) == 0 {
		return nil
	}
	rc, err := columnar.EncodeRows(p.width, idRows(rows))
	if err != nil {
		return err
	}
	p.outChunks[part] = append(p.outChunks[part], rc)
	p.outRows.Add(int64(len(rows)))
	return nil
}

// idRows reinterprets engine rows as raw ID rows for chunk encoding.
func idRows(rows []engine.Row) [][]rdf.ID {
	out := make([][]rdf.ID, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// decodeChunks materializes a pipeline's sink chunks back into rows,
// in partition order. Decoded rows are freshly allocated — the stable
// rows a hash build or the driver retains.
func decodeChunks(parts [][]columnar.RowChunk, width int) ([]engine.Row, error) {
	var out []engine.Row
	for _, chunks := range parts {
		for _, rc := range chunks {
			rows, err := rc.Decode()
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				out = append(out, engine.Row(r))
			}
		}
	}
	_ = width
	return out, nil
}

// recordObs fills the observation with every node's streamed output
// cardinality — the same numbers the materialized operators would have
// recorded, since both modes compute identical row multisets. Barrier
// and driver-tail operators record their finalized counts.
func (sp *streamPlan) recordObs(obs *plan.Observation) {
	for _, p := range sp.pipes {
		obs.Record(p.src.node, p.src.out.Load())
	}
	for _, st := range sp.stepOf {
		obs.Record(st.node, st.out.Load())
	}
	for n, c := range sp.tailObs {
		obs.Record(n, c)
	}
}

// finalRows produces the streaming query's result rows: the root
// pipeline's sink chunks for a plan without a blocking tail, otherwise
// the finalized barrier (sorted/sliced top-K buffer, or aggregate
// group rows) with the driver-tail operators applied bottom-up.
func (sp *streamPlan) finalRows(s *Store) ([]engine.Row, error) {
	rows, err := decodeChunks(sp.root.outChunks, sp.root.width)
	if err != nil {
		return nil, err
	}
	b := sp.barrier
	if b == nil {
		return rows, nil
	}
	sp.tailObs = map[*plan.Node]int64{}
	switch b.kind {
	case stepTopK:
		rows = finalizeTopK(b)
	case stepAggregate:
		rows = finalizeAgg(b)
	}
	sp.tailObs[b.node] = int64(len(rows))
	for i := len(sp.tail) - 1; i >= 0; i-- {
		n := sp.tail[i]
		rows, err = s.applyTailOp(n, rows)
		if err != nil {
			return nil, err
		}
		sp.tailObs[n] = int64(len(rows))
	}
	return rows, nil
}

// finalizeTopK sorts the barrier's retained buffer by the compiled
// total order and applies the node's OFFSET/LIMIT slice.
func finalizeTopK(b *streamStep) []engine.Row {
	rows := b.buf
	sort.SliceStable(rows, func(i, j int) bool { return b.less(rows[i], rows[j]) })
	return sliceOffsetLimit(rows, b.node.Limit, b.node.Offset)
}

// finalizeAgg emits the barrier's group table as rows — group cells
// then count cells, sorted by raw ID order — exactly the materialized
// Aggregate's output, so both executors stay byte-identical.
func finalizeAgg(b *streamStep) []engine.Row {
	rows := make([]engine.Row, 0, len(b.groups))
	for _, g := range b.groups {
		r := make(engine.Row, 0, len(g.row)+len(g.counts))
		r = append(r, g.row...)
		for _, c := range g.counts {
			r = append(r, rdf.ID(c))
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return engine.LessRowsID(rows[i], rows[j]) })
	return rows
}

// sliceOffsetLimit applies a LIMIT/OFFSET window to sorted rows.
func sliceOffsetLimit(rows []engine.Row, limit, offset int) []engine.Row {
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

// applyTailOp runs one driver-tail operator over the finalized group
// rows (at most one row per group — epilogue-sized input).
func (s *Store) applyTailOp(n *plan.Node, rows []engine.Row) ([]engine.Row, error) {
	switch n.Op {
	case plan.OpProject:
		in := engine.Schema(n.Children[0].Vars)
		proj := make([]int, len(n.Cols))
		for i, col := range n.Cols {
			proj[i] = in.Index(col)
			if proj[i] < 0 {
				return nil, fmt.Errorf("core: projected column ?%s not in schema %v", col, in)
			}
		}
		out := make([]engine.Row, len(rows))
		for i, r := range rows {
			pr := make(engine.Row, len(proj))
			for j, idx := range proj {
				pr[j] = r[idx]
			}
			out[i] = pr
		}
		return out, nil

	case plan.OpDistinct:
		d := engine.NewRowDeduper(len(n.Vars), len(rows))
		kept := make([]engine.Row, 0, len(rows))
		for _, r := range rows {
			if d.Insert(r) {
				kept = append(kept, r)
			}
		}
		return kept, nil

	case plan.OpTopK:
		sorted := make([]engine.Row, len(rows))
		copy(sorted, rows)
		less := s.topkLess(n)
		sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
		return sliceOffsetLimit(sorted, n.Limit, n.Offset), nil

	default:
		return nil, fmt.Errorf("core: unsupported driver tail operator %v", n.Op)
	}
}

// vLayout is the virtual partitioning of one operator's output — the
// layout the materialized relation would have carried — used to price
// shuffle avoidance identically to the engine's alignedOnCols rule.
type vLayout struct {
	partCols []string
	nparts   int
}

// alignedOn mirrors engine alignedOnCols on the virtual layout.
func (v vLayout) alignedOn(cols []string, n int) bool {
	if len(cols) == 0 || len(v.partCols) != len(cols) || v.nparts != n {
		return false
	}
	for i, c := range cols {
		if v.partCols[i] != c {
			return false
		}
	}
	return true
}

// survivingVCols mirrors engine survivingCols: cols survive only when
// the schema retains every one of them.
func survivingVCols(cols []string, schema []string) []string {
	s := engine.Schema(schema)
	for _, c := range cols {
		if !s.Contains(c) {
			return nil
		}
	}
	return append([]string(nil), cols...)
}

// price walks the plan bottom-up and converts each pipeline's work
// into a morsel pipeline: aggregate TaskStats mirroring exactly what
// the materialized operators would have charged (scan disk + rows,
// join shuffle/broadcast bytes on actual cardinalities, per-filter
// cascades), the launch overheads of the boundaries the pipeline's
// probes cross, and the result payload the root delivers. Streaming
// distinct and the dropped collect stage charge no launch — the
// streaming path's structural savings.
func (sp *streamPlan) price(s *Store, opts QueryOptions, pl *plan.Plan, chunkSize int) []cluster.MorselPipeline {
	cost := s.cluster.Config().Cost
	workers := s.cluster.Workers()
	defParts := s.cluster.DefaultPartitions()
	boundary := cost.SQLStageLaunch

	stats := make([]cluster.TaskStats, len(sp.pipes))
	launch := make([]time.Duration, len(sp.pipes))

	counts := map[int]int64{}
	for _, p := range sp.pipes {
		counts[p.src.node.ID] = p.src.out.Load()
	}
	for id, st := range sp.stepOf {
		counts[id] = st.out.Load()
	}

	bt := opts.BroadcastThreshold
	if bt == 0 {
		bt = engine.DefaultBroadcastThreshold
	}

	var walk func(n *plan.Node) vLayout
	walk = func(n *plan.Node) vLayout {
		pi := sp.pipeOf[n.ID]
		switch n.Op {
		case plan.OpScan:
			return priceSource(sp.pipes[pi].src, s, &stats[pi])

		case plan.OpFilter:
			lay := walk(n.Children[0])
			if st := sp.stepOf[n.ID]; st != nil {
				for _, c := range st.checks {
					stats[pi].Rows += c.in.Load()
				}
			}
			return lay

		case plan.OpProject:
			lay := walk(n.Children[0])
			stats[pi].Rows += counts[n.Children[0].ID]
			return vLayout{partCols: survivingVCols(lay.partCols, n.Cols), nparts: lay.nparts}

		case plan.OpDistinct:
			// Driver-side streaming dedup: per-row insert cost, no
			// shuffle and no stage launch (the materialized Distinct
			// pays both).
			lay := walk(n.Children[0])
			stats[pi].Rows += counts[n.Children[0].ID]
			return lay

		case plan.OpJoin:
			l, r := n.Children[0], n.Children[1]
			lLay := walk(l)
			rLay := walk(r)
			lAct, rAct, outAct := counts[l.ID], counts[r.ID], counts[n.ID]
			lb := lAct * int64(len(l.Vars)) * engine.BytesPerValue
			rb := rAct * int64(len(r.Vars)) * engine.BytesPerValue
			jr := sp.stepOf[n.ID].jr
			shared := jr.join.Shared()

			if len(shared) == 0 {
				// Cartesian: the smaller actual side broadcasts.
				smallB, largeParts := rb, lLay.nparts
				if lb < rb {
					smallB, largeParts = lb, rLay.nparts
				}
				stats[pi].Rows += outAct
				stats[pi].NetBytes += smallB * int64(minInt(workers, largeParts))
				launch[pi] += boundary / 3
				return vLayout{nparts: largeParts}
			}

			// The engine's runtime join rule on actual sizes.
			useBroadcast, buildLeft := false, false
			switch {
			case n.Method == plan.MethodBroadcast:
				useBroadcast, buildLeft = true, lb < rb
			case bt > 0 && rb <= bt && rb <= lb:
				useBroadcast = true
			case bt > 0 && lb <= bt:
				useBroadcast, buildLeft = true, true
			}
			if useBroadcast {
				buildB, probeAct, probeLay := rb, lAct, lLay
				if buildLeft {
					buildB, probeAct, probeLay = lb, rAct, rLay
				}
				stats[pi].Rows += probeAct + outAct
				stats[pi].NetBytes += buildB * int64(minInt(workers, probeLay.nparts))
				launch[pi] += boundary / 3
				return vLayout{
					partCols: survivingVCols(probeLay.partCols, n.Vars),
					nparts:   probeLay.nparts,
				}
			}
			// Shuffle: each side not already aligned on the join key
			// ships every row.
			if !lLay.alignedOn(shared, defParts) {
				stats[pi].NetBytes += lAct * int64(len(l.Vars)) * engine.BytesPerValue
			}
			if !rLay.alignedOn(shared, defParts) {
				stats[pi].NetBytes += rAct * int64(len(r.Vars)) * engine.BytesPerValue
			}
			stats[pi].Rows += lAct + rAct + outAct
			launch[pi] += boundary
			return vLayout{
				partCols: survivingVCols(shared, n.Vars),
				nparts:   defParts,
			}

		case plan.OpLeftJoin:
			l, r := n.Children[0], n.Children[1]
			lLay := walk(l)
			walk(r)
			lAct, rAct, outAct := counts[l.ID], counts[r.ID], counts[n.ID]
			// The optional side builds and broadcasts to the probe
			// side's partitions — the materialized LeftJoin's pricing.
			rb := rAct * int64(len(r.Vars)) * engine.BytesPerValue
			stats[pi].Rows += lAct + outAct
			stats[pi].NetBytes += rb * int64(minInt(workers, lLay.nparts))
			launch[pi] += boundary / 3
			return vLayout{
				partCols: survivingVCols(lLay.partCols, n.Vars),
				nparts:   lLay.nparts,
			}

		case plan.OpUnion:
			// The union pipe re-reads every branch's buffered chunks.
			var sum int64
			for _, ch := range n.Children {
				walk(ch)
				sum += counts[ch.ID]
			}
			stats[pi].Rows += sum
			launch[pi] += boundary / 3
			return vLayout{nparts: 1}

		case plan.OpTopK, plan.OpAggregate:
			// One pass over the input rows into the bounded buffer or
			// group table; the finalize is driver epilogue work.
			lay := walk(n.Children[0])
			stats[pi].Rows += counts[n.Children[0].ID]
			_ = lay
			return vLayout{nparts: 1}

		default:
			return vLayout{}
		}
	}
	walk(pl.Root)

	out := make([]cluster.MorselPipeline, len(sp.pipes))
	for i, p := range sp.pipes {
		mp := cluster.MorselPipeline{
			Name:    p.name,
			Deps:    p.deps,
			Launch:  launch[i],
			Morsels: morselCount(sourceInputRows(p.src), chunkSize, workers),
			Work:    stats[i],
		}
		// Only the root pipeline delivers to the driver: union branches
		// buffer for their consumer, and a barrier root emits after
		// finalize (no per-morsel delivery to price).
		if p == sp.root && p.sink == nil {
			outRows := p.outRows.Load()
			mp.EmitBytes = outRows * int64(p.width) * engine.BytesPerValue
			mp.EmitRows = outRows > 0
		}
		out[i] = mp
	}
	return out
}

// priceSource charges one scan's work (mirroring the materialized scan
// stages, including integer-division rounding of per-partition disk
// bytes) and returns its virtual output layout.
func priceSource(src *streamSource, s *Store, st *cluster.TaskStats) vLayout {
	switch src.kind {
	case srcEmpty:
		// The materialized path short-circuits to an empty relation
		// without charging a stage.
		return vLayout{nparts: s.parts}

	case srcVP:
		n := int64(src.table.Rel.Partitions())
		st.DiskBytes += (src.table.FileBytes / n) * n
		st.Rows += int64(src.table.Rel.NumRows())
		if src.shapeCharge {
			st.Rows += src.out.Load()
		}
		lay := vLayout{nparts: src.table.Rel.Partitions()}
		if src.lo == 0 {
			// Subject survives the shaping, so subject partitioning
			// does too.
			lay.partCols = []string{src.schema[0]}
		}
		return lay

	case srcVPExist:
		n := int64(src.table.Rel.Partitions())
		st.DiskBytes += (src.table.FileBytes / n) * n
		st.Rows += int64(src.table.Rel.NumRows())
		return vLayout{nparts: 1}

	case srcPT:
		n := int64(src.parts)
		st.DiskBytes += (src.pt.scanBytes(src.spec.preds) / n) * n
		st.Rows += src.scanned.Load() + src.out.Load()
		return vLayout{partCols: []string{src.schema[0]}, nparts: src.parts}

	case srcTriples:
		n := int64(s.parts)
		st.DiskBytes += (s.triplesScanBytes() / n) * n
		st.Rows += src.out.Load()
		return vLayout{partCols: []string{src.schema[0]}, nparts: s.parts}

	default:
		return vLayout{}
	}
}

// sourceInputRows is the scan input driving a pipeline's morsel split:
// the rows (or keys) the source examines, not the rows it emits.
func sourceInputRows(src *streamSource) int64 {
	switch src.kind {
	case srcVP, srcVPExist:
		return int64(src.table.Rel.NumRows())
	case srcPT:
		return src.scanned.Load()
	case srcTriples, srcUnion:
		return src.out.Load()
	default:
		return 0
	}
}

// morselCount splits a pipeline's scan into morsels: chunk-granular,
// but never fewer than two waves per worker (so contention and
// first-row serialization are visible even on small inputs), and never
// more morsels than rows.
func morselCount(srcRows int64, chunkSize, workers int) int {
	m := (srcRows + int64(chunkSize) - 1) / int64(chunkSize)
	if cap2w := minInt64(srcRows, int64(2*workers)); cap2w > m {
		m = cap2w
	}
	if m < 1 {
		m = 1
	}
	return int(m)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// memEvent is one +/- step of a memory-over-virtual-time sweep.
type memEvent struct {
	at    time.Duration
	delta int64
}

// sweepPeak returns the maximum running sum of the events. Acquires
// sort before releases at equal timestamps, so a handoff (producer
// freed exactly when the consumer materializes) counts both — the
// conservative reading.
func sweepPeak(evs []memEvent) int64 {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta > evs[j].delta
	})
	var cur, peak int64
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// peakMemBytes sweeps the streaming execution's simulated memory
// high-water mark: each hash-join build side lives from its build
// pipeline's gate until its probe pipeline drains, the distinct set
// lives to the end, and each pipeline carries its in-flight chunk
// occupancy — up to Workers concurrently active morsels, each holding
// its share of the pipeline's copied rows (VP source batches alias the
// stored tables and count nothing, mirroring the materialized sweep's
// zero-copy scan exclusion) — while it runs. Result chunks stream to
// the driver morsel by morsel, so the root output never accumulates.
func (sp *streamPlan) peakMemBytes(pipes []cluster.MorselPipeline, res *cluster.MorselSimResult, start time.Duration, workers, chunkSize int) int64 {
	gates := make([]time.Duration, len(pipes))
	for i, p := range pipes {
		g := start
		for _, d := range p.Deps {
			if res.PipelineDone[d] > g {
				g = res.PipelineDone[d]
			}
		}
		gates[i] = g + p.Launch
	}
	var evs []memEvent
	for _, jr := range sp.joins {
		b := jr.buildRows * int64(jr.buildWidth) * memBytesPerValue
		if b <= 0 {
			continue
		}
		probePipe := sp.pipeOf[jr.node.ID]
		evs = append(evs,
			memEvent{at: gates[jr.buildPipe], delta: b},
			memEvent{at: res.PipelineDone[probePipe], delta: -b},
		)
	}
	for id, st := range sp.stepOf {
		if st.kind != stepDistinct {
			continue
		}
		b := int64(st.dedup.Len()) * int64(st.width) * memBytesPerValue
		if b <= 0 {
			continue
		}
		pi := sp.pipeOf[id]
		evs = append(evs,
			memEvent{at: gates[pi], delta: b},
			memEvent{at: res.Done, delta: -b},
		)
	}
	// The fused barrier's retained state lives from its pipe's gate to
	// the end: the top-K buffer's high-water mark — bounded to
	// O(offset+limit) by the early trim, which is exactly the footprint
	// a LIMIT saves over the unlimited ORDER BY — or the aggregate
	// group table.
	if b := sp.barrier; b != nil {
		var bytes int64
		switch b.kind {
		case stepTopK:
			bytes = b.retained * int64(b.width) * memBytesPerValue
		case stepAggregate:
			bytes = int64(len(b.groups)) * int64(b.width) * memBytesPerValue
		}
		if bytes > 0 {
			evs = append(evs,
				memEvent{at: gates[sp.barrierPipe], delta: bytes},
				memEvent{at: res.Done, delta: -bytes},
			)
		}
	}
	// Union branches buffer their encoded sink chunks from their own
	// gate until the union pipeline consumes them.
	for i, p := range sp.pipes {
		if p.src.kind != srcUnion {
			continue
		}
		for _, cp := range p.src.unionFrom {
			b := cp.outRows.Load() * int64(cp.width) * memBytesPerValue
			if b <= 0 {
				continue
			}
			evs = append(evs,
				memEvent{at: gates[cp.id], delta: b},
				memEvent{at: res.PipelineDone[i], delta: -b},
			)
		}
	}
	perMorsel := func(rows int64, m int) int64 {
		return (rows + int64(m) - 1) / int64(m)
	}
	for i, p := range sp.pipes {
		m := pipes[i].Morsels
		if m < 1 {
			m = 1
		}
		// Bytes one active morsel holds: its current batch at every
		// copying stage (PT/triples source arenas, probe and project
		// output arenas, the sink's encoded chunk).
		var per int64
		switch p.src.kind {
		case srcPT, srcTriples:
			per += perMorsel(p.src.out.Load(), m) * int64(len(p.src.schema)) * memBytesPerValue
		}
		for _, st := range p.steps {
			if st.kind == stepProbe || st.kind == stepProject {
				per += perMorsel(st.out.Load(), m) * int64(st.width) * memBytesPerValue
			}
		}
		if p.sink != nil {
			per += perMorsel(p.outRows.Load(), m) * int64(p.width) * memBytesPerValue
		}
		b := int64(minInt(workers, m)) * per
		if b <= 0 {
			continue
		}
		end := res.PipelineDone[i]
		if end <= gates[i] {
			end = gates[i] + 1
		}
		evs = append(evs, memEvent{at: gates[i], delta: b}, memEvent{at: end, delta: -b})
	}
	return sweepPeak(evs)
}

// materializedPeakBytes sweeps the materialized scheduler's simulated
// memory high-water mark after a successful run. The scheduler retains
// every executed operator's relation until its round ends — adaptive
// re-planning may bind any intermediate into the next round, and the
// lineage-retry fault layer recomputes consumers from their retained
// inputs — so each relation lives from its task's completion to the
// end of the query. Scans whose output aliases the stored table (an
// unshaped, unfiltered VP scan) count nothing, matching the streaming
// sweep's treatment of aliased source batches.
//
// Broadcast joins additionally pin one deserialized copy of the build
// relation on every receiving executor for the rest of the job — the
// Spark broadcast-variable semantics the cost model already prices as
// network transfer (buildBytes × min(workers, probe partitions)). Each
// task's retained stage trace records exactly those bytes, so the
// sweep converts them from wire width to resident width and holds them
// from the join's start to the end of the query. The streaming sweep
// charges each build hash once instead: morsel workers share one hash
// table, so the same transfer lands every datum in memory exactly once
// — that asymmetry, not scheduling, is the broadcast memory story.
func materializedPeakBytes(sc *scheduler, simTime time.Duration) int64 {
	var evs []memEvent
	for _, rr := range sc.rounds {
		for _, t := range rr.tasks {
			if !t.executed || t.discarded || t.node.Op == plan.OpBound {
				continue
			}
			for _, st := range t.stages {
				if !strings.HasPrefix(st.Name, "broadcast join ") && !strings.HasPrefix(st.Name, "cartesian ") {
					continue
				}
				rep := st.Stats.NetBytes / engine.BytesPerValue * memBytesPerValue
				if rep <= 0 {
					continue
				}
				to := simTime
				if to <= t.start {
					to = t.start + 1
				}
				evs = append(evs, memEvent{at: t.start, delta: rep}, memEvent{at: to, delta: -rep})
			}
			act := rr.obs.Actual(t.node)
			if act <= 0 || sc.zeroCopyScan(t.node) {
				continue
			}
			b := act * int64(len(t.node.Vars)) * memBytesPerValue
			if b <= 0 {
				continue
			}
			to := simTime
			if to <= t.done {
				to = t.done + 1
			}
			evs = append(evs, memEvent{at: t.done, delta: b}, memEvent{at: to, delta: -b})
		}
	}
	return sweepPeak(evs)
}

// zeroCopyScan reports a scan whose output relation aliases the stored
// VP table rows (two distinct free variables, no predicate, no pushed
// filters) — no intermediate copy exists, so the peak sweep skips it.
func (sc *scheduler) zeroCopyScan(n *plan.Node) bool {
	if n.Op != plan.OpScan || len(n.Filters) > 0 {
		return false
	}
	cn := sc.nodes[n.Leaf]
	if cn.Kind != NodeVP {
		return false
	}
	tp := cn.Patterns[0]
	return tp.S.IsVar() && tp.O.IsVar() && tp.S.Var != tp.O.Var
}

// morselRecorder converts the morsel simulation's recovery record into
// the store-level resilience recorder shape.
func morselRecorder(r cluster.MorselRecovery, failed bool) *resilienceRecorder {
	rec := &resilienceRecorder{}
	rec.attempts.Store(r.Attempts)
	rec.retries.Store(r.Retries)
	rec.stragglers.Store(r.Stragglers)
	rec.specLaunch.Store(r.SpecLaunched)
	rec.specWins.Store(r.SpecWins)
	rec.checksums.Store(r.ChecksumFailures)
	rec.recomputes.Store(r.Recomputes)
	rec.recoveryNS.Store(int64(r.Recovery))
	if failed {
		rec.taskFailed.Store(1)
	}
	return rec
}

// queryStreaming executes one query through the streaming engine.
// handled=false (with a nil error) reports a plan the streaming path
// does not take — the caller falls back to the materialized scheduler
// without any work having been done. Once real execution starts,
// errors are final (no fallback: the failure modes are shared with the
// materialized path).
func (s *Store) queryStreaming(ctx context.Context, q *sparql.Query, opts QueryOptions, clock *cluster.Clock, entry *cachedPlan, tree *JoinTree, filters []compiledFilter, faults *cluster.FaultPlan, faultSalt uint64, start time.Time) (*Result, bool, error) {
	pl := entry.plan
	sp, ok, err := s.compileStreamPlan(pl, entry.nodes, filters)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}

	chunk := opts.chunkSize()
	if err := sp.run(ctx, s, chunk, opts.Parallelism); err != nil {
		return nil, true, err
	}

	// Finalize before recording: the barrier's and driver tail's output
	// cardinalities only exist once the blocking state is drained.
	rows, err := sp.finalRows(s)
	if err != nil {
		return nil, true, err
	}

	obs := plan.NewObservation(pl)
	sp.recordObs(obs)

	cost := s.cluster.Config().Cost
	workers := s.cluster.Workers()
	pipes := sp.price(s, opts, pl, chunk)
	simRes, serr := cluster.SimulateMorsels(pipes, cluster.MorselSimConfig{
		Workers:      workers,
		Cost:         cost,
		Start:        cost.SQLPlanning,
		Faults:       faults,
		FaultSalt:    faultSalt,
		MaxAttempts:  opts.maxTaskAttempts(),
		RetryBackoff: opts.retryBackoffBase(),
		MaxBackoff:   MaxRetryBackoff,
		SpecFactor:   opts.speculativeFactor(),
	})
	var resil ResilienceStats
	if faults != nil && simRes != nil {
		// Recovery counters aggregate on the store even when the
		// query aborted — failed recovery is exactly what /stats
		// should show.
		rec := morselRecorder(simRes.Recovery, serr != nil)
		s.resilience.absorb(rec)
		resil = rec.stats()
	}
	if serr != nil {
		var mfe *cluster.MorselFailedError
		if errors.As(serr, &mfe) {
			attempts := make([]TaskAttempt, len(mfe.Attempts))
			for i, a := range mfe.Attempts {
				attempts[i] = TaskAttempt{
					Attempt: a.Attempt, Worker: a.Worker,
					Start: a.Start, End: a.End,
					Outcome: a.Outcome, Speculative: a.Speculative,
				}
			}
			completed := 0
			for _, d := range simRes.PipelineDone {
				if d > 0 {
					completed++
				}
			}
			return nil, true, &TaskFailedError{
				Task:           fmt.Sprintf("%s (morsel %d)", mfe.Pipeline, mfe.Morsel),
				Attempts:       attempts,
				CompletedTasks: completed,
				TotalTasks:     len(pipes),
			}
		}
		return nil, true, serr
	}

	peak := sp.peakMemBytes(pipes, simRes, cost.SQLPlanning, workers, chunk)

	// Publish the trace: one record per pipeline (display-only; the
	// clock advances by the simulated completion, not the stage sum).
	trace := cluster.NewClock()
	trace.Charge("query planning", cost.SQLPlanning)
	for _, p := range pipes {
		mk := cost.TaskTime(p.Work)
		trace.Absorb([]cluster.StageRecord{{
			Name:     "pipeline " + p.Name,
			Launch:   p.Launch,
			Tasks:    p.Morsels,
			Elapsed:  p.Launch + mk,
			Makespan: mk,
			Stats:    p.Work,
		}})
	}
	if rec := simRes.Recovery.Recovery; rec > 0 {
		trace.Charge("fault recovery (retries, backoff, speculation, recompute)", rec)
	}
	clock.MergeTrace(trace.Stages(), simRes.Done)

	countCols := pl.Root.CountCols
	decoded := make([][]rdf.Term, len(rows))
	for i, r := range rows {
		terms := make([]rdf.Term, len(r))
		for j, id := range r {
			terms[j] = s.decodeCell(id, j < len(countCols) && countCols[j])
		}
		decoded[i] = terms
	}

	return &Result{
		Vars:          q.Projection(),
		Rows:          decoded,
		SimTime:       simRes.Done,
		WallTime:      time.Since(start),
		Tree:          tree,
		Plan:          pl.Stamp(obs),
		Clock:         clock,
		CacheFeedback: entry.corrected,
		Resilience:    resil,
		Streamed:      true,
		FirstRow:      simRes.FirstEmit,
		PeakMemBytes:  peak,
		Ordered:       len(q.Order) > 0,
	}, true, nil
}
