package core

import (
	"fmt"

	"repro/internal/columnar"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file wires the cross-query workload model (internal/workload)
// into the store: the Builder callback that materializes one ExtVP
// semi-join reduction on the model's background goroutine, the
// plan.ExtVPProvider the planner's rewrite pre-pass probes, the
// execution-time resolution of a rewritten scan back to its table
// (with full-table fallback when the reduction was evicted), and the
// post-execution mining hook that feeds executed joins and scan
// cardinalities back into the model.

// Workload returns the store's workload model, or nil when the store
// was loaded without an ExtVP budget (Options.ExtVPBudget).
func (s *Store) Workload() *workload.Model { return s.workload }

// WorkloadMetrics snapshots the workload model's counters; all zero
// when the subsystem is disabled.
func (s *Store) WorkloadMetrics() workload.Metrics {
	if s.workload == nil {
		return workload.Metrics{}
	}
	return s.workload.Metrics()
}

// workloadEpoch is the plan-cache key segment tying cached plans to
// the workload state (live tables, observed cardinalities) they were
// priced against.
func (s *Store) workloadEpoch() uint64 {
	if s.workload == nil {
		return 0
	}
	return s.workload.Epoch()
}

// buildExtVPTable is the workload model's Builder callback: it
// materializes the semi-join reduction of pred's VP table against
// partner at pos — the rows of pred whose join-position value occurs
// anywhere in partner's full table — re-partitioned by subject and
// written to HDFS under a generation-stamped path, so a build racing a
// statistics reload never collides with the next generation's files.
// It runs on the model's single background goroutine, concurrently
// with queries; everything it reads (the VP relations, the dictionary)
// is immutable after Load.
func (s *Store) buildExtVPTable(pred, partner uint64, pos uint8, gen uint64) (workload.Table, bool) {
	base := s.vp[rdf.ID(pred)]
	other := s.vp[rdf.ID(partner)]
	if base == nil || other == nil {
		return workload.Table{}, false
	}
	predCol, partnerCol := extvpCols(pos)
	keys := make(map[rdf.ID]struct{}, other.Rel.NumRows())
	for p := 0; p < other.Rel.Partitions(); p++ {
		for _, r := range other.Rel.Part(p) {
			keys[r[partnerCol]] = struct{}{}
		}
	}
	var rows []engine.Row
	for p := 0; p < base.Rel.Partitions(); p++ {
		for _, r := range base.Rel.Part(p) {
			if _, ok := keys[r[predCol]]; ok {
				rows = append(rows, r)
			}
		}
	}
	// An empty reduction is useless to scan, and one as large as its
	// source saves nothing — neither is worth budget bytes.
	if len(rows) == 0 || len(rows) >= base.Rel.NumRows() {
		return workload.Table{}, false
	}
	rel, err := engine.Partition(engine.Schema{"s", "o"}, rows, "s", s.parts)
	if err != nil {
		return workload.Table{}, false
	}
	// The in-memory relation keeps the cluster's partition count so
	// joins stay co-partitioned with the full VP tables, but the HDFS
	// layout is coalesced into a single columnar file: a reduction is
	// usually far smaller than its source, and per-partition file
	// overhead plus cross-partition term-dictionary duplication would
	// swallow most of the byte savings the scan price is based on.
	subjCol := make([]rdf.ID, len(rows))
	objCol := make([]rdf.ID, len(rows))
	localTerms := make(map[rdf.ID]struct{}, 2*len(rows))
	for i, r := range rows {
		subjCol[i] = r[0]
		objCol[i] = r[1]
		localTerms[r[0]] = struct{}{}
		localTerms[r[1]] = struct{}{}
	}
	w := columnar.NewWriter(0)
	w.AddScalar("s", subjCol)
	w.AddScalar("o", objCol)
	f, err := w.Finish()
	if err != nil {
		return workload.Table{}, false
	}
	fileBytes := f.SizeBytes() + compressedStringBytes(s.dict, localTerms)
	path := fmt.Sprintf("%s/extvp/g%d/p%d_p%d_%d/part-00000.parquet",
		s.opts.PathPrefix, gen, pred, partner, pos)
	if _, err := s.fs.Write(path, fileBytes); err != nil {
		return workload.Table{}, false
	}
	t := &VPTable{Pred: rdf.ID(pred), Rel: rel, FileBytes: fileBytes}
	return workload.Table{Rows: int64(len(rows)), Bytes: fileBytes, Data: t}, true
}

// extvpCols maps a join position (stats.JoinPos encoding, seen from
// pred's side) to the (s,o) column index each table joins on.
func extvpCols(pos uint8) (predCol, partnerCol int) {
	switch stats.JoinPos(pos) {
	case stats.JoinSS:
		return 0, 0
	case stats.JoinSO:
		return 0, 1
	case stats.JoinOS:
		return 1, 0
	default:
		return 1, 1
	}
}

// extvpCosts implements plan.ExtVPProvider over the store's live
// workload model — the rewrite pre-pass probes it per candidate.
type extvpCosts struct{ s *Store }

// ExtVPTable implements plan.ExtVPProvider.
func (p extvpCosts) ExtVPTable(pred, partner uint64, pos uint8) (int64, int64, bool) {
	t, ok := p.s.workload.Peek(pred, partner, pos)
	if !ok {
		return 0, 0, false
	}
	base := p.s.vp[rdf.ID(pred)]
	if base == nil {
		return 0, 0, false
	}
	return t.Rows, int64(base.Rows()), true
}

// extvpTable resolves a rewritten scan's reduction against the live
// model at execution time, counting the hit. ok=false — the table was
// evicted or invalidated after planning — sends the scan back to the
// full VP table, a superset, so results are unchanged either way.
func (s *Store) extvpTable(ref *plan.ExtVPRef) (*VPTable, string, bool) {
	if s.workload == nil {
		return nil, "", false
	}
	t, ok := s.workload.Lookup(ref.Pred, ref.Partner, uint8(ref.Pos))
	if !ok {
		return nil, "", false
	}
	vt, ok := t.Data.(*VPTable)
	if !ok || vt == nil {
		return nil, "", false
	}
	label := "ExtVP " + localName(s.dict.Term(rdf.ID(ref.Pred)).Value) +
		"<-" + localName(s.dict.Term(rdf.ID(ref.Partner)).Value)
	return vt, label, true
}

// mineWorkload feeds one executed (stamped) plan into the workload
// model: every observed join contributes its predicate pairs weighted
// by actual output rows, and every clean single-constant VP scan —
// filter-free and not itself rewritten, so its actual is the full
// subpattern cardinality — records the exact count for cross-query
// estimate seeding. nodes is the plan's Join Tree node list
// (Node.Leaf indexes into it).
func (s *Store) mineWorkload(p *plan.Plan, nodes []*Node) {
	if s.workload == nil || p == nil {
		return
	}
	for _, jo := range p.JoinObservations() {
		s.workload.ObserveJoin(jo.P1, jo.P2, uint8(jo.Pos), jo.Rows)
	}
	for _, n := range p.Scans() {
		if n.Actual < 0 || len(n.Filters) > 0 || n.ExtVP != nil {
			continue
		}
		if n.Leaf < 0 || n.Leaf >= len(nodes) {
			continue
		}
		cn := nodes[n.Leaf]
		if cn.Kind != NodeVP || len(cn.Patterns) != 1 {
			continue
		}
		if pid, cid, subjBound, ok := s.scanObsKey(cn.Patterns[0]); ok {
			s.workload.ObserveScan(pid, cid, subjBound, n.Actual)
		}
	}
}

// scanObsKey resolves a pattern's (predicate, constant) observation
// key: a bound predicate with exactly one of subject/object bound to a
// term the dictionary knows, the other position a variable.
func (s *Store) scanObsKey(tp sparql.TriplePattern) (pred, constID uint64, subjBound, ok bool) {
	if tp.P.IsVar() || tp.S.IsVar() == tp.O.IsVar() {
		return 0, 0, false, false
	}
	pid, found := s.dict.Lookup(tp.P.Term)
	if !found {
		return 0, 0, false, false
	}
	bound := tp.S
	subjBound = true
	if tp.S.IsVar() {
		bound = tp.O
		subjBound = false
	}
	cid, found := s.dict.Lookup(bound.Term)
	if !found {
		return 0, 0, false, false
	}
	return uint64(pid), uint64(cid), subjBound, true
}

// observedScanEstimate prices a single-pattern VP node from a
// previously recorded execution of the same (predicate, constant)
// subpattern — the cross-query seed consumed by leafEstimate.
func (s *Store) observedScanEstimate(n *Node) (int64, bool) {
	if s.workload == nil || n.Kind != NodeVP || len(n.Patterns) != 1 {
		return 0, false
	}
	pid, cid, subjBound, ok := s.scanObsKey(n.Patterns[0])
	if !ok {
		return 0, false
	}
	return s.workload.LookupObserved(pid, cid, subjBound)
}
