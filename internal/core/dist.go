package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/wire"
)

// This file is the coordinator side of distributed execution. The
// coordinator runs the normal planning and scheduling path unchanged —
// plan cache, cost model, shuffle routing and stage pricing are all
// local — and delegates only the per-partition kernels (scans and
// exchange joins) to shard processes through a DistSession. Kernels
// are deterministic functions of their fragments, and every stage's
// TaskStats derive from coordinator-known values, so results and
// SimTime are identical to single-process execution by construction.
//
// Restrictions while a DistRunner is installed (all documented in the
// README's "Distributed deployment" section): streaming, fault
// injection and adaptive re-planning are forced off, ExtVP rewrites
// are not taken, and variable-predicate (raw-triples fallback) scans
// evaluate coordinator-side.

// DistRunner hands out per-query distributed sessions; internal/shard's
// Coordinator is the production implementation.
type DistRunner interface {
	Session(q *sparql.Query) (DistSession, error)
}

// DistSession executes one query's shard work: scan kernels plus the
// engine's exchange kernels, with per-exchange byte and latency
// measurement.
type DistSession interface {
	engine.Exchanger
	// ScanNode evaluates a scan node's kernel shard-locally: every shard
	// scans its owned partitions of the node's table and returns the
	// filtered rows per (global) partition, plus per-partition processed
	// counts (keys examined, for PT scans; zero for VP scans, whose Rows
	// stat is the raw partition length the coordinator already knows).
	// filterIdx indexes the session query's FILTER list; label and
	// modeledBytes feed the calibration layer's leaf-pricing record.
	ScanNode(n *Node, filterIdx []int, label string, modeledBytes int64) (parts [][]engine.Row, processed []int64, err error)
	// Records returns the session's exchange records in execution order.
	Records() []ExchangeRecord
	// Close releases the session.
	Close() error
}

// ExchangeRecord measures one wire exchange against its cost-model
// price — the calibration evidence /stats and /explain report.
type ExchangeRecord struct {
	// Kind is the exchange flavor: "shuffle", "broadcast", "cartesian",
	// "distinct" or "scan".
	Kind string
	// Name labels the exchange (the join's right-child label, or the
	// scan label).
	Name string
	// PricedBytes is what the cost model charged for the exchange's
	// network movement (for scans: the calibrated leaf disk-bytes
	// price).
	PricedBytes int64
	// MeasuredBytes is the payload actually shuffled over the wire —
	// fragments that moved because the cost model says they move.
	// Colocated relay payload (an aligned side shipped only because the
	// relation lives coordinator-side) is excluded here and counted in
	// WireBytes, keeping the ratio comparable with the model.
	MeasuredBytes int64
	// WireBytes is the exchange's total on-wire traffic, both
	// directions, framing and relay included.
	WireBytes int64
	// Wall is the exchange's real round-trip latency (max over shards).
	Wall time.Duration
}

// CalibrationRatio is MeasuredBytes/PricedBytes, 0 when unpriced.
func (r ExchangeRecord) CalibrationRatio() float64 {
	if r.PricedBytes <= 0 || r.MeasuredBytes <= 0 {
		return 0
	}
	return float64(r.MeasuredBytes) / float64(r.PricedBytes)
}

// NetworkStats aggregates a coordinator's exchange measurements for
// /stats.
type NetworkStats struct {
	// Exchanges counts wire exchanges (scans included).
	Exchanges int64
	// BytesSent and BytesReceived are total wire bytes coordinator →
	// shards and shards → coordinator.
	BytesSent, BytesReceived int64
	// ShardRTT reports per-shard round-trip latency quantiles.
	ShardRTT []ShardRTT
	// CalibrationError is the mean |log2(measured/priced)| over priced
	// shuffle exchanges — 0 means the cost model prices network
	// movement exactly; 1 means it is off by 2x on average.
	CalibrationError float64
	// CalibratedExchanges counts the exchanges the error averages over.
	CalibratedExchanges int64
}

// ShardRTT is one shard's request round-trip latency summary.
type ShardRTT struct {
	Addr  string
	Calls int64
	P50   time.Duration
	P99   time.Duration
}

// NetworkReporter is implemented by DistRunners that aggregate
// NetworkStats across sessions (shard.Coordinator); serve's /stats
// block type-asserts it.
type NetworkReporter interface {
	NetworkStats() NetworkStats
}

// execDistScanNode evaluates one plan Scan operator with its kernel on
// the shards. The coordinator still resolves dictionary terms, prices
// the stage and shapes the output; only the filtered partition scan
// runs remotely. ExtVP rewrites are not taken here (shards hold the
// base tables), and variable-predicate fallback scans run locally.
func (s *Store) execDistScanNode(e *engine.Exec, sess DistSession, cn *Node, filterIdx []int, pushed []compiledFilter) (*engine.Relation, error) {
	switch cn.Kind {
	case NodeVP:
		tp := cn.Patterns[0]
		pid, ok := s.dict.Lookup(tp.P.Term)
		if !ok {
			return s.emptyRelation(tp.Vars()), nil
		}
		table := s.vp[pid]
		if table == nil {
			return s.emptyRelation(tp.Vars()), nil
		}
		// A bound term absent from the dictionary means an empty scan;
		// decided locally, no wire exchange.
		if _, ok, err := s.vpScanPred(tp, pushed); err != nil {
			return nil, err
		} else if !ok {
			return s.emptyRelation(tp.Vars()), nil
		}
		parts, _, err := sess.ScanNode(cn, filterIdx, cn.Label(), table.FileBytes)
		if err != nil {
			return nil, err
		}
		if len(parts) != table.Rel.Partitions() {
			return nil, fmt.Errorf("core: dist scan %s returned %d partitions, table has %d", cn.Label(), len(parts), table.Rel.Partitions())
		}
		rel, err := e.ScanGathered(table.Rel, "VP "+localName(tp.P.Term.Value), table.FileBytes, parts)
		if err != nil {
			return nil, err
		}
		return s.shapeVPScan(e, tp, rel)
	case NodePT, NodeIPT:
		pt := s.pt
		if cn.Kind == NodeIPT {
			if s.ipt == nil {
				return nil, fmt.Errorf("core: inverse property table not loaded")
			}
			pt = s.ipt
		}
		spec := s.ptNodeScan(pt, cn)
		if spec.empty {
			return s.emptyRelation(append([]string{cn.Key}, nodeValueVars(cn, pt.mode)...)), nil
		}
		scanBytes := pt.scanBytes(spec.preds)
		parts, processed, err := sess.ScanNode(cn, filterIdx, cn.Label(), scanBytes)
		if err != nil {
			return nil, err
		}
		if len(parts) != len(pt.parts) || len(processed) != len(pt.parts) {
			return nil, fmt.Errorf("core: dist scan %s returned %d/%d partitions, table has %d", cn.Label(), len(parts), len(processed), len(pt.parts))
		}
		perPartDisk := scanBytes / int64(len(pt.parts))
		err = s.cluster.RunStage(e.Clock, e.Launch(false), "scan "+cn.Label(), len(pt.parts), func(p int) (cluster.TaskStats, error) {
			return cluster.TaskStats{
				DiskBytes: perPartDisk,
				Rows:      processed[p] + int64(len(parts[p])),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		return engine.NewRelation(spec.schema, parts, cn.Key), nil
	default:
		// Raw-triples fallback (variable predicates): outside the WatDiv
		// workload; evaluated coordinator-side.
		return s.execNode(e, cn, pushed)
	}
}

// ScanNodeParts is the shard-server side of ScanNode: it evaluates a
// scan node over the partitions owned(p) selects, returning filtered
// rows and processed key counts per (global) partition index. Shards
// and the coordinator load the same dataset deterministically, so
// dictionary IDs, partition placement and per-partition row sets match
// the coordinator's own tables exactly.
func (s *Store) ScanNodeParts(n *Node, filters []sparql.Filter, owned func(p int) bool) (parts [][]engine.Row, processed []int64, err error) {
	pushed, err := s.compileFilterList(filters)
	if err != nil {
		return nil, nil, err
	}
	empty := func(np int) ([][]engine.Row, []int64, error) {
		return make([][]engine.Row, np), make([]int64, np), nil
	}
	switch n.Kind {
	case NodeVP:
		tp := n.Patterns[0]
		pid, ok := s.dict.Lookup(tp.P.Term)
		if !ok {
			return empty(s.parts)
		}
		table := s.vp[pid]
		if table == nil {
			return empty(s.parts)
		}
		pred, ok, err := s.vpScanPred(tp, pushed)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return empty(table.Rel.Partitions())
		}
		np := table.Rel.Partitions()
		parts = make([][]engine.Row, np)
		processed = make([]int64, np)
		for p := 0; p < np; p++ {
			if !owned(p) {
				continue
			}
			in := table.Rel.Part(p)
			if pred == nil {
				parts[p] = in
				continue
			}
			var kept []engine.Row
			for _, r := range in {
				if pred(r) {
					kept = append(kept, r)
				}
			}
			parts[p] = kept
		}
		return parts, processed, nil
	case NodePT, NodeIPT:
		pt := s.pt
		if n.Kind == NodeIPT {
			if s.ipt == nil {
				return nil, nil, fmt.Errorf("core: inverse property table not loaded")
			}
			pt = s.ipt
		}
		spec := s.ptNodeScan(pt, n)
		if spec.empty {
			return empty(len(pt.parts))
		}
		rowPred, err := rowPredicate(spec.schema, pushed)
		if err != nil {
			return nil, nil, err
		}
		parts = make([][]engine.Row, len(pt.parts))
		processed = make([]int64, len(pt.parts))
		for p := range pt.parts {
			if !owned(p) {
				continue
			}
			arena := engine.NewRowArena(len(spec.schema), 0)
			processed[p] = scanPTPartition(pt.parts[p], spec.specs, len(spec.schema), rowPred, arena.AppendCopy)
			parts[p] = arena.Rows()
		}
		return parts, processed, nil
	default:
		return nil, nil, fmt.Errorf("core: dist scan does not support node kind %v", n.Kind)
	}
}

// wrapShardErr converts a shard-process failure into the typed
// *TaskFailedError of the PR 6 attempt machinery: a dead shard is a
// permanent worker outage from the query's point of view — there is no
// redundant replica to retry against — so the error carries a
// one-attempt trace with the worker-outage outcome and unwraps to the
// underlying *wire.ShardError.
func wrapShardErr(err error, task string, start time.Duration, completed, total int) error {
	var se *wire.ShardError
	if !errors.As(err, &se) {
		return err
	}
	return &TaskFailedError{
		Task: task,
		Attempts: []TaskAttempt{{
			Attempt: 1,
			Worker:  se.Shard,
			Start:   start,
			End:     start,
			Outcome: AttemptOutage,
		}},
		CompletedTasks: completed,
		TotalTasks:     total,
		Cause:          se,
	}
}

// exchangeClass folds a record kind into the operator class it
// annotates: scans, distincts, and everything else (the join flavors —
// shuffle, broadcast, cartesian, colocated).
func exchangeClass(kind string) string {
	switch kind {
	case "scan", "distinct":
		return kind
	default:
		return "join"
	}
}

// annotateDistPlan stamps measured-vs-priced exchange bytes onto the
// executed plan for EXPLAIN: records are matched to operators by
// (class, label) FIFO — scan records carry the leaf label, join
// records the join name (the right child's label), so a predicate
// scanned twice consumes two records in order.
func annotateDistPlan(p *plan.Plan, records []ExchangeRecord) {
	if p == nil || len(records) == 0 {
		return
	}
	byKey := map[string][]ExchangeRecord{}
	for _, r := range records {
		k := exchangeClass(r.Kind) + "|" + r.Name
		byKey[k] = append(byKey[k], r)
	}
	take := func(key string) (ExchangeRecord, bool) {
		q := byKey[key]
		if len(q) == 0 {
			return ExchangeRecord{}, false
		}
		byKey[key] = q[1:]
		return q[0], true
	}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		var key string
		switch n.Op {
		case plan.OpScan:
			key = "scan|" + n.Label
		case plan.OpJoin:
			key = "join|" + n.Children[1].Label
		case plan.OpDistinct:
			key = "distinct|distinct"
		default:
			return
		}
		if r, ok := take(key); ok {
			n.PricedNetBytes = r.PricedBytes
			n.MeasuredNetBytes = r.MeasuredBytes
			n.HasNetBytes = true
		}
	}
	walk(p.Root)
}
