package core

// Tests for the adaptive execution loop: mid-query re-planning, the
// feedback plan cache, per-query cancellation, and determinism of the
// adaptive path under concurrent callers (the TestConcurrent* names
// are load-bearing: CI's fast gate runs -run 'Concurrent|Adaptive').

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
)

// correlatedGraph builds a graph whose join cardinalities break the
// independence assumption: predicates a and b share one hot object
// carried by 80% of their triples plus a distinct-value tail, so the
// planner's |A||B|/max(d) estimate misses the a⋈b join by >10x — the
// trigger shape the adaptive executor exists for. Predicate c hangs a
// second join off b's subjects, giving the re-planner a remainder to
// reorder, and d is an unrelated predicate for cache-isolation tests.
func correlatedGraph() *rdf.Graph {
	iri := func(s string) rdf.Term { return rdf.NewIRI(testNS + s) }
	g := rdf.NewGraph(0)
	add := func(s, p string, o rdf.Term) { g.AddSPO(iri(s), iri(p), o) }
	for i := 0; i < 100; i++ {
		if i < 80 {
			add(fmt.Sprintf("ua%d", i), "a", iri("hot"))
			add(fmt.Sprintf("ub%d", i), "b", iri("hot"))
		} else {
			add(fmt.Sprintf("ua%d", i), "a", iri(fmt.Sprintf("atail%d", i)))
			add(fmt.Sprintf("ub%d", i), "b", iri(fmt.Sprintf("btail%d", i)))
		}
		add(fmt.Sprintf("ub%d", i), "c", iri(fmt.Sprintf("w%d", i%7)))
		add(fmt.Sprintf("ua%d", i), "d", iri(fmt.Sprintf("x%d", i%3)))
	}
	return g
}

const adaptiveQuery = `SELECT ?x ?y ?w WHERE {
	?x <http://example.org/a> ?o .
	?y <http://example.org/b> ?o .
	?y <http://example.org/c> ?w .
}`

func adaptiveStore(t *testing.T) *Store {
	t.Helper()
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	// Join-graph statistics are disabled on purpose: the pair sketch for
	// a⋈b would price the correlated join exactly and no re-plan would
	// ever trigger. These tests pin the adaptive machinery itself, which
	// production stores only exercise for the shapes sketches cannot
	// express.
	s, err := Load(correlatedGraph(), Options{Cluster: c, DisableJoinStats: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s
}

// TestAdaptiveReplanFiresAndKeepsResults checks the core loop: the
// correlated join trips the trigger, the re-planned execution returns
// exactly the static planner's rows, and the corrected plan lands in
// the feedback cache so the second execution reports the provenance
// and never re-evaluates the mistake.
func TestAdaptiveReplanFiresAndKeepsResults(t *testing.T) {
	s := adaptiveStore(t)
	q := sparql.MustParse(adaptiveQuery)

	static, err := s.Query(q, QueryOptions{ReplanThreshold: -1, NoPlanCache: true})
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	first, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("adaptive: %v", err)
	}
	if len(first.Replans) == 0 {
		t.Fatalf("correlated join (est misses actual >10x) did not trigger a re-plan")
	}
	ev := first.Replans[0]
	if ev.Ratio <= DefaultReplanThreshold {
		t.Errorf("trigger ratio %.2f not above the default threshold", ev.Ratio)
	}
	if ev.Trigger == "" || ev.OldRemainder == "" || ev.NewRemainder == "" {
		t.Errorf("re-plan event incomplete: %+v", ev)
	}
	eqStrings(t, renderRows(first), renderRows(static), "adaptive vs static rows")

	m := s.PlanCacheMetrics()
	if m.CorrectedEntries == 0 {
		t.Fatalf("completed adaptive run did not write a corrected plan back (metrics %+v)", m)
	}
	second, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if !second.CacheFeedback {
		t.Errorf("second execution did not come from the feedback cache")
	}
	if got := s.PlanCacheMetrics().FeedbackHits; got == 0 {
		t.Errorf("feedback hit not counted (metrics %+v)", s.PlanCacheMetrics())
	}
	eqStrings(t, renderRows(second), renderRows(static), "feedback-cache rows")
	if sum := second.ReplanSummary(); !strings.Contains(sum, "feedback cache") {
		t.Errorf("ReplanSummary does not report feedback provenance:\n%s", sum)
	}
	// The stamped feedback plan carries rebased estimates, so its worst
	// error ratio must be far below the trigger.
	if ratio, at := second.Plan.MaxErrorRatio(); at != nil && ratio > DefaultReplanThreshold {
		t.Errorf("feedback plan still reports %.1fx estimation error at %s", ratio, at.Label)
	}
	if am := s.AdaptiveMetrics(); am.Evaluated == 0 {
		t.Errorf("store adaptive counters not updated: %+v", am)
	}
}

// TestAdaptiveDisabledForPaperModes keeps the heuristic and naive
// planners exactly static: they reproduce the paper's measurements and
// must never re-plan regardless of estimation error.
func TestAdaptiveDisabledForPaperModes(t *testing.T) {
	s := adaptiveStore(t)
	q := sparql.MustParse(adaptiveQuery)
	for _, mode := range []PlannerMode{PlannerHeuristic, PlannerNaive} {
		res, err := s.Query(q, QueryOptions{Planner: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Replans) != 0 {
			t.Errorf("%v planner re-planned; the paper modes must stay static", mode)
		}
	}
}

// TestTimedOutQueryLeavesCacheUntouched is the poisoning regression: a
// query cancelled mid-flight must not write a corrected plan back, and
// the entry the static planning inserted must keep serving correct
// results afterwards.
func TestTimedOutQueryLeavesCacheUntouched(t *testing.T) {
	s := adaptiveStore(t)
	q := sparql.MustParse(adaptiveQuery)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.QueryContext(ctx, q, QueryOptions{})
	if err == nil {
		t.Fatalf("expired deadline did not fail the query")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CancelError", err)
	}
	if !strings.Contains(err.Error(), "plan tasks") {
		t.Errorf("cancel error lacks partial trace info: %v", err)
	}
	if m := s.PlanCacheMetrics(); m.CorrectedEntries != 0 {
		t.Fatalf("timed-out query poisoned the cache with %d corrected entries", m.CorrectedEntries)
	}

	static, err := s.Query(q, QueryOptions{ReplanThreshold: -1, NoPlanCache: true})
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	res, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	eqStrings(t, renderRows(res), renderRows(static), "post-timeout result")
}

// TestFeedbackEntryInvalidatedByGenerationBump pins the generation
// counter: reloading statistics — even bit-identical ones, where the
// fingerprint key cannot change — strands corrected entries, because
// their rebased estimates are observations of the old data.
func TestFeedbackEntryInvalidatedByGenerationBump(t *testing.T) {
	s := adaptiveStore(t)
	q := sparql.MustParse(adaptiveQuery)
	if _, err := s.Query(q, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if m := s.PlanCacheMetrics(); m.CorrectedEntries == 0 {
		t.Fatalf("no corrected entry to invalidate (metrics %+v)", m)
	}
	base := s.PlanCacheMetrics()

	s.swapStats(stats.Collect(s.triples)) // same data, same fingerprint, new generation
	res, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheFeedback {
		t.Errorf("stale-generation corrected entry served after stats reload")
	}
	m := s.PlanCacheMetrics()
	if m.Generation != base.Generation+1 {
		t.Errorf("generation = %d, want %d", m.Generation, base.Generation+1)
	}
	if got := m.Misses - base.Misses; got == 0 {
		t.Errorf("post-reload lookup did not miss (metrics %+v)", m)
	}
}

// TestStaleGenerationFreesFIFOSlot pins the cache's eviction
// bookkeeping: dropping a generation-stale entry must free its FIFO
// slot, so re-inserting the same key afterwards holds exactly one slot
// and eviction never removes the live entry early.
func TestStaleGenerationFreesFIFOSlot(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", &cachedPlan{})
	c.bumpGeneration()
	if _, ok := c.get("a"); ok {
		t.Fatalf("stale-generation entry served")
	}
	c.put("a", &cachedPlan{corrected: true}) // re-insert after the lazy drop
	c.put("b", &cachedPlan{})                // fills the cache; nothing may evict yet
	if e, ok := c.get("a"); !ok || !e.corrected {
		t.Fatalf("re-inserted entry lost (ok=%v): stale FIFO slot evicted the live entry", ok)
	}
	if m := c.metrics(); m.Entries != 2 || m.Evictions != 0 {
		t.Fatalf("metrics %+v, want 2 entries and no evictions", m)
	}
}

// TestConcurrentStatsReloadWithSketches reloads the join-graph
// statistics (different sketch top-K → different fingerprint AND a
// generation bump) while 16 goroutines keep querying — the -race gate
// for swapStats under load. The store is loaded with SketchTopK 1 so
// the a⋈b correlation stays uncovered and the adaptive loop writes
// corrected feedback entries; the reload must strand them, and no
// post-reload execution may serve a plan priced against the old
// sketches: a post-reload query's estimates must match a fresh plan
// built from the new collection.
func TestConcurrentStatsReloadWithSketches(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := Load(correlatedGraph(), Options{Cluster: c, SketchTopK: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	q := sparql.MustParse(adaptiveQuery)
	static, err := s.Query(q, QueryOptions{ReplanThreshold: -1, NoPlanCache: true})
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	want := renderRows(static)

	// Warm to a corrected feedback entry (the top-1 sketch bound leaves
	// the correlated pair uncovered, so the trigger still fires).
	if _, err := s.Query(q, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if m := s.PlanCacheMetrics(); m.CorrectedEntries == 0 {
		t.Fatalf("no corrected entry before the reload (metrics %+v); the sketch bound no longer leaves the trigger uncovered", m)
	}
	baseGen := s.PlanCacheMetrics().Generation

	const goroutines = 16
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	start := make(chan struct{})
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				res, err := s.Query(q, QueryOptions{})
				if err != nil {
					errs <- err
					return
				}
				got := renderRows(res)
				if len(got) != len(want) {
					errs <- fmt.Errorf("goroutine %d round %d: %d rows, want %d", gi, r, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("goroutine %d round %d: row %d = %q, want %q", gi, r, i, got[i], want[i])
						return
					}
				}
			}
		}(gi)
	}
	close(start)
	// Two reloads with different sketch bounds while queries are in
	// flight: fingerprints differ each time, generations advance.
	s.swapStats(stats.CollectJoinStats(s.triples, stats.Config{CSets: true, SketchTopK: 2}))
	s.swapStats(stats.CollectJoinStats(s.triples, stats.Config{CSets: true, SketchTopK: 3}))
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.PlanCacheMetrics()
	if m.Generation != baseGen+2 {
		t.Errorf("generation = %d, want %d after two reloads", m.Generation, baseGen+2)
	}

	// No plan priced against the old sketches may be served: a fresh
	// post-reload execution's estimates must match a from-scratch plan
	// built over the current collection.
	res, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Plan(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantEst := res.Plan.Root.Est, fresh.Root.Est; got != wantEst {
		// The served plan may be a corrected (rebased) entry written
		// back AFTER the reload — that is current-generation feedback,
		// not staleness — so only a non-feedback plan must match.
		if !res.CacheFeedback {
			t.Errorf("post-reload plan root est %g != fresh plan est %g (stale sketch pricing served)", got, wantEst)
		}
	}
	eqStrings(t, renderRows(res), want, "post-reload result")
}

// TestConcurrentAdaptiveReplanSharedCache hammers the adaptive path
// from 16 goroutines against one shared store and plan cache (the
// -race gate): every result must be byte-identical to the sequential
// baseline, and once the feedback cache reaches steady state the
// simulated times must be deterministic too — the executed/remainder
// partition depends only on virtual times and actuals, never on pool
// interleaving.
func TestConcurrentAdaptiveReplanSharedCache(t *testing.T) {
	s := adaptiveStore(t)
	queries := []string{
		adaptiveQuery,
		`SELECT ?x ?o WHERE { ?x <http://example.org/a> ?o . ?y <http://example.org/b> ?o . }`,
		`SELECT ?y ?w WHERE { ?y <http://example.org/c> ?w . ?y <http://example.org/b> ?o . }`,
		`SELECT ?x WHERE { ?x <http://example.org/d> ?v . ?x <http://example.org/a> ?o . }`,
	}
	parsed := make([]*sparql.Query, len(queries))
	want := make([][]string, len(queries))
	wantSim := make([]time.Duration, len(queries))
	for i, src := range queries {
		parsed[i] = sparql.MustParse(src)
		// Sequential steady state: corrected plans may be corrected once
		// more before the cache stabilizes.
		var prev time.Duration = -1
		for r := 0; r < 6; r++ {
			res, err := s.Query(parsed[i], QueryOptions{})
			if err != nil {
				t.Fatalf("query %d warmup: %v", i, err)
			}
			want[i] = renderRows(res)
			wantSim[i] = res.SimTime
			if res.SimTime == prev {
				break
			}
			prev = res.SimTime
		}
	}

	const goroutines = 16
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (gi + r) % len(parsed)
				res, err := s.Query(parsed[qi], QueryOptions{})
				if err != nil {
					errs <- fmt.Errorf("query %d: %w", qi, err)
					return
				}
				got := renderRows(res)
				if len(got) != len(want[qi]) {
					errs <- fmt.Errorf("query %d: %d rows, want %d", qi, len(got), len(want[qi]))
					return
				}
				for i := range got {
					if got[i] != want[qi][i] {
						errs <- fmt.Errorf("query %d row %d: %q != %q", qi, i, got[i], want[qi][i])
						return
					}
				}
				if res.SimTime != wantSim[qi] {
					errs <- fmt.Errorf("query %d: concurrent SimTime %v != steady-state %v", qi, res.SimTime, wantSim[qi])
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
