package core
