// Package core implements PRoST (Partitioned RDF on Spark Tables), the
// paper's primary contribution: an RDF store that keeps the data twice —
// as per-predicate Vertical Partitioning tables and as a subject-wide
// Property Table — translates SPARQL Basic Graph Patterns into Join
// Trees whose nodes read from whichever representation fits (patterns
// sharing a subject collapse into one Property Table node), orders the
// tree with loader-time statistics, and executes it bottom-up on the
// simulated Spark SQL engine.
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sizeenc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Strategy selects how the translator assigns patterns to storage
// structures.
type Strategy uint8

// Query strategies.
const (
	// StrategyMixed is the paper's contribution: subject groups with two
	// or more patterns become Property Table nodes, everything else uses
	// Vertical Partitioning.
	StrategyMixed Strategy = iota
	// StrategyVPOnly answers every pattern from VP tables (the Figure 2
	// baseline).
	StrategyVPOnly
	// StrategyMixedIPT extends Mixed with the future-work inverse
	// Property Table: object groups with two or more patterns become
	// inverse-PT nodes (paper §5).
	StrategyMixedIPT
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyMixed:
		return "mixed"
	case StrategyVPOnly:
		return "vp-only"
	case StrategyMixedIPT:
		return "mixed+ipt"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// StrategyNames lists the values ParseStrategy accepts — the single
// source CLI flags and error messages quote.
func StrategyNames() []string {
	return []string{"mixed", "vp-only", "mixed+ipt"}
}

// ParseStrategy maps a CLI flag or request parameter to a Strategy.
// Unknown values are rejected with an error listing every valid one.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "mixed", "":
		return StrategyMixed, nil
	case "vp-only":
		return StrategyVPOnly, nil
	case "mixed+ipt":
		return StrategyMixedIPT, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q (valid strategies: %s)",
			s, strings.Join(StrategyNames(), ", "))
	}
}

// Options configures a Store.
type Options struct {
	// Cluster is the simulated cluster to load and query on. Required.
	Cluster *cluster.Cluster
	// FS is the simulated HDFS instance tables are written to. If nil, a
	// fresh one sized to the cluster is created.
	FS *hdfs.FS
	// PathPrefix is the HDFS directory the store writes under
	// (default "/prost").
	PathPrefix string
	// Partitions is the partition count for tables (0 = cluster
	// default).
	Partitions int
	// BuildInversePT also builds the object-keyed Property Table needed
	// by StrategyMixedIPT. It costs extra loading time and storage,
	// which is why the paper leaves it as future work.
	BuildInversePT bool
	// PlanCacheSize bounds the store's plan cache (entries). 0 uses the
	// default; negative disables plan caching entirely.
	PlanCacheSize int
	// SketchTopK bounds the two-predicate join sketches collected at
	// load time (0 = stats.DefaultSketchTopK, negative = no pair
	// sketches; characteristic sets are kept either way).
	SketchTopK int
	// DisableJoinStats skips the join-graph statistics entirely —
	// characteristic sets and pair sketches — leaving the pre-sketch
	// independence-only estimator. Kept as the ablation baseline (A6)
	// and for tests that exercise the adaptive re-planner's response to
	// estimation mistakes the sketches would otherwise prevent.
	DisableJoinStats bool
	// ExtVPBudget enables the workload-driven ExtVP subsystem and caps
	// the total bytes of materialized semi-join reductions. Zero (the
	// default) disables the subsystem entirely: no mining, no
	// background builds, no cross-query estimate seeding — the store
	// behaves exactly as before.
	ExtVPBudget int64
	// ExtVPBuildAfter is the number of feedback observations a
	// predicate pair needs before its reductions are built in the
	// background (0 = workload.DefaultBuildAfter).
	ExtVPBuildAfter int
}

// Store is a loaded PRoST database.
type Store struct {
	opts    Options
	cluster *cluster.Cluster
	fs      *hdfs.FS
	dict    *rdf.Dictionary
	parts   int

	// statsSnap holds the current loader statistics and their
	// fingerprint behind one atomic pointer, so a statistics reload
	// (swapStats) is safe under in-flight queries: every reader sees a
	// consistent (collection, fingerprint) pair.
	statsSnap atomic.Pointer[statsSnapshot]

	// vp maps predicate ID → its Vertical Partitioning table.
	vp map[rdf.ID]*VPTable
	// predOrder lists predicate IDs sorted by IRI for determinism.
	predOrder []rdf.ID
	// pt is the subject-keyed Property Table.
	pt *PropertyTable
	// ipt is the object-keyed inverse Property Table (optional).
	ipt *PropertyTable
	// triples retains the encoded dataset for variable-predicate
	// patterns (the triple-table fallback).
	triples []rdf.EncodedTriple

	// planCache memoizes physical plans across queries; its keys embed
	// the loader-statistics fingerprint, so replacing the statistics
	// invalidates every cached plan.
	planCache *planCache

	// workload is the cross-query workload model: mined predicate
	// pairs, materialized ExtVP reductions and observed scan
	// cardinalities. Nil unless Options.ExtVPBudget is positive.
	workload *workload.Model

	// adaptive aggregates re-planning counters across queries.
	adaptive adaptiveCounters
	// resilience aggregates fault-recovery counters across queries; all
	// zero unless fault injection ran.
	resilience resilienceCounters
	// estSources tallies, across every plan built, how its estimating
	// nodes were priced (characteristic sets, pair sketches, or the
	// independence fallback).
	estSources estSourceCounters

	load LoadReport
}

// adaptiveCounters tallies the adaptive executor's decisions.
type adaptiveCounters struct {
	evaluated atomic.Uint64
	adopted   atomic.Uint64
}

// record folds one query's re-plan events into the counters.
func (a *adaptiveCounters) record(events []ReplanEvent) {
	for _, ev := range events {
		a.evaluated.Add(1)
		if ev.Adopted {
			a.adopted.Add(1)
		}
	}
}

// AdaptiveMetrics snapshots the store's adaptive re-planning counters.
type AdaptiveMetrics struct {
	// Evaluated counts re-plan decisions taken (a trigger fired and the
	// remainder was re-priced).
	Evaluated uint64
	// Adopted counts re-plans whose corrected remainder was spliced in.
	Adopted uint64
}

// AdaptiveMetrics returns the re-planning counters accumulated across
// queries.
func (s *Store) AdaptiveMetrics() AdaptiveMetrics {
	return AdaptiveMetrics{
		Evaluated: s.adaptive.evaluated.Load(),
		Adopted:   s.adaptive.adopted.Load(),
	}
}

// estSourceCounters tallies estimate provenance across built plans.
type estSourceCounters struct {
	cset, sketch, indep, extvp, obs atomic.Uint64
}

// record counts the estimating nodes (scans and joins) of one freshly
// built plan by the source that priced them.
func (e *estSourceCounters) record(p *plan.Plan) {
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		switch n.EstSource {
		case plan.EstCSet:
			e.cset.Add(1)
		case plan.EstSketch:
			e.sketch.Add(1)
		case plan.EstIndep:
			e.indep.Add(1)
		case plan.EstExtVP:
			e.extvp.Add(1)
		case plan.EstObserved:
			e.obs.Add(1)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

// EstSourceMetrics snapshots the estimate-provenance counters: how many
// scan/join estimates across all built plans came from characteristic
// sets, pair sketches, or the independence fallback. /stats and the
// ablation harness read them to attribute estimator coverage.
type EstSourceMetrics struct {
	// CSet counts nodes priced from characteristic sets.
	CSet uint64
	// Sketch counts nodes priced from pair join sketches.
	Sketch uint64
	// Indep counts nodes priced by the independence assumption (the
	// fallback when no sketch or cset applies).
	Indep uint64
	// ExtVP counts scans rewritten to materialized semi-join
	// reductions (their estimate is the reduction's exact row count).
	ExtVP uint64
	// Observed counts scans seeded from a previous execution's recorded
	// cardinality of the same (predicate, constant) subpattern.
	Observed uint64
}

// EstSourceMetrics returns the per-source estimate counters.
func (s *Store) EstSourceMetrics() EstSourceMetrics {
	return EstSourceMetrics{
		CSet:     s.estSources.cset.Load(),
		Sketch:   s.estSources.sketch.Load(),
		Indep:    s.estSources.indep.Load(),
		ExtVP:    s.estSources.extvp.Load(),
		Observed: s.estSources.obs.Load(),
	}
}

// LoadReport summarizes a loading run: Table 1's two columns plus
// breakdown detail.
type LoadReport struct {
	// Triples is the dataset size after deduplication.
	Triples int64
	// InputBytes is the N-Triples input volume.
	InputBytes int64
	// SizeBytes is the store's logical on-HDFS size (Table 1 "Size").
	SizeBytes int64
	// LoadTime is the simulated loading duration (Table 1 "Time").
	LoadTime time.Duration
	// WallTime is the real time the simulation took.
	WallTime time.Duration
	// VPTables is the number of Vertical Partitioning tables created.
	VPTables int
	// PTColumns is the number of Property Table columns (predicates).
	PTColumns int
}

// Dictionary exposes the store's term dictionary (used by result
// decoding and the benchmark harness).
func (s *Store) Dictionary() *rdf.Dictionary { return s.dict }

// statsSnapshot pairs a statistics collection with its fingerprint.
type statsSnapshot struct {
	col *stats.Collection
	fp  uint64
}

// Stats exposes the loader-time statistics.
func (s *Store) Stats() *stats.Collection { return s.curStats() }

// curStats returns the current statistics collection.
func (s *Store) curStats() *stats.Collection { return s.statsSnap.Load().col }

// statsFingerprint returns the current collection's content hash — the
// component of every plan-cache key that ties a plan to the statistics
// (including join sketches) it was priced with.
func (s *Store) statsFingerprint() uint64 { return s.statsSnap.Load().fp }

// swapStats replaces the loader statistics and refreshes their
// fingerprint. Cached plans keyed on the old fingerprint become
// unreachable, and the plan cache's generation counter advances so any
// entry from the old statistics era — including corrected feedback
// plans, whose rebased estimates are observations of the old data —
// is invalidated outright. Safe to call with queries in flight: the
// snapshot swap is atomic, in-flight executions keep the collection
// they started with, and any entry such an execution writes back is
// either stranded by the generation bump (written before it) or keyed
// on the old fingerprint (unreachable after it).
func (s *Store) swapStats(st *stats.Collection) {
	s.statsSnap.Store(&statsSnapshot{col: st, fp: st.Fingerprint()})
	if s.planCache != nil {
		s.planCache.bumpGeneration()
	}
	if s.workload != nil {
		// Reductions and observed cardinalities describe the old data;
		// the generation bump also strands any build still in flight.
		s.workload.Invalidate()
	}
}

// LoadReport returns the loading summary.
func (s *Store) LoadReport() LoadReport { return s.load }

// Cluster returns the cluster the store lives on.
func (s *Store) Cluster() *cluster.Cluster { return s.cluster }

// FS returns the simulated HDFS instance holding the store's files.
func (s *Store) FS() *hdfs.FS { return s.fs }

// Partitions returns the store's table partition count.
func (s *Store) Partitions() int { return s.parts }

// VPTable returns the vertical partitioning table for a predicate ID,
// or nil when the predicate does not occur in the data.
func (s *Store) VPTable(pred rdf.ID) *VPTable { return s.vp[pred] }

// PropertyTable returns the subject-keyed property table.
func (s *Store) PropertyTable() *PropertyTable { return s.pt }

// InversePropertyTable returns the object-keyed property table, or nil
// if the store was loaded without BuildInversePT.
func (s *Store) InversePropertyTable() *PropertyTable { return s.ipt }

// Load builds a PRoST store from an in-memory graph, charging the
// loading phases (input scan, dictionary encoding, statistics, VP build,
// PT build) to a virtual clock whose total becomes LoadReport.LoadTime.
func Load(g *rdf.Graph, opts Options) (*Store, error) {
	if opts.Cluster == nil {
		return nil, fmt.Errorf("core: Options.Cluster is required")
	}
	if opts.FS == nil {
		fs, err := hdfs.New(hdfs.Config{DataNodes: opts.Cluster.Workers() + 1})
		if err != nil {
			return nil, fmt.Errorf("core: creating HDFS: %w", err)
		}
		opts.FS = fs
	}
	if opts.PathPrefix == "" {
		opts.PathPrefix = "/prost"
	}
	parts := opts.Partitions
	if parts <= 0 {
		parts = opts.Cluster.DefaultPartitions()
	}

	start := time.Now()
	clock := cluster.NewClock()
	// Every loader is one submitted Spark (or bulk-ingest) application.
	clock.Charge("job submit", opts.Cluster.Config().Cost.RDDSubmit)
	s := &Store{
		opts:    opts,
		cluster: opts.Cluster,
		fs:      opts.FS,
		dict:    rdf.NewDictionary(),
		parts:   parts,
		vp:      make(map[rdf.ID]*VPTable),
	}

	// Phase 1: read + parse the N-Triples input.
	inputBytes := ntriplesBytes(g)
	if err := chargeInputScan(s.cluster, clock, inputBytes, g.Len(), parts); err != nil {
		return nil, err
	}

	// Phase 2: dictionary-encode and deduplicate.
	s.triples = encodeDedup(s.dict, g)
	clock.Charge("dictionary encode", time.Duration(g.Len())*s.cluster.Config().Cost.RowTime)

	// Phase 3: statistics (paper §3.3 — "without any significant
	// overhead": one extra pass). Join-graph statistics (characteristic
	// sets + pair sketches) ride the same subject-grouped layout the
	// Property Table build needs and cost one more pass over the rows.
	if opts.DisableJoinStats {
		s.swapStats(stats.Collect(s.triples))
		clock.Charge("statistics", time.Duration(len(s.triples))*s.cluster.Config().Cost.RowTime)
	} else {
		s.swapStats(stats.CollectJoinStats(s.triples, stats.Config{CSets: true, SketchTopK: opts.SketchTopK}))
		clock.Charge("statistics", time.Duration(len(s.triples))*s.cluster.Config().Cost.RowTime)
		clock.Charge("join statistics", time.Duration(len(s.triples))*s.cluster.Config().Cost.RowTime)
	}

	cacheSize := opts.PlanCacheSize
	if cacheSize == 0 {
		cacheSize = defaultPlanCacheSize
	}
	if cacheSize > 0 {
		// A negative size disables caching outright: planCache stays
		// nil, so queries skip key construction and locking entirely.
		s.planCache = newPlanCache(cacheSize)
	}

	if opts.ExtVPBudget > 0 {
		s.workload = workload.New(workload.Config{
			BudgetBytes: opts.ExtVPBudget,
			BuildAfter:  opts.ExtVPBuildAfter,
			Builder:     s.buildExtVPTable,
		})
	}

	// Phase 4: Vertical Partitioning tables.
	if err := s.buildVP(clock); err != nil {
		return nil, fmt.Errorf("core: building VP tables: %w", err)
	}

	// Phase 5: Property Table (subject-partitioned; paper §3.1).
	pt, err := buildPropertyTable(s, clock, keyOnSubject)
	if err != nil {
		return nil, fmt.Errorf("core: building property table: %w", err)
	}
	s.pt = pt

	// Phase 6 (optional): inverse Property Table keyed on objects.
	if opts.BuildInversePT {
		ipt, err := buildPropertyTable(s, clock, keyOnObject)
		if err != nil {
			return nil, fmt.Errorf("core: building inverse property table: %w", err)
		}
		s.ipt = ipt
	}

	s.load = LoadReport{
		Triples:    int64(len(s.triples)),
		InputBytes: inputBytes,
		SizeBytes:  s.fs.LogicalBytes(opts.PathPrefix + "/"),
		LoadTime:   clock.Elapsed(),
		WallTime:   time.Since(start),
		VPTables:   len(s.vp),
		PTColumns:  len(s.pt.cols),
	}
	return s, nil
}

// LoadNTriples parses an N-Triples document from r and loads it.
func LoadNTriples(r io.Reader, opts Options) (*Store, error) {
	g, err := rdf.NewNTriplesReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: parsing input: %w", err)
	}
	return Load(g, opts)
}

// ntriplesBytes estimates the serialized input volume.
func ntriplesBytes(g *rdf.Graph) int64 {
	var n int64
	for _, t := range g.Triples() {
		n += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) +
			len(t.O.Datatype) + len(t.O.Lang) + 12)
	}
	return n
}

// chargeInputScan prices the distributed read+parse of the input file.
func chargeInputScan(c *cluster.Cluster, clock *cluster.Clock, bytes int64, rows, parts int) error {
	perPart := bytes / int64(parts)
	rowsPerPart := int64(rows) / int64(parts)
	return c.RunStage(clock, c.Config().Cost.SQLStageLaunch, "read input", parts, func(p int) (cluster.TaskStats, error) {
		return cluster.TaskStats{DiskBytes: perPart, Rows: rowsPerPart}, nil
	})
}

// encodeDedup interns all terms and drops duplicate triples.
func encodeDedup(dict *rdf.Dictionary, g *rdf.Graph) []rdf.EncodedTriple {
	seen := make(map[rdf.EncodedTriple]struct{}, g.Len())
	out := make([]rdf.EncodedTriple, 0, g.Len())
	for _, t := range g.Triples() {
		et := dict.EncodeTriple(t)
		if _, dup := seen[et]; dup {
			continue
		}
		seen[et] = struct{}{}
		out = append(out, et)
	}
	return out
}

// sortedPredicates returns the dataset's predicate IDs ordered by IRI.
func sortedPredicates(dict *rdf.Dictionary, st *stats.Collection) []rdf.ID {
	out := make([]rdf.ID, 0, len(st.ByPredicate))
	for p := range st.ByPredicate {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return dict.Term(out[i]).Value < dict.Term(out[j]).Value
	})
	return out
}

// compressedStringBytes returns the deflate-compressed size of the terms
// named by ids, modeling a Parquet file's local dictionary pages. Real
// compression over the real strings keeps Table 1's size ratios honest.
func compressedStringBytes(dict *rdf.Dictionary, ids map[rdf.ID]struct{}) int64 {
	return sizeenc.CompressedTermBytes(dict, ids)
}
