package core

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/plan"
	"repro/internal/sparql"
)

// defaultPlanCacheSize bounds the plan cache when Options.PlanCacheSize
// is zero. Plans are a few KiB each, so the default costs ~1 MiB while
// covering far more distinct query shapes than any benchmark workload.
const defaultPlanCacheSize = 256

// cachedPlan is one immutable plan-cache entry: the translated Join
// Tree nodes (the scan descriptors the plan's Leaf indexes point into)
// and the physical plan built over them. Entries are shared by every
// execution that hits the cache and must never be mutated — actual
// cardinalities go into per-execution plan.Observations, and the
// display Join Tree is re-sequenced into a fresh slice per query.
//
// A corrected entry is the feedback form: the plan a fully executed
// adaptive run actually ran, with its estimates rebased to the
// observed cardinalities, written back over the static entry under the
// same key. Executions hitting it neither repeat the estimation
// mistake nor re-pay the re-plan. gen records the cache generation the
// entry was written in; a statistics reload bumps the generation and
// strands older entries.
type cachedPlan struct {
	nodes     []*Node
	plan      *plan.Plan
	corrected bool
	gen       uint64
}

// CacheMetrics is a point-in-time snapshot of plan-cache behaviour.
type CacheMetrics struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that had to plan from scratch.
	Misses uint64
	// Evictions counts entries dropped to respect the size bound.
	Evictions uint64
	// Entries is the current number of cached plans.
	Entries int
	// FeedbackHits counts hits on corrected entries — plans a previous
	// adaptive execution rebased and wrote back.
	FeedbackHits uint64
	// CorrectedEntries is the current number of corrected plans held.
	CorrectedEntries int
	// Generation is the statistics generation the cache is serving;
	// entries written under an older generation are treated as misses.
	Generation uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (m CacheMetrics) HitRate() float64 {
	total := m.Hits + m.Misses
	if total == 0 {
		return 0
	}
	return float64(m.Hits) / float64(total)
}

// planCache memoizes (translate + plan) results keyed on the
// normalized query plus every input planning depends on. It is safe
// for concurrent use; a racing double-miss builds the same plan twice
// and the second insert wins, which is correct because entries for one
// key are interchangeable.
type planCache struct {
	mu           sync.Mutex
	max          int
	entries      map[string]*cachedPlan
	order        []string // insertion order, for FIFO eviction
	gen          uint64   // statistics generation; bumped on reload
	hits         uint64
	misses       uint64
	evictions    uint64
	feedbackHits uint64
}

// newPlanCache returns a cache bounded to max entries. Callers wanting
// no cache keep a nil *planCache instead (the query path skips key
// construction entirely then); the max < 1 guard in put is defensive.
func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: make(map[string]*cachedPlan)}
}

// get looks a key up, counting the hit or miss. An entry written under
// an older statistics generation is dropped and reported as a miss —
// its plan (and, for corrected entries, its rebased observed
// cardinalities) describes data that no longer exists.
func (c *planCache) get(key string) (*cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && e.gen != c.gen {
		delete(c.entries, key)
		// Drop the key's FIFO slot too: leaving it would let a later
		// re-insert of the same key hold two slots, and eviction would
		// then pop the stale slot and delete the live entry early.
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		ok = false
	}
	if ok {
		c.hits++
		if e.corrected {
			c.feedbackHits++
		}
	} else {
		c.misses++
		e = nil
	}
	return e, ok
}

// put inserts an entry stamped with the current generation, evicting
// the oldest insertions beyond the bound. Re-inserting an existing key
// (the feedback write-back path) replaces the entry in place without
// consuming a new FIFO slot.
func (c *planCache) put(key string, e *cachedPlan) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e.gen = c.gen
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = e
	for len(c.entries) > c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		if _, ok := c.entries[oldest]; ok {
			delete(c.entries, oldest)
			c.evictions++
		}
	}
}

// bumpGeneration advances the statistics generation and purges the
// cache outright: every existing entry — static plans keyed on the old
// fingerprint, corrected plans whose rebased estimates are
// observations of the old data — is a guaranteed miss under the new
// generation, so dropping them eagerly frees the memory and keeps the
// metrics consistent. The generation check in get remains as a
// defensive backstop.
func (c *planCache) bumpGeneration() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.entries = make(map[string]*cachedPlan)
	c.order = nil
}

// metrics snapshots the counters.
func (c *planCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	corrected := 0
	for _, e := range c.entries {
		if e.corrected && e.gen == c.gen {
			corrected++
		}
	}
	return CacheMetrics{
		Hits:             c.hits,
		Misses:           c.misses,
		Evictions:        c.evictions,
		Entries:          len(c.entries),
		FeedbackHits:     c.feedbackHits,
		CorrectedEntries: corrected,
		Generation:       c.gen,
	}
}

// planCacheKey renders everything a plan depends on into a lookup key:
// the BGP patterns and filters in written order, the effective
// projection and DISTINCT flag, the strategy, planner mode and
// broadcast threshold, the loader-statistics fingerprint (so a
// statistics reload invalidates every previously cached plan), and the
// workload epoch (so a plan priced before a reduction was installed,
// evicted, or a scan cardinality first observed never outlives that
// state). Written pattern order is kept for every mode — the naive
// planner keys on it outright, and the heuristic/cost orderings break
// estimate ties by translation order, so two equivalent queries
// written differently may legitimately plan differently and must not
// share an entry. Extended queries additionally key on the full
// rendered query text: UNION branches, OPTIONAL groups, ORDER BY,
// GROUP BY/COUNT and LIMIT/OFFSET all shape the composed plan (Union,
// LeftJoin, Aggregate and TopK operators), and none of them appear in
// the mirror Patterns/Filters fields.
func planCacheKey(q *sparql.Query, mode plan.Mode, opts QueryOptions, statsFP, wlEpoch uint64) string {
	var sb strings.Builder
	sb.WriteString(mode.String())
	sb.WriteByte('|')
	sb.WriteString(opts.Strategy.String())
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatInt(opts.BroadcastThreshold, 10))
	sb.WriteByte('|')
	// The resolved re-plan trigger is part of the key: a corrected plan
	// written back under one bound must not serve executions running
	// with another (or with adaptivity disabled).
	sb.WriteString(strconv.FormatFloat(opts.replanThreshold(mode), 'g', -1, 64))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatUint(statsFP, 16))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatUint(wlEpoch, 10))
	sb.WriteByte('|')
	if q.Distinct {
		sb.WriteString("distinct")
	}
	sb.WriteByte('|')
	for i, v := range q.Projection() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(v)
	}
	sb.WriteByte('|')
	for _, tp := range q.Patterns {
		sb.WriteString(tp.String())
		sb.WriteByte('\n')
	}
	sb.WriteByte('|')
	for _, f := range q.Filters {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	if q.Extended() {
		sb.WriteString("|ext|")
		sb.WriteString(q.String())
	}
	return sb.String()
}
