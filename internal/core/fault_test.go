package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// faultTestQuery joins three patterns so the plan has several tasks to
// fail, straggle and corrupt.
const faultTestQuery = `
SELECT ?u ?v ?p WHERE {
  ?u <http://example.org/follows> ?v .
  ?v <http://example.org/likes> ?p .
  ?p <http://example.org/hasGenre> ?g .
}`

// faultRun executes the query with static plans (exact recovery
// accounting needs fault-shifted completions not to move adaptive
// pause points) and the given fault fields.
func faultRun(t *testing.T, s *Store, fp *cluster.FaultPlan, tweak func(*QueryOptions)) *Result {
	t.Helper()
	opts := QueryOptions{ReplanThreshold: -1, Faults: fp}
	if tweak != nil {
		tweak(&opts)
	}
	res, err := s.Query(sparql.MustParse(faultTestQuery), opts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	return res
}

func TestFaultInactivePlanStaysOnFastPath(t *testing.T) {
	s := testStore(t, false)
	clean := faultRun(t, s, nil, nil)
	inactive := faultRun(t, s, &cluster.FaultPlan{Seed: 5}, nil)
	if inactive.Resilience.Attempts != 0 {
		t.Errorf("inactive plan recorded %d attempts; resilience bookkeeping leaked onto the fast path", inactive.Resilience.Attempts)
	}
	if inactive.SimTime != clean.SimTime {
		t.Errorf("inactive plan SimTime %v != clean %v", inactive.SimTime, clean.SimTime)
	}
	if m := s.ResilienceMetrics(); m != (ResilienceMetrics{}) {
		t.Errorf("store resilience counters moved without faults: %+v", m)
	}
}

func TestFaultActiveButQuietKeepsSimTime(t *testing.T) {
	s := testStore(t, false)
	clean := faultRun(t, s, nil, nil)
	// Active plan (outage on a worker index the 3-worker cluster never
	// assigns) whose schedule hits nothing: checksums and attempt
	// bookkeeping run, but pricing must be untouched.
	quiet := faultRun(t, s, &cluster.FaultPlan{
		Seed:    5,
		Outages: []cluster.WorkerOutage{{Worker: 7, From: 0, Until: time.Hour}},
	}, nil)
	if quiet.Resilience.Attempts == 0 {
		t.Fatal("active plan recorded no attempts; resilience path did not run")
	}
	if quiet.Resilience.Recovered() {
		t.Fatalf("quiet plan reported recovery: %+v", quiet.Resilience)
	}
	if quiet.SimTime != clean.SimTime {
		t.Errorf("quiet fault run SimTime %v != clean %v", quiet.SimTime, clean.SimTime)
	}
	if got, want := renderRows(quiet), renderRows(clean); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("rows differ under quiet fault plan: %v vs %v", got, want)
	}
}

func TestFaultRetryRecoversWithBoundedOverhead(t *testing.T) {
	s := testStore(t, false)
	clean := faultRun(t, s, nil, nil)
	res := faultRun(t, s, &cluster.FaultPlan{Seed: 3, FailRate: 1, MaxFailuresPerTask: 2}, nil)

	if got, want := renderRows(res), renderRows(clean); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rows differ after retries: %v vs %v", got, want)
	}
	if res.Resilience.Retries == 0 {
		t.Fatal("FailRate=1 produced no retries")
	}
	overhead := res.SimTime - clean.SimTime
	if overhead <= 0 {
		t.Fatalf("retried run not slower: fault %v vs clean %v", res.SimTime, clean.SimTime)
	}
	if overhead > res.Resilience.RecoveryTime {
		t.Fatalf("SimTime overhead %v exceeds priced recovery %v", overhead, res.Resilience.RecoveryTime)
	}
	// Every task failed exactly twice, so EXPLAIN renders attempts=3 on
	// every operator.
	if !strings.Contains(res.Plan.String(), "attempts=3") {
		t.Errorf("executed plan does not render attempt counts:\n%s", res.Plan)
	}
}

func TestFaultExhaustionSurfacesTaskFailedError(t *testing.T) {
	s := testStore(t, false)
	fp := &cluster.FaultPlan{Seed: 3, FailRate: 1, MaxFailuresPerTask: 100}
	opts := QueryOptions{ReplanThreshold: -1, Faults: fp, MaxTaskAttempts: 3}
	_, err := s.Query(sparql.MustParse(faultTestQuery), opts)
	if err == nil {
		t.Fatal("exhausted attempts did not fail the query")
	}
	var tf *TaskFailedError
	if !errors.As(err, &tf) {
		t.Fatalf("error is %T (%v), want *TaskFailedError", err, err)
	}
	if len(tf.Attempts) != 3 {
		t.Errorf("attempt trace has %d entries, want 3: %v", len(tf.Attempts), tf.Attempts)
	}
	for _, a := range tf.Attempts {
		if a.Outcome != AttemptFailed {
			t.Errorf("attempt %d outcome %q, want %q", a.Attempt, a.Outcome, AttemptFailed)
		}
	}
	var abort QueryAbort
	if !errors.As(err, &abort) {
		t.Fatal("TaskFailedError does not satisfy QueryAbort")
	}
	if completed, total := abort.AbortProgress(); total == 0 || completed >= total {
		t.Errorf("AbortProgress = %d/%d, want partial progress", completed, total)
	}
	if s.ResilienceMetrics().TasksFailed == 0 {
		t.Error("store did not count the permanently failed task")
	}
}

func TestFaultWorkerOutageReschedulesAcrossWorkers(t *testing.T) {
	s := testStore(t, false)
	clean := faultRun(t, s, nil, nil)
	// Workers 0 and 1 dead for the whole run (of 3): attempt rotation
	// guarantees every task reaches worker 2 within three attempts.
	res := faultRun(t, s, &cluster.FaultPlan{Seed: 11, Outages: []cluster.WorkerOutage{
		{Worker: 0, From: 0, Until: time.Hour},
		{Worker: 1, From: 0, Until: time.Hour},
	}}, nil)
	if got, want := renderRows(res), renderRows(clean); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rows differ after outage recovery: %v vs %v", got, want)
	}
	if res.Resilience.Retries == 0 {
		t.Fatal("two dead workers of three produced no retries")
	}
	if overhead := res.SimTime - clean.SimTime; overhead > res.Resilience.RecoveryTime {
		t.Fatalf("SimTime overhead %v exceeds priced recovery %v", overhead, res.Resilience.RecoveryTime)
	}
}

func TestFaultCorruptExchangeRecomputesFromLineage(t *testing.T) {
	s := testStore(t, false)
	clean := faultRun(t, s, nil, nil)
	// Every delivery corrupted; with static plans the eager release
	// policy has already freed consumed inputs, so recovery must walk
	// lineage back to re-reading the store.
	res := faultRun(t, s, &cluster.FaultPlan{Seed: 9, CorruptRate: 1}, nil)
	if got, want := renderRows(res), renderRows(clean); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rows differ after lineage recompute: %v vs %v", got, want)
	}
	if res.Resilience.ChecksumFailures == 0 {
		t.Fatal("CorruptRate=1 detected no checksum failures")
	}
	if res.Resilience.LineageRecomputes < res.Resilience.ChecksumFailures {
		t.Fatalf("recomputes %d < checksum failures %d", res.Resilience.LineageRecomputes, res.Resilience.ChecksumFailures)
	}
	overhead := res.SimTime - clean.SimTime
	if overhead <= 0 {
		t.Fatal("corruption recovery cost nothing")
	}
	if overhead > res.Resilience.RecoveryTime {
		t.Fatalf("SimTime overhead %v exceeds priced recovery %v", overhead, res.Resilience.RecoveryTime)
	}
}

func TestFaultSpeculativeDuplicateBeatsStraggler(t *testing.T) {
	s := testStore(t, false)
	clean := faultRun(t, s, nil, nil)
	res := faultRun(t, s, &cluster.FaultPlan{Seed: 21, StragglerRate: 0.5, StragglerFactor: 8}, nil)
	if got, want := renderRows(res), renderRows(clean); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rows differ under stragglers: %v vs %v", got, want)
	}
	if res.Resilience.Stragglers == 0 {
		t.Fatal("StragglerRate=0.5 slowed nothing; pick another seed")
	}
	if res.Resilience.SpeculativeLaunched == 0 {
		t.Fatal("no speculative duplicate launched against an 8x straggler")
	}
	if res.Resilience.SpeculativeWins == 0 {
		t.Fatal("no speculative win; with factor 8 vs speculation at 2x a clean duplicate must finish first")
	}
	if overhead := res.SimTime - clean.SimTime; overhead > res.Resilience.RecoveryTime {
		t.Fatalf("SimTime overhead %v exceeds priced recovery %v", overhead, res.Resilience.RecoveryTime)
	}
}

func TestFaultDeterministicAcrossRuns(t *testing.T) {
	s := testStore(t, false)
	fp := &cluster.FaultPlan{Seed: 33, FailRate: 0.3, StragglerRate: 0.2, StragglerFactor: 6, CorruptRate: 0.2}
	a := faultRun(t, s, fp, nil)
	b := faultRun(t, s, fp, nil)
	if a.SimTime != b.SimTime {
		t.Errorf("same fault plan, different SimTime: %v vs %v", a.SimTime, b.SimTime)
	}
	if a.Resilience != b.Resilience {
		t.Errorf("same fault plan, different recovery record: %+v vs %+v", a.Resilience, b.Resilience)
	}
	if c := faultRun(t, s, &cluster.FaultPlan{Seed: 34, FailRate: 0.3, StragglerRate: 0.2, StragglerFactor: 6, CorruptRate: 0.2}, nil); c.Resilience == a.Resilience && c.SimTime == a.SimTime {
		t.Error("different seed reproduced the identical fault schedule")
	}
}

// TestFaultAdaptiveReplanRowsIdentical runs fault injection with
// adaptive re-planning ON (recovery delays may legally shift pause
// points, so only row identity is asserted, not a timing bound).
func TestFaultAdaptiveReplanRowsIdentical(t *testing.T) {
	s := testStore(t, false)
	q := sparql.MustParse(faultTestQuery)
	clean, err := s.Query(q, QueryOptions{})
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	fp := &cluster.FaultPlan{Seed: 17, FailRate: 0.4, StragglerRate: 0.3, CorruptRate: 0.3}
	res, err := s.Query(q, QueryOptions{Faults: fp})
	if err != nil {
		t.Fatalf("fault: %v", err)
	}
	if got, want := renderRows(res), renderRows(clean); strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("adaptive rows differ under faults: %v vs %v", got, want)
	}
}

// TestFaultConcurrentQueriesRace is the 16-goroutine -race gate for the
// resilience machinery: concurrent queries under an active FaultPlan
// share one store and its feedback plan cache, every result must be
// byte-identical to the sequential baseline with deterministic SimTime,
// and no intermediate relations may be stranded (memory high-water
// check after the storm).
func TestFaultConcurrentQueriesRace(t *testing.T) {
	g := watdiv.MustGenerate(watdiv.Config{Scale: 100, Seed: 7})
	c := cluster.MustNew(cluster.Config{Workers: 4, DefaultPartitions: 8})
	s, err := Load(g, Options{Cluster: c})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	queries := watdiv.BasicQuerySet()[:8]
	fp := &cluster.FaultPlan{Seed: 42, FailRate: 0.15, StragglerRate: 0.1, StragglerFactor: 5, CorruptRate: 0.1}
	opts := func() QueryOptions { return QueryOptions{Faults: fp} }

	render := func(res *Result) string {
		var sb strings.Builder
		for _, row := range res.SortedRows() {
			for i, term := range row {
				if i > 0 {
					sb.WriteByte('\t')
				}
				sb.WriteString(term.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}

	// Sequential baseline at the feedback-cache steady state, under the
	// same fault plan the storm will use.
	want := make([]string, len(queries))
	wantSim := make([]int64, len(queries))
	for i, q := range queries {
		var prev int64 = -1
		for r := 0; r < 6; r++ {
			res, err := s.Query(q.Parsed, opts())
			if err != nil {
				t.Fatalf("%s sequential: %v", q.Name, err)
			}
			want[i] = render(res)
			wantSim[i] = int64(res.SimTime)
			if wantSim[i] == prev {
				break
			}
			prev = wantSim[i]
		}
		// Cross-check: rows under faults must equal fault-free rows.
		clean, err := s.Query(q.Parsed, QueryOptions{})
		if err != nil {
			t.Fatalf("%s clean: %v", q.Name, err)
		}
		if render(clean) != want[i] {
			t.Fatalf("%s: fault rows differ from fault-free rows", q.Name)
		}
	}

	var base runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&base)

	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (gi + r) % len(queries)
				res, err := s.Query(queries[qi].Parsed, opts())
				if err != nil {
					errs <- fmt.Errorf("%s: %w", queries[qi].Name, err)
					return
				}
				if got := render(res); got != want[qi] {
					errs <- fmt.Errorf("%s: concurrent fault rows differ from sequential", queries[qi].Name)
					return
				}
				if int64(res.SimTime) != wantSim[qi] {
					errs <- fmt.Errorf("%s: concurrent SimTime %v != sequential %v (nondeterministic recovery)",
						queries[qi].Name, res.SimTime, time.Duration(wantSim[qi]))
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No stranded intermediates: after the storm and a GC, the heap may
	// not have grown past the baseline by more than a modest allowance
	// (the store itself dwarfs any leaked relation set).
	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	const allowance = 64 << 20
	if after.HeapAlloc > base.HeapAlloc+allowance {
		t.Errorf("heap high-water grew %d bytes (from %d to %d); intermediate relations stranded?",
			after.HeapAlloc-base.HeapAlloc, base.HeapAlloc, after.HeapAlloc)
	}
}
