package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/sparql"
)

// Resilience defaults, applied when the corresponding QueryOptions
// knob is zero.
const (
	// DefaultMaxTaskAttempts bounds execution attempts per task under an
	// active fault plan; exhausting it aborts the query with a
	// *TaskFailedError.
	DefaultMaxTaskAttempts = 4
	// DefaultRetryBackoff is the base virtual delay charged between a
	// failed attempt and its retry; it doubles per failure.
	DefaultRetryBackoff = 50 * time.Millisecond
	// MaxRetryBackoff caps the exponential retry backoff.
	MaxRetryBackoff = 2 * time.Second
	// DefaultSpeculativeFactor is the straggler-detection multiple: an
	// attempt running past this multiple of the median sibling time gets
	// a speculative duplicate launched against it.
	DefaultSpeculativeFactor = 2.0
)

// maxTaskAttempts resolves the options' per-task attempt budget.
func (o QueryOptions) maxTaskAttempts() int {
	if o.MaxTaskAttempts > 0 {
		return o.MaxTaskAttempts
	}
	return DefaultMaxTaskAttempts
}

// retryBackoffBase resolves the options' base retry backoff.
func (o QueryOptions) retryBackoffBase() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return DefaultRetryBackoff
}

// speculativeFactor resolves the options' straggler-detection multiple;
// negative disables speculation.
func (o QueryOptions) speculativeFactor() float64 {
	if o.SpeculativeFactor < 0 {
		return 0
	}
	if o.SpeculativeFactor == 0 {
		return DefaultSpeculativeFactor
	}
	return o.SpeculativeFactor
}

// queryFaultSalt hashes the query's written patterns into a per-query
// salt for fault-plan task keys: stable across runs and across
// feedback-cache corrections (it reads the query text, not the plan),
// but different between queries, so a fault schedule decorrelates
// across a workload even though plan node IDs are small and shared.
func queryFaultSalt(q *sparql.Query) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, tp := range q.Patterns {
		for _, b := range []byte(tp.String()) {
			h ^= uint64(b)
			h *= prime
		}
		h ^= '\n'
		h *= prime
	}
	return h
}

// retryDelay is the capped exponential virtual backoff before retrying
// a task whose nth attempt (1-based) just failed.
func retryDelay(base time.Duration, failedAttempt int) time.Duration {
	d := base << (failedAttempt - 1)
	if d > MaxRetryBackoff || d <= 0 {
		return MaxRetryBackoff
	}
	return d
}

// scaleDuration multiplies a virtual duration by a straggler or
// speculation factor.
func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// QueryAbort is the shared face of errors that abort a query
// mid-execution — context cancellation (*CancelError) and fault
// exhaustion (*TaskFailedError) — so servers can report partial
// progress uniformly while still distinguishing the two by type
// (504 vs 500, queries.timeouts vs queries.failed).
type QueryAbort interface {
	error
	// AbortProgress reports plan tasks completed vs scheduled when the
	// query aborted.
	AbortProgress() (completed, total int)
}

// Attempt outcomes recorded in a task's attempt trace.
const (
	// AttemptOK is a clean successful attempt.
	AttemptOK = "ok"
	// AttemptFailed is an injected outright attempt failure.
	AttemptFailed = "failed"
	// AttemptOutage is an attempt lost to a worker-outage window.
	AttemptOutage = "worker-outage"
	// AttemptStraggler is a successful but slowed attempt that still won
	// (no speculative duplicate, or the duplicate was slower).
	AttemptStraggler = "straggler"
	// AttemptStragglerLost is a straggling attempt beaten by its
	// speculative duplicate.
	AttemptStragglerLost = "straggler-lost"
	// AttemptSpeculativeWin is a speculative duplicate that finished
	// before the straggler it was launched against.
	AttemptSpeculativeWin = "speculative-win"
)

// TaskAttempt is one entry of a task's attempt trace: where the attempt
// ran on the virtual timeline and how it ended.
type TaskAttempt struct {
	// Attempt is the 1-based attempt number (a speculative duplicate
	// shares its straggler's number).
	Attempt int
	// Worker is the simulated worker the attempt was placed on.
	Worker int
	// Start and End bound the attempt on the virtual timeline.
	Start, End time.Duration
	// Outcome is one of the Attempt* constants.
	Outcome string
	// Speculative marks a duplicate launched by the straggler detector.
	Speculative bool
}

// String renders one attempt for the error trace.
func (a TaskAttempt) String() string {
	kind := ""
	if a.Speculative {
		kind = " (speculative)"
	}
	return fmt.Sprintf("attempt %d%s on worker %d [%v..%v]: %s",
		a.Attempt, kind, a.Worker, a.Start.Round(time.Microsecond), a.End.Round(time.Microsecond), a.Outcome)
}

// TaskFailedError reports a task that exhausted its attempt budget
// under fault injection — the permanent-failure abort, carrying the
// full attempt trace for diagnosis. prost-serve returns it as a 500
// (distinct from the 504 a *CancelError produces).
type TaskFailedError struct {
	// Task describes the failed plan operator.
	Task string
	// Attempts is the task's full attempt trace, in virtual-time order.
	Attempts []TaskAttempt
	// CompletedTasks and TotalTasks count plan operators executed vs
	// scheduled when the query aborted.
	CompletedTasks, TotalTasks int
	// Cause is the underlying failure for non-injected aborts — a dead
	// shard process surfaces its *wire.ShardError here. Nil for
	// simulated fault-injection aborts.
	Cause error
}

// Unwrap exposes the underlying failure (e.g. a *wire.ShardError) to
// errors.Is/As.
func (e *TaskFailedError) Unwrap() error { return e.Cause }

// Error implements error.
func (e *TaskFailedError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core: task %s failed permanently after %d attempts (%d/%d plan tasks completed)",
		e.Task, len(e.Attempts), e.CompletedTasks, e.TotalTasks)
	for _, a := range e.Attempts {
		sb.WriteString("; ")
		sb.WriteString(a.String())
	}
	if e.Cause != nil {
		fmt.Fprintf(&sb, "; cause: %v", e.Cause)
	}
	return sb.String()
}

// AbortProgress implements QueryAbort.
func (e *TaskFailedError) AbortProgress() (completed, total int) {
	return e.CompletedTasks, e.TotalTasks
}

// AbortProgress implements QueryAbort.
func (e *CancelError) AbortProgress() (completed, total int) {
	return e.CompletedTasks, e.TotalTasks
}

// Both abort types satisfy the shared interface.
var (
	_ QueryAbort = (*CancelError)(nil)
	_ QueryAbort = (*TaskFailedError)(nil)
)

// resilienceRecorder accumulates one execution's recovery bookkeeping.
// Only fault-injected executions touch it; the fault-free path never
// reads or writes these fields.
type resilienceRecorder struct {
	attempts   atomic.Int64
	retries    atomic.Int64
	stragglers atomic.Int64
	specLaunch atomic.Int64
	specWins   atomic.Int64
	checksums  atomic.Int64
	recomputes atomic.Int64
	taskFailed atomic.Int64
	recoveryNS atomic.Int64 // priced recovery, nanoseconds
}

// addRecovery charges priced recovery time (failed-attempt work,
// backoff, straggler delay beyond the clean time, lineage recomputes)
// into the execution's recovery total.
func (r *resilienceRecorder) addRecovery(d time.Duration) {
	if d > 0 {
		r.recoveryNS.Add(int64(d))
	}
}

// stats snapshots the recorder into the Result's view.
func (r *resilienceRecorder) stats() ResilienceStats {
	return ResilienceStats{
		Attempts:            r.attempts.Load(),
		Retries:             r.retries.Load(),
		Stragglers:          r.stragglers.Load(),
		SpeculativeLaunched: r.specLaunch.Load(),
		SpeculativeWins:     r.specWins.Load(),
		ChecksumFailures:    r.checksums.Load(),
		LineageRecomputes:   r.recomputes.Load(),
		RecoveryTime:        time.Duration(r.recoveryNS.Load()),
	}
}

// ResilienceStats is one query's recovery record under fault injection.
// The zero value means a fault-free execution.
type ResilienceStats struct {
	// Attempts counts every task execution attempt, including clean
	// first tries and speculative duplicates.
	Attempts int64
	// Retries counts re-executions after a failed attempt.
	Retries int64
	// Stragglers counts attempts the fault plan slowed down.
	Stragglers int64
	// SpeculativeLaunched and SpeculativeWins count straggler-triggered
	// duplicate attempts and how many finished first.
	SpeculativeLaunched int64
	SpeculativeWins     int64
	// ChecksumFailures counts corrupted exchange payloads detected by
	// the consumer-side relation checksum.
	ChecksumFailures int64
	// LineageRecomputes counts tasks re-executed from lineage to restore
	// a corrupted or freed input.
	LineageRecomputes int64
	// RecoveryTime is the total priced recovery charged into the virtual
	// clock: failed-attempt work, retry backoff, straggler delay beyond
	// the clean time and lineage recomputation. SimTime exceeds the
	// fault-free run by at most this much (recovery on parallel branches
	// overlaps).
	RecoveryTime time.Duration
}

// Recovered reports whether the execution hit any injected fault.
func (r ResilienceStats) Recovered() bool {
	return r.Retries > 0 || r.Stragglers > 0 || r.ChecksumFailures > 0 ||
		r.SpeculativeLaunched > 0 || r.LineageRecomputes > 0
}

// String renders the recovery record for EXPLAIN output; "" when the
// execution saw no fault activity at all.
func (r ResilienceStats) String() string {
	if r.Attempts == 0 {
		return ""
	}
	return fmt.Sprintf(
		"resilience: attempts=%d retries=%d stragglers=%d speculative=%d/%d checksum-failures=%d lineage-recomputes=%d recovery=%v\n",
		r.Attempts, r.Retries, r.Stragglers, r.SpeculativeWins, r.SpeculativeLaunched,
		r.ChecksumFailures, r.LineageRecomputes, r.RecoveryTime.Round(time.Microsecond))
}

// resilienceCounters aggregates recovery activity across a store's
// queries, the /stats resilience block.
type resilienceCounters struct {
	attempts   atomic.Uint64
	retries    atomic.Uint64
	stragglers atomic.Uint64
	specLaunch atomic.Uint64
	specWins   atomic.Uint64
	checksums  atomic.Uint64
	recomputes atomic.Uint64
	taskFailed atomic.Uint64
}

// absorb folds one execution's recorder into the store totals.
func (c *resilienceCounters) absorb(r *resilienceRecorder) {
	c.attempts.Add(uint64(r.attempts.Load()))
	c.retries.Add(uint64(r.retries.Load()))
	c.stragglers.Add(uint64(r.stragglers.Load()))
	c.specLaunch.Add(uint64(r.specLaunch.Load()))
	c.specWins.Add(uint64(r.specWins.Load()))
	c.checksums.Add(uint64(r.checksums.Load()))
	c.recomputes.Add(uint64(r.recomputes.Load()))
	c.taskFailed.Add(uint64(r.taskFailed.Load()))
}

// ResilienceMetrics snapshots the store's cross-query recovery
// counters.
type ResilienceMetrics struct {
	// Attempts, Retries, Stragglers, SpeculativeLaunched,
	// SpeculativeWins, ChecksumFailures and LineageRecomputes aggregate
	// the per-query ResilienceStats fields across executions.
	Attempts            uint64
	Retries             uint64
	Stragglers          uint64
	SpeculativeLaunched uint64
	SpeculativeWins     uint64
	ChecksumFailures    uint64
	LineageRecomputes   uint64
	// TasksFailed counts tasks that exhausted their attempt budget and
	// aborted their query with a *TaskFailedError.
	TasksFailed uint64
}

// ResilienceMetrics returns the recovery counters accumulated across
// queries (all zero unless fault injection ran).
func (s *Store) ResilienceMetrics() ResilienceMetrics {
	return ResilienceMetrics{
		Attempts:            s.resilience.attempts.Load(),
		Retries:             s.resilience.retries.Load(),
		Stragglers:          s.resilience.stragglers.Load(),
		SpeculativeLaunched: s.resilience.specLaunch.Load(),
		SpeculativeWins:     s.resilience.specWins.Load(),
		ChecksumFailures:    s.resilience.checksums.Load(),
		LineageRecomputes:   s.resilience.recomputes.Load(),
		TasksFailed:         s.resilience.taskFailed.Load(),
	}
}
