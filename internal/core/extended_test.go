package core

// Reference-checked property tests for the extended SPARQL surface
// (OPTIONAL, UNION, ORDER BY, GROUP BY/COUNT, LIMIT/OFFSET). A naive
// in-test evaluator computes each query's answer directly over the
// generated triples — nested-loop joins at dictionary-ID level — and
// every (planner mode × storage strategy × executor) combination must
// return it byte-identically. For ordered or limited queries the
// comparison is positional: the deterministic top-K total order is
// part of the contract, not just the row set.

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/watdiv"
)

// refBinding maps variable names to dictionary IDs; absent = unbound.
type refBinding map[string]rdf.ID

// refEval evaluates q naively over the graph's triples and returns the
// rendered result: one line per row, terms tab-joined, in the
// deterministic top-K order when the query sorts or limits.
func refEval(t *testing.T, s *Store, g *rdf.Graph, q *sparql.Query) string {
	t.Helper()
	// A triple store is a set: dedup the generated triples before
	// evaluation so multiset join arithmetic matches the loaded tables.
	seen := make(map[rdf.EncodedTriple]bool, g.Len())
	triples := make([]rdf.EncodedTriple, 0, g.Len())
	for _, tr := range g.Triples() {
		et, ok := refEncodeTriple(s, tr)
		if !ok {
			t.Fatalf("triple %v %v %v not in dictionary", tr.S, tr.P, tr.O)
		}
		if !seen[et] {
			seen[et] = true
			triples = append(triples, et)
		}
	}

	// WHERE clause: per branch, BGP then left-join each OPTIONAL group.
	var rows []refBinding
	for _, br := range q.BranchGroups() {
		if len(br.Filters) > 0 {
			t.Fatalf("reference evaluator does not support FILTER")
		}
		branch := refEvalBGP(triples, s, br.Patterns)
		for _, og := range br.Optionals {
			if len(og.Filters) > 0 {
				t.Fatalf("reference evaluator does not support FILTER")
			}
			branch = refLeftJoin(branch, refEvalBGP(triples, s, og.Patterns))
		}
		rows = append(rows, branch...)
	}

	proj := q.Projection()
	countAlias := q.CountAliases()
	var out []engine.Row
	if len(q.Counts) > 0 {
		out = refAggregate(rows, q, proj)
	} else {
		for _, b := range rows {
			r := make(engine.Row, len(proj))
			for i, v := range proj {
				r[i] = b[v] // absent -> NullID (unbound OPTIONAL)
			}
			out = append(out, r)
		}
	}
	if q.Distinct {
		out = refDistinct(out)
	}
	if q.Limit >= 0 || q.Offset > 0 || len(q.Order) > 0 {
		sort.SliceStable(out, refLess(s, q, proj, out))
		if q.Offset > 0 {
			if q.Offset >= len(out) {
				out = nil
			} else {
				out = out[q.Offset:]
			}
		}
		if q.Limit >= 0 && q.Limit < len(out) {
			out = out[:q.Limit]
		}
	}

	var sb strings.Builder
	for _, r := range out {
		for i, id := range r {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(s.decodeCell(id, countAlias[proj[i]]).String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func refEncodeTriple(s *Store, tr rdf.Triple) (rdf.EncodedTriple, bool) {
	si, ok1 := s.dict.Lookup(tr.S)
	pi, ok2 := s.dict.Lookup(tr.P)
	oi, ok3 := s.dict.Lookup(tr.O)
	return rdf.EncodedTriple{S: si, P: pi, O: oi}, ok1 && ok2 && ok3
}

// refEvalBGP joins the patterns by nested loops, left to right.
func refEvalBGP(triples []rdf.EncodedTriple, s *Store, pats []sparql.TriplePattern) []refBinding {
	rows := []refBinding{{}}
	for _, tp := range pats {
		var next []refBinding
		for _, b := range rows {
			for _, tr := range triples {
				if nb, ok := refExtend(s, b, tp, tr); ok {
					next = append(next, nb)
				}
			}
		}
		rows = next
	}
	return rows
}

// refExtend matches one triple against one pattern under a binding,
// returning the extended binding on success.
func refExtend(s *Store, b refBinding, tp sparql.TriplePattern, tr rdf.EncodedTriple) (refBinding, bool) {
	pos := [3]struct {
		pt sparql.PatternTerm
		id rdf.ID
	}{{tp.S, tr.S}, {tp.P, tr.P}, {tp.O, tr.O}}
	nb := b
	copied := false
	for _, p := range pos {
		if !p.pt.IsVar() {
			want, ok := s.dict.Lookup(p.pt.Term)
			if !ok || want != p.id {
				return nil, false
			}
			continue
		}
		if have, ok := nb[p.pt.Var]; ok {
			if have != p.id {
				return nil, false
			}
			continue
		}
		if !copied {
			m := make(refBinding, len(nb)+1)
			for k, v := range nb {
				m[k] = v
			}
			nb, copied = m, true
		}
		nb[p.pt.Var] = p.id
	}
	return nb, true
}

// refLeftJoin implements OPTIONAL: each base row joins with every
// compatible optional row, or survives alone when none matches.
func refLeftJoin(base, opt []refBinding) []refBinding {
	var out []refBinding
	for _, b := range base {
		matched := false
		for _, o := range opt {
			if nb, ok := refMerge(b, o); ok {
				out = append(out, nb)
				matched = true
			}
		}
		if !matched {
			out = append(out, b)
		}
	}
	return out
}

// refMerge unions two bindings when their shared variables agree.
func refMerge(a, b refBinding) (refBinding, bool) {
	for k, v := range b {
		if av, ok := a[k]; ok && av != v {
			return nil, false
		}
	}
	m := make(refBinding, len(a)+len(b))
	for k, v := range a {
		m[k] = v
	}
	for k, v := range b {
		m[k] = v
	}
	return m, true
}

// refAggregate groups rows by the GROUP BY variables and emits one row
// per group in projection order, counts as raw rdf.ID values.
func refAggregate(rows []refBinding, q *sparql.Query, proj []string) []engine.Row {
	type group struct {
		vals   refBinding
		counts []int64
	}
	groups := map[string]*group{}
	var order []string
	for _, b := range rows {
		key := make(engine.Row, len(q.GroupBy))
		for i, v := range q.GroupBy {
			key[i] = b[v]
		}
		k := refRowKey(key)
		gr, ok := groups[k]
		if !ok {
			gr = &group{vals: b, counts: make([]int64, len(q.Counts))}
			groups[k] = gr
			order = append(order, k)
		}
		for ci, c := range q.Counts {
			if c.Var == "" || b[c.Var] != rdf.NullID {
				gr.counts[ci]++
			}
		}
	}
	countIdx := map[string]int{}
	for i, c := range q.Counts {
		countIdx[c.Alias] = i
	}
	out := make([]engine.Row, 0, len(groups))
	for _, k := range order {
		gr := groups[k]
		r := make(engine.Row, len(proj))
		for i, v := range proj {
			if ci, ok := countIdx[v]; ok {
				r[i] = rdf.ID(gr.counts[ci])
			} else {
				r[i] = gr.vals[v]
			}
		}
		out = append(out, r)
	}
	return out
}

// refDistinct removes duplicate rows, keeping first occurrences.
func refDistinct(rows []engine.Row) []engine.Row {
	seen := map[string]bool{}
	var out []engine.Row
	for _, r := range rows {
		k := refRowKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// refRowKey packs a row into a collision-free map key (4 bytes LE per
// cell, the same packing the executors' dedupers use).
func refRowKey(r engine.Row) string {
	b := make([]byte, 0, 4*len(r))
	for _, id := range r {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// refLess mirrors the executors' top-K comparator: ORDER BY keys first
// (count columns numerically, unbound before bound, terms by
// CompareTermIDs), then the full-row dictionary-ID tie-break. It
// returns a sort.SliceStable less over rows.
func refLess(s *Store, q *sparql.Query, proj []string, rows []engine.Row) func(i, j int) bool {
	countAlias := q.CountAliases()
	type key struct {
		col   int
		desc  bool
		count bool
	}
	var keys []key
	for _, k := range q.Order {
		for i, v := range proj {
			if v == k.Var {
				keys = append(keys, key{col: i, desc: k.Desc, count: countAlias[v]})
				break
			}
		}
	}
	return func(i, j int) bool {
		a, b := rows[i], rows[j]
		for _, k := range keys {
			c := s.compareCell(a[k.col], b[k.col], k.count)
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	}
}

// renderRows renders result rows positionally (no re-sorting).
func renderInOrder(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for i, term := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(term.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// sortLines sorts a rendered result's lines for set comparison.
func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestExtendedByteIdenticalOnWatDiv is the extended-surface acceptance
// property: every E-family query, across all four planner modes, all
// three storage strategies and both executors, returns exactly the
// naive reference answer — positionally for ordered/limited queries,
// as a set otherwise.
func TestExtendedByteIdenticalOnWatDiv(t *testing.T) {
	s := watdivStreamStore(t)
	for _, q := range watdiv.ExtendedQuerySet() {
		exact := q.Parsed.Limit >= 0 || q.Parsed.Offset > 0 || len(q.Parsed.Order) > 0
		want := refEval(t, s, streamGraph, q.Parsed)
		if want == "" {
			t.Fatalf("%s: reference evaluation returned no rows; query is vacuous at this scale", q.Name)
		}
		if !exact {
			want = sortLines(want)
		}
		for _, strat := range streamStrategies {
			for _, mode := range streamPlanners {
				for _, streaming := range []bool{false, true} {
					opts := QueryOptions{Strategy: strat, Planner: mode, ReplanThreshold: -1, Streaming: streaming}
					res, err := s.Query(q.Parsed, opts)
					if err != nil {
						t.Fatalf("%s/%s/%v/streaming=%v: %v", q.Name, strat, mode, streaming, err)
					}
					if streaming && !res.Streamed {
						t.Fatalf("%s/%s/%v: streaming fell back to the materialized path", q.Name, strat, mode)
					}
					if len(q.Parsed.Order) > 0 && !res.Ordered {
						t.Errorf("%s/%s/%v/streaming=%v: ORDER BY result not flagged Ordered", q.Name, strat, mode, streaming)
					}
					got := renderInOrder(res)
					if !exact {
						got = sortLines(got)
					}
					if got != want {
						t.Errorf("%s/%s/%v/streaming=%v: rows differ from reference\ngot:\n%s\nwant:\n%s",
							q.Name, strat, mode, streaming, got, want)
					}
				}
			}
		}
	}
}

// TestLimitDeterministicAcrossConfigs pins satellite behaviour: a
// LIMIT without ORDER BY is not "any K rows" — the dictionary-ID total
// order makes the selected rows and their order byte-identical across
// every planner mode, storage strategy and both executors.
func TestLimitDeterministicAcrossConfigs(t *testing.T) {
	s := watdivStreamStore(t)
	q := sparql.MustParse(`SELECT ?u ?f WHERE {
		?u <http://db.uwaterloo.ca/~galuc/wsdbm/follows> ?f .
		?f <http://db.uwaterloo.ca/~galuc/wsdbm/likes> ?p .
	} LIMIT 7 OFFSET 3`)
	var want string
	first := true
	for _, strat := range streamStrategies {
		for _, mode := range streamPlanners {
			for _, streaming := range []bool{false, true} {
				res, err := s.Query(q, QueryOptions{Strategy: strat, Planner: mode, ReplanThreshold: -1, Streaming: streaming})
				if err != nil {
					t.Fatalf("%s/%v/streaming=%v: %v", strat, mode, streaming, err)
				}
				if len(res.Rows) != 7 {
					t.Fatalf("%s/%v/streaming=%v: got %d rows, want 7", strat, mode, streaming, len(res.Rows))
				}
				got := renderInOrder(res)
				if first {
					want, first = got, false
				} else if got != want {
					t.Errorf("%s/%v/streaming=%v: limited rows differ\ngot:\n%s\nwant:\n%s",
						strat, mode, streaming, got, want)
				}
			}
		}
	}
}

// TestStreamingTopKBoundsPeakMemory is the memory acceptance check for
// the fused top-K: ORDER BY + LIMIT keeps a bounded buffer at the
// barrier, so its simulated peak intermediate footprint must be
// strictly below the unlimited ORDER BY form of the same query, which
// has to retain every row.
func TestStreamingTopKBoundsPeakMemory(t *testing.T) {
	s := watdivStreamStore(t)
	base := `SELECT ?u ?f WHERE {
		?u <http://db.uwaterloo.ca/~galuc/wsdbm/follows> ?f .
		?f <http://db.uwaterloo.ca/~galuc/wsdbm/likes> ?p .
	} ORDER BY ?u ?f`
	limited := sparql.MustParse(base + " LIMIT 10")
	unlimited := sparql.MustParse(base)
	opts := QueryOptions{Strategy: StrategyMixed, Streaming: true, ReplanThreshold: -1}
	lres, err := s.Query(limited, opts)
	if err != nil {
		t.Fatalf("limited: %v", err)
	}
	ures, err := s.Query(unlimited, opts)
	if err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	if !lres.Streamed || !ures.Streamed {
		t.Fatalf("queries fell back to materialized (limited=%v unlimited=%v)", lres.Streamed, ures.Streamed)
	}
	if len(ures.Rows) <= len(lres.Rows) {
		t.Fatalf("unlimited form returned %d rows, need more than the limit (%d) for a meaningful comparison",
			len(ures.Rows), len(lres.Rows))
	}
	if lres.PeakMemBytes <= 0 || ures.PeakMemBytes <= 0 {
		t.Fatalf("peak bytes not tracked (limited=%d unlimited=%d)", lres.PeakMemBytes, ures.PeakMemBytes)
	}
	if lres.PeakMemBytes >= ures.PeakMemBytes {
		t.Errorf("LIMIT top-K peak %d B not strictly below unlimited ORDER BY peak %d B",
			lres.PeakMemBytes, ures.PeakMemBytes)
	}
}

// BenchmarkStreamingTopK tracks the fused top-K path: E3 (ORDER BY
// DESC rating, LIMIT 10) under the streaming executor.
func BenchmarkStreamingTopK(b *testing.B) {
	s := watdivStreamStore(b)
	q := mustQueryByName(b, "E3")
	opts := QueryOptions{Strategy: StrategyMixed, Streaming: true, ReplanThreshold: -1}
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.Query(q.Parsed, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SimTime.Microseconds())/1e3, "sim-ms")
	b.ReportMetric(float64(res.PeakMemBytes), "peak-B")
}
