package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/plan"
)

// execTask is one schedulable unit of a query: a plan operator plus
// its input dependencies. Tasks form a tree mirroring the plan; a task
// becomes runnable when every dependency has produced its relation.
type execTask struct {
	node   *plan.Node
	deps   []*execTask
	parent *execTask
	// pending counts unfinished dependencies; the task is enqueued when
	// it reaches zero.
	pending int32

	// rel is the task's output relation, nil until the task ran (or
	// forever, when execution failed before it could run).
	rel *engine.Relation
	// done is the task's virtual completion time: max over dependency
	// completions plus the task's own stage time.
	done time.Duration
	// stages is the task's priced stage trace.
	stages []cluster.StageRecord
}

// scheduler executes one physical plan as a task DAG on a bounded
// worker pool. Independent subtrees (the arms of a bushy plan, or the
// scans of any plan) run concurrently, both for real — goroutines
// execute the partition work — and on the virtual clock, where a
// task's start is the maximum of its dependencies' completion times,
// so the query's simulated time is the critical path through the DAG
// rather than the sum of its stages.
//
// All mutable state is per-execution: each task gets its own
// engine.Exec and cluster.Clock, and actual cardinalities are recorded
// into a per-execution plan.Observation, never onto the (possibly
// cached and shared) plan nodes. This is what makes Store.Query safe
// for concurrent callers.
type scheduler struct {
	store   *Store
	nodes   []*Node
	filters []compiledFilter
	opts    QueryOptions
	obs     *plan.Observation
	// startCost is the per-query planning charge; every leaf task
	// starts after it.
	startCost time.Duration

	failed  atomic.Bool
	errOnce sync.Once
	err     error
}

// buildTasks flattens the plan into tasks, children before parents.
func buildTasks(root *plan.Node) (rootTask *execTask, all []*execTask) {
	var walk func(n *plan.Node, parent *execTask) *execTask
	walk = func(n *plan.Node, parent *execTask) *execTask {
		t := &execTask{node: n, parent: parent, pending: int32(len(n.Children))}
		for _, c := range n.Children {
			t.deps = append(t.deps, walk(c, t))
		}
		all = append(all, t)
		return t
	}
	rootTask = walk(root, nil)
	return rootTask, all
}

// execute runs the DAG and returns the root task.
func (sc *scheduler) execute(pl *plan.Plan) (*execTask, error) {
	rootTask, tasks := buildTasks(pl.Root)

	par := sc.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(tasks) {
		par = len(tasks)
	}

	// The ready queue is buffered to the task count so completions can
	// enqueue parents without blocking.
	ready := make(chan *execTask, len(tasks))
	for _, t := range tasks {
		if t.pending == 0 {
			ready <- t
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for i := 0; i < par; i++ {
		go func() {
			for t := range ready {
				sc.run(t)
				if p := t.parent; p != nil && atomic.AddInt32(&p.pending, -1) == 0 {
					ready <- p
				}
				wg.Done()
			}
		}()
	}
	wg.Wait()
	close(ready)

	if sc.err != nil {
		return nil, sc.err
	}
	return rootTask, nil
}

// fail records the first error and stops further work.
func (sc *scheduler) fail(err error) {
	sc.errOnce.Do(func() { sc.err = err })
	sc.failed.Store(true)
}

// run executes one task against its own virtual clock and records its
// observed cardinality and completion time. Tasks scheduled after a
// failure complete immediately without doing work, so the DAG drains.
func (sc *scheduler) run(t *execTask) {
	if sc.failed.Load() {
		return
	}
	clk := cluster.NewClock()
	e := engine.NewExec(sc.store.cluster, clk)
	// The per-query planning cost is charged once at the scheduler
	// level, not per task.
	e.StartCost = 0
	e.BroadcastThreshold = sc.opts.BroadcastThreshold

	rel, err := sc.execOp(e, t)
	if err != nil {
		sc.fail(err)
		return
	}
	t.rel = rel
	sc.obs.Record(t.node, int64(rel.NumRows()))
	t.stages = clk.Stages()
	start := sc.startCost
	for _, d := range t.deps {
		if d.done > start {
			start = d.done
		}
		// The dependency's relation has been consumed; release it so
		// large intermediates do not outlive the join that read them.
		d.rel = nil
	}
	t.done = start + clk.Elapsed()
}

// execOp evaluates one plan operator over its dependencies' relations.
func (sc *scheduler) execOp(e *engine.Exec, t *execTask) (*engine.Relation, error) {
	n := t.node
	switch n.Op {
	case plan.OpScan:
		rel, err := sc.store.execNode(e, sc.nodes[n.Leaf], pickFilters(sc.filters, n.Filters))
		if err != nil {
			return nil, fmt.Errorf("core: executing %s: %w", sc.nodes[n.Leaf].Label(), err)
		}
		return rel, nil
	case plan.OpFilter:
		return applyResidualFilters(e, t.deps[0].rel, pickFilters(sc.filters, n.Filters))
	case plan.OpJoin:
		rel, err := e.JoinKeep(t.deps[0].rel, t.deps[1].rel, n.Children[1].Label, joinStrategy(n.Method), n.Keep)
		if err != nil {
			return nil, fmt.Errorf("core: joining %s: %w", n.Children[1].Label, err)
		}
		return rel, nil
	case plan.OpProject:
		return e.Project(t.deps[0].rel, n.Cols)
	case plan.OpDistinct:
		return e.Distinct(t.deps[0].rel)
	default:
		return nil, fmt.Errorf("core: unknown plan operator %v", n.Op)
	}
}

// absorbTrace merges the tasks' stage records into the result clock in
// deterministic plan preorder (independent of the real interleaving
// the pool happened to run), so EXPLAIN traces are stable.
func absorbTrace(clock *cluster.Clock, rootTask *execTask) {
	var walk func(t *execTask)
	walk = func(t *execTask) {
		for _, d := range t.deps {
			walk(d)
		}
		clock.Absorb(t.stages)
	}
	walk(rootTask)
}
